package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// runTraceTree renders the cross-process waterfall of one distributed
// trace: spans are gathered from any mix of /debug/trace/{id} endpoints
// (router and shards — each process holds only its own half) and NDJSON
// trace files ({"span":...} lines), merged by span id, and printed as an
// indented tree with offsets relative to the earliest span.
func runTraceTree(id, endpoints, files string) error {
	byID := map[string]trace.SpanData{}
	add := func(sp trace.SpanData) {
		if sp.TraceID == id && sp.SpanID != "" {
			byID[sp.SpanID] = sp
		}
	}
	for _, base := range splitList(endpoints) {
		resp, err := http.Get(strings.TrimSuffix(base, "/") + "/debug/trace/" + id)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close() // this process saw no half of the trace; fine
			continue
		}
		var tr struct {
			Spans []trace.SpanData `json:"spans"`
		}
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: %v", base, err)
		}
		for _, sp := range tr.Spans {
			add(sp)
		}
	}
	for _, path := range splitList(files) {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			var line struct {
				Span *trace.SpanData `json:"span"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Span != nil {
				add(*line.Span)
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return err
		}
	}
	if len(byID) == 0 {
		return fmt.Errorf("no spans found for trace %s", id)
	}

	spans := make([]trace.SpanData, 0, len(byID))
	services := map[string]bool{}
	var t0, t1 int64
	for _, sp := range byID {
		spans = append(spans, sp)
		services[sp.Service] = true
		if t0 == 0 || sp.StartNano < t0 {
			t0 = sp.StartNano
		}
		if end := sp.StartNano + int64(sp.Micros*1e3); end > t1 {
			t1 = end
		}
	}
	children := map[string][]trace.SpanData{}
	var roots []trace.SpanData
	for _, sp := range spans {
		if sp.ParentID != "" {
			if _, ok := byID[sp.ParentID]; ok {
				children[sp.ParentID] = append(children[sp.ParentID], sp)
				continue
			}
		}
		roots = append(roots, sp) // true root, or an orphan whose parent was not gathered
	}
	byStart := func(s []trace.SpanData) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].StartNano != s[j].StartNano {
				return s[i].StartNano < s[j].StartNano
			}
			return s[i].SpanID < s[j].SpanID
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	fmt.Printf("trace %s: %d spans, %d services, %v\n",
		id, len(spans), len(services), time.Duration(t1-t0).Round(time.Microsecond))
	var walk func(sp trace.SpanData, indent string)
	walk = func(sp trace.SpanData, indent string) {
		attrs := make([]string, 0, len(sp.Attrs))
		for k, v := range sp.Attrs {
			attrs = append(attrs, k+"="+v)
		}
		sort.Strings(attrs)
		line := fmt.Sprintf("%s%-24s %-10s +%-11s %-11s",
			indent, sp.Name, sp.Service,
			time.Duration(sp.StartNano-t0).Round(time.Microsecond),
			time.Duration(sp.Micros*1e3).Round(time.Microsecond))
		fmt.Println(strings.TrimRight(line+" "+strings.Join(attrs, " "), " "))
		for _, c := range children[sp.SpanID] {
			walk(c, indent+"  ")
		}
	}
	for _, sp := range roots {
		walk(sp, "  ")
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
