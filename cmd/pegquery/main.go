// Command pegquery runs the online phase: it loads a PGD and a prebuilt
// index, parses a query in the text DSL, and streams probabilistic matches
// with probability ≥ α as the join enumeration finds them, together with the
// per-stage statistics. -limit stops the search after N matches (-order prob
// turns it into top-N by probability instead), so a hot query pays only for
// the page it prints.
//
// -explain prints the cost-based planner's chosen plan (decomposition,
// probe-reduction decision, join order, estimated cardinalities, rejected
// alternatives) as JSON without executing the query.
//
// Usage:
//
//	pegquery -pgd graph.pgd -dir ./index -query q.txt -alpha 0.25
//	pegquery -pgd graph.pgd -dir ./index -query q.txt -limit 10 -order prob
//	pegquery -pgd graph.pgd -dir ./index -query q.txt -explain
//	echo 'node A l0
//	node B l1
//	edge A B' | pegquery -pgd graph.pgd -dir ./index -alpha 0.5
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"os/signal"
	"strings"

	peg "repro"
	"repro/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pegquery: ")
	var (
		pgdPath   = flag.String("pgd", "", "input PGD file (required)")
		dir       = flag.String("dir", "", "index directory (required)")
		queryPath = flag.String("query", "", "query file in the DSL (default: stdin)")
		alpha     = flag.Float64("alpha", 0.25, "probability threshold α")
		strategy  = flag.String("strategy", "optimized", "optimized, random-decomp, or no-ss-reduction")
		limit     = flag.Int("limit", 20, "stop after N matches (0 = enumerate all)")
		order     = flag.String("order", "emit", "emit (as found, lowest latency) or prob (top-N by probability)")
		stats     = flag.Bool("stats", false, "print per-stage statistics")
		explain   = flag.Bool("explain", false, "print the query plan as JSON and exit without executing")
		seed      = flag.Int64("seed", 0, "random-decomposition seed (0 = deterministic default; the plan records the seed used)")
		traceTree = flag.String("trace-tree", "", "render the cross-process span waterfall of this trace id and exit (needs -trace-from and/or -trace-file, not -pgd/-dir)")
		traceFrom = flag.String("trace-from", "", "comma-separated base URLs whose GET /debug/trace/{id} to gather (router and shards)")
		traceFile = flag.String("trace-file", "", "comma-separated NDJSON trace files holding {\"span\":...} lines")
	)
	flag.Parse()
	if *traceTree != "" {
		if *traceFrom == "" && *traceFile == "" {
			log.Fatal("-trace-tree needs span sources: -trace-from endpoints and/or -trace-file files")
		}
		if err := runTraceTree(*traceTree, *traceFrom, *traceFile); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *pgdPath == "" || *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	var strat peg.Strategy
	switch *strategy {
	case "optimized":
		strat = peg.StrategyOptimized
	case "random-decomp":
		strat = peg.StrategyRandomDecomp
	case "no-ss-reduction":
		strat = peg.StrategyNoSSReduction
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	var ord peg.ResultOrder
	switch *order {
	case "emit":
		ord = peg.OrderEmit
	case "prob":
		ord = peg.OrderByProb
	default:
		log.Fatalf("unknown order %q", *order)
	}

	f, err := os.Open(*pgdPath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := peg.LoadPGD(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	g, err := peg.BuildGraph(d)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := peg.OpenIndex(*dir, g)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	var src io.Reader = os.Stdin
	if *queryPath != "" {
		qf, err := os.Open(*queryPath)
		if err != nil {
			log.Fatal(err)
		}
		defer qf.Close()
		src = qf
	}
	q, err := query.Parse(src, g.Alphabet())
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *explain {
		// Plan only: the printed tree is exactly what a subsequent run
		// executes (and what the server's POST /explain returns).
		tree, err := peg.Explain(ctx, ix, q, peg.MatchOptions{
			Alpha: *alpha, Strategy: strat, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tree); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Stream matches as the join finds them: with -limit the enumeration
	// stops at the Nth match instead of computing the full set and slicing.
	fmt.Printf("matches with Pr ≥ %v (query: %d nodes, %d edges):\n",
		*alpha, q.NumNodes(), q.NumEdges())
	st, err := peg.MatchStream(ctx, ix, q, peg.MatchOptions{
		Alpha: *alpha, Strategy: strat, Limit: *limit, Order: ord, Seed: *seed,
	}, func(m peg.MatchRecord) bool {
		parts := make([]string, len(m.Mapping))
		for j, v := range m.Mapping {
			parts[j] = fmt.Sprintf("n%d→e%d", j, v)
		}
		fmt.Printf("  %s  Pr=%.6f (Prle=%.6f, Prn=%.6f)\n",
			strings.Join(parts, " "), m.Pr(), m.Prle, m.Prn)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	if st.Truncated {
		fmt.Printf("%d matches shown (limit %d reached; more may exist above α)\n", st.Matched, *limit)
	} else {
		fmt.Printf("%d matches\n", st.Matched)
	}
	if *stats {
		fmt.Printf("\nstats:\n")
		fmt.Printf("  decomposition paths: %d\n", st.NumPaths)
		fmt.Printf("  search space (log10): path=%.2f context=%.2f structure=%.2f final=%.2f\n",
			log10(st.SSPath), log10(st.SSContext), log10(st.SSAfterStructure), log10(st.SSFinal))
		fmt.Printf("  times: plan=%v decompose=%v candidates=%v build=%v reduce=%v join=%v total=%v\n",
			st.PlanTime, st.DecomposeTime, st.CandidateTime, st.BuildTime, st.ReduceTime, st.JoinTime, st.Total)
		fmt.Printf("  join order: planned=%v executed=%v (adaptive reorder on observed counts)\n",
			st.PlannedOrder, st.ExecOrder)
		for _, sg := range st.Stages {
			fmt.Printf("  stage %-10s %10.1fµs est=%.0f obs=%.0f pruned=%d\n",
				sg.Name, sg.Micros, sg.EstRows, sg.ObsRows, sg.Pruned)
		}
	}
}

func log10(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return math.Log10(v)
}
