// Command peggen generates reference-level uncertain graphs (PGD files) for
// the offline phase: the paper's synthetic preferential-attachment workload
// or the DBLP-like / IMDB-like real-world stand-ins.
//
// Usage:
//
//	peggen -kind synth -refs 10000 -uncertain 0.2 -out graph.pgd
//	peggen -kind dblp  -refs 2000  -out dblp.pgd
//	peggen -kind imdb  -refs 2000  -out imdb.pgd
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gen"
	"repro/internal/refgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("peggen: ")
	var (
		kind      = flag.String("kind", "synth", "graph kind: synth, dblp, or imdb")
		refs      = flag.Int("refs", 1000, "number of references (authors/actors)")
		edgeFac   = flag.Float64("edges", 5, "relations per reference (synth)")
		labels    = flag.Int("labels", 6, "alphabet size (synth)")
		uncertain = flag.Float64("uncertain", 0.2, "uncertain fraction (synth)")
		groups    = flag.Int("groups", 0, "reference groups k (synth; 0 = refs/1000)")
		clusters  = flag.Int("clusters", 0, "disjoint sub-networks (synth; ≥2 makes the PGD shardable, 0/1 = one connected network)")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "", "output PGD file (required)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var (
		d   *refgraph.PGD
		err error
	)
	switch *kind {
	case "synth":
		d, err = gen.Synthetic(gen.SynthOptions{
			Refs:          *refs,
			EdgeFactor:    *edgeFac,
			Labels:        *labels,
			UncertainFrac: *uncertain,
			Groups:        *groups,
			Clusters:      *clusters,
			Seed:          *seed,
		})
	case "dblp":
		d, err = gen.DBLP(gen.DBLPOptions{Authors: *refs, Seed: *seed})
	case "imdb":
		d, err = gen.IMDB(gen.IMDBOptions{Actors: *refs, Seed: *seed})
	default:
		log.Fatalf("unknown kind %q (want synth, dblp, or imdb)", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d references, %d edges, %d reference sets, labels %v\n",
		*out, d.NumRefs(), d.NumEdges(), d.NumSets(), d.Alphabet().Names())
}
