// Command pegrouter is the stateless scatter-gather front end of the
// cluster tier: it loads the manifest catalog a sharded pegbuild published,
// fans /match, /match/stream, and /explain out to one replica of every
// shard, and merges the per-shard answers into single-node-identical
// results (see internal/router).
//
// Usage:
//
//	pegbuild -pgd graph.pgd -shards 2 -out ./cluster
//	pegserve -pgd cluster/shard-00/gen-000001/pgd.snap -dir cluster/shard-00/gen-000001/index -addr :8081 &
//	pegserve -pgd cluster/shard-01/gen-000001/pgd.snap -dir cluster/shard-01/gen-000001/index -addr :8082 &
//	pegrouter -manifest ./cluster -addr :8090 \
//	    -shard 0=http://localhost:8081 -shard 1=http://localhost:8082
//	curl -s localhost:8090/match -d '{"query":"node A l0\nnode B l1\nedge A B","alpha":0.2,"limit":10,"order":"prob"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pegrouter: ")
	var (
		manifestDir = flag.String("manifest", "", "cluster directory holding MANIFEST.json (required)")
		addr        = flag.String("addr", ":8090", "listen address")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-shard call timeout (streams included)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "fixed hedge delay for buffered shard calls (0 = adaptive p99, negative disables)")
		requireAll  = flag.Bool("require-all", false, "fail requests with 502 when any shard fails instead of answering partial:true")
		healthEvery = flag.Duration("health-every", 2*time.Second, "replica health-poll interval (negative disables)")
		traceFile   = flag.String("trace", "", "NDJSON per-request trace file (\"-\" = stderr); requests opt in with \"trace\":true")
		traceAll    = flag.Bool("trace-all", false, "with -trace: trace every request, not only those asking")
		traceSmp    = flag.Float64("trace-sample", 0, "span tracing: fraction of new root traces to sample (0 disables, 1 = all); spans land in the -trace file as {\"span\":...} lines and in GET /debug/trace/{id}")
		pprofOn     = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listen address (empty disables)")
	)
	shards := map[int][]string{}
	flag.Func("shard", "shard replicas as N=url1,url2 (repeatable; every shard in the manifest needs one)", func(v string) error {
		idx, urls, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want N=url1,url2, got %q", v)
		}
		n, err := strconv.Atoi(idx)
		if err != nil {
			return fmt.Errorf("bad shard index %q: %v", idx, err)
		}
		for _, u := range strings.Split(urls, ",") {
			u = strings.TrimSuffix(strings.TrimSpace(u), "/")
			if u == "" {
				continue
			}
			shards[n] = append(shards[n], u)
		}
		return nil
	})
	flag.Parse()
	if *manifestDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	m, err := shard.LoadManifest(*manifestDir)
	if err != nil {
		log.Fatal(err)
	}
	replicas := make([][]string, m.Shards)
	for s := range replicas {
		replicas[s] = shards[s]
		if len(replicas[s]) == 0 {
			log.Fatalf("manifest lists %d shards but -shard %d=... is missing", m.Shards, s)
		}
	}
	for s := range shards {
		if s < 0 || s >= m.Shards {
			log.Fatalf("-shard %d=... does not exist in the manifest (%d shards)", s, m.Shards)
		}
	}

	ropt := router.Options{
		Replicas:     replicas,
		ShardTimeout: *timeout,
		HedgeAfter:   *hedgeAfter,
		RequireAll:   *requireAll,
		HealthEvery:  *healthEvery,
		TraceAll:     *traceAll,
	}
	if *traceFile == "-" {
		ropt.TraceWriter = os.Stderr
	} else if *traceFile != "" {
		tf, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer tf.Close()
		ropt.TraceWriter = tf
	}
	if *traceSmp > 0 {
		ropt.Tracer = trace.New(trace.Config{
			Service: "pegrouter",
			Sample:  *traceSmp,
			Export:  ropt.TraceWriter, // nil keeps spans ring-only
		})
	}
	if *pprofOn != "" {
		go func() {
			log.Printf("pprof listening on %s", *pprofOn)
			log.Printf("pprof: %v", http.ListenAndServe(*pprofOn, server.PprofHandler()))
		}()
	}
	rt, err := router.New(m, ropt)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	log.Printf("routing %d shards (%d refs, %d sets)", m.Shards, m.TotalRefs, m.TotalSets)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 30*time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	select {
	case <-ctx.Done():
		log.Print("shutting down: draining in-flight requests")
		shCtx, cancel := context.WithTimeout(context.Background(), *timeout+35*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(fmt.Errorf("serve: %w", err))
		}
	}
}
