// Command pegbuild runs the offline phase of Section 5.1: it loads a PGD
// file, constructs the probabilistic entity graph (component probabilities
// included), and builds the context-aware path index on disk.
//
// Usage:
//
//	pegbuild -pgd graph.pgd -dir ./index -L 3 -beta 0.1 -gamma 0.1
//
// -format selects the index layout: v2 (default) is the packed single-file
// mmap format, v1 the B+-tree directory layout kept for rolling upgrades.
//
// With -shards N it instead runs the cluster-tier build: the PGD is split
// into N linkage-closure shards, each shard's PGD snapshot and path index
// are written under -out, and a manifest catalog is published last —
// the input for N pegserve processes fronted by pegrouter.
//
//	pegbuild -pgd graph.pgd -shards 2 -out ./cluster -L 3 -beta 0.1 -gamma 0.1
//
// With -repack it migrates an existing v1 index directory to the packed v2
// format in place (losslessly; the v1 files are kept for rollback):
//
//	pegbuild -pgd graph.pgd -dir ./index -repack
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	peg "repro"
	"repro/internal/pathindex"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pegbuild: ")
	var (
		pgdPath = flag.String("pgd", "", "input PGD file (required)")
		dir     = flag.String("dir", "", "output index directory (single-index mode)")
		shards  = flag.Int("shards", 0, "partition into this many shards (cluster mode; requires -out)")
		out     = flag.String("out", "", "output cluster directory (cluster mode)")
		maxLen  = flag.Int("L", 3, "maximum indexed path length")
		beta    = flag.Float64("beta", 0.1, "index construction threshold β")
		gamma   = flag.Float64("gamma", 0.1, "index resolution γ")
		workers = flag.Int("workers", 0, "build parallelism (0 = GOMAXPROCS)")
		format  = flag.String("format", "v2", "index layout: v2 (packed, mmap) or v1 (B+ tree)")
		repack  = flag.Bool("repack", false, "migrate the v1 index in -dir to the packed v2 format, then exit")
	)
	flag.Parse()
	cluster := *shards > 0
	if *pgdPath == "" || (cluster && *out == "") || (!cluster && *dir == "") {
		flag.Usage()
		os.Exit(2)
	}
	ixFormat, err := pathindex.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(*pgdPath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := peg.LoadPGD(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *repack {
		if cluster {
			log.Fatal("-repack works on one index directory; run it per shard generation")
		}
		g, err := peg.BuildGraph(d)
		if err != nil {
			log.Fatal(err)
		}
		st, err := pathindex.Repack(*dir, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("repacked %s: %d entries over %d sequences into %d bytes in %v\n",
			*dir, st.Entries, st.Sequences, st.Bytes, st.Duration)
		fmt.Println("v1 artifacts left in place for rollback; delete them once validated")
		return
	}

	if cluster {
		m, err := shard.Build(ctx, d, *out, shard.Options{
			Shards: *shards,
			Index:  pathindex.Options{MaxLen: *maxLen, Beta: *beta, Gamma: *gamma, Workers: *workers, Format: ixFormat},
			Logf:   func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %s/%s: %d shards over %d refs, %d sets (index format %s)\n",
			*out, shard.ManifestName, m.Shards, m.TotalRefs, m.TotalSets, ixFormat)
		return
	}

	g, err := peg.BuildGraph(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entity graph: %d nodes, %d edges, %d identity components\n",
		g.NumNodes(), g.NumEdges(), g.NumComponents())

	ix, err := peg.BuildIndex(ctx, g, peg.IndexOptions{
		MaxLen: *maxLen, Beta: *beta, Gamma: *gamma, Dir: *dir, Workers: *workers, Format: ixFormat,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	st := ix.Stats()
	fmt.Printf("index (format %s): %d entries over %d label sequences, %d bytes on disk, built in %v\n",
		ixFormat, st.Entries, st.Sequences, st.Bytes, st.Duration)
	for l, n := range st.EntriesPerLen {
		fmt.Printf("  length %d: %d entries\n", l, n)
	}
}
