// Command pegbuild runs the offline phase of Section 5.1: it loads a PGD
// file, constructs the probabilistic entity graph (component probabilities
// included), and builds the context-aware path index on disk.
//
// Usage:
//
//	pegbuild -pgd graph.pgd -dir ./index -L 3 -beta 0.1 -gamma 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	peg "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pegbuild: ")
	var (
		pgdPath = flag.String("pgd", "", "input PGD file (required)")
		dir     = flag.String("dir", "", "output index directory (required)")
		maxLen  = flag.Int("L", 3, "maximum indexed path length")
		beta    = flag.Float64("beta", 0.1, "index construction threshold β")
		gamma   = flag.Float64("gamma", 0.1, "index resolution γ")
		workers = flag.Int("workers", 0, "build parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *pgdPath == "" || *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*pgdPath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := peg.LoadPGD(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	g, err := peg.BuildGraph(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entity graph: %d nodes, %d edges, %d identity components\n",
		g.NumNodes(), g.NumEdges(), g.NumComponents())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ix, err := peg.BuildIndex(ctx, g, peg.IndexOptions{
		MaxLen: *maxLen, Beta: *beta, Gamma: *gamma, Dir: *dir, Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	st := ix.Stats()
	fmt.Printf("index: %d entries over %d label sequences, %d bytes on disk, built in %v\n",
		st.Entries, st.Sequences, st.Bytes, st.Duration)
	for l, n := range st.EntriesPerLen {
		fmt.Printf("  length %d: %d entries\n", l, n)
	}
}
