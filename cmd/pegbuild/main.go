// Command pegbuild runs the offline phase of Section 5.1: it loads a PGD
// file, constructs the probabilistic entity graph (component probabilities
// included), and builds the context-aware path index on disk.
//
// Usage:
//
//	pegbuild -pgd graph.pgd -dir ./index -L 3 -beta 0.1 -gamma 0.1
//
// With -shards N it instead runs the cluster-tier build: the PGD is split
// into N linkage-closure shards, each shard's PGD snapshot and path index
// are written under -out, and a manifest catalog is published last —
// the input for N pegserve processes fronted by pegrouter.
//
//	pegbuild -pgd graph.pgd -shards 2 -out ./cluster -L 3 -beta 0.1 -gamma 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	peg "repro"
	"repro/internal/pathindex"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pegbuild: ")
	var (
		pgdPath = flag.String("pgd", "", "input PGD file (required)")
		dir     = flag.String("dir", "", "output index directory (single-index mode)")
		shards  = flag.Int("shards", 0, "partition into this many shards (cluster mode; requires -out)")
		out     = flag.String("out", "", "output cluster directory (cluster mode)")
		maxLen  = flag.Int("L", 3, "maximum indexed path length")
		beta    = flag.Float64("beta", 0.1, "index construction threshold β")
		gamma   = flag.Float64("gamma", 0.1, "index resolution γ")
		workers = flag.Int("workers", 0, "build parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()
	cluster := *shards > 0
	if *pgdPath == "" || (cluster && *out == "") || (!cluster && *dir == "") {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*pgdPath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := peg.LoadPGD(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if cluster {
		m, err := shard.Build(ctx, d, *out, shard.Options{
			Shards: *shards,
			Index:  pathindex.Options{MaxLen: *maxLen, Beta: *beta, Gamma: *gamma, Workers: *workers},
			Logf:   func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %s/%s: %d shards over %d refs, %d sets\n",
			*out, shard.ManifestName, m.Shards, m.TotalRefs, m.TotalSets)
		return
	}

	g, err := peg.BuildGraph(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entity graph: %d nodes, %d edges, %d identity components\n",
		g.NumNodes(), g.NumEdges(), g.NumComponents())

	ix, err := peg.BuildIndex(ctx, g, peg.IndexOptions{
		MaxLen: *maxLen, Beta: *beta, Gamma: *gamma, Dir: *dir, Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	st := ix.Stats()
	fmt.Printf("index: %d entries over %d label sequences, %d bytes on disk, built in %v\n",
		st.Entries, st.Sequences, st.Bytes, st.Duration)
	for l, n := range st.EntriesPerLen {
		fmt.Printf("  length %d: %d entries\n", l, n)
	}
}
