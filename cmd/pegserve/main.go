// Command pegserve serves the online phase over HTTP: it loads a PGD
// snapshot, opens (or builds) the path index, and answers /match,
// /match/stream, and /match/batch queries concurrently with a bounded worker
// pool and an LRU result cache. /match accepts limit and order fields for
// top-K retrieval; /match/stream emits NDJSON match lines incrementally as
// the join enumeration finds them.
//
// Usage:
//
//	pegserve -pgd graph.pgd -dir ./index -addr :8080
//	curl -s localhost:8080/match -d '{"query":"node A r\nnode B a\nedge A B","alpha":0.2,"limit":10,"order":"prob"}'
//	curl -sN localhost:8080/match/stream -d '{"query":"node A r\nnode B a\nedge A B","alpha":0.2}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	peg "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pegserve: ")
	var (
		pgdPath = flag.String("pgd", "", "input PGD file (required)")
		dir     = flag.String("dir", "", "index directory (required)")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent match evaluations (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "request queue depth before 503 (0 = 4×workers)")
		cache   = flag.Int("cache", 1024, "result cache entries (negative disables)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		alpha   = flag.Float64("alpha", 0.25, "default probability threshold α")
		build   = flag.Bool("build", false, "build the index first if dir has none")
		maxLen  = flag.Int("L", 3, "index path length when building")
		beta    = flag.Float64("beta", 0.1, "index construction threshold β when building")
		gamma   = flag.Float64("gamma", 0.1, "index resolution γ when building")
	)
	flag.Parse()
	if *pgdPath == "" || *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*pgdPath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := peg.LoadPGD(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	g, err := peg.BuildGraph(d)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ix, err := peg.OpenIndex(*dir, g)
	if err != nil && *build {
		log.Printf("no index in %s, building (L=%d β=%v γ=%v)", *dir, *maxLen, *beta, *gamma)
		ix, err = peg.BuildIndex(ctx, g, peg.IndexOptions{
			MaxLen: *maxLen, Beta: *beta, Gamma: *gamma, Dir: *dir,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	st := ix.Stats()
	log.Printf("index: %d entries over %d sequences (%d nodes, %d edges)",
		st.Entries, st.Sequences, g.NumNodes(), g.NumEdges())

	srv := peg.NewServer(ix, peg.ServerOptions{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		DefaultAlpha:   *alpha,
	})
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Connection-level bounds: a client cannot hold a handler open by
		// trickling its body (read) or draining slowly (write) beyond the
		// match budget, so Shutdown's grace window really is an upper bound.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 30*time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	select {
	case <-ctx.Done():
		log.Print("shutting down")
		// Give in-flight requests their full budget plus the write window:
		// the index is closed right after this returns, and a request still
		// running must not see closed files.
		shCtx, cancel := context.WithTimeout(context.Background(), *timeout+35*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(fmt.Errorf("serve: %w", err))
		}
	}
}
