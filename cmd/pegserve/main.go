// Command pegserve serves the online phase over HTTP: it loads a PGD
// snapshot, opens (or builds) the path index, and answers /match,
// /match/stream, and /match/batch queries concurrently with a bounded worker
// pool and an LRU result cache. /match accepts limit and order fields for
// top-K retrieval; /match/stream emits NDJSON match lines incrementally as
// the join enumeration finds them.
//
// With -live the server runs read-write: -dir holds a live database
// (generation directories plus a CRC-protected mutation log) and POST
// /ingest accepts add-ref / add-edge / set-linkage mutations — single JSON
// objects or NDJSON batches — which become visible to queries immediately
// through the delta overlay and are folded into a fresh on-disk generation
// by the background compactor.
//
// Usage:
//
//	pegserve -pgd graph.pgd -dir ./index -addr :8080
//	pegserve -live -pgd graph.pgd -dir ./livedb -addr :8080
//	curl -s localhost:8080/match -d '{"query":"node A r\nnode B a\nedge A B","alpha":0.2,"limit":10,"order":"prob"}'
//	curl -sN localhost:8080/match/stream -d '{"query":"node A r\nnode B a\nedge A B","alpha":0.2}'
//	curl -s localhost:8080/ingest -d '{"op":"set-linkage","members":[2,3],"p":0.5}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	peg "repro"
	ptrace "repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pegserve: ")
	var (
		pgdPath  = flag.String("pgd", "", "input PGD file (required unless -live resumes an existing database)")
		dir      = flag.String("dir", "", "index directory — or live database directory with -live (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent match evaluations (0 = GOMAXPROCS)")
		matchPar = flag.Int("match-parallelism", 1, "join workers per match evaluation (capped at -workers; 1 = sequential join)")
		matchWk  = flag.Int("match-workers", 1, "pre-join stage workers per match evaluation — parallel candidate retrieval, k-partite build, reduction (1 = sequential)")
		queue    = flag.Int("queue", 0, "request queue depth before 503 (0 = 4×workers)")
		cache    = flag.Int("cache", 1024, "result cache entries (negative disables)")
		plans    = flag.Int("plan-cache", 256, "plan cache entries (negative disables); repeat queries skip decomposition and planning")
		cands    = flag.Int("cand-cache", 0, "candidate cache: pruned path candidates retained per index generation (0 = default budget, negative disables); repeat query shapes skip posting decode and context pruning")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		alpha    = flag.Float64("alpha", 0.25, "default probability threshold α")
		metrics  = flag.Bool("metrics", true, "expose GET /metrics (Prometheus text format)")
		maxCost  = flag.Float64("max-cost", 0, "cost-based admission: reject queries whose calibrated plan-cost estimate exceeds this with 429 (0 disables)")
		trace    = flag.String("trace", "", "NDJSON per-query trace file (\"-\" = stderr); requests opt in with \"trace\":true")
		traceAll = flag.Bool("trace-all", false, "with -trace: trace every request, not only those asking")
		traceSmp = flag.Float64("trace-sample", 0, "span tracing: fraction of new root traces to sample (0 disables, 1 = all); spans land in the -trace file as {\"span\":...} lines and in GET /debug/trace/{id}")
		pprofOn  = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listen address (empty disables)")
		build    = flag.Bool("build", false, "build the index first if dir has none")
		maxLen   = flag.Int("L", 3, "index path length when building")
		beta     = flag.Float64("beta", 0.1, "index construction threshold β when building")
		gamma    = flag.Float64("gamma", 0.1, "index resolution γ when building")

		liveMode     = flag.Bool("live", false, "serve read-write: enable POST /ingest backed by a live database in -dir")
		compactEvery = flag.Int("compact-every", 512, "live: background-compact after this many mutations (negative disables)")
		compactDirty = flag.Float64("compact-dirty", 0.25, "live: background-compact once this fraction of entities is dirty (negative disables)")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := serverOptions(*workers, *matchPar, *matchWk, *queue, *cache, *plans, *timeout, *alpha)
	opt.CandCacheSize = *cands
	opt.DisableMetrics = !*metrics
	opt.MaxPlanCost = *maxCost
	opt.TraceAll = *traceAll
	if *trace == "-" {
		opt.TraceWriter = os.Stderr
	} else if *trace != "" {
		tf, err := os.OpenFile(*trace, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer tf.Close()
		opt.TraceWriter = tf
	}
	if *traceSmp > 0 {
		opt.Tracer = ptrace.New(ptrace.Config{
			Service: "pegserve",
			Sample:  *traceSmp,
			Export:  opt.TraceWriter, // nil keeps spans ring-only
		})
	}
	if *pprofOn != "" {
		go func() {
			log.Printf("pprof listening on %s", *pprofOn)
			log.Printf("pprof: %v", http.ListenAndServe(*pprofOn, peg.PprofHandler()))
		}()
	}

	// Start serving before the index is loaded or built: the server begins
	// unready (GET /healthz answers 503 ready:false, /healthz/live 200), so
	// orchestrators and the cluster router can health-check the process
	// through the whole first build instead of getting connection refused.
	srv := peg.NewServer(nil, opt)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Connection-level bounds: a client cannot hold a handler open by
		// trickling its body (read) or draining slowly (write) beyond the
		// match budget, so Shutdown's grace window really is an upper bound.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 30*time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("listening on %s (not ready: index loading)", *addr)

	var db *peg.LiveDB
	if *liveMode {
		liveOpt := peg.LiveOptions{
			Index:            peg.IndexOptions{MaxLen: *maxLen, Beta: *beta, Gamma: *gamma},
			CompactEvery:     *compactEvery,
			CompactDirtyFrac: *compactDirty,
			Logf:             log.Printf,
		}
		var err error
		db, err = peg.OpenLive(*dir, liveOpt)
		if err != nil {
			// Only "no database here yet" falls through to Create; a
			// corrupt or unloadable existing database must surface its own
			// diagnostic, not a misleading "already holds a database".
			if !errors.Is(err, fs.ErrNotExist) {
				log.Fatal(err)
			}
			if *pgdPath == "" {
				log.Fatalf("%v (and no -pgd to create one)", err)
			}
			d := loadPGD(*pgdPath)
			log.Printf("creating live database in %s (L=%d β=%v γ=%v)", *dir, *maxLen, *beta, *gamma)
			db, err = peg.CreateLive(ctx, *dir, d, liveOpt)
			if err != nil {
				log.Fatal(err)
			}
		}
		st := db.Status()
		log.Printf("live database: generation %d, %d entities, %d pending mutations",
			st.Generation, st.Entities, st.Mutations)
		srv.SetIndex(db.View())
		srv.SetLive(db)
		db.SetPublisher(srv)
	} else {
		if *pgdPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		d := loadPGD(*pgdPath)
		g, err := peg.BuildGraph(d)
		if err != nil {
			log.Fatal(err)
		}
		ix, err := peg.OpenIndex(*dir, g)
		if err != nil && *build {
			log.Printf("no index in %s, building (L=%d β=%v γ=%v)", *dir, *maxLen, *beta, *gamma)
			ix, err = peg.BuildIndex(ctx, g, peg.IndexOptions{
				MaxLen: *maxLen, Beta: *beta, Gamma: *gamma, Dir: *dir,
			})
		}
		if err != nil {
			log.Fatal(err)
		}
		defer ix.Close()
		st := ix.Stats()
		log.Printf("index: %d entries over %d sequences (%d nodes, %d edges)",
			st.Entries, st.Sequences, g.NumNodes(), g.NumEdges())
		srv.SetIndex(ix)
	}
	log.Printf("ready on %s", *addr)

	select {
	case <-ctx.Done():
		// Graceful shutdown on SIGINT/SIGTERM: Shutdown stops admitting
		// requests and drains the worker pool and in-flight NDJSON streams
		// (match and ingest alike) within the grace window; only then is the
		// live database closed, which flushes the mutation log and waits for
		// a running background compaction, so every acknowledged write is on
		// disk before exit.
		log.Print("shutting down: draining in-flight requests")
		shCtx, cancel := context.WithTimeout(context.Background(), *timeout+35*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if db != nil {
			if err := db.Close(); err != nil {
				log.Printf("closing live database: %v", err)
			} else {
				log.Print("mutation log flushed")
			}
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(fmt.Errorf("serve: %w", err))
		}
	}
}

func loadPGD(path string) *peg.PGD {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	d, err := peg.LoadPGD(f)
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func serverOptions(workers, matchPar, matchWk, queue, cache, plans int, timeout time.Duration, alpha float64) peg.ServerOptions {
	return peg.ServerOptions{
		Workers:          workers,
		MatchParallelism: matchPar,
		MatchWorkers:     matchWk,
		QueueDepth:       queue,
		CacheEntries:     cache,
		PlanCacheEntries: plans,
		RequestTimeout:   timeout,
		DefaultAlpha:     alpha,
	}
}
