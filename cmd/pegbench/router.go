// Cluster-tier benchmark: the -perf rows that measure the sharded
// scatter-gather path end to end. startRouterCluster runs the full offline
// pipeline (partition, per-shard index build, manifest) and brings up one
// in-process pegserve per shard behind a router, so router-topk10 (closed
// loop, gated by -check) and router-collect (open loop, p50/p95) price the
// whole fan-out/merge round trip: HTTP in, scatter, per-shard join, id
// translation, bounded merge, HTTP out.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
	"repro/internal/refgraph"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/shard"
)

const (
	routerShards = 2
	routerRefs   = 400
	// routerQuery is connected (the router 400s disconnected queries) and
	// label-poor enough to match broadly on the synthetic alphabet.
	routerQuery = "node A l0\nnode B l1\nedge A B"
	routerAlpha = 0.05
)

// routerCluster is a throwaway in-process cluster: shard backends, the
// router, and the on-disk shard directory, torn down in reverse order.
type routerCluster struct {
	url      string
	closeFns []func()
}

func (c *routerCluster) Close() {
	for i := len(c.closeFns) - 1; i >= 0; i-- {
		c.closeFns[i]()
	}
}

// startRouterCluster partitions a fresh clustered synthetic PGD into
// routerShards shards, builds each shard's index, and serves them behind a
// router, returning the router's base URL.
func startRouterCluster(seed int64) (*routerCluster, error) {
	c := &routerCluster{}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	d, err := gen.Synthetic(gen.SynthOptions{Refs: routerRefs, Groups: 8, Clusters: 4, Seed: seed})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "pegbench-router-*")
	if err != nil {
		return nil, err
	}
	c.closeFns = append(c.closeFns, func() { os.RemoveAll(dir) })
	m, err := shard.Build(context.Background(), d, dir, shard.Options{
		Shards: routerShards,
		Index:  pathindex.Options{MaxLen: 2, Beta: 0.01, Gamma: 0.05, Workers: runtime.GOMAXPROCS(0)},
	})
	if err != nil {
		return nil, err
	}

	replicas := make([][]string, routerShards)
	for s, e := range m.Entries {
		f, err := os.Open(filepath.Join(dir, e.PGD))
		if err != nil {
			return nil, err
		}
		sd, err := refgraph.Load(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		g, err := entity.Build(sd, entity.BuildOptions{})
		if err != nil {
			return nil, err
		}
		ix, err := pathindex.Open(filepath.Join(dir, e.IndexDir), g)
		if err != nil {
			return nil, err
		}
		c.closeFns = append(c.closeFns, func() { ix.Close() })
		hs := httptest.NewServer(server.New(ix, server.Options{Workers: 2}).Handler())
		c.closeFns = append(c.closeFns, hs.Close)
		replicas[s] = []string{hs.URL}
	}

	// Replicas start healthy; the poll loop is noise in a benchmark.
	rt, err := router.New(m, router.Options{Replicas: replicas, HealthEvery: -1})
	if err != nil {
		return nil, err
	}
	c.closeFns = append(c.closeFns, rt.Close)
	rts := httptest.NewServer(rt.Handler())
	c.closeFns = append(c.closeFns, rts.Close)
	c.url = rts.URL
	ok = true
	return c, nil
}

// routerMatch posts one /match to the cluster and returns the match count,
// failing on any non-OK or partial answer (a benchmark over a degraded
// cluster measures nothing).
func routerMatch(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url+"/match", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("router /match: HTTP %d: %s", resp.StatusCode, msg)
	}
	var mr router.MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return 0, err
	}
	if mr.Partial {
		return 0, fmt.Errorf("router /match: partial answer (shards %v failed)", mr.ShardsFailed)
	}
	return len(mr.Matches), nil
}

// measureRouterPerf is the closed-loop router row: top-K by probability over
// the 2-shard cluster, one request at a time, so ns/op is the full routed
// round trip and is comparable run-to-run (gated by -check like the other
// serving-path rows).
func measureRouterPerf(seed int64) (*perfBench, error) {
	c, err := startRouterCluster(seed)
	if err != nil {
		return nil, fmt.Errorf("router-topk10: %w", err)
	}
	defer c.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	body, err := json.Marshal(&server.MatchRequest{
		Query: routerQuery, Alpha: routerAlpha, Order: "prob", Limit: 10,
	})
	if err != nil {
		return nil, err
	}
	matches, err := routerMatch(client, c.url, body)
	if err != nil {
		return nil, fmt.Errorf("router-topk10: %w", err)
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := routerMatch(client, c.url, body); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return nil, fmt.Errorf("router-topk10: %w", benchErr)
	}
	ns := float64(r.NsPerOp())
	row := &perfBench{
		Name:         "router-topk10",
		NsPerOp:      ns,
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		MatchesPerOp: matches,
	}
	if ns > 0 {
		row.MatchesPerSec = float64(matches) * 1e9 / ns
	}
	return row, nil
}

// measureRouterServing is the open-loop router row: full-collect requests on
// a fixed arrival schedule against the cluster, latency percentiles recorded
// client-side (the router is stateless — there is no /stats to consult).
func measureRouterServing(seed int64) (*servingRow, error) {
	c, err := startRouterCluster(seed)
	if err != nil {
		return nil, fmt.Errorf("router-collect: %w", err)
	}
	defer c.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	body, err := json.Marshal(&server.MatchRequest{Query: routerQuery, Alpha: routerAlpha, Limit: 50})
	if err != nil {
		return nil, err
	}

	const (
		qps      = 100.0
		duration = 2 * time.Second
	)
	var (
		mu                          sync.Mutex
		lats                        []float64
		requests, succeeded, failed uint64
		wg                          sync.WaitGroup
	)
	ticker := time.NewTicker(time.Duration(float64(time.Second) / qps))
	begin := time.Now()
	deadline := begin.Add(duration)
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		requests++
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := routerMatch(client, c.url, body)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed++
				return
			}
			succeeded++
			lats = append(lats, float64(time.Since(start).Microseconds()))
		}()
	}
	ticker.Stop()
	wg.Wait()
	elapsed := time.Since(begin)

	sort.Float64s(lats)
	return &servingRow{
		Scenario:       "router-collect",
		DurationMillis: elapsed.Milliseconds(),
		OfferedQPS:     qps,
		Requests:       requests,
		Succeeded:      succeeded,
		Failed:         failed,
		P50Micros:      percentile(lats, 0.50),
		P95Micros:      percentile(lats, 0.95),
		P99Micros:      percentile(lats, 0.99),
	}, nil
}
