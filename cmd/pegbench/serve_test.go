package main

import (
	"testing"
	"time"
)

// TestServingScenariosSequential is the registry-safety regression for the
// serve driver: a -perf run stands up one server per scenario, and each
// server must own its own metrics registry. With a shared process-wide
// registry the second scenario would panic on duplicate registration (or
// carry the first scenario's counters into its /metrics page and stats).
// The scenario itself scrapes /metrics and fails on a bad page, so this
// test only has to run two scenarios back to back and sanity-check that
// the second one's request accounting starts from zero.
func TestServingScenariosSequential(t *testing.T) {
	cfg := servingConfig{
		refs:      200,
		qps:       40,
		duration:  400 * time.Millisecond,
		ingestQPS: 10,
		alpha:     0.1,
		seed:      7,
	}
	row1, _, err := runServingScenario(cfg, "seq-1", 0)
	if err != nil {
		t.Fatalf("first scenario: %v", err)
	}
	row2, _, err := runServingScenario(cfg, "seq-2", 0)
	if err != nil {
		t.Fatalf("second scenario: %v", err)
	}
	if row1.Requests == 0 || row2.Requests == 0 {
		t.Fatalf("scenarios served no requests: %d, %d", row1.Requests, row2.Requests)
	}
	// Identical configs offer ~the same arrivals; cumulative counting
	// across scenarios would roughly double the second row.
	if row2.Requests > row1.Requests+row1.Requests/2+5 {
		t.Fatalf("second scenario counted %d requests vs %d in the first: accounting leaked across scenarios",
			row2.Requests, row1.Requests)
	}
}

// TestRouterPerfRow is a smoke for the gated cluster-tier benchmark row:
// the in-process 2-shard cluster comes up, answers non-partial, and yields
// a usable measurement. Skipped in -short mode — it builds two path
// indexes and runs a closed-loop HTTP benchmark.
func TestRouterPerfRow(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster build + closed-loop bench")
	}
	row, err := measureRouterPerf(7)
	if err != nil {
		t.Fatal(err)
	}
	if row.Name != "router-topk10" || row.NsPerOp <= 0 {
		t.Fatalf("bad row: %+v", row)
	}
	if row.MatchesPerOp == 0 {
		t.Fatal("router benchmark query matched nothing; the row measures an empty merge")
	}
	if row.MatchesPerOp > 10 {
		t.Fatalf("top-10 request returned %d matches", row.MatchesPerOp)
	}
}
