// Open-loop multi-tenant serving benchmark: the -perf suite's serving-tier
// rows. Unlike the closed-loop microbenchmarks (testing.Benchmark issues the
// next op only after the previous one finishes), the driver here fires
// requests on a fixed arrival schedule regardless of completions — the only
// regime where queueing delay, load shedding, and admission control are
// visible at all. Each scenario stands up a real live database and HTTP
// server, offers a fixed mix of query shapes from internal/gen across
// concurrent tenants while a background writer ingests mutations, and
// records the outcome breakdown (succeeded / failed / canceled / shed /
// cost-rejected) plus p50/p95/p99 latency of the successful requests.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/live"
	"repro/internal/pathindex"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/server"
)

// servingRow is one open-loop scenario's record in the perf JSON.
type servingRow struct {
	Scenario       string  `json:"scenario"`
	DurationMillis int64   `json:"duration_ms"`
	OfferedQPS     float64 `json:"offered_qps"`
	MaxPlanCost    float64 `json:"max_plan_cost,omitempty"`
	Requests       uint64  `json:"requests"`
	Succeeded      uint64  `json:"succeeded"`
	Failed         uint64  `json:"failed"`
	Canceled       uint64  `json:"canceled"`
	Shed           uint64  `json:"shed"`
	CostRejected   uint64  `json:"cost_rejected"`
	Ingested       uint64  `json:"ingested"`
	P50Micros      float64 `json:"p50_us"`
	P95Micros      float64 `json:"p95_us"`
	P99Micros      float64 `json:"p99_us"`
}

// servingConfig sizes the open-loop scenarios. The defaults keep one -perf
// run in CI territory (a few seconds per scenario) while still driving the
// pool hard enough that shedding and queueing are non-zero phenomena.
type servingConfig struct {
	refs      int
	qps       float64
	duration  time.Duration
	ingestQPS float64
	alpha     float64
	seed      int64
}

func defaultServingConfig(seed int64) servingConfig {
	return servingConfig{
		refs:      800,
		qps:       150,
		duration:  2 * time.Second,
		ingestQPS: 40,
		alpha:     0.1,
		seed:      seed,
	}
}

// tenantQueries builds the fixed multi-tenant query mix: one query per
// shape, from cheap short paths to a dense 5-node pattern whose plan cost
// towers over the rest (the admission scenario's designated victim).
func tenantQueries(nLabels int, seed int64) ([]*query.Query, error) {
	rng := rand.New(rand.NewSource(seed))
	n := nLabels
	var out []*query.Query
	shapes := []struct {
		name  string
		nodes int
		edges int
		cycle bool
	}{
		{"path3", 3, 2, false},
		{"tree4", 4, 3, false},
		{"cycle4", 4, 0, true},
		{"path5", 5, 4, false},
		{"dense5", 5, 7, false},
	}
	for _, sh := range shapes {
		var (
			q   *query.Query
			err error
		)
		if sh.cycle {
			q, err = gen.CycleQuery(rng, n, sh.nodes)
		} else {
			q, err = gen.RandomQuery(rng, n, sh.nodes, sh.edges)
		}
		if err != nil {
			return nil, fmt.Errorf("serving: %s: %w", sh.name, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// newServingDB creates a throwaway live database over a fresh synthetic PGD.
// The returned directory is the database's backing store; the caller removes
// it after closing the DB, or every scenario leaks a temp dir.
func newServingDB(ctx context.Context, cfg servingConfig) (*live.DB, string, error) {
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs:          cfg.refs,
		EdgeFactor:    5,
		UncertainFrac: 0.2,
		Seed:          cfg.seed,
	})
	if err != nil {
		return nil, "", err
	}
	dir, err := os.MkdirTemp("", "pegbench-serve-*")
	if err != nil {
		return nil, "", err
	}
	db, err := live.Create(ctx, dir, d, live.Options{
		Index:        pathindex.Options{MaxLen: 2, Beta: 0.02, Gamma: 0.1},
		CompactEvery: 2048,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	return db, dir, nil
}

// measureServing runs the open-loop scenarios and returns their rows: first
// unconstrained, then with a cost budget placed between the cheapest and the
// most expensive tenant shape, so the expensive tenant is demonstrably
// rejected with 429 while the cheap ones keep being served.
func measureServing(seed int64) ([]servingRow, error) {
	cfg := defaultServingConfig(seed)
	open, budget, err := runServingScenario(cfg, "open-loop", 0)
	if err != nil {
		return nil, err
	}
	admission, _, err := runServingScenario(cfg, "open-loop-admission", budget)
	if err != nil {
		return nil, err
	}
	return []servingRow{*open, *admission}, nil
}

// runServingScenario stands up one live database + server, offers the tenant
// mix open-loop for the configured duration with concurrent ingest, and
// returns the row plus a suggested admission budget derived from the
// observed plan costs (midway between the cheapest and priciest shape).
func runServingScenario(cfg servingConfig, name string, maxCost float64) (*servingRow, float64, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	db, dbDir, err := newServingDB(ctx, cfg)
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dbDir)
	defer db.Close()

	s := server.New(db.View(), server.Options{
		Workers:        runtime.GOMAXPROCS(0),
		RequestTimeout: 2 * time.Second,
		MaxPlanCost:    maxCost,
	})
	s.SetLive(db)
	db.SetPublisher(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}

	g := db.View().Graph()
	qs, err := tenantQueries(g.NumLabels(), cfg.seed)
	if err != nil {
		return nil, 0, err
	}
	queries := make([]string, len(qs))
	for i, q := range qs {
		queries[i] = q.Format(g.Alphabet())
	}

	// Probe each shape's calibrated plan cost through /explain (which is
	// never cost-rejected) to place the admission budget for the follow-up
	// scenario between the extremes of the offered mix.
	minCost, maxSeen := 0.0, 0.0
	for i, q := range queries {
		body, _ := json.Marshal(&server.MatchRequest{Query: q, Alpha: cfg.alpha})
		resp, err := client.Post(ts.URL+"/explain", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		var ex server.ExplainResponse
		err = json.NewDecoder(resp.Body).Decode(&ex)
		resp.Body.Close()
		if err != nil || ex.Plan == nil {
			return nil, 0, fmt.Errorf("serving: explain shape %d: %v", i, err)
		}
		c := ex.Plan.Cost.Total
		if i == 0 || c < minCost {
			minCost = c
		}
		if c > maxSeen {
			maxSeen = c
		}
	}
	budget := (minCost + maxSeen) / 2

	// Background writer: one tenant keeps mutating the graph while the
	// others query, so every scenario also exercises view publication and
	// cache invalidation under load.
	ingestRng := rand.New(rand.NewSource(cfg.seed + 1))
	var ingestWG sync.WaitGroup
	ingestWG.Add(1)
	go func() {
		defer ingestWG.Done()
		t := time.NewTicker(time.Duration(float64(time.Second) / cfg.ingestQPS))
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				a, b := ingestRng.Intn(cfg.refs), ingestRng.Intn(cfg.refs)
				if a == b {
					continue
				}
				mut := fmt.Sprintf(`{"op":"add-edge","a":%d,"b":%d,"p":%.2f}`, a, b, 0.3+0.6*ingestRng.Float64())
				resp, err := client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader([]byte(mut)))
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()

	// Pre-marshal one request body per tenant shape; a small limit bounds
	// per-request work the way a real paging client would.
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		bodies[i], _ = json.Marshal(&server.MatchRequest{Query: q, Alpha: cfg.alpha, Limit: 50})
	}

	// The open loop proper: arrivals on a fixed schedule, one goroutine per
	// in-flight request, completions never gate the next arrival.
	var (
		mu   sync.Mutex
		lats []float64
		wg   sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / cfg.qps)
	ticker := time.NewTicker(interval)
	begin := time.Now()
	deadline := begin.Add(cfg.duration)
	i := 0
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		body := bodies[i%len(bodies)]
		i++
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Post(ts.URL+"/match", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				mu.Lock()
				lats = append(lats, plan.Micros(time.Since(start)))
				mu.Unlock()
			}
		}(body)
	}
	ticker.Stop()
	wg.Wait()
	cancel()
	ingestWG.Wait()
	elapsed := time.Since(begin)

	// The server's own accounting is the authority on the outcome breakdown.
	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		return nil, 0, err
	}
	var st server.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return nil, 0, err
	}

	// Each scenario's server owns a fresh metrics registry, so this scrape
	// must succeed on every scenario in a run — a second scenario hitting a
	// shared process-wide registry would have panicked on duplicate
	// registration at server.New, or double-counted here.
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		return nil, 0, err
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || !bytes.Contains(page, []byte("peg_requests_total")) {
		return nil, 0, fmt.Errorf("serving %s: bad /metrics scrape (HTTP %d)", name, mresp.StatusCode)
	}

	sort.Float64s(lats)
	row := &servingRow{
		Scenario:       name,
		DurationMillis: elapsed.Milliseconds(),
		OfferedQPS:     cfg.qps,
		MaxPlanCost:    maxCost,
		Requests:       st.Requests,
		Succeeded:      st.Succeeded,
		Failed:         st.Failed,
		Canceled:       st.Canceled,
		Shed:           st.Rejected,
		CostRejected:   st.CostRejected,
		Ingested:       st.Ingested,
		P50Micros:      percentile(lats, 0.50),
		P95Micros:      percentile(lats, 0.95),
		P99Micros:      percentile(lats, 0.99),
	}
	return row, budget, nil
}

// percentile reads the q-quantile from ascending-sorted samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
