// Command pegbench reproduces the paper's evaluation (Section 6) at
// configurable scale, printing one paper-style table per figure. See
// EXPERIMENTS.md for recorded outputs and the paper-vs-measured comparison.
//
// Usage:
//
//	pegbench                     # full suite at default (scaled-down) size
//	pegbench -only fig7e,fig7f   # selected figures
//	pegbench -main 2000 -sizes 500,1000,2000,4000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pegbench: ")
	cfg := harness.DefaultConfig()
	var (
		only    = flag.String("only", "", "comma-separated figure list (default: all)")
		sizes   = flag.String("sizes", "", "comma-separated graph sizes (refs)")
		offline = flag.String("offline-sizes", "", "comma-separated offline grid sizes")
		mainSz  = flag.Int("main", cfg.MainSize, "main graph size (the paper's 100k analog)")
		qpp     = flag.Int("queries", cfg.QueriesPerPoint, "random queries averaged per point")
		timeout = flag.Duration("timeout", cfg.QueryTimeout, "per-query timeout")
		seed    = flag.Int64("seed", cfg.Seed, "random seed")
	)
	flag.Parse()

	if *sizes != "" {
		cfg.Sizes = parseInts(*sizes)
	}
	if *offline != "" {
		cfg.OfflineSizes = parseInts(*offline)
	}
	cfg.MainSize = *mainSz
	cfg.QueriesPerPoint = *qpp
	cfg.QueryTimeout = *timeout
	cfg.Seed = *seed

	h, err := harness.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()

	start := time.Now()
	if *only == "" {
		if err := h.RunAll(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		figs := h.Figures()
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			fn, ok := figs[name]
			if !ok {
				log.Fatalf("unknown figure %q", name)
			}
			if err := fn(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out
}
