// Command pegbench reproduces the paper's evaluation (Section 6) at
// configurable scale, printing one paper-style table per figure. See
// EXPERIMENTS.md for recorded outputs and the paper-vs-measured comparison.
//
// -perf instead runs the stream-vs-collect API microbenchmarks — plus the
// planner rows: planner-overhead (cost of compiling a plan) and
// plan-cache-hit / plan-cache-hit-limit1 (executing a pre-compiled plan,
// i.e. what a server plan-cache hit runs), the metrics-observe row (the
// serving tier's per-request metrics hot path), and the open-loop
// multi-tenant serving scenarios from serve.go — and writes a
// machine-readable BENCH_<date>.json (ns/op, allocs/op, matches/sec, and
// serving rows with p50/p95/p99 plus the shed/canceled/cost-rejected
// breakdown) so the serving-path perf trajectory is tracked across PRs.
// -check additionally gates planner-overhead at <5% and metrics-observe at
// <2% of match-collect ns/op.
//
// Usage:
//
//	pegbench                     # full suite at default (scaled-down) size
//	pegbench -only fig7e,fig7f   # selected figures
//	pegbench -main 2000 -sizes 500,1000,2000,4000
//	pegbench -perf               # write BENCH_<date>.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"net/http"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/join"
	"repro/internal/metrics"
	"repro/internal/pathindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pegbench: ")
	cfg := harness.DefaultConfig()
	var (
		only       = flag.String("only", "", "comma-separated figure list (default: all)")
		sizes      = flag.String("sizes", "", "comma-separated graph sizes (refs)")
		offline    = flag.String("offline-sizes", "", "comma-separated offline grid sizes")
		mainSz     = flag.Int("main", cfg.MainSize, "main graph size (the paper's 100k analog)")
		qpp        = flag.Int("queries", cfg.QueriesPerPoint, "random queries averaged per point")
		timeout    = flag.Duration("timeout", cfg.QueryTimeout, "per-query timeout")
		seed       = flag.Int64("seed", cfg.Seed, "random seed")
		perf       = flag.Bool("perf", false, "run the stream-vs-collect API microbenchmarks instead of the figures")
		perfOut    = flag.String("perf-out", "", "perf JSON output path (default BENCH_<date>.json)")
		check      = flag.String("check", "", "baseline BENCH_*.json to compare -perf results against; exits non-zero on regression")
		threshold  = flag.Float64("check-threshold", 0.30, "allowed ns/op regression on gated rows vs the -check baseline")
		allocLimit = flag.Float64("check-alloc-threshold", 0.50, "allowed allocs/op growth on collect/stream vs the -check baseline")
	)
	flag.Parse()

	if *sizes != "" {
		cfg.Sizes = parseInts(*sizes)
	}
	if *offline != "" {
		cfg.OfflineSizes = parseInts(*offline)
	}
	cfg.MainSize = *mainSz
	cfg.QueriesPerPoint = *qpp
	cfg.QueryTimeout = *timeout
	cfg.Seed = *seed

	var baseline *perfFile
	if *check != "" {
		b, err := loadBaseline(*check)
		if err != nil {
			log.Fatal(err)
		}
		baseline = b
		// Measure at the baseline's workload size or the comparison is
		// meaningless.
		cfg.MainSize = baseline.MainSize
	}

	h, err := harness.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()

	if baseline != nil {
		if err := runCheck(h, baseline, *threshold, *allocLimit); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *perf {
		out := *perfOut
		if out == "" {
			out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
		}
		if err := runPerf(h, out); err != nil {
			log.Fatal(err)
		}
		return
	}

	start := time.Now()
	if *only == "" {
		if err := h.RunAll(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		figs := h.Figures()
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			fn, ok := figs[name]
			if !ok {
				log.Fatalf("unknown figure %q", name)
			}
			if err := fn(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

// perfFile is the machine-readable benchmark record written by -perf; one
// file per date, so the serving-path perf trajectory accumulates in the repo
// and regressions are diffable across PRs.
type perfFile struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	MainSize   int         `json:"main_size"`
	Alpha      float64     `json:"alpha"`
	QueryNodes int         `json:"query_nodes"`
	QueryEdges int         `json:"query_edges"`
	Benchmarks []perfBench `json:"benchmarks"`
	// Serving holds the open-loop serving-tier scenarios (see serve.go);
	// omitempty keeps older baselines parseable by -check.
	Serving []servingRow `json:"serving,omitempty"`
}

// perfBench is one benchmark row of the perf record.
type perfBench struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	MatchesPerOp  int     `json:"matches_per_op"`
	MatchesPerSec float64 `json:"matches_per_sec"`
}

// loadBaseline reads a previously committed -perf record.
func loadBaseline(path string) (*perfFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("check baseline: %w", err)
	}
	var rec perfFile
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("check baseline %s: %w", path, err)
	}
	if rec.MainSize <= 0 || len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("check baseline %s: empty record", path)
	}
	return &rec, nil
}

// checkedBenchmarks are the serving-path rows whose ns/op the regression
// gate watches: the bulk collect/stream shapes plus first-match latency and
// top-K (all pinned to the sequential join so the measurement does not
// depend on the runner's core count). The parallel rows are informational —
// their wall clock is a function of the machine.
var checkedBenchmarks = map[string]bool{
	"match-collect":       true,
	"match-stream":        true,
	"match-stream-limit1": true,
	"match-topk10-prob":   true,
	"plan-cache-hit":      true,
	// router-topk10 is the routed analog of match-topk10-prob: one request
	// at a time through the 2-shard scatter-gather cluster (see router.go),
	// so the fan-out/merge overhead is gated alongside the single-node rows.
	"router-topk10": true,
	// The packed-format read-path rows: raw Lookup throughput and the cold
	// open + first probe a generation flip pays (also under an absolute
	// budget — see checkOpenCold).
	"lookup-packed":   true,
	"index-open-cold": true,
	// The candidate-cache pair: first-match latency with an empty cache
	// (retrieval + prune + insert) versus a warmed one (hit path). Their
	// within-run ratio is additionally gated by checkCandCacheSpeedup.
	"first-match-cold": true,
	"first-match-warm": true,
	// candidates-parallel-p4 is the pre-join fan-out at a fixed width; like
	// the gated join rows it is pinned to a deterministic worker count, and
	// a faster runner only ever moves it below baseline.
	"candidates-parallel-p4": true,
}

// plannerOverheadBudget caps planner-overhead ns/op as a fraction of
// match-collect ns/op: planning a query must stay a rounding error next to
// executing it, or the planner refactor is eating its own lunch.
const plannerOverheadBudget = 0.05

// allocCheckedBenchmarks are the rows whose allocs/op growth fails the gate:
// the allocation-free join hot path must stay allocation-free, and steady
// allocs/op is far less machine-sensitive than wall clock.
// plan-cache-hit rides along so the cached-plan collect path cannot quietly
// re-grow the duplicate-collector allocations it once paid (16.2MB/op before
// the shared matchCollector, 7.3MB/op after).
var allocCheckedBenchmarks = map[string]bool{
	"match-collect":  true,
	"match-stream":   true,
	"plan-cache-hit": true,
}

// runCheck re-measures the perf rows and fails when a gated row's ns/op (or,
// for collect/stream, allocs/op) regressed more than the threshold versus
// the baseline — the CI smoke gate for the serving path.
func runCheck(h *harness.Harness, baseline *perfFile, threshold, allocLimit float64) error {
	rec, err := measurePerf(h)
	if err != nil {
		return err
	}
	base := make(map[string]perfBench, len(baseline.Benchmarks))
	for _, row := range baseline.Benchmarks {
		base[row.Name] = row
	}
	failed := 0
	for _, row := range rec.Benchmarks {
		b, ok := base[row.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := row.NsPerOp/b.NsPerOp - 1
		verdict := "ok"
		if checkedBenchmarks[row.Name] && ratio > threshold {
			verdict = "REGRESSION"
			failed++
		} else if !checkedBenchmarks[row.Name] {
			verdict = "info"
		}
		fmt.Printf("check %-22s %12.0f ns/op vs baseline %12.0f (%+6.1f%%) %s\n",
			row.Name, row.NsPerOp, b.NsPerOp, 100*ratio, verdict)
		if allocCheckedBenchmarks[row.Name] && b.AllocsPerOp > 0 {
			aratio := float64(row.AllocsPerOp)/float64(b.AllocsPerOp) - 1
			averdict := "ok"
			if aratio > allocLimit {
				averdict = "REGRESSION"
				failed++
			}
			fmt.Printf("check %-22s %12d allocs/op vs baseline %12d (%+6.1f%%) %s\n",
				row.Name, row.AllocsPerOp, b.AllocsPerOp, 100*aratio, averdict)
		}
	}
	if err := checkPlannerOverhead(rec); err != nil {
		return err
	}
	if err := checkMetricsOverhead(rec); err != nil {
		return err
	}
	if err := checkTraceOverhead(rec); err != nil {
		return err
	}
	if err := checkOpenCold(rec); err != nil {
		return err
	}
	if err := checkCandCacheSpeedup(rec); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark row(s) regressed more than the threshold (ns/op %.0f%%, allocs/op %.0f%%) vs baseline (%s, main=%d)",
			failed, 100*threshold, 100*allocLimit, baseline.Date, baseline.MainSize)
	}
	fmt.Printf("check passed vs baseline %s (ns/op threshold %.0f%%, allocs/op threshold %.0f%%)\n",
		baseline.Date, 100*threshold, 100*allocLimit)
	return nil
}

// checkPlannerOverhead gates planner-overhead against match-collect on the
// freshly measured rows (no baseline needed: the budget is a ratio within
// one run, so it is machine-independent).
func checkPlannerOverhead(rec *perfFile) error {
	var planner, collect *perfBench
	for i := range rec.Benchmarks {
		switch rec.Benchmarks[i].Name {
		case "planner-overhead":
			planner = &rec.Benchmarks[i]
		case "match-collect":
			collect = &rec.Benchmarks[i]
		}
	}
	if planner == nil || collect == nil || collect.NsPerOp <= 0 {
		return fmt.Errorf("planner-overhead gate: rows missing from the measurement")
	}
	ratio := planner.NsPerOp / collect.NsPerOp
	if ratio > plannerOverheadBudget {
		return fmt.Errorf("planner overhead %0.f ns/op is %.1f%% of match-collect (%0.f ns/op); budget is %.0f%%",
			planner.NsPerOp, 100*ratio, collect.NsPerOp, 100*plannerOverheadBudget)
	}
	fmt.Printf("check planner-overhead      %12.0f ns/op = %.2f%% of match-collect (budget %.0f%%) ok\n",
		planner.NsPerOp, 100*ratio, 100*plannerOverheadBudget)
	return nil
}

// metricsOverheadBudget caps metrics-observe ns/op as a fraction of
// match-collect ns/op: the per-request metrics hot path (one counter, seven
// histogram observations) must stay invisible next to executing a match.
const metricsOverheadBudget = 0.02

// checkMetricsOverhead gates metrics-observe against match-collect within
// one run (a ratio, so machine-independent — same shape as the planner
// gate).
func checkMetricsOverhead(rec *perfFile) error {
	var observe, collect *perfBench
	for i := range rec.Benchmarks {
		switch rec.Benchmarks[i].Name {
		case "metrics-observe":
			observe = &rec.Benchmarks[i]
		case "match-collect":
			collect = &rec.Benchmarks[i]
		}
	}
	if observe == nil || collect == nil || collect.NsPerOp <= 0 {
		return fmt.Errorf("metrics-overhead gate: rows missing from the measurement")
	}
	ratio := observe.NsPerOp / collect.NsPerOp
	if ratio > metricsOverheadBudget {
		return fmt.Errorf("metrics hot path %0.f ns/op is %.2f%% of match-collect (%0.f ns/op); budget is %.0f%%",
			observe.NsPerOp, 100*ratio, collect.NsPerOp, 100*metricsOverheadBudget)
	}
	fmt.Printf("check metrics-observe       %12.0f ns/op = %.3f%% of match-collect (budget %.0f%%) ok\n",
		observe.NsPerOp, 100*ratio, 100*metricsOverheadBudget)
	return nil
}

// traceOverheadBudget caps trace-overhead ns/op as a fraction of
// match-collect ns/op: a server built with tracing support but running with
// it disabled (nil tracer, no sampled context) must pay under 1% next to
// executing a match — the no-op span path is the price of having the
// instrumentation compiled in at all.
const traceOverheadBudget = 0.01

// checkTraceOverhead gates trace-overhead against match-collect within one
// run (a ratio, so machine-independent — same shape as the metrics gate).
func checkTraceOverhead(rec *perfFile) error {
	var overhead, collect *perfBench
	for i := range rec.Benchmarks {
		switch rec.Benchmarks[i].Name {
		case "trace-overhead":
			overhead = &rec.Benchmarks[i]
		case "match-collect":
			collect = &rec.Benchmarks[i]
		}
	}
	if overhead == nil || collect == nil || collect.NsPerOp <= 0 {
		return fmt.Errorf("trace-overhead gate: rows missing from the measurement")
	}
	ratio := overhead.NsPerOp / collect.NsPerOp
	if ratio > traceOverheadBudget {
		return fmt.Errorf("disabled-tracing span path %0.f ns/op is %.2f%% of match-collect (%0.f ns/op); budget is %.0f%%",
			overhead.NsPerOp, 100*ratio, collect.NsPerOp, 100*traceOverheadBudget)
	}
	fmt.Printf("check trace-overhead        %12.0f ns/op = %.3f%% of match-collect (budget %.0f%%) ok\n",
		overhead.NsPerOp, 100*ratio, 100*traceOverheadBudget)
	return nil
}

// candCacheSpeedupFloor is the minimum cold/warm ratio for the first-match
// pair: a warmed candidate cache must answer at least 2× faster than the
// empty-cache path, or the cache is not earning the memory it holds. A ratio
// within one run, so machine-independent — same shape as the planner gate.
const candCacheSpeedupFloor = 2.0

// checkCandCacheSpeedup gates first-match-warm against first-match-cold on
// the freshly measured rows.
func checkCandCacheSpeedup(rec *perfFile) error {
	var cold, warm *perfBench
	for i := range rec.Benchmarks {
		switch rec.Benchmarks[i].Name {
		case "first-match-cold":
			cold = &rec.Benchmarks[i]
		case "first-match-warm":
			warm = &rec.Benchmarks[i]
		}
	}
	if cold == nil || warm == nil || warm.NsPerOp <= 0 {
		return fmt.Errorf("cand-cache speedup gate: rows missing from the measurement")
	}
	speedup := cold.NsPerOp / warm.NsPerOp
	if speedup < candCacheSpeedupFloor {
		return fmt.Errorf("first-match-warm %0.f ns/op is only %.2fx faster than first-match-cold (%0.f ns/op); floor is %.1fx",
			warm.NsPerOp, speedup, cold.NsPerOp, candCacheSpeedupFloor)
	}
	fmt.Printf("check cand-cache-speedup    %12.2fx warm vs cold (floor %.1fx) ok\n",
		speedup, candCacheSpeedupFloor)
	return nil
}

// openColdBudgetNs is the absolute ceiling on index-open-cold: opening a
// packed index (header validation + mmap) plus its first probe on the
// standard workload must stay under 10ms, because a serving shard pays this
// on every generation flip. Absolute rather than a ratio: the row is
// dominated by fixed per-open work, not by match volume.
const openColdBudgetNs = 10e6

// checkOpenCold gates index-open-cold against the absolute budget on the
// freshly measured rows.
func checkOpenCold(rec *perfFile) error {
	var cold *perfBench
	for i := range rec.Benchmarks {
		if rec.Benchmarks[i].Name == "index-open-cold" {
			cold = &rec.Benchmarks[i]
		}
	}
	if cold == nil || cold.NsPerOp <= 0 {
		return fmt.Errorf("index-open-cold gate: row missing from the measurement")
	}
	if cold.NsPerOp > openColdBudgetNs {
		return fmt.Errorf("index-open-cold %0.f ns/op exceeds the %0.fms budget", cold.NsPerOp, openColdBudgetNs/1e6)
	}
	fmt.Printf("check index-open-cold       %12.0f ns/op (budget %.0fms) ok\n", cold.NsPerOp, openColdBudgetNs/1e6)
	return nil
}

// runPerf benchmarks the result-producing API shapes against each other on
// the main synthetic workload — full collect, streamed consumption,
// first-match (Limit 1), and top-K by probability — then runs the open-loop
// serving scenarios, and writes everything to out as JSON.
func runPerf(h *harness.Harness, out string) error {
	rec, err := measurePerf(h)
	if err != nil {
		return err
	}
	rec.Serving, err = measureServing(h.Config().Seed)
	if err != nil {
		return err
	}
	routerServing, err := measureRouterServing(h.Config().Seed)
	if err != nil {
		return err
	}
	rec.Serving = append(rec.Serving, *routerServing)
	for _, row := range rec.Serving {
		fmt.Printf("serving %-20s %6.0f qps offered: %d req = %d ok + %d failed + %d canceled + %d shed + %d cost-rejected; p50=%.0fµs p95=%.0fµs p99=%.0fµs\n",
			row.Scenario, row.OfferedQPS, row.Requests, row.Succeeded, row.Failed,
			row.Canceled, row.Shed, row.CostRejected, row.P50Micros, row.P95Micros, row.P99Micros)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// measurePerf runs the API-shape microbenchmarks and returns the record.
func measurePerf(h *harness.Harness) (*perfFile, error) {
	const (
		alpha      = 0.1
		queryNodes = 5
		queryEdges = 4
	)
	cfg := h.Config()
	g, err := h.Graph(cfg.MainSize, 0.2)
	if err != nil {
		return nil, err
	}
	gkey := fmt.Sprintf("synth-%d-0.20", cfg.MainSize)
	ix, err := h.Index(gkey, g, 3, 0.1)
	if err != nil {
		return nil, err
	}
	ixDir := h.IndexPath(gkey, 3, 0.1)
	ctx := context.Background()
	q, richness := harness.FindRichQuery(ix, queryNodes, queryEdges, alpha, cfg.Seed, 30)
	if richness == 0 {
		return nil, fmt.Errorf("perf: no viable query found")
	}

	// The gated rows pin Parallelism to 1 so the sequential serving
	// path is measured identically on every machine; the -pN rows measure
	// the morsel-parallel join (wall clock scales with cores, so they are
	// recorded but not gated).
	collect := func(par int) func() (int, error) {
		return func() (int, error) {
			res, err := core.Match(ctx, ix, q, core.Options{Alpha: alpha, Parallelism: par})
			if err != nil {
				return 0, err
			}
			return len(res.Matches), nil
		}
	}
	// Live metric instruments for the metrics-observe row: same families and
	// bucket layouts the server registers, observed the way finishRequest
	// observes them.
	benchRequests := metrics.NewCounterVec("bench_requests_total", "", "endpoint", "outcome")
	benchLatency := metrics.NewHistogramVec("bench_request_duration_seconds", "", "endpoint",
		metrics.ExpBuckets(1e-4, 4, 11))
	benchStages := metrics.NewHistogramVec("bench_stage_duration_seconds", "", "stage",
		metrics.ExpBuckets(1e-5, 4, 12))
	benchStageNames := []string{"plan", "decompose", "candidates", "reduce", "join", "total"}
	// plan-cache-hit executes a pre-compiled plan (what a server plan-cache
	// hit runs): match-collect minus planner-overhead, measured directly.
	prepared, err := core.Prepare(ctx, ix, q, core.Options{Alpha: alpha, Parallelism: 1})
	if err != nil {
		return nil, fmt.Errorf("prepare: %w", err)
	}
	// The first-match-cold/warm pair prices the candidate cache on a
	// prune-heavy shape: a triangle over the densest indexed 3-label
	// sequence. The in-path cycle check discards ~98% of path candidates
	// there, so retrieval + context pruning — exactly the work the cache
	// skips — dominates first-match latency; on join-heavy shapes the
	// k-partite build over the survivors dominates instead and the cache's
	// saving is real but proportionally small. Both rows execute the same
	// prepared plan, so the pair isolates the cache, not the planner.
	triSeq, err := densestSequence(ix, 3, alpha)
	if err != nil {
		return nil, err
	}
	triQ := query.New()
	ta := triQ.AddNode(triSeq[0])
	tb := triQ.AddNode(triSeq[1])
	tc := triQ.AddNode(triSeq[2])
	for _, e := range [][2]query.NodeID{{ta, tb}, {tb, tc}, {ta, tc}} {
		if err := triQ.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("triangle query: %w", err)
		}
	}
	preparedTri, err := core.Prepare(ctx, ix, triQ, core.Options{Alpha: alpha, Parallelism: 1})
	if err != nil {
		return nil, fmt.Errorf("prepare triangle: %w", err)
	}
	// warmCache backs the first-match-warm row; the row's initial (untimed)
	// run populates it, so every benchmarked iteration is a pure hit.
	warmCache := candidates.NewCache(0)
	// lookup-packed probes a fixed, deterministic sample of the indexed label
	// sequences (Sequences() is sorted) straight through Index.Lookup — the
	// raw read path under the executor, where the packed format's zero-copy
	// decode shows up undiluted by join work. index-open-cold prices a cold
	// start — Open (header validation + mmap) plus the first probe — which the
	// packed layout must keep in single-digit milliseconds since every
	// generation flip on a serving shard pays it.
	allSeqs := ix.Sequences()
	if len(allSeqs) == 0 {
		return nil, fmt.Errorf("perf: index has no sequences")
	}
	probeSeqs := allSeqs
	if len(probeSeqs) > 64 {
		sampled := make([][]prob.LabelID, 0, 64)
		for i := 0; i < 64; i++ {
			sampled = append(sampled, allSeqs[i*len(allSeqs)/64])
		}
		probeSeqs = sampled
	}
	openProbe := allSeqs[len(allSeqs)-1]
	variants := []struct {
		name string
		run  func() (matches int, err error)
	}{
		{"match-collect", collect(1)},
		{"planner-overhead", func() (int, error) {
			_, err := core.Prepare(ctx, ix, q, core.Options{Alpha: alpha, Parallelism: 1})
			return 0, err
		}},
		{"plan-cache-hit", func() (int, error) {
			res, err := core.MatchPlan(ctx, ix, prepared, core.Options{Alpha: alpha, Parallelism: 1})
			if err != nil {
				return 0, err
			}
			return len(res.Matches), nil
		}},
		{"match-stream", func() (int, error) {
			st, err := core.MatchStream(ctx, ix, q, core.Options{Alpha: alpha, Parallelism: 1},
				func(join.Match) bool { return true })
			return st.Matched, err
		}},
		{"match-stream-limit1", func() (int, error) {
			st, err := core.MatchStream(ctx, ix, q, core.Options{Alpha: alpha, Limit: 1, Parallelism: 1},
				func(join.Match) bool { return true })
			return st.Matched, err
		}},
		// The same first-match shape on a cached plan: the limit1 pair is
		// where the plan-cache saving is proportionally largest, since
		// planning is a fixed cost per request while the join is cut short.
		{"plan-cache-hit-limit1", func() (int, error) {
			st, err := core.MatchStreamPlan(ctx, ix, prepared, core.Options{Alpha: alpha, Limit: 1, Parallelism: 1},
				func(join.Match) bool { return true })
			return st.Matched, err
		}},
		// Cold starts every op with an empty cache, so it pays per-path
		// Lookup + context prune + cache insert; warm reuses one persistent
		// cache (populated by the row's initial run), so pruned candidate
		// sets come back by key and the op runs build + reduce + first join
		// row only. checkCandCacheSpeedup holds warm to ≥2× within this
		// run. Workers pinned to 1 like every gated row.
		{"first-match-cold", func() (int, error) {
			st, err := core.MatchStreamPlan(ctx, ix, preparedTri,
				core.Options{Alpha: alpha, Limit: 1, Parallelism: 1, Workers: 1,
					CandCache: candidates.NewCache(0)},
				func(join.Match) bool { return true })
			return st.Matched, err
		}},
		{"first-match-warm", func() (int, error) {
			st, err := core.MatchStreamPlan(ctx, ix, preparedTri,
				core.Options{Alpha: alpha, Limit: 1, Parallelism: 1, Workers: 1,
					CandCache: warmCache},
				func(join.Match) bool { return true })
			return st.Matched, err
		}},
		// The pre-join candidate stage alone at a fixed fan-out width —
		// per-path Lookup + context prune across 4 workers, no cache.
		{"candidates-parallel-p4", func() (int, error) {
			sets, _, err := candidates.Find(ctx, ix, q, prepared.Dec, alpha, 4, nil)
			if err != nil {
				return 0, err
			}
			n := 0
			for _, s := range sets {
				n += len(s.Cands)
			}
			return n, nil
		}},
		{"match-topk10-prob", func() (int, error) {
			st, err := core.MatchStream(ctx, ix, q,
				core.Options{Alpha: alpha, Limit: 10, Order: core.OrderByProb, Parallelism: 1},
				func(join.Match) bool { return true })
			return st.Matched, err
		}},
		{"lookup-packed", func() (int, error) {
			n := 0
			for _, X := range probeSeqs {
				ms, err := ix.Lookup(X, alpha)
				if err != nil {
					return 0, err
				}
				n += len(ms)
			}
			return n, nil
		}},
		{"index-open-cold", func() (int, error) {
			cold, err := pathindex.Open(ixDir, g)
			if err != nil {
				return 0, err
			}
			ms, err := cold.Lookup(openProbe, alpha)
			if err != nil {
				cold.Close()
				return 0, err
			}
			if err := cold.Close(); err != nil {
				return 0, err
			}
			return len(ms), nil
		}},
		// metrics-observe replays the serving tier's full per-request metrics
		// hot path (outcome counter, endpoint latency histogram, six stage
		// histograms) against live instruments from internal/metrics — the
		// cost /metrics support adds to every served request, gated by
		// checkMetricsOverhead at <2% of match-collect.
		{"metrics-observe", func() (int, error) {
			benchRequests.WithLabelValues("match", "ok").Inc()
			benchLatency.WithLabelValue("match").Observe(1.2e-3)
			for _, st := range benchStageNames {
				benchStages.WithLabelValue(st).Observe(3.4e-4)
			}
			return 0, nil
		}},
		// trace-overhead replays the span operations a request passes through
		// on a server where tracing is compiled in but disabled (nil tracer,
		// no remote context): traceparent extraction, root + child StartSpan,
		// the executor's stage RecordSpans, and the terminal attrs — all
		// no-ops that must stay under checkTraceOverhead's <1% of
		// match-collect. The -sampled twin prices the same sequence with a
		// live tracer recording every span (ring writes, id minting) and is
		// informational.
		{"trace-overhead", traceReplay(ctx, nil)},
		{"trace-overhead-sampled", traceReplay(ctx, trace.New(trace.Config{Service: "bench", Sample: 1}))},
		{"match-collect-p2", collect(2)},
		{"match-collect-p4", collect(4)},
		{"match-topk10-prob-p4", func() (int, error) {
			st, err := core.MatchStream(ctx, ix, q,
				core.Options{Alpha: alpha, Limit: 10, Order: core.OrderByProb, Parallelism: 4},
				func(join.Match) bool { return true })
			return st.Matched, err
		}},
	}

	rec := perfFile{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		MainSize:   cfg.MainSize,
		Alpha:      alpha,
		QueryNodes: queryNodes,
		QueryEdges: queryEdges,
	}
	for _, v := range variants {
		matches, err := v.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := v.run(); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("%s: %w", v.name, benchErr)
		}
		ns := float64(r.NsPerOp())
		row := perfBench{
			Name:         v.name,
			NsPerOp:      ns,
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			MatchesPerOp: matches,
		}
		if ns > 0 {
			row.MatchesPerSec = float64(matches) * 1e9 / ns
		}
		rec.Benchmarks = append(rec.Benchmarks, row)
		fmt.Printf("%-22s %12.0f ns/op %8d allocs/op %6d matches %12.0f matches/s\n",
			v.name, row.NsPerOp, row.AllocsPerOp, row.MatchesPerOp, row.MatchesPerSec)
	}

	// The cluster-tier row (its own small fixed-size workload — see
	// router.go) rides in measurePerf rather than runPerf so -check gates it
	// too.
	routerRow, err := measureRouterPerf(cfg.Seed)
	if err != nil {
		return nil, err
	}
	rec.Benchmarks = append(rec.Benchmarks, *routerRow)
	fmt.Printf("%-22s %12.0f ns/op %8d allocs/op %6d matches %12.0f matches/s\n",
		routerRow.Name, routerRow.NsPerOp, routerRow.AllocsPerOp, routerRow.MatchesPerOp, routerRow.MatchesPerSec)
	return &rec, nil
}

// densestSequence returns the indexed label sequence of the given length
// with the most path matches at alpha — a deterministic pick (Sequences()
// is sorted) of the workload's heaviest posting list.
func densestSequence(ix *pathindex.Index, length int, alpha float64) ([]prob.LabelID, error) {
	var best []prob.LabelID
	bestN := -1
	for _, seq := range ix.Sequences() {
		if len(seq) != length {
			continue
		}
		ms, err := ix.Lookup(seq, alpha)
		if err != nil {
			return nil, err
		}
		if len(ms) > bestN {
			bestN = len(ms)
			best = seq
		}
	}
	if best == nil {
		return nil, fmt.Errorf("perf: no indexed sequence of length %d", length)
	}
	return best, nil
}

// traceReplay builds the trace-overhead benchmark body: one request's worth
// of span traffic as the server shapes it — extract, a root request span
// with attrs, an admission child, five stage RecordSpans, and the settled
// root. With tr == nil every call is the no-op path the disabled-tracing
// gate prices; with a sampling tracer the same sequence measures full
// recording cost.
func traceReplay(ctx context.Context, tr *trace.Tracer) func() (int, error) {
	hdr := http.Header{}
	stages := []string{"stage.plan", "stage.candidates", "stage.build", "stage.reduce", "stage.join"}
	return func() (int, error) {
		if sc, ok := trace.Extract(hdr); ok {
			ctx = trace.ContextWithRemote(ctx, sc)
		}
		sctx, sp := tr.StartSpan(ctx, "serve.match")
		sp.SetAttr("request_id", "bench")
		_, asp := tr.StartSpan(sctx, "admission")
		asp.SetAttr("outcome", "ok")
		asp.End()
		start := time.Now()
		for _, st := range stages {
			tr.RecordSpan(sctx, st, start, time.Microsecond, nil)
		}
		sp.SetAttr("outcome", "ok")
		sp.End()
		return 0, nil
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out
}
