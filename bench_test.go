// Benchmarks reproducing every table and figure of the paper's evaluation
// (Section 6), one benchmark family per figure. Run with:
//
//	go test -bench=. -benchmem
//
// Scale: graphs are scaled down from the paper's 50k–1m references to run on
// a small machine (see EXPERIMENTS.md for the mapping and recorded results);
// the cmd/pegbench harness runs the same experiments at configurable scale
// and prints paper-style tables.
package peg_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/join"
	"repro/internal/pathindex"
	"repro/internal/query"
	"repro/internal/sqlbase"
)

// Scaled-down stand-ins for the paper's 50k/100k/500k/1m reference graphs.
// (Three sizes rather than four: the largest L=3 β=0.1 build dominates the
// whole suite's wall clock on a small machine; cmd/pegbench accepts -sizes
// to sweep larger graphs.)
var benchSizes = []int{300, 600, 1200}

const benchMain = 600 // the "100k" analog used by most online experiments

var benchH *harness.Harness

func TestMain(m *testing.M) {
	cfg := harness.DefaultConfig()
	cfg.Sizes = benchSizes
	cfg.OfflineSizes = []int{300, 600}
	cfg.MainSize = benchMain
	cfg.QueriesPerPoint = 1
	var err error
	benchH, err = harness.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench setup:", err)
		os.Exit(1)
	}
	code := m.Run()
	benchH.Close()
	os.Exit(code)
}

func benchGraph(b *testing.B, refs int, uncertain float64) *entity.Graph {
	b.Helper()
	g, err := benchH.Graph(refs, uncertain)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchIndex(b *testing.B, refs int, uncertain float64, L int) *pathindex.Index {
	b.Helper()
	g := benchGraph(b, refs, uncertain)
	ix, err := benchH.Index(fmt.Sprintf("synth-%d-%.2f", refs, uncertain), g, L, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

func benchQuery(b *testing.B, g *entity.Graph, n, m int, seed int64) *query.Query {
	b.Helper()
	q, err := gen.RandomQuery(rand.New(rand.NewSource(seed)), g.NumLabels(), n, m)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

func runMatch(b *testing.B, ix *pathindex.Index, q *query.Query, opt core.Options) *core.Result {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := core.Match(ctx, ix, q, opt)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// streamBenchQuery picks the random q(5,4) with the largest match set at
// α=0.1 on the main synthetic index, so the stream-vs-collect benchmarks
// measure a match-rich workload where the difference matters.
func streamBenchQuery(b *testing.B, ix *pathindex.Index) *query.Query {
	b.Helper()
	q, n := harness.FindRichQuery(ix, 5, 4, 0.1, 51, 20)
	if n == 0 {
		b.Skip("no match-rich query found")
	}
	return q
}

// BenchmarkMatchCollect is the buffered baseline for the streaming API:
// one full core.Match run (all matches materialized and sorted).
func BenchmarkMatchCollect(b *testing.B) {
	ix := benchIndex(b, benchMain, 0.2, 3)
	q := streamBenchQuery(b, ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runMatch(b, ix, q, core.Options{Alpha: 0.1, Parallelism: 1})
		if i == 0 {
			b.ReportMetric(float64(len(res.Matches)), "matches")
		}
	}
}

// BenchmarkMatchCollectParallel is the morsel-parallel join on the same
// workload: Parallelism 0 fans the first join level out over GOMAXPROCS
// workers, so running with -cpu 1,4 measures the scaling (identical results
// either way; at -cpu 1 it degenerates to the sequential path). On
// multi-core hardware the 4-proc run is expected to be ≥ 2× faster than
// -cpu 1 — asserted here as a benchmark note rather than in CI because the
// dev container is single-core.
func BenchmarkMatchCollectParallel(b *testing.B) {
	ix := benchIndex(b, benchMain, 0.2, 3)
	q := streamBenchQuery(b, ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runMatch(b, ix, q, core.Options{Alpha: 0.1, Parallelism: 0})
		if i == 0 {
			b.ReportMetric(float64(len(res.Matches)), "matches")
		}
	}
}

// BenchmarkMatchStream consumes the same result set through MatchStream —
// no buffering, no final sort.
func BenchmarkMatchStream(b *testing.B) {
	ix := benchIndex(b, benchMain, 0.2, 3)
	q := streamBenchQuery(b, ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := core.MatchStream(context.Background(), ix, q, core.Options{Alpha: 0.1, Parallelism: 1},
			func(join.Match) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(st.Matched), "matches")
		}
	}
}

// BenchmarkMatchLimit1 is first-match latency: MatchStream with Limit=1
// aborts the join at the first hit, which must beat the full Match run on
// the same workload.
func BenchmarkMatchLimit1(b *testing.B) {
	ix := benchIndex(b, benchMain, 0.2, 3)
	q := streamBenchQuery(b, ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := core.MatchStream(context.Background(), ix, q, core.Options{Alpha: 0.1, Limit: 1, Parallelism: 1},
			func(join.Match) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		if st.Matched != 1 {
			b.Fatalf("matched %d", st.Matched)
		}
	}
}

// BenchmarkMatchTopK is probability-ordered top-10 retrieval: the join runs
// to completion but only a bounded 10-element heap is kept.
func BenchmarkMatchTopK(b *testing.B) {
	ix := benchIndex(b, benchMain, 0.2, 3)
	q := streamBenchQuery(b, ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.MatchStream(context.Background(), ix, q,
			core.Options{Alpha: 0.1, Limit: 10, Order: core.OrderByProb, Parallelism: 1},
			func(join.Match) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6aOfflineTime reproduces Figure 6(a): offline phase running
// time over the (β, graph size, L) grid. Each iteration is one full build.
func BenchmarkFig6aOfflineTime(b *testing.B) {
	for _, size := range []int{300, 600} {
		g := benchGraph(b, size, 0.2)
		for _, beta := range []float64{0.9, 0.7, 0.5, 0.3} {
			for _, L := range []int{1, 2, 3} {
				b.Run(fmt.Sprintf("beta=%.1f/refs=%d/L=%d", beta, size, L), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						st, err := benchH.BuildIndexUncached(g, L, beta, fmt.Sprintf("b6a-%d", i))
						if err != nil {
							b.Fatal(err)
						}
						b.ReportMetric(float64(st.Entries), "entries")
					}
				})
			}
		}
	}
}

// BenchmarkFig6bIndexSize reproduces Figure 6(b): path index size over the
// same grid, reported as bytes on disk.
func BenchmarkFig6bIndexSize(b *testing.B) {
	for _, size := range []int{300, 600} {
		g := benchGraph(b, size, 0.2)
		for _, beta := range []float64{0.9, 0.5} {
			for _, L := range []int{1, 2, 3} {
				b.Run(fmt.Sprintf("beta=%.1f/refs=%d/L=%d", beta, size, L), func(b *testing.B) {
					var bytes int64
					for i := 0; i < b.N; i++ {
						st, err := benchH.BuildIndexUncached(g, L, beta, fmt.Sprintf("b6b-%d", i))
						if err != nil {
							b.Fatal(err)
						}
						bytes = st.Bytes
					}
					b.ReportMetric(float64(bytes), "index-bytes")
				})
			}
		}
	}
}

// BenchmarkFig6cQuerySize reproduces Figure 6(c): online time vs query size
// for Optimized L=1..3 and the two baselines, α=0.7.
func BenchmarkFig6cQuerySize(b *testing.B) {
	specs := []struct{ n, m int }{{3, 3}, {5, 10}, {7, 21}, {9, 36}, {11, 44}, {13, 52}, {15, 60}}
	variants := []struct {
		name     string
		L        int
		strategy core.Strategy
	}{
		{"OptimizedL1", 1, core.StrategyOptimized},
		{"OptimizedL2", 2, core.StrategyOptimized},
		{"OptimizedL3", 3, core.StrategyOptimized},
		{"NoSSReductionL3", 3, core.StrategyNoSSReduction},
		{"RandomDecompL3", 3, core.StrategyRandomDecomp},
	}
	for _, v := range variants {
		ix := benchIndex(b, benchMain, 0.2, v.L)
		for _, spec := range specs {
			q := benchQuery(b, ix.Graph(), spec.n, spec.m, 42)
			b.Run(fmt.Sprintf("%s/q(%d,%d)", v.name, spec.n, spec.m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runMatch(b, ix, q, core.Options{
						Alpha: 0.7, Strategy: v.strategy,
						Rand: rand.New(rand.NewSource(1)),
					})
				}
			})
		}
	}
}

// BenchmarkFig6dQueryDensity reproduces Figure 6(d): online time vs query
// density, q(15, 20..100), α=0.7.
func BenchmarkFig6dQueryDensity(b *testing.B) {
	for _, L := range []int{1, 2, 3} {
		ix := benchIndex(b, benchMain, 0.2, L)
		for _, m := range []int{20, 40, 60, 80, 100} {
			q := benchQuery(b, ix.Graph(), 15, m, 43)
			b.Run(fmt.Sprintf("L=%d/q(15,%d)", L, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runMatch(b, ix, q, core.Options{Alpha: 0.7})
				}
			})
		}
	}
}

// BenchmarkFig6eUncertainty5 reproduces Figure 6(e): 5-node queries across
// graph uncertainty levels.
func BenchmarkFig6eUncertainty5(b *testing.B) {
	benchUncertainty(b, []struct{ n, m int }{{5, 5}, {5, 9}})
}

// BenchmarkFig6fUncertainty10 reproduces Figure 6(f): 10-node queries across
// graph uncertainty levels.
func BenchmarkFig6fUncertainty10(b *testing.B) {
	benchUncertainty(b, []struct{ n, m int }{{10, 20}, {10, 40}})
}

func benchUncertainty(b *testing.B, specs []struct{ n, m int }) {
	for _, unc := range []float64{0.2, 0.4, 0.6, 0.8} {
		for _, L := range []int{1, 2, 3} {
			ix := benchIndex(b, benchMain, unc, L)
			for _, spec := range specs {
				q := benchQuery(b, ix.Graph(), spec.n, spec.m, 44)
				b.Run(fmt.Sprintf("unc=%.0f%%/L=%d/q(%d,%d)", unc*100, L, spec.n, spec.m), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runMatch(b, ix, q, core.Options{Alpha: 0.7})
					}
				})
			}
		}
	}
}

// BenchmarkFig7aGraphSize5 reproduces Figure 7(a): 5-node queries across
// graph sizes.
func BenchmarkFig7aGraphSize5(b *testing.B) {
	benchGraphSize(b, []struct{ n, m int }{{5, 5}, {5, 9}})
}

// BenchmarkFig7bGraphSize10 reproduces Figure 7(b): 10-node queries across
// graph sizes.
func BenchmarkFig7bGraphSize10(b *testing.B) {
	benchGraphSize(b, []struct{ n, m int }{{10, 20}, {10, 40}})
}

func benchGraphSize(b *testing.B, specs []struct{ n, m int }) {
	for _, size := range benchSizes {
		for _, L := range []int{1, 2, 3} {
			ix := benchIndex(b, size, 0.2, L)
			for _, spec := range specs {
				q := benchQuery(b, ix.Graph(), spec.n, spec.m, 45)
				b.Run(fmt.Sprintf("refs=%d/L=%d/q(%d,%d)", size, L, spec.n, spec.m), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runMatch(b, ix, q, core.Options{Alpha: 0.7})
					}
				})
			}
		}
	}
}

// BenchmarkFig7cThreshold5 reproduces Figure 7(c): 5-node queries across
// query thresholds.
func BenchmarkFig7cThreshold5(b *testing.B) {
	benchThreshold(b, []struct{ n, m int }{{5, 5}, {5, 9}})
}

// BenchmarkFig7dThreshold10 reproduces Figure 7(d): 10-node queries across
// query thresholds.
func BenchmarkFig7dThreshold10(b *testing.B) {
	benchThreshold(b, []struct{ n, m int }{{10, 20}, {10, 40}})
}

func benchThreshold(b *testing.B, specs []struct{ n, m int }) {
	for _, L := range []int{1, 2, 3} {
		ix := benchIndex(b, benchMain, 0.2, L)
		for _, alpha := range []float64{0.3, 0.5, 0.7, 0.9} {
			for _, spec := range specs {
				q := benchQuery(b, ix.Graph(), spec.n, spec.m, 46)
				b.Run(fmt.Sprintf("L=%d/alpha=%.1f/q(%d,%d)", L, alpha, spec.n, spec.m), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runMatch(b, ix, q, core.Options{Alpha: alpha})
					}
				})
			}
		}
	}
}

// BenchmarkFig7eSearchSpace reproduces Figure 7(e): the search-space
// progression Path → Path+Context → Final, reported as log10 metrics.
func BenchmarkFig7eSearchSpace(b *testing.B) {
	for _, unc := range []float64{0.2, 0.8} {
		for _, L := range []int{1, 2, 3} {
			ix := benchIndex(b, benchMain, unc, L)
			seed := harness.FindQuerySeed(ix, ix.Graph().NumLabels(), 5, 7, 0.7, 47, 30)
			q := benchQuery(b, ix.Graph(), 5, 7, seed)
			b.Run(fmt.Sprintf("unc=%.0f%%/L=%d", unc*100, L), func(b *testing.B) {
				var st core.Stats
				for i := 0; i < b.N; i++ {
					res := runMatch(b, ix, q, core.Options{Alpha: 0.7})
					st = res.Stats
				}
				b.ReportMetric(log10m(st.SSPath), "log10-ss-path")
				b.ReportMetric(log10m(st.SSContext), "log10-ss-context")
				b.ReportMetric(log10m(st.SSFinal), "log10-ss-final")
			})
		}
	}
}

// BenchmarkFig7fReduction reproduces Figure 7(f): reduction by structure vs
// by upperbounds on a 5-cycle at α=0.1, reported as log10 reduction ratios.
func BenchmarkFig7fReduction(b *testing.B) {
	for _, unc := range []float64{0.2, 0.4, 0.6, 0.8} {
		for _, L := range []int{1, 2, 3} {
			ix := benchIndex(b, benchMain, unc, L)
			q, err := gen.CycleQuery(rand.New(rand.NewSource(48)), ix.Graph().NumLabels(), 5)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("unc=%.0f%%/L=%d", unc*100, L), func(b *testing.B) {
				var st core.ReductionStats
				for i := 0; i < b.N; i++ {
					var err error
					st, err = core.ProbeReduction(context.Background(), ix, q, 0.1, 0)
					if err != nil {
						b.Fatal(err)
					}
				}
				if st.SSBefore > 0 {
					b.ReportMetric(log10m(st.SSAfterStructure/st.SSBefore), "log10-ST-ratio")
					b.ReportMetric(log10m(st.SSAfterUpperbound/st.SSBefore), "log10-UP-ratio")
				}
			})
		}
	}
}

// BenchmarkFig7gDBLP reproduces Figure 7(g): the five collaboration patterns
// over the DBLP stand-in with correlated edges, α=0.1.
func BenchmarkFig7gDBLP(b *testing.B) {
	benchPatterns(b, "dblp", func() (*entity.Graph, error) {
		d, err := gen.DBLP(gen.DBLPOptions{Authors: benchMain, Seed: 42})
		if err != nil {
			return nil, err
		}
		return entity.Build(d, entity.BuildOptions{})
	}, false)
}

// BenchmarkFig7hIMDB reproduces Figure 7(h): the five co-starring patterns
// over the IMDB stand-in with independent edges, α=0.1.
func BenchmarkFig7hIMDB(b *testing.B) {
	benchPatterns(b, "imdb", func() (*entity.Graph, error) {
		d, err := gen.IMDB(gen.IMDBOptions{Actors: benchMain, Seed: 42})
		if err != nil {
			return nil, err
		}
		return entity.Build(d, entity.BuildOptions{})
	}, true)
}

func benchPatterns(b *testing.B, key string, build func() (*entity.Graph, error), uniform bool) {
	g, err := benchH.NamedGraph(key, build)
	if err != nil {
		b.Fatal(err)
	}
	for _, L := range []int{1, 2, 3} {
		ix, err := benchH.Index(key, g, L, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		for _, pat := range gen.Patterns() {
			q, err := gen.PatternQueryRandomLabels(pat, rand.New(rand.NewSource(49)), g.NumLabels(), uniform)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("L=%d/%s", L, pat), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runMatch(b, ix, q, core.Options{Alpha: 0.1})
				}
			})
		}
	}
}

// BenchmarkSQLBaseline reproduces the Section 6.2.1 SQL comparison: our
// optimized approach vs the relational engine on q(5,7) at α=0.7. The
// relational side runs under a 5-second deadline (the paper's MySQL run
// never finished); a timeout is reported as the metric value -1.
func BenchmarkSQLBaseline(b *testing.B) {
	ix := benchIndex(b, benchMain, 0.2, 3)
	g := ix.Graph()
	q := benchQuery(b, g, 5, 7, 50)

	b.Run("peg-optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runMatch(b, ix, q, core.Options{Alpha: 0.7})
		}
	})
	b.Run("sqlbase", func(b *testing.B) {
		db := sqlbase.NewDB(g)
		for i := 0; i < b.N; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_, err := db.Query(ctx, q, 0.7)
			cancel()
			if err == context.DeadlineExceeded {
				b.ReportMetric(-1, "timed-out")
			} else if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func log10m(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return math.Log10(v)
}
