// Package peg is a library for subgraph pattern matching over uncertain
// graphs with identity linkage uncertainty, reproducing Moustafa, Kimmig,
// Deshpande & Getoor, "Subgraph Pattern Matching over Uncertain Graphs with
// Identity Linkage Uncertainty" (ICDE 2014).
//
// The model combines three kinds of uncertainty over graph data:
//
//   - node attribute (label) uncertainty — a probability distribution over
//     labels per node,
//   - edge existence uncertainty — per-edge existence probabilities,
//     optionally conditioned on the endpoint labels, and
//   - identity uncertainty — observed references may denote the same
//     real-world entity, with a merge probability per candidate set.
//
// # Workflow
//
// Build a reference-level description (PGD), transform it into a
// probabilistic entity graph, build the disk-based context-aware path index
// offline, and answer threshold queries online:
//
//	alpha, _ := peg.NewAlphabet("a", "r", "i")
//	d := peg.NewPGD(alpha)
//	r1 := d.AddReference(peg.MustDist(
//		peg.LabelProb{Label: alpha.ID("r"), P: 0.25},
//		peg.LabelProb{Label: alpha.ID("i"), P: 0.75}))
//	...
//	g, err := peg.BuildGraph(d)
//	ix, err := peg.BuildIndex(ctx, g, peg.IndexOptions{MaxLen: 3, Beta: 0.1, Gamma: 0.1, Dir: dir})
//	q := peg.NewQuery()
//	...
//	res, err := peg.Match(ctx, ix, q, peg.MatchOptions{Alpha: 0.25})
//
// # Streaming
//
// Match buffers the full result set. When the caller wants the first page —
// or the top-K by probability — stream instead: matches flow out of the join
// enumeration as they are found, and Limit or breaking the loop aborts the
// remaining search immediately:
//
//	for m, err := range peg.MatchSeq(ctx, ix, q, peg.MatchOptions{Alpha: 0.25, Limit: 10}) {
//		if err != nil { ... }
//		use(m)
//	}
//
// The join enumeration itself is morsel-parallel: MatchOptions.Parallelism
// (default 0 = GOMAXPROCS) fans the search out over worker goroutines with
// allocation-free per-worker scratch state, and Match / OrderByProb results
// are exactly the sequential ones at any parallelism. Set Parallelism: 1
// when serving many concurrent queries (the server does this by default).
//
// # Live ingest
//
// The offline artifacts above are immutable; a LiveDB makes the system
// writable while queries keep serving. Mutations (AddRef / AddEdge /
// SetLinkage evidence) are WAL-logged, folded into the entity graph
// incrementally, and merged into query results through an in-memory delta
// overlay; a background compactor folds everything into fresh on-disk
// generations:
//
//	db, err := peg.CreateLive(ctx, dir, d, peg.LiveOptions{Index: peg.IndexOptions{MaxLen: 3, Beta: 0.1, Gamma: 0.1}})
//	res, err := db.Apply([]peg.Mutation{{Op: peg.OpSetLinkage, Members: []peg.RefID{r3, r4}, P: 0.5}})
//	matches, err := peg.Match(ctx, db.View(), q, peg.MatchOptions{Alpha: 0.25})
//
// See examples/ for complete programs and DESIGN.md for the system map
// (including the "Live updates" layer map).
package peg

import (
	"context"
	"iter"
	"net/http"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/join"
	"repro/internal/live"
	"repro/internal/pathindex"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/refgraph"
	"repro/internal/server"
)

// Core model types, re-exported from the implementation packages. The
// aliases are the public API; the internal packages are not importable by
// downstream modules.
type (
	// Alphabet interns label strings to dense ids.
	Alphabet = prob.Alphabet
	// LabelID is an interned label.
	LabelID = prob.LabelID
	// LabelProb is one entry of a label distribution.
	LabelProb = prob.LabelProb
	// Dist is a discrete probability distribution over labels.
	Dist = prob.Dist
	// MergeFuncs bundles the label and edge merge functions mΣ and m{T,F}.
	MergeFuncs = prob.MergeFuncs

	// PGD is the reference-level probabilistic graph description.
	PGD = refgraph.PGD
	// RefID identifies a reference in a PGD.
	RefID = refgraph.RefID
	// EdgeDist is a reference edge's existence distribution (optionally a
	// label-conditioned CPT).
	EdgeDist = refgraph.EdgeDist

	// Graph is the probabilistic entity graph (PEG).
	Graph = entity.Graph
	// EntityID identifies an entity node.
	EntityID = entity.ID
	// BuildOptions configures PEG construction.
	BuildOptions = entity.BuildOptions
	// Semantics selects the identity component scoring.
	Semantics = entity.Semantics

	// Index is the context-aware path index (offline phase artifact).
	Index = pathindex.Index
	// IndexReader is the query-time index surface: *Index implements it, and
	// so does a live database view (base index ⊕ in-memory delta overlay).
	// Match, MatchStream, MatchSeq, and NewServer accept any IndexReader.
	IndexReader = pathindex.Reader
	// IndexOptions configures index construction.
	IndexOptions = pathindex.Options
	// IndexStats reports offline phase metrics.
	IndexStats = pathindex.BuildStats
	// IndexFormat selects the index layout: IndexFormatPacked (v2, the
	// default — one mmap'd file, zero-copy reads) or IndexFormatBTree (v1).
	IndexFormat = pathindex.Format

	// LiveDB is the writable database: a PGD plus serving state accepting
	// mutations at query time, backed by a CRC-protected mutation log, an
	// incremental entity-graph delta, an in-memory overlay index, and a
	// background compactor publishing fresh on-disk generations.
	LiveDB = live.DB
	// LiveOptions configures a live database (index parameters per
	// generation, compaction thresholds, publisher).
	LiveOptions = live.Options
	// LiveView is one immutable snapshot of a live database; it implements
	// IndexReader.
	LiveView = live.View
	// LiveStatus summarizes a live database's generation and overlay state.
	LiveStatus = live.Status
	// Mutation is one write against a live database: add-ref, add-edge, or
	// set-linkage (merge-probability evidence).
	Mutation = live.Mutation
	// MutationLabel is one label entry of an add-ref mutation.
	MutationLabel = live.LabelP
	// ApplyResult summarizes one accepted mutation batch.
	ApplyResult = live.ApplyResult

	// Query is a labeled query graph.
	Query = query.Query
	// QueryNodeID identifies a query node.
	QueryNodeID = query.NodeID

	// MatchRecord is a full query match with its probability components
	// (mapping ψ plus Prle and Prn).
	MatchRecord = join.Match
	// MatchOptions configures a match run: threshold, strategy, the
	// streaming knobs Limit and Order, and Parallelism (morsel-parallel
	// join execution; 0 = GOMAXPROCS, 1 = sequential — results are
	// identical either way for Match and OrderByProb streams).
	MatchOptions = core.Options
	// MatchResult bundles matches with per-stage statistics.
	MatchResult = core.Result
	// MatchStats reports per-stage search-space and timing data, including
	// the Matched count and the Truncated flag of limited runs.
	MatchStats = core.Stats
	// Strategy selects the matching variant (optimized or a baseline).
	Strategy = core.Strategy
	// ResultOrder selects how streamed matches are ordered (OrderEmit or
	// OrderByProb).
	ResultOrder = core.ResultOrder

	// PreparedPlan is a compiled query plan: the decomposition and resolved
	// execution knobs chosen by the cost-based planner. Immutable; one plan
	// may be executed any number of times, concurrently (see PreparePlan
	// and MatchPlan).
	PreparedPlan = plan.Plan
	// QueryPlan is the JSON-serializable plan tree EXPLAIN surfaces —
	// returned by Explain, by the server's POST /explain, and reported in
	// MatchStats.Plan after execution.
	QueryPlan = plan.Tree
	// PlanStage is one executed stage's record in MatchStats.Stages:
	// timing, estimated vs. observed cardinality, prune count.
	PlanStage = plan.StageStats
	// PlanCalibration corrects the planner's cardinality estimates with
	// observed/estimated feedback from earlier executions against the same
	// index (attach one per index via MatchOptions.Calibration).
	PlanCalibration = plan.Calibration
	// CandidateCache serves pruned per-path candidate sets for repeated
	// query shapes, skipping posting decode and context pruning on a hit.
	// Like PlanCalibration it belongs to one immutable index snapshot
	// (attach via MatchOptions.CandCache); live views with pending
	// mutations bypass it automatically.
	CandidateCache = candidates.Cache
	// CandidateCacheStats snapshots a CandidateCache's counters.
	CandidateCacheStats = candidates.CacheStats
	// MatchOptionsError is the typed validation error Match* return for
	// out-of-range options (NaN α, negative limit, unknown strategy...);
	// the server maps it to HTTP 400.
	MatchOptionsError = core.OptionsError

	// Server is the concurrent HTTP/JSON query-serving front end.
	Server = server.Server
	// ServerOptions configures the server (worker pool, result cache,
	// request timeout, per-request join parallelism).
	ServerOptions = server.Options
	// MatchRequest is the JSON body of the server's /match and
	// /match/stream endpoints.
	MatchRequest = server.MatchRequest
	// MatchResponse is the JSON body answering a match request.
	MatchResponse = server.MatchResponse
	// StreamEvent is one NDJSON line of the server's /match/stream
	// response: a match, the terminal done summary, or an error.
	StreamEvent = server.StreamEvent
	// StreamDone is the terminal summary line of a /match/stream response.
	StreamDone = server.StreamDone
	// ServedMatch is one probabilistic match in a server response.
	ServedMatch = server.MatchEntry
)

// Identity semantics (see DESIGN.md "Semantics note").
const (
	// SemanticsExample reproduces the paper's worked example: a reference
	// set with probability p merges with probability p. Default.
	SemanticsExample = entity.SemanticsExample
	// SemanticsFactor is the literal Definition 2 factor product.
	SemanticsFactor = entity.SemanticsFactor
)

// Mutation op names for live ingest.
const (
	OpAddRef     = live.OpAddRef
	OpAddEdge    = live.OpAddEdge
	OpSetLinkage = live.OpSetLinkage
)

// Matching strategies (Section 6.2.1).
const (
	StrategyOptimized     = core.StrategyOptimized
	StrategyRandomDecomp  = core.StrategyRandomDecomp
	StrategyNoSSReduction = core.StrategyNoSSReduction
)

// Result orders for streamed matches.
const (
	// OrderEmit emits matches in the order the join enumeration discovers
	// them — lowest latency to the first match; Limit stops the search
	// early. Default.
	OrderEmit = core.OrderEmit
	// OrderByProb emits matches in decreasing probability; with Limit it is
	// top-K retrieval backed by a bounded min-heap.
	OrderByProb = core.OrderByProb
)

// NewAlphabet interns the given labels.
func NewAlphabet(labels ...string) (*Alphabet, error) { return prob.NewAlphabet(labels...) }

// MustAlphabet is NewAlphabet for static label sets known to be valid.
func MustAlphabet(labels ...string) *Alphabet { return prob.MustAlphabet(labels...) }

// NewDist builds a label distribution from entries; it must sum to 1.
func NewDist(entries ...LabelProb) (Dist, error) { return prob.NewDist(entries...) }

// MustDist is NewDist for distributions known to be valid.
func MustDist(entries ...LabelProb) Dist { return prob.MustDist(entries...) }

// Point returns the deterministic distribution on one label.
func Point(l LabelID) Dist { return prob.Point(l) }

// Merge functions of Definition 1. AverageLabels/AverageEdges are the
// paper's experimental defaults; DisjunctEdges is the noisy-or alternative
// named in Section 3.
var (
	AverageLabels = prob.AverageLabels
	AverageEdges  = prob.AverageEdges
	DisjunctEdges = prob.DisjunctEdges
	MaxEdges      = prob.MaxEdges
)

// NewPGD creates an empty reference-level description over the alphabet,
// with average merge functions.
func NewPGD(a *Alphabet) *PGD { return refgraph.New(a) }

// LoadPGD reads a PGD binary snapshot (see PGD.Save).
var LoadPGD = refgraph.Load

// BuildGraph constructs the probabilistic entity graph from a PGD: entities
// are merged per reference set, label/edge distributions are combined with
// the PGD's merge functions, and the identity components are precomputed.
func BuildGraph(d *PGD, opts ...BuildOptions) (*Graph, error) {
	var o BuildOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return entity.Build(d, o)
}

// BuildIndex runs the offline phase: context information and the
// context-aware path index over all paths of length ≤ MaxLen with
// probability ≥ Beta, stored under Dir.
func BuildIndex(ctx context.Context, g *Graph, opt IndexOptions) (*Index, error) {
	return pathindex.Build(ctx, g, opt)
}

// Index format constants; see IndexOptions.Format.
const (
	IndexFormatPacked = pathindex.FormatPacked
	IndexFormatBTree  = pathindex.FormatBTree
)

// OpenIndex attaches to a previously built index directory. The layout is
// auto-detected, so v1 and v2 directories open through the same call.
func OpenIndex(dir string, g *Graph) (*Index, error) { return pathindex.Open(dir, g) }

// RepackIndex migrates a v1 index directory to the packed v2 format in
// place, losslessly; the v1 artifacts are kept for rollback.
func RepackIndex(dir string, g *Graph) (IndexStats, error) { return pathindex.Repack(dir, g) }

// NewQuery creates an empty query graph.
func NewQuery() *Query { return query.New() }

// ParseQuery reads the text query DSL ("node NAME LABEL" / "edge A B").
func ParseQuery(src string, a *Alphabet) (*Query, error) { return query.ParseString(src, a) }

// CreateLive initializes a live (writable) database directory from a PGD:
// generation 1 is built on disk and an empty mutation log is created. See
// LiveDB for the write path.
func CreateLive(ctx context.Context, dir string, d *PGD, opt LiveOptions) (*LiveDB, error) {
	return live.Create(ctx, dir, d, opt)
}

// OpenLive attaches to an existing live database directory, replaying the
// mutation log over the current generation.
func OpenLive(dir string, opt LiveOptions) (*LiveDB, error) {
	return live.Open(dir, opt)
}

// Match answers a probabilistic subgraph pattern matching query
// (Definition 5): all matches M of q with Pr(M) ≥ opt.Alpha, with exact
// probabilities and per-stage statistics. It buffers the whole result set;
// use MatchStream or MatchSeq to consume matches as they are found.
func Match(ctx context.Context, ix IndexReader, q *Query, opt MatchOptions) (*MatchResult, error) {
	return core.Match(ctx, ix, q, opt)
}

// MatchStream answers the same query as Match but invokes yield once per
// match as the join enumeration finds it, so the first result arrives
// without waiting for — or allocating — the full match set. Returning false
// from yield, reaching opt.Limit, or cancelling ctx stops the remaining
// search immediately; the returned MatchStats carry the per-stage numbers
// and the Truncated flag.
func MatchStream(ctx context.Context, ix IndexReader, q *Query, opt MatchOptions, yield func(MatchRecord) bool) (MatchStats, error) {
	return core.MatchStream(ctx, ix, q, opt, yield)
}

// MatchSeq is the iterator form of MatchStream, for direct use in a
// range-over-func loop:
//
//	for m, err := range peg.MatchSeq(ctx, ix, q, opt) {
//		if err != nil {
//			return err
//		}
//		use(m)
//	}
//
// Breaking out of the loop aborts the enumeration. A failed run yields one
// final (zero MatchRecord, err) pair.
func MatchSeq(ctx context.Context, ix IndexReader, q *Query, opt MatchOptions) iter.Seq2[MatchRecord, error] {
	return core.MatchSeq(ctx, ix, q, opt)
}

// Explain returns the plan tree the query would execute under — the
// cost-based planner's choice of decomposition mode, probe reduction, and
// join order, with estimated cardinalities, the cost breakdown, and the
// rejected alternatives — without executing anything. The same tree is
// reported in MatchStats.Plan after a real run.
func Explain(ctx context.Context, ix IndexReader, q *Query, opt MatchOptions) (*QueryPlan, error) {
	return core.Explain(ctx, ix, q, opt)
}

// PreparePlan compiles the query's execution plan without running it. The
// returned plan is immutable and reusable: MatchPlan executes it any number
// of times, skipping decomposition and planning — the library-level
// equivalent of the server's plan cache.
func PreparePlan(ctx context.Context, ix IndexReader, q *Query, opt MatchOptions) (*PreparedPlan, error) {
	return core.Prepare(ctx, ix, q, opt)
}

// MatchPlan answers a query by executing a previously prepared plan —
// exactly Match's results, minus the planning work.
func MatchPlan(ctx context.Context, ix IndexReader, pl *PreparedPlan, opt MatchOptions) (*MatchResult, error) {
	return core.MatchPlan(ctx, ix, pl, opt)
}

// NewPlanCalibration returns an identity calibration to attach to
// MatchOptions.Calibration for one index.
func NewPlanCalibration() *PlanCalibration { return plan.NewCalibration() }

// NewCandidateCache returns a candidate cache retaining at most budget
// pruned path candidates in total (0 = the default budget) for one
// immutable index snapshot; attach it via MatchOptions.CandCache.
func NewCandidateCache(budget int) *CandidateCache { return candidates.NewCache(budget) }

// NewServer wraps an opened index (or a live database view) in the
// concurrent HTTP/JSON query server; mount NewServer(ix, opt).Handler() on
// an http.Server (see cmd/pegserve). To enable the write path, pair it with
// a LiveDB: srv.SetLive(db); db.SetPublisher(srv).
func NewServer(ix IndexReader, opt ServerOptions) *Server { return server.New(ix, opt) }

// PprofHandler exposes the net/http/pprof endpoints for an opt-in,
// separately-listening profile server (pegserve/pegrouter -pprof-addr).
func PprofHandler() http.Handler { return server.PprofHandler() }
