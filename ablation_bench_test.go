// Ablation benchmarks for the design choices DESIGN.md calls out beyond the
// paper's own figures: the index resolution γ (accuracy vs lookup cost
// trade-off named in Section 5.1), offline build parallelism (the paper's
// multi-threaded construction), and the join-order heuristic of Section
// 5.2.5 versus cardinality-only ordering.
package peg_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/join"
	"repro/internal/pathindex"
)

// BenchmarkAblationGamma sweeps the index resolution γ: coarser buckets
// store fewer distinct keys but force the online phase to filter more
// entries below α exactly.
func BenchmarkAblationGamma(b *testing.B) {
	g := benchGraph(b, benchMain, 0.2)
	for _, gamma := range []float64{0.02, 0.1, 0.3} {
		dir := b.TempDir()
		ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
			MaxLen: 2, Beta: 0.1, Gamma: gamma, Dir: dir,
		})
		if err != nil {
			b.Fatal(err)
		}
		q := benchQuery(b, g, 5, 7, 60)
		b.Run(fmt.Sprintf("gamma=%.2f", gamma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runMatch(b, ix, q, core.Options{Alpha: 0.7})
			}
			b.ReportMetric(float64(ix.Stats().Bytes), "index-bytes")
		})
		ix.Close()
	}
}

// BenchmarkAblationWorkers sweeps offline build parallelism.
func BenchmarkAblationWorkers(b *testing.B) {
	g := benchGraph(b, benchMain, 0.2)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
					MaxLen: 2, Beta: 0.3, Gamma: 0.1, Dir: b.TempDir(), Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				ix.Close()
			}
		})
	}
}

// BenchmarkAblationJoinOrder compares the paper's three-tier join-order
// heuristic against cardinality-only ordering on a denser query, isolating
// the final assembly stage.
func BenchmarkAblationJoinOrder(b *testing.B) {
	ix := benchIndex(b, benchMain, 0.2, 2)
	g := ix.Graph()
	q := benchQuery(b, g, 8, 14, 61)
	dec, err := decompose.Decompose(q, ix, decompose.Options{MaxLen: 2, Alpha: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	_ = dec
	for _, mode := range []struct {
		name string
		m    join.OrderMode
	}{
		{"heuristic", join.OrderHeuristic},
		{"cardinality-only", join.OrderByCardinality},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Order() cost itself is negligible; measure the end-to-end
				// effect through the matching strategies that embody the two
				// orders.
				strategy := core.StrategyOptimized
				if mode.m == join.OrderByCardinality {
					strategy = core.StrategyRandomDecomp
				}
				runMatch(b, ix, q, core.Options{
					Alpha: 0.7, Strategy: strategy, Rand: rand.New(rand.NewSource(9)),
				})
			}
		})
	}
}

// BenchmarkAblationOnDemand compares an index-served lookup (α ≥ β) with the
// on-demand path computation used when α < β (footnote 1 of the paper).
func BenchmarkAblationOnDemand(b *testing.B) {
	g := benchGraph(b, benchMain, 0.2)
	dir := b.TempDir()
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: 2, Beta: 0.5, Gamma: 0.1, Dir: dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	q := benchQuery(b, g, 4, 4, 62)
	b.Run("indexed-alpha=0.7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runMatch(b, ix, q, core.Options{Alpha: 0.7})
		}
	})
	b.Run("on-demand-alpha=0.3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runMatch(b, ix, q, core.Options{Alpha: 0.3})
		}
	})
}
