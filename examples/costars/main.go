// Costars: the Section 6.3 IMDB scenario — co-starring patterns over an
// actor network with genre distributions, independent edge probabilities,
// and duplicate-name identity uncertainty. Each pattern uses one genre for
// all its nodes, as in the paper's experiment.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	peg "repro"
	"repro/internal/gen"
)

func main() {
	log.SetFlags(0)

	d, err := gen.IMDB(gen.IMDBOptions{Actors: 600, Seed: 9})
	check(err)
	g, err := peg.BuildGraph(d)
	check(err)
	fmt.Printf("co-starring graph: %d entities, %d edges (genres: %v)\n",
		g.NumNodes(), g.NumEdges(), g.Alphabet().Names())

	dir, err := os.MkdirTemp("", "peg-costars-*")
	check(err)
	defer os.RemoveAll(dir)
	ix, err := peg.BuildIndex(context.Background(), g, peg.IndexOptions{
		MaxLen: 2, Beta: 0.1, Gamma: 0.1, Dir: filepath.Join(dir, "ix"),
	})
	check(err)
	defer ix.Close()
	fmt.Printf("index: %d entries, %s on disk\n\n", ix.Stats().Entries, mb(ix.Stats().Bytes))

	rng := rand.New(rand.NewSource(1))
	for _, pat := range gen.Patterns() {
		q, err := gen.PatternQueryRandomLabels(pat, rng, g.NumLabels(), true) // uniform genre
		check(err)
		// Time-to-first-match: Limit 1 aborts the join at the first hit, the
		// streaming win over buffering the full result set.
		start := time.Now()
		first, err := peg.MatchStream(context.Background(), ix, q, peg.MatchOptions{
			Alpha: 0.1, Limit: 1,
		}, func(peg.MatchRecord) bool { return true })
		check(err)
		firstIn := time.Since(start).Round(time.Microsecond)

		start = time.Now()
		res, err := peg.Match(context.Background(), ix, q, peg.MatchOptions{Alpha: 0.1})
		check(err)
		firstNote := "no match"
		if first.Matched > 0 {
			firstNote = fmt.Sprintf("first in %v", firstIn)
		}
		fmt.Printf("%-4s: %5d matches in %v (%s; search space %.0f → %.0f → %.0f)\n",
			pat, len(res.Matches), time.Since(start).Round(time.Microsecond), firstNote,
			res.Stats.SSPath, res.Stats.SSContext, res.Stats.SSFinal)
	}
}

func mb(n int64) string { return fmt.Sprintf("%.1f MB", float64(n)/(1<<20)) }

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
