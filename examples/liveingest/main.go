// Live ingest: the paper's Section 2 motivating example as an *evolving*
// entity-resolution workload. The offline papers-world assumption — build
// the index once, query forever — breaks as soon as linkage evidence keeps
// arriving, so this demo starts a live (read-write) server over the Figure
// 1(a) network and streams mutations against it while querying:
//
//  1. the (r, a, i) query answers with the merged-world match at Pr 0.2025,
//  2. new linkage evidence weakens the {Christopher, Chris} merge
//     probability from 0.8 to 0.3 — match probabilities shift immediately,
//     served from the in-memory delta overlay with no index rebuild,
//  3. a freshly ingested reference (a new "C. Tucker" mention plus its
//     edge) joins the match set, and
//  4. a compaction folds everything into a new on-disk generation while
//     the server keeps answering.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	peg "repro"
)

const query = "node q1 r\nnode q2 a\nnode q3 i\nedge q1 q2\nedge q2 q3"

func main() {
	log.SetFlags(0)

	alpha := peg.MustAlphabet("a", "r", "i")
	a, r, i := alpha.ID("a"), alpha.ID("r"), alpha.ID("i")
	d := peg.NewPGD(alpha)
	geraldMaya := d.AddReference(peg.MustDist(
		peg.LabelProb{Label: r, P: 0.25},
		peg.LabelProb{Label: i, P: 0.75}))
	beckyCastor := d.AddReference(peg.Point(a))
	christopherTucker := d.AddReference(peg.Point(r))
	chrisTucker := d.AddReference(peg.Point(i))
	check(d.AddEdge(geraldMaya, beckyCastor, peg.EdgeDist{P: 0.9}))
	check(d.AddEdge(beckyCastor, christopherTucker, peg.EdgeDist{P: 1.0}))
	check(d.AddEdge(beckyCastor, chrisTucker, peg.EdgeDist{P: 0.5}))
	if _, err := d.AddReferenceSet([]peg.RefID{christopherTucker, chrisTucker}, 0.8); err != nil {
		log.Fatal(err)
	}

	// Live database + server, wired both ways: /ingest mutates the
	// database, every published view swaps into the server atomically.
	dir, err := os.MkdirTemp("", "peg-liveingest-*")
	check(err)
	defer os.RemoveAll(dir)
	db, err := peg.CreateLive(context.Background(), dir, d, peg.LiveOptions{
		Index:        peg.IndexOptions{MaxLen: 2, Beta: 0.02, Gamma: 0.1},
		CompactEvery: -1, CompactDirtyFrac: -1, // compacted explicitly below
	})
	check(err)
	defer db.Close()
	srv := peg.NewServer(db.View(), peg.ServerOptions{Workers: 2})
	srv.SetLive(db)
	db.SetPublisher(srv)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	fmt.Println("== 1. initial evidence (merge probability 0.8)")
	match(base)

	fmt.Println("== 2. weaker linkage evidence arrives: Pr(merge) 0.8 → 0.3")
	ingest(base, peg.Mutation{Op: peg.OpSetLinkage,
		Members: []peg.RefID{christopherTucker, chrisTucker}, P: 0.3})
	match(base)

	fmt.Println("== 3. a new 'C. Tucker' mention (industry) linked to Becky")
	res := ingest(base,
		peg.Mutation{Op: peg.OpAddRef, Labels: []peg.MutationLabel{{Label: "i", P: 1}}},
		peg.Mutation{Op: peg.OpAddEdge, A: beckyCastor, B: 4, P: 0.8})
	fmt.Printf("   assigned reference ids %v (%d dirty entities in the overlay)\n",
		res.Refs, res.DirtyEntities)
	match(base)

	fmt.Println("== 4. compaction folds the overlay into generation 2")
	check(db.Compact(context.Background()))
	st := db.Status()
	fmt.Printf("   generation %d, %d pending mutations, %d dirty entities\n",
		st.Generation, st.Mutations, st.DirtyEntities)
	match(base)
}

// match posts the (r, a, i) query and prints the ranked answers.
func match(base string) {
	body, _ := json.Marshal(peg.MatchRequest{Query: query, Alpha: 0.05, Order: "prob"})
	resp, err := http.Post(base+"/match", "application/json", bytes.NewReader(body))
	check(err)
	defer resp.Body.Close()
	var r peg.MatchResponse
	check(json.NewDecoder(resp.Body).Decode(&r))
	for _, m := range r.Matches {
		fmt.Printf("   %v  Pr=%.6f\n", m.Mapping, m.Pr)
	}
	fmt.Printf("   (%d matches, cached=%v)\n", r.NumMatches, r.Cached)
}

// ingest streams mutations to /ingest as NDJSON.
func ingest(base string, ms ...peg.Mutation) peg.ApplyResult {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, m := range ms {
		check(enc.Encode(m))
	}
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", &buf)
	check(err)
	defer resp.Body.Close()
	var r peg.ApplyResult
	check(json.NewDecoder(resp.Body).Decode(&r))
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("ingest failed: %+v", r)
	}
	return r
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
