// Collab: the Section 6.3 DBLP scenario — search collaboration patterns
// over an author network with label-correlated edge probabilities (same
// research area → more likely collaboration) and name-similarity identity
// uncertainty. Demonstrates the CPT edge model (Section 5.3) end to end.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	peg "repro"
	"repro/internal/gen"
)

func main() {
	log.SetFlags(0)

	d, err := gen.DBLP(gen.DBLPOptions{Authors: 800, Seed: 3})
	check(err)
	g, err := peg.BuildGraph(d)
	check(err)
	fmt.Printf("collaboration graph: %d entities, %d edges (areas: %v)\n",
		g.NumNodes(), g.NumEdges(), g.Alphabet().Names())

	dir, err := os.MkdirTemp("", "peg-collab-*")
	check(err)
	defer os.RemoveAll(dir)
	ix, err := peg.BuildIndex(context.Background(), g, peg.IndexOptions{
		MaxLen: 2, Beta: 0.1, Gamma: 0.1, Dir: filepath.Join(dir, "ix"),
	})
	check(err)
	defer ix.Close()

	// The five Figure 8 patterns with database/ML/SE labels. Asking for
	// probability order makes the strongest collaboration the first result —
	// no manual scan over the buffered set.
	rng := rand.New(rand.NewSource(5))
	for _, pat := range gen.Patterns() {
		q, err := gen.PatternQueryRandomLabels(pat, rng, g.NumLabels(), false)
		check(err)
		start := time.Now()
		res, err := peg.Match(context.Background(), ix, q, peg.MatchOptions{
			Alpha: 0.1, Order: peg.OrderByProb,
		})
		check(err)
		n, e, _ := gen.PatternSize(pat)
		fmt.Printf("%-4s (%d nodes, %d edges): %4d matches with Pr ≥ 0.1 in %v\n",
			pat, n, e, len(res.Matches), time.Since(start).Round(time.Microsecond))
		if len(res.Matches) > 0 {
			best := res.Matches[0]
			fmt.Printf("     strongest: ψ=%v Pr=%.4f\n", best.Mapping, best.Pr())
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
