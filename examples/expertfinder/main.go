// Expertfinder: the paper's motivating application at a larger scale — an
// organization integrates expert profiles from multiple sources (with noisy
// affiliations, uncertain relationships, and duplicate identities) and asks
// structural questions such as "find triangles of collaborating experts
// spanning academia, a research lab, and industry".
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	peg "repro"
)

const nExperts = 400

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(11))

	alpha := peg.MustAlphabet("academia", "lab", "industry")
	d := peg.NewPGD(alpha)

	// Expert profiles: two thirds have a certain affiliation, the rest are
	// text-extraction guesses spread over two sectors.
	for i := 0; i < nExperts; i++ {
		if rng.Float64() < 0.66 {
			d.AddReference(peg.Point(peg.LabelID(rng.Intn(3))))
		} else {
			main := peg.LabelID(rng.Intn(3))
			other := peg.LabelID((int(main) + 1 + rng.Intn(2)) % 3)
			p := 0.6 + 0.3*rng.Float64()
			d.AddReference(peg.MustDist(
				peg.LabelProb{Label: main, P: p},
				peg.LabelProb{Label: other, P: 1 - p}))
		}
	}
	// Relationships with confidence from shared signals.
	for e := 0; e < nExperts*4; e++ {
		a := peg.RefID(rng.Intn(nExperts))
		b := peg.RefID(rng.Intn(nExperts))
		if a == b {
			continue
		}
		if err := d.AddEdge(a, b, peg.EdgeDist{P: 0.4 + 0.6*rng.Float64()}); err != nil {
			log.Fatal(err)
		}
	}
	// Name-similarity duplicates across sources.
	for s := 0; s < nExperts/40; s++ {
		a := peg.RefID(rng.Intn(nExperts))
		b := peg.RefID(rng.Intn(nExperts))
		if a == b {
			continue
		}
		if _, err := d.AddReferenceSet([]peg.RefID{a, b}, 0.6+0.35*rng.Float64()); err != nil {
			log.Fatal(err)
		}
	}

	g, err := peg.BuildGraph(d)
	check(err)
	fmt.Printf("expert graph: %d entities, %d relationships, %d identity components\n",
		g.NumNodes(), g.NumEdges(), g.NumComponents())

	dir, err := os.MkdirTemp("", "peg-experts-*")
	check(err)
	defer os.RemoveAll(dir)
	ix, err := peg.BuildIndex(context.Background(), g, peg.IndexOptions{
		MaxLen: 2, Beta: 0.1, Gamma: 0.1, Dir: filepath.Join(dir, "ix"),
	})
	check(err)
	defer ix.Close()
	fmt.Printf("index: %d path entries (%v build)\n", ix.Stats().Entries, ix.Stats().Duration)

	// A cross-sector collaboration triangle.
	q, err := peg.ParseQuery(`
node prof academia
node researcher lab
node engineer industry
edge prof researcher
edge researcher engineer
edge engineer prof
`, alpha)
	check(err)

	// Top-K retrieval: only the 5 most probable triangles are wanted, so
	// the run keeps a bounded 5-element heap instead of the full match set.
	fmt.Printf("\nmost probable cross-sector triangles with Pr ≥ 0.3:\n")
	st, err := peg.MatchStream(context.Background(), ix, q, peg.MatchOptions{
		Alpha: 0.3, Limit: 5, Order: peg.OrderByProb,
	}, func(m peg.MatchRecord) bool {
		fmt.Printf("  prof=e%d researcher=e%d engineer=e%d  Pr=%.3f\n",
			m.Mapping[0], m.Mapping[1], m.Mapping[2], m.Pr())
		return true
	})
	check(err)
	if st.Truncated {
		fmt.Printf("  … and more beyond the top %d\n", st.Matched)
	}
	fmt.Printf("\nsearch space progression: %0.f → %0.f → %0.f candidates (index → context → reduced)\n",
		st.SSPath, st.SSContext, st.SSFinal)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
