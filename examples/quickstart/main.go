// Quickstart: the paper's Section 2 motivating example through the public
// API — build a reference-level description with all three kinds of
// uncertainty, construct the probabilistic entity graph, index it, and ask
// for all (r, a, i) paths above a probability threshold.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	peg "repro"
)

func main() {
	log.SetFlags(0)

	// Labels: a = Academia, r = Research Lab, i = Industry.
	alpha := peg.MustAlphabet("a", "r", "i")
	a, r, i := alpha.ID("a"), alpha.ID("r"), alpha.ID("i")

	// Reference-level network (Figure 1(a)): four name mentions extracted
	// from three sources, with attribute, edge, and identity uncertainty.
	d := peg.NewPGD(alpha)
	geraldMaya := d.AddReference(peg.MustDist( // webpage: affiliation uncertain
		peg.LabelProb{Label: r, P: 0.25},
		peg.LabelProb{Label: i, P: 0.75}))
	beckyCastor := d.AddReference(peg.Point(a))       // professional network
	christopherTucker := d.AddReference(peg.Point(r)) // professional network
	chrisTucker := d.AddReference(peg.Point(i))       // social network

	check(d.AddEdge(geraldMaya, beckyCastor, peg.EdgeDist{P: 0.9}))
	check(d.AddEdge(beckyCastor, christopherTucker, peg.EdgeDist{P: 1.0}))
	check(d.AddEdge(beckyCastor, chrisTucker, peg.EdgeDist{P: 0.5}))

	// "Christopher Tucker" and "Chris Tucker" are probably the same person.
	if _, err := d.AddReferenceSet([]peg.RefID{christopherTucker, chrisTucker}, 0.8); err != nil {
		log.Fatal(err)
	}

	// Offline phase: entity graph + context-aware path index.
	g, err := peg.BuildGraph(d)
	check(err)
	fmt.Printf("entity graph: %d nodes, %d edges, %d identity components\n",
		g.NumNodes(), g.NumEdges(), g.NumComponents())

	dir, err := os.MkdirTemp("", "peg-quickstart-*")
	check(err)
	defer os.RemoveAll(dir)
	ix, err := peg.BuildIndex(context.Background(), g, peg.IndexOptions{
		MaxLen: 2, Beta: 0.02, Gamma: 0.1, Dir: filepath.Join(dir, "ix"),
	})
	check(err)
	defer ix.Close()

	// Online phase: the Figure 1(d) query — a path labeled (r, a, i).
	q, err := peg.ParseQuery(`
node q1 r
node q2 a
node q3 i
edge q1 q2
edge q2 q3
`, alpha)
	check(err)

	// Matches stream out of the join enumeration as they are found — no
	// buffering of the full result set; break (or set Limit) to stop the
	// search early.
	for _, threshold := range []float64{0.2, 0.01} {
		fmt.Printf("\nα = %v:\n", threshold)
		n := 0
		for m, err := range peg.MatchSeq(context.Background(), ix, q, peg.MatchOptions{Alpha: threshold}) {
			check(err)
			n++
			fmt.Printf("  ψ = %v  Pr = %.4f (labels/edges %.4f × identity %.4f)\n",
				m.Mapping, m.Pr(), m.Prle, m.Prn)
		}
		fmt.Printf("  %d match(es)\n", n)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
