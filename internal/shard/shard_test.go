package shard

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
	"repro/internal/refgraph"
)

func synthPGD(t *testing.T, refs, clusters int, seed int64) *refgraph.PGD {
	t.Helper()
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs:     refs,
		Groups:   8,
		Clusters: clusters,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPartitionLossless checks the partition invariants the router's
// correctness rests on: every reference, set, and edge lands in exactly one
// shard, nothing crosses shards, and the id translation is strictly
// monotone.
func TestPartitionLossless(t *testing.T) {
	d := synthPGD(t, 400, 4, 7)
	for _, shards := range []int{1, 2, 3} {
		pgds, m, err := Partition(d, shards)
		if err != nil {
			t.Fatalf("Partition(%d): %v", shards, err)
		}
		if len(pgds) != shards || len(m.Entries) != shards {
			t.Fatalf("Partition(%d): got %d PGDs, %d entries", shards, len(pgds), len(m.Entries))
		}

		// Ownership: exactly-once coverage of refs and sets (validate()
		// checks this too; recheck directly against the source PGD).
		refOwner := make(map[int32]int)
		totalEdges := 0
		for s, e := range m.Entries {
			sd := pgds[s]
			if sd.NumRefs() != len(e.Refs) || sd.NumSets() != len(e.Sets) {
				t.Fatalf("shard %d: PGD has %d refs/%d sets, entry lists %d/%d",
					s, sd.NumRefs(), sd.NumSets(), len(e.Refs), len(e.Sets))
			}
			for _, r := range e.Refs {
				if prev, dup := refOwner[r]; dup {
					t.Fatalf("ref %d owned by shards %d and %d", r, prev, s)
				}
				refOwner[r] = s
			}
			totalEdges += sd.NumEdges()

			// Shard-local structure must mirror the global structure under
			// the id map: singleton priors and edge distributions match.
			for i, gr := range e.Refs {
				if got, want := sd.SingletonPrior(refgraph.RefID(i)), d.SingletonPrior(refgraph.RefID(gr)); got != want {
					t.Fatalf("shard %d ref %d: prior %v, global %v", s, i, got, want)
				}
			}
			for j, gs := range e.Sets {
				ls, gsSet := sd.Set(refgraph.SetID(j)), d.Set(refgraph.SetID(gs))
				if ls.P != gsSet.P || len(ls.Members) != len(gsSet.Members) {
					t.Fatalf("shard %d set %d: mismatch with global set %d", s, j, gs)
				}
				for k, lm := range ls.Members {
					if e.Refs[lm] != int32(gsSet.Members[k]) {
						t.Fatalf("shard %d set %d member %d: local %d ↦ %d, want %d",
							s, j, k, lm, e.Refs[lm], gsSet.Members[k])
					}
				}
			}
		}
		if len(refOwner) != d.NumRefs() {
			t.Fatalf("shards own %d refs, PGD has %d", len(refOwner), d.NumRefs())
		}
		if totalEdges != d.NumEdges() {
			t.Fatalf("shards hold %d edges, PGD has %d", totalEdges, d.NumEdges())
		}
		// Every global edge stays within one shard and survives translation.
		d.Edges(func(k refgraph.EdgeKey, ge refgraph.EdgeDist) bool {
			sa, sb := refOwner[int32(k.A)], refOwner[int32(k.B)]
			if sa != sb {
				t.Fatalf("edge (%d,%d) crosses shards %d/%d", k.A, k.B, sa, sb)
			}
			e := m.Entries[sa]
			la, lb := localOf(e.Refs, int32(k.A)), localOf(e.Refs, int32(k.B))
			se, ok := pgds[sa].Edge(refgraph.RefID(la), refgraph.RefID(lb))
			if !ok {
				t.Fatalf("edge (%d,%d) missing from shard %d", k.A, k.B, sa)
			}
			if !reflect.DeepEqual(se, ge) {
				t.Fatalf("edge (%d,%d): shard copy differs", k.A, k.B)
			}
			return true
		})

		// The id map is strictly monotone, so per-shard orderings survive
		// translation.
		for s := range m.Entries {
			im := m.IDMap(s)
			prev := -1
			for l := 0; l < im.NumEntities(); l++ {
				g, ok := im.Global(uint32(l))
				if !ok {
					t.Fatalf("shard %d: Global(%d) out of range", s, l)
				}
				if int(g) <= prev {
					t.Fatalf("shard %d: Global not strictly increasing at %d (%d ≤ %d)", s, l, g, prev)
				}
				prev = int(g)
			}
			if _, ok := im.Global(uint32(im.NumEntities())); ok {
				t.Fatalf("shard %d: Global past the end resolved", s)
			}
		}
	}
}

func localOf(refs []int32, g int32) int {
	for i, r := range refs {
		if r == g {
			return i
		}
	}
	return -1
}

func TestPartitionErrors(t *testing.T) {
	d := synthPGD(t, 120, 2, 3)
	if _, _, err := Partition(d, 0); err == nil {
		t.Fatal("Partition(0) succeeded")
	}
	// More shards than linkage closures must fail, not serve empty shards.
	if _, _, err := Partition(d, d.NumRefs()+1); err == nil {
		t.Fatal("Partition with more shards than closures succeeded")
	}
}

// TestBuildAndManifestRoundTrip runs the full offline pipeline and reopens
// every artifact the manifest names.
func TestBuildAndManifestRoundTrip(t *testing.T) {
	d := synthPGD(t, 200, 2, 11)
	dir := t.TempDir()
	m, err := Build(context.Background(), d, dir, Options{
		Shards: 2,
		Index:  pathindex.Options{MaxLen: 2, Beta: 0.01, Gamma: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, loaded) {
		t.Fatal("manifest round-trip mismatch")
	}
	for _, e := range loaded.Entries {
		if e.Format != "v2" {
			t.Fatalf("shard %d: manifest format tag %q, want v2 (the build default)", e.Shard, e.Format)
		}
		f, err := os.Open(filepath.Join(dir, e.PGD))
		if err != nil {
			t.Fatal(err)
		}
		sd, err := refgraph.Load(f)
		f.Close()
		if err != nil {
			t.Fatalf("shard %d: load PGD: %v", e.Shard, err)
		}
		if sd.NumRefs() != len(e.Refs) {
			t.Fatalf("shard %d: snapshot has %d refs, entry lists %d", e.Shard, sd.NumRefs(), len(e.Refs))
		}
		g, err := entity.Build(sd, entity.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := pathindex.Open(filepath.Join(dir, e.IndexDir), g)
		if err != nil {
			t.Fatalf("shard %d: open index: %v", e.Shard, err)
		}
		if ix.Stats().Entries == 0 {
			t.Fatalf("shard %d: empty index", e.Shard)
		}
		ix.Close()
	}
}

// TestPublishEntry exercises the generation-flip publication protocol.
func TestPublishEntry(t *testing.T) {
	d := synthPGD(t, 200, 2, 13)
	dir := t.TempDir()
	m, err := Build(context.Background(), d, dir, Options{
		Shards: 2,
		Index:  pathindex.Options{MaxLen: 2, Beta: 0.01, Gamma: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}

	next := m.Entries[1]
	next.Generation = 2
	next.PGD = filepath.Join("shard-01", "gen-000002", "pgd.snap")
	next.IndexDir = filepath.Join("shard-01", "gen-000002", "index")
	if err := PublishEntry(dir, next); err != nil {
		t.Fatalf("publish: %v", err)
	}
	flipped, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if flipped.Entries[1].Generation != 2 || flipped.Entries[1].PGD != next.PGD {
		t.Fatal("publish did not flip the entry")
	}
	if flipped.Entries[0].Generation != 1 {
		t.Fatal("publish touched another shard's entry")
	}

	// Stale generation rejected.
	stale := next
	stale.Generation = 2
	if err := PublishEntry(dir, stale); err == nil {
		t.Fatal("stale publish accepted")
	}
	// Ownership change rejected.
	moved := flipped.Entries[1]
	moved.Generation = 3
	moved.Refs = append([]int32(nil), moved.Refs[:len(moved.Refs)-1]...)
	if err := PublishEntry(dir, moved); err == nil {
		t.Fatal("ownership-changing publish accepted")
	}
	// Unknown shard rejected.
	bad := next
	bad.Shard = 9
	bad.Generation = 4
	if err := PublishEntry(dir, bad); err == nil {
		t.Fatal("publish for unknown shard accepted")
	}
}
