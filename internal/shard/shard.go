// Package shard implements the cluster tier's offline half: a
// linkage-closure partitioner that splits one PGD into N independent shard
// PGDs, builds each shard's entity graph and path index, and publishes the
// result through a crash-safe JSON manifest catalog (see manifest.go).
//
// The partition unit is the linkage closure: the connected component of the
// union relation "two references share a reference set, or a reference edge
// joins them". A match traverses entity edges (reference edges at the PGD
// level) and its probability couples entities only through identity
// components (reference sets), so a closure is exactly the smallest unit
// that no connected query — and no Prn factor — can span. Splitting on
// closures is therefore lossless: every shard computes bitwise-identical
// probabilities for its matches, the global match set is the disjoint union
// of the per-shard sets, and a scatter-gather router can reassemble
// single-node results exactly (internal/router does).
//
// Closures are assigned to shards by hashed closure id with greedy size
// balancing: closures are visited in FNV-hash order (a deterministic
// shuffle, so adjacent-id closures spread out) and each goes to the
// currently lightest shard by reference count.
package shard

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/entity"
	"repro/internal/pathindex"
	"repro/internal/prob"
	"repro/internal/refgraph"
)

// Options configures a sharded build.
type Options struct {
	// Shards is the partition width (≥ 1).
	Shards int
	// Index holds the per-shard path-index construction parameters; Dir is
	// derived per shard and must be empty.
	Index pathindex.Options
	// Build configures per-shard entity graph construction.
	Build entity.BuildOptions
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Partition splits the PGD into per-shard PGDs plus the manifest skeleton
// (ownership lists filled in; generations and file paths left for Build).
// It fails when the PGD has fewer linkage closures than shards — an empty
// shard cannot serve — or when the merge functions are custom function
// values (they cannot be serialized into shard snapshots).
func Partition(d *refgraph.PGD, shards int) ([]*refgraph.PGD, *Manifest, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("shard: need at least 1 shard, got %d", shards)
	}
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	lm, em := d.MergeNames()
	if lm == prob.MergeCustom || em == prob.MergeCustom {
		return nil, nil, fmt.Errorf("shard: PGD uses custom merge functions; install named merges (SetNamedMerge) to shard it")
	}

	nRefs := d.NumRefs()
	refShard, closuresPer, nClosures := assignRefs(d, shards)
	shardRefs := make([][]int32, shards)
	for r := 0; r < nRefs; r++ {
		s := refShard[r]
		shardRefs[s] = append(shardRefs[s], int32(r)) // ascending: r ascends
	}
	for s := 0; s < shards; s++ {
		if len(shardRefs[s]) == 0 {
			return nil, nil, fmt.Errorf("shard: %d shards exceed the PGD's %d linkage closures; an empty shard cannot serve",
				shards, nClosures)
		}
	}

	m := &Manifest{
		Version:   ManifestVersion,
		Shards:    shards,
		TotalRefs: nRefs,
		TotalSets: d.NumSets(),
		Labels:    d.Alphabet().Names(),
		Entries:   make([]Entry, shards),
	}
	out := make([]*refgraph.PGD, shards)
	for s := 0; s < shards; s++ {
		sd, sets, err := extract(d, shardRefs[s], refShard, s)
		if err != nil {
			return nil, nil, err
		}
		out[s] = sd
		m.Entries[s] = Entry{
			Shard:    s,
			Closures: closuresPer[s],
			Refs:     shardRefs[s],
			Sets:     sets,
		}
	}
	return out, m, nil
}

// assignRefs computes the linkage closures and assigns each to a shard,
// returning the per-reference shard index, the closure count per shard, and
// the total closure count.
func assignRefs(d *refgraph.PGD, shards int) (refShard []int, closuresPer []int, nClosures int) {
	nRefs := d.NumRefs()
	parent := make([]int32, nRefs)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b refgraph.RefID) {
		ra, rb := find(int32(a)), find(int32(b))
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < d.NumSets(); i++ {
		ms := d.Set(refgraph.SetID(i)).Members
		for j := 1; j < len(ms); j++ {
			union(ms[0], ms[j])
		}
	}
	d.Edges(func(k refgraph.EdgeKey, _ refgraph.EdgeDist) bool {
		union(k.A, k.B)
		return true
	})

	// Closure id = minimum member ref. Size = member count.
	type closure struct {
		id   int32
		size int
		hash uint64
	}
	byRoot := make(map[int32]*closure)
	for r := 0; r < nRefs; r++ {
		root := find(int32(r))
		c := byRoot[root]
		if c == nil {
			c = &closure{id: int32(r)} // first member seen is the minimum: r ascends
			byRoot[root] = c
		}
		c.size++
	}
	cls := make([]*closure, 0, len(byRoot))
	for _, c := range byRoot {
		h := fnv.New64a()
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(c.id>>24), byte(c.id>>16), byte(c.id>>8), byte(c.id)
		h.Write(b[:])
		c.hash = h.Sum64()
		cls = append(cls, c)
	}
	// Hash order is a deterministic shuffle; the id tiebreak makes the full
	// order total even on hash collisions.
	sort.Slice(cls, func(i, j int) bool {
		if cls[i].hash != cls[j].hash {
			return cls[i].hash < cls[j].hash
		}
		return cls[i].id < cls[j].id
	})

	// Greedy balance: each closure goes to the lightest shard by ref count
	// (lowest index on ties).
	load := make([]int, shards)
	closureShard := make(map[int32]int, len(cls))
	for _, c := range cls {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		closureShard[c.id] = best
		load[best] += c.size
	}

	refShard = make([]int, nRefs)
	closuresPer = make([]int, shards)
	for _, c := range byRoot {
		closuresPer[closureShard[c.id]]++
	}
	for r := 0; r < nRefs; r++ {
		refShard[r] = closureShard[byRoot[find(int32(r))].id]
	}
	return refShard, closuresPer, len(cls)
}

// extract builds shard s's PGD: the owned references in ascending global
// order, every edge and set among them (closure-complete by construction),
// and the owned global set ids ascending.
func extract(d *refgraph.PGD, refs []int32, refShard []int, s int) (*refgraph.PGD, []int32, error) {
	sd := refgraph.New(d.Alphabet())
	lm, em := d.MergeNames()
	if err := sd.SetNamedMerge(lm, em); err != nil {
		return nil, nil, fmt.Errorf("shard %d: %w", s, err)
	}
	local := make(map[refgraph.RefID]refgraph.RefID, len(refs))
	for i, r := range refs {
		gr := refgraph.RefID(r)
		lr := sd.AddReference(d.RefLabel(gr))
		local[gr] = lr
		if i != int(lr) {
			return nil, nil, fmt.Errorf("shard %d: local ref ids not dense", s)
		}
		if p := d.SingletonPrior(gr); p != 1 {
			if err := sd.SetSingletonPrior(lr, p); err != nil {
				return nil, nil, err
			}
		}
	}
	// Edges in canonical key order, so the shard snapshot is deterministic
	// and edge-merge arithmetic matches the global build bit for bit.
	type keyedEdge struct {
		k refgraph.EdgeKey
		e refgraph.EdgeDist
	}
	var edges []keyedEdge
	d.Edges(func(k refgraph.EdgeKey, e refgraph.EdgeDist) bool {
		if refShard[k.A] == s {
			edges = append(edges, keyedEdge{k, e})
		}
		return true
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].k.A != edges[j].k.A {
			return edges[i].k.A < edges[j].k.A
		}
		return edges[i].k.B < edges[j].k.B
	})
	for _, ke := range edges {
		la, okA := local[ke.k.A]
		lb, okB := local[ke.k.B]
		if !okA || !okB {
			return nil, nil, fmt.Errorf("shard %d: edge (%d,%d) crosses the partition — closure computation broken",
				s, ke.k.A, ke.k.B)
		}
		if err := sd.AddEdge(la, lb, ke.e); err != nil {
			return nil, nil, err
		}
	}
	var sets []int32
	for i := 0; i < d.NumSets(); i++ {
		rs := d.Set(refgraph.SetID(i))
		if refShard[rs.Members[0]] != s {
			continue
		}
		ms := make([]refgraph.RefID, len(rs.Members))
		for j, gm := range rs.Members {
			lr, ok := local[gm]
			if !ok {
				return nil, nil, fmt.Errorf("shard %d: set %d crosses the partition — closure computation broken", s, i)
			}
			ms[j] = lr
		}
		if _, err := sd.AddReferenceSet(ms, rs.P); err != nil {
			return nil, nil, err
		}
		sets = append(sets, int32(i))
	}
	return sd, sets, nil
}

// Build runs the full offline sharding pipeline into dir: partition, write
// each shard's generation-1 PGD snapshot, build each shard's path index, and
// flip the manifest catalog in last. A crash mid-build leaves no manifest
// (or the previous one), so a router never sees a half-built catalog.
func Build(ctx context.Context, d *refgraph.PGD, dir string, opt Options) (*Manifest, error) {
	if opt.Index.Dir != "" {
		return nil, fmt.Errorf("shard: Options.Index.Dir must be empty (derived per shard)")
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	pgds, m, err := Partition(d, opt.Shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	for s, sd := range pgds {
		e := &m.Entries[s]
		e.Generation = 1
		genDir := filepath.Join(fmt.Sprintf("shard-%02d", s), fmt.Sprintf("gen-%06d", e.Generation))
		e.PGD = filepath.Join(genDir, "pgd.snap")
		e.IndexDir = filepath.Join(genDir, "index")
		e.Format = opt.Index.Format.String()
		if err := os.MkdirAll(filepath.Join(dir, genDir), 0o755); err != nil {
			return nil, err
		}
		if err := writeSnapshot(filepath.Join(dir, e.PGD), sd); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		g, err := entity.Build(sd, opt.Build)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		ixOpt := opt.Index
		ixOpt.Dir = filepath.Join(dir, e.IndexDir)
		ix, err := pathindex.Build(ctx, g, ixOpt)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		st := ix.Stats()
		ix.Close()
		logf("shard %d: %d refs, %d sets, %d closures; index %d entries over %d sequences",
			s, len(e.Refs), len(e.Sets), e.Closures, st.Entries, st.Sequences)
	}
	if err := WriteManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// writeSnapshot persists one shard PGD durably.
func writeSnapshot(path string, d *refgraph.PGD) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
