// Manifest catalog: the cluster tier's shard → generation → files map.
//
// The manifest is the shard-level analogue of the live database's
// MANIFEST.json generation pointer, and uses the same crash-safe flip
// protocol (tmp file + fsync + rename + directory sync): a shard
// re-publishing a fresh generation atomically replaces its entry, so a
// router reloading the catalog sees either the old or the new generation of
// every shard — never a torn mix.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the catalog file inside a sharded build directory.
const ManifestName = "MANIFEST.json"

// ManifestVersion is the format version written by this package.
const ManifestVersion = 1

// Manifest catalogs one sharded build: the partition parameters, the global
// id space (the router translates shard-local entity ids back into it), and
// one entry per shard.
type Manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	// TotalRefs / TotalSets describe the global PGD's id space: global
	// entity ids are 0..TotalRefs-1 for reference singletons, then
	// TotalRefs+s for reference set s — the layout entity.Build assigns.
	TotalRefs int `json:"total_refs"`
	TotalSets int `json:"total_sets"`
	// Labels is the alphabet in label-id order, so a router can parse and
	// validate queries without loading any shard's PGD.
	Labels  []string `json:"labels"`
	Entries []Entry  `json:"entries"`
}

// Entry is one shard's current generation in the catalog.
type Entry struct {
	Shard int `json:"shard"`
	// Generation is the shard's publication counter; a re-publish must
	// strictly advance it (the generation-flip protocol).
	Generation uint64 `json:"generation"`
	// PGD and IndexDir locate the generation's artifacts, relative to the
	// manifest directory.
	PGD      string `json:"pgd"`
	IndexDir string `json:"index_dir"`
	// Format tags the index layout in IndexDir: "v1" (B+-tree directory),
	// "v2" (packed single file), or "" for pre-tag manifests (treated as
	// v1-era; pathindex.Open auto-detects either way, the tag exists so
	// operators and tooling can see a fleet's migration state without
	// probing index directories).
	Format string `json:"format,omitempty"`
	// Closures counts the linkage closures (identity-component groups,
	// closed under reference edges) assigned to this shard.
	Closures int `json:"closures"`
	// Refs lists the global reference ids owned by this shard, ascending;
	// shard-local reference i is global reference Refs[i]. Sets likewise
	// lists owned global set ids ascending; shard-local set j is global set
	// Sets[j]. Both maps are strictly increasing, so shard-local entity-id
	// order agrees with global order — the property the router's ordered
	// merges rely on.
	Refs []int32 `json:"refs"`
	Sets []int32 `json:"sets"`
}

// LoadManifest reads and validates the catalog in dir.
func LoadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", dir, err)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", dir, err)
	}
	return &m, nil
}

func (m *Manifest) validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("unsupported manifest version %d (want %d)", m.Version, ManifestVersion)
	}
	if m.Shards < 1 || len(m.Entries) != m.Shards {
		return fmt.Errorf("manifest lists %d entries for %d shards", len(m.Entries), m.Shards)
	}
	if len(m.Labels) == 0 {
		return fmt.Errorf("manifest has an empty alphabet")
	}
	seenRef := make(map[int32]int, m.TotalRefs)
	seenSet := make(map[int32]int, m.TotalSets)
	for i, e := range m.Entries {
		if e.Shard != i {
			return fmt.Errorf("entry %d names shard %d (entries must be dense and ordered)", i, e.Shard)
		}
		if e.Generation == 0 {
			return fmt.Errorf("shard %d has generation 0 (never published)", i)
		}
		if e.Format != "" && e.Format != "v1" && e.Format != "v2" {
			return fmt.Errorf("shard %d has unknown index format %q", i, e.Format)
		}
		for j, r := range e.Refs {
			if j > 0 && e.Refs[j-1] >= r {
				return fmt.Errorf("shard %d ref list not strictly increasing at %d", i, j)
			}
			if r < 0 || int(r) >= m.TotalRefs {
				return fmt.Errorf("shard %d owns unknown ref %d", i, r)
			}
			if prev, dup := seenRef[r]; dup {
				return fmt.Errorf("ref %d owned by shards %d and %d", r, prev, i)
			}
			seenRef[r] = i
		}
		for j, s := range e.Sets {
			if j > 0 && e.Sets[j-1] >= s {
				return fmt.Errorf("shard %d set list not strictly increasing at %d", i, j)
			}
			if s < 0 || int(s) >= m.TotalSets {
				return fmt.Errorf("shard %d owns unknown set %d", i, s)
			}
			if prev, dup := seenSet[s]; dup {
				return fmt.Errorf("set %d owned by shards %d and %d", s, prev, i)
			}
			seenSet[s] = i
		}
	}
	if len(seenRef) != m.TotalRefs {
		return fmt.Errorf("entries own %d refs, manifest declares %d", len(seenRef), m.TotalRefs)
	}
	if len(seenSet) != m.TotalSets {
		return fmt.Errorf("entries own %d sets, manifest declares %d", len(seenSet), m.TotalSets)
	}
	return nil
}

// WriteManifest flips the catalog crash-safely: the tmp file is fsynced
// before the rename and the directory after it, so a power loss leaves
// either the previous or the new catalog — never a torn or unpersisted one.
func WriteManifest(dir string, m *Manifest) error {
	if err := m.validate(); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// PublishEntry is the shard publication protocol: it reloads the catalog,
// replaces exactly one shard's entry with a strictly newer generation, and
// flips the manifest atomically. A stale publish (generation not advancing)
// or a publish changing the shard's ownership (ref/set lists) is rejected —
// re-partitioning requires a fresh build, not a flip.
func PublishEntry(dir string, e Entry) error {
	m, err := LoadManifest(dir)
	if err != nil {
		return err
	}
	if e.Shard < 0 || e.Shard >= len(m.Entries) {
		return fmt.Errorf("shard: publish names unknown shard %d", e.Shard)
	}
	cur := &m.Entries[e.Shard]
	if e.Generation <= cur.Generation {
		return fmt.Errorf("shard: publish for shard %d does not advance generation (%d -> %d)",
			e.Shard, cur.Generation, e.Generation)
	}
	if !int32SlicesEqual(e.Refs, cur.Refs) || !int32SlicesEqual(e.Sets, cur.Sets) {
		return fmt.Errorf("shard: publish for shard %d changes its ref/set ownership; re-partition instead", e.Shard)
	}
	*cur = e
	return WriteManifest(dir, m)
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IDMap translates one shard's local entity ids into the global id space.
// Local layout (entity.Build): references first in Refs order, then sets in
// Sets order. Both lists are strictly increasing and every global reference
// id precedes every global set entity id, so the translation is strictly
// monotone — per-shard orderings survive translation, which is what makes
// the router's ordered merges exact.
type IDMap struct {
	refs      []int32
	sets      []int32
	totalRefs int32
}

// IDMap returns the translator for one shard.
func (m *Manifest) IDMap(shard int) *IDMap {
	e := &m.Entries[shard]
	return &IDMap{refs: e.Refs, sets: e.Sets, totalRefs: int32(m.TotalRefs)}
}

// NumEntities returns how many local entity ids the shard defines.
func (t *IDMap) NumEntities() int { return len(t.refs) + len(t.sets) }

// Global maps a shard-local entity id to its global id.
func (t *IDMap) Global(local uint32) (uint32, bool) {
	if int(local) < len(t.refs) {
		return uint32(t.refs[local]), true
	}
	j := int(local) - len(t.refs)
	if j < len(t.sets) {
		return uint32(t.totalRefs + t.sets[j]), true
	}
	return 0, false
}
