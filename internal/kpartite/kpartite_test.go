package kpartite

import (
	"context"
	"math"
	"testing"
)

const eps = 1e-9

// figure5Graph reconstructs the paper's Figure 5(c) state: three partitions
// P1 = {Pu1 (w1=0.9), Pu2 (0.8)}, P2 = {Pu4 (0.7)}, P3 = {Pu9 (0.6),
// Pu8 (0.8)}, with P2 joining both P1 and P3 and Pu4 linked to everything.
// Identity weights w2 are 1 (the figure considers w1 only).
func figure5Graph(t *testing.T, alpha float64) *Graph {
	t.Helper()
	kg, err := NewExplicit(
		[][]VertexSpec{
			{{W1: 0.9, W2: 1}, {W1: 0.8, W2: 1}}, // P1: Pu1, Pu2
			{{W1: 0.7, W2: 1}},                   // P2: Pu4
			{{W1: 0.6, W2: 1}, {W1: 0.8, W2: 1}}, // P3: Pu9, Pu8
		},
		[][2]int{{0, 1}, {1, 2}},
		[]LinkSpec{
			{PartA: 0, IndexA: 0, PartB: 1, IndexB: 0}, // Pu1–Pu4
			{PartA: 0, IndexA: 1, PartB: 1, IndexB: 0}, // Pu2–Pu4
			{PartA: 1, IndexA: 0, PartB: 2, IndexB: 0}, // Pu4–Pu9
			{PartA: 1, IndexA: 0, PartB: 2, IndexB: 1}, // Pu4–Pu8
		},
		alpha,
	)
	if err != nil {
		t.Fatal(err)
	}
	return kg
}

func TestFigure5MessagePassing(t *testing.T) {
	kg := figure5Graph(t, 0.4)
	st, err := kg.Reduce(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.SSBefore != 2*1*2 {
		t.Errorf("SSBefore = %v", st.SSBefore)
	}
	// Structure removes nothing in (c).
	if st.SSAfterStructure != 4 {
		t.Errorf("SSAfterStructure = %v", st.SSAfterStructure)
	}
	// At α=0.4, exactly the 0.6-weight vertex of P3 dies:
	// its converged bound is 0.9 · 0.7 · 0.6 = 0.378 < 0.4 (the paper's
	// Figure 5(f) walkthrough; the prose says "Pu8" but means the vertex
	// with the 0.6 weight).
	if kg.Alive(2, 0) {
		t.Error("vertex (P3, 0.6) should be pruned")
	}
	if !kg.Alive(2, 1) || !kg.Alive(0, 0) || !kg.Alive(0, 1) || !kg.Alive(1, 0) {
		t.Error("wrong vertex pruned")
	}
	if st.SSAfterUpperbound != 2*1*1 {
		t.Errorf("SSAfterUpperbound = %v", st.SSAfterUpperbound)
	}

	// Converged perception vectors match Figure 5(f).
	wantVecs := map[[2]int][]float64{
		{0, 0}: {0.9, 0.7, 0.8}, // Pu1
		{0, 1}: {0.8, 0.7, 0.8}, // Pu2
		{1, 0}: {0.9, 0.7, 0.8}, // Pu4
		{2, 1}: {0.9, 0.7, 0.8}, // Pu8
	}
	for key, want := range wantVecs {
		got := kg.Vector(key[0], key[1])
		if got == nil {
			t.Fatalf("vertex %v has no vector", key)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > eps {
				t.Errorf("vertex %v vector = %v, want %v", key, got, want)
				break
			}
		}
	}
}

func TestFigure5NoPruneAtLowAlpha(t *testing.T) {
	kg := figure5Graph(t, 0.3)
	st, err := kg.Reduce(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 0.378 ≥ 0.3: everything survives.
	if st.SSAfterUpperbound != 4 {
		t.Errorf("SSAfterUpperbound = %v, want 4", st.SSAfterUpperbound)
	}
}

func TestReductionByStructure(t *testing.T) {
	// P1 joins P2; one P1 vertex has no links at all → removed; its removal
	// does not orphan the linked pair.
	kg, err := NewExplicit(
		[][]VertexSpec{
			{{W1: 1, W2: 1}, {W1: 1, W2: 1}},
			{{W1: 1, W2: 1}},
		},
		[][2]int{{0, 1}},
		[]LinkSpec{{PartA: 0, IndexA: 0, PartB: 1, IndexB: 0}},
		0.1,
	)
	if err != nil {
		t.Fatal(err)
	}
	st := kg.ReduceStructureOnly()
	if st.SSBefore != 2 || st.SSAfterStructure != 1 {
		t.Errorf("ST: %v → %v, want 2 → 1", st.SSBefore, st.SSAfterStructure)
	}
	if kg.Alive(0, 1) {
		t.Error("unlinked vertex survived")
	}
	if !kg.Alive(0, 0) || !kg.Alive(1, 0) {
		t.Error("linked vertices died")
	}
}

func TestReductionByStructureCascades(t *testing.T) {
	// Chain P1–P2–P3: killing the only P3 vertex linked to P2's vertex
	// cascades through the chain.
	kg, err := NewExplicit(
		[][]VertexSpec{
			{{W1: 1, W2: 1}},
			{{W1: 1, W2: 1}},
			{{W1: 1, W2: 1}}, // no links at all
		},
		[][2]int{{0, 1}, {1, 2}},
		[]LinkSpec{{PartA: 0, IndexA: 0, PartB: 1, IndexB: 0}},
		0.1,
	)
	if err != nil {
		t.Fatal(err)
	}
	st := kg.ReduceStructureOnly()
	// P3's vertex has no link to P2 → dies; then P2's vertex loses its only
	// P3 link → dies; then P1's vertex dies.
	if st.SSAfterStructure != 0 {
		t.Errorf("SSAfterStructure = %v, want 0 (full cascade)", st.SSAfterStructure)
	}
}

func TestPruneUsesW2(t *testing.T) {
	// A vertex with low identity probability w2 is pruned even when all w1
	// bounds are high.
	kg, err := NewExplicit(
		[][]VertexSpec{
			{{W1: 1, W2: 0.2}},
			{{W1: 1, W2: 1}},
		},
		[][2]int{{0, 1}},
		[]LinkSpec{{PartA: 0, IndexA: 0, PartB: 1, IndexB: 0}},
		0.5,
	)
	if err != nil {
		t.Fatal(err)
	}
	st, err := kg.Reduce(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.SSAfterUpperbound != 0 {
		t.Errorf("low-w2 vertex survived: %v", st.SSAfterUpperbound)
	}
}

func TestNewExplicitValidation(t *testing.T) {
	if _, err := NewExplicit(nil, [][2]int{{0, 5}}, nil, 0.5); err == nil {
		t.Error("bad joined pair accepted")
	}
	if _, err := NewExplicit(
		[][]VertexSpec{{{W1: 1, W2: 1}}, {{W1: 1, W2: 1}}},
		nil,
		[]LinkSpec{{PartA: 0, IndexA: 0, PartB: 1, IndexB: 0}},
		0.5,
	); err == nil {
		t.Error("link between non-joined partitions accepted")
	}
}

func TestAccessors(t *testing.T) {
	kg := figure5Graph(t, 0.4)
	if kg.NumPartitions() != 3 {
		t.Errorf("NumPartitions = %d", kg.NumPartitions())
	}
	if kg.AliveCount(0) != 2 {
		t.Errorf("AliveCount(0) = %d", kg.AliveCount(0))
	}
	if !kg.VertexExists(0, 1) || kg.VertexExists(0, 2) {
		t.Error("VertexExists wrong")
	}
	av := kg.AliveVertices(2)
	if len(av) != 2 || av[0] != 0 || av[1] != 1 {
		t.Errorf("AliveVertices = %v", av)
	}
	links := kg.Links(1, 0, 2)
	if len(links) != 2 {
		t.Errorf("Links(1,0,2) = %v", links)
	}
	la := kg.LinkedAlive(1, 0, 2)
	if len(la) != 2 {
		t.Errorf("LinkedAlive = %v", la)
	}
}
