// Package kpartite implements Sections 5.2.3 and 5.2.4: the candidate
// k-partite graph (one partition per decomposition path, one vertex per
// candidate path match, links between join-candidates), and the joint search
// space reduction that interleaves reduction by structure with reduction by
// upperbounds (perception-vector message passing) until fixpoint.
package kpartite

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/candidates"
	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/query"
	"repro/internal/refgraph"
)

// Graph is the candidate k-partite graph.
type Graph struct {
	g     *entity.Graph
	q     *query.Query
	dec   *decompose.Decomposition
	alpha float64

	parts []*partition
	// links[p][j] is nil unless j ∈ J(p); otherwise links[p][j][i] lists the
	// vertices of partition j linked to vertex i of partition p, ascending.
	links [][][][]int32
}

type partition struct {
	set    *candidates.Set
	alive  []bool
	nAlive int
	w1     []float64
	w2     []float64
	vec    [][]float64 // perception vectors, one entry per partition
}

// Stats reports the reduction behaviour (Figures 7(e) and 7(f)).
type Stats struct {
	// SSBefore is the search space size entering the reduction.
	SSBefore float64
	// SSAfterStructure is the size after the first structure-only fixpoint.
	SSAfterStructure float64
	// SSAfterUpperbound is the final size after the full interleaved
	// reduction.
	SSAfterUpperbound float64
	// Rounds counts the interleaved reduction iterations.
	Rounds int
	// LinksBuilt counts the join-candidate links constructed.
	LinksBuilt int
}

// Build constructs the k-partite graph: join-candidate links are found with
// per-pair lookup tables (Section 5.2.3), filtering by join predicates,
// combined probability, and reference disjointness.
func Build(ctx context.Context, g *entity.Graph, q *query.Query, dec *decompose.Decomposition, sets []candidates.Set, alpha float64) (*Graph, error) {
	k := len(sets)
	kg := &Graph{g: g, q: q, dec: dec, alpha: alpha}
	kg.parts = make([]*partition, k)
	kg.links = make([][][][]int32, k)
	for p := 0; p < k; p++ {
		n := len(sets[p].Cands)
		part := &partition{
			set:    &sets[p],
			alive:  make([]bool, n),
			nAlive: n,
			w1:     make([]float64, n),
			w2:     make([]float64, n),
			vec:    make([][]float64, n),
		}
		for i := 0; i < n; i++ {
			part.alive[i] = true
		}
		kg.parts[p] = part
		kg.links[p] = make([][][]int32, k)
	}
	kg.computeWeights()

	for pair := range dec.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := kg.linkPair(pair[0], pair[1]); err != nil {
			return nil, err
		}
	}
	return kg, nil
}

// computeWeights assigns w1 (the exclusive node/edge cover product) and w2
// (the identity probability Prn) to every vertex.
func (kg *Graph) computeWeights() {
	for p, part := range kg.parts {
		path := part.set.Path
		for i, c := range part.set.Cands {
			w1 := 1.0
			for pos, qn := range path.Nodes {
				if kg.dec.CoverNode[qn] == p {
					w1 *= kg.g.PrLabel(c.Nodes[pos], kg.q.Label(qn))
				}
			}
			for pos := 0; pos+1 < len(path.Nodes); pos++ {
				a, b := path.Nodes[pos], path.Nodes[pos+1]
				key := edgeKey(a, b)
				if kg.dec.CoverEdge[key] != p {
					continue
				}
				ep, ok := kg.g.EdgeBetween(c.Nodes[pos], c.Nodes[pos+1])
				if !ok {
					w1 = 0
					break
				}
				w1 *= ep.Prob(kg.q.Label(a), kg.q.Label(b))
			}
			part.w1[i] = w1
			part.w2[i] = c.Prn
		}
	}
}

func edgeKey(a, b query.NodeID) [2]query.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]query.NodeID{a, b}
}

// linkPair builds the links between partitions a and b via a lookup table
// T(b, a) keyed by b's join-position node tuples.
func (kg *Graph) linkPair(a, b int) error {
	preds := kg.dec.Preds(a, b)
	// Table over partition b keyed by its join-position nodes.
	table := make(map[string][]int32)
	keyBuf := make([]byte, 0, len(preds)*4)
	for i, c := range kg.parts[b].set.Cands {
		keyBuf = keyBuf[:0]
		for _, pr := range preds {
			keyBuf = appendID(keyBuf, c.Nodes[pr.PosB])
		}
		table[string(keyBuf)] = append(table[string(keyBuf)], int32(i))
	}

	la := make([][]int32, len(kg.parts[a].set.Cands))
	lb := make([][]int32, len(kg.parts[b].set.Cands))
	for i, c := range kg.parts[a].set.Cands {
		keyBuf = keyBuf[:0]
		for _, pr := range preds {
			keyBuf = appendID(keyBuf, c.Nodes[pr.PosA])
		}
		for _, j := range table[string(keyBuf)] {
			if !kg.joinable(a, i, b, int(j)) {
				continue
			}
			la[i] = append(la[i], j)
			lb[j] = append(lb[j], int32(i))
		}
	}
	for _, l := range la {
		sort.Slice(l, func(x, y int) bool { return l[x] < l[y] })
	}
	for _, l := range lb {
		sort.Slice(l, func(x, y int) bool { return l[x] < l[y] })
	}
	kg.links[a][b] = la
	kg.links[b][a] = lb
	return nil
}

func appendID(b []byte, id entity.ID) []byte {
	return append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
}

// joinable applies the probabilistic and reference-disjointness filters of
// cn(P1, Pu1, P2): Pr(Pu1 ∘ Pu2) ≥ α and refs(V_Pu1) ∩ refs(V_Pu2) = ∅
// (shared join nodes excepted).
func (kg *Graph) joinable(a, i, b, j int) bool {
	ca := kg.parts[a].set.Cands[i]
	cb := kg.parts[b].set.Cands[j]
	pa := kg.parts[a].set.Path
	pb := kg.parts[b].set.Path

	// Union assignment keyed by query node.
	asn := make(map[query.NodeID]entity.ID, len(pa.Nodes)+len(pb.Nodes))
	for pos, qn := range pa.Nodes {
		asn[qn] = ca.Nodes[pos]
	}
	for pos, qn := range pb.Nodes {
		if v, ok := asn[qn]; ok {
			if v != cb.Nodes[pos] {
				return false // join predicate violated (defensive; table guarantees it)
			}
			continue
		}
		asn[qn] = cb.Nodes[pos]
	}
	if !refsDisjoint(kg.g, asn) {
		return false
	}
	return combinedPr(kg.g, kg.q, asn, pa, pb)+1e-12 >= kg.alpha
}

// refsDisjoint checks pairwise reference disjointness over an assignment;
// it also rejects two query nodes mapped to the same entity (an entity
// shares references with itself), enforcing injectivity.
func refsDisjoint(g *entity.Graph, asn map[query.NodeID]entity.ID) bool {
	seen := make(map[refgraph.RefID]struct{}, len(asn)*2)
	for _, v := range asn {
		for _, r := range g.Refs(v) {
			if _, dup := seen[r]; dup {
				return false
			}
			seen[r] = struct{}{}
		}
	}
	return true
}

// combinedPr computes Pr(Pu1 ∘ Pu2): the label/edge product over the union
// subgraph times the identity marginal over the union node set.
func combinedPr(g *entity.Graph, q *query.Query, asn map[query.NodeID]entity.ID, paths ...*decompose.Path) float64 {
	prle := 1.0
	for qn, v := range asn {
		prle *= g.PrLabel(v, q.Label(qn))
		if prle == 0 {
			return 0
		}
	}
	seenEdges := make(map[[2]query.NodeID]struct{}, 8)
	nodes := make([]entity.ID, 0, len(asn))
	for _, v := range asn {
		nodes = append(nodes, v)
	}
	for _, p := range paths {
		for pos := 0; pos+1 < len(p.Nodes); pos++ {
			key := edgeKey(p.Nodes[pos], p.Nodes[pos+1])
			if _, dup := seenEdges[key]; dup {
				continue
			}
			seenEdges[key] = struct{}{}
			ep, ok := g.EdgeBetween(asn[key[0]], asn[key[1]])
			if !ok {
				return 0
			}
			prle *= ep.Prob(q.Label(key[0]), q.Label(key[1]))
			if prle == 0 {
				return 0
			}
		}
	}
	return prle * g.Prn(nodes)
}

// NumPartitions returns k.
func (kg *Graph) NumPartitions() int { return len(kg.parts) }

// AliveCount returns the number of surviving vertices in partition p.
func (kg *Graph) AliveCount(p int) int { return kg.parts[p].nAlive }

// Alive reports whether vertex i of partition p survives.
func (kg *Graph) Alive(p, i int) bool { return kg.parts[p].alive[i] }

// Candidate returns candidate i of partition p.
func (kg *Graph) Candidate(p, i int) candidates.Candidate { return kg.parts[p].set.Cands[i] }

// Links returns the vertices of partition j linked to vertex i of partition
// p (including dead ones; filter with Alive). Nil when j ∉ J(p).
func (kg *Graph) Links(p, i, j int) []int32 {
	if kg.links[p][j] == nil {
		return nil
	}
	return kg.links[p][j][i]
}

// VertexExists reports whether partition p has a vertex i (alive or dead).
func (kg *Graph) VertexExists(p, i int) bool {
	return i >= 0 && i < len(kg.parts[p].alive)
}

// AliveVertices returns the indices of all surviving vertices in partition
// p, ascending.
func (kg *Graph) AliveVertices(p int) []int32 {
	part := kg.parts[p]
	out := make([]int32, 0, part.nAlive)
	for i, a := range part.alive {
		if a {
			out = append(out, int32(i))
		}
	}
	return out
}

// LinkedAlive returns the alive vertices of partition j linked to vertex i
// of partition p, ascending.
func (kg *Graph) LinkedAlive(p, i, j int) []int32 {
	links := kg.Links(p, i, j)
	out := make([]int32, 0, len(links))
	for _, u := range links {
		if kg.parts[j].alive[u] {
			out = append(out, u)
		}
	}
	return out
}

// SearchSpace returns the product of alive-vertex counts across partitions.
func (kg *Graph) SearchSpace() float64 {
	ss := 1.0
	for _, part := range kg.parts {
		ss *= float64(part.nAlive)
	}
	return ss
}

// Reduce runs the joint search space reduction to fixpoint: structure first,
// then upperbound message passing interleaved with structure until no vertex
// dies and no perception entry decreases.
func (kg *Graph) Reduce(ctx context.Context, workers int) (Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := Stats{SSBefore: kg.SearchSpace()}
	for _, part := range kg.parts {
		for i := range part.vec {
			part.vec[i] = nil
		}
	}
	kg.reduceStructure()
	st.SSAfterStructure = kg.SearchSpace()

	kg.initVectors()
	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		st.Rounds++
		changed := kg.passUpperbounds(workers)
		killed := kg.pruneByBound()
		if killed > 0 {
			kg.reduceStructure()
		}
		if !changed && killed == 0 {
			break
		}
		if st.Rounds > 10000 {
			break // safety valve; convergence is monotone so this is unreachable
		}
	}
	st.SSAfterUpperbound = kg.SearchSpace()
	for p := range kg.parts {
		for j := range kg.links[p] {
			if kg.links[p][j] != nil {
				for i := range kg.links[p][j] {
					st.LinksBuilt += len(kg.links[p][j][i])
				}
			}
		}
	}
	st.LinksBuilt /= 2
	return st, nil
}

// ReduceStructureOnly runs only the structural fixpoint (used by the
// Figure 7(f) ablation).
func (kg *Graph) ReduceStructureOnly() Stats {
	st := Stats{SSBefore: kg.SearchSpace()}
	kg.reduceStructure()
	st.SSAfterStructure = kg.SearchSpace()
	st.SSAfterUpperbound = st.SSAfterStructure
	return st
}

// reduceStructure kills vertices lacking a link into some required partition
// until fixpoint, propagating removals with a worklist.
func (kg *Graph) reduceStructure() {
	type vref struct{ p, i int }
	var work []vref
	for p, part := range kg.parts {
		req := kg.dec.Joined(p)
		for i := range part.alive {
			if part.alive[i] && !kg.hasAllLinks(p, i, req) {
				part.alive[i] = false
				part.nAlive--
				work = append(work, vref{p, i})
			}
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		// Neighbors of the dead vertex may have lost their last link.
		for j, lj := range kg.links[v.p] {
			if lj == nil {
				continue
			}
			reqJ := kg.dec.Joined(j)
			for _, u := range lj[v.i] {
				if !kg.parts[j].alive[u] {
					continue
				}
				if !kg.hasAllLinks(j, int(u), reqJ) {
					kg.parts[j].alive[u] = false
					kg.parts[j].nAlive--
					work = append(work, vref{j, int(u)})
				}
			}
		}
	}
}

func (kg *Graph) hasAllLinks(p, i int, req []int) bool {
	for _, j := range req {
		found := false
		for _, u := range kg.links[p][j][i] {
			if kg.parts[j].alive[u] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// initVectors sets every alive vertex's perception vector: w1 at its own
// partition, 1 elsewhere.
func (kg *Graph) initVectors() {
	k := len(kg.parts)
	for p, part := range kg.parts {
		for i := range part.alive {
			if !part.alive[i] {
				continue
			}
			vec := make([]float64, k)
			for q := range vec {
				vec[q] = 1
			}
			vec[p] = part.w1[i]
			part.vec[i] = vec
		}
	}
}

// passUpperbounds performs one bulk-synchronous message-passing round with
// one worker per partition (bounded by workers), reporting whether any
// perception entry decreased.
func (kg *Graph) passUpperbounds(workers int) bool {
	k := len(kg.parts)
	updated := make([][][]float64, k)
	changed := make([]bool, k)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			updated[p], changed[p] = kg.updatePartition(p)
		}(p)
	}
	wg.Wait()
	any := false
	for p := 0; p < k; p++ {
		if changed[p] {
			any = true
		}
		part := kg.parts[p]
		for i, vec := range updated[p] {
			if vec != nil {
				part.vec[i] = vec
			}
		}
	}
	return any
}

// updatePartition computes the next perception vectors for partition p from
// the current snapshot: entry q becomes min over joined partitions P2 of the
// max over alive neighbors in P2 of their entry q (monotonically clamped).
func (kg *Graph) updatePartition(p int) ([][]float64, bool) {
	part := kg.parts[p]
	req := kg.dec.Joined(p)
	if len(req) == 0 {
		return nil, false
	}
	k := len(kg.parts)
	out := make([][]float64, len(part.alive))
	changed := false
	for i := range part.alive {
		if !part.alive[i] {
			continue
		}
		cur := part.vec[i]
		var next []float64
		for q := 0; q < k; q++ {
			if q == p {
				continue
			}
			val := cur[q]
			for _, j := range req {
				maxN := 0.0
				for _, u := range kg.links[p][j][i] {
					if !kg.parts[j].alive[u] {
						continue
					}
					if vu := kg.parts[j].vec[u][q]; vu > maxN {
						maxN = vu
					}
				}
				if maxN < val {
					val = maxN
				}
			}
			if val < cur[q]-1e-15 {
				if next == nil {
					next = append([]float64(nil), cur...)
				}
				next[q] = val
			}
		}
		if next != nil {
			out[i] = next
			changed = true
		}
	}
	return out, changed
}

// pruneByBound kills vertices whose upperbound w2 · ∏ vec falls below α,
// returning the number killed.
func (kg *Graph) pruneByBound() int {
	killed := 0
	for _, part := range kg.parts {
		for i := range part.alive {
			if !part.alive[i] {
				continue
			}
			bound := part.w2[i]
			for _, v := range part.vec[i] {
				bound *= v
			}
			if bound+1e-12 < kg.alpha {
				part.alive[i] = false
				part.nAlive--
				killed++
			}
		}
	}
	return killed
}
