// Package kpartite implements Sections 5.2.3 and 5.2.4: the candidate
// k-partite graph (one partition per decomposition path, one vertex per
// candidate path match, links between join-candidates), and the joint search
// space reduction that interleaves reduction by structure with reduction by
// upperbounds (perception-vector message passing) until fixpoint.
//
// The graph is stored in flat arena-backed arrays so the reduction and the
// downstream join enumeration walk contiguous memory: candidate rows live in
// one entity-id array per partition (row-major, path-length stride), links
// are CSR adjacency (offsets into one shared int32 edge pool per partition
// pair), and perception vectors are one flat float64 array per partition
// with a double buffer for the bulk-synchronous message-passing rounds.
// After Build/Reduce the graph is immutable and safe for any number of
// concurrent readers.
package kpartite

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/candidates"
	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/query"
	"repro/internal/refgraph"
)

// Graph is the candidate k-partite graph.
type Graph struct {
	g     *entity.Graph
	q     *query.Query
	dec   *decompose.Decomposition
	alpha float64

	parts []*partition
	// links[p][j] is the CSR adjacency from partition p into partition j;
	// links[p][j].offs is nil unless j ∈ J(p).
	links [][]linkSet
	// joined[p] caches dec.Joined(p) so the reduction fixpoint does not
	// recompute it every round.
	joined [][]int
	// vecReady reports that perception vectors were initialized by Reduce.
	vecReady bool
}

// linkSet is one direction of a partition pair's links in CSR form: the
// vertices of the target partition linked to vertex i are
// pool[offs[i]:offs[i+1]], ascending.
type linkSet struct {
	offs []int32
	pool []int32
}

func (ls *linkSet) row(i int) []int32 {
	if ls.offs == nil {
		return nil
	}
	return ls.pool[ls.offs[i]:ls.offs[i+1]]
}

type partition struct {
	set  *candidates.Set
	n    int // number of candidate vertices
	plen int // nodes per candidate row
	// nodes holds the candidate rows row-major: row i is
	// nodes[i*plen : (i+1)*plen].
	nodes  []entity.ID
	alive  []bool
	nAlive int
	w1     []float64
	w2     []float64
	// vec / nextVec are the flat perception vectors (n rows of k entries,
	// row-major); nextVec is the write buffer of the current BSP round and
	// the two are swapped at each round barrier. vecSet[i] records whether
	// vertex i was alive when the vectors were initialized.
	vec     []float64
	nextVec []float64
	vecSet  []bool
}

// Stats reports the reduction behaviour (Figures 7(e) and 7(f)).
type Stats struct {
	// SSBefore is the search space size entering the reduction.
	SSBefore float64
	// SSAfterStructure is the size after the first structure-only fixpoint.
	SSAfterStructure float64
	// SSAfterUpperbound is the final size after the full interleaved
	// reduction.
	SSAfterUpperbound float64
	// Rounds counts the interleaved reduction iterations.
	Rounds int
	// LinksBuilt counts the join-candidate links constructed.
	LinksBuilt int
}

// Build constructs the k-partite graph: join-candidate links are found with
// per-pair lookup tables (Section 5.2.3), filtering by join predicates,
// combined probability, and reference disjointness. With workers > 1 the
// per-pair link construction fans out across a pool: each unordered pair
// writes only its own two kg.links slots and each worker owns a private
// buildEval scratch, and since per-pair output is independent of scheduling
// the resulting CSR arenas are byte-identical at any worker count.
func Build(ctx context.Context, g *entity.Graph, q *query.Query, dec *decompose.Decomposition, sets []candidates.Set, alpha float64, workers int) (*Graph, error) {
	k := len(sets)
	kg := &Graph{g: g, q: q, dec: dec, alpha: alpha}
	kg.parts = make([]*partition, k)
	kg.links = make([][]linkSet, k)
	kg.joined = make([][]int, k)
	for p := 0; p < k; p++ {
		n := len(sets[p].Cands)
		plen := len(sets[p].Path.Nodes)
		part := &partition{
			set:    &sets[p],
			n:      n,
			plen:   plen,
			nodes:  make([]entity.ID, n*plen),
			alive:  make([]bool, n),
			nAlive: n,
			w1:     make([]float64, n),
			w2:     make([]float64, n),
		}
		for i, c := range sets[p].Cands {
			copy(part.nodes[i*plen:(i+1)*plen], c.Nodes)
			part.alive[i] = true
		}
		kg.parts[p] = part
		kg.links[p] = make([]linkSet, k)
		kg.joined[p] = dec.Joined(p)
	}
	kg.computeWeights()

	// Deterministic pair order (the map iteration order above would do for
	// correctness — slots are disjoint — but a sorted work list keeps the
	// sequential walk reproducible and the atomic hand-out stable).
	pairs := make([][2]int, 0, len(dec.Joins))
	for pair := range dec.Joins {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		be := newBuildEval(g, q, dec, alpha, maxRefID(g))
		for _, pair := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			kg.linkPair(be, pair[0], pair[1])
		}
		return kg, nil
	}

	// maxRef needs a full graph scan — compute it once and share it across
	// the per-worker scratch allocations.
	maxRef := maxRefID(g)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			be := newBuildEval(g, q, dec, alpha, maxRef)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) || ctx.Err() != nil {
					return
				}
				kg.linkPair(be, pairs[i][0], pairs[i][1])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return kg, nil
}

// computeWeights assigns w1 (the exclusive node/edge cover product) and w2
// (the identity probability Prn) to every vertex.
func (kg *Graph) computeWeights() {
	for p, part := range kg.parts {
		path := part.set.Path
		for i, c := range part.set.Cands {
			w1 := 1.0
			for pos, qn := range path.Nodes {
				if kg.dec.CoverNode[qn] == p {
					w1 *= kg.g.PrLabel(c.Nodes[pos], kg.q.Label(qn))
				}
			}
			for pos := 0; pos+1 < len(path.Nodes); pos++ {
				a, b := path.Nodes[pos], path.Nodes[pos+1]
				key := edgeKey(a, b)
				if kg.dec.CoverEdge[key] != p {
					continue
				}
				ep, ok := kg.g.EdgeBetween(c.Nodes[pos], c.Nodes[pos+1])
				if !ok {
					w1 = 0
					break
				}
				w1 *= ep.Prob(kg.q.Label(a), kg.q.Label(b))
			}
			part.w1[i] = w1
			part.w2[i] = c.Prn
		}
	}
}

func edgeKey(a, b query.NodeID) [2]query.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]query.NodeID{a, b}
}

// buildEval is the reusable scratch state for the per-pair joinability test:
// a flat union assignment keyed by query node, a reference bitset with an
// undo list, and the per-pair union node/edge shapes, so evaluating one
// candidate pair allocates nothing.
type buildEval struct {
	g     *entity.Graph
	q     *query.Query
	dec   *decompose.Decomposition
	alpha float64

	asn      []entity.ID // per query node; -1 = unassigned
	refWords []uint64
	refUndo  []refgraph.RefID
	nodesBuf []entity.ID

	// Per-pair shape, rebuilt by setPair.
	unionNodes []query.NodeID
	unionEdges [][2]query.NodeID
}

// maxRefID scans the graph for the highest reference id, sizing the
// joinability bitset. Hoisted out of newBuildEval so parallel Build pays
// the scan once, not once per worker.
func maxRefID(g *entity.Graph) refgraph.RefID {
	maxRef := refgraph.RefID(-1)
	for v := 0; v < g.NumNodes(); v++ {
		for _, r := range g.Refs(entity.ID(v)) {
			if r > maxRef {
				maxRef = r
			}
		}
	}
	return maxRef
}

func newBuildEval(g *entity.Graph, q *query.Query, dec *decompose.Decomposition, alpha float64, maxRef refgraph.RefID) *buildEval {
	be := &buildEval{g: g, q: q, dec: dec, alpha: alpha}
	be.asn = make([]entity.ID, q.NumNodes())
	for i := range be.asn {
		be.asn[i] = -1
	}
	be.refWords = make([]uint64, int(maxRef)/64+1)
	return be
}

// setPair precomputes the union query-node list and the deduplicated union
// edge list of paths pa and pb — these depend only on the pair, not on the
// candidates.
func (be *buildEval) setPair(pa, pb *decompose.Path) {
	be.unionNodes = be.unionNodes[:0]
	be.unionEdges = be.unionEdges[:0]
	for _, qn := range pa.Nodes {
		be.unionNodes = append(be.unionNodes, qn)
	}
	for _, qn := range pb.Nodes {
		dup := false
		for _, on := range pa.Nodes {
			if on == qn {
				dup = true
				break
			}
		}
		if !dup {
			be.unionNodes = append(be.unionNodes, qn)
		}
	}
	addEdges := func(p *decompose.Path) {
		for pos := 0; pos+1 < len(p.Nodes); pos++ {
			key := edgeKey(p.Nodes[pos], p.Nodes[pos+1])
			dup := false
			for _, e := range be.unionEdges {
				if e == key {
					dup = true
					break
				}
			}
			if !dup {
				be.unionEdges = append(be.unionEdges, key)
			}
		}
	}
	addEdges(pa)
	addEdges(pb)
}

// joinable applies the probabilistic and reference-disjointness filters of
// cn(P1, Pu1, P2): Pr(Pu1 ∘ Pu2) ≥ α and refs(V_Pu1) ∩ refs(V_Pu2) = ∅
// (shared join nodes excepted). rowA and rowB are the candidate node rows;
// setPair must have been called for the pair's paths.
func (be *buildEval) joinable(pa, pb *decompose.Path, rowA, rowB []entity.ID) bool {
	for pos, qn := range pa.Nodes {
		be.asn[qn] = rowA[pos]
	}
	consistent := true
	for pos, qn := range pb.Nodes {
		if v := be.asn[qn]; v >= 0 && v != rowB[pos] {
			consistent = false // join predicate violated (defensive; table guarantees it)
			break
		}
		be.asn[qn] = rowB[pos]
	}
	ok := consistent
	prle := 1.0
	be.nodesBuf = be.nodesBuf[:0]
	if ok {
		// Reference disjointness over the union assignment; also rejects two
		// query nodes mapped to the same entity (an entity shares references
		// with itself), enforcing injectivity.
		for _, qn := range be.unionNodes {
			v := be.asn[qn]
			for _, r := range be.g.Refs(v) {
				w, bit := uint(r)>>6, uint64(1)<<(uint(r)&63)
				if be.refWords[w]&bit != 0 {
					ok = false
					break
				}
				be.refWords[w] |= bit
				be.refUndo = append(be.refUndo, r)
			}
			if !ok {
				break
			}
			be.nodesBuf = append(be.nodesBuf, v)
			prle *= be.g.PrLabel(v, be.q.Label(qn))
		}
	}
	if ok && prle > 0 {
		for _, key := range be.unionEdges {
			ep, found := be.g.EdgeBetween(be.asn[key[0]], be.asn[key[1]])
			if !found {
				prle = 0
				break
			}
			prle *= ep.Prob(be.q.Label(key[0]), be.q.Label(key[1]))
			if prle == 0 {
				break
			}
		}
	}
	res := ok && prle*be.g.Prn(be.nodesBuf)+1e-12 >= be.alpha
	// Undo: reset assignment and reference bits.
	for _, qn := range be.unionNodes {
		be.asn[qn] = -1
	}
	for _, r := range be.refUndo {
		be.refWords[uint(r)>>6] &^= 1 << (uint(r) & 63)
	}
	be.refUndo = be.refUndo[:0]
	return res
}

// linkPair builds the links between partitions a and b via a lookup table
// T(b, a) keyed by b's join-position node tuples, packing the surviving
// pairs into CSR adjacency for both directions.
func (kg *Graph) linkPair(be *buildEval, a, b int) {
	preds := kg.dec.Preds(a, b)
	pa, pb := kg.parts[a], kg.parts[b]
	be.setPair(pa.set.Path, pb.set.Path)

	// Table over partition b keyed by its join-position nodes.
	table := make(map[string][]int32)
	keyBuf := make([]byte, 0, len(preds)*4)
	for j := 0; j < pb.n; j++ {
		row := pb.nodes[j*pb.plen : (j+1)*pb.plen]
		keyBuf = keyBuf[:0]
		for _, pr := range preds {
			keyBuf = appendID(keyBuf, row[pr.PosB])
		}
		table[string(keyBuf)] = append(table[string(keyBuf)], int32(j))
	}

	var pairs [][2]int32
	for i := 0; i < pa.n; i++ {
		rowA := pa.nodes[i*pa.plen : (i+1)*pa.plen]
		keyBuf = keyBuf[:0]
		for _, pr := range preds {
			keyBuf = appendID(keyBuf, rowA[pr.PosA])
		}
		for _, j := range table[string(keyBuf)] {
			rowB := pb.nodes[int(j)*pb.plen : (int(j)+1)*pb.plen]
			if be.joinable(pa.set.Path, pb.set.Path, rowA, rowB) {
				pairs = append(pairs, [2]int32{int32(i), j})
			}
		}
	}
	kg.links[a][b], kg.links[b][a] = buildCSR(pa.n, pb.n, pairs)
}

// buildCSR packs (i, j) link pairs into the two CSR directions with
// ascending rows.
func buildCSR(na, nb int, pairs [][2]int32) (ab, ba linkSet) {
	ab = linkSet{offs: make([]int32, na+1), pool: make([]int32, len(pairs))}
	ba = linkSet{offs: make([]int32, nb+1), pool: make([]int32, len(pairs))}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x][0] != pairs[y][0] {
			return pairs[x][0] < pairs[y][0]
		}
		return pairs[x][1] < pairs[y][1]
	})
	for _, pr := range pairs {
		ab.offs[pr[0]+1]++
		ba.offs[pr[1]+1]++
	}
	for i := 0; i < na; i++ {
		ab.offs[i+1] += ab.offs[i]
	}
	for j := 0; j < nb; j++ {
		ba.offs[j+1] += ba.offs[j]
	}
	for _, pr := range pairs { // i-major, j ascending → ab rows in order
		ab.pool[ab.offs[pr[0]]] = pr[1]
		ab.offs[pr[0]]++
	}
	// Restore ab offsets (they were advanced while filling).
	for i := na; i > 0; i-- {
		ab.offs[i] = ab.offs[i-1]
	}
	ab.offs[0] = 0
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x][1] != pairs[y][1] {
			return pairs[x][1] < pairs[y][1]
		}
		return pairs[x][0] < pairs[y][0]
	})
	for _, pr := range pairs {
		ba.pool[ba.offs[pr[1]]] = pr[0]
		ba.offs[pr[1]]++
	}
	for j := nb; j > 0; j-- {
		ba.offs[j] = ba.offs[j-1]
	}
	ba.offs[0] = 0
	return ab, ba
}

func appendID(b []byte, id entity.ID) []byte {
	return append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
}

// NumPartitions returns k.
func (kg *Graph) NumPartitions() int { return len(kg.parts) }

// NumCandidates returns the number of candidate vertices (alive or dead) in
// partition p.
func (kg *Graph) NumCandidates(p int) int { return kg.parts[p].n }

// AliveCount returns the number of surviving vertices in partition p.
func (kg *Graph) AliveCount(p int) int { return kg.parts[p].nAlive }

// Alive reports whether vertex i of partition p survives.
func (kg *Graph) Alive(p, i int) bool { return kg.parts[p].alive[i] }

// Candidate returns candidate i of partition p.
func (kg *Graph) Candidate(p, i int) candidates.Candidate { return kg.parts[p].set.Cands[i] }

// Row returns the entity nodes of candidate i of partition p, aligned with
// the partition path's positions — a view into the flat candidate arena
// that must not be modified.
func (kg *Graph) Row(p, i int) []entity.ID {
	part := kg.parts[p]
	return part.nodes[i*part.plen : (i+1)*part.plen]
}

// Links returns the vertices of partition j linked to vertex i of partition
// p (including dead ones; filter with Alive), ascending. Nil when j ∉ J(p).
// The returned slice is a view into the shared edge pool and must not be
// modified.
func (kg *Graph) Links(p, i, j int) []int32 {
	return kg.links[p][j].row(i)
}

// VertexExists reports whether partition p has a vertex i (alive or dead).
func (kg *Graph) VertexExists(p, i int) bool {
	return i >= 0 && i < kg.parts[p].n
}

// AliveVertices returns the indices of all surviving vertices in partition
// p, ascending.
func (kg *Graph) AliveVertices(p int) []int32 {
	part := kg.parts[p]
	out := make([]int32, 0, part.nAlive)
	for i, a := range part.alive {
		if a {
			out = append(out, int32(i))
		}
	}
	return out
}

// LinkedAlive returns the alive vertices of partition j linked to vertex i
// of partition p, ascending.
func (kg *Graph) LinkedAlive(p, i, j int) []int32 {
	links := kg.Links(p, i, j)
	out := make([]int32, 0, len(links))
	for _, u := range links {
		if kg.parts[j].alive[u] {
			out = append(out, u)
		}
	}
	return out
}

// NumLinks returns the number of join-candidate links stored (each linked
// pair counted once) — the executor's observed size for the build stage.
func (kg *Graph) NumLinks() int {
	total := 0
	for p := range kg.links {
		for j := range kg.links[p] {
			if kg.links[p][j].offs != nil {
				total += len(kg.links[p][j].pool)
			}
		}
	}
	return total / 2
}

// SearchSpace returns the product of alive-vertex counts across partitions.
func (kg *Graph) SearchSpace() float64 {
	ss := 1.0
	for _, part := range kg.parts {
		ss *= float64(part.nAlive)
	}
	return ss
}

// Reduce runs the joint search space reduction to fixpoint: structure first,
// then upperbound message passing interleaved with structure until no vertex
// dies and no perception entry decreases.
func (kg *Graph) Reduce(ctx context.Context, workers int) (Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := Stats{SSBefore: kg.SearchSpace()}
	kg.vecReady = false
	kg.reduceStructure()
	st.SSAfterStructure = kg.SearchSpace()

	kg.initVectors()
	changedBuf := make([]bool, len(kg.parts))
	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		st.Rounds++
		changed := kg.passUpperbounds(workers, changedBuf)
		killed := kg.pruneByBound()
		if killed > 0 {
			kg.reduceStructure()
		}
		if !changed && killed == 0 {
			break
		}
		if st.Rounds > 10000 {
			break // safety valve; convergence is monotone so this is unreachable
		}
	}
	st.SSAfterUpperbound = kg.SearchSpace()
	for p := range kg.parts {
		for j := range kg.links[p] {
			if kg.links[p][j].offs != nil {
				st.LinksBuilt += len(kg.links[p][j].pool)
			}
		}
	}
	st.LinksBuilt /= 2
	return st, nil
}

// ReduceStructureOnly runs only the structural fixpoint (used by the
// Figure 7(f) ablation).
func (kg *Graph) ReduceStructureOnly() Stats {
	st := Stats{SSBefore: kg.SearchSpace()}
	kg.reduceStructure()
	st.SSAfterStructure = kg.SearchSpace()
	st.SSAfterUpperbound = st.SSAfterStructure
	return st
}

// reduceStructure kills vertices lacking a link into some required partition
// until fixpoint, propagating removals with a worklist.
func (kg *Graph) reduceStructure() {
	type vref struct{ p, i int }
	var work []vref
	for p, part := range kg.parts {
		req := kg.joined[p]
		for i := range part.alive {
			if part.alive[i] && !kg.hasAllLinks(p, i, req) {
				part.alive[i] = false
				part.nAlive--
				work = append(work, vref{p, i})
			}
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		// Neighbors of the dead vertex may have lost their last link.
		for j := range kg.links[v.p] {
			lj := &kg.links[v.p][j]
			if lj.offs == nil {
				continue
			}
			reqJ := kg.joined[j]
			for _, u := range lj.row(v.i) {
				if !kg.parts[j].alive[u] {
					continue
				}
				if !kg.hasAllLinks(j, int(u), reqJ) {
					kg.parts[j].alive[u] = false
					kg.parts[j].nAlive--
					work = append(work, vref{j, int(u)})
				}
			}
		}
	}
}

func (kg *Graph) hasAllLinks(p, i int, req []int) bool {
	for _, j := range req {
		found := false
		for _, u := range kg.links[p][j].row(i) {
			if kg.parts[j].alive[u] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// initVectors sets every alive vertex's perception vector: w1 at its own
// partition, 1 elsewhere. The flat vector arenas (one live buffer and one
// BSP write buffer per partition) are allocated here, once per reduction.
func (kg *Graph) initVectors() {
	k := len(kg.parts)
	for p, part := range kg.parts {
		if len(part.vec) != part.n*k {
			part.vec = make([]float64, part.n*k)
			part.nextVec = make([]float64, part.n*k)
			part.vecSet = make([]bool, part.n)
		}
		for i := 0; i < part.n; i++ {
			part.vecSet[i] = part.alive[i]
			if !part.alive[i] {
				continue
			}
			row := part.vec[i*k : (i+1)*k]
			for q := range row {
				row[q] = 1
			}
			row[p] = part.w1[i]
		}
	}
	kg.vecReady = true
}

// passUpperbounds performs one bulk-synchronous message-passing round with
// one worker per partition (bounded by workers), reporting whether any
// perception entry decreased. Workers read every partition's live vector
// buffer and write only their own partition's back buffer; the buffers are
// swapped at the barrier.
func (kg *Graph) passUpperbounds(workers int, changed []bool) bool {
	k := len(kg.parts)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			changed[p] = kg.updatePartition(p)
		}(p)
	}
	wg.Wait()
	any := false
	for p := 0; p < k; p++ {
		if changed[p] {
			any = true
		}
		part := kg.parts[p]
		part.vec, part.nextVec = part.nextVec, part.vec
	}
	return any
}

// updatePartition computes the next perception vectors for partition p from
// the current snapshot: entry q becomes min over joined partitions P2 of the
// max over alive neighbors in P2 of their entry q (monotonically clamped).
func (kg *Graph) updatePartition(p int) bool {
	part := kg.parts[p]
	copy(part.nextVec, part.vec)
	req := kg.joined[p]
	if len(req) == 0 {
		return false
	}
	k := len(kg.parts)
	changed := false
	for i := 0; i < part.n; i++ {
		if !part.alive[i] {
			continue
		}
		cur := part.vec[i*k : (i+1)*k]
		next := part.nextVec[i*k : (i+1)*k]
		for q := 0; q < k; q++ {
			if q == p {
				continue
			}
			val := cur[q]
			for _, j := range req {
				pj := kg.parts[j]
				maxN := 0.0
				for _, u := range kg.links[p][j].row(i) {
					if !pj.alive[u] {
						continue
					}
					if vu := pj.vec[int(u)*k+q]; vu > maxN {
						maxN = vu
					}
				}
				if maxN < val {
					val = maxN
				}
			}
			if val < cur[q]-1e-15 {
				next[q] = val
				changed = true
			}
		}
	}
	return changed
}

// pruneByBound kills vertices whose upperbound w2 · ∏ vec falls below α,
// returning the number killed.
func (kg *Graph) pruneByBound() int {
	killed := 0
	k := len(kg.parts)
	for _, part := range kg.parts {
		for i := 0; i < part.n; i++ {
			if !part.alive[i] {
				continue
			}
			bound := part.w2[i]
			for _, v := range part.vec[i*k : (i+1)*k] {
				bound *= v
			}
			if bound+1e-12 < kg.alpha {
				part.alive[i] = false
				part.nAlive--
				killed++
			}
		}
	}
	return killed
}
