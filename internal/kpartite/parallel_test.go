package kpartite

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/candidates"
	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
)

// graphsIdentical compares the built k-partite graphs arena by arena: the
// row-major candidate node arrays, the float bits of w1/w2, and every CSR
// link set's offs and pool. Byte-identical arenas are the determinism
// contract of the parallel pair fan-out.
func graphsIdentical(t *testing.T, label string, want, got *Graph) {
	t.Helper()
	if len(want.parts) != len(got.parts) {
		t.Fatalf("%s: %d partitions, want %d", label, len(got.parts), len(want.parts))
	}
	for p := range want.parts {
		wp, gp := want.parts[p], got.parts[p]
		if wp.n != gp.n || wp.plen != gp.plen {
			t.Fatalf("%s: partition %d shape (%d,%d), want (%d,%d)", label, p, gp.n, gp.plen, wp.n, wp.plen)
		}
		for i := range wp.nodes {
			if wp.nodes[i] != gp.nodes[i] {
				t.Fatalf("%s: partition %d nodes[%d] = %d, want %d", label, p, i, gp.nodes[i], wp.nodes[i])
			}
		}
		for i := range wp.w1 {
			if math.Float64bits(wp.w1[i]) != math.Float64bits(gp.w1[i]) ||
				math.Float64bits(wp.w2[i]) != math.Float64bits(gp.w2[i]) {
				t.Fatalf("%s: partition %d weights[%d] differ", label, p, i)
			}
		}
	}
	for a := range want.links {
		for b := range want.links[a] {
			wl, gl := &want.links[a][b], &got.links[a][b]
			if len(wl.offs) != len(gl.offs) || len(wl.pool) != len(gl.pool) {
				t.Fatalf("%s: links[%d][%d] shape (%d,%d), want (%d,%d)",
					label, a, b, len(gl.offs), len(gl.pool), len(wl.offs), len(wl.pool))
			}
			for i := range wl.offs {
				if wl.offs[i] != gl.offs[i] {
					t.Fatalf("%s: links[%d][%d].offs[%d] = %d, want %d", label, a, b, i, gl.offs[i], wl.offs[i])
				}
			}
			for i := range wl.pool {
				if wl.pool[i] != gl.pool[i] {
					t.Fatalf("%s: links[%d][%d].pool[%d] = %d, want %d", label, a, b, i, gl.pool[i], wl.pool[i])
				}
			}
		}
	}
}

// TestBuildParallelEquivalence: the k-partite arenas built at workers 2, 4,
// and 8 are byte-identical to the single-threaded build, across both
// decomposition strategies on seeded synthetic graphs.
func TestBuildParallelEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		d, err := gen.Synthetic(gen.SynthOptions{
			Refs: 30, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
			Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
			MaxLen: 2, Beta: 0.05, Gamma: 0.1, Dir: filepath.Join(t.TempDir(), "ix"),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ix.Close() })

		rng := rand.New(rand.NewSource(seed * 977))
		for qi := 0; qi < 3; qi++ {
			q, err := gen.RandomQuery(rng, g.NumLabels(), 2+rng.Intn(2), 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []decompose.Mode{decompose.ModeOptimized, decompose.ModeRandom} {
				dec, err := decompose.Decompose(q, ix, decompose.Options{
					MaxLen: 2, Alpha: 0.1, Mode: mode, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				sets, _, err := candidates.Find(context.Background(), ix, q, dec, 0.1, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				seq, err := Build(context.Background(), g, q, dec, sets, 0.1, 1)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4, 8} {
					got, err := Build(context.Background(), g, q, dec, sets, 0.1, workers)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					graphsIdentical(t, fmt.Sprintf("seed %d q%d mode %d w=%d", seed, qi, mode, workers), seq, got)
				}
			}
		}
	}
}
