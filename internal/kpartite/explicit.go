package kpartite

import (
	"fmt"

	"repro/internal/candidates"
	"repro/internal/decompose"
)

// VertexSpec describes one vertex for NewExplicit: its two weights
// (w1 = exclusive label/edge cover product, w2 = identity probability).
type VertexSpec struct {
	W1, W2 float64
}

// LinkSpec connects vertex IndexA of partition PartA with vertex IndexB of
// partition PartB.
type LinkSpec struct {
	PartA, IndexA int
	PartB, IndexB int
}

// NewExplicit constructs a candidate k-partite graph directly from vertex
// weights and links, bypassing candidate generation. joined lists the
// partition pairs that must be linked (J(P)); it must cover every pair that
// appears in links. Intended for unit tests and for experimenting with the
// reduction algorithms in isolation (e.g. the paper's Figure 5 walkthrough).
func NewExplicit(parts [][]VertexSpec, joined [][2]int, links []LinkSpec, alpha float64) (*Graph, error) {
	k := len(parts)
	dec := &decompose.Decomposition{
		Paths: make([]decompose.Path, k),
		Joins: make(map[[2]int][]decompose.JoinPred),
	}
	for _, j := range joined {
		a, b := j[0], j[1]
		if a > b {
			a, b = b, a
		}
		if a < 0 || b >= k || a == b {
			return nil, fmt.Errorf("kpartite: bad joined pair %v", j)
		}
		dec.Joins[[2]int{a, b}] = []decompose.JoinPred{{}}
	}
	kg := &Graph{dec: dec, alpha: alpha}
	kg.parts = make([]*partition, k)
	kg.links = make([][]linkSet, k)
	kg.joined = make([][]int, k)
	sets := make([]candidates.Set, k)
	for p := 0; p < k; p++ {
		n := len(parts[p])
		sets[p] = candidates.Set{Path: &dec.Paths[p], Cands: make([]candidates.Candidate, n)}
		part := &partition{
			set:    &sets[p],
			n:      n,
			plen:   0,
			alive:  make([]bool, n),
			nAlive: n,
			w1:     make([]float64, n),
			w2:     make([]float64, n),
		}
		for i, vs := range parts[p] {
			part.alive[i] = true
			part.w1[i] = vs.W1
			part.w2[i] = vs.W2
		}
		kg.parts[p] = part
		kg.links[p] = make([]linkSet, k)
		kg.joined[p] = dec.Joined(p)
	}
	perPair := make(map[[2]int][][2]int32)
	for _, l := range links {
		if l.PartA < 0 || l.PartA >= k || l.PartB < 0 || l.PartB >= k {
			return nil, fmt.Errorf("kpartite: bad link %+v", l)
		}
		a, b := l.PartA, l.PartB
		ia, ib := int32(l.IndexA), int32(l.IndexB)
		if a > b {
			a, b, ia, ib = b, a, ib, ia
		}
		if _, ok := dec.Joins[[2]int{a, b}]; !ok {
			return nil, fmt.Errorf("kpartite: link %+v between non-joined partitions", l)
		}
		perPair[[2]int{a, b}] = append(perPair[[2]int{a, b}], [2]int32{ia, ib})
	}
	for pair := range dec.Joins {
		a, b := pair[0], pair[1]
		kg.links[a][b], kg.links[b][a] = buildCSR(kg.parts[a].n, kg.parts[b].n, perPair[pair])
	}
	return kg, nil
}

// Vector returns a copy of the current perception vector of vertex i in
// partition p (nil before reduction, or when the vertex was already dead
// when the vectors were initialized).
func (kg *Graph) Vector(p, i int) []float64 {
	part := kg.parts[p]
	if !kg.vecReady || !part.vecSet[i] {
		return nil
	}
	k := len(kg.parts)
	out := make([]float64, k)
	copy(out, part.vec[i*k:(i+1)*k])
	return out
}
