package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/storage/pager"
)

func newTree(t *testing.T) (*Tree, *pager.Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.btree")
	pg, err := pager.Open(path, pager.Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatalf("pager.Open: %v", err)
	}
	tr, err := Create(pg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return tr, pg, path
}

func TestPutGet(t *testing.T) {
	tr, pg, _ := newTree(t)
	defer pg.Close()
	if err := tr.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("beta"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get(alpha) = %q %v %v", v, ok, err)
	}
	if _, ok, _ := tr.Get([]byte("gamma")); ok {
		t.Error("phantom key found")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestPutReplace(t *testing.T) {
	tr, pg, _ := newTree(t)
	defer pg.Close()
	key := []byte("k")
	if err := tr.Put(key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(key, []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr.Get(key)
	if !ok || string(v) != "new" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after replace", tr.Len())
	}
}

func TestPutValidation(t *testing.T) {
	tr, pg, _ := newTree(t)
	defer pg.Close()
	if err := tr.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	big := make([]byte, 4096)
	if err := tr.Put(big, []byte("v")); err == nil {
		t.Error("oversized key accepted")
	}
	if err := tr.Put([]byte("k"), big); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestSplitsAndOrder(t *testing.T) {
	tr, pg, _ := newTree(t)
	defer pg.Close()
	const n = 2000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("val-%d", i))
		if err := tr.Put(k, v); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("height %d suggests splits never happened", h)
	}
	// Full scan must return all keys in order.
	var got []string
	err = tr.Scan([]byte("key-"), nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan returned %d keys, want %d", len(got), n)
	}
	if !sort.StringsAreSorted(got) {
		t.Error("scan output not sorted")
	}
	// Point lookups after splits.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, ok, err := tr.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) = %v %v", k, ok, err)
		}
		if want := fmt.Sprintf("val-%d", i); string(v) != want {
			t.Errorf("Get(%s) = %q, want %q", k, v, want)
		}
	}
}

func TestScanRange(t *testing.T) {
	tr, pg, _ := newTree(t)
	defer pg.Close()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("%03d", i))
		if err := tr.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Scan([]byte("010"), []byte("020"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "010" || got[9] != "019" {
		t.Errorf("range scan = %v", got)
	}
	// Early stop.
	count := 0
	err = tr.Scan([]byte("000"), nil, func(k, v []byte) bool {
		count++
		return count < 5
	})
	if err != nil || count != 5 {
		t.Errorf("early stop: count=%d err=%v", count, err)
	}
	// Empty range.
	count = 0
	if err := tr.Scan([]byte("200"), nil, func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("scan past end returned %d entries", count)
	}
}

func TestDelete(t *testing.T) {
	tr, pg, _ := newTree(t)
	defer pg.Close()
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("%04d", i))
		if err := tr.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.Delete([]byte("0100"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v %v", ok, err)
	}
	if _, found, _ := tr.Get([]byte("0100")); found {
		t.Error("deleted key still present")
	}
	if tr.Len() != 299 {
		t.Errorf("Len = %d", tr.Len())
	}
	ok, err = tr.Delete([]byte("absent"))
	if err != nil || ok {
		t.Errorf("Delete(absent) = %v %v", ok, err)
	}
}

func TestPersistence(t *testing.T) {
	tr, pg, path := newTree(t)
	for i := 0; i < 500; i++ {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i))
		if err := tr.Put(k[:], []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := pager.Open(path, pager.Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	tr2, err := Open(pg2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if tr2.Len() != 500 {
		t.Fatalf("reopened Len = %d", tr2.Len())
	}
	for _, i := range []int{0, 77, 499} {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i))
		v, ok, err := tr2.Get(k[:])
		if err != nil || !ok || string(v) != fmt.Sprint(i) {
			t.Errorf("Get(%d) after reopen = %q %v %v", i, v, ok, err)
		}
	}
}

func TestOpenWithoutTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no.btree")
	pg, err := pager.Open(path, pager.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	if _, err := Open(pg); err == nil {
		t.Error("Open on pager without tree succeeded")
	}
}

// Model-based property test: random Put/Delete/Get/Scan against a Go map.
func TestAgainstMapModel(t *testing.T) {
	tr, pg, _ := newTree(t)
	defer pg.Close()
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 5000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(400))
		switch rng.Intn(4) {
		case 0, 1: // put
			v := fmt.Sprintf("v%d", op)
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("op %d Put: %v", op, err)
			}
			model[k] = v
		case 2: // delete
			ok, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatalf("op %d Delete: %v", op, err)
			}
			_, inModel := model[k]
			if ok != inModel {
				t.Fatalf("op %d Delete(%s) = %v, model has %v", op, k, ok, inModel)
			}
			delete(model, k)
		case 3: // get
			v, ok, err := tr.Get([]byte(k))
			if err != nil {
				t.Fatalf("op %d Get: %v", op, err)
			}
			mv, inModel := model[k]
			if ok != inModel || (ok && string(v) != mv) {
				t.Fatalf("op %d Get(%s) = %q %v, model %q %v", op, k, v, ok, mv, inModel)
			}
		}
	}
	if int(tr.Len()) != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	// Final full-scan equivalence.
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := tr.Scan([]byte("k"), nil, func(k, v []byte) bool {
		if i >= len(keys) {
			t.Fatalf("scan yielded extra key %q", k)
		}
		if string(k) != keys[i] || string(v) != model[keys[i]] {
			t.Fatalf("scan[%d] = (%q,%q), model (%q,%q)", i, k, v, keys[i], model[keys[i]])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("scan yielded %d keys, model has %d", i, len(keys))
	}
}

func TestLargeValuesAcrossSplits(t *testing.T) {
	tr, pg, _ := newTree(t)
	defer pg.Close()
	val := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		if err := tr.Put(k, val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	n := 0
	err := tr.Scan([]byte("key"), nil, func(k, v []byte) bool {
		if !bytes.Equal(v, val) {
			t.Fatalf("value corrupted at %q", k)
		}
		n++
		return true
	})
	if err != nil || n != 200 {
		t.Fatalf("scan: n=%d err=%v", n, err)
	}
}
