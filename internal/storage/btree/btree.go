// Package btree implements a disk-backed B+ tree on top of the pager: the
// ordered key/value store used as the second level of the paper's two-level
// path index (label sequence → hash level; probability bucket → B+ tree
// range scans). It replaces the paper's use of KyotoCabinet.
//
// Keys are unique byte strings ordered lexicographically (bytes.Compare).
// Values are byte strings. Leaves are chained for range scans.
//
// Deletion removes entries without rebalancing (pages may underflow); the
// path index is append-only, so space reclamation is not needed, but Delete
// is provided for completeness and tested for correctness.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/storage/pager"
)

const (
	leafType     = 1
	internalType = 2
)

// Tree is a B+ tree. Read methods (Get, Scan, Height, Len) are safe for
// concurrent use with each other — hot nodes are served lock-free from a
// decoded-node cache, cold ones from the pager's sharded buffer pool — but
// writers (Put, Delete, Sync) require exclusive access: they must not run
// concurrently with each other or with readers. The path index builds
// single-threaded and serves read-only, which satisfies both rules.
type Tree struct {
	pg    *pager.Pager
	root  pager.PageID
	count uint64
	maxKV int

	// nodes caches decoded pages (PageID → *node) so the read path skips
	// both the pager locks and the per-visit decode allocations. Readers
	// treat cached nodes as immutable; the (exclusive) writer mutates them
	// in place and re-stores, which keeps cache and disk in sync. Internal
	// nodes are always kept; leaves are bounded by maxCached, and once the
	// budget has been exhausted for a while the leaf set is flushed so the
	// cache adapts to the live workload instead of whichever leaves came
	// first (e.g. build-time inserts in a build-then-serve process).
	nodes     sync.Map
	cached    atomic.Int64 // admitted leaves
	skips     atomic.Int64 // leaf admissions refused since the last flush
	maxCached int64
	flushMu   sync.Mutex
}

// DefaultCacheNodes bounds the decoded-node cache (≈ one page of heap per
// node, so the default is ~16MB at the default page size).
const DefaultCacheNodes = 4096

// SetCacheNodes rebounds the decoded-node cache. It does not shrink an
// already-populated cache; call before heavy use. n ≤ 0 disables caching of
// further nodes entirely; a positive n bounds the leaves while internal
// nodes (the hot upper levels, ~pages/fanout of the tree) are always kept.
func (t *Tree) SetCacheNodes(n int) { t.maxCached = int64(n) }

// Create initializes a new tree in the pager, storing its root and entry
// count in the pager's metadata area.
func Create(pg *pager.Pager) (*Tree, error) {
	t := &Tree{pg: pg, maxKV: maxKVFor(pg.PageSize()), maxCached: DefaultCacheNodes}
	rootPage, err := pg.Allocate()
	if err != nil {
		return nil, err
	}
	n := &node{id: rootPage.ID, leaf: true}
	n.encode(rootPage.Data)
	rootPage.MarkDirty()
	pg.Release(rootPage)
	t.root = n.id
	if err := t.saveMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to a tree previously created in the pager.
func Open(pg *pager.Pager) (*Tree, error) {
	meta := pg.Meta()
	root := pager.PageID(binary.LittleEndian.Uint64(meta[0:]))
	if root == pager.InvalidPage {
		return nil, errors.New("btree: no tree in pager metadata")
	}
	return &Tree{
		pg:        pg,
		root:      root,
		count:     binary.LittleEndian.Uint64(meta[8:]),
		maxKV:     maxKVFor(pg.PageSize()),
		maxCached: DefaultCacheNodes,
	}, nil
}

func maxKVFor(pageSize int) int {
	// A page must hold at least four cells so splits always make progress.
	return (pageSize - 32) / 4
}

func (t *Tree) saveMeta() error {
	meta := t.pg.Meta()
	binary.LittleEndian.PutUint64(meta[0:], uint64(t.root))
	binary.LittleEndian.PutUint64(meta[8:], t.count)
	t.pg.SetMeta(meta)
	return nil
}

// Len returns the number of entries.
func (t *Tree) Len() uint64 { return t.count }

// Sync persists metadata and flushes the pager.
func (t *Tree) Sync() error {
	if err := t.saveMeta(); err != nil {
		return err
	}
	return t.pg.Sync()
}

// node is the decoded in-memory form of a page.
type node struct {
	id       pager.PageID
	leaf     bool
	keys     [][]byte
	vals     [][]byte       // leaf only
	children []pager.PageID // internal only; len = len(keys)+1
	next     pager.PageID   // leaf only
}

func (n *node) encodedSize() int {
	sz := 1 + 2 // type + count
	if n.leaf {
		sz += 8 // next pointer
		for i := range n.keys {
			sz += 2 + len(n.keys[i]) + 2 + len(n.vals[i])
		}
	} else {
		sz += 8 // children[0]
		for i := range n.keys {
			sz += 2 + len(n.keys[i]) + 8
		}
	}
	return sz
}

func (n *node) encode(buf []byte) {
	if n.leaf {
		buf[0] = leafType
	} else {
		buf[0] = internalType
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	off := 3
	if n.leaf {
		binary.LittleEndian.PutUint64(buf[off:], uint64(n.next))
		off += 8
		for i := range n.keys {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(n.keys[i])))
			off += 2
			off += copy(buf[off:], n.keys[i])
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(n.vals[i])))
			off += 2
			off += copy(buf[off:], n.vals[i])
		}
	} else {
		binary.LittleEndian.PutUint64(buf[off:], uint64(n.children[0]))
		off += 8
		for i := range n.keys {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(n.keys[i])))
			off += 2
			off += copy(buf[off:], n.keys[i])
			binary.LittleEndian.PutUint64(buf[off:], uint64(n.children[i+1]))
			off += 8
		}
	}
	// Zero the remainder so stale bytes never persist.
	for i := off; i < len(buf); i++ {
		buf[i] = 0
	}
}

func decode(id pager.PageID, buf []byte) (*node, error) {
	n := &node{id: id}
	switch buf[0] {
	case leafType:
		n.leaf = true
	case internalType:
	default:
		return nil, fmt.Errorf("btree: page %d has invalid node type %d", id, buf[0])
	}
	count := int(binary.LittleEndian.Uint16(buf[1:]))
	off := 3
	if n.leaf {
		n.next = pager.PageID(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		n.keys = make([][]byte, count)
		n.vals = make([][]byte, count)
		for i := 0; i < count; i++ {
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
			off += kl
			vl := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			n.vals[i] = append([]byte(nil), buf[off:off+vl]...)
			off += vl
		}
	} else {
		n.children = make([]pager.PageID, count+1)
		n.children[0] = pager.PageID(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		n.keys = make([][]byte, count)
		for i := 0; i < count; i++ {
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
			off += kl
			n.children[i+1] = pager.PageID(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return n, nil
}

func (t *Tree) load(id pager.PageID) (*node, error) {
	if v, ok := t.nodes.Load(id); ok {
		return v.(*node), nil
	}
	pg, err := t.pg.Get(id)
	if err != nil {
		return nil, err
	}
	n, err := decode(id, pg.Data)
	t.pg.Release(pg)
	if err != nil {
		return nil, err
	}
	return t.cacheNode(n), nil
}

// cacheNode admits a freshly decoded node, returning the canonical cached
// instance when another reader won the race. Internal nodes are always
// admitted (and not counted against the budget) — they are the upper
// levels every probe traverses and number only ~pages/fanout — while
// leaves respect the bound, so a tree larger than maxCached pages still
// serves its hot spine lock-free.
func (t *Tree) cacheNode(n *node) *node {
	max := t.maxCached
	if max <= 0 {
		return n
	}
	if n.leaf && t.cached.Load() >= max {
		if t.skips.Add(1) >= max {
			t.flushLeaves()
		}
		return n
	}
	if v, loaded := t.nodes.LoadOrStore(n.id, n); loaded {
		return v.(*node)
	}
	if n.leaf {
		t.cached.Add(1)
	}
	return n
}

// flushLeaves drops every cached leaf once the budget has refused as many
// admissions as it holds, giving the cache a fresh shot at the current
// access pattern. Readers holding *node pointers are unaffected — they
// simply re-admit on their next miss. Internal nodes stay put.
func (t *Tree) flushLeaves() {
	t.flushMu.Lock()
	defer t.flushMu.Unlock()
	if t.skips.Load() < t.maxCached {
		return // another goroutine already flushed
	}
	t.nodes.Range(func(k, v any) bool {
		if v.(*node).leaf {
			t.nodes.Delete(k)
		}
		return true
	})
	t.cached.Store(0)
	t.skips.Store(0)
}

func (t *Tree) store(n *node) error {
	pg, err := t.pg.Get(n.id)
	if err != nil {
		return err
	}
	n.encode(pg.Data)
	pg.MarkDirty()
	t.pg.Release(pg)
	// Keep the decoded cache coherent: replace an existing entry
	// unconditionally, admit a new one only within the bound.
	if _, ok := t.nodes.Load(n.id); ok {
		t.nodes.Store(n.id, n)
	} else {
		t.cacheNode(n)
	}
	return nil
}

func (t *Tree) allocNode(leaf bool) (*node, error) {
	pg, err := t.pg.Allocate()
	if err != nil {
		return nil, err
	}
	n := &node{id: pg.ID, leaf: leaf}
	t.pg.Release(pg)
	return n, nil
}

// Put inserts or replaces the value for key.
func (t *Tree) Put(key, val []byte) error {
	if len(key) == 0 {
		return errors.New("btree: empty key")
	}
	if len(key) > t.maxKV || len(val) > t.maxKV {
		return fmt.Errorf("btree: key/value too large (%d/%d, max %d)", len(key), len(val), t.maxKV)
	}
	promoted, right, inserted, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if right != pager.InvalidPage {
		// Root split: grow the tree.
		newRoot, err := t.allocNode(false)
		if err != nil {
			return err
		}
		newRoot.keys = [][]byte{promoted}
		newRoot.children = []pager.PageID{t.root, right}
		if err := t.store(newRoot); err != nil {
			return err
		}
		t.root = newRoot.id
	}
	if inserted {
		t.count++
	}
	return t.saveMeta()
}

// insert descends into page id. It returns a promoted separator key and new
// right sibling page when the child split, plus whether a new entry was
// inserted (false on replace).
func (t *Tree) insert(id pager.PageID, key, val []byte) ([]byte, pager.PageID, bool, error) {
	n, err := t.load(id)
	if err != nil {
		return nil, pager.InvalidPage, false, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		inserted := true
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = append([]byte(nil), val...)
			inserted = false
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = append([]byte(nil), key...)
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = append([]byte(nil), val...)
		}
		return t.finishInsert(n, inserted)
	}

	ci := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
	promoted, right, inserted, err := t.insert(n.children[ci], key, val)
	if err != nil {
		return nil, pager.InvalidPage, false, err
	}
	if right == pager.InvalidPage {
		return nil, pager.InvalidPage, inserted, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = promoted
	n.children = append(n.children, pager.InvalidPage)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	return t.finishInsert(n, inserted)
}

// finishInsert stores n, splitting it first if it no longer fits its page.
func (t *Tree) finishInsert(n *node, inserted bool) ([]byte, pager.PageID, bool, error) {
	if n.encodedSize() <= t.pg.PageSize() {
		if err := t.store(n); err != nil {
			return nil, pager.InvalidPage, false, err
		}
		return nil, pager.InvalidPage, inserted, nil
	}
	promoted, right, err := t.split(n)
	if err != nil {
		return nil, pager.InvalidPage, false, err
	}
	return promoted, right, inserted, nil
}

// split divides an overflowing node into two, returning the separator key
// and the new right sibling's page id.
func (t *Tree) split(n *node) ([]byte, pager.PageID, error) {
	right, err := t.allocNode(n.leaf)
	if err != nil {
		return nil, pager.InvalidPage, err
	}
	mid := len(n.keys) / 2
	var sep []byte
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		right.next = n.next
		n.next = right.id
		sep = append([]byte(nil), right.keys[0]...)
	} else {
		// The middle key moves up and does not stay in either half.
		sep = n.keys[mid]
		right.keys = append(right.keys, n.keys[mid+1:]...)
		right.children = append(right.children, n.children[mid+1:]...)
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	if err := t.store(n); err != nil {
		return nil, pager.InvalidPage, err
	}
	if err := t.store(right); err != nil {
		return nil, pager.InvalidPage, err
	}
	return sep, right.id, nil
}

// Get returns the value stored under key. The returned slice aliases the
// shared decoded-node cache: treat it as read-only and copy it before
// mutating or retaining it past the next tree write.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	id := t.root
	for {
		n, err := t.load(id)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
			if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
				return n.vals[i], true, nil
			}
			return nil, false, nil
		}
		ci := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
		id = n.children[ci]
	}
}

// Delete removes key, reporting whether it was present. Pages are not
// rebalanced or reclaimed.
func (t *Tree) Delete(key []byte) (bool, error) {
	id := t.root
	for {
		n, err := t.load(id)
		if err != nil {
			return false, err
		}
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
			if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
				return false, nil
			}
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.vals = append(n.vals[:i], n.vals[i+1:]...)
			if err := t.store(n); err != nil {
				return false, err
			}
			t.count--
			return true, t.saveMeta()
		}
		ci := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
		id = n.children[ci]
	}
}

// Scan calls fn for every entry with lo ≤ key < hi in key order. A nil hi
// scans to the end. Iteration stops early when fn returns false. The key and
// value slices passed to fn alias the shared decoded-node cache: fn must
// not mutate or retain them (copy what it keeps).
func (t *Tree) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	id := t.root
	for {
		n, err := t.load(id)
		if err != nil {
			return err
		}
		if n.leaf {
			return t.scanLeaves(n, lo, hi, fn)
		}
		ci := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], lo) > 0 })
		id = n.children[ci]
	}
}

func (t *Tree) scanLeaves(n *node, lo, hi []byte, fn func(key, val []byte) bool) error {
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], lo) >= 0 })
	for {
		for ; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return nil
			}
			if !fn(n.keys[i], n.vals[i]) {
				return nil
			}
		}
		if n.next == pager.InvalidPage {
			return nil
		}
		var err error
		n, err = t.load(n.next)
		if err != nil {
			return err
		}
		i = 0
	}
}

// Height returns the tree height (1 for a lone leaf), for diagnostics.
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		n, err := t.load(id)
		if err != nil {
			return 0, err
		}
		if n.leaf {
			return h, nil
		}
		h++
		id = n.children[0]
	}
}
