package hashdict

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T) (*Dict, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dict.log")
	d, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d, path
}

func TestInternAssignsDenseIDs(t *testing.T) {
	d, _ := openTemp(t)
	defer d.Close()
	for i := 0; i < 10; i++ {
		id, existed, err := d.Intern([]byte(fmt.Sprintf("key%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if existed {
			t.Errorf("key%d reported existing", i)
		}
		if id != uint64(i) {
			t.Errorf("key%d got id %d", i, id)
		}
	}
	id, existed, err := d.Intern([]byte("key3"))
	if err != nil || !existed || id != 3 {
		t.Errorf("re-intern = %d %v %v", id, existed, err)
	}
	if d.Len() != 10 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestLookupAndKey(t *testing.T) {
	d, _ := openTemp(t)
	defer d.Close()
	if _, _, err := d.Intern([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if id, ok := d.Lookup([]byte("abc")); !ok || id != 0 {
		t.Errorf("Lookup = %d %v", id, ok)
	}
	if _, ok := d.Lookup([]byte("missing")); ok {
		t.Error("phantom lookup")
	}
	k, ok := d.Key(0)
	if !ok || !bytes.Equal(k, []byte("abc")) {
		t.Errorf("Key(0) = %q %v", k, ok)
	}
	if _, ok := d.Key(99); ok {
		t.Error("Key(99) found")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	d, path := openTemp(t)
	keys := []string{"a", "bb", "ccc", "d\x00with\x00nuls", "unicode-éß"}
	for _, k := range keys {
		if _, _, err := d.Intern([]byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != len(keys) {
		t.Fatalf("reopened Len = %d, want %d", d2.Len(), len(keys))
	}
	for i, k := range keys {
		id, ok := d2.Lookup([]byte(k))
		if !ok || id != uint64(i) {
			t.Errorf("Lookup(%q) = %d %v", k, id, ok)
		}
	}
	// New interns continue the id sequence.
	id, existed, err := d2.Intern([]byte("fresh"))
	if err != nil || existed || id != uint64(len(keys)) {
		t.Errorf("post-reopen intern = %d %v %v", id, existed, err)
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	d, path := openTemp(t)
	if _, _, err := d.Intern([]byte("good1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Intern([]byte("good2")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage simulating a torn write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen with corrupt tail: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 2 {
		t.Fatalf("Len = %d after corrupt tail, want 2", d2.Len())
	}
	// The dict must keep working after truncation.
	id, existed, err := d2.Intern([]byte("good3"))
	if err != nil || existed || id != 2 {
		t.Errorf("intern after truncate = %d %v %v", id, existed, err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.log")
	if err := os.WriteFile(path, []byte("NOPE plus data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadOnly(t *testing.T) {
	d, path := openTemp(t)
	if _, _, err := d.Intern([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if id, ok := ro.Lookup([]byte("x")); !ok || id != 0 {
		t.Errorf("ro Lookup = %d %v", id, ok)
	}
	if _, _, err := ro.Intern([]byte("new")); err == nil {
		t.Error("intern on read-only dict succeeded")
	}
	// Re-intern of existing key is a lookup and must succeed.
	if id, existed, err := ro.Intern([]byte("x")); err != nil || !existed || id != 0 {
		t.Errorf("ro Intern(existing) = %d %v %v", id, existed, err)
	}
}

func TestInternValidation(t *testing.T) {
	d, _ := openTemp(t)
	defer d.Close()
	if _, _, err := d.Intern(nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestManyKeysPersist(t *testing.T) {
	d, path := openTemp(t)
	const n = 5000
	for i := 0; i < n; i++ {
		if _, _, err := d.Intern([]byte(fmt.Sprintf("label-seq-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != n {
		t.Fatalf("Len = %d, want %d", d2.Len(), n)
	}
	for _, i := range []int{0, n / 3, n - 1} {
		if id, ok := d2.Lookup([]byte(fmt.Sprintf("label-seq-%d", i))); !ok || id != uint64(i) {
			t.Errorf("Lookup(%d) = %d %v", i, id, ok)
		}
	}
}
