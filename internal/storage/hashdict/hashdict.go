// Package hashdict implements the first level of the paper's two-level path
// index: a persistent dictionary interning label sequences (byte keys) to
// dense uint64 ids, accessed by equality — the "hash index" of Section 5.1.
//
// The on-disk format is an append-only record log (CRC-protected); the hash
// table itself lives in memory and is rebuilt on Open by replaying the log,
// truncating any corrupt tail. This is the classic log-structured design
// (cf. Bitcask) and keeps writes sequential during index construction.
package hashdict

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	magic      = "PEGD"
	recHeader  = 4 + 4 // crc32 + key length
	maxKeyLen  = 1 << 16
	headerSize = 4
)

// Dict is a persistent string→id dictionary. Ids are assigned densely in
// insertion order starting at 0. Intern requires exclusive access; once all
// writes are done (the index is built or opened), Lookup, Key, and Len are
// safe for any number of concurrent readers — they only read the in-memory
// maps, which no longer change.
type Dict struct {
	f     *os.File
	ids   map[string]uint64
	names []string
	wbuf  []byte
	ro    bool
}

// Open opens or creates a dictionary file, replaying existing records.
func Open(path string) (*Dict, error) { return open(path, false) }

// OpenReadOnly opens an existing dictionary without write access.
func OpenReadOnly(path string) (*Dict, error) { return open(path, true) }

func open(path string, ro bool) (*Dict, error) {
	flags := os.O_RDWR | os.O_CREATE
	if ro {
		flags = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hashdict: %w", err)
	}
	d := &Dict{f: f, ids: make(map[string]uint64), ro: ro}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("hashdict: %w", err)
	}
	if st.Size() == 0 {
		if ro {
			f.Close()
			return nil, errors.New("hashdict: empty file opened read-only")
		}
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("hashdict: %w", err)
		}
		return d, nil
	}
	if err := d.replay(st.Size()); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// replay scans the log, loading records until EOF or a corrupt record, then
// truncates the file to the last valid offset (unless read-only).
func (d *Dict) replay(size int64) error {
	hdr := make([]byte, headerSize)
	if _, err := d.f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("hashdict: read magic: %w", err)
	}
	if string(hdr) != magic {
		return fmt.Errorf("hashdict: bad magic %q", hdr)
	}
	off := int64(headerSize)
	var rec [recHeader]byte
	for off < size {
		if _, err := d.f.ReadAt(rec[:], off); err != nil {
			break
		}
		want := binary.LittleEndian.Uint32(rec[0:])
		klen := binary.LittleEndian.Uint32(rec[4:])
		if klen == 0 || klen > maxKeyLen || off+recHeader+int64(klen) > size {
			break
		}
		key := make([]byte, klen)
		if _, err := d.f.ReadAt(key, off+recHeader); err != nil {
			break
		}
		if crc32.ChecksumIEEE(key) != want {
			break
		}
		d.ids[string(key)] = uint64(len(d.names))
		d.names = append(d.names, string(key))
		off += recHeader + int64(klen)
	}
	if off < size && !d.ro {
		// Corrupt or torn tail: drop it.
		if err := d.f.Truncate(off); err != nil {
			return fmt.Errorf("hashdict: truncate corrupt tail: %w", err)
		}
	}
	if _, err := d.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("hashdict: %w", err)
	}
	return nil
}

// Intern returns the id for key, assigning and persisting a new one when the
// key is unseen. The second result reports whether the key already existed.
func (d *Dict) Intern(key []byte) (uint64, bool, error) {
	if id, ok := d.ids[string(key)]; ok {
		return id, true, nil
	}
	if d.ro {
		return 0, false, errors.New("hashdict: intern on read-only dict")
	}
	if len(key) == 0 || len(key) > maxKeyLen {
		return 0, false, fmt.Errorf("hashdict: key length %d out of range", len(key))
	}
	d.wbuf = d.wbuf[:0]
	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(key))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(key)))
	d.wbuf = append(d.wbuf, hdr[:]...)
	d.wbuf = append(d.wbuf, key...)
	if _, err := d.f.Write(d.wbuf); err != nil {
		return 0, false, fmt.Errorf("hashdict: append: %w", err)
	}
	id := uint64(len(d.names))
	d.ids[string(key)] = id
	d.names = append(d.names, string(key))
	return id, false, nil
}

// Lookup returns the id for key without inserting.
func (d *Dict) Lookup(key []byte) (uint64, bool) {
	id, ok := d.ids[string(key)]
	return id, ok
}

// Key returns the key for a previously assigned id.
func (d *Dict) Key(id uint64) ([]byte, bool) {
	if id >= uint64(len(d.names)) {
		return nil, false
	}
	return []byte(d.names[id]), true
}

// Len returns the number of interned keys.
func (d *Dict) Len() int { return len(d.names) }

// Sync fsyncs the log.
func (d *Dict) Sync() error {
	if d.ro {
		return nil
	}
	return d.f.Sync()
}

// Close syncs and closes the log.
func (d *Dict) Close() error {
	if err := d.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}
