package pager

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T, opt Options) (*Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.pages")
	p, err := Open(path, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return p, path
}

func TestAllocateGetRoundTrip(t *testing.T) {
	p, path := openTemp(t, Options{})
	pg, err := p.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	id := pg.ID
	if id == InvalidPage {
		t.Fatal("allocated invalid page id")
	}
	copy(pg.Data, "hello, page")
	pg.MarkDirty()
	p.Release(pg)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	pg2, err := p2.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer p2.Release(pg2)
	if string(pg2.Data[:11]) != "hello, page" {
		t.Errorf("data = %q", pg2.Data[:11])
	}
}

func TestGetOutOfRange(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	if _, err := p.Get(InvalidPage); err == nil {
		t.Error("Get(0) succeeded")
	}
	if _, err := p.Get(99); err == nil {
		t.Error("Get(99) succeeded")
	}
}

func TestFreeListReuse(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID
	copy(pg.Data, "junk to be cleared")
	pg.MarkDirty()
	p.Release(pg)
	if err := p.Free(id); err != nil {
		t.Fatalf("Free: %v", err)
	}
	pg2, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(pg2)
	if pg2.ID != id {
		t.Errorf("free page not reused: got %d, want %d", pg2.ID, id)
	}
	for i, b := range pg2.Data {
		if b != 0 {
			t.Fatalf("reused page not zeroed at byte %d", i)
		}
	}
}

func TestFreePinnedPageRejected(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Free(pg.ID); err == nil {
		t.Error("freeing pinned page succeeded")
	}
	p.Release(pg)
}

func TestEvictionWritesBack(t *testing.T) {
	p, path := openTemp(t, Options{CachePages: 4})
	ids := make([]PageID, 16)
	for i := range ids {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = pg.ID
		binary.LittleEndian.PutUint64(pg.Data, uint64(i)+100)
		pg.MarkDirty()
		p.Release(pg)
	}
	st := p.Stats()
	if st.CachedPages > 4 {
		t.Errorf("cache grew to %d pages with capacity 4", st.CachedPages)
	}
	// Everything must read back correctly despite evictions.
	for i, id := range ids {
		pg, err := p.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if got := binary.LittleEndian.Uint64(pg.Data); got != uint64(i)+100 {
			t.Errorf("page %d = %d, want %d", id, got, i+100)
		}
		p.Release(pg)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// And after reopen.
	p2, err := Open(path, Options{CachePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i, id := range ids {
		pg, err := p2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(pg.Data); got != uint64(i)+100 {
			t.Errorf("reopened page %d = %d, want %d", id, got, i+100)
		}
		p2.Release(pg)
	}
}

func TestAllPinnedGrowsPastCapacity(t *testing.T) {
	p, _ := openTemp(t, Options{CachePages: 2})
	defer p.Close()
	var pages []*Page
	for i := 0; i < 6; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatalf("Allocate %d with all pinned: %v", i, err)
		}
		pages = append(pages, pg)
	}
	if st := p.Stats(); st.PinnedPages != 6 {
		t.Errorf("PinnedPages = %d, want 6", st.PinnedPages)
	}
	for _, pg := range pages {
		p.Release(pg)
	}
}

func TestMetaPersistence(t *testing.T) {
	p, path := openTemp(t, Options{})
	var m [MetaSize]byte
	copy(m[:], "metadata survives reopen")
	p.SetMeta(m)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := p2.Meta()
	if string(got[:24]) != "metadata survives reopen" {
		t.Errorf("meta = %q", got[:24])
	}
}

func TestReadOnly(t *testing.T) {
	p, path := openTemp(t, Options{})
	pg, _ := p.Allocate()
	id := pg.ID
	copy(pg.Data, "ro")
	pg.MarkDirty()
	p.Release(pg)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(path, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only open: %v", err)
	}
	defer ro.Close()
	pg2, err := ro.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	ro.Release(pg2)
	if _, err := ro.Allocate(); err == nil {
		t.Error("Allocate on read-only pager succeeded")
	}
	if err := ro.Free(id); err == nil {
		t.Error("Free on read-only pager succeeded")
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.pages")
	if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestPageSizeMismatch(t *testing.T) {
	p, path := openTemp(t, Options{PageSize: 4096})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{PageSize: 8192}); err == nil {
		t.Error("page size mismatch accepted")
	}
}

func TestReleasePanicsWhenUnpinned(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p.Release(pg)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	p.Release(pg)
}
