// Package pager implements a disk page manager with an LRU buffer pool:
// fixed-size pages backed by a single file, pin/unpin access, dirty
// write-back, a free list, and a small client metadata area in the header.
//
// It is the substrate beneath the path index's B+ tree, replacing the
// paper's use of KyotoCabinet/Neo4j as disk-based stores.
package pager

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// PageID identifies a page within the file. Page 0 is the header and is
// never handed out.
type PageID uint64

// InvalidPage is the zero PageID; it doubles as the free-list terminator.
const InvalidPage PageID = 0

// DefaultPageSize is used when Options.PageSize is zero.
const DefaultPageSize = 4096

// DefaultCachePages is used when Options.CachePages is zero.
const DefaultCachePages = 1024

// MetaSize is the number of client metadata bytes stored in the header.
const MetaSize = 64

const (
	headerMagic   = "PEGP"
	headerVersion = 1
	// header layout: magic(4) version(4) pageSize(8) nPages(8) freeHead(8)
	// meta(64)
	headerLen = 4 + 4 + 8 + 8 + 8 + MetaSize
)

// Page is a pinned page in the buffer pool. Callers may read and write Data
// and must call Pager.Release exactly once when done; after writing, call
// MarkDirty before Release.
type Page struct {
	ID   PageID
	Data []byte

	dirty bool
	pins  int
	elem  *list.Element
}

// MarkDirty records that the page's contents changed and must be written
// back before eviction or Sync.
func (p *Page) MarkDirty() { p.dirty = true }

// Options configures Open.
type Options struct {
	PageSize   int // bytes per page; default DefaultPageSize
	CachePages int // buffer pool capacity in pages; default DefaultCachePages
	ReadOnly   bool
}

// Pager manages the page file. It is not safe for concurrent use; callers
// requiring concurrency must serialize access (the path index builder does).
type Pager struct {
	f        *os.File
	pageSize int
	capacity int
	readOnly bool

	nPages   uint64 // total pages including header
	freeHead PageID
	meta     [MetaSize]byte
	metaDirt bool

	cache map[PageID]*Page
	lru   *list.List // front = most recently used; holds unpinned and pinned pages alike
}

// Open opens or creates a page file.
func Open(path string, opt Options) (*Pager, error) {
	if opt.PageSize == 0 {
		opt.PageSize = DefaultPageSize
	}
	if opt.PageSize < headerLen {
		return nil, fmt.Errorf("pager: page size %d smaller than header", opt.PageSize)
	}
	if opt.CachePages <= 0 {
		opt.CachePages = DefaultCachePages
	}
	flags := os.O_RDWR | os.O_CREATE
	if opt.ReadOnly {
		flags = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	p := &Pager{
		f:        f,
		pageSize: opt.PageSize,
		capacity: opt.CachePages,
		readOnly: opt.ReadOnly,
		cache:    make(map[PageID]*Page),
		lru:      list.New(),
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: %w", err)
	}
	if st.Size() == 0 {
		if opt.ReadOnly {
			f.Close()
			return nil, errors.New("pager: empty file opened read-only")
		}
		p.nPages = 1
		if err := p.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := p.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// PageSize returns the configured page size.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the total number of pages, including the header page.
func (p *Pager) NumPages() uint64 { return p.nPages }

// Meta returns a copy of the client metadata area.
func (p *Pager) Meta() [MetaSize]byte { return p.meta }

// SetMeta replaces the client metadata area; it is persisted on Sync/Close.
func (p *Pager) SetMeta(m [MetaSize]byte) {
	p.meta = m
	p.metaDirt = true
}

func (p *Pager) writeHeader() error {
	buf := make([]byte, p.pageSize)
	copy(buf, headerMagic)
	binary.LittleEndian.PutUint32(buf[4:], headerVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(p.pageSize))
	binary.LittleEndian.PutUint64(buf[16:], p.nPages)
	binary.LittleEndian.PutUint64(buf[24:], uint64(p.freeHead))
	copy(buf[32:32+MetaSize], p.meta[:])
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("pager: write header: %w", err)
	}
	p.metaDirt = false
	return nil
}

func (p *Pager) readHeader() error {
	buf := make([]byte, headerLen)
	if _, err := io.ReadFull(io.NewSectionReader(p.f, 0, int64(headerLen)), buf); err != nil {
		return fmt.Errorf("pager: read header: %w", err)
	}
	if string(buf[:4]) != headerMagic {
		return fmt.Errorf("pager: bad magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != headerVersion {
		return fmt.Errorf("pager: unsupported version %d", v)
	}
	ps := binary.LittleEndian.Uint64(buf[8:])
	if ps != uint64(p.pageSize) {
		return fmt.Errorf("pager: file page size %d, opened with %d", ps, p.pageSize)
	}
	p.nPages = binary.LittleEndian.Uint64(buf[16:])
	p.freeHead = PageID(binary.LittleEndian.Uint64(buf[24:]))
	copy(p.meta[:], buf[32:32+MetaSize])
	return nil
}

// Get pins and returns the page with the given id, reading it from disk on a
// cache miss. The caller must Release it.
func (p *Pager) Get(id PageID) (*Page, error) {
	if id == InvalidPage || uint64(id) >= p.nPages {
		return nil, fmt.Errorf("pager: page %d out of range", id)
	}
	if pg, ok := p.cache[id]; ok {
		pg.pins++
		p.lru.MoveToFront(pg.elem)
		return pg, nil
	}
	data := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(data, int64(id)*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	return p.admit(id, data)
}

// Allocate pins and returns a zeroed new page, reusing a free page when one
// is available. The caller must Release it.
func (p *Pager) Allocate() (*Page, error) {
	if p.readOnly {
		return nil, errors.New("pager: allocate on read-only pager")
	}
	if p.freeHead != InvalidPage {
		id := p.freeHead
		pg, err := p.Get(id)
		if err != nil {
			return nil, err
		}
		p.freeHead = PageID(binary.LittleEndian.Uint64(pg.Data))
		for i := range pg.Data {
			pg.Data[i] = 0
		}
		pg.MarkDirty()
		return pg, nil
	}
	id := PageID(p.nPages)
	p.nPages++
	return p.admit(id, make([]byte, p.pageSize))
}

// Free returns a page to the free list. The page must be unpinned.
func (p *Pager) Free(id PageID) error {
	if p.readOnly {
		return errors.New("pager: free on read-only pager")
	}
	pg, err := p.Get(id)
	if err != nil {
		return err
	}
	if pg.pins > 1 {
		p.Release(pg)
		return fmt.Errorf("pager: freeing pinned page %d", id)
	}
	binary.LittleEndian.PutUint64(pg.Data, uint64(p.freeHead))
	p.freeHead = id
	pg.MarkDirty()
	p.Release(pg)
	return nil
}

func (p *Pager) admit(id PageID, data []byte) (*Page, error) {
	if err := p.evictIfFull(); err != nil {
		return nil, err
	}
	pg := &Page{ID: id, Data: data, pins: 1}
	pg.elem = p.lru.PushFront(pg)
	p.cache[id] = pg
	return pg, nil
}

func (p *Pager) evictIfFull() error {
	for len(p.cache) >= p.capacity {
		var victim *Page
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			pg := e.Value.(*Page)
			if pg.pins == 0 {
				victim = pg
				break
			}
		}
		if victim == nil {
			// Everything is pinned: grow past capacity rather than fail;
			// pathological pin patterns are caller bugs but must not corrupt.
			return nil
		}
		if victim.dirty {
			if err := p.writePage(victim); err != nil {
				return err
			}
		}
		p.lru.Remove(victim.elem)
		delete(p.cache, victim.ID)
	}
	return nil
}

// Release unpins a page previously returned by Get or Allocate.
func (p *Pager) Release(pg *Page) {
	if pg.pins <= 0 {
		panic(fmt.Sprintf("pager: release of unpinned page %d", pg.ID))
	}
	pg.pins--
}

func (p *Pager) writePage(pg *Page) error {
	if p.readOnly {
		return errors.New("pager: write on read-only pager")
	}
	if _, err := p.f.WriteAt(pg.Data, int64(pg.ID)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("pager: write page %d: %w", pg.ID, err)
	}
	pg.dirty = false
	return nil
}

// Sync writes all dirty pages and the header to disk and fsyncs the file.
func (p *Pager) Sync() error {
	if p.readOnly {
		return nil
	}
	for _, pg := range p.cache {
		if pg.dirty {
			if err := p.writePage(pg); err != nil {
				return err
			}
		}
	}
	if err := p.writeHeader(); err != nil {
		return err
	}
	return p.f.Sync()
}

// Close syncs and closes the page file.
func (p *Pager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}

// Stats reports buffer pool statistics.
type Stats struct {
	CachedPages int
	PinnedPages int
	TotalPages  uint64
}

// Stats returns current buffer pool statistics.
func (p *Pager) Stats() Stats {
	s := Stats{CachedPages: len(p.cache), TotalPages: p.nPages}
	for _, pg := range p.cache {
		if pg.pins > 0 {
			s.PinnedPages++
		}
	}
	return s
}
