// Package pager implements a disk page manager with an LRU buffer pool:
// fixed-size pages backed by a single file, pin/unpin access, dirty
// write-back, a free list, and a small client metadata area in the header.
//
// It is the substrate beneath the path index's B+ tree, replacing the
// paper's use of KyotoCabinet/Neo4j as disk-based stores.
//
// # Concurrency
//
// The buffer pool is sharded by page id: Get and Release on different pages
// land on different shard locks, so many concurrent readers probe the pool
// with almost no contention (the online phase serves every query from the
// same opened pager). Structural mutations — Allocate, Free, SetMeta — are
// serialized behind a single allocation lock and must additionally be
// externally serialized against Sync/Close; the path index builder is the
// only writer and is single-threaded through the store path. Page contents
// themselves are not latched: concurrent readers of the same page are safe,
// but a writer mutating a page's Data must have exclusive ownership of that
// page (again the builder's situation).
package pager

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// PageID identifies a page within the file. Page 0 is the header and is
// never handed out.
type PageID uint64

// InvalidPage is the zero PageID; it doubles as the free-list terminator.
const InvalidPage PageID = 0

// DefaultPageSize is used when Options.PageSize is zero.
const DefaultPageSize = 4096

// DefaultCachePages is used when Options.CachePages is zero.
const DefaultCachePages = 1024

// MetaSize is the number of client metadata bytes stored in the header.
const MetaSize = 64

// maxShards caps the buffer pool's lock striping factor (power of two).
// Small pools use fewer shards so the total capacity bound stays exact.
const maxShards = 16

const (
	headerMagic   = "PEGP"
	headerVersion = 1
	// header layout: magic(4) version(4) pageSize(8) nPages(8) freeHead(8)
	// meta(64)
	headerLen = 4 + 4 + 8 + 8 + 8 + MetaSize
)

// Page is a pinned page in the buffer pool. Callers may read and write Data
// and must call Pager.Release exactly once when done; after writing, call
// MarkDirty before Release.
type Page struct {
	ID   PageID
	Data []byte

	dirty bool
	pins  int
	elem  *list.Element
}

// MarkDirty records that the page's contents changed and must be written
// back before eviction or Sync.
func (p *Page) MarkDirty() { p.dirty = true }

// Options configures Open.
type Options struct {
	PageSize   int // bytes per page; default DefaultPageSize
	CachePages int // buffer pool capacity in pages; default DefaultCachePages
	ReadOnly   bool
}

// shard is one stripe of the buffer pool with its own lock and LRU list.
type shard struct {
	mu       sync.Mutex
	capacity int
	cache    map[PageID]*Page
	lru      *list.List // front = most recently used
}

// Pager manages the page file. Read access (Get/Release) is safe for
// concurrent use; see the package comment for the writer rules.
type Pager struct {
	f        *os.File
	pageSize int
	readOnly bool

	nPages atomic.Uint64 // total pages including header

	// allocMu guards freeHead, meta, metaDirt, and header writes.
	allocMu  sync.Mutex
	freeHead PageID
	meta     [MetaSize]byte
	metaDirt bool

	shards []shard // power-of-two length
}

// Open opens or creates a page file.
func Open(path string, opt Options) (*Pager, error) {
	if opt.PageSize == 0 {
		opt.PageSize = DefaultPageSize
	}
	if opt.PageSize < headerLen {
		return nil, fmt.Errorf("pager: page size %d smaller than header", opt.PageSize)
	}
	if opt.CachePages <= 0 {
		opt.CachePages = DefaultCachePages
	}
	flags := os.O_RDWR | os.O_CREATE
	if opt.ReadOnly {
		flags = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	p := &Pager{
		f:        f,
		pageSize: opt.PageSize,
		readOnly: opt.ReadOnly,
	}
	nShards := 1
	for nShards*2 <= maxShards && nShards*2 <= opt.CachePages {
		nShards *= 2
	}
	p.shards = make([]shard, nShards)
	for i := range p.shards {
		p.shards[i].capacity = opt.CachePages / nShards
		if i < opt.CachePages%nShards {
			p.shards[i].capacity++
		}
		p.shards[i].cache = make(map[PageID]*Page)
		p.shards[i].lru = list.New()
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: %w", err)
	}
	if st.Size() == 0 {
		if opt.ReadOnly {
			f.Close()
			return nil, errors.New("pager: empty file opened read-only")
		}
		p.nPages.Store(1)
		if err := p.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := p.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func (p *Pager) shard(id PageID) *shard { return &p.shards[uint64(id)&uint64(len(p.shards)-1)] }

// PageSize returns the configured page size.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the total number of pages, including the header page.
func (p *Pager) NumPages() uint64 { return p.nPages.Load() }

// Meta returns a copy of the client metadata area.
func (p *Pager) Meta() [MetaSize]byte {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	return p.meta
}

// SetMeta replaces the client metadata area; it is persisted on Sync/Close.
func (p *Pager) SetMeta(m [MetaSize]byte) {
	p.allocMu.Lock()
	p.meta = m
	p.metaDirt = true
	p.allocMu.Unlock()
}

// writeHeader persists the header page. Callers must hold allocMu or have
// exclusive access to the pager.
func (p *Pager) writeHeader() error {
	buf := make([]byte, p.pageSize)
	copy(buf, headerMagic)
	binary.LittleEndian.PutUint32(buf[4:], headerVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(p.pageSize))
	binary.LittleEndian.PutUint64(buf[16:], p.nPages.Load())
	binary.LittleEndian.PutUint64(buf[24:], uint64(p.freeHead))
	copy(buf[32:32+MetaSize], p.meta[:])
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("pager: write header: %w", err)
	}
	p.metaDirt = false
	return nil
}

func (p *Pager) readHeader() error {
	buf := make([]byte, headerLen)
	if _, err := io.ReadFull(io.NewSectionReader(p.f, 0, int64(headerLen)), buf); err != nil {
		return fmt.Errorf("pager: read header: %w", err)
	}
	if string(buf[:4]) != headerMagic {
		return fmt.Errorf("pager: bad magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != headerVersion {
		return fmt.Errorf("pager: unsupported version %d", v)
	}
	ps := binary.LittleEndian.Uint64(buf[8:])
	if ps != uint64(p.pageSize) {
		return fmt.Errorf("pager: file page size %d, opened with %d", ps, p.pageSize)
	}
	p.nPages.Store(binary.LittleEndian.Uint64(buf[16:]))
	p.freeHead = PageID(binary.LittleEndian.Uint64(buf[24:]))
	copy(p.meta[:], buf[32:32+MetaSize])
	return nil
}

// Get pins and returns the page with the given id, reading it from disk on a
// cache miss. The caller must Release it. Safe for concurrent use.
func (p *Pager) Get(id PageID) (*Page, error) {
	if id == InvalidPage || uint64(id) >= p.nPages.Load() {
		return nil, fmt.Errorf("pager: page %d out of range", id)
	}
	s := p.shard(id)
	s.mu.Lock()
	if pg, ok := s.cache[id]; ok {
		pg.pins++
		s.lru.MoveToFront(pg.elem)
		s.mu.Unlock()
		return pg, nil
	}
	s.mu.Unlock()

	// Miss: read outside the shard lock so concurrent misses on other pages
	// of the same shard overlap their I/O.
	data := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(data, int64(id)*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if pg, ok := s.cache[id]; ok {
		// Another reader admitted it while we were reading; use theirs.
		pg.pins++
		s.lru.MoveToFront(pg.elem)
		return pg, nil
	}
	return p.admitLocked(s, id, data)
}

// Allocate pins and returns a zeroed new page, reusing a free page when one
// is available. The caller must Release it.
func (p *Pager) Allocate() (*Page, error) {
	if p.readOnly {
		return nil, errors.New("pager: allocate on read-only pager")
	}
	p.allocMu.Lock()
	if p.freeHead != InvalidPage {
		// Hold allocMu across the whole pop so concurrent Allocate/Free
		// cannot hand out the same page or lose a freed one (allocMu →
		// shard lock ordering; nothing acquires them in reverse).
		id := p.freeHead
		pg, err := p.Get(id)
		if err != nil {
			p.allocMu.Unlock()
			return nil, err
		}
		p.freeHead = PageID(binary.LittleEndian.Uint64(pg.Data))
		p.allocMu.Unlock()
		for i := range pg.Data {
			pg.Data[i] = 0
		}
		pg.MarkDirty()
		return pg, nil
	}
	id := PageID(p.nPages.Add(1) - 1)
	p.allocMu.Unlock()
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, err := p.admitLocked(s, id, make([]byte, p.pageSize))
	if err != nil {
		return nil, err
	}
	// A fresh page has no on-disk image yet; mark it dirty so eviction
	// writes it rather than losing it past EOF.
	pg.MarkDirty()
	return pg, nil
}

// Free returns a page to the free list. The page must be unpinned.
func (p *Pager) Free(id PageID) error {
	if p.readOnly {
		return errors.New("pager: free on read-only pager")
	}
	pg, err := p.Get(id)
	if err != nil {
		return err
	}
	s := p.shard(id)
	s.mu.Lock()
	if pg.pins > 1 {
		pg.pins--
		s.mu.Unlock()
		return fmt.Errorf("pager: freeing pinned page %d", id)
	}
	s.mu.Unlock()
	p.allocMu.Lock()
	binary.LittleEndian.PutUint64(pg.Data, uint64(p.freeHead))
	p.freeHead = id
	p.allocMu.Unlock()
	pg.MarkDirty()
	p.Release(pg)
	return nil
}

// admitLocked inserts a page into shard s; s.mu must be held.
func (p *Pager) admitLocked(s *shard, id PageID, data []byte) (*Page, error) {
	if err := p.evictIfFullLocked(s); err != nil {
		return nil, err
	}
	pg := &Page{ID: id, Data: data, pins: 1}
	pg.elem = s.lru.PushFront(pg)
	s.cache[id] = pg
	return pg, nil
}

func (p *Pager) evictIfFullLocked(s *shard) error {
	for len(s.cache) >= s.capacity {
		var victim *Page
		for e := s.lru.Back(); e != nil; e = e.Prev() {
			pg := e.Value.(*Page)
			if pg.pins == 0 {
				victim = pg
				break
			}
		}
		if victim == nil {
			// Everything is pinned: grow past capacity rather than fail;
			// pathological pin patterns are caller bugs but must not corrupt.
			return nil
		}
		if victim.dirty {
			if err := p.writePage(victim); err != nil {
				return err
			}
		}
		s.lru.Remove(victim.elem)
		delete(s.cache, victim.ID)
	}
	return nil
}

// Release unpins a page previously returned by Get or Allocate. Safe for
// concurrent use.
func (p *Pager) Release(pg *Page) {
	s := p.shard(pg.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if pg.pins <= 0 {
		panic(fmt.Sprintf("pager: release of unpinned page %d", pg.ID))
	}
	pg.pins--
}

func (p *Pager) writePage(pg *Page) error {
	if p.readOnly {
		return errors.New("pager: write on read-only pager")
	}
	if _, err := p.f.WriteAt(pg.Data, int64(pg.ID)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("pager: write page %d: %w", pg.ID, err)
	}
	pg.dirty = false
	return nil
}

// Sync writes all dirty pages and the header to disk and fsyncs the file.
// It must not run concurrently with writers.
func (p *Pager) Sync() error {
	if p.readOnly {
		return nil
	}
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, pg := range s.cache {
			if pg.dirty {
				if err := p.writePage(pg); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	p.allocMu.Lock()
	err := p.writeHeader()
	p.allocMu.Unlock()
	if err != nil {
		return err
	}
	return p.f.Sync()
}

// Close syncs and closes the page file.
func (p *Pager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}

// Stats reports buffer pool statistics.
type Stats struct {
	CachedPages int
	PinnedPages int
	TotalPages  uint64
}

// Stats returns current buffer pool statistics.
func (p *Pager) Stats() Stats {
	s := Stats{TotalPages: p.nPages.Load()}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		s.CachedPages += len(sh.cache)
		for _, pg := range sh.cache {
			if pg.pins > 0 {
				s.PinnedPages++
			}
		}
		sh.mu.Unlock()
	}
	return s
}
