package packedix

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"
	"unsafe"
)

// File is an opened packed index. All probe methods are safe for concurrent
// use: they read the immutable mapping and write only caller-owned scratch.
type File struct {
	data   []byte
	mapped bool // data is an mmap'd region (munmap on Close)

	meta    Meta
	flags   uint16
	tables  []tableDesc // one per path length 0..MaxLen
	posts   []byte      // postings section
	ctx     []byte      // context section
	binding string      // "mmap" or "heap", for observability
}

type tableDesc struct {
	entries []byte // the raw key table
	count   int
	stride  int
	keyLen  int // 2*(l+1) label bytes
}

// Open maps the packed file at path read-only and validates its structure.
// The mapping is lazy: open cost is header + descriptor validation, not
// file size.
func Open(path string) (*File, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	f, err := open(data, mapped)
	if err != nil {
		if mapped {
			unmap(data)
		}
		return nil, err
	}
	return f, nil
}

// OpenBytes opens a packed index held in memory. Used by tests and the fuzz
// target; Close never unmaps.
func OpenBytes(data []byte) (*File, error) {
	return open(data, false)
}

func open(data []byte, mapped bool) (*File, error) {
	if len(data) < headerSize {
		return nil, corruptf("file of %d bytes is smaller than the %d-byte header", len(data), headerSize)
	}
	if !bytes.Equal(data[:4], []byte("PEGX")) {
		return nil, corruptf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, corruptf("format version %d, this build reads %d", v, Version)
	}
	f := &File{data: data, mapped: mapped, binding: "heap"}
	if mapped {
		f.binding = "mmap"
	}
	f.flags = binary.LittleEndian.Uint16(data[6:])
	maxLen := binary.LittleEndian.Uint32(data[8:])
	nLabels := binary.LittleEndian.Uint32(data[12:])
	nBuckets := binary.LittleEndian.Uint32(data[16:])
	if maxLen > maxSupportedLen {
		return nil, corruptf("maxLen %d exceeds supported %d", maxLen, maxSupportedLen)
	}
	if nLabels < 1 || nLabels > maxLabels {
		return nil, corruptf("nLabels %d out of range", nLabels)
	}
	if nBuckets < 1 || nBuckets > maxBuckets {
		return nil, corruptf("nBuckets %d out of range", nBuckets)
	}
	f.meta = Meta{
		MaxLen:   int(maxLen),
		NLabels:  int(nLabels),
		NBuckets: int(nBuckets),
		Beta:     math.Float64frombits(binary.LittleEndian.Uint64(data[24:])),
		Gamma:    math.Float64frombits(binary.LittleEndian.Uint64(data[32:])),
	}
	nodes := binary.LittleEndian.Uint64(data[40:])
	edges := binary.LittleEndian.Uint64(data[48:])
	const maxCount = 1 << 40
	if nodes > maxCount || edges > maxCount {
		return nil, corruptf("node/edge counts %d/%d implausible", nodes, edges)
	}
	f.meta.Nodes = int(nodes)
	f.meta.Edges = int(edges)
	f.meta.Entries = binary.LittleEndian.Uint64(data[56:])
	seqTablesOff := binary.LittleEndian.Uint64(data[64:])
	postingsOff := binary.LittleEndian.Uint64(data[72:])
	postingsLen := binary.LittleEndian.Uint64(data[80:])
	contextOff := binary.LittleEndian.Uint64(data[88:])
	contextLen := binary.LittleEndian.Uint64(data[96:])
	fileSize := binary.LittleEndian.Uint64(data[104:])
	if fileSize != uint64(len(data)) {
		return nil, corruptf("header says %d bytes, file has %d (truncated?)", fileSize, len(data))
	}
	sect := func(name string, off, n uint64) ([]byte, error) {
		if off > uint64(len(data)) || n > uint64(len(data))-off {
			return nil, corruptf("%s section [%d,+%d) outside %d-byte file", name, off, n, len(data))
		}
		return data[off : off+n : off+n], nil
	}
	var err error
	if f.posts, err = sect("postings", postingsOff, postingsLen); err != nil {
		return nil, err
	}
	if f.ctx, err = sect("context", contextOff, contextLen); err != nil {
		return nil, err
	}
	nLens := f.meta.MaxLen + 1
	desc, err := sect("descriptor", seqTablesOff, uint64(nLens*descriptorSize))
	if err != nil {
		return nil, err
	}
	f.meta.EntriesPerLen = make([]uint64, nLens)
	f.tables = make([]tableDesc, nLens)
	for l := 0; l < nLens; l++ {
		d := desc[l*descriptorSize:]
		tableOff := binary.LittleEndian.Uint64(d)
		seqCount := binary.LittleEndian.Uint64(d[8:])
		f.meta.EntriesPerLen[l] = binary.LittleEndian.Uint64(d[16:])
		stride := uint64(entryStride(l, f.meta.NBuckets))
		if seqCount > uint64(len(data))/stride {
			return nil, corruptf("length-%d table claims %d sequences", l, seqCount)
		}
		tbl, err := sect("key table", tableOff, seqCount*stride)
		if err != nil {
			return nil, err
		}
		f.tables[l] = tableDesc{entries: tbl, count: int(seqCount), stride: int(stride), keyLen: 2 * (l + 1)}
	}
	return f, nil
}

// Meta returns the header metadata.
func (f *File) Meta() Meta { return f.meta }

// Binding reports how the file is held: "mmap" or "heap".
func (f *File) Binding() string { return f.binding }

// MappedBytes is the size of the backing region (mapped or copied).
func (f *File) MappedBytes() int64 { return int64(len(f.data)) }

// NumSeqs returns the number of distinct sequences in the file.
func (f *File) NumSeqs() int {
	n := 0
	for _, t := range f.tables {
		n += t.count
	}
	return n
}

// Close releases the mapping. Outstanding zero-copy views (context slices,
// in-flight Decode callbacks) must not be used afterwards.
func (f *File) Close() error {
	data := f.data
	f.data, f.posts, f.ctx, f.tables = nil, nil, nil, nil
	if f.mapped {
		f.mapped = false
		return unmap(data)
	}
	return nil
}

// Seq is a handle on one sequence's key-table entry. Valid until Close.
type Seq struct {
	f     *File
	entry []byte
	n     int // labels in the sequence
}

// FindSeq binary-searches the length-(len(labels)-1) key table. The bool
// reports presence.
func (f *File) FindSeq(labels []uint16) (Seq, bool) {
	l := len(labels) - 1
	if l < 0 || l >= len(f.tables) {
		return Seq{}, false
	}
	t := &f.tables[l]
	var keyBuf [2 * maxPathNodes]byte
	key := labelBytes(keyBuf[:0], labels)
	i := sort.Search(t.count, func(i int) bool {
		return bytes.Compare(t.entries[i*t.stride:i*t.stride+t.keyLen], key) >= 0
	})
	if i >= t.count || !bytes.Equal(t.entries[i*t.stride:i*t.stride+t.keyLen], key) {
		return Seq{}, false
	}
	return Seq{f: f, entry: t.entries[i*t.stride : (i+1)*t.stride], n: l + 1}, true
}

// SeqAt returns the i-th sequence (label order) of path length l.
func (f *File) SeqAt(l, i int) Seq {
	t := &f.tables[l]
	return Seq{f: f, entry: t.entries[i*t.stride : (i+1)*t.stride], n: l + 1}
}

// SeqsAtLen returns how many sequences of path length l are stored.
func (f *File) SeqsAtLen(l int) int {
	if l < 0 || l >= len(f.tables) {
		return 0
	}
	return f.tables[l].count
}

// Labels decodes the sequence's labels into dst (reused if cap suffices).
func (s Seq) Labels(dst []uint16) []uint16 {
	dst = dst[:0]
	for i := 0; i < s.n; i++ {
		dst = append(dst, binary.BigEndian.Uint16(s.entry[2*i:]))
	}
	return dst
}

// Count returns the stored record count of bucket b — the histogram cell.
func (s Seq) Count(b int) uint32 {
	return binary.LittleEndian.Uint32(s.entry[2*s.n+8+8*b:])
}

func (s Seq) end(b int) uint32 {
	return binary.LittleEndian.Uint32(s.entry[2*s.n+8+8*b+4:])
}

// Decode streams the sequence's records for buckets fromBucket..NBuckets-1
// in storage order (bucket ascending, recno ascending within a bucket). The
// nodes slice passed to fn aliases scratch owned by Decode and is only
// valid during the call; fn returns false to stop early. Every offset and
// varint is bounds-checked against the blob, so a corrupt file yields
// ErrCorrupt, never a panic or an out-of-bounds read.
func (s Seq) Decode(fromBucket int, fn func(bucket int, nodes []uint32, prle, prn float64) bool) error {
	f := s.f
	nb := f.meta.NBuckets
	if fromBucket < 0 {
		fromBucket = 0
	}
	if fromBucket >= nb {
		return nil
	}
	blobOff := binary.LittleEndian.Uint64(s.entry[2*s.n:])
	blobEnd := uint64(s.end(nb - 1))
	if blobOff > uint64(len(f.posts)) || blobEnd > uint64(len(f.posts))-blobOff {
		return corruptf("posting blob [%d,+%d) outside postings section", blobOff, blobEnd)
	}
	blob := f.posts[blobOff : blobOff+blobEnd]

	var nodes [maxPathNodes]uint32
	prevEnd := uint32(0)
	if fromBucket > 0 {
		prevEnd = s.end(fromBucket - 1)
	}
	for b := fromBucket; b < nb; b++ {
		end := s.end(b)
		if end < prevEnd || uint64(end) > uint64(len(blob)) {
			return corruptf("bucket %d range [%d,%d) not monotone within %d-byte blob", b, prevEnd, end, len(blob))
		}
		cnt := s.Count(b)
		p := blob[prevEnd:end]
		var prev0 uint32
		for r := uint32(0); r < cnt; r++ {
			if len(p) < 1 {
				return corruptf("bucket %d truncated at record %d/%d", b, r, cnt)
			}
			flags := p[0]
			p = p[1:]
			d, w := binary.Varint(p)
			if w <= 0 {
				return corruptf("bad node[0] varint in bucket %d", b)
			}
			p = p[w:]
			v := int64(prev0) + d
			if v < 0 || v > math.MaxUint32 {
				return corruptf("node[0] delta overflows uint32 in bucket %d", b)
			}
			nodes[0] = uint32(v)
			prev0 = nodes[0]
			for i := 1; i < s.n; i++ {
				d, w := binary.Varint(p)
				if w <= 0 {
					return corruptf("bad node[%d] varint in bucket %d", i, b)
				}
				p = p[w:]
				v := int64(nodes[i-1]) + d
				if v < 0 || v > math.MaxUint32 {
					return corruptf("node[%d] delta overflows uint32 in bucket %d", i, b)
				}
				nodes[i] = uint32(v)
			}
			prle, prn := 1.0, 1.0
			if flags&1 == 0 {
				if len(p) < 8 {
					return corruptf("bucket %d record %d truncated before prle", b, r)
				}
				prle = math.Float64frombits(binary.LittleEndian.Uint64(p))
				p = p[8:]
			}
			if flags&2 == 0 {
				if len(p) < 8 {
					return corruptf("bucket %d record %d truncated before prn", b, r)
				}
				prn = math.Float64frombits(binary.LittleEndian.Uint64(p))
				p = p[8:]
			}
			if !fn(b, nodes[:s.n], prle, prn) {
				return nil
			}
		}
		prevEnd = end
	}
	return nil
}

// Context returns the embedded context tables. When the mapping is 8-byte
// aligned (always true for mmap; page-aligned base) the returned slices
// alias the file — zero copies, zero heap. An unaligned heap buffer (fuzz
// inputs) falls back to decoding copies.
func (f *File) Context() (nLabels int, card []int32, ppu, fpu []float64, err error) {
	c := f.ctx
	if len(c) < 8 {
		return 0, nil, nil, nil, corruptf("context section of %d bytes lacks header", len(c))
	}
	nLabels = int(binary.LittleEndian.Uint32(c))
	if nLabels < 1 || nLabels > maxLabels {
		return 0, nil, nil, nil, corruptf("context nLabels %d out of range", nLabels)
	}
	cells := f.meta.Nodes * nLabels
	cardLen := uint64(4 * cells)
	pad := (8 - cardLen%8) % 8
	want := 8 + cardLen + pad + uint64(16*cells)
	if uint64(len(c)) != want {
		return 0, nil, nil, nil, corruptf("context section is %d bytes, want %d for %d cells", len(c), want, cells)
	}
	cardB := c[8 : 8+cardLen]
	ppuB := c[8+cardLen+pad : 8+cardLen+pad+uint64(8*cells)]
	fpuB := c[8+cardLen+pad+uint64(8*cells):]
	if cells == 0 {
		return nLabels, []int32{}, []float64{}, []float64{}, nil
	}
	if uintptr(unsafe.Pointer(&ppuB[0]))%8 == 0 && uintptr(unsafe.Pointer(&cardB[0]))%4 == 0 {
		card = unsafe.Slice((*int32)(unsafe.Pointer(&cardB[0])), cells)
		ppu = unsafe.Slice((*float64)(unsafe.Pointer(&ppuB[0])), cells)
		fpu = unsafe.Slice((*float64)(unsafe.Pointer(&fpuB[0])), cells)
		return nLabels, card, ppu, fpu, nil
	}
	card = make([]int32, cells)
	ppu = make([]float64, cells)
	fpu = make([]float64, cells)
	for i := 0; i < cells; i++ {
		card[i] = int32(binary.LittleEndian.Uint32(cardB[4*i:]))
		ppu[i] = math.Float64frombits(binary.LittleEndian.Uint64(ppuB[8*i:]))
		fpu[i] = math.Float64frombits(binary.LittleEndian.Uint64(fpuB[8*i:]))
	}
	return nLabels, card, ppu, fpu, nil
}
