//go:build !unix

package packedix

import "os"

// Non-unix fallback: read the whole file onto the heap. Slower cold start,
// identical semantics.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

func unmap([]byte) error { return nil }
