package packedix

import (
	"errors"
	"os"
	"testing"
)

// FuzzOpenPacked throws arbitrary bytes — seeded with a valid file and
// targeted corruptions of it — at Open and the full probe surface. The
// invariant: any input either opens and probes cleanly, or fails with a
// typed ErrCorrupt. Never a panic, never a read outside the buffer (the
// fuzzer runs under the race/asan-adjacent bounds checks of the Go
// runtime, so an over-read of the slice is a caught panic).
func FuzzOpenPacked(f *testing.F) {
	nl, card, ppu, fpu := sampleCtx()
	path := buildFile(f, sampleMeta(), samplePosts(), nl, card, ppu, fpu)
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:0])
	f.Add(raw[:headerSize])
	f.Add(raw[:len(raw)/2])
	for _, off := range []int{0, 5, 9, 17, 65, 73, 89, 105, headerSize + 1, len(raw) - 9} {
		b := append([]byte(nil), raw...)
		b[off] ^= 0xff
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := OpenBytes(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open failed with untyped error: %v", err)
			}
			return
		}
		defer file.Close()
		if err := probeAll(file); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("probe failed with untyped error: %v", err)
		}
	})
}
