// Package packedix implements the packed path-index format v2: one
// immutable file holding everything a query-time probe needs — a fixed
// header with a section offset table, per-path-length sorted key tables,
// delta+varint-compressed posting blobs, and the per-node context tables —
// written once by a single producer and opened read-only with mmap.
//
// The layout is designed so the read path never materializes the index on
// the heap: key tables are fixed-stride and binary-searched directly in the
// mapping, postings decode into caller-owned scratch, and the context
// arrays alias the mapping in place when alignment allows. The per-bucket
// record counts stored with every key double as the cardinality histogram
// of Section 5.2.1, so no separate histogram file exists.
//
// File layout (integers little-endian unless noted):
//
//	Header (128 B):
//	  [0:4]    magic "PEGX"
//	  [4:6]    version u16 (= 2)
//	  [6:8]    flags u16 (reserved, 0)
//	  [8:12]   maxLen u32          — L, maximum path length in edges
//	  [12:16]  nLabels u32
//	  [16:20]  nBuckets u32        — probability buckets per sequence
//	  [20:24]  pad u32
//	  [24:32]  beta f64 bits
//	  [32:40]  gamma f64 bits
//	  [40:48]  nodes u64           — entity graph the index was built over
//	  [48:56]  edges u64
//	  [56:64]  entries u64         — total stored postings
//	  [64:72]  seqTablesOff u64    — per-length descriptor table
//	  [72:80]  postingsOff u64
//	  [80:88]  postingsLen u64
//	  [88:96]  contextOff u64
//	  [96:104] contextLen u64
//	  [104:112] fileSize u64       — must equal the real size (truncation check)
//	  [112:128] reserved (zero)
//
//	Descriptor table at seqTablesOff: (maxLen+1) × 24 B records:
//	  tableOff u64, seqCount u64, entriesAtLen u64
//
//	Key table for length l: seqCount entries of fixed stride, sorted by
//	label bytes (big-endian u16 labels, so byte order == numeric order):
//	  labels    (l+1)×2 B BE
//	  blobOff   u64  — this sequence's posting blob, relative to postingsOff
//	  per bucket b in 0..nBuckets-1:
//	    count  u32   — records in bucket b (the histogram cell)
//	    endOff u32   — byte offset past bucket b's records, relative to blobOff
//
//	Posting blob for one sequence: buckets ascending, records in insertion
//	(recno) order within a bucket:
//	  flags u8             — bit0: prle == 1.0 elided, bit1: prn == 1.0 elided
//	  zigzag-varint node deltas — node[0] vs the previous record's node[0]
//	    (vs 0 at each bucket start), node[i] vs node[i-1] within the record
//	  prle f64 bits (absent when bit0), prn f64 bits (absent when bit1)
//
//	Context section at contextOff (8-aligned):
//	  card  cells×i32, pad to 8, ppu cells×f64, fpu cells×f64
//	  where cells = nodes × nLabels
package packedix

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Version is the format version this package reads and writes.
const Version = 2

// FileName is the packed index file inside an index directory.
const FileName = "packed.idx"

// ErrCorrupt is the base error for every structural validation failure:
// wrong magic, bad version, truncated sections, out-of-range offsets,
// posting blobs that decode past their bounds. Callers gate on
// errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("packedix: corrupt index")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

const (
	headerSize     = 128
	descriptorSize = 24 // tableOff, seqCount, entriesAtLen

	// maxSupportedLen bounds maxLen at the format level so a corrupt header
	// cannot make per-record scratch arrays overflow.
	maxSupportedLen = 15
	maxPathNodes    = maxSupportedLen + 1
	maxLabels       = 1 << 20
	maxBuckets      = 1 << 16
)

// Meta is the self-describing header content of a packed index.
type Meta struct {
	MaxLen   int
	NLabels  int
	NBuckets int
	Beta     float64
	Gamma    float64
	Nodes    int
	Edges    int
	Entries  uint64
	// EntriesPerLen holds the stored entry count per path length 0..MaxLen.
	EntriesPerLen []uint64
}

// rec is one posting during construction.
type rec struct {
	nodes []uint32
	prle  float64
	prn   float64
}

// seqAcc accumulates one sequence's postings per bucket, in arrival order.
type seqAcc struct {
	labels  []uint16
	buckets [][]rec
}

// Writer accumulates postings and context tables in memory and emits the
// packed file in one shot. There is exactly one producer (the offline build
// or the compactor), so no concurrency support is needed.
type Writer struct {
	meta  Meta
	byLen []map[string]*seqAcc // per path length, keyed by label bytes

	ctxLabels int
	card      []int32
	ppu, fpu  []float64
	hasCtx    bool
}

// NewWriter starts a packed index with the given metadata. EntriesPerLen
// and Entries are counted by Add and may be left zero.
func NewWriter(m Meta) (*Writer, error) {
	if m.MaxLen < 0 || m.MaxLen > maxSupportedLen {
		return nil, fmt.Errorf("packedix: MaxLen %d out of range [0,%d]", m.MaxLen, maxSupportedLen)
	}
	if m.NLabels < 1 || m.NLabels > maxLabels {
		return nil, fmt.Errorf("packedix: NLabels %d out of range", m.NLabels)
	}
	if m.NBuckets < 1 || m.NBuckets > maxBuckets {
		return nil, fmt.Errorf("packedix: NBuckets %d out of range", m.NBuckets)
	}
	byLen := make([]map[string]*seqAcc, m.MaxLen+1)
	for i := range byLen {
		byLen[i] = make(map[string]*seqAcc)
	}
	m.Entries = 0
	m.EntriesPerLen = make([]uint64, m.MaxLen+1)
	return &Writer{meta: m, byLen: byLen}, nil
}

// labelBytes encodes labels big-endian so byte order equals numeric order.
func labelBytes(dst []byte, labels []uint16) []byte {
	for _, l := range labels {
		dst = append(dst, byte(l>>8), byte(l))
	}
	return dst
}

// Add records one posting: an oriented path of len(labels) nodes whose
// canonical label sequence is labels, in probability bucket b. Postings of
// one (sequence, bucket) are stored in arrival order, which the reader
// preserves — arrival order is the record-number order of the B+ tree
// format, so scans over both formats agree byte for byte.
func (w *Writer) Add(labels []uint16, bucket int, nodes []uint32, prle, prn float64) error {
	if len(labels) == 0 || len(labels)-1 > w.meta.MaxLen {
		return fmt.Errorf("packedix: sequence of %d labels exceeds L=%d", len(labels), w.meta.MaxLen)
	}
	if len(nodes) != len(labels) {
		return fmt.Errorf("packedix: %d nodes for %d labels", len(nodes), len(labels))
	}
	if bucket < 0 || bucket >= w.meta.NBuckets {
		return fmt.Errorf("packedix: bucket %d out of range [0,%d)", bucket, w.meta.NBuckets)
	}
	l := len(labels) - 1
	key := string(labelBytes(make([]byte, 0, 2*len(labels)), labels))
	acc := w.byLen[l][key]
	if acc == nil {
		acc = &seqAcc{
			labels:  append([]uint16(nil), labels...),
			buckets: make([][]rec, w.meta.NBuckets),
		}
		w.byLen[l][key] = acc
	}
	acc.buckets[bucket] = append(acc.buckets[bucket], rec{
		nodes: append([]uint32(nil), nodes...),
		prle:  prle,
		prn:   prn,
	})
	w.meta.Entries++
	w.meta.EntriesPerLen[l]++
	return nil
}

// SetContext attaches the per-node context tables; all three slices must
// hold nodes×nLabels cells.
func (w *Writer) SetContext(nLabels int, card []int32, ppu, fpu []float64) error {
	cells := w.meta.Nodes * nLabels
	if len(card) != cells || len(ppu) != cells || len(fpu) != cells {
		return fmt.Errorf("packedix: context tables hold %d/%d/%d cells, want %d",
			len(card), len(ppu), len(fpu), cells)
	}
	w.ctxLabels, w.card, w.ppu, w.fpu, w.hasCtx = nLabels, card, ppu, fpu, true
	return nil
}

// NumSeqs returns the number of distinct sequences accumulated so far.
func (w *Writer) NumSeqs() int {
	n := 0
	for _, m := range w.byLen {
		n += len(m)
	}
	return n
}

func putZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// encodeSeqBlob emits one sequence's posting blob and returns the per-bucket
// (count, endOff) pairs.
func encodeSeqBlob(buf *bytes.Buffer, acc *seqAcc) (counts []uint32, ends []uint32, err error) {
	counts = make([]uint32, len(acc.buckets))
	ends = make([]uint32, len(acc.buckets))
	var scratch [2 * maxPathNodes * binary.MaxVarintLen64]byte
	start := buf.Len()
	for b, recs := range acc.buckets {
		var prev0 uint32 // the delta chain restarts at each bucket boundary
		for _, r := range recs {
			enc := scratch[:0]
			flags := byte(0)
			if r.prle == 1.0 {
				flags |= 1
			}
			if r.prn == 1.0 {
				flags |= 2
			}
			enc = append(enc, flags)
			enc = putZigzag(enc, int64(r.nodes[0])-int64(prev0))
			prev0 = r.nodes[0]
			for i := 1; i < len(r.nodes); i++ {
				enc = putZigzag(enc, int64(r.nodes[i])-int64(r.nodes[i-1]))
			}
			if flags&1 == 0 {
				enc = binary.LittleEndian.AppendUint64(enc, math.Float64bits(r.prle))
			}
			if flags&2 == 0 {
				enc = binary.LittleEndian.AppendUint64(enc, math.Float64bits(r.prn))
			}
			buf.Write(enc)
		}
		counts[b] = uint32(len(recs))
		end := buf.Len() - start
		if end > math.MaxUint32 {
			return nil, nil, fmt.Errorf("packedix: sequence blob exceeds 4 GiB")
		}
		ends[b] = uint32(end)
	}
	return counts, ends, nil
}

// entryStride is the fixed key-table entry size for path length l.
func entryStride(l, nBuckets int) int {
	return 2*(l+1) + 8 + 8*nBuckets
}

// WriteFile assembles and writes the packed file: tmp + fsync + rename, so
// a crash leaves either no file or a complete one. Returns the file size.
func (w *Writer) WriteFile(path string) (int64, error) {
	if !w.hasCtx {
		return 0, fmt.Errorf("packedix: context tables not set")
	}
	nb := w.meta.NBuckets
	nLens := w.meta.MaxLen + 1

	// Sort each length's sequences by label bytes and encode all blobs.
	type tableEntry struct {
		labels  []byte
		blobOff uint64
		counts  []uint32
		ends    []uint32
	}
	tables := make([][]tableEntry, nLens)
	var postings bytes.Buffer
	for l := 0; l < nLens; l++ {
		keys := make([]string, 0, len(w.byLen[l]))
		for k := range w.byLen[l] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		tables[l] = make([]tableEntry, len(keys))
		for i, k := range keys {
			acc := w.byLen[l][k]
			off := uint64(postings.Len())
			counts, ends, err := encodeSeqBlob(&postings, acc)
			if err != nil {
				return 0, err
			}
			tables[l][i] = tableEntry{labels: []byte(k), blobOff: off, counts: counts, ends: ends}
		}
	}

	// Section offsets.
	seqTablesOff := uint64(headerSize)
	off := seqTablesOff + uint64(nLens*descriptorSize)
	tableOffs := make([]uint64, nLens)
	for l := 0; l < nLens; l++ {
		tableOffs[l] = off
		off += uint64(len(tables[l]) * entryStride(l, nb))
	}
	postingsOff := off
	postingsLen := uint64(postings.Len())
	off += postingsLen
	contextOff := (off + 7) &^ 7 // 8-aligned so the float tables can alias the mapping
	cells := w.meta.Nodes * w.ctxLabels
	cardLen := uint64(4 * cells)
	ctxPad := (8 - cardLen%8) % 8
	contextLen := 8 + cardLen + ctxPad + uint64(16*cells) // nLabels u32 + pad u32 first
	fileSize := contextOff + contextLen

	f, err := os.Create(path + ".tmp")
	if err != nil {
		return 0, err
	}
	defer os.Remove(path + ".tmp")
	bw := bufio.NewWriterSize(f, 1<<20)

	// Header.
	hdr := make([]byte, headerSize)
	copy(hdr, "PEGX")
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.meta.MaxLen))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(w.meta.NLabels))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(nb))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(w.meta.Beta))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(w.meta.Gamma))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(w.meta.Nodes))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(w.meta.Edges))
	binary.LittleEndian.PutUint64(hdr[56:], w.meta.Entries)
	binary.LittleEndian.PutUint64(hdr[64:], seqTablesOff)
	binary.LittleEndian.PutUint64(hdr[72:], postingsOff)
	binary.LittleEndian.PutUint64(hdr[80:], postingsLen)
	binary.LittleEndian.PutUint64(hdr[88:], contextOff)
	binary.LittleEndian.PutUint64(hdr[96:], contextLen)
	binary.LittleEndian.PutUint64(hdr[104:], fileSize)
	bw.Write(hdr)

	// Descriptor table.
	var u64 [8]byte
	wr64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		bw.Write(u64[:])
	}
	for l := 0; l < nLens; l++ {
		wr64(tableOffs[l])
		wr64(uint64(len(tables[l])))
		wr64(w.meta.EntriesPerLen[l])
	}

	// Key tables.
	var u32 [4]byte
	wr32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		bw.Write(u32[:])
	}
	for l := 0; l < nLens; l++ {
		for i := range tables[l] {
			e := &tables[l][i]
			bw.Write(e.labels)
			wr64(e.blobOff)
			for b := 0; b < nb; b++ {
				wr32(e.counts[b])
				wr32(e.ends[b])
			}
		}
	}

	bw.Write(postings.Bytes())
	for pad := contextOff - off; pad > 0; pad-- {
		bw.WriteByte(0)
	}

	// Context section.
	wr32(uint32(w.ctxLabels))
	wr32(0)
	for _, v := range w.card {
		wr32(uint32(v))
	}
	for pad := ctxPad; pad > 0; pad-- {
		bw.WriteByte(0)
	}
	for _, v := range w.ppu {
		wr64(math.Float64bits(v))
	}
	for _, v := range w.fpu {
		wr64(math.Float64bits(v))
	}

	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return 0, err
	}
	// Fsync the directory so the rename itself survives a power loss (the
	// same protocol the generation-flip manifests use).
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return int64(fileSize), nil
}
