//go:build unix

package packedix

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. The second result reports whether the bytes
// are an mmap region (true) or a heap copy (false, used for empty files —
// mmap of length 0 is an error on Linux).
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	if st.Size() == 0 {
		return []byte{}, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}
