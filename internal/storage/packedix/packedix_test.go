package packedix

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

type post struct {
	labels []uint16
	bucket int
	nodes  []uint32
	prle   float64
	prn    float64
}

func buildFile(t testing.TB, m Meta, posts []post, nLabels int, card []int32, ppu, fpu []float64) string {
	t.Helper()
	w, err := NewWriter(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range posts {
		if err := w.Add(p.labels, p.bucket, p.nodes, p.prle, p.prn); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SetContext(nLabels, card, ppu, fpu); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), FileName)
	if _, err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func samplePosts() []post {
	return []post{
		{[]uint16{1}, 0, []uint32{7}, 1, 1},
		{[]uint16{1}, 3, []uint32{2}, 0.5, 1},
		{[]uint16{1, 2}, 0, []uint32{7, 3}, 0.25, 0.75},
		{[]uint16{1, 2}, 0, []uint32{1, 9}, 1, 0.125},
		{[]uint16{1, 2}, 4, []uint32{100000, 5}, 0.875, 1},
		{[]uint16{2, 2, 3}, 2, []uint32{4, 4, 4}, 1, 1},
		{[]uint16{0, 5, 0}, 1, []uint32{9, 0, 12}, 0.0625, 0.5},
	}
}

func sampleMeta() Meta {
	return Meta{MaxLen: 2, NLabels: 6, NBuckets: 5, Beta: 0.05, Gamma: 0.19, Nodes: 3, Edges: 2}
}

func sampleCtx() (int, []int32, []float64, []float64) {
	nl := 6
	cells := 3 * nl
	card := make([]int32, cells)
	ppu := make([]float64, cells)
	fpu := make([]float64, cells)
	for i := range card {
		card[i] = int32(i * 2)
		ppu[i] = float64(i) / 7
		fpu[i] = 1 - float64(i)/31
	}
	return nl, card, ppu, fpu
}

func TestRoundTrip(t *testing.T) {
	nl, card, ppu, fpu := sampleCtx()
	path := buildFile(t, sampleMeta(), samplePosts(), nl, card, ppu, fpu)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	m := f.Meta()
	if m.MaxLen != 2 || m.NLabels != 6 || m.NBuckets != 5 || m.Nodes != 3 || m.Edges != 2 {
		t.Fatalf("meta round-trip: %+v", m)
	}
	if m.Beta != 0.05 || m.Gamma != 0.19 {
		t.Fatalf("beta/gamma round-trip: %+v", m)
	}
	if m.Entries != 7 || !reflect.DeepEqual(m.EntriesPerLen, []uint64{2, 3, 2}) {
		t.Fatalf("entries: %d per-len %v", m.Entries, m.EntriesPerLen)
	}
	if f.NumSeqs() != 4 {
		t.Fatalf("NumSeqs = %d, want 4", f.NumSeqs())
	}

	// Per-sequence decode preserves bucket grouping and arrival order.
	s, ok := f.FindSeq([]uint16{1, 2})
	if !ok {
		t.Fatal("FindSeq [1 2] missed")
	}
	if got := s.Labels(nil); !reflect.DeepEqual(got, []uint16{1, 2}) {
		t.Fatalf("Labels = %v", got)
	}
	if s.Count(0) != 2 || s.Count(4) != 1 || s.Count(1) != 0 {
		t.Fatalf("counts: %d %d %d", s.Count(0), s.Count(1), s.Count(4))
	}
	var got []post
	if err := s.Decode(0, func(b int, nodes []uint32, prle, prn float64) bool {
		got = append(got, post{bucket: b, nodes: append([]uint32(nil), nodes...), prle: prle, prn: prn})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []post{
		{bucket: 0, nodes: []uint32{7, 3}, prle: 0.25, prn: 0.75},
		{bucket: 0, nodes: []uint32{1, 9}, prle: 1, prn: 0.125},
		{bucket: 4, nodes: []uint32{100000, 5}, prle: 0.875, prn: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decode = %+v, want %+v", got, want)
	}

	// fromBucket skips earlier buckets without touching their bytes' content.
	got = nil
	if err := s.Decode(4, func(b int, nodes []uint32, prle, prn float64) bool {
		got = append(got, post{bucket: b, nodes: append([]uint32(nil), nodes...), prle: prle, prn: prn})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[2:]) {
		t.Fatalf("decode from bucket 4 = %+v", got)
	}

	if _, ok := f.FindSeq([]uint16{1, 3}); ok {
		t.Fatal("FindSeq found a sequence that was never added")
	}
	if _, ok := f.FindSeq([]uint16{1, 2, 3, 4}); ok {
		t.Fatal("FindSeq beyond MaxLen should miss")
	}

	gnl, gcard, gppu, gfpu, err := f.Context()
	if err != nil {
		t.Fatal(err)
	}
	if gnl != nl || !reflect.DeepEqual(gcard, card) || !reflect.DeepEqual(gppu, ppu) || !reflect.DeepEqual(gfpu, fpu) {
		t.Fatal("context tables did not round-trip")
	}
	if f.Binding() != "mmap" && f.Binding() != "heap" {
		t.Fatalf("binding = %q", f.Binding())
	}
	if f.MappedBytes() == 0 {
		t.Fatal("MappedBytes = 0")
	}
}

// TestOpenBytesEquivalence proves the heap path (arbitrary alignment,
// including the copying Context fallback) agrees with the mmap path.
func TestOpenBytesEquivalence(t *testing.T) {
	nl, card, ppu, fpu := sampleCtx()
	path := buildFile(t, sampleMeta(), samplePosts(), nl, card, ppu, fpu)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Misalign deliberately: copy into an offset buffer.
	buf := make([]byte, len(raw)+1)
	copy(buf[1:], raw)
	f, err := OpenBytes(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gnl, gcard, gppu, gfpu, err := f.Context()
	if err != nil {
		t.Fatal(err)
	}
	if gnl != nl || !reflect.DeepEqual(gcard, card) || !reflect.DeepEqual(gppu, ppu) || !reflect.DeepEqual(gfpu, fpu) {
		t.Fatal("misaligned context decode disagrees with writer input")
	}
}

func TestWriterValidation(t *testing.T) {
	w, err := NewWriter(sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]uint16{1, 2, 3, 4}, 0, []uint32{1, 2, 3, 4}, 1, 1); err == nil {
		t.Fatal("Add beyond MaxLen accepted")
	}
	if err := w.Add([]uint16{1}, 99, []uint32{1}, 1, 1); err == nil {
		t.Fatal("Add with out-of-range bucket accepted")
	}
	if err := w.Add([]uint16{1, 2}, 0, []uint32{1}, 1, 1); err == nil {
		t.Fatal("Add with node/label mismatch accepted")
	}
	if _, err := w.WriteFile(filepath.Join(t.TempDir(), FileName)); err == nil {
		t.Fatal("WriteFile without context accepted")
	}
	if _, err := NewWriter(Meta{MaxLen: 99, NLabels: 1, NBuckets: 1}); err == nil {
		t.Fatal("NewWriter with absurd MaxLen accepted")
	}
}

// TestOpenCorrupt drives structured corruptions through Open/probe and
// asserts each fails with ErrCorrupt rather than panicking.
func TestOpenCorrupt(t *testing.T) {
	nl, card, ppu, fpu := sampleCtx()
	path := buildFile(t, sampleMeta(), samplePosts(), nl, card, ppu, fpu)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, fn func(b []byte) []byte) {
		t.Run(name, func(t *testing.T) {
			b := fn(append([]byte(nil), raw...))
			f, err := OpenBytes(b)
			if err == nil {
				// Open may legitimately pass header checks; the probe layer
				// must then catch it.
				defer f.Close()
				err = probeAll(f)
			}
			if err == nil {
				t.Fatal("corruption went unnoticed")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v is not ErrCorrupt", err)
			}
		})
	}
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("short-header", func(b []byte) []byte { return b[:50] })
	mutate("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("bad-version", func(b []byte) []byte { b[4] = 99; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-20] })
	mutate("huge-maxlen", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:], 1<<30); return b })
	mutate("zero-buckets", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[16:], 0); return b })
	mutate("postings-off-oob", func(b []byte) []byte { binary.LittleEndian.PutUint64(b[72:], 1<<60); return b })
	mutate("context-len-oob", func(b []byte) []byte { binary.LittleEndian.PutUint64(b[96:], 1<<60); return b })
	mutate("table-off-oob", func(b []byte) []byte {
		off := binary.LittleEndian.Uint64(b[64:])
		binary.LittleEndian.PutUint64(b[off:], uint64(len(b))+1)
		return b
	})
	mutate("seqcount-oob", func(b []byte) []byte {
		off := binary.LittleEndian.Uint64(b[64:])
		binary.LittleEndian.PutUint64(b[off+8:], 1<<40)
		return b
	})
}

// probeAll exercises every read path: all sequences, all buckets, context.
func probeAll(f *File) error {
	m := f.Meta()
	var lbl []uint16
	for l := 0; l <= m.MaxLen; l++ {
		for i := 0; i < f.SeqsAtLen(l); i++ {
			s := f.SeqAt(l, i)
			lbl = s.Labels(lbl)
			if _, ok := f.FindSeq(lbl); !ok {
				return corruptf("sequence %v not found by its own key", lbl)
			}
			if err := s.Decode(0, func(int, []uint32, float64, float64) bool { return true }); err != nil {
				return err
			}
		}
	}
	_, _, _, _, err := f.Context()
	return err
}

// TestRandomizedRoundTrip round-trips a few hundred random postings and
// checks every sequence decodes back exactly, in storage order.
func TestRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Meta{MaxLen: 3, NLabels: 10, NBuckets: 8, Beta: 0.1, Gamma: 0.1125, Nodes: 50, Edges: 80}
	want := map[string][]post{}
	var posts []post
	for i := 0; i < 400; i++ {
		n := 1 + rng.Intn(4)
		labels := make([]uint16, n)
		nodes := make([]uint32, n)
		for j := range labels {
			labels[j] = uint16(rng.Intn(10))
			nodes[j] = uint32(rng.Intn(1 << 20))
		}
		p := post{labels: labels, bucket: rng.Intn(8), nodes: nodes,
			prle: math.Round(rng.Float64()*16) / 16, prn: math.Round(rng.Float64()*16) / 16}
		posts = append(posts, p)
		key := string(labelBytes(nil, labels))
		want[key] = append(want[key], p)
	}
	nl := 10
	cells := 50 * nl
	path := buildFile(t, m, posts, nl, make([]int32, cells), make([]float64, cells), make([]float64, cells))
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for key, ps := range want {
		s, ok := f.FindSeq(ps[0].labels)
		if !ok {
			t.Fatalf("sequence %v missing", ps[0].labels)
		}
		// Expected order: bucket ascending, arrival order within bucket.
		var exp []post
		for b := 0; b < m.NBuckets; b++ {
			for _, p := range ps {
				if p.bucket == b {
					exp = append(exp, p)
				}
			}
		}
		var got []post
		if err := s.Decode(0, func(b int, nodes []uint32, prle, prn float64) bool {
			got = append(got, post{labels: ps[0].labels, bucket: b,
				nodes: append([]uint32(nil), nodes...), prle: prle, prn: prn})
			return true
		}); err != nil {
			t.Fatalf("decode %q: %v", key, err)
		}
		if !reflect.DeepEqual(got, exp) {
			t.Fatalf("sequence %v: got %+v want %+v", ps[0].labels, got, exp)
		}
	}
}
