// Package binio provides small error-accumulating binary readers and
// writers used by the snapshot formats (PGD and PEG files). All integers
// are little-endian; strings and byte slices are length-prefixed.
package binio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MaxStringLen bounds length-prefixed reads so corrupt files cannot force
// huge allocations.
const MaxStringLen = 1 << 20

// Writer accumulates the first error and turns subsequent writes into
// no-ops, so call sites stay linear.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Err returns the first error encountered.
func (b *Writer) Err() error { return b.err }

// Flush flushes the underlying buffer and returns the first error.
func (b *Writer) Flush() error {
	if b.err != nil {
		return b.err
	}
	return b.w.Flush()
}

// U8 writes one byte.
func (b *Writer) U8(v uint8) {
	if b.err == nil {
		b.err = b.w.WriteByte(v)
	}
}

// U32 writes a 32-bit integer.
func (b *Writer) U32(v uint32) {
	if b.err == nil {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		_, b.err = b.w.Write(buf[:])
	}
}

// U64 writes a 64-bit integer.
func (b *Writer) U64(v uint64) {
	if b.err == nil {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, b.err = b.w.Write(buf[:])
	}
}

// F64 writes a float64.
func (b *Writer) F64(v float64) { b.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string.
func (b *Writer) Str(s string) {
	b.U32(uint32(len(s)))
	if b.err == nil {
		_, b.err = b.w.WriteString(s)
	}
}

// Reader accumulates the first error and returns zero values afterwards.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Err returns the first error encountered.
func (b *Reader) Err() error { return b.err }

// Fail records an error from the caller's own validation.
func (b *Reader) Fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// U8 reads one byte.
func (b *Reader) U8() uint8 {
	if b.err != nil {
		return 0
	}
	v, err := b.r.ReadByte()
	b.err = err
	return v
}

// U32 reads a 32-bit integer.
func (b *Reader) U32() uint32 {
	if b.err != nil {
		return 0
	}
	var buf [4]byte
	_, b.err = io.ReadFull(b.r, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// U64 reads a 64-bit integer.
func (b *Reader) U64() uint64 {
	if b.err != nil {
		return 0
	}
	var buf [8]byte
	_, b.err = io.ReadFull(b.r, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// F64 reads a float64.
func (b *Reader) F64() float64 { return math.Float64frombits(b.U64()) }

// Str reads a length-prefixed string.
func (b *Reader) Str() string {
	n := b.U32()
	if b.err != nil {
		return ""
	}
	if n > MaxStringLen {
		b.err = fmt.Errorf("binio: string length %d too large", n)
		return ""
	}
	buf := make([]byte, n)
	_, b.err = io.ReadFull(b.r, buf)
	return string(buf)
}
