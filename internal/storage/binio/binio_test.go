package binio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(7)
	w.U32(1 << 30)
	w.U64(1 << 60)
	w.F64(math.Pi)
	w.Str("hello, snapshot")
	w.Str("")
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	r := NewReader(&buf)
	if v := r.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := r.U32(); v != 1<<30 {
		t.Errorf("U32 = %d", v)
	}
	if v := r.U64(); v != 1<<60 {
		t.Errorf("U64 = %d", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := r.Str(); v != "hello, snapshot" {
		t.Errorf("Str = %q", v)
	}
	if v := r.Str(); v != "" {
		t.Errorf("empty Str = %q", v)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
}

func TestReaderErrorSticks(t *testing.T) {
	r := NewReader(strings.NewReader("ab"))
	r.U64() // short read
	if r.Err() == nil {
		t.Fatal("short read not detected")
	}
	// Subsequent reads are no-ops returning zeros.
	if v := r.U32(); v != 0 {
		t.Errorf("post-error U32 = %d", v)
	}
	if v := r.Str(); v != "" {
		t.Errorf("post-error Str = %q", v)
	}
}

func TestReaderFail(t *testing.T) {
	r := NewReader(strings.NewReader("abcdefgh"))
	r.Fail(errTest)
	if r.Err() != errTest {
		t.Error("Fail not recorded")
	}
	r.Fail(nil) // later calls don't clear
	if r.Err() != errTest {
		t.Error("error cleared")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestOversizedString(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(MaxStringLen + 1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, 16))
	r := NewReader(&buf)
	if r.Str(); r.Err() == nil {
		t.Error("oversized string accepted")
	}
}

// Property: any sequence of (u32, f64, str) writes reads back identically.
func TestRoundTripProperty(t *testing.T) {
	f := func(us []uint32, fs []float64, ss []string) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, u := range us {
			w.U32(u)
		}
		for _, v := range fs {
			w.F64(v)
		}
		for _, s := range ss {
			if len(s) > MaxStringLen {
				s = s[:MaxStringLen]
			}
			w.Str(s)
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, u := range us {
			if r.U32() != u {
				return false
			}
		}
		for _, v := range fs {
			got := r.F64()
			if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				return false
			}
		}
		for _, s := range ss {
			if len(s) > MaxStringLen {
				s = s[:MaxStringLen]
			}
			if r.Str() != s {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
