package plan

import (
	"container/heap"
	"context"
	"runtime"
	"sort"
	"time"

	"repro/internal/candidates"
	"repro/internal/entity"
	"repro/internal/join"
	"repro/internal/kpartite"
	"repro/internal/pathindex"
)

// Exec configures one plan execution — the run-time knobs that do not
// affect which plan is chosen.
type Exec struct {
	// Workers bounds stage parallelism for candidate pruning and the
	// reduction (0 = GOMAXPROCS).
	Workers int
	// Limit caps the number of emitted matches (0 = unlimited).
	Limit int
	// Order selects the emission order (OrderEmit or OrderByProb).
	Order ResultOrder
	// Parallelism is the number of join-enumeration workers
	// (0 = GOMAXPROCS, 1 = sequential).
	Parallelism int
	// CandCache, when non-nil, serves pruned per-path candidate sets for
	// repeated query shapes. It must only be shared between executions over
	// the same immutable index snapshot (the serving tier owns one per
	// generation); live views with pending mutations bypass it.
	CandCache *candidates.Cache
}

// Executor runs compiled plans against one index. It is stateless apart
// from the optional calibration it feeds observations into, so one Executor
// value may run any number of plans concurrently.
type Executor struct {
	ix    pathindex.Reader
	calib *Calibration
}

// NewExecutor returns an executor over the index. calib may be nil (no
// feedback recorded).
func NewExecutor(ix pathindex.Reader, calib *Calibration) *Executor {
	return &Executor{ix: ix, calib: calib}
}

// Run executes the plan in stages — candidate retrieval → k-partite build →
// joint reduction → join — streaming matches into yield. Per-stage timings,
// estimated vs. observed cardinalities, and prune counts land in Stats;
// observed/estimated candidate ratios are fed back into the calibration.
// Before the join the executor re-orders the partitions using the observed
// alive counts instead of the plan's histogram estimates: the match set is
// invariant under join order, so this changes cost only (PlannedOrder and
// ExecOrder record both sides). Returning false from yield stops the
// enumeration (not an error); the semantics of Limit, Order, Parallelism,
// and cancellation are exactly core.MatchStream's.
func (e *Executor) Run(ctx context.Context, pl *Plan, opt Exec, yield func(join.Match) bool) (Stats, error) {
	start := time.Now()
	st := Stats{
		Plan:         pl.Tree,
		NumPaths:     len(pl.Dec.Paths),
		PlannedOrder: pl.Order,
	}
	g := e.ix.Graph()
	q := pl.Query
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Candidate retrieval with context pruning (Section 5.2.2), fanned out
	// per path, optionally served from the generation's candidate cache.
	t0 := time.Now()
	sets, cstats, err := candidates.Find(ctx, e.ix, q, pl.Dec, pl.Alpha, workers, opt.CandCache)
	if err != nil {
		return st, err
	}
	st.SSPath = cstats.SSPath
	st.SSContext = cstats.SSContext
	st.CandidateTime = time.Since(t0)
	estTotal, obsTotal, pruned := 0.0, 0.0, int64(0)
	for i := range pl.Dec.Paths {
		dp := &pl.Dec.Paths[i]
		estTotal += dp.Card
		obsTotal += float64(cstats.Initial[i])
		pruned += int64(cstats.Initial[i] - cstats.Kept[i])
		// Calibration compares against the raw (uncalibrated) estimate, so
		// re-running a cached plan re-asserts the same target instead of
		// compounding a correction on every execution.
		if i < len(pl.RawCards) {
			e.calib.Observe(len(dp.Labels), pl.RawCards[i], float64(cstats.Initial[i]))
		}
	}
	st.Stages = append(st.Stages, StageStats{
		Name: "candidates", Micros: Micros(st.CandidateTime), StartMicros: Micros(t0.Sub(start)),
		EstRows: estTotal, ObsRows: obsTotal, Pruned: pruned, Workers: workers,
		CacheHits: cstats.CacheHits, CacheMisses: cstats.CacheMisses, CacheBypassed: cstats.CacheBypassed,
	})

	// Join-candidates / k-partite graph (Section 5.2.3), pairs fanned out
	// across the same pool.
	t0 = time.Now()
	kg, err := kpartite.Build(ctx, g, q, pl.Dec, sets, pl.Alpha, workers)
	if err != nil {
		return st, err
	}
	st.BuildTime = time.Since(t0)
	st.Stages = append(st.Stages, StageStats{
		Name: "build", Micros: Micros(st.BuildTime), StartMicros: Micros(t0.Sub(start)),
		ObsRows: float64(kg.NumLinks()), Workers: workers,
	})

	// Joint search space reduction (Section 5.2.4), when the plan says so.
	t0 = time.Now()
	ssBefore := kg.SearchSpace()
	before := 0
	for p := 0; p < kg.NumPartitions(); p++ {
		before += kg.AliveCount(p)
	}
	if pl.Reduce {
		rst, err := kg.Reduce(ctx, workers)
		if err != nil {
			return st, err
		}
		st.SSAfterStructure = rst.SSAfterStructure
		st.SSFinal = rst.SSAfterUpperbound
		st.ReductionRounds = rst.Rounds
	} else {
		st.SSAfterStructure = kg.SearchSpace()
		st.SSFinal = st.SSAfterStructure
	}
	after := 0
	for p := 0; p < kg.NumPartitions(); p++ {
		after += kg.AliveCount(p)
	}
	st.ReduceTime = time.Since(t0)
	st.Stages = append(st.Stages, StageStats{
		Name: "reduce", Micros: Micros(st.ReduceTime), StartMicros: Micros(t0.Sub(start)),
		EstRows: ssBefore, ObsRows: st.SSFinal, Pruned: int64(before - after),
	})

	// Adaptive join reorder: rerun the plan's order heuristic with the
	// observed alive counts in place of the histogram estimates. The match
	// set is order-invariant, so this is purely a cost move — and it uses
	// real numbers where planning had only estimates.
	obsCards := make([]float64, kg.NumPartitions())
	for p := range obsCards {
		obsCards[p] = float64(kg.AliveCount(p))
	}
	order := join.OrderWithCards(pl.Dec, pl.OrderMode, obsCards)
	st.ExecOrder = order

	// Final match generation (Section 5.2.5), streamed.
	t0 = time.Now()
	par := opt.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	switch {
	case opt.Order == OrderByProb && par > 1:
		err = e.streamTopKParallel(ctx, g, kg, pl, order, opt, par, yield, &st)
	case opt.Order == OrderByProb:
		err = e.streamTopK(ctx, g, kg, pl, order, opt, yield, &st)
	case par > 1:
		err = e.streamEmitParallel(ctx, g, kg, pl, order, opt, par, yield, &st)
	default:
		err = e.streamEmit(ctx, g, kg, pl, order, opt, yield, &st)
	}
	if err != nil {
		return st, err
	}
	st.JoinTime = time.Since(t0)
	st.Stages = append(st.Stages, StageStats{
		Name: "join", Micros: Micros(st.JoinTime), StartMicros: Micros(t0.Sub(start)),
		EstRows: st.SSFinal, ObsRows: float64(st.Matched),
	})
	st.Total = time.Since(start)
	return st, nil
}

// streamEmit drives the join enumeration straight into yield, stopping the
// enumeration (not just the emission) when Limit is reached or the consumer
// returns false.
func (e *Executor) streamEmit(ctx context.Context, g *entity.Graph, kg *kpartite.Graph, pl *Plan, order []int, opt Exec, yield func(join.Match) bool, st *Stats) error {
	return join.FindMatchesFunc(ctx, g, pl.Query, pl.Dec, kg, order, pl.Alpha, func(m join.Match) bool {
		st.Matched++
		if !yield(m) {
			st.Truncated = true
			return false
		}
		if opt.Limit > 0 && st.Matched >= opt.Limit {
			st.Truncated = true
			return false
		}
		return true
	})
}

// streamTopK runs the join to completion, retaining the Limit best matches
// under probability order in a bounded min-heap, then emits them in
// decreasing probability. With Limit == 0 every match is retained and
// sorted.
func (e *Executor) streamTopK(ctx context.Context, g *entity.Graph, kg *kpartite.Graph, pl *Plan, order []int, opt Exec, yield func(join.Match) bool, st *Stats) error {
	top := newTopK(opt.Limit)
	err := join.FindMatchesFunc(ctx, g, pl.Query, pl.Dec, kg, order, pl.Alpha, func(m join.Match) bool {
		top.offer(m)
		return true
	})
	if err != nil {
		return err
	}
	st.Truncated = top.dropped > 0
	for _, m := range top.sorted() {
		st.Matched++
		if !yield(m) {
			st.Truncated = true
			break
		}
	}
	return nil
}

// streamEmitParallel fans the per-worker match streams into one channel so
// the caller's yield keeps its serial contract: the morsel workers enumerate
// concurrently, the consumer (this goroutine) emits. Limit or a false yield
// closes the stop channel, which unblocks every producer send and stops all
// workers promptly.
func (e *Executor) streamEmitParallel(ctx context.Context, g *entity.Graph, kg *kpartite.Graph, pl *Plan, order []int, opt Exec, par int, yield func(join.Match) bool, st *Stats) error {
	ch := make(chan join.Match, 4*par)
	stop := make(chan struct{})
	done := make(chan struct{})
	var jerr error
	go func() {
		defer close(done)
		jerr = join.FindMatchesParallel(ctx, g, pl.Query, pl.Dec, kg, order, pl.Alpha, par, func(_ int, m join.Match) bool {
			select {
			case ch <- m:
				return true
			case <-stop:
				return false
			}
		})
		close(ch)
	}()
	stopped := false
	for m := range ch {
		st.Matched++
		keep := yield(m)
		if !keep || (opt.Limit > 0 && st.Matched >= opt.Limit) {
			st.Truncated = true
			stopped = true
			close(stop)
			break
		}
	}
	<-done
	if stopped {
		return nil
	}
	// The producers may have finished (and reported no error) before a
	// cancellation that raced with the last buffered matches being drained;
	// re-check so a cancel-from-yield surfaces as ctx.Err() exactly like the
	// sequential path's tail check.
	if jerr == nil {
		jerr = ctx.Err()
	}
	return jerr
}

// streamTopKParallel runs the parallel join to completion with one bounded
// min-heap per worker — no cross-worker synchronization on the hot path —
// then merges the per-worker heaps and emits the global top-Limit in
// decreasing probability. Because the enumeration is exhaustive and
// betterMatch is a total order, the output is byte-identical to the
// sequential OrderByProb stream.
func (e *Executor) streamTopKParallel(ctx context.Context, g *entity.Graph, kg *kpartite.Graph, pl *Plan, order []int, opt Exec, par int, yield func(join.Match) bool, st *Stats) error {
	tops := make([]*topK, par)
	for i := range tops {
		tops[i] = newTopK(opt.Limit)
	}
	err := join.FindMatchesParallel(ctx, g, pl.Query, pl.Dec, kg, order, pl.Alpha, par, func(w int, m join.Match) bool {
		tops[w].offer(m)
		return true
	})
	if err != nil {
		return err
	}
	merged := newTopK(opt.Limit)
	offered := 0
	for _, t := range tops {
		offered += len(t.heap) + t.dropped
		for _, m := range t.heap {
			merged.offer(m)
		}
	}
	st.Truncated = opt.Limit > 0 && offered > opt.Limit
	for _, m := range merged.sorted() {
		st.Matched++
		if !yield(m) {
			st.Truncated = true
			break
		}
	}
	return nil
}

// betterMatch is the probability total order used by OrderByProb: higher
// Pr first, equal probabilities broken by mapping so the ranking — and in
// particular the top-K cut — is fully deterministic.
func betterMatch(a, b join.Match) bool {
	pa, pb := a.Pr(), b.Pr()
	if pa != pb {
		return pa > pb
	}
	return mappingLess(a.Mapping, b.Mapping)
}

func mappingLess(a, b []entity.ID) bool {
	for k := range a {
		if k >= len(b) {
			return false
		}
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// topK retains the best matches under betterMatch. With limit > 0 it is a
// bounded min-heap whose root is the worst retained match (O(limit) memory,
// O(log limit) per offer); with limit == 0 it keeps everything.
type topK struct {
	limit   int
	heap    matchHeap
	dropped int
}

func newTopK(limit int) *topK { return &topK{limit: limit} }

// offer considers one match for the retained set.
func (t *topK) offer(m join.Match) {
	if t.limit <= 0 {
		t.heap = append(t.heap, m)
		return
	}
	if len(t.heap) < t.limit {
		heap.Push(&t.heap, m)
		return
	}
	if betterMatch(m, t.heap[0]) {
		t.heap[0] = m
		heap.Fix(&t.heap, 0)
	}
	t.dropped++
}

// sorted consumes the retained set, returning it best-first.
func (t *topK) sorted() []join.Match {
	ms := []join.Match(t.heap)
	t.heap = nil
	sort.Slice(ms, func(i, j int) bool { return betterMatch(ms[i], ms[j]) })
	return ms
}

// matchHeap is a min-heap under betterMatch: the root is the worst retained
// match, which a better offer evicts.
type matchHeap []join.Match

func (h matchHeap) Len() int           { return len(h) }
func (h matchHeap) Less(i, j int) bool { return betterMatch(h[j], h[i]) }
func (h matchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x any)        { *h = append(*h, x.(join.Match)) }
func (h *matchHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// SortMatches orders matches by mapping for deterministic output, with a
// final probability tie-break so even elementwise-equal mappings (which
// would otherwise fall through to unstable slice order) sort the same way
// across runs.
func SortMatches(ms []join.Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		for k := range a.Mapping {
			if a.Mapping[k] != b.Mapping[k] {
				return a.Mapping[k] < b.Mapping[k]
			}
		}
		return a.Pr() > b.Pr()
	})
}
