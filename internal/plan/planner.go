package plan

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/decompose"
	"repro/internal/join"
	"repro/internal/pathindex"
	"repro/internal/query"
)

// Space constrains the candidate plan space the planner enumerates. The
// paper's ablation baselines pin a single point of the space; the optimized
// strategy opens all of it and lets the cost model choose.
type Space struct {
	Modes  []decompose.Mode
	Reduce []bool
	Orders []join.OrderMode
}

// FullSpace is the whole candidate space: both decomposition modes, the
// reduction on and off, both join-order heuristics. Enumeration order is the
// deterministic tie-break — on equal cost the earlier candidate wins, which
// puts the paper's default pipeline (optimized cover, reduction on,
// heuristic order) first.
func FullSpace() Space {
	return Space{
		Modes:  []decompose.Mode{decompose.ModeOptimized, decompose.ModeRandom},
		Reduce: []bool{true, false},
		Orders: []join.OrderMode{join.OrderHeuristic, join.OrderByCardinality},
	}
}

func (s *Space) normalize() {
	if len(s.Modes) == 0 {
		s.Modes = []decompose.Mode{decompose.ModeOptimized}
	}
	if len(s.Reduce) == 0 {
		s.Reduce = []bool{true}
	}
	if len(s.Orders) == 0 {
		s.Orders = []join.OrderMode{join.OrderHeuristic}
	}
}

// Options configures one planning run.
type Options struct {
	// Alpha is the query probability threshold α.
	Alpha float64
	// MaxLen caps decomposition path length; 0 uses the index's L.
	MaxLen int
	// Strategy is the requested strategy's name, recorded in the tree.
	Strategy string
	// Space is the candidate space (zero value = the paper's default
	// single-point pipeline; use FullSpace for cost-based choice).
	Space Space
	// Seed seeds random decomposition candidates when Rand is nil.
	Seed int64
	// Rand, when set, seeds random decomposition candidates from the
	// caller's stream (the derived seed is still recorded in the plan).
	Rand *rand.Rand
}

// Planner enumerates and costs candidate plans for one index.
type Planner struct {
	ix    pathindex.Reader
	calib *Calibration
}

// NewPlanner returns a planner over the index. calib may be nil (no
// cardinality correction).
func NewPlanner(ix pathindex.Reader, calib *Calibration) *Planner {
	return &Planner{ix: ix, calib: calib}
}

// estimator returns the cardinality estimator planning runs against —
// calibrated when a Calibration is attached.
func (p *Planner) estimator() decompose.CardEstimator {
	if p.calib == nil {
		return p.ix
	}
	return calibratedEstimator{base: p.ix, calib: p.calib}
}

// Plan compiles the cheapest candidate plan for the query. The returned
// plan's Tree lists every other candidate under Alternatives.
func (p *Planner) Plan(ctx context.Context, q *query.Query, opt Options) (*Plan, error) {
	plans, err := p.Enumerate(ctx, q, opt)
	if err != nil {
		return nil, err
	}
	best := plans[0]
	for _, alt := range plans[1:] {
		best.Tree.Alternatives = append(best.Tree.Alternatives, Alternative{
			DecomposeMode: alt.Dec.Mode.String(),
			Reduce:        alt.Reduce,
			JoinOrderMode: orderModeName(alt.OrderMode),
			JoinOrder:     alt.Order,
			Cost:          alt.Tree.Cost.Total,
		})
	}
	return best, nil
}

// Enumerate compiles every candidate plan in the constrained space, sorted
// by estimated cost (ties keep enumeration order, so the paper's default
// pipeline wins them). Every returned plan is executable and produces the
// identical match set — the plan-equivalence property test asserts this —
// so picking any of them is a pure cost decision. A decomposition mode that
// cannot cover the query is skipped as long as another mode can. The path
// enumeration checks ctx, so a request deadline bounds planning.
func (p *Planner) Enumerate(ctx context.Context, q *query.Query, opt Options) ([]*Plan, error) {
	start := time.Now()
	opt.Space.normalize()
	maxLen := opt.MaxLen
	if maxLen <= 0 {
		maxLen = p.ix.MaxLen()
	}
	est := p.estimator()
	cands, err := decompose.Enumerate(ctx, q, est, maxLen, opt.Alpha)
	if err != nil {
		return nil, err
	}
	canonical := q.Format(p.ix.Graph().Alphabet())

	var (
		plans        []*Plan
		decomposeDur time.Duration
		firstErr     error
	)
	for _, mode := range opt.Space.Modes {
		t0 := time.Now()
		dec, err := decompose.Cover(q, cands, decompose.Options{
			MaxLen: maxLen,
			Alpha:  opt.Alpha,
			Mode:   mode,
			Seed:   opt.Seed,
			Rand:   opt.Rand,
		})
		decomposeDur += time.Since(t0)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Everything that depends only on the decomposition — the raw
		// (uncalibrated) cardinalities for calibration feedback and the
		// tree's path nodes — is built once per mode and shared by all its
		// candidates (the trees are immutable, sharing is safe).
		rawCards := make([]float64, len(dec.Paths))
		for i := range dec.Paths {
			rawCards[i] = p.ix.Cardinality(dec.Paths[i].Labels, opt.Alpha)
		}
		pathNodes := p.pathNodes(dec)
		for _, om := range opt.Space.Orders {
			order := join.Order(dec, om)
			for _, reduce := range opt.Space.Reduce {
				cost := costOf(dec, order, reduce)
				plans = append(plans, &Plan{
					Query:     q,
					Dec:       dec,
					Alpha:     opt.Alpha,
					Reduce:    reduce,
					OrderMode: om,
					Order:     order,
					RawCards:  rawCards,
					Tree:      p.tree(canonical, opt, dec, pathNodes, om, order, reduce, cost),
				})
			}
		}
	}
	if len(plans) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("plan: empty candidate space")
	}
	sort.SliceStable(plans, func(a, b int) bool {
		return plans[a].Tree.Cost.Total < plans[b].Tree.Cost.Total
	})
	planDur := time.Since(start)
	for _, pl := range plans {
		pl.PlanTime = planDur
		pl.DecomposeTime = decomposeDur
	}
	return plans, nil
}

// pathNodes resolves one decomposition's paths into tree nodes (label
// names, estimated cardinalities) — shared by every candidate tree of that
// decomposition.
func (p *Planner) pathNodes(dec *decompose.Decomposition) []PathNode {
	alphabet := p.ix.Graph().Alphabet()
	nodes := make([]PathNode, 0, len(dec.Paths))
	for i := range dec.Paths {
		dp := &dec.Paths[i]
		node := PathNode{ID: dp.ID, EstCard: dp.Card, Cost: dp.Cost}
		for _, n := range dp.Nodes {
			node.QueryNodes = append(node.QueryNodes, int(n))
		}
		for _, l := range dp.Labels {
			node.Labels = append(node.Labels, alphabet.Name(l))
		}
		nodes = append(nodes, node)
	}
	return nodes
}

// tree builds the serializable plan tree for one candidate.
func (p *Planner) tree(canonical string, opt Options, dec *decompose.Decomposition, pathNodes []PathNode, om join.OrderMode, order []int, reduce bool, cost Cost) *Tree {
	return &Tree{
		Query:         canonical,
		Alpha:         opt.Alpha,
		Strategy:      opt.Strategy,
		DecomposeMode: dec.Mode.String(),
		DecomposeSeed: dec.Seed,
		Reduce:        reduce,
		JoinOrderMode: orderModeName(om),
		JoinOrder:     order,
		AdaptiveJoin:  true,
		Paths:         pathNodes,
		Cost:          cost,
	}
}

func orderModeName(om join.OrderMode) string {
	if om == join.OrderByCardinality {
		return "cardinality"
	}
	return "heuristic"
}

// Cost model constants, in abstract row-visit units. They only need to rank
// candidate plans of the same query sanely, not predict wall clock:
//
//   - joinSelectivity is the assumed survival rate of one join predicate —
//     each equality between a new path's position and the bound prefix cuts
//     the cross product by this factor.
//   - reductionSurvival is the assumed fraction of candidates alive after
//     the joint search-space reduction; reductionRounds × the link volume
//     is what the reduction itself costs.
const (
	joinSelectivity   = 0.05
	reductionSurvival = 0.3
	reductionRounds   = 3
)

// costOf estimates the staged execution cost of one candidate plan:
// candidate retrieval is linear in the estimated cardinalities, the
// k-partite build linear in each joined pair (hash build + probe), the
// reduction proportional to the link volume, and the join a left-deep
// running product over the chosen order with per-predicate selectivity.
// Reduction shrinks the join's inputs (reductionSurvival) at the price of
// its own pass — which is exactly the probabilistic-pruning trade-off the
// planner decides (cf. Yuan et al.): for tiny search spaces the reduction
// costs more than it saves and the planner turns it off.
func costOf(dec *decompose.Decomposition, order []int, reduce bool) Cost {
	k := len(dec.Paths)
	card := func(i int) float64 {
		c := dec.Paths[i].Card
		if c < 1 {
			return 1
		}
		return c
	}
	var c Cost
	for i := 0; i < k; i++ {
		c.Candidates += card(i)
	}
	// Deterministic pair iteration: map order must not leak into float
	// summation order.
	pairs := make([][2]int, 0, len(dec.Joins))
	for pair := range dec.Joins {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	linkVolume := 0.0
	for _, pair := range pairs {
		ca, cb := card(pair[0]), card(pair[1])
		c.Build += ca + cb
		linkVolume += math.Min(ca, cb)
	}
	survival := 1.0
	if reduce {
		c.Reduce = reductionRounds * linkVolume
		survival = reductionSurvival
	}
	// Left-deep running product over the join order: every step multiplies
	// in the (post-reduction) candidate count and applies the selectivity
	// of each predicate binding it to the prefix.
	rows := 0.0
	for s, b := range order {
		preds := 0
		for t := 0; t < s; t++ {
			preds += len(dec.Preds(b, order[t]))
		}
		stepCard := card(b) * survival
		if s == 0 {
			rows = stepCard
		} else {
			rows *= stepCard * math.Pow(joinSelectivity, float64(preds))
		}
		c.Join += rows
	}
	c.Total = c.Candidates + c.Build + c.Reduce + c.Join
	return c
}
