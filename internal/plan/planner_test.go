package plan

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/decompose"
	"repro/internal/fixtures"
	"repro/internal/join"
	"repro/internal/pathindex"
	"repro/internal/query"
)

func buildIx(t testing.TB) (*pathindex.Index, *query.Query) {
	t.Helper()
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: 2, Beta: 0.02, Gamma: 0.1, Dir: filepath.Join(t.TempDir(), "ix"),
	})
	if err != nil {
		t.Fatalf("pathindex.Build: %v", err)
	}
	t.Cleanup(func() { ix.Close() })

	alpha := g.Alphabet()
	q := query.New()
	q1 := q.AddNode(alpha.ID("r"))
	q2 := q.AddNode(alpha.ID("a"))
	q3 := q.AddNode(alpha.ID("i"))
	if err := q.AddEdge(q1, q2); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(q2, q3); err != nil {
		t.Fatal(err)
	}
	return ix, q
}

// TestEnumerateFullSpace checks the planner enumerates the whole candidate
// space, sorted by cost with the tree carrying the rejected alternatives.
func TestEnumerateFullSpace(t *testing.T) {
	ix, q := buildIx(t)
	p := NewPlanner(ix, nil)
	plans, err := p.Enumerate(context.Background(), q, Options{Alpha: 0.05, Strategy: "optimized", Space: FullSpace()})
	if err != nil {
		t.Fatal(err)
	}
	// 2 modes × 2 orders × 2 reduce settings. Both modes must have covered
	// this query (it is a simple path).
	if len(plans) != 8 {
		t.Fatalf("got %d candidate plans, want 8", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Tree.Cost.Total < plans[i-1].Tree.Cost.Total {
			t.Fatalf("plans not sorted by cost: %v after %v",
				plans[i].Tree.Cost.Total, plans[i-1].Tree.Cost.Total)
		}
	}
	best, err := p.Plan(context.Background(), q, Options{Alpha: 0.05, Strategy: "optimized", Space: FullSpace()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(best.Tree.Alternatives); got != 7 {
		t.Fatalf("best plan lists %d alternatives, want 7", got)
	}
	if best.Tree.Cost.Total != plans[0].Tree.Cost.Total {
		t.Fatalf("Plan cost %v != cheapest enumerated %v", best.Tree.Cost.Total, plans[0].Tree.Cost.Total)
	}
	for _, alt := range best.Tree.Alternatives {
		if alt.Cost < best.Tree.Cost.Total {
			t.Fatalf("alternative cheaper (%v) than the chosen plan (%v)", alt.Cost, best.Tree.Cost.Total)
		}
	}
}

// TestPlanDeterminism: identical inputs must yield identical plans (the
// plan cache and the explain-equals-execution contract rely on it).
func TestPlanDeterminism(t *testing.T) {
	ix, q := buildIx(t)
	p := NewPlanner(ix, nil)
	opt := Options{Alpha: 0.05, Strategy: "optimized", Space: FullSpace()}
	a, err := p.Plan(context.Background(), q, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Plan(context.Background(), q, opt)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Tree)
	jb, _ := json.Marshal(b.Tree)
	if string(ja) != string(jb) {
		t.Fatalf("plans differ across identical runs:\n%s\nvs\n%s", ja, jb)
	}
}

// TestRandomSeedRecordedAndReproducible: the seed the random cover drew
// must land in the plan tree, and replaying it must reproduce the
// decomposition exactly — the EXPLAIN/ablation reproducibility fix.
func TestRandomSeedRecordedAndReproducible(t *testing.T) {
	ix, q := buildIx(t)
	p := NewPlanner(ix, nil)
	space := Space{
		Modes:  []decompose.Mode{decompose.ModeRandom},
		Reduce: []bool{true},
		Orders: []join.OrderMode{join.OrderByCardinality},
	}
	// Seed derived from a caller-owned stream: still recorded.
	pl, err := p.Plan(context.Background(), q, Options{
		Alpha: 0.05, Strategy: "random-decomp", Space: space,
		Rand: rand.New(rand.NewSource(77)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Tree.DecomposeSeed == 0 {
		t.Fatal("random decomposition did not record its seed")
	}
	if pl.Dec.Seed != pl.Tree.DecomposeSeed {
		t.Fatalf("tree seed %d != decomposition seed %d", pl.Tree.DecomposeSeed, pl.Dec.Seed)
	}
	// Replaying with Options.Seed = the recorded value reproduces the
	// decomposition path for path.
	replay, err := p.Plan(context.Background(), q, Options{
		Alpha: 0.05, Strategy: "random-decomp", Space: space,
		Seed: pl.Tree.DecomposeSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Dec.Seed != pl.Dec.Seed {
		t.Fatalf("replay seed %d != original %d", replay.Dec.Seed, pl.Dec.Seed)
	}
	if len(replay.Dec.Paths) != len(pl.Dec.Paths) {
		t.Fatalf("replay produced %d paths, original %d", len(replay.Dec.Paths), len(pl.Dec.Paths))
	}
	for i := range pl.Dec.Paths {
		a, b := pl.Dec.Paths[i].Nodes, replay.Dec.Paths[i].Nodes
		if len(a) != len(b) {
			t.Fatalf("path %d: %v vs %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("path %d: %v vs %v", i, a, b)
			}
		}
	}
}

// TestExecutorRunRecordsStages: a run must report the executed stage list
// with observed rows, the plan tree it ran, and both join orders.
func TestExecutorRunRecordsStages(t *testing.T) {
	ix, q := buildIx(t)
	p := NewPlanner(ix, nil)
	pl, err := p.Plan(context.Background(), q, Options{Alpha: 0.05, Strategy: "optimized", Space: FullSpace()})
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(ix, nil)
	n := 0
	st, err := ex.Run(context.Background(), pl, Exec{Parallelism: 1}, func(join.Match) bool { n++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan != pl.Tree {
		t.Fatal("Stats.Plan is not the executed plan's tree")
	}
	want := []string{"candidates", "build", "reduce", "join"}
	if len(st.Stages) != len(want) {
		t.Fatalf("stages %v, want names %v", st.Stages, want)
	}
	for i, name := range want {
		if st.Stages[i].Name != name {
			t.Fatalf("stage %d = %q, want %q", i, st.Stages[i].Name, name)
		}
	}
	if len(st.PlannedOrder) != len(pl.Order) || len(st.ExecOrder) != len(pl.Order) {
		t.Fatalf("orders not recorded: planned %v exec %v", st.PlannedOrder, st.ExecOrder)
	}
	if st.Matched != n {
		t.Fatalf("Matched %d != yielded %d", st.Matched, n)
	}
	if st.Stages[3].ObsRows != float64(n) {
		t.Fatalf("join stage observed %v rows, want %d", st.Stages[3].ObsRows, n)
	}
}

// TestCalibrationFeedback: executing with a calibration attached must fold
// the observed/estimated ratio into the factors, and the planner must apply
// them to later estimates.
func TestCalibrationFeedback(t *testing.T) {
	ix, q := buildIx(t)
	calib := NewCalibration()
	p := NewPlanner(ix, calib)
	pl, err := p.Plan(context.Background(), q, Options{Alpha: 0.05, Strategy: "optimized", Space: FullSpace()})
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(ix, calib)
	if _, err := ex.Run(context.Background(), pl, Exec{Parallelism: 1}, func(join.Match) bool { return true }); err != nil {
		t.Fatal(err)
	}
	changed := false
	for l := 1; l <= calibMaxLen; l++ {
		if calib.Factor(l) != 1 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("execution fed no observations back into the calibration")
	}
	// A later plan's estimates go through the learned factors: calibrated
	// and uncalibrated planners must disagree on at least one estimate
	// unless every factor round-tripped to exactly 1.
	cal, err := p.Plan(context.Background(), q, Options{Alpha: 0.05, Strategy: "optimized", Space: FullSpace()})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := NewPlanner(ix, nil).Plan(context.Background(), q, Options{Alpha: 0.05, Strategy: "optimized", Space: FullSpace()})
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := range cal.Tree.Paths {
		if cal.Tree.Paths[i].EstCard != raw.Tree.Paths[i].EstCard {
			differs = true
		}
	}
	if !differs {
		t.Fatal("calibration had no effect on later estimates")
	}
}

// TestCalibrationConvergesOnCachedPlanReexecution: re-executing the same
// cached plan re-asserts the same observation; the factor must converge to
// the implied target, not compound toward the clamp (the server re-executes
// one popular cached plan arbitrarily many times).
func TestCalibrationConvergesOnCachedPlanReexecution(t *testing.T) {
	c := NewCalibration()
	// Histogram said 100, index returns 200 → target factor 2.
	for i := 0; i < 500; i++ {
		c.Observe(3, 100, 200)
	}
	if f := c.Factor(3); math.Abs(f-2) > 1e-6 {
		t.Fatalf("factor after 500 identical observations = %v, want convergence to 2", f)
	}
	// And an execution loop through the real executor: factors must be
	// identical after the 2nd and the 20th run of the same plan.
	ix, q := buildIx(t)
	calib := NewCalibration()
	pl, err := NewPlanner(ix, calib).Plan(context.Background(), q, Options{Alpha: 0.05, Strategy: "optimized", Space: FullSpace()})
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(ix, calib)
	run := func() {
		if _, err := ex.Run(context.Background(), pl, Exec{Parallelism: 1}, func(join.Match) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		run()
	}
	snapshot := make([]float64, calibMaxLen+1)
	for l := range snapshot {
		snapshot[l] = calib.Factor(l)
	}
	// Another 170 re-executions of the same cached plan: the factors must
	// have converged (the old residual-compounding update would still be
	// marching toward the 100x clamp here).
	for i := 0; i < 170; i++ {
		run()
	}
	for l := range snapshot {
		f := calib.Factor(l)
		if rel := math.Abs(f-snapshot[l]) / snapshot[l]; rel > 1e-2 {
			t.Fatalf("factor[len=%d] still drifting across cached re-executions: %v → %v", l, snapshot[l], f)
		}
		if f >= calibClamp || f <= 1/calibClamp {
			t.Fatalf("factor[len=%d] = %v rode to the clamp", l, f)
		}
	}
}

func TestCalibrationObserveClampAndConcurrency(t *testing.T) {
	c := NewCalibration()
	for i := 0; i < 1000; i++ {
		c.Observe(3, 1, 1e12) // absurd underestimate, repeatedly
	}
	if f := c.Factor(3); f > calibClamp {
		t.Fatalf("factor %v escaped the clamp %v", f, calibClamp)
	}
	c.Observe(0, 0, 10) // zero estimate must be ignored, not divide
	c.Observe(2, math.NaN(), 10)
	if f := c.Factor(2); f != 1 {
		t.Fatalf("NaN observation moved the factor to %v", f)
	}
	var nilCal *Calibration
	nilCal.Observe(1, 1, 1) // nil receiver is a no-op
	if nilCal.Factor(1) != 1 {
		t.Fatal("nil calibration factor != 1")
	}
}

// TestCostModelPrefersReductionWhenJoinDominates sanity-checks the cost
// model's probabilistic-pruning trade-off on synthetic numbers.
func TestCostModelPrefersReductionWhenJoinDominates(t *testing.T) {
	ix, q := buildIx(t)
	p := NewPlanner(ix, nil)
	plans, err := p.Enumerate(context.Background(), q, Options{Alpha: 0.05, Strategy: "optimized", Space: FullSpace()})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range plans {
		c := pl.Tree.Cost
		if got := c.Candidates + c.Build + c.Reduce + c.Join; math.Abs(got-c.Total) > 1e-9 {
			t.Fatalf("cost breakdown %v does not sum to total %v", c, c.Total)
		}
		if !pl.Reduce && c.Reduce != 0 {
			t.Fatalf("no-reduce plan charges reduction cost %v", c.Reduce)
		}
	}
}
