// Package plan turns the paper's fixed online pipeline (Section 5.2) into a
// planner-driven engine. The Planner enumerates candidate plans —
// decomposition mode × probe-reduction on/off × join-order heuristic —
// against a cost model fed by the offline histograms (optionally corrected
// by a per-index Calibration), and compiles the cheapest into an explicit
// Plan value. The Executor runs a Plan in stages (candidate retrieval →
// k-partite build → reduction → join), records per-stage timings, estimated
// vs. observed cardinalities, and prune counts in Stats, adaptively
// re-orders the join on the observed candidate counts (the result set is
// invariant under join order — only cost changes), and feeds the
// observed/estimated ratios back into the calibration.
//
// A Plan carries two faces: the compiled artifacts the Executor needs
// (query, decomposition, resolved knobs) and a JSON-serializable Tree that
// EXPLAIN surfaces end-to-end (core.Explain, POST /explain, pegquery
// -explain) and that Stats reports back after execution. Plans are immutable
// once built, so a server-side plan cache can hand one Plan to any number of
// concurrent executions.
package plan

import (
	"fmt"
	"time"

	"repro/internal/decompose"
	"repro/internal/join"
	"repro/internal/query"
)

// ResultOrder selects how an execution emits matches.
type ResultOrder int

const (
	// OrderEmit (default) emits matches in the order the join enumeration
	// discovers them: lowest latency to the first match, and with Limit > 0
	// the enumeration stops as soon as Limit matches were emitted.
	OrderEmit ResultOrder = iota
	// OrderByProb emits matches in decreasing probability (ties broken by
	// mapping). The join must run to completion before the first emission,
	// but with Limit > 0 only the top-Limit matches are retained in a
	// bounded min-heap, so memory stays O(Limit) regardless of the match
	// count.
	OrderByProb
)

// String implements fmt.Stringer.
func (o ResultOrder) String() string {
	switch o {
	case OrderEmit:
		return "emit"
	case OrderByProb:
		return "prob"
	}
	return fmt.Sprintf("ResultOrder(%d)", int(o))
}

// Plan is one compiled execution plan: the decomposition and resolved knobs
// the Executor runs, plus the serializable Tree EXPLAIN shows. Immutable
// after planning; safe to execute concurrently and to reuse from a cache.
type Plan struct {
	// Query is the compiled query the plan answers.
	Query *query.Query
	// Dec is the chosen decomposition (paths, join predicates, covers).
	Dec *decompose.Decomposition
	// Alpha is the probability threshold the plan was built for.
	Alpha float64
	// Reduce selects the joint search-space reduction stage.
	Reduce bool
	// OrderMode is the join-order heuristic; Order is the planned join
	// order under the estimated cardinalities. The executor recomputes the
	// order from observed counts at run time (Stats.ExecOrder) — the plan
	// records what the estimates said.
	OrderMode join.OrderMode
	Order     []int
	// RawCards holds the UNCALIBRATED histogram cardinality estimate per
	// decomposition path (Dec.Paths order). Dec.Paths[i].Card is the
	// calibrated number planning ranked with; the raw value is what
	// calibration feedback compares observations against, so re-executing
	// a cached plan converges the factor instead of compounding it.
	RawCards []float64
	// Tree is the JSON-serializable plan tree.
	Tree *Tree
	// PlanTime is the planning wall clock (enumeration, covers, costing);
	// DecomposeTime is the share spent in decomposition covers. Copied into
	// Stats by fresh plan-and-run calls and left zero by cached-plan
	// executions — which is exactly the work a plan cache hit skips.
	PlanTime      time.Duration
	DecomposeTime time.Duration
}

// Tree is the JSON-serializable plan tree: what EXPLAIN prints, what
// POST /explain returns, and what Stats.Plan reports after execution.
type Tree struct {
	// Query is the canonical query text (parse → Format).
	Query string `json:"query"`
	// Alpha is the probability threshold α.
	Alpha float64 `json:"alpha"`
	// Strategy is the requested matching strategy name.
	Strategy string `json:"strategy"`
	// DecomposeMode is "optimized" (SET COVER) or "random" (baseline).
	DecomposeMode string `json:"decompose_mode"`
	// DecomposeSeed is the seed the random cover drew (random mode only);
	// replaying with this seed reproduces the decomposition exactly.
	DecomposeSeed int64 `json:"decompose_seed,omitempty"`
	// Reduce reports whether the joint search-space reduction stage runs.
	Reduce bool `json:"reduce"`
	// JoinOrderMode is "heuristic" (three-tier rule) or "cardinality".
	JoinOrderMode string `json:"join_order_mode"`
	// JoinOrder is the planned partition order under estimated counts.
	JoinOrder []int `json:"join_order"`
	// AdaptiveJoin reports that the executor re-orders the join from
	// observed candidate counts after retrieval (results are unaffected).
	AdaptiveJoin bool `json:"adaptive_join_reorder"`
	// Paths describes the decomposition, one node per path.
	Paths []PathNode `json:"paths"`
	// Cost is the estimated cost breakdown of the chosen plan.
	Cost Cost `json:"cost"`
	// Alternatives lists the rejected candidate plans, cheapest first.
	Alternatives []Alternative `json:"alternatives,omitempty"`
}

// PathNode describes one decomposition path in a plan tree.
type PathNode struct {
	// ID is the partition index.
	ID int `json:"id"`
	// QueryNodes are the query node positions along the path.
	QueryNodes []int `json:"query_nodes"`
	// Labels is the label sequence, resolved to names.
	Labels []string `json:"labels"`
	// EstCard is the (calibrated) estimated candidate cardinality.
	EstCard float64 `json:"est_card"`
	// Cost is the path's C(P, α) = Card / (degree · density).
	Cost float64 `json:"cost"`
}

// Cost is the cost model's estimate for one candidate plan, in abstract
// row-visit units (comparable across candidates, not wall-clock).
type Cost struct {
	Candidates float64 `json:"candidates"`
	Build      float64 `json:"build"`
	Reduce     float64 `json:"reduce"`
	Join       float64 `json:"join"`
	Total      float64 `json:"total"`
}

// Alternative summarizes one rejected candidate plan.
type Alternative struct {
	DecomposeMode string  `json:"decompose_mode"`
	Reduce        bool    `json:"reduce"`
	JoinOrderMode string  `json:"join_order_mode"`
	JoinOrder     []int   `json:"join_order"`
	Cost          float64 `json:"cost"`
}

// StageStats is one executed stage's record: wall clock plus the estimated
// vs. observed row counts and how much the stage pruned.
type StageStats struct {
	// Name is "plan", "candidates", "build", "reduce", or "join".
	Name string `json:"name"`
	// Micros is the stage wall clock in microseconds, with nanosecond
	// precision preserved in the fraction: a 300ns stage reports 0.3, not 0.
	// (Truncating to whole microseconds made every plan-cache-hit planning
	// time — and most fast stages — invisible.)
	Micros float64 `json:"us"`
	// StartMicros is the stage's start offset from the beginning of the
	// run, in the same float-microsecond unit. It lets a caller that
	// recorded the run's wall-clock start reconstruct exact stage
	// timelines — the serving tier converts these rows into trace spans.
	StartMicros float64 `json:"start_us,omitempty"`
	// EstRows / ObsRows are the estimated and observed cardinalities at the
	// stage's granularity (candidate totals, search-space sizes, matches).
	EstRows float64 `json:"est_rows,omitempty"`
	ObsRows float64 `json:"obs_rows,omitempty"`
	// Pruned counts rows the stage discarded.
	Pruned int64 `json:"pruned,omitempty"`
	// Workers is the parallelism the stage actually ran with (omitted for
	// inherently sequential stages).
	Workers int `json:"workers,omitempty"`
	// CacheHits/CacheMisses/CacheBypassed report candidate-cache outcomes
	// for the candidates stage (absent when no cache is configured).
	CacheHits     int `json:"cache_hits,omitempty"`
	CacheMisses   int `json:"cache_misses,omitempty"`
	CacheBypassed int `json:"cache_bypassed,omitempty"`
}

// Stats reports per-stage behaviour of one match run.
type Stats struct {
	// NumPaths is the decomposition size k.
	NumPaths int
	// SSPath, SSContext, SSAfterStructure, SSFinal are the search space
	// sizes (product of candidate list lengths) after index lookup, after
	// context pruning, after reduction by structure, and after the full
	// reduction — the progression of Figure 7(e).
	SSPath           float64
	SSContext        float64
	SSAfterStructure float64
	SSFinal          float64
	// ReductionRounds counts upperbound message-passing rounds.
	ReductionRounds int
	// Matched counts the matches emitted by this run.
	Matched int
	// Truncated reports that the emitted set may be incomplete: the
	// enumeration was stopped by Limit or by the consumer before it was
	// exhausted (OrderEmit), or matches beyond the top-Limit were
	// discarded (OrderByProb). More matches above α may exist.
	Truncated bool
	// PlanTime is the planner overhead (candidate enumeration, covers,
	// costing). Zero when the run executed a cached plan — planning was
	// skipped entirely.
	PlanTime time.Duration
	// Per-stage wall clock.
	DecomposeTime time.Duration
	CandidateTime time.Duration
	BuildTime     time.Duration
	ReduceTime    time.Duration
	JoinTime      time.Duration
	Total         time.Duration
	// Plan is the executed plan's tree — the same tree EXPLAIN returns for
	// the query (and, through the server's plan cache, the same value).
	Plan *Tree
	// Stages records the executed stages in order with timings, estimated
	// vs. observed cardinalities, and prune counts.
	Stages []StageStats
	// PlannedOrder is the join order the plan predicted from estimated
	// cardinalities; ExecOrder is the order actually executed after the
	// adaptive reorder on observed candidate counts. They differ exactly
	// when the histograms misranked the partitions.
	PlannedOrder []int
	ExecOrder    []int
}

// Micros converts a duration to float microseconds, keeping nanosecond
// precision — the stage-row and JSON-stats unit.
func Micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
