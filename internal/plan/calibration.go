package plan

import (
	"math"
	"sync/atomic"

	"repro/internal/decompose"
	"repro/internal/prob"
)

// calibMaxLen bounds the per-path-length factor table; longer paths share
// the last bucket. Indexed paths are short (L is small), so this is ample.
const calibMaxLen = 16

// Calibration is a per-index multiplicative correction to the offline
// histograms' cardinality estimates, learned from execution feedback: after
// candidate retrieval the executor reports (estimated, observed) per path,
// and the planner multiplies future estimates for that path length by the
// learned factor. One Calibration belongs to one index generation — swap the
// index, start a fresh Calibration (estimates for the new data start
// uncorrected, like the plan cache starts cold).
//
// Factors are stored as float bits in atomics, so concurrent executions
// update and read without locks; updates are a clamped exponentially
// weighted blend in log space, which keeps one outlier query from slamming
// the factor.
type Calibration struct {
	factors [calibMaxLen + 1]atomic.Uint64 // Float64bits; 0 = unset (1.0)
}

// NewCalibration returns an identity calibration (all factors 1).
func NewCalibration() *Calibration { return &Calibration{} }

// calibWeight is the EWMA blend weight for one observation, and calibClamp
// bounds the factor so a run of misestimates cannot push planning into
// nonsense territory.
const (
	calibWeight = 0.25
	calibClamp  = 100.0
)

func (c *Calibration) bucket(pathLen int) int {
	if pathLen < 0 {
		pathLen = 0
	}
	if pathLen > calibMaxLen {
		pathLen = calibMaxLen
	}
	return pathLen
}

// Factor returns the current correction for label sequences of the given
// length (number of nodes on the path). 1 when nothing was observed yet.
func (c *Calibration) Factor(pathLen int) float64 {
	if c == nil {
		return 1
	}
	bits := c.factors[c.bucket(pathLen)].Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// Observe folds one (estimated, observed) cardinality pair into the factor
// for the given path length. rawEst must be the UNCALIBRATED histogram
// estimate (the executor reads it from Plan.RawCards): the update blends
// the current factor geometrically toward the directly implied target
// observed/rawEst, so its fixed point is the target itself. Re-observing
// the same (rawEst, observed) pair — which is exactly what re-executing a
// cached plan does — converges instead of compounding: a residual-based
// update against a frozen estimate would multiply the same correction in
// on every run and ride the factor to the clamp. Zero or invalid inputs
// are ignored.
func (c *Calibration) Observe(pathLen int, rawEst, obs float64) {
	if c == nil || rawEst <= 0 || obs < 0 || math.IsNaN(rawEst) || math.IsNaN(obs) {
		return
	}
	// Observed zero still carries signal (the estimate was too high); floor
	// it so the log-space blend stays finite.
	if obs < 0.5 {
		obs = 0.5
	}
	target := obs / rawEst
	if target > calibClamp {
		target = calibClamp
	}
	if target < 1/calibClamp {
		target = 1 / calibClamp
	}
	slot := &c.factors[c.bucket(pathLen)]
	for {
		oldBits := slot.Load()
		old := 1.0
		if oldBits != 0 {
			old = math.Float64frombits(oldBits)
		}
		// Geometric EWMA: next = old^(1-w) · target^w. Idempotent at the
		// target, smooth across disagreeing queries of the same length.
		next := old * math.Pow(target/old, calibWeight)
		if next > calibClamp {
			next = calibClamp
		}
		if next < 1/calibClamp {
			next = 1 / calibClamp
		}
		if slot.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return
		}
	}
}

// Snapshot returns the per-path-length factors that have received at least
// one observation, keyed by path length — the observability export (a
// factor far from 1 means the offline histograms systematically mis-rank
// that path length on the served data).
func (c *Calibration) Snapshot() map[int]float64 {
	if c == nil {
		return nil
	}
	out := make(map[int]float64)
	for i := range c.factors {
		if bits := c.factors[i].Load(); bits != 0 {
			out[i] = math.Float64frombits(bits)
		}
	}
	return out
}

// calibratedEstimator corrects a base estimator with the learned factors, so
// decomposition covers and plan costing both see the corrected numbers.
type calibratedEstimator struct {
	base  decompose.CardEstimator
	calib *Calibration
}

func (e calibratedEstimator) Cardinality(X []prob.LabelID, alpha float64) float64 {
	card := e.base.Cardinality(X, alpha)
	return card * e.calib.Factor(len(X))
}
