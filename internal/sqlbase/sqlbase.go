// Package sqlbase is the stand-in for the paper's MySQL baseline (Section
// 6.2.1): a miniature relational engine that evaluates subgraph queries the
// way a direct SQL translation would — a nested-loop join over a
// NodeLabels(node, label, prob) table (with a hash index on label) and an
// Edges(a, b, prob) table (with a hash index on the key), applying the
// probability threshold and identity-legality predicates only on complete
// join rows. There is no probabilistic pruning, no path index, and no
// search-space reduction, which is exactly why it explodes combinatorially
// on larger graphs; benchmarks run it under a context deadline, mirroring
// the paper's 15-minute cap.
package sqlbase

import (
	"context"
	"sort"

	"repro/internal/entity"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/refgraph"
)

// DB holds the relational projection of a PEG: the label and edge "tables"
// with their hash indexes.
type DB struct {
	g *entity.Graph
	// byLabel is the hash index on NodeLabels.label: the matching node rows.
	byLabel [][]entity.ID
}

// NewDB loads the PEG into relational tables.
func NewDB(g *entity.Graph) *DB {
	db := &DB{g: g, byLabel: make([][]entity.ID, g.NumLabels())}
	for v := 0; v < g.NumNodes(); v++ {
		for _, l := range g.Labels(entity.ID(v)) {
			db.byLabel[l] = append(db.byLabel[l], entity.ID(v))
		}
	}
	return db
}

// Query evaluates the subgraph query as a nested-loop join in query-node
// order (the plan a naive SQL translation produces), filtering complete rows
// by probability and identity legality. It honors ctx cancellation so
// callers can impose the evaluation time cap.
func (db *DB) Query(ctx context.Context, q *query.Query, alpha float64) ([]join.Match, error) {
	n := q.NumNodes()
	mapping := make([]entity.ID, n)
	var out []join.Match
	var steps int

	var rec func(i int) error
	rec = func(i int) error {
		steps++
		if steps%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if i == n {
			if m, ok := db.finalRow(q, mapping, alpha); ok {
				out = append(out, m)
			}
			return nil
		}
		qn := query.NodeID(i)
		for _, v := range db.byLabel[q.Label(qn)] {
			// Join predicates to previously bound relations: edge existence.
			ok := true
			for _, nb := range q.Neighbors(qn) {
				if nb < qn {
					if _, has := db.g.EdgeBetween(v, mapping[nb]); !has {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			// SQL DISTINCT on node ids (injectivity).
			for j := 0; j < i; j++ {
				if mapping[j] == v {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[i] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Mapping, out[j].Mapping
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out, nil
}

// finalRow applies the WHERE clause a SQL translation evaluates on the
// complete row: the probability product and the reference-disjointness
// (identity legality) predicates.
func (db *DB) finalRow(q *query.Query, mapping []entity.ID, alpha float64) (join.Match, bool) {
	seen := make(map[refgraph.RefID]struct{}, len(mapping)*2)
	for _, v := range mapping {
		for _, r := range db.g.Refs(v) {
			if _, dup := seen[r]; dup {
				return join.Match{}, false
			}
			seen[r] = struct{}{}
		}
	}
	prle := 1.0
	nodes := make([]entity.ID, len(mapping))
	for i, v := range mapping {
		nodes[i] = v
		prle *= db.g.PrLabel(v, q.Label(query.NodeID(i)))
		if prle == 0 {
			return join.Match{}, false
		}
	}
	for _, e := range q.Edges() {
		ep, ok := db.g.EdgeBetween(mapping[e[0]], mapping[e[1]])
		if !ok {
			return join.Match{}, false
		}
		prle *= ep.Prob(q.Label(e[0]), q.Label(e[1]))
		if prle == 0 {
			return join.Match{}, false
		}
	}
	prn := db.g.Prn(nodes)
	if prle*prn+1e-12 < alpha {
		return join.Match{}, false
	}
	cp := make([]entity.ID, len(mapping))
	copy(cp, mapping)
	return join.Match{Mapping: cp, Prle: prle, Prn: prn}, true
}
