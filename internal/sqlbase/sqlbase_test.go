package sqlbase

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/naive"
	"repro/internal/query"
)

func TestMotivatingExample(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	alpha := g.Alphabet()
	q := query.New()
	q1 := q.AddNode(alpha.ID("r"))
	q2 := q.AddNode(alpha.ID("a"))
	q3 := q.AddNode(alpha.ID("i"))
	if err := q.AddEdge(q1, q2); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(q2, q3); err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	ms, err := db.Query(context.Background(), q, fixtures.MotivatingAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Mapping[0] != fixtures.S34 {
		t.Fatalf("matches = %+v", ms)
	}
	if math.Abs(ms[0].Pr()-0.2025) > 1e-9 {
		t.Errorf("Pr = %v", ms[0].Pr())
	}
}

// The relational engine must agree with the brute-force matcher on random
// graphs (it is another, slower, oracle).
func TestAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		d, err := gen.Synthetic(gen.SynthOptions{Refs: 40, Labels: 3, Groups: 3, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		q, err := gen.RandomQuery(rng, 3, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := naive.Matches(context.Background(), g, q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		db := NewDB(g)
		got, err := db.Query(context.Background(), q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: sqlbase %d matches, naive %d", trial, len(got), len(want))
		}
		for i := range got {
			for j := range got[i].Mapping {
				if got[i].Mapping[j] != want[i].Mapping[j] {
					t.Fatalf("trial %d: match %d differs", trial, i)
				}
			}
			if math.Abs(got[i].Pr()-want[i].Pr()) > 1e-9 {
				t.Fatalf("trial %d: probability differs", trial)
			}
		}
	}
}

func TestTimeout(t *testing.T) {
	d, err := gen.Synthetic(gen.SynthOptions{Refs: 2000, Labels: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := gen.RandomQuery(rand.New(rand.NewSource(2)), 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = db.Query(ctx, q, 0.9)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unexpected error: %v", err)
	}
	// Either it finished very fast or it was cut off; both are acceptable,
	// but a cut-off run must report the deadline error.
}
