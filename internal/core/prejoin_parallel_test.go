package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
)

// TestPreJoinParallelEquivalence is the tentpole's end-to-end determinism
// property: varying Workers (per-path candidate fan-out, parallel k-partite
// build, parallel reduction) — with and without a candidate cache — leaves
// the collected match set bitwise-identical (mapping, Prle, Prn, order) to
// the all-sequential run, across both decomposition strategies.
func TestPreJoinParallelEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	strategies := []core.Strategy{core.StrategyOptimized, core.StrategyRandomDecomp}
	for _, seed := range seeds {
		d, err := gen.Synthetic(gen.SynthOptions{
			Refs: 30, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
			Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ix := buildIx(t, g, 2, 0.05)

		rng := rand.New(rand.NewSource(seed * 727))
		for qi := 0; qi < 3; qi++ {
			q, err := gen.RandomQuery(rng, g.NumLabels(), 2+rng.Intn(2), 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range strategies {
				opts := func(w int, c *candidates.Cache) core.Options {
					return core.Options{
						Alpha:     0.1,
						Strategy:  s,
						Rand:      rand.New(rand.NewSource(seed ^ int64(qi))),
						Workers:   w,
						CandCache: c,
					}
				}
				seq, err := core.Match(context.Background(), ix, q, opts(1, nil))
				if err != nil {
					t.Fatalf("seed %d q%d %v: sequential: %v", seed, qi, s, err)
				}
				// One cache shared across worker widths: later runs hit
				// entries written by earlier ones, so the equivalence also
				// covers cache-served candidate sets feeding the join.
				cache := candidates.NewCache(0)
				for _, w := range []int{1, 2, 4, 8} {
					for _, c := range []*candidates.Cache{nil, cache} {
						res, err := core.Match(context.Background(), ix, q, opts(w, c))
						if err != nil {
							t.Fatalf("seed %d q%d %v W=%d: %v", seed, qi, s, w, err)
						}
						label := fmt.Sprintf("%s W=%d cached=%v", q.Format(g.Alphabet()), w, c != nil)
						matchesIdentical(t, label, seq.Matches, res.Matches)
					}
				}
			}
		}
	}
}
