package core_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/plan"
)

// TestPlanSpaceEquivalenceOnSyntheticPGDs is the plan-equivalence property:
// every plan the planner can emit — the full candidate space of
// decomposition mode × probe-reduction on/off × join-order heuristic — must
// produce exactly the same match set as StrategyOptimized on seeded random
// synthetic PGDs, with bitwise-equal Prle and Prn. Plans may only differ in
// cost, never in the answer; this is what makes the planner's choice a pure
// cost decision and cached plans safe to reuse.
func TestPlanSpaceEquivalenceOnSyntheticPGDs(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		d, err := gen.Synthetic(gen.SynthOptions{
			Refs:          30,
			EdgeFactor:    2,
			Labels:        4,
			UncertainFrac: 0.4,
			Groups:        2,
			GroupSize:     3,
			PairsPerGroup: 2,
			Seed:          seed,
		})
		if err != nil {
			t.Fatalf("seed %d: Synthetic: %v", seed, err)
		}
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		ix := buildIx(t, g, 2, 0.05)

		rng := rand.New(rand.NewSource(seed * 131))
		for qi := 0; qi < 3; qi++ {
			q, err := gen.RandomQuery(rng, g.NumLabels(), 2+rng.Intn(2), 3)
			if err != nil {
				t.Fatalf("seed %d: RandomQuery: %v", seed, err)
			}
			for _, alpha := range []float64{0.1, 0.35} {
				ref, err := core.Match(context.Background(), ix, q, core.Options{
					Alpha: alpha, Strategy: core.StrategyOptimized,
				})
				if err != nil {
					t.Fatalf("seed %d q%d α=%v: reference Match: %v", seed, qi, alpha, err)
				}
				planner := plan.NewPlanner(ix, nil)
				plans, err := planner.Enumerate(context.Background(), q, plan.Options{
					Alpha:    alpha,
					Strategy: "optimized",
					Space:    plan.FullSpace(),
					Seed:     seed + int64(qi),
				})
				if err != nil {
					t.Fatalf("seed %d q%d α=%v: Enumerate: %v", seed, qi, alpha, err)
				}
				if len(plans) < 4 {
					t.Fatalf("seed %d q%d: only %d candidate plans", seed, qi, len(plans))
				}
				for pi, pl := range plans {
					res, err := core.MatchPlan(context.Background(), ix, pl, core.Options{Alpha: alpha})
					if err != nil {
						t.Fatalf("seed %d q%d plan %d (%s/%s/reduce=%v) α=%v: %v",
							seed, qi, pi, pl.Tree.DecomposeMode, pl.Tree.JoinOrderMode, pl.Reduce, alpha, err)
					}
					if len(res.Matches) != len(ref.Matches) {
						t.Fatalf("seed %d q%d plan %d (%s/%s/reduce=%v) α=%v: %d matches, reference %d",
							seed, qi, pi, pl.Tree.DecomposeMode, pl.Tree.JoinOrderMode, pl.Reduce,
							alpha, len(res.Matches), len(ref.Matches))
					}
					// Both sides were sorted by the same deterministic order
					// (mapping, then probability), so equality is
					// elementwise — and the probabilities must be bitwise
					// equal, not just close: every plan finalizes matches
					// through the identical fixed-order recomputation.
					for i := range res.Matches {
						a, b := res.Matches[i], ref.Matches[i]
						for k := range a.Mapping {
							if a.Mapping[k] != b.Mapping[k] {
								t.Fatalf("seed %d q%d plan %d match %d: mapping %v vs %v",
									seed, qi, pi, i, a.Mapping, b.Mapping)
							}
						}
						if math.Float64bits(a.Prle) != math.Float64bits(b.Prle) ||
							math.Float64bits(a.Prn) != math.Float64bits(b.Prn) {
							t.Fatalf("seed %d q%d plan %d match %d: probabilities not bitwise equal: (%v,%v) vs (%v,%v)",
								seed, qi, pi, i, a.Prle, a.Prn, b.Prle, b.Prn)
						}
					}
				}
			}
		}
	}
}

// TestStatsReportExecutedPlan: after a run, Stats must carry the very plan
// tree Explain returns for the same query and options.
func TestStatsReportExecutedPlan(t *testing.T) {
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs: 30, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
		Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.05)
	rng := rand.New(rand.NewSource(7))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Alpha: 0.1}
	tree, err := core.Explain(context.Background(), ix, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Match(context.Background(), ix, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plan == nil {
		t.Fatal("Stats.Plan not set after execution")
	}
	if res.Stats.Plan.DecomposeMode != tree.DecomposeMode ||
		res.Stats.Plan.Reduce != tree.Reduce ||
		res.Stats.Plan.JoinOrderMode != tree.JoinOrderMode ||
		res.Stats.Plan.Query != tree.Query {
		t.Fatalf("executed plan %+v != explained plan %+v", res.Stats.Plan, tree)
	}
	if len(res.Stats.ExecOrder) != len(res.Stats.PlannedOrder) {
		t.Fatalf("exec order %v vs planned %v", res.Stats.ExecOrder, res.Stats.PlannedOrder)
	}
	if res.Stats.PlanTime <= 0 {
		t.Fatal("fresh plan-and-run reported zero PlanTime")
	}
	// Executing the prepared plan directly (the cache-hit path) must report
	// zero planning time — that is the work the cache skips.
	pl, err := core.Prepare(context.Background(), ix, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.MatchPlan(context.Background(), ix, pl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.PlanTime != 0 {
		t.Fatalf("cached-plan execution reported PlanTime %v, want 0", res2.Stats.PlanTime)
	}
	if len(res2.Matches) != len(res.Matches) {
		t.Fatalf("cached-plan run found %d matches, fresh run %d", len(res2.Matches), len(res.Matches))
	}
}

// TestOptionsValidation: every malformed option must fail fast with a typed
// *core.OptionsError naming the field — not a late panic or empty result.
func TestOptionsValidation(t *testing.T) {
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs: 20, EdgeFactor: 2, Labels: 3, UncertainFrac: 0.3,
		Groups: 1, GroupSize: 2, PairsPerGroup: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.05)
	rng := rand.New(rand.NewSource(1))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		opt   core.Options
		field string
	}{
		{"alpha-zero", core.Options{Alpha: 0}, "Alpha"},
		{"alpha-negative", core.Options{Alpha: -0.5}, "Alpha"},
		{"alpha-above-one", core.Options{Alpha: 1.5}, "Alpha"},
		{"alpha-nan", core.Options{Alpha: math.NaN()}, "Alpha"},
		{"limit-negative", core.Options{Alpha: 0.5, Limit: -1}, "Limit"},
		{"parallelism-negative", core.Options{Alpha: 0.5, Parallelism: -2}, "Parallelism"},
		{"workers-negative", core.Options{Alpha: 0.5, Workers: -1}, "Workers"},
		{"maxlen-negative", core.Options{Alpha: 0.5, MaxLen: -3}, "MaxLen"},
		{"strategy-unknown", core.Options{Alpha: 0.5, Strategy: core.Strategy(42)}, "Strategy"},
		{"order-unknown", core.Options{Alpha: 0.5, Order: core.ResultOrder(9)}, "Order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Every entry point must reject up front: Match, MatchStream,
			// Prepare/Explain.
			_, err := core.Match(context.Background(), ix, q, tc.opt)
			oe, ok := core.IsOptionsError(err)
			if !ok {
				t.Fatalf("Match error %v is not an OptionsError", err)
			}
			if oe.Field != tc.field {
				t.Fatalf("OptionsError field %q, want %q", oe.Field, tc.field)
			}
			if _, err := core.Explain(context.Background(), ix, q, tc.opt); err == nil {
				t.Fatal("Explain accepted invalid options")
			}
			if _, err := core.MatchStream(context.Background(), ix, q, tc.opt, nil); err == nil {
				t.Fatal("MatchStream accepted invalid options")
			}
		})
	}
	// NaN alpha used to slip through the (0,1] comparison chain entirely;
	// make sure Validate alone catches it too.
	if err := (core.Options{Alpha: math.NaN()}).Validate(); err == nil {
		t.Fatal("Validate accepted NaN alpha")
	}
}
