package core_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/naive"
)

// TestStrategyEquivalenceOnSyntheticPGDs is the strategy-equivalence
// property over the paper's own workload generator: on seeded random
// synthetic PGDs (preferential attachment, Zipf probabilities, merged
// reference pairs), StrategyOptimized, StrategyRandomDecomp, and
// StrategyNoSSReduction must all return exactly the match set of the
// brute-force baseline, with probabilities agreeing within 1e-9
// (matchSetsEqual enforces the tolerance). The strategies differ only in
// how they prune and order the search — never in the answer.
func TestStrategyEquivalenceOnSyntheticPGDs(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	strategies := []core.Strategy{
		core.StrategyOptimized,
		core.StrategyRandomDecomp,
		core.StrategyNoSSReduction,
	}
	for _, seed := range seeds {
		d, err := gen.Synthetic(gen.SynthOptions{
			Refs:          30,
			EdgeFactor:    2,
			Labels:        4,
			UncertainFrac: 0.4,
			Groups:        2,
			GroupSize:     3,
			PairsPerGroup: 2,
			Seed:          seed,
		})
		if err != nil {
			t.Fatalf("seed %d: Synthetic: %v", seed, err)
		}
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		ix := buildIx(t, g, 2, 0.05)

		rng := rand.New(rand.NewSource(seed * 101))
		for qi := 0; qi < 4; qi++ {
			q, err := gen.RandomQuery(rng, g.NumLabels(), 2+rng.Intn(2), 3)
			if err != nil {
				t.Fatalf("seed %d: RandomQuery: %v", seed, err)
			}
			for _, alpha := range []float64{0.1, 0.35} {
				want, err := naive.Matches(context.Background(), g, q, alpha)
				if err != nil {
					t.Fatalf("seed %d q%d: naive: %v", seed, qi, err)
				}
				for _, s := range strategies {
					res, err := core.Match(context.Background(), ix, q, core.Options{
						Alpha:    alpha,
						Strategy: s,
						Rand:     rand.New(rand.NewSource(seed ^ int64(qi))),
					})
					if err != nil {
						t.Fatalf("seed %d q%d %v α=%v: Match: %v", seed, qi, s, alpha, err)
					}
					if !matchSetsEqual(want, res.Matches) {
						t.Errorf("seed %d q%d %v α=%v: %d matches vs naive %d\nquery:\n%s",
							seed, qi, s, alpha, len(res.Matches), len(want), q.Format(g.Alphabet()))
					}
				}
			}
		}
	}
}
