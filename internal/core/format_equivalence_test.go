package core_test

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
)

// TestFormatEquivalenceEndToEnd is the acceptance property for the packed
// index format through the whole online phase: over seeded gen.Synthetic
// PGDs, core.Match against a packed (v2) index and against a B+-tree (v1)
// index of the same parameters must return the same matches with
// bitwise-identical probabilities, across both decomposition strategies
// (the cost-based SET COVER planner and random decomposition). The index
// is the only variable — same graph, same query, same seeds — so any
// divergence is a format bug, not planner nondeterminism.
func TestFormatEquivalenceEndToEnd(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	strategies := []core.Strategy{core.StrategyOptimized, core.StrategyRandomDecomp}
	for _, seed := range seeds {
		d, err := gen.Synthetic(gen.SynthOptions{
			Refs: 30, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
			Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: Synthetic: %v", seed, err)
		}
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		build := func(f pathindex.Format) *pathindex.Index {
			ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
				MaxLen: 2, Beta: 0.05, Gamma: 0.1,
				Dir: filepath.Join(t.TempDir(), "ix"), Format: f,
			})
			if err != nil {
				t.Fatalf("seed %d: Build %v: %v", seed, f, err)
			}
			t.Cleanup(func() { ix.Close() })
			return ix
		}
		packed := build(pathindex.FormatPacked)
		tree := build(pathindex.FormatBTree)

		rng := rand.New(rand.NewSource(seed * 101))
		for qi := 0; qi < 4; qi++ {
			q, err := gen.RandomQuery(rng, g.NumLabels(), 2+rng.Intn(2), 3)
			if err != nil {
				t.Fatalf("seed %d: RandomQuery: %v", seed, err)
			}
			for _, alpha := range []float64{0.02, 0.1, 0.35} {
				for _, s := range strategies {
					opts := func() core.Options {
						return core.Options{Alpha: alpha, Strategy: s,
							Rand: rand.New(rand.NewSource(seed ^ int64(qi)))}
					}
					rp, err := core.Match(context.Background(), packed, q, opts())
					if err != nil {
						t.Fatalf("seed %d q%d %v α=%v packed: %v", seed, qi, s, alpha, err)
					}
					rt, err := core.Match(context.Background(), tree, q, opts())
					if err != nil {
						t.Fatalf("seed %d q%d %v α=%v btree: %v", seed, qi, s, alpha, err)
					}
					if len(rp.Matches) != len(rt.Matches) {
						t.Fatalf("seed %d q%d %v α=%v: %d vs %d matches\nquery:\n%s",
							seed, qi, s, alpha, len(rp.Matches), len(rt.Matches), q.Format(g.Alphabet()))
					}
					// Same seeds and inputs make the match order
					// deterministic, so compare positionally and bitwise.
					for i := range rp.Matches {
						mp, mt := rp.Matches[i], rt.Matches[i]
						if len(mp.Mapping) != len(mt.Mapping) {
							t.Fatalf("seed %d q%d %v α=%v match %d: mapping size", seed, qi, s, alpha, i)
						}
						for j := range mp.Mapping {
							if mp.Mapping[j] != mt.Mapping[j] {
								t.Fatalf("seed %d q%d %v α=%v match %d: mapping differs", seed, qi, s, alpha, i)
							}
						}
						if math.Float64bits(mp.Pr()) != math.Float64bits(mt.Pr()) {
							t.Fatalf("seed %d q%d %v α=%v match %d: Pr %v vs %v",
								seed, qi, s, alpha, i, mp.Pr(), mt.Pr())
						}
					}
				}
			}
		}
	}
}
