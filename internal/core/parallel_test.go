package core_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/join"
)

// matchesIdentical demands exact equality — mapping, Prle, Prn (bitwise),
// and order — between two collected result sets. The parallel join must be
// indistinguishable from the sequential one after the deterministic sort,
// not merely equal within a tolerance: every match's probability components
// are computed by the same fixed-order finalize in both paths.
func matchesIdentical(t *testing.T, label string, want, got []join.Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if len(w.Mapping) != len(g.Mapping) {
			t.Fatalf("%s: match %d mapping length %d, want %d", label, i, len(g.Mapping), len(w.Mapping))
		}
		for k := range w.Mapping {
			if w.Mapping[k] != g.Mapping[k] {
				t.Fatalf("%s: match %d mapping[%d] = %d, want %d", label, i, k, g.Mapping[k], w.Mapping[k])
			}
		}
		if w.Prle != g.Prle || w.Prn != g.Prn {
			t.Fatalf("%s: match %d probabilities (%v, %v), want (%v, %v)",
				label, i, g.Prle, g.Prn, w.Prle, w.Prn)
		}
	}
}

// TestParallelCollectEquivalence is the parallel-correctness property: on
// seeded random synthetic PGDs, collect-mode results at Parallelism 2, 4,
// and 8 are exactly equal (mapping, Prle, Prn, order) to the sequential run,
// across both decomposition strategies.
func TestParallelCollectEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	strategies := []core.Strategy{core.StrategyOptimized, core.StrategyRandomDecomp}
	for _, seed := range seeds {
		d, err := gen.Synthetic(gen.SynthOptions{
			Refs:          30,
			EdgeFactor:    2,
			Labels:        4,
			UncertainFrac: 0.4,
			Groups:        2,
			GroupSize:     3,
			PairsPerGroup: 2,
			Seed:          seed,
		})
		if err != nil {
			t.Fatalf("seed %d: Synthetic: %v", seed, err)
		}
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		ix := buildIx(t, g, 2, 0.05)

		rng := rand.New(rand.NewSource(seed * 313))
		for qi := 0; qi < 3; qi++ {
			q, err := gen.RandomQuery(rng, g.NumLabels(), 2+rng.Intn(2), 3)
			if err != nil {
				t.Fatalf("seed %d: RandomQuery: %v", seed, err)
			}
			for _, s := range strategies {
				opts := func(par int) core.Options {
					return core.Options{
						Alpha:       0.1,
						Strategy:    s,
						Rand:        rand.New(rand.NewSource(seed ^ int64(qi))),
						Parallelism: par,
					}
				}
				seq, err := core.Match(context.Background(), ix, q, opts(1))
				if err != nil {
					t.Fatalf("seed %d q%d %v: sequential: %v", seed, qi, s, err)
				}
				for _, par := range []int{2, 4, 8} {
					res, err := core.Match(context.Background(), ix, q, opts(par))
					if err != nil {
						t.Fatalf("seed %d q%d %v P=%d: %v", seed, qi, s, par, err)
					}
					matchesIdentical(t, q.Format(g.Alphabet()), seq.Matches, res.Matches)
					if res.Stats.Matched != seq.Stats.Matched {
						t.Fatalf("seed %d q%d %v P=%d: Matched %d, want %d",
							seed, qi, s, par, res.Stats.Matched, seq.Stats.Matched)
					}
				}
			}
		}
	}
}

// TestParallelTopKEquivalence: OrderByProb output is deterministic under
// parallelism — the merged per-worker heaps must reproduce the sequential
// top-K stream byte for byte, including the Truncated flag.
func TestParallelTopKEquivalence(t *testing.T) {
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs: 30, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
		Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.05)
	rng := rand.New(rand.NewSource(99))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{0, 1, 5} {
		run := func(par int) ([]join.Match, core.Stats) {
			var ms []join.Match
			st, err := core.MatchStream(context.Background(), ix, q, core.Options{
				Alpha: 0.05, Limit: limit, Order: core.OrderByProb, Parallelism: par,
			}, func(m join.Match) bool {
				ms = append(ms, m)
				return true
			})
			if err != nil {
				t.Fatalf("limit %d P=%d: %v", limit, par, err)
			}
			return ms, st
		}
		seq, seqSt := run(1)
		for _, par := range []int{2, 4, 8} {
			got, gotSt := run(par)
			matchesIdentical(t, "topk", seq, got)
			if gotSt.Truncated != seqSt.Truncated {
				t.Fatalf("limit %d P=%d: Truncated %v, want %v", limit, par, gotSt.Truncated, seqSt.Truncated)
			}
		}
	}
}

// TestParallelLimitStops: an OrderEmit stream with a Limit stops the
// parallel enumeration after exactly Limit yields and flags truncation.
func TestParallelLimitStops(t *testing.T) {
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs: 30, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
		Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.05)
	rng := rand.New(rand.NewSource(17))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.05, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Matches) < 2 {
		t.Skipf("workload too sparse: %d matches", len(full.Matches))
	}
	seen := 0
	st, err := core.MatchStream(context.Background(), ix, q,
		core.Options{Alpha: 0.05, Limit: 1, Parallelism: 4},
		func(join.Match) bool {
			seen++
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 1 || st.Matched != 1 {
		t.Fatalf("limit 1: yielded %d, Matched %d", seen, st.Matched)
	}
	if !st.Truncated {
		t.Fatal("limit-stopped parallel run not flagged Truncated")
	}
}

// TestParallelCancellationMidStream: cancelling the context from inside the
// yield of a parallel stream aborts every worker and surfaces ctx.Err().
func TestParallelCancellationMidStream(t *testing.T) {
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs: 30, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
		Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.05)
	rng := rand.New(rand.NewSource(23))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Matches) == 0 {
		t.Skip("workload has no matches")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	_, err = core.MatchStream(ctx, ix, q, core.Options{Alpha: 0.05, Parallelism: 4},
		func(join.Match) bool {
			seen++
			cancel()
			return true
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel mid-stream cancel: err = %v, want context.Canceled", err)
	}
	if seen == 0 {
		t.Fatal("yield never ran before cancellation")
	}
}

// TestParallelismValidation: a negative Parallelism is rejected.
func TestParallelismValidation(t *testing.T) {
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs: 12, EdgeFactor: 2, Labels: 3, UncertainFrac: 0.3,
		Groups: 1, GroupSize: 2, PairsPerGroup: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 1, 0.05)
	rng := rand.New(rand.NewSource(3))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.5, Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
}
