// Package core orchestrates the online phase of the paper (Section 5.2):
// query path decomposition, candidate retrieval and context pruning,
// join-candidate construction, joint search space reduction on the candidate
// k-partite graph, and final match assembly. It also exposes the paper's
// evaluation baselines (random decomposition, no search-space reduction) and
// the per-stage search-space statistics behind Figures 7(e) and 7(f).
package core

import (
	"container/heap"
	"context"
	"fmt"
	"iter"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/candidates"
	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/join"
	"repro/internal/kpartite"
	"repro/internal/pathindex"
	"repro/internal/query"
)

// Strategy selects the matching variant of Section 6.2.1.
type Strategy int

const (
	// StrategyOptimized is the full proposed approach.
	StrategyOptimized Strategy = iota
	// StrategyRandomDecomp replaces SET COVER with random decomposition and
	// orders joins by candidate count only.
	StrategyRandomDecomp
	// StrategyNoSSReduction skips the joint search space reduction and goes
	// straight from candidate lists to result generation.
	StrategyNoSSReduction
)

// String implements fmt.Stringer for benchmark labels.
func (s Strategy) String() string {
	switch s {
	case StrategyOptimized:
		return "Optimized"
	case StrategyRandomDecomp:
		return "RandomDecomp"
	case StrategyNoSSReduction:
		return "NoSSReduction"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ResultOrder selects how MatchStream emits matches.
type ResultOrder int

const (
	// OrderEmit (default) emits matches in the order the join enumeration
	// discovers them: lowest latency to the first match, and with Limit > 0
	// the enumeration stops as soon as Limit matches were emitted.
	OrderEmit ResultOrder = iota
	// OrderByProb emits matches in decreasing probability (ties broken by
	// mapping). The join must run to completion before the first emission,
	// but with Limit > 0 only the top-Limit matches are retained in a
	// bounded min-heap, so memory stays O(Limit) regardless of the match
	// count.
	OrderByProb
)

// String implements fmt.Stringer.
func (o ResultOrder) String() string {
	switch o {
	case OrderEmit:
		return "emit"
	case OrderByProb:
		return "prob"
	}
	return fmt.Sprintf("ResultOrder(%d)", int(o))
}

// Options configures a match run.
type Options struct {
	// Alpha is the query probability threshold α.
	Alpha float64
	// Strategy selects the variant (default StrategyOptimized).
	Strategy Strategy
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxLen caps decomposition path length; 0 uses the index's L.
	MaxLen int
	// Rand seeds the random decomposition baseline (nil = deterministic).
	Rand *rand.Rand
	// Limit caps the number of emitted matches (0 = unlimited). With
	// OrderEmit the join enumeration is aborted as soon as Limit matches
	// were emitted; with OrderByProb it selects the top-Limit matches by
	// probability. A truncated run sets Stats.Truncated.
	Limit int
	// Order selects the emission order (OrderEmit or OrderByProb).
	Order ResultOrder
	// Parallelism is the number of join-enumeration workers for the final
	// match generation stage (Section 5.2.5): 0 = GOMAXPROCS, 1 = the
	// sequential depth-first path. The first join level is split into
	// morsels consumed by the workers, each with its own allocation-free
	// scratch state. The match set is always exactly the sequential set;
	// Match (collect) output and OrderByProb streams are deterministic
	// regardless of Parallelism, while an OrderEmit stream's emission order
	// (and, with Limit, which matches are kept) depends on worker
	// scheduling when Parallelism > 1.
	Parallelism int
}

// Stats reports per-stage behaviour of one match run.
type Stats struct {
	// NumPaths is the decomposition size k.
	NumPaths int
	// SSPath, SSContext, SSAfterStructure, SSFinal are the search space
	// sizes (product of candidate list lengths) after index lookup, after
	// context pruning, after reduction by structure, and after the full
	// reduction — the progression of Figure 7(e).
	SSPath           float64
	SSContext        float64
	SSAfterStructure float64
	SSFinal          float64
	// ReductionRounds counts upperbound message-passing rounds.
	ReductionRounds int
	// Matched counts the matches emitted by this run.
	Matched int
	// Truncated reports that the emitted set may be incomplete: the
	// enumeration was stopped by Limit or by the consumer before it was
	// exhausted (OrderEmit), or matches beyond the top-Limit were
	// discarded (OrderByProb). More matches above α may exist.
	Truncated bool
	// Per-stage wall clock.
	DecomposeTime time.Duration
	CandidateTime time.Duration
	BuildTime     time.Duration
	ReduceTime    time.Duration
	JoinTime      time.Duration
	Total         time.Duration
}

// Result is the outcome of a match run.
type Result struct {
	Matches []join.Match
	Stats   Stats
}

// Match answers a probabilistic subgraph pattern matching query
// (Definition 5) over the graph behind the given index: all matches M with
// Pr(M) ≥ α, together with per-stage statistics. It is a thin collect-all
// adapter over MatchStream; with Order == OrderEmit the collected matches
// are sorted by mapping (then probability) for deterministic output, with
// OrderByProb the probability-descending stream order is preserved.
func Match(ctx context.Context, ix pathindex.Reader, q *query.Query, opt Options) (*Result, error) {
	var ms []join.Match
	st, err := MatchStream(ctx, ix, q, opt, func(m join.Match) bool {
		ms = append(ms, m)
		return true
	})
	if err != nil {
		return nil, err
	}
	if opt.Order == OrderEmit {
		sortMatches(ms)
	}
	return &Result{Matches: ms, Stats: st}, nil
}

// MatchStream answers the same query as Match but drives a per-match yield
// callback instead of buffering the result set: matches flow to the caller
// as the join enumeration finds them (OrderEmit), so the first match costs
// a fraction of the full run and opt.Limit / ctx cancellation abort the
// remaining search immediately. Returning false from yield stops the stream
// (not an error). The returned Stats cover whatever part of the run
// happened; on error the partial results already yielded should be
// discarded.
func MatchStream(ctx context.Context, ix pathindex.Reader, q *query.Query, opt Options, yield func(join.Match) bool) (Stats, error) {
	start := time.Now()
	var st Stats
	if opt.Alpha <= 0 || opt.Alpha > 1 {
		return st, fmt.Errorf("core: alpha %v out of range (0,1]", opt.Alpha)
	}
	if opt.Limit < 0 {
		return st, fmt.Errorf("core: negative limit %d", opt.Limit)
	}
	if opt.Parallelism < 0 {
		return st, fmt.Errorf("core: negative parallelism %d", opt.Parallelism)
	}
	switch opt.Order {
	case OrderEmit, OrderByProb:
	default:
		return st, fmt.Errorf("core: unknown result order %d", int(opt.Order))
	}
	g := ix.Graph()
	if err := q.Validate(g.Alphabet()); err != nil {
		return st, err
	}
	maxLen := opt.MaxLen
	if maxLen <= 0 {
		maxLen = ix.MaxLen()
	}

	// 1. Path decomposition (Section 5.2.1).
	t0 := time.Now()
	mode := decompose.ModeOptimized
	if opt.Strategy == StrategyRandomDecomp {
		mode = decompose.ModeRandom
	}
	dec, err := decompose.Decompose(q, ix, decompose.Options{
		MaxLen: maxLen,
		Alpha:  opt.Alpha,
		Mode:   mode,
		Rand:   opt.Rand,
	})
	if err != nil {
		return st, err
	}
	st.NumPaths = len(dec.Paths)
	st.DecomposeTime = time.Since(t0)

	// 2. Path candidates with context pruning (Section 5.2.2).
	t0 = time.Now()
	sets, cstats, err := candidates.Find(ctx, ix, q, dec, opt.Alpha, opt.Workers)
	if err != nil {
		return st, err
	}
	st.SSPath = cstats.SSPath
	st.SSContext = cstats.SSContext
	st.CandidateTime = time.Since(t0)

	// 3. Join-candidates / k-partite graph (Section 5.2.3).
	t0 = time.Now()
	kg, err := kpartite.Build(ctx, g, q, dec, sets, opt.Alpha)
	if err != nil {
		return st, err
	}
	st.BuildTime = time.Since(t0)

	// 4. Joint search space reduction (Section 5.2.4).
	t0 = time.Now()
	switch opt.Strategy {
	case StrategyNoSSReduction:
		st.SSAfterStructure = kg.SearchSpace()
		st.SSFinal = st.SSAfterStructure
	default:
		rst, err := kg.Reduce(ctx, opt.Workers)
		if err != nil {
			return st, err
		}
		st.SSAfterStructure = rst.SSAfterStructure
		st.SSFinal = rst.SSAfterUpperbound
		st.ReductionRounds = rst.Rounds
	}
	st.ReduceTime = time.Since(t0)

	// 5. Final match generation (Section 5.2.5), streamed.
	t0 = time.Now()
	orderMode := join.OrderHeuristic
	if opt.Strategy == StrategyRandomDecomp {
		orderMode = join.OrderByCardinality
	}
	order := join.Order(dec, orderMode)
	par := opt.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	switch {
	case opt.Order == OrderByProb && par > 1:
		err = streamTopKParallel(ctx, g, q, dec, kg, order, opt, par, yield, &st)
	case opt.Order == OrderByProb:
		err = streamTopK(ctx, g, q, dec, kg, order, opt, yield, &st)
	case par > 1:
		err = streamEmitParallel(ctx, g, q, dec, kg, order, opt, par, yield, &st)
	default:
		err = streamEmit(ctx, g, q, dec, kg, order, opt, yield, &st)
	}
	if err != nil {
		return st, err
	}
	st.JoinTime = time.Since(t0)
	st.Total = time.Since(start)
	return st, nil
}

// streamEmit drives the join enumeration straight into yield, stopping the
// enumeration (not just the emission) when Limit is reached or the consumer
// returns false.
func streamEmit(ctx context.Context, g *entity.Graph, q *query.Query, dec *decompose.Decomposition, kg *kpartite.Graph, order []int, opt Options, yield func(join.Match) bool, st *Stats) error {
	return join.FindMatchesFunc(ctx, g, q, dec, kg, order, opt.Alpha, func(m join.Match) bool {
		st.Matched++
		if !yield(m) {
			st.Truncated = true
			return false
		}
		if opt.Limit > 0 && st.Matched >= opt.Limit {
			st.Truncated = true
			return false
		}
		return true
	})
}

// streamTopK runs the join to completion, retaining the Limit best matches
// under probability order in a bounded min-heap, then emits them in
// decreasing probability. With Limit == 0 every match is retained and
// sorted.
func streamTopK(ctx context.Context, g *entity.Graph, q *query.Query, dec *decompose.Decomposition, kg *kpartite.Graph, order []int, opt Options, yield func(join.Match) bool, st *Stats) error {
	top := newTopK(opt.Limit)
	err := join.FindMatchesFunc(ctx, g, q, dec, kg, order, opt.Alpha, func(m join.Match) bool {
		top.offer(m)
		return true
	})
	if err != nil {
		return err
	}
	st.Truncated = top.dropped > 0
	for _, m := range top.sorted() {
		st.Matched++
		if !yield(m) {
			st.Truncated = true
			break
		}
	}
	return nil
}

// streamEmitParallel fans the per-worker match streams into one channel so
// the caller's yield keeps its serial contract: the morsel workers enumerate
// concurrently, the consumer (this goroutine) emits. Limit or a false yield
// closes the stop channel, which unblocks every producer send and stops all
// workers promptly.
func streamEmitParallel(ctx context.Context, g *entity.Graph, q *query.Query, dec *decompose.Decomposition, kg *kpartite.Graph, order []int, opt Options, par int, yield func(join.Match) bool, st *Stats) error {
	ch := make(chan join.Match, 4*par)
	stop := make(chan struct{})
	done := make(chan struct{})
	var jerr error
	go func() {
		defer close(done)
		jerr = join.FindMatchesParallel(ctx, g, q, dec, kg, order, opt.Alpha, par, func(_ int, m join.Match) bool {
			select {
			case ch <- m:
				return true
			case <-stop:
				return false
			}
		})
		close(ch)
	}()
	stopped := false
	for m := range ch {
		st.Matched++
		keep := yield(m)
		if !keep || (opt.Limit > 0 && st.Matched >= opt.Limit) {
			st.Truncated = true
			stopped = true
			close(stop)
			break
		}
	}
	<-done
	if stopped {
		return nil
	}
	// The producers may have finished (and reported no error) before a
	// cancellation that raced with the last buffered matches being drained;
	// re-check so a cancel-from-yield surfaces as ctx.Err() exactly like the
	// sequential path's tail check.
	if jerr == nil {
		jerr = ctx.Err()
	}
	return jerr
}

// streamTopKParallel runs the parallel join to completion with one bounded
// min-heap per worker — no cross-worker synchronization on the hot path —
// then merges the per-worker heaps and emits the global top-Limit in
// decreasing probability. Because the enumeration is exhaustive and
// betterMatch is a total order, the output is byte-identical to the
// sequential OrderByProb stream.
func streamTopKParallel(ctx context.Context, g *entity.Graph, q *query.Query, dec *decompose.Decomposition, kg *kpartite.Graph, order []int, opt Options, par int, yield func(join.Match) bool, st *Stats) error {
	tops := make([]*topK, par)
	for i := range tops {
		tops[i] = newTopK(opt.Limit)
	}
	err := join.FindMatchesParallel(ctx, g, q, dec, kg, order, opt.Alpha, par, func(w int, m join.Match) bool {
		tops[w].offer(m)
		return true
	})
	if err != nil {
		return err
	}
	merged := newTopK(opt.Limit)
	offered := 0
	for _, t := range tops {
		offered += len(t.heap) + t.dropped
		for _, m := range t.heap {
			merged.offer(m)
		}
	}
	st.Truncated = opt.Limit > 0 && offered > opt.Limit
	for _, m := range merged.sorted() {
		st.Matched++
		if !yield(m) {
			st.Truncated = true
			break
		}
	}
	return nil
}

// ReductionStats isolates the joint search-space reduction for the Figure
// 7(f) ablation: it runs decomposition, candidate generation, and k-partite
// construction, then measures reduction by structure alone and the full
// interleaved reduction.
type ReductionStats struct {
	SSBefore          float64
	SSAfterStructure  float64
	SSAfterUpperbound float64
}

// ProbeReduction runs the pipeline up to and including the joint reduction
// and reports the per-method search-space sizes.
func ProbeReduction(ctx context.Context, ix pathindex.Reader, q *query.Query, alpha float64, workers int) (ReductionStats, error) {
	g := ix.Graph()
	dec, err := decompose.Decompose(q, ix, decompose.Options{
		MaxLen: ix.MaxLen(), Alpha: alpha, Mode: decompose.ModeOptimized,
	})
	if err != nil {
		return ReductionStats{}, err
	}
	sets, _, err := candidates.Find(ctx, ix, q, dec, alpha, workers)
	if err != nil {
		return ReductionStats{}, err
	}
	kg, err := kpartite.Build(ctx, g, q, dec, sets, alpha)
	if err != nil {
		return ReductionStats{}, err
	}
	rst, err := kg.Reduce(ctx, workers)
	if err != nil {
		return ReductionStats{}, err
	}
	return ReductionStats{
		SSBefore:          rst.SSBefore,
		SSAfterStructure:  rst.SSAfterStructure,
		SSAfterUpperbound: rst.SSAfterUpperbound,
	}, nil
}

// MatchSeq is the Go-1.23 iterator form of MatchStream: it ranges over the
// matches of one run, yielding (match, nil) pairs and, if the run fails, a
// final (zero, err) pair. Breaking out of the loop stops the underlying
// enumeration immediately.
//
//	for m, err := range core.MatchSeq(ctx, ix, q, opt) {
//		if err != nil { ... }
//		use(m)
//	}
func MatchSeq(ctx context.Context, ix pathindex.Reader, q *query.Query, opt Options) iter.Seq2[join.Match, error] {
	return func(yield func(join.Match, error) bool) {
		stopped := false
		_, err := MatchStream(ctx, ix, q, opt, func(m join.Match) bool {
			if !yield(m, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(join.Match{}, err)
		}
	}
}

// betterMatch is the probability total order used by OrderByProb: higher
// Pr first, equal probabilities broken by mapping so the ranking — and in
// particular the top-K cut — is fully deterministic.
func betterMatch(a, b join.Match) bool {
	pa, pb := a.Pr(), b.Pr()
	if pa != pb {
		return pa > pb
	}
	return mappingLess(a.Mapping, b.Mapping)
}

func mappingLess(a, b []entity.ID) bool {
	for k := range a {
		if k >= len(b) {
			return false
		}
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// topK retains the best matches under betterMatch. With limit > 0 it is a
// bounded min-heap whose root is the worst retained match (O(limit) memory,
// O(log limit) per offer); with limit == 0 it keeps everything.
type topK struct {
	limit   int
	heap    matchHeap
	dropped int
}

func newTopK(limit int) *topK { return &topK{limit: limit} }

// offer considers one match for the retained set.
func (t *topK) offer(m join.Match) {
	if t.limit <= 0 {
		t.heap = append(t.heap, m)
		return
	}
	if len(t.heap) < t.limit {
		heap.Push(&t.heap, m)
		return
	}
	if betterMatch(m, t.heap[0]) {
		t.heap[0] = m
		heap.Fix(&t.heap, 0)
	}
	t.dropped++
}

// sorted consumes the retained set, returning it best-first.
func (t *topK) sorted() []join.Match {
	ms := []join.Match(t.heap)
	t.heap = nil
	sort.Slice(ms, func(i, j int) bool { return betterMatch(ms[i], ms[j]) })
	return ms
}

// matchHeap is a min-heap under betterMatch: the root is the worst retained
// match, which a better offer evicts.
type matchHeap []join.Match

func (h matchHeap) Len() int           { return len(h) }
func (h matchHeap) Less(i, j int) bool { return betterMatch(h[j], h[i]) }
func (h matchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x any)        { *h = append(*h, x.(join.Match)) }
func (h *matchHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// sortMatches orders matches by mapping for deterministic output, with a
// final probability tie-break so even elementwise-equal mappings (which
// would otherwise fall through to unstable slice order) sort the same way
// across runs.
func sortMatches(ms []join.Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		for k := range a.Mapping {
			if a.Mapping[k] != b.Mapping[k] {
				return a.Mapping[k] < b.Mapping[k]
			}
		}
		return a.Pr() > b.Pr()
	})
}
