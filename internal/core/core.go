// Package core is the façade over the online phase of the paper (Section
// 5.2). Since the planner refactor the orchestration itself lives in
// internal/plan: a cost-based Planner compiles an explicit Plan (query path
// decomposition mode, probe-reduction on/off, join order — enumerated
// against the histogram cost model) and a staged Executor runs it with
// per-stage observability and an adaptive join reorder. core maps the
// public Options/Strategy surface onto that subsystem, exposes EXPLAIN
// (Prepare/Explain) and cached-plan execution (MatchStreamPlan/MatchPlan),
// and keeps the paper's evaluation baselines selectable as constrained
// points of the plan space.
package core

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"
	"math/rand"
	"time"

	"repro/internal/candidates"
	"repro/internal/decompose"
	"repro/internal/join"
	"repro/internal/kpartite"
	"repro/internal/pathindex"
	"repro/internal/plan"
	"repro/internal/query"
)

// Strategy selects the matching variant of Section 6.2.1. Every strategy
// routes through the planner; the baselines pin a single candidate plan
// while StrategyOptimized opens the full plan space to the cost model.
type Strategy int

const (
	// StrategyOptimized is the full proposed approach: the planner
	// enumerates decomposition mode × probe-reduction × join order and
	// picks the cheapest candidate under the (calibrated) cost model.
	StrategyOptimized Strategy = iota
	// StrategyRandomDecomp replaces SET COVER with random decomposition and
	// orders joins by candidate count only.
	StrategyRandomDecomp
	// StrategyNoSSReduction skips the joint search space reduction and goes
	// straight from candidate lists to result generation.
	StrategyNoSSReduction
)

// String implements fmt.Stringer for benchmark labels.
func (s Strategy) String() string {
	switch s {
	case StrategyOptimized:
		return "Optimized"
	case StrategyRandomDecomp:
		return "RandomDecomp"
	case StrategyNoSSReduction:
		return "NoSSReduction"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Name returns the wire name used by the server API and plan trees.
func (s Strategy) Name() string {
	switch s {
	case StrategyOptimized:
		return "optimized"
	case StrategyRandomDecomp:
		return "random-decomp"
	case StrategyNoSSReduction:
		return "no-ss-reduction"
	}
	return fmt.Sprintf("strategy-%d", int(s))
}

// space maps a strategy onto the planner's candidate space.
func (s Strategy) space() plan.Space {
	switch s {
	case StrategyRandomDecomp:
		return plan.Space{
			Modes:  []decompose.Mode{decompose.ModeRandom},
			Reduce: []bool{true},
			Orders: []join.OrderMode{join.OrderByCardinality},
		}
	case StrategyNoSSReduction:
		return plan.Space{
			Modes:  []decompose.Mode{decompose.ModeOptimized},
			Reduce: []bool{false},
			Orders: []join.OrderMode{join.OrderHeuristic},
		}
	default:
		return plan.FullSpace()
	}
}

// ResultOrder selects how MatchStream emits matches (see internal/plan).
type ResultOrder = plan.ResultOrder

const (
	// OrderEmit (default) emits matches in discovery order.
	OrderEmit = plan.OrderEmit
	// OrderByProb emits matches in decreasing probability.
	OrderByProb = plan.OrderByProb
)

// Stats reports per-stage behaviour of one match run, including the
// executed plan tree, per-stage estimated vs. observed cardinalities and
// prune counts, and the planned vs. adaptively executed join order.
type Stats = plan.Stats

// Options configures a match run.
type Options struct {
	// Alpha is the query probability threshold α.
	Alpha float64
	// Strategy selects the variant (default StrategyOptimized).
	Strategy Strategy
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxLen caps decomposition path length; 0 uses the index's L.
	MaxLen int
	// Seed seeds the random decomposition baseline (0 = deterministic
	// default). The seed actually used is recorded in the plan tree, so an
	// EXPLAIN output or ablation run can be replayed exactly.
	Seed int64
	// Rand optionally seeds the random decomposition baseline from a
	// caller-owned stream; the derived seed is still recorded.
	Rand *rand.Rand
	// Limit caps the number of emitted matches (0 = unlimited). With
	// OrderEmit the join enumeration is aborted as soon as Limit matches
	// were emitted; with OrderByProb it selects the top-Limit matches by
	// probability. A truncated run sets Stats.Truncated.
	Limit int
	// Order selects the emission order (OrderEmit or OrderByProb).
	Order ResultOrder
	// Parallelism is the number of join-enumeration workers for the final
	// match generation stage (Section 5.2.5): 0 = GOMAXPROCS, 1 = the
	// sequential depth-first path. The first join level is split into
	// morsels consumed by the workers, each with its own allocation-free
	// scratch state. The match set is always exactly the sequential set;
	// Match (collect) output and OrderByProb streams are deterministic
	// regardless of Parallelism, while an OrderEmit stream's emission order
	// (and, with Limit, which matches are kept) depends on worker
	// scheduling when Parallelism > 1.
	Parallelism int
	// Calibration, when set, corrects the planner's cardinality estimates
	// with feedback from earlier executions against the same index and
	// receives this run's observations. One Calibration belongs to one
	// index generation (the server keeps one per served index).
	Calibration *plan.Calibration
	// CandCache, when set, serves pruned per-path candidate sets for
	// repeated query shapes, skipping posting decode and context pruning on
	// a hit. Like Calibration it belongs to one index generation: sharing
	// it across different snapshots returns stale candidates. Live views
	// with pending mutations bypass it automatically.
	CandCache *candidates.Cache
}

// OptionsError reports an invalid Options field. It is returned by every
// entry point before any work happens, so a bad request fails fast with a
// typed error the server maps to HTTP 400 — instead of a late panic or a
// silently empty result.
type OptionsError struct {
	Field  string
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("core: invalid option %s: %s", e.Field, e.Reason)
}

// Validate checks the options for values no run could make sense of.
func (o Options) Validate() error {
	if math.IsNaN(o.Alpha) {
		return &OptionsError{Field: "Alpha", Reason: "is NaN"}
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		return &OptionsError{Field: "Alpha", Reason: fmt.Sprintf("%v out of range (0,1]", o.Alpha)}
	}
	switch o.Strategy {
	case StrategyOptimized, StrategyRandomDecomp, StrategyNoSSReduction:
	default:
		return &OptionsError{Field: "Strategy", Reason: fmt.Sprintf("unknown strategy %d", int(o.Strategy))}
	}
	if o.Workers < 0 {
		return &OptionsError{Field: "Workers", Reason: fmt.Sprintf("negative worker count %d", o.Workers)}
	}
	if o.MaxLen < 0 {
		return &OptionsError{Field: "MaxLen", Reason: fmt.Sprintf("negative path length %d", o.MaxLen)}
	}
	if o.Limit < 0 {
		return &OptionsError{Field: "Limit", Reason: fmt.Sprintf("negative limit %d", o.Limit)}
	}
	switch o.Order {
	case OrderEmit, OrderByProb:
	default:
		return &OptionsError{Field: "Order", Reason: fmt.Sprintf("unknown result order %d", int(o.Order))}
	}
	if o.Parallelism < 0 {
		return &OptionsError{Field: "Parallelism", Reason: fmt.Sprintf("negative parallelism %d", o.Parallelism)}
	}
	return nil
}

// exec maps the run-time knobs onto the executor's options.
func (o Options) exec() plan.Exec {
	return plan.Exec{
		Workers:     o.Workers,
		Limit:       o.Limit,
		Order:       o.Order,
		Parallelism: o.Parallelism,
		CandCache:   o.CandCache,
	}
}

// Result is the outcome of a match run.
type Result struct {
	Matches []join.Match
	Stats   Stats
}

// Prepare runs the planner only: options are validated, the candidate plan
// space for the strategy is enumerated against the (calibrated) cost model,
// and the cheapest plan is compiled — decomposition included — without
// executing anything. The returned plan is immutable; it may be executed
// any number of times (MatchStreamPlan, MatchPlan), concurrently, which is
// what the server's plan cache does to make repeat queries skip
// decomposition and planning entirely.
func Prepare(ctx context.Context, ix pathindex.Reader, q *query.Query, opt Options) (*plan.Plan, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(ix.Graph().Alphabet()); err != nil {
		return nil, err
	}
	planner := plan.NewPlanner(ix, opt.Calibration)
	return planner.Plan(ctx, q, plan.Options{
		Alpha:    opt.Alpha,
		MaxLen:   opt.MaxLen,
		Strategy: opt.Strategy.Name(),
		Space:    opt.Strategy.space(),
		Seed:     opt.Seed,
		Rand:     opt.Rand,
	})
}

// Explain returns the JSON-serializable plan tree the query would execute
// under — the same tree Stats.Plan reports after an actual run.
func Explain(ctx context.Context, ix pathindex.Reader, q *query.Query, opt Options) (*plan.Tree, error) {
	pl, err := Prepare(ctx, ix, q, opt)
	if err != nil {
		return nil, err
	}
	return pl.Tree, nil
}

// Match answers a probabilistic subgraph pattern matching query
// (Definition 5) over the graph behind the given index: all matches M with
// Pr(M) ≥ α, together with per-stage statistics. It is a thin collect-all
// adapter over MatchStream; with Order == OrderEmit the collected matches
// are sorted by mapping (then probability) for deterministic output, with
// OrderByProb the probability-descending stream order is preserved.
func Match(ctx context.Context, ix pathindex.Reader, q *query.Query, opt Options) (*Result, error) {
	var col matchCollector
	st, err := MatchStream(ctx, ix, q, opt, col.add)
	if err != nil {
		return nil, err
	}
	return col.result(st, opt.Order), nil
}

// matchCollector accumulates streamed matches in exponentially growing
// chunks spliced once at the end: append-growing one big slice reallocates
// several times the final footprint at typical result sizes (the runtime
// grows large slices by ~1.25×, so the abandoned backing arrays sum to ~5×
// the result), and that churn dominated match-collect's bytes/op. Both
// collect adapters — Match and MatchPlan — share it, so the cached-plan
// path gets the same allocation profile as the planning path.
type matchCollector struct {
	chunks [][]join.Match
	cur    []join.Match
	total  int
}

func (c *matchCollector) add(m join.Match) bool {
	if len(c.cur) == cap(c.cur) {
		n := 2 * cap(c.cur)
		if n == 0 {
			n = 512
		}
		if len(c.cur) > 0 {
			c.chunks = append(c.chunks, c.cur)
		}
		c.cur = make([]join.Match, 0, n)
	}
	c.cur = append(c.cur, m)
	c.total++
	return true
}

func (c *matchCollector) result(st Stats, order ResultOrder) *Result {
	if c.total == 0 {
		return &Result{Stats: st}
	}
	ms := make([]join.Match, 0, c.total)
	for _, chunk := range c.chunks {
		ms = append(ms, chunk...)
	}
	ms = append(ms, c.cur...)
	if order == OrderEmit {
		plan.SortMatches(ms)
	}
	return &Result{Matches: ms, Stats: st}
}

// MatchStream answers the same query as Match but drives a per-match yield
// callback instead of buffering the result set: matches flow to the caller
// as the join enumeration finds them (OrderEmit), so the first match costs
// a fraction of the full run and opt.Limit / ctx cancellation abort the
// remaining search immediately. Returning false from yield stops the stream
// (not an error). The returned Stats cover whatever part of the run
// happened; on error the partial results already yielded should be
// discarded. It is Prepare followed by MatchStreamPlan.
func MatchStream(ctx context.Context, ix pathindex.Reader, q *query.Query, opt Options, yield func(join.Match) bool) (Stats, error) {
	start := time.Now()
	pl, err := Prepare(ctx, ix, q, opt)
	if err != nil {
		return Stats{}, err
	}
	st, err := MatchStreamPlan(ctx, ix, pl, opt, yield)
	if err != nil {
		return st, err
	}
	// Planning ran in this call, so its cost belongs to this run's stats; a
	// cached-plan execution (MatchStreamPlan directly) reports zero here.
	st.PlanTime = pl.PlanTime
	st.DecomposeTime = pl.DecomposeTime
	st.Stages = append([]plan.StageStats{{
		Name:   "plan",
		Micros: plan.Micros(pl.PlanTime),
	}}, st.Stages...)
	st.Total = time.Since(start)
	return st, nil
}

// MatchStreamPlan executes a previously prepared plan, skipping query
// validation, decomposition, and planning — the plan-cache hot path. The
// streaming contract is exactly MatchStream's. Only the run-time knobs of
// opt apply (Workers, Limit, Order, Parallelism, Calibration); Alpha and
// Strategy were compiled into the plan, so a disagreeing value is rejected
// rather than silently ignored — a plan prepared at α=0.25 cannot be
// mistaken for a run at α=0.9.
func MatchStreamPlan(ctx context.Context, ix pathindex.Reader, pl *plan.Plan, opt Options, yield func(join.Match) bool) (Stats, error) {
	if err := opt.Validate(); err != nil {
		return Stats{}, err
	}
	if opt.Alpha != pl.Alpha {
		return Stats{}, &OptionsError{Field: "Alpha", Reason: fmt.Sprintf("%v differs from the prepared plan's %v", opt.Alpha, pl.Alpha)}
	}
	if pl.Tree != nil && opt.Strategy.Name() != pl.Tree.Strategy {
		return Stats{}, &OptionsError{Field: "Strategy", Reason: fmt.Sprintf("%s differs from the prepared plan's %s", opt.Strategy.Name(), pl.Tree.Strategy)}
	}
	exec := plan.NewExecutor(ix, opt.Calibration)
	return exec.Run(ctx, pl, opt.exec(), yield)
}

// MatchPlan is the collect-all adapter over MatchStreamPlan, mirroring
// Match over MatchStream.
func MatchPlan(ctx context.Context, ix pathindex.Reader, pl *plan.Plan, opt Options) (*Result, error) {
	var col matchCollector
	st, err := MatchStreamPlan(ctx, ix, pl, opt, col.add)
	if err != nil {
		return nil, err
	}
	return col.result(st, opt.Order), nil
}

// ReductionStats isolates the joint search-space reduction for the Figure
// 7(f) ablation: it runs decomposition, candidate generation, and k-partite
// construction, then measures reduction by structure alone and the full
// interleaved reduction.
type ReductionStats struct {
	SSBefore          float64
	SSAfterStructure  float64
	SSAfterUpperbound float64
}

// ProbeReduction runs the pipeline up to and including the joint reduction
// and reports the per-method search-space sizes.
func ProbeReduction(ctx context.Context, ix pathindex.Reader, q *query.Query, alpha float64, workers int) (ReductionStats, error) {
	g := ix.Graph()
	dec, err := decompose.Decompose(q, ix, decompose.Options{
		MaxLen: ix.MaxLen(), Alpha: alpha, Mode: decompose.ModeOptimized,
	})
	if err != nil {
		return ReductionStats{}, err
	}
	sets, _, err := candidates.Find(ctx, ix, q, dec, alpha, workers, nil)
	if err != nil {
		return ReductionStats{}, err
	}
	kg, err := kpartite.Build(ctx, g, q, dec, sets, alpha, workers)
	if err != nil {
		return ReductionStats{}, err
	}
	rst, err := kg.Reduce(ctx, workers)
	if err != nil {
		return ReductionStats{}, err
	}
	return ReductionStats{
		SSBefore:          rst.SSBefore,
		SSAfterStructure:  rst.SSAfterStructure,
		SSAfterUpperbound: rst.SSAfterUpperbound,
	}, nil
}

// MatchSeq is the Go-1.23 iterator form of MatchStream: it ranges over the
// matches of one run, yielding (match, nil) pairs and, if the run fails, a
// final (zero, err) pair. Breaking out of the loop stops the underlying
// enumeration immediately.
//
//	for m, err := range core.MatchSeq(ctx, ix, q, opt) {
//		if err != nil { ... }
//		use(m)
//	}
func MatchSeq(ctx context.Context, ix pathindex.Reader, q *query.Query, opt Options) iter.Seq2[join.Match, error] {
	return func(yield func(join.Match, error) bool) {
		stopped := false
		_, err := MatchStream(ctx, ix, q, opt, func(m join.Match) bool {
			if !yield(m, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(join.Match{}, err)
		}
	}
}

// IsOptionsError reports whether err is an options-validation failure (the
// caller's request is at fault, not the engine) and returns it.
func IsOptionsError(err error) (*OptionsError, bool) {
	var oe *OptionsError
	if errors.As(err, &oe) {
		return oe, true
	}
	return nil, false
}
