// Package core orchestrates the online phase of the paper (Section 5.2):
// query path decomposition, candidate retrieval and context pruning,
// join-candidate construction, joint search space reduction on the candidate
// k-partite graph, and final match assembly. It also exposes the paper's
// evaluation baselines (random decomposition, no search-space reduction) and
// the per-stage search-space statistics behind Figures 7(e) and 7(f).
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/candidates"
	"repro/internal/decompose"
	"repro/internal/join"
	"repro/internal/kpartite"
	"repro/internal/pathindex"
	"repro/internal/query"
)

// Strategy selects the matching variant of Section 6.2.1.
type Strategy int

const (
	// StrategyOptimized is the full proposed approach.
	StrategyOptimized Strategy = iota
	// StrategyRandomDecomp replaces SET COVER with random decomposition and
	// orders joins by candidate count only.
	StrategyRandomDecomp
	// StrategyNoSSReduction skips the joint search space reduction and goes
	// straight from candidate lists to result generation.
	StrategyNoSSReduction
)

// String implements fmt.Stringer for benchmark labels.
func (s Strategy) String() string {
	switch s {
	case StrategyOptimized:
		return "Optimized"
	case StrategyRandomDecomp:
		return "RandomDecomp"
	case StrategyNoSSReduction:
		return "NoSSReduction"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options configures a match run.
type Options struct {
	// Alpha is the query probability threshold α.
	Alpha float64
	// Strategy selects the variant (default StrategyOptimized).
	Strategy Strategy
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxLen caps decomposition path length; 0 uses the index's L.
	MaxLen int
	// Rand seeds the random decomposition baseline (nil = deterministic).
	Rand *rand.Rand
}

// Stats reports per-stage behaviour of one match run.
type Stats struct {
	// NumPaths is the decomposition size k.
	NumPaths int
	// SSPath, SSContext, SSAfterStructure, SSFinal are the search space
	// sizes (product of candidate list lengths) after index lookup, after
	// context pruning, after reduction by structure, and after the full
	// reduction — the progression of Figure 7(e).
	SSPath           float64
	SSContext        float64
	SSAfterStructure float64
	SSFinal          float64
	// ReductionRounds counts upperbound message-passing rounds.
	ReductionRounds int
	// Per-stage wall clock.
	DecomposeTime time.Duration
	CandidateTime time.Duration
	BuildTime     time.Duration
	ReduceTime    time.Duration
	JoinTime      time.Duration
	Total         time.Duration
}

// Result is the outcome of a match run.
type Result struct {
	Matches []join.Match
	Stats   Stats
}

// Match answers a probabilistic subgraph pattern matching query
// (Definition 5) over the graph behind the given index: all matches M with
// Pr(M) ≥ α, together with per-stage statistics.
func Match(ctx context.Context, ix *pathindex.Index, q *query.Query, opt Options) (*Result, error) {
	start := time.Now()
	if opt.Alpha <= 0 || opt.Alpha > 1 {
		return nil, fmt.Errorf("core: alpha %v out of range (0,1]", opt.Alpha)
	}
	g := ix.Graph()
	if err := q.Validate(g.Alphabet()); err != nil {
		return nil, err
	}
	maxLen := opt.MaxLen
	if maxLen <= 0 {
		maxLen = ix.MaxLen()
	}

	var st Stats

	// 1. Path decomposition (Section 5.2.1).
	t0 := time.Now()
	mode := decompose.ModeOptimized
	if opt.Strategy == StrategyRandomDecomp {
		mode = decompose.ModeRandom
	}
	dec, err := decompose.Decompose(q, ix, decompose.Options{
		MaxLen: maxLen,
		Alpha:  opt.Alpha,
		Mode:   mode,
		Rand:   opt.Rand,
	})
	if err != nil {
		return nil, err
	}
	st.NumPaths = len(dec.Paths)
	st.DecomposeTime = time.Since(t0)

	// 2. Path candidates with context pruning (Section 5.2.2).
	t0 = time.Now()
	sets, cstats, err := candidates.Find(ctx, ix, q, dec, opt.Alpha, opt.Workers)
	if err != nil {
		return nil, err
	}
	st.SSPath = cstats.SSPath
	st.SSContext = cstats.SSContext
	st.CandidateTime = time.Since(t0)

	// 3. Join-candidates / k-partite graph (Section 5.2.3).
	t0 = time.Now()
	kg, err := kpartite.Build(ctx, g, q, dec, sets, opt.Alpha)
	if err != nil {
		return nil, err
	}
	st.BuildTime = time.Since(t0)

	// 4. Joint search space reduction (Section 5.2.4).
	t0 = time.Now()
	switch opt.Strategy {
	case StrategyNoSSReduction:
		st.SSAfterStructure = kg.SearchSpace()
		st.SSFinal = st.SSAfterStructure
	default:
		rst, err := kg.Reduce(ctx, opt.Workers)
		if err != nil {
			return nil, err
		}
		st.SSAfterStructure = rst.SSAfterStructure
		st.SSFinal = rst.SSAfterUpperbound
		st.ReductionRounds = rst.Rounds
	}
	st.ReduceTime = time.Since(t0)

	// 5. Final match generation (Section 5.2.5).
	t0 = time.Now()
	orderMode := join.OrderHeuristic
	if opt.Strategy == StrategyRandomDecomp {
		orderMode = join.OrderByCardinality
	}
	order := join.Order(dec, orderMode)
	matches, err := join.FindMatches(ctx, g, q, dec, kg, order, opt.Alpha)
	if err != nil {
		return nil, err
	}
	st.JoinTime = time.Since(t0)
	st.Total = time.Since(start)

	sortMatches(matches)
	return &Result{Matches: matches, Stats: st}, nil
}

// ReductionStats isolates the joint search-space reduction for the Figure
// 7(f) ablation: it runs decomposition, candidate generation, and k-partite
// construction, then measures reduction by structure alone and the full
// interleaved reduction.
type ReductionStats struct {
	SSBefore          float64
	SSAfterStructure  float64
	SSAfterUpperbound float64
}

// ProbeReduction runs the pipeline up to and including the joint reduction
// and reports the per-method search-space sizes.
func ProbeReduction(ctx context.Context, ix *pathindex.Index, q *query.Query, alpha float64, workers int) (ReductionStats, error) {
	g := ix.Graph()
	dec, err := decompose.Decompose(q, ix, decompose.Options{
		MaxLen: ix.MaxLen(), Alpha: alpha, Mode: decompose.ModeOptimized,
	})
	if err != nil {
		return ReductionStats{}, err
	}
	sets, _, err := candidates.Find(ctx, ix, q, dec, alpha, workers)
	if err != nil {
		return ReductionStats{}, err
	}
	kg, err := kpartite.Build(ctx, g, q, dec, sets, alpha)
	if err != nil {
		return ReductionStats{}, err
	}
	rst, err := kg.Reduce(ctx, workers)
	if err != nil {
		return ReductionStats{}, err
	}
	return ReductionStats{
		SSBefore:          rst.SSBefore,
		SSAfterStructure:  rst.SSAfterStructure,
		SSAfterUpperbound: rst.SSAfterUpperbound,
	}, nil
}

// sortMatches orders matches by mapping for deterministic output.
func sortMatches(ms []join.Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i].Mapping, ms[j].Mapping
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
