package core_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/join"
	"repro/internal/naive"
)

// probLess is the probability total order of OrderByProb, reimplemented for
// the tests: higher Pr first, ties broken by mapping.
func probLess(a, b join.Match) bool {
	pa, pb := a.Pr(), b.Pr()
	if pa != pb {
		return pa > pb
	}
	for k := range a.Mapping {
		if a.Mapping[k] != b.Mapping[k] {
			return a.Mapping[k] < b.Mapping[k]
		}
	}
	return false
}

// TestStreamEquivalence: the collect-all adapter and a manual MatchStream
// collection must agree exactly, for both emission orders, on random PGDs.
func TestStreamEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4711))
	for trial := 0; trial < 6; trial++ {
		nLabels := rng.Intn(2) + 2
		d := randomPGD(rng, nLabels, rng.Intn(12)+8)
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ix := buildIx(t, g, 2, 0.05)
		q := randomConnectedQuery(rng, nLabels, rng.Intn(3)+2, rng.Intn(2))
		for _, order := range []core.ResultOrder{core.OrderEmit, core.OrderByProb} {
			opt := core.Options{Alpha: 0.1, Order: order}
			res, err := core.Match(context.Background(), ix, q, opt)
			if err != nil {
				t.Fatalf("trial %d %v: Match: %v", trial, order, err)
			}
			var streamed []join.Match
			st, err := core.MatchStream(context.Background(), ix, q, opt, func(m join.Match) bool {
				streamed = append(streamed, m)
				return true
			})
			if err != nil {
				t.Fatalf("trial %d %v: MatchStream: %v", trial, order, err)
			}
			if !matchSetsEqual(res.Matches, streamed) {
				t.Errorf("trial %d %v: stream %d matches, collect %d",
					trial, order, len(streamed), len(res.Matches))
			}
			if st.Matched != len(streamed) {
				t.Errorf("trial %d %v: Stats.Matched = %d, want %d", trial, order, st.Matched, len(streamed))
			}
			if st.Truncated {
				t.Errorf("trial %d %v: unlimited run reported Truncated", trial, order)
			}
			if order == core.OrderByProb && !sort.SliceIsSorted(streamed, func(i, j int) bool {
				return probLess(streamed[i], streamed[j])
			}) {
				t.Errorf("trial %d: OrderByProb stream not probability-sorted", trial)
			}
		}
	}
}

// TestTopKMatchesBruteForce is the Limit=K property: for every K, the
// limited OrderByProb run returns exactly the first K entries of the
// probability-sorted brute-force match set.
func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(90125))
	trials := 10
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		nLabels := rng.Intn(2) + 2
		d := randomPGD(rng, nLabels, rng.Intn(12)+8)
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ix := buildIx(t, g, 2, 0.05)
		q := randomConnectedQuery(rng, nLabels, rng.Intn(3)+2, rng.Intn(2))
		alpha := []float64{0.05, 0.2}[rng.Intn(2)]

		want, err := naive.Matches(context.Background(), g, q, alpha)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(want, func(i, j int) bool { return probLess(want[i], want[j]) })

		for _, k := range []int{1, 2, 3, len(want), len(want) + 5} {
			if k <= 0 {
				continue
			}
			res, err := core.Match(context.Background(), ix, q, core.Options{
				Alpha: alpha, Limit: k, Order: core.OrderByProb,
			})
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			wantK := want
			if k < len(want) {
				wantK = want[:k]
			}
			if len(res.Matches) != len(wantK) {
				t.Fatalf("trial %d K=%d: got %d matches, want %d", trial, k, len(res.Matches), len(wantK))
			}
			for i, m := range res.Matches {
				w := wantK[i]
				if math.Abs(m.Pr()-w.Pr()) > 1e-9 {
					t.Errorf("trial %d K=%d rank %d: Pr %v, want %v", trial, k, i, m.Pr(), w.Pr())
				}
				for j := range m.Mapping {
					if m.Mapping[j] != w.Mapping[j] {
						t.Errorf("trial %d K=%d rank %d: mapping %v, want %v", trial, k, i, m.Mapping, w.Mapping)
						break
					}
				}
			}
			wantTrunc := k < len(want)
			if res.Stats.Truncated != wantTrunc {
				t.Errorf("trial %d K=%d: Truncated = %v, want %v (of %d)",
					trial, k, res.Stats.Truncated, wantTrunc, len(want))
			}
		}
	}
}

// TestLimitEmitStopsEnumeration: with OrderEmit, Limit=K yields exactly K
// matches (when at least K exist), each a member of the unlimited match
// set, with the truncation flagged.
func TestLimitEmitStopsEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7321))
	d := randomPGD(rng, 2, 14)
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.05)
	q := randomConnectedQuery(rng, 2, 2, 1)

	full, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Matches) < 3 {
		t.Skipf("workload too sparse: %d matches", len(full.Matches))
	}
	inFull := make(map[string]bool, len(full.Matches))
	for _, m := range full.Matches {
		inFull[mappingKey(m)] = true
	}
	for _, k := range []int{1, 2, len(full.Matches) - 1} {
		res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.05, Limit: k})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if len(res.Matches) != k {
			t.Fatalf("K=%d: got %d matches", k, len(res.Matches))
		}
		if !res.Stats.Truncated {
			t.Errorf("K=%d: truncation not flagged", k)
		}
		if res.Stats.Matched != k {
			t.Errorf("K=%d: Stats.Matched = %d", k, res.Stats.Matched)
		}
		for _, m := range res.Matches {
			if !inFull[mappingKey(m)] {
				t.Errorf("K=%d: match %v not in the unlimited set", k, m.Mapping)
			}
		}
	}
}

func mappingKey(m join.Match) string {
	buf := make([]byte, 0, len(m.Mapping)*4)
	for _, v := range m.Mapping {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// TestCancellationMidStream: cancelling the context from inside the yield
// aborts the enumeration with ctx.Err() — the error, not a silently
// truncated success.
func TestCancellationMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7321))
	d := randomPGD(rng, 2, 14)
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.05)
	q := randomConnectedQuery(rng, 2, 2, 1)
	full, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Matches) < 2 {
		t.Skipf("workload too sparse: %d matches", len(full.Matches))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	_, err = core.MatchStream(ctx, ix, q, core.Options{Alpha: 0.05}, func(join.Match) bool {
		seen++
		cancel()
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchStream after mid-stream cancel: err = %v, want context.Canceled", err)
	}
	if seen == 0 {
		t.Fatal("yield never ran before cancellation")
	}
	// The collect-all adapter discards partial results on error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cancel2()
	res, err := core.Match(ctx2, ix, q, core.Options{Alpha: 0.05})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Match on cancelled ctx: err = %v", err)
	}
	if res != nil {
		t.Fatalf("Match on cancelled ctx returned partial results: %+v", res)
	}
}

// TestMatchSeq: the iterator wrapper delivers the same matches as Match and
// stops the enumeration when the consumer breaks.
func TestMatchSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(7321))
	d := randomPGD(rng, 2, 14)
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.05)
	q := randomConnectedQuery(rng, 2, 2, 1)
	full, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	var collected []join.Match
	for m, err := range core.MatchSeq(context.Background(), ix, q, core.Options{Alpha: 0.05}) {
		if err != nil {
			t.Fatalf("MatchSeq: %v", err)
		}
		collected = append(collected, m)
	}
	if !matchSetsEqual(full.Matches, collected) {
		t.Errorf("MatchSeq delivered %d matches, Match %d", len(collected), len(full.Matches))
	}

	if len(full.Matches) >= 2 {
		n := 0
		for _, err := range core.MatchSeq(context.Background(), ix, q, core.Options{Alpha: 0.05}) {
			if err != nil {
				t.Fatalf("MatchSeq: %v", err)
			}
			n++
			break
		}
		if n != 1 {
			t.Errorf("break after first iteration saw %d matches", n)
		}
	}

	// A failed run yields exactly one (zero, err) pair.
	sawErr := false
	for m, err := range core.MatchSeq(context.Background(), ix, q, core.Options{Alpha: -1}) {
		if err == nil {
			t.Fatalf("invalid options yielded a match: %v", m)
		}
		sawErr = true
	}
	if !sawErr {
		t.Error("invalid options yielded nothing")
	}
}

// TestStreamOptionValidation: malformed streaming options fail fast.
func TestStreamOptionValidation(t *testing.T) {
	g, err := entity.Build(randomPGD(rand.New(rand.NewSource(1)), 2, 8), entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 1, 0.1)
	q := randomConnectedQuery(rand.New(rand.NewSource(1)), 2, 2, 0)
	nop := func(join.Match) bool { return true }
	if _, err := core.MatchStream(context.Background(), ix, q, core.Options{Alpha: 0.5, Limit: -1}, nop); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := core.MatchStream(context.Background(), ix, q, core.Options{Alpha: 0.5, Order: core.ResultOrder(99)}, nop); err == nil {
		t.Error("unknown order accepted")
	}
}
