package core_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
	"repro/internal/query"
)

// TestConcurrentMatchSharedIndex issues mixed Match calls — different
// queries, thresholds, and strategies — from many goroutines against one
// shared opened index, asserting each result equals its sequential
// baseline. Under -race this is the end-to-end proof that the online phase
// needs no external serialization: candidates, decomposition, and join all
// probe the same index concurrently.
func TestConcurrentMatchSharedIndex(t *testing.T) {
	d, err := gen.Synthetic(gen.SynthOptions{Refs: 60, EdgeFactor: 2, Labels: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ix")
	built, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: 2, Beta: 0.05, Gamma: 0.1, Dir: dir, CachePages: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err := pathindex.Open(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// A fixed workload of (query, alpha, strategy) cells with sequential
	// baselines. RandomDecomp gets a per-cell deterministic seed so the
	// concurrent rerun decomposes identically.
	rng := rand.New(rand.NewSource(5))
	type cell struct {
		q     *query.Query
		alpha float64
		strat core.Strategy
		seed  int64
		want  []string
	}
	var cells []cell
	for qi := 0; qi < 4; qi++ {
		q, err := gen.RandomQuery(rng, g.NumLabels(), 2+qi%2, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range []float64{0.1, 0.3} {
			for _, s := range []core.Strategy{core.StrategyOptimized, core.StrategyRandomDecomp, core.StrategyNoSSReduction} {
				cells = append(cells, cell{q: q, alpha: alpha, strat: s, seed: int64(qi)*10 + int64(s)})
			}
		}
	}
	for i := range cells {
		c := &cells[i]
		res, err := core.Match(context.Background(), ix, c.q, core.Options{
			Alpha: c.alpha, Strategy: c.strat, Rand: rand.New(rand.NewSource(c.seed)),
		})
		if err != nil {
			t.Fatalf("baseline cell %d: %v", i, err)
		}
		c.want = matchFingerprints(res)
	}

	const goroutines = 12
	const iters = 25
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for i := 0; i < iters; i++ {
				c := &cells[rng.Intn(len(cells))]
				res, err := core.Match(context.Background(), ix, c.q, core.Options{
					Alpha: c.alpha, Strategy: c.strat, Rand: rand.New(rand.NewSource(c.seed)),
				})
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", w, i, err)
					return
				}
				got := matchFingerprints(res)
				if len(got) != len(c.want) {
					t.Errorf("goroutine %d: %d matches, want %d", w, len(got), len(c.want))
					return
				}
				for j := range got {
					if got[j] != c.want[j] {
						t.Errorf("goroutine %d: match %d = %q, want %q", w, j, got[j], c.want[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// matchFingerprints flattens a result into comparable strings (mappings are
// already deterministically sorted by core.Match).
func matchFingerprints(res *core.Result) []string {
	out := make([]string, len(res.Matches))
	for i, m := range res.Matches {
		b := make([]byte, 0, len(m.Mapping)*4+16)
		for _, v := range m.Mapping {
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		out[i] = string(b)
	}
	return out
}
