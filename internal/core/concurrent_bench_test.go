package core_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
	"repro/internal/query"
)

func benchIndex(b *testing.B) (*pathindex.Index, []*query.Query) {
	b.Helper()
	d, err := gen.Synthetic(gen.SynthOptions{Refs: 400, EdgeFactor: 3, Labels: 5, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: 2, Beta: 0.05, Gamma: 0.1, Dir: filepath.Join(b.TempDir(), "ix"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	rng := rand.New(rand.NewSource(9))
	var qs []*query.Query
	for i := 0; i < 8; i++ {
		q, err := gen.RandomQuery(rng, g.NumLabels(), 3, 3)
		if err != nil {
			b.Fatal(err)
		}
		qs = append(qs, q)
	}
	return ix, qs
}

// BenchmarkMatchParallel measures aggregate match throughput with many
// goroutines sharing one opened index — the serving scenario behind
// cmd/pegserve. Run with -cpu=1,8 to see the scaling the de-serialized read
// path buys; compare BenchmarkMatchGlobalLock for the seed's behavior, where
// one mutex serialized every index probe.
func BenchmarkMatchParallel(b *testing.B) {
	ix, qs := benchIndex(b)
	var qi atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := qs[qi.Add(1)%uint64(len(qs))]
			if _, err := core.Match(context.Background(), ix, q, core.Options{
				Alpha: 0.1, Workers: 1,
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkMatchGlobalLock is the fully-serialized bound: identical
// workload, one global mutex around each evaluation. The seed's index mutex
// serialized only the B+-tree probes inside a match (see the pathindex
// package's BenchmarkLookupGlobalLock for that exact before/after); this
// bench brackets it from above, so together they bound the old behavior.
func BenchmarkMatchGlobalLock(b *testing.B) {
	ix, qs := benchIndex(b)
	var mu sync.Mutex
	var qi atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := qs[qi.Add(1)%uint64(len(qs))]
			mu.Lock()
			_, err := core.Match(context.Background(), ix, q, core.Options{
				Alpha: 0.1, Workers: 1,
			})
			mu.Unlock()
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}
