package core_test

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/fixtures"
	"repro/internal/join"
	"repro/internal/naive"
	"repro/internal/pathindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/refgraph"
)

func buildIx(t testing.TB, g *entity.Graph, L int, beta float64) *pathindex.Index {
	t.Helper()
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: L, Beta: beta, Gamma: 0.1, Dir: filepath.Join(t.TempDir(), "ix"),
	})
	if err != nil {
		t.Fatalf("pathindex.Build: %v", err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// motivatingQuery is the Figure 1(d) query: a path labeled (r, a, i).
func motivatingQuery(t testing.TB, g *entity.Graph) *query.Query {
	t.Helper()
	alpha := g.Alphabet()
	q := query.New()
	q1 := q.AddNode(alpha.ID("r"))
	q2 := q.AddNode(alpha.ID("a"))
	q3 := q.AddNode(alpha.ID("i"))
	if err := q.AddEdge(q1, q2); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(q2, q3); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestMotivatingExampleEndToEnd(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	q := motivatingQuery(t, g)
	for _, L := range []int{1, 2} {
		ix := buildIx(t, g, L, 0.02)
		res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: fixtures.MotivatingAlpha})
		if err != nil {
			t.Fatalf("L=%d: Match: %v", L, err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("L=%d: got %d matches, want 1: %+v", L, len(res.Matches), res.Matches)
		}
		m := res.Matches[0]
		want := []entity.ID{fixtures.S34, fixtures.S2, fixtures.S1}
		for i, v := range want {
			if m.Mapping[i] != v {
				t.Errorf("L=%d: mapping[%d] = %d, want %d", L, i, m.Mapping[i], v)
			}
		}
		if math.Abs(m.Pr()-0.2025) > 1e-9 {
			t.Errorf("L=%d: Pr = %v, want 0.2025", L, m.Pr())
		}
	}
}

func TestMotivatingExampleAllMatchesLowThreshold(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	q := motivatingQuery(t, g)
	ix := buildIx(t, g, 2, 0.01)
	res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 5 {
		t.Fatalf("got %d matches, want 5: %+v", len(res.Matches), res.Matches)
	}
	want := map[[3]entity.ID]float64{}
	for _, em := range fixtures.MotivatingMatches() {
		want[em.Nodes] = em.Pr
	}
	for _, m := range res.Matches {
		key := [3]entity.ID{m.Mapping[0], m.Mapping[1], m.Mapping[2]}
		wp, ok := want[key]
		if !ok {
			t.Errorf("unexpected match %v", key)
			continue
		}
		if math.Abs(m.Pr()-wp) > 1e-9 {
			t.Errorf("match %v Pr = %v, want %v", key, m.Pr(), wp)
		}
	}
}

func TestStrategiesAgree(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	q := motivatingQuery(t, g)
	ix := buildIx(t, g, 2, 0.01)
	base, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Strategy{core.StrategyRandomDecomp, core.StrategyNoSSReduction} {
		res, err := core.Match(context.Background(), ix, q, core.Options{
			Alpha: 0.05, Strategy: s, Rand: rand.New(rand.NewSource(7)),
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !matchSetsEqual(base.Matches, res.Matches) {
			t.Errorf("%v disagrees with Optimized: %d vs %d matches", s, len(res.Matches), len(base.Matches))
		}
	}
}

func TestSingleNodeQuery(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 1, 0.01)
	q := query.New()
	q.AddNode(g.Alphabet().ID("a"))
	res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].Mapping[0] != fixtures.S2 {
		t.Fatalf("single-node query: %+v", res.Matches)
	}
}

func TestMatchValidation(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 1, 0.1)
	q := motivatingQuery(t, g)
	if _, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0}); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 1.5}); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestStatsProgressionMonotone(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	q := motivatingQuery(t, g)
	ix := buildIx(t, g, 2, 0.01)
	res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SSPath < st.SSContext || st.SSContext < st.SSAfterStructure || st.SSAfterStructure < st.SSFinal {
		t.Errorf("search space not monotone: %v ≥ %v ≥ %v ≥ %v",
			st.SSPath, st.SSContext, st.SSAfterStructure, st.SSFinal)
	}
	if st.NumPaths == 0 || st.Total == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
}

func matchSetsEqual(a, b []join.Match) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(m join.Match) string {
		buf := make([]byte, 0, len(m.Mapping)*4)
		for _, v := range m.Mapping {
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(buf)
	}
	am := make(map[string]float64, len(a))
	for _, m := range a {
		am[key(m)] = m.Pr()
	}
	for _, m := range b {
		p, ok := am[key(m)]
		if !ok || math.Abs(p-m.Pr()) > 1e-9 {
			return false
		}
	}
	return true
}

// randomPGD generates a small random PGD for equivalence testing.
func randomPGD(rng *rand.Rand, nLabels, nRefs int) *refgraph.PGD {
	names := make([]string, nLabels)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	alpha := prob.MustAlphabet(names...)
	d := refgraph.New(alpha)
	for i := 0; i < nRefs; i++ {
		if rng.Float64() < 0.5 {
			d.AddReference(prob.Point(prob.LabelID(rng.Intn(nLabels))))
		} else {
			d.AddReference(prob.ZipfDist(rng, nLabels))
		}
	}
	for e := 0; e < nRefs*2; e++ {
		a, b := refgraph.RefID(rng.Intn(nRefs)), refgraph.RefID(rng.Intn(nRefs))
		if a == b {
			continue
		}
		ed := refgraph.EdgeDist{P: 0.4 + 0.6*rng.Float64()}
		if rng.Float64() < 0.3 {
			// Label-conditioned edge with a symmetric CPT.
			cpt := make([]float64, nLabels*nLabels)
			for i := 0; i < nLabels; i++ {
				for j := 0; j <= i; j++ {
					p := ed.P
					if i != j {
						p *= 0.8
					}
					cpt[i*nLabels+j] = p
					cpt[j*nLabels+i] = p
				}
			}
			ed.CPT = cpt
		}
		d.AddEdge(a, b, ed)
	}
	for s := 0; s < nRefs/5; s++ {
		a, b := refgraph.RefID(rng.Intn(nRefs)), refgraph.RefID(rng.Intn(nRefs))
		if a != b {
			d.AddReferenceSet([]refgraph.RefID{a, b}, 0.2+0.8*rng.Float64())
		}
	}
	return d
}

// randomConnectedQuery generates a random connected query with n nodes.
func randomConnectedQuery(rng *rand.Rand, nLabels, n, extraEdges int) *query.Query {
	q := query.New()
	for i := 0; i < n; i++ {
		q.AddNode(prob.LabelID(rng.Intn(nLabels)))
	}
	// Random spanning tree.
	for i := 1; i < n; i++ {
		q.AddEdge(query.NodeID(rng.Intn(i)), query.NodeID(i))
	}
	for e := 0; e < extraEdges; e++ {
		a, b := query.NodeID(rng.Intn(n)), query.NodeID(rng.Intn(n))
		if a != b && !q.HasEdge(a, b) {
			q.AddEdge(a, b)
		}
	}
	return q
}

// TestPipelineMatchesNaive is the central soundness property: on random
// PGDs and random queries, the full optimized pipeline returns exactly the
// same match set and probabilities as the brute-force matcher, for every
// strategy and multiple thresholds.
func TestPipelineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	trials := 15
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		nLabels := rng.Intn(2) + 2
		nRefs := rng.Intn(15) + 8
		d := randomPGD(rng, nLabels, nRefs)
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		L := rng.Intn(3) + 1
		beta := []float64{0.05, 0.2}[rng.Intn(2)]
		ix := buildIx(t, g, L, beta)
		for qi := 0; qi < 4; qi++ {
			n := rng.Intn(4) + 2
			q := randomConnectedQuery(rng, nLabels, n, rng.Intn(3))
			alpha := []float64{0.1, 0.3, 0.6}[rng.Intn(3)]
			want, err := naive.Matches(context.Background(), g, q, alpha)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []core.Strategy{core.StrategyOptimized, core.StrategyRandomDecomp, core.StrategyNoSSReduction} {
				res, err := core.Match(context.Background(), ix, q, core.Options{
					Alpha: alpha, Strategy: s, Rand: rand.New(rand.NewSource(int64(trial))),
				})
				if err != nil {
					t.Fatalf("trial %d q %d %v: %v", trial, qi, s, err)
				}
				if !matchSetsEqual(want, res.Matches) {
					t.Fatalf("trial %d query %d strategy %v α=%v L=%d β=%v: pipeline %d matches, naive %d\nquery:\n%s",
						trial, qi, s, alpha, L, beta, len(res.Matches), len(want), q.Format(g.Alphabet()))
				}
			}
		}
	}
}

// TestEq11AgainstPossibleWorlds validates Pr(M) = Prn·Prle against the full
// possible-worlds sum on tiny graphs (Definition 4 → Eq. 11).
func TestEq11AgainstPossibleWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		d := randomPGD(rng, 2, 5)
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() > 8 {
			continue // keep world enumeration tiny
		}
		q := randomConnectedQuery(rng, 2, 2, 0)
		ms, err := naive.Matches(context.Background(), g, q, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			worldP, err := naive.WorldMatchProb(g, q, m.Mapping, 0)
			if err != nil {
				t.Skipf("world space too large: %v", err)
			}
			if math.Abs(worldP-m.Pr()) > 1e-9 {
				t.Errorf("trial %d: mapping %v: worlds %v vs Eq.11 %v",
					trial, m.Mapping, worldP, m.Pr())
			}
		}
	}
}
