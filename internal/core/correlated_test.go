package core_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/naive"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/refgraph"
)

// TestCorrelatedEdgesEndToEnd validates the Section 5.3 CPT path: on a
// DBLP-style graph with label-conditioned edge probabilities, the optimized
// pipeline must agree exactly with the brute-force matcher.
func TestCorrelatedEdgesEndToEnd(t *testing.T) {
	d, err := gen.DBLP(gen.DBLPOptions{Authors: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.05)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 6; trial++ {
		q, err := gen.RandomQuery(rng, g.NumLabels(), 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range []float64{0.1, 0.4} {
			want, err := naive.Matches(context.Background(), g, q, alpha)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: alpha})
			if err != nil {
				t.Fatal(err)
			}
			if !matchSetsEqual(want, res.Matches) {
				t.Fatalf("trial %d α=%v: pipeline %d matches, naive %d",
					trial, alpha, len(res.Matches), len(want))
			}
		}
	}
}

// TestCorrelatedEdgeProbabilityUsed verifies that the conditional
// probability — not the base — enters the match probability.
func TestCorrelatedEdgeProbabilityUsed(t *testing.T) {
	alpha := prob.MustAlphabet("x", "y")
	d := refgraph.New(alpha)
	a := d.AddReference(prob.Point(0))
	b := d.AddReference(prob.Point(1))
	// Base 0.9 but conditional for (x,y) is 0.3.
	cpt := []float64{
		0.9, 0.3,
		0.3, 0.9,
	}
	if err := d.AddEdge(a, b, refgraph.EdgeDist{P: 0.9, CPT: cpt}); err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 1, 0.05)
	q := query.New()
	qa := q.AddNode(0)
	qb := q.AddNode(1)
	if err := q.AddEdge(qa, qb); err != nil {
		t.Fatal(err)
	}
	res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %+v", res.Matches)
	}
	if p := res.Matches[0].Pr(); math.Abs(p-0.3) > 1e-9 {
		t.Errorf("Pr = %v, want the conditional 0.3 (not base 0.9)", p)
	}
	// At α=0.5 the conditional prunes the match that the base would keep.
	res, err = core.Match(context.Background(), ix, q, core.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Errorf("conditional probability ignored: %+v", res.Matches)
	}
}
