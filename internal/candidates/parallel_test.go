package candidates

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
)

func synthIx(t *testing.T, seed int64) (*entity.Graph, *pathindex.Index) {
	t.Helper()
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs: 30, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
		Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g, buildIx(t, g, 2, 0.05)
}

// setsIdentical demands exact equality — candidate order, node assignment,
// and float bits of Prle/Prn — between two Find outputs. The parallel
// fan-out must be indistinguishable from the sequential walk.
func setsIdentical(t *testing.T, label string, want, got []Set) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d sets, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Initial != g.Initial {
			t.Fatalf("%s: set %d Initial = %d, want %d", label, i, g.Initial, w.Initial)
		}
		if len(w.Cands) != len(g.Cands) {
			t.Fatalf("%s: set %d has %d candidates, want %d", label, i, len(g.Cands), len(w.Cands))
		}
		for j := range w.Cands {
			wc, gc := w.Cands[j], g.Cands[j]
			if math.Float64bits(wc.Prle) != math.Float64bits(gc.Prle) ||
				math.Float64bits(wc.Prn) != math.Float64bits(gc.Prn) {
				t.Fatalf("%s: set %d cand %d probs (%v,%v), want (%v,%v)",
					label, i, j, gc.Prle, gc.Prn, wc.Prle, wc.Prn)
			}
			if len(wc.Nodes) != len(gc.Nodes) {
				t.Fatalf("%s: set %d cand %d node count differs", label, i, j)
			}
			for k := range wc.Nodes {
				if wc.Nodes[k] != gc.Nodes[k] {
					t.Fatalf("%s: set %d cand %d node %d = %d, want %d",
						label, i, j, k, gc.Nodes[k], wc.Nodes[k])
				}
			}
		}
	}
}

// TestFindParallelEquivalence is the pre-join determinism property: Find at
// workers 2, 4, and 8 — with and without a candidate cache — produces
// bitwise-identical sets and Stats to the sequential walk, across both
// decomposition strategies.
func TestFindParallelEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g, ix := synthIx(t, seed)
		rng := rand.New(rand.NewSource(seed * 131))
		for qi := 0; qi < 3; qi++ {
			q, err := gen.RandomQuery(rng, g.NumLabels(), 2+rng.Intn(2), 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []decompose.Mode{decompose.ModeOptimized, decompose.ModeRandom} {
				dec, err := decompose.Decompose(q, ix, decompose.Options{
					MaxLen: 2, Alpha: 0.1, Mode: mode, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("seed %d q%d mode %d", seed, qi, mode)
				seq, seqStats, err := Find(context.Background(), ix, q, dec, 0.1, 1, nil)
				if err != nil {
					t.Fatalf("%s: sequential: %v", label, err)
				}
				for _, workers := range []int{2, 4, 8} {
					for _, withCache := range []bool{false, true} {
						var cache *Cache
						if withCache {
							cache = NewCache(0)
						}
						got, gotStats, err := Find(context.Background(), ix, q, dec, 0.1, workers, cache)
						if err != nil {
							t.Fatalf("%s w=%d: %v", label, workers, err)
						}
						setsIdentical(t, fmt.Sprintf("%s w=%d cache=%v", label, workers, withCache), seq, got)
						if math.Float64bits(seqStats.SSPath) != math.Float64bits(gotStats.SSPath) ||
							math.Float64bits(seqStats.SSContext) != math.Float64bits(gotStats.SSContext) {
							t.Fatalf("%s w=%d: stats (%v,%v), want (%v,%v)", label, workers,
								gotStats.SSPath, gotStats.SSContext, seqStats.SSPath, seqStats.SSContext)
						}
					}
				}
			}
		}
	}
}

// TestFindCached: a second Find over the same (query, α, reader) is served
// entirely from the cache — per-path hits — and returns identical sets.
func TestFindCached(t *testing.T) {
	g, ix := synthIx(t, 7)
	rng := rand.New(rand.NewSource(7))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decompose.Decompose(q, ix, decompose.Options{MaxLen: 2, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0)
	cold, coldStats, err := Find(context.Background(), ix, q, dec, 0.1, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CacheHits != 0 || coldStats.CacheMisses != len(dec.Paths) {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d",
			coldStats.CacheHits, coldStats.CacheMisses, len(dec.Paths))
	}
	warm, warmStats, err := Find(context.Background(), ix, q, dec, 0.1, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.CacheHits != len(dec.Paths) || warmStats.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/0",
			warmStats.CacheHits, warmStats.CacheMisses, len(dec.Paths))
	}
	setsIdentical(t, "cached", cold, warm)
	st := cache.Stats()
	if st.Entries == 0 || st.Candidates == 0 {
		t.Fatalf("cache empty after use: %+v", st)
	}
	// A different α must not share entries.
	_, s2, err := Find(context.Background(), ix, q, dec, 0.2, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	if s2.CacheHits != 0 {
		t.Fatalf("α=0.2 run hit α=0.1 entries: %+v", s2)
	}
}

// mutatingReader wraps a Reader and reports pending overlay mutations —
// the shape live.View exposes. Find must bypass the cache for it.
type mutatingReader struct {
	pathindex.Reader
	muts uint64
}

func (m *mutatingReader) Mutations() uint64 { return m.muts }

func TestFindBypassesDirtyReader(t *testing.T) {
	g, ix := synthIx(t, 9)
	rng := rand.New(rand.NewSource(9))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decompose.Decompose(q, ix, decompose.Options{MaxLen: 2, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0)
	dirty := &mutatingReader{Reader: ix, muts: 3}
	_, st, err := Find(context.Background(), dirty, q, dec, 0.1, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheBypassed != len(dec.Paths) || st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("dirty reader: %+v, want full bypass", st)
	}
	if cs := cache.Stats(); cs.Entries != 0 || cs.Bypassed != uint64(len(dec.Paths)) {
		t.Fatalf("cache state after bypass: %+v", cs)
	}
	// The same reader with a drained overlay (post-compaction) caches again.
	dirty.muts = 0
	_, st, err = Find(context.Background(), dirty, q, dec, 0.1, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheMisses != len(dec.Paths) {
		t.Fatalf("clean reader did not populate cache: %+v", st)
	}
}

// TestCacheEviction: the weight budget bounds retained candidates; the LRU
// end is evicted first and the eviction counter advances.
func TestCacheEviction(t *testing.T) {
	c := NewCache(cacheShards * 4) // 4 candidates per shard
	mk := func(n int) []Candidate {
		cs := make([]Candidate, n)
		for i := range cs {
			cs[i] = Candidate{Nodes: []entity.ID{entity.ID(i)}, Prle: 1, Prn: 1}
		}
		return cs
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		_, _, hit, err := c.do(context.Background(), key, func() ([]Candidate, int, error) {
			return mk(3), 3, nil
		})
		if err != nil || hit {
			t.Fatalf("insert %d: hit=%v err=%v", i, hit, err)
		}
	}
	st := c.Stats()
	if st.Candidates > cacheShards*4 {
		t.Fatalf("budget exceeded: %d candidates retained", st.Candidates)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	// An entry heavier than a whole shard budget is still admitted alone.
	_, _, _, err := c.do(context.Background(), "huge", func() ([]Candidate, int, error) {
		return mk(100), 100, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, hit, _ := c.do(context.Background(), "huge", func() ([]Candidate, int, error) {
		t.Fatal("recomputed an admitted oversized entry")
		return nil, 0, nil
	}); !hit {
		t.Fatal("oversized entry was not retained")
	}
}

// TestCacheSingleflight: concurrent misses on one key run compute once;
// every caller gets the same slice.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0)
	var computes int32
	var mu sync.Mutex
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]Candidate, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			cands, _, _, err := c.do(context.Background(), "k", func() ([]Candidate, int, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				return []Candidate{{Nodes: []entity.ID{1}, Prle: 1, Prn: 1}}, 1, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = cands
		}(i)
	}
	close(start)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	for i := 1; i < len(results); i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatal("singleflight callers got different slices")
		}
	}
}

// countdownCtx reports Canceled after Err has been called n times — a
// deterministic probe that the prune loop polls cancellation mid-path, not
// only between paths.
type countdownCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return nil }

// TestFindCancelMidPrune: with a context that expires after the first few
// polls, Find must return Canceled even though every per-path unit was
// already dispatched — proving the prune workers themselves poll ctx (the
// every-1024-candidates convention), not just the between-paths check.
func TestFindCancelMidPrune(t *testing.T) {
	g, ix := synthIx(t, 11)
	rng := rand.New(rand.NewSource(11))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decompose.Decompose(q, ix, decompose.Options{MaxLen: 2, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Allow exactly one successful poll: the entry check passes, then the
	// first in-prune poll (j == 0 of the first path) observes cancellation.
	ctx := &countdownCtx{Context: context.Background(), left: 1}
	_, _, err = Find(ctx, ix, q, dec, 0.01, 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The polling granularity is the join stage's every-1024 convention; a
// drive-by change here would silently coarsen cancellation latency.
func TestPruneCancelGranularity(t *testing.T) {
	if cancelCheckEvery != 1024 {
		t.Fatalf("cancelCheckEvery = %d, want 1024", cancelCheckEvery)
	}
}
