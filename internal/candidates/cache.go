// Per-generation candidate cache: a bounded, sharded LRU over *pruned*
// per-path candidate sets. The expensive prefix of every query — posting
// decode in ix.Lookup plus context pruning — is a pure function of
// (immutable reader, query structure, path node sequence, α), so repeated
// query shapes can skip both stages entirely. Ownership follows the
// plan/result caches: a Cache belongs to exactly one served generation and
// is dropped (never invalidated in place) when the generation is retired.
// Readers that report in-memory mutations (live views with a dirty overlay)
// bypass the cache wholesale; see Find.
package candidates

import (
	"context"
	"encoding/binary"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/decompose"
	"repro/internal/query"
)

const cacheShards = 8

// DefaultCacheBudget bounds the total number of pruned candidates a Cache
// retains across all entries when no explicit budget is given (~tens of MB
// at the typical ~10 nodes/candidate).
const DefaultCacheBudget = 1 << 20

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
// Hits/Misses/Bypassed/Evictions are cumulative for the Cache's lifetime;
// Entries/Candidates describe current residency.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Bypassed   uint64
	Evictions  uint64
	Entries    int
	Candidates int
}

// Cache is a sharded, weight-bounded LRU from (query structure, path node
// sequence, α) to the pruned candidate set for that path. Safe for
// concurrent use. The weight of an entry is its candidate count, so the
// budget bounds retained memory rather than entry count. Concurrent misses
// on the same key are collapsed via per-key singleflight so a hot path's
// postings are decoded and pruned exactly once.
type Cache struct {
	seed     maphash.Seed
	perShard int
	shards   [cacheShards]cacheShard

	hits     atomic.Uint64
	misses   atomic.Uint64
	bypassed atomic.Uint64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	flights map[string]*candFlight
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used
	weight  int
	evicted uint64
}

type cacheEntry struct {
	key        string
	cands      []Candidate
	initial    int
	prev, next *cacheEntry
}

type candFlight struct {
	done    chan struct{}
	cands   []Candidate
	initial int
	err     error
}

// NewCache returns a cache retaining at most budget pruned candidates in
// total (summed over entries). budget <= 0 selects DefaultCacheBudget.
func NewCache(budget int) *Cache {
	if budget <= 0 {
		budget = DefaultCacheBudget
	}
	per := budget / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{seed: maphash.MakeSeed(), perShard: per}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheEntry)
		c.shards[i].flights = make(map[string]*candFlight)
	}
	return c
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Bypassed: c.bypassed.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Candidates += s.weight
		st.Evictions += s.evicted
		s.mu.Unlock()
	}
	return st
}

func (c *Cache) shardFor(key string) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(key)
	return &c.shards[h.Sum64()%cacheShards]
}

// do returns the cached pruned set for key, computing and storing it on a
// miss. Concurrent callers with the same key share one computation; a
// failed computation is not cached, and waiters retry (one of them becomes
// the next leader), so a transient error never poisons the key. The
// returned slice is shared — callers must treat it as immutable.
func (c *Cache) do(ctx context.Context, key string, compute func() ([]Candidate, int, error)) (cands []Candidate, initial int, hit bool, err error) {
	s := c.shardFor(key)
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.touch(e)
			s.mu.Unlock()
			c.hits.Add(1)
			return e.cands, e.initial, true, nil
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, 0, false, ctx.Err()
			}
			if f.err == nil {
				c.hits.Add(1)
				return f.cands, f.initial, true, nil
			}
			continue // leader failed; retry (maybe as leader)
		}
		f := &candFlight{done: make(chan struct{})}
		s.flights[key] = f
		s.mu.Unlock()

		c.misses.Add(1)
		f.cands, f.initial, f.err = compute()
		s.mu.Lock()
		delete(s.flights, key)
		if f.err == nil {
			s.insert(key, f.cands, f.initial, c.perShard)
		}
		s.mu.Unlock()
		close(f.done)
		return f.cands, f.initial, false, f.err
	}
}

// touch moves e to the MRU position. Caller holds s.mu.
func (s *cacheShard) touch(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.push(e)
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.head == e {
		s.head = e.next
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) push(e *cacheEntry) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// insert stores a new entry and evicts from the LRU end until the shard is
// back under budget. An entry heavier than the whole shard budget is still
// admitted alone (weight-capped caches must not refuse the working set's
// largest member — it would recompute forever). Caller holds s.mu.
func (s *cacheShard) insert(key string, cands []Candidate, initial, budget int) {
	if _, ok := s.entries[key]; ok {
		return // raced with another leader after a failed flight; keep first
	}
	e := &cacheEntry{key: key, cands: cands, initial: initial}
	s.entries[key] = e
	s.push(e)
	s.weight += entryWeight(cands)
	for s.weight > budget && s.tail != nil && s.tail != e {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		s.weight -= entryWeight(victim.cands)
		s.evicted++
	}
}

// entryWeight counts an empty pruned set as 1 so α-filtered-to-nothing
// paths still occupy (and age out of) the LRU.
func entryWeight(cands []Candidate) int {
	if len(cands) == 0 {
		return 1
	}
	return len(cands)
}

// queryFingerprint serializes the query structure that pruning depends on:
// node labels (NodeChecker thresholds, path label sequences) and the full
// edge set (neighbor label counts, path cycles/neighbors/reverse all derive
// from adjacency), plus the α bits. Two queries with equal fingerprints
// prune identically against the same reader.
func queryFingerprint(q *query.Query, alpha float64) []byte {
	n := q.NumNodes()
	edges := q.Edges()
	buf := make([]byte, 0, 12+4*n+8*len(edges))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(alpha))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(q.Label(query.NodeID(i))))
	}
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e[0]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e[1]))
	}
	return buf
}

// pathKey appends the path's query-node sequence to the query fingerprint.
// The node sequence (not just its label projection) is required: pruning
// consults per-query-node context (cycles, reverse neighbor positions), so
// two label-identical paths through different query nodes may keep
// different candidates.
func pathKey(prefix []byte, p *decompose.Path) string {
	buf := make([]byte, 0, len(prefix)+4+4*len(p.Nodes))
	buf = append(buf, prefix...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Nodes)))
	for _, n := range p.Nodes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	}
	return string(buf)
}

// mutating is implemented by readers whose answers can drift from their
// backing index (live views carrying a dirty overlay). A non-zero count
// makes Find bypass the cache: overlay state is not part of the key, and
// the server's per-generation ownership only covers published immutable
// snapshots.
type mutating interface {
	Mutations() uint64
}
