// Package candidates implements Section 5.2.2, "Finding Path Candidates":
// for every path in the decomposition it retrieves the initial match set
// from the path index and prunes it with node-level statistics (neighborhood
// label counts and full probability upperbounds) and path-level statistics
// (path-neighborhood upperbounds pu and path-cycle probabilities cpr).
package candidates

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/pathindex"
	"repro/internal/prob"
	"repro/internal/query"
)

// Candidate is one surviving path match: entity nodes aligned with the query
// path's positions, plus the stored probability components.
type Candidate struct {
	Nodes []entity.ID
	Prle  float64
	Prn   float64
}

// Pr returns the candidate's total path probability.
func (c Candidate) Pr() float64 { return c.Prle * c.Prn }

// Set is the candidate list cn(P) for one decomposition path.
type Set struct {
	Path    *decompose.Path
	Cands   []Candidate
	Initial int // |PIndex(lQ(V_P), α)| before pruning
}

// Stats reports the search-space progression of Figure 7(e) plus the
// per-path observed counts the executor feeds back into the planner's
// calibration and adaptive join reorder.
type Stats struct {
	// SSPath is the search space after index lookup only (product of
	// initial candidate counts).
	SSPath float64
	// SSContext is the search space after node- and path-level context
	// pruning.
	SSContext float64
	// Initial[i] is the observed |PIndex(lQ(V_Pi), α)| for decomposition
	// path i — the number the offline histograms only estimated.
	Initial []int
	// Kept[i] is the candidate count for path i surviving context pruning.
	Kept []int
	// CacheHits/CacheMisses/CacheBypassed count per-path candidate-cache
	// outcomes for this call (hits include singleflight joins). All zero
	// when no cache was supplied.
	CacheHits     int
	CacheMisses   int
	CacheBypassed int
}

// NodeChecker memoizes the node-level candidacy test cn(n) of Section
// 5.2.2. Safe for concurrent use.
type NodeChecker struct {
	g     *entity.Graph
	ctx   *pathindex.Context
	q     *query.Query
	alpha float64
	// counts[n] = c(n,·) dense by label.
	counts [][]int

	mu   sync.Mutex
	memo []map[entity.ID]bool
}

// NewNodeChecker prepares the per-query-node statistics.
func NewNodeChecker(g *entity.Graph, ctxInfo *pathindex.Context, q *query.Query, alpha float64) *NodeChecker {
	nc := &NodeChecker{
		g:      g,
		ctx:    ctxInfo,
		q:      q,
		alpha:  alpha,
		counts: make([][]int, q.NumNodes()),
		memo:   make([]map[entity.ID]bool, q.NumNodes()),
	}
	for n := 0; n < q.NumNodes(); n++ {
		nc.counts[n] = q.NeighborLabelCounts(query.NodeID(n), g.NumLabels())
		nc.memo[n] = make(map[entity.ID]bool)
	}
	return nc
}

// OK reports whether entity v is a node-level candidate for query node n.
func (nc *NodeChecker) OK(v entity.ID, n query.NodeID) bool {
	nc.mu.Lock()
	res, ok := nc.memo[n][v]
	nc.mu.Unlock()
	if ok {
		return res
	}
	res = nc.check(v, n)
	nc.mu.Lock()
	nc.memo[n][v] = res
	nc.mu.Unlock()
	return res
}

func (nc *NodeChecker) check(v entity.ID, n query.NodeID) bool {
	// Label probability must clear the threshold on its own (the σ-loop
	// below reduces to this when c(n,σ) = 0).
	lp := nc.g.PrLabel(v, nc.q.Label(n))
	if lp+1e-12 < nc.alpha {
		return false
	}
	for sigma, need := range nc.counts[n] {
		if need == 0 {
			continue
		}
		s := prob.LabelID(sigma)
		// (1) enough neighbors with label σ.
		if nc.ctx.Card(v, s) < need {
			return false
		}
		// (2) label probability times the σ-neighborhood upperbound raised
		// to the required neighbor count must clear α.
		bound := lp
		f := nc.ctx.FPU(v, s)
		for i := 0; i < need; i++ {
			bound *= f
		}
		if bound+1e-12 < nc.alpha {
			return false
		}
	}
	return true
}

// Find runs the candidate generation stage for every decomposition path.
// Paths are independent units (posting lookup fused with context pruning),
// so with workers > 1 they are fanned out across the pool; results land in
// deterministic per-path slots and the Stats products are accumulated in
// path order afterwards, so the output — float bits included — is
// identical to the sequential walk at any worker count.
//
// cache may be nil. A non-nil cache serves pruned per-path sets keyed by
// (query structure, path node sequence, α) and is only sound against the
// single immutable reader it was created for; readers reporting pending
// mutations (live views with a dirty overlay) bypass it wholesale, since
// overlay state is not part of the key.
func Find(ctx context.Context, ix pathindex.Reader, q *query.Query, dec *decompose.Decomposition, alpha float64, workers int, cache *Cache) ([]Set, Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := ix.Graph()
	nc := NewNodeChecker(g, ix.Context(), q, alpha)

	n := len(dec.Paths)
	sets := make([]Set, n)
	stats := Stats{
		SSPath:    1,
		SSContext: 1,
		Initial:   make([]int, n),
		Kept:      make([]int, n),
	}

	if cache != nil {
		if m, ok := ix.(mutating); ok && m.Mutations() > 0 {
			cache.bypassed.Add(uint64(n))
			stats.CacheBypassed = n
			cache = nil
		}
	}
	var prefix []byte
	if cache != nil {
		prefix = queryFingerprint(q, alpha)
	}

	pathWorkers := workers
	if pathWorkers > n {
		pathWorkers = n
	}
	// Prune width per path: splitting the pool across concurrent paths
	// keeps total goroutine count ~= workers; the chunk concatenation in
	// prune is order-preserving at any width, so this is a pure scheduling
	// choice.
	pruneWorkers := 1
	if pathWorkers > 0 {
		pruneWorkers = workers / pathWorkers
		if pruneWorkers < 1 {
			pruneWorkers = 1
		}
	}

	hits := make([]bool, n)
	findPath := func(i int) error {
		p := &dec.Paths[i]
		compute := func() ([]Candidate, int, error) {
			matches, err := ix.Lookup(p.Labels, alpha)
			if err != nil {
				return nil, 0, err
			}
			kept, err := prune(ctx, g, nc, p, matches, alpha, pruneWorkers)
			if err != nil {
				return nil, 0, err
			}
			return kept, len(matches), nil
		}
		var (
			kept    []Candidate
			initial int
			err     error
		)
		if cache != nil {
			kept, initial, hits[i], err = cache.do(ctx, pathKey(prefix, p), compute)
		} else {
			kept, initial, err = compute()
		}
		if err != nil {
			return err
		}
		sets[i] = Set{Path: p, Cands: kept, Initial: initial}
		stats.Initial[i] = initial
		stats.Kept[i] = len(kept)
		return nil
	}

	if pathWorkers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, Stats{}, err
			}
			if err := findPath(i); err != nil {
				return nil, Stats{}, err
			}
		}
	} else {
		errs := make([]error, n)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < pathWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if err := ctx.Err(); err != nil {
						errs[i] = err
						continue
					}
					errs[i] = findPath(i)
				}
			}()
		}
		wg.Wait()
		// Report the first failing path in index order, matching what the
		// sequential walk would have surfaced.
		for _, err := range errs {
			if err != nil {
				return nil, Stats{}, err
			}
		}
	}

	// Accumulate the search-space products and cache counters in path
	// order so the float results are bitwise-stable across worker counts.
	for i := 0; i < n; i++ {
		stats.SSPath *= float64(stats.Initial[i])
		stats.SSContext *= float64(stats.Kept[i])
		if hits[i] {
			stats.CacheHits++
		}
	}
	if cache != nil {
		stats.CacheMisses = n - stats.CacheHits
	}
	return sets, stats, nil
}

// cancelCheckEvery matches the join stage's polling convention: each prune
// worker consults ctx once per this many candidates, so a single huge
// path's prune is cancellable mid-flight.
const cancelCheckEvery = 1024

func prune(ctx context.Context, g *entity.Graph, nc *NodeChecker, p *decompose.Path, matches []pathindex.PathMatch, alpha float64, workers int) ([]Candidate, error) {
	if len(matches) == 0 {
		return nil, nil
	}
	if workers > len(matches) {
		workers = len(matches)
	}
	if workers <= 1 {
		var out []Candidate
		for j, m := range matches {
			if j%cancelCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if keepCandidate(g, nc, p, m, alpha) {
				out = append(out, Candidate{Nodes: m.Nodes, Prle: m.Prle, Prn: m.Prn})
			}
		}
		return out, nil
	}
	results := make([][]Candidate, workers)
	var canceled atomic.Bool
	var wg sync.WaitGroup
	chunk := (len(matches) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(matches) {
			hi = len(matches)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []Candidate
			for j, m := range matches[lo:hi] {
				if j%cancelCheckEvery == 0 && ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				if keepCandidate(g, nc, p, m, alpha) {
					out = append(out, Candidate{Nodes: m.Nodes, Prle: m.Prle, Prn: m.Prn})
				}
			}
			results[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	if canceled.Load() {
		return nil, ctx.Err()
	}
	// Chunks concatenate in worker order — identical to the sequential
	// scan order regardless of width.
	var kept []Candidate
	for _, r := range results {
		kept = append(kept, r...)
	}
	return kept, nil
}

// keepCandidate applies the two path-level tests of Section 5.2.2.
func keepCandidate(g *entity.Graph, nc *NodeChecker, p *decompose.Path, m pathindex.PathMatch, alpha float64) bool {
	// (1) every node must be a node-level candidate for its query node.
	for pos, v := range m.Nodes {
		if !nc.OK(v, p.Nodes[pos]) {
			return false
		}
	}
	// (2) (Prle·Prn) · pu · cpr ≥ α.
	bound := m.Prle * m.Prn
	if bound+1e-12 < alpha {
		return false
	}
	cpr := pathCyclesProb(g, nc.q, p, m)
	if cpr == 0 {
		return false
	}
	bound *= cpr
	if bound+1e-12 < alpha {
		return false
	}
	bound *= neighborhoodUpperbound(nc, p, m)
	return bound+1e-12 >= alpha
}

// pathCyclesProb is cpr(Pu): the product of existence probabilities of the
// query chords instantiated on the candidate path. A missing GU edge yields
// zero (the structural part of the test).
func pathCyclesProb(g *entity.Graph, q *query.Query, p *decompose.Path, m pathindex.PathMatch) float64 {
	pr := 1.0
	for _, cyc := range p.Info.Cycles {
		u, v := m.Nodes[cyc[0]], m.Nodes[cyc[1]]
		ep, ok := g.EdgeBetween(u, v)
		if !ok {
			return 0
		}
		pr *= ep.Prob(q.Label(p.Nodes[cyc[0]]), q.Label(p.Nodes[cyc[1]]))
		if pr == 0 {
			return 0
		}
	}
	return pr
}

// neighborhoodUpperbound is pu(Pu): for every path neighbor m' ∈ Γ(P), the
// tightest bound over its reverse path neighbors, combining one full
// probability upperbound with partial upperbounds for the rest.
func neighborhoodUpperbound(nc *NodeChecker, p *decompose.Path, m pathindex.PathMatch) float64 {
	pu := 1.0
	for _, nb := range p.Info.Neighbors {
		sigma := nc.q.Label(nb)
		rv := p.Info.Reverse[nb]
		best := -1.0
		for _, nPos := range rv {
			val := nc.ctx.FPU(m.Nodes[nPos], sigma)
			for _, oPos := range rv {
				if oPos == nPos {
					continue
				}
				val *= nc.ctx.PPU(m.Nodes[oPos], sigma)
			}
			if best < 0 || val < best {
				best = val
			}
		}
		if best >= 0 {
			pu *= best
			if pu == 0 {
				return 0
			}
		}
	}
	return pu
}
