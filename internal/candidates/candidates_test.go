package candidates

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/fixtures"
	"repro/internal/pathindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/refgraph"
)

func buildIx(t *testing.T, g *entity.Graph, L int, beta float64) *pathindex.Index {
	t.Helper()
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: L, Beta: beta, Gamma: 0.1, Dir: filepath.Join(t.TempDir(), "ix"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func motivating(t *testing.T) (*entity.Graph, *pathindex.Index, *query.Query) {
	t.Helper()
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.01)
	alpha := g.Alphabet()
	q := query.New()
	q1 := q.AddNode(alpha.ID("r"))
	q2 := q.AddNode(alpha.ID("a"))
	q3 := q.AddNode(alpha.ID("i"))
	if err := q.AddEdge(q1, q2); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(q2, q3); err != nil {
		t.Fatal(err)
	}
	return g, ix, q
}

func TestFindMotivating(t *testing.T) {
	g, ix, q := motivating(t)
	dec, err := decompose.Decompose(q, ix, decompose.Options{MaxLen: 2, Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sets, stats, err := Find(context.Background(), ix, q, dec, 0.2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != len(dec.Paths) {
		t.Fatalf("sets = %d, paths = %d", len(sets), len(dec.Paths))
	}
	total := 0
	for _, s := range sets {
		total += len(s.Cands)
		for _, c := range s.Cands {
			if c.Pr()+1e-9 < 0.2 {
				t.Errorf("candidate below threshold: %v %v", c.Nodes, c.Pr())
			}
			if !g.NodesRefsDisjoint(c.Nodes) {
				t.Errorf("candidate with shared refs: %v", c.Nodes)
			}
		}
	}
	if total == 0 {
		t.Fatal("no candidates survived for a satisfiable query")
	}
	if stats.SSPath < stats.SSContext {
		t.Errorf("pruning grew the search space: %v → %v", stats.SSPath, stats.SSContext)
	}
}

// Pruning soundness: every node of every true match must survive node-level
// candidacy, and the matched paths must survive path-level pruning.
func TestPruningSound(t *testing.T) {
	g, ix, q := motivating(t)
	nc := NewNodeChecker(g, ix.Context(), q, 0.2)
	// (s34, s2, s1) is the unique match at α=0.2.
	match := []entity.ID{fixtures.S34, fixtures.S2, fixtures.S1}
	for pos, v := range match {
		if !nc.OK(v, query.NodeID(pos)) {
			t.Errorf("node-level pruning rejected true match node %d at position %d", v, pos)
		}
	}
}

func TestNodeCheckerCardinality(t *testing.T) {
	// A query node with two b-neighbors only matches entities with ≥ 2
	// b-labeled GU neighbors.
	alpha := prob.MustAlphabet("a", "b")
	d := refgraph.New(alpha)
	hub := d.AddReference(prob.Point(0))
	leaf1 := d.AddReference(prob.Point(1))
	leaf2 := d.AddReference(prob.Point(1))
	poor := d.AddReference(prob.Point(0))
	leaf3 := d.AddReference(prob.Point(1))
	for _, e := range [][2]refgraph.RefID{{hub, leaf1}, {hub, leaf2}, {poor, leaf3}} {
		if err := d.AddEdge(e[0], e[1], refgraph.EdgeDist{P: 1}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 1, 0.1)

	q := query.New()
	center := q.AddNode(0)
	b1 := q.AddNode(1)
	b2 := q.AddNode(1)
	if err := q.AddEdge(center, b1); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(center, b2); err != nil {
		t.Fatal(err)
	}
	nc := NewNodeChecker(g, ix.Context(), q, 0.5)
	if !nc.OK(entity.ID(hub), center) {
		t.Error("hub rejected despite sufficient b-neighbors")
	}
	if nc.OK(entity.ID(poor), center) {
		t.Error("poor node accepted with c(v,b)=1 < c(n,b)=2")
	}
	// Memoization returns the same answer.
	if !nc.OK(entity.ID(hub), center) {
		t.Error("memoized result differs")
	}
}

func TestPathCyclePruning(t *testing.T) {
	// Triangle query over a graph that has a 3-path but no closing edge:
	// cpr = 0 must prune the candidate.
	alpha := prob.MustAlphabet("a", "b", "c")
	d := refgraph.New(alpha)
	na := d.AddReference(prob.Point(0))
	nb := d.AddReference(prob.Point(1))
	nc := d.AddReference(prob.Point(2))
	if err := d.AddEdge(na, nb, refgraph.EdgeDist{P: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(nb, nc, refgraph.EdgeDist{P: 1}); err != nil {
		t.Fatal(err)
	}
	// No edge a–c.
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIx(t, g, 2, 0.1)

	q := query.New()
	qa := q.AddNode(0)
	qb := q.AddNode(1)
	qc := q.AddNode(2)
	for _, e := range [][2]query.NodeID{{qa, qb}, {qb, qc}, {qa, qc}} {
		if err := q.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := decompose.Decompose(q, ix, decompose.Options{MaxLen: 2, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sets, _, err := Find(context.Background(), ix, q, dec, 0.5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Any 2-edge path in the decomposition has a chord; its (a,b,c)
	// candidate must be pruned by cpr = 0.
	for _, s := range sets {
		if len(s.Path.Info.Cycles) > 0 && len(s.Cands) != 0 {
			t.Errorf("chord-bearing path kept candidates: %+v", s.Cands)
		}
	}
}
