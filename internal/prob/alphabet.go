// Package prob provides the probability primitives shared by the whole
// system: label alphabets, discrete label distributions, Bernoulli edge
// probabilities, and the merge functions of Definition 1 of the paper
// (mΣ and m{T,F}) used to aggregate reference-level distributions into
// entity-level ones.
package prob

import (
	"fmt"
	"sort"
)

// LabelID is the interned form of a node label. Labels are interned through
// an Alphabet so that hot paths can use dense integer indices instead of
// strings.
type LabelID int32

// NoLabel is returned by lookups that fail.
const NoLabel LabelID = -1

// Alphabet is an immutable-after-construction mapping between label strings
// and dense LabelIDs. The zero value is empty and unusable; use NewAlphabet.
type Alphabet struct {
	names []string
	ids   map[string]LabelID
}

// NewAlphabet interns the given labels in order. Duplicate labels are
// rejected so that IDs remain unambiguous.
func NewAlphabet(labels ...string) (*Alphabet, error) {
	a := &Alphabet{ids: make(map[string]LabelID, len(labels))}
	for _, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("prob: empty label")
		}
		if _, dup := a.ids[l]; dup {
			return nil, fmt.Errorf("prob: duplicate label %q", l)
		}
		a.ids[l] = LabelID(len(a.names))
		a.names = append(a.names, l)
	}
	return a, nil
}

// MustAlphabet is NewAlphabet for static label sets known to be valid.
func MustAlphabet(labels ...string) *Alphabet {
	a, err := NewAlphabet(labels...)
	if err != nil {
		panic(err)
	}
	return a
}

// Len returns the number of labels in the alphabet.
func (a *Alphabet) Len() int { return len(a.names) }

// ID returns the LabelID for the given label, or NoLabel if absent.
func (a *Alphabet) ID(label string) LabelID {
	if id, ok := a.ids[label]; ok {
		return id
	}
	return NoLabel
}

// Name returns the label string for id. It panics on out-of-range ids, which
// indicate corrupted data rather than user error.
func (a *Alphabet) Name(id LabelID) string {
	return a.names[id]
}

// Names returns a copy of all labels in ID order.
func (a *Alphabet) Names() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// SortedNames returns all labels sorted lexicographically, independent of
// intern order. Useful for deterministic output.
func (a *Alphabet) SortedNames() []string {
	out := a.Names()
	sort.Strings(out)
	return out
}
