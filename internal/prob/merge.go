package prob

import "fmt"

// LabelMerge is the node label merge function mΣ of Definition 1: it
// transforms the label distributions of all references in an entity into the
// entity's label distribution.
type LabelMerge func(dists []Dist) Dist

// EdgeMerge is the edge existence merge function m{T,F} of Definition 1: it
// transforms the existence probabilities of all reference-pair edges between
// two entities into the entity edge's existence probability.
//
// Following the worked example in Section 2 (where the merged edge
// s34–s2 = avg(1, 0.5) = 0.75 averages only the two reference edges that
// exist), the input contains only the probabilities of reference pairs that
// actually carry an edge in the PGD; absent pairs contribute nothing.
type EdgeMerge func(ps []float64) float64

// AverageLabels is the mΣ used throughout the paper's experiments: the
// entry-wise arithmetic mean of the input distributions.
func AverageLabels(dists []Dist) Dist {
	switch len(dists) {
	case 0:
		return Dist{}
	case 1:
		return dists[0]
	}
	acc := make(map[LabelID]float64)
	for _, d := range dists {
		for _, e := range d.entries {
			acc[e.Label] += e.P
		}
	}
	n := float64(len(dists))
	entries := make([]LabelProb, 0, len(acc))
	for l, p := range acc {
		entries = append(entries, LabelProb{Label: l, P: p / n})
	}
	return MustDist(entries...)
}

// AverageEdges is the m{T,F} used throughout the paper's experiments: the
// arithmetic mean of the input existence probabilities.
func AverageEdges(ps []float64) float64 {
	if len(ps) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ps {
		sum += p
	}
	return sum / float64(len(ps))
}

// DisjunctEdges is the alternative m{T,F} named in Section 3: the noisy-or
// (disjunction) of the input existence probabilities,
// 1 - ∏(1 - pᵢ).
func DisjunctEdges(ps []float64) float64 {
	q := 1.0
	for _, p := range ps {
		q *= 1 - p
	}
	return 1 - q
}

// MaxEdges keeps the most confident reference edge. Provided as an extra
// user-selectable merge (the model is explicitly parameterized by merge
// functions).
func MaxEdges(ps []float64) float64 {
	m := 0.0
	for _, p := range ps {
		if p > m {
			m = p
		}
	}
	return m
}

// MergeFuncs bundles the two merge functions of a PGD.
type MergeFuncs struct {
	Labels LabelMerge
	Edges  EdgeMerge
}

// DefaultMerge returns the merge functions used in the paper's experimental
// evaluation: average for both labels and edges.
func DefaultMerge() MergeFuncs {
	return MergeFuncs{Labels: AverageLabels, Edges: AverageEdges}
}

// NamedEdgeMerge resolves a merge function by name, for CLI use and for the
// PGD snapshot header. The empty name means the default (average).
func NamedEdgeMerge(name string) (EdgeMerge, error) {
	switch name {
	case "average", "avg", "":
		return AverageEdges, nil
	case "disjunct", "noisy-or":
		return DisjunctEdges, nil
	case "max":
		return MaxEdges, nil
	}
	return nil, fmt.Errorf("prob: unknown edge merge %q (want average, disjunct, or max)", name)
}

// NamedLabelMerge resolves a label merge function by name, for the PGD
// snapshot header. The empty name means the default (average).
func NamedLabelMerge(name string) (LabelMerge, error) {
	switch name {
	case "average", "avg", "":
		return AverageLabels, nil
	}
	return nil, fmt.Errorf("prob: unknown label merge %q (want average)", name)
}

// MergeCustom is the merge-function identifier recorded for merge functions
// installed as raw function values (PGD.SetMerge), which cannot be
// serialized. Snapshots recording it fail to load — see refgraph.Load.
const MergeCustom = "custom"
