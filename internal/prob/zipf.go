package prob

import "math/rand"

// ZipfDist generates a random label distribution the way Section 6 of the
// paper does for synthetic data: draw random probabilities p₁…p_|Σ|, weigh
// them by a Zipf law p'ᵢ = pᵢ/i to introduce skew, normalize, and assign the
// resulting probabilities to labels in random order.
func ZipfDist(rng *rand.Rand, n int) Dist {
	if n <= 0 {
		return Dist{}
	}
	ps := make([]float64, n)
	sum := 0.0
	for i := range ps {
		p := rng.Float64() / float64(i+1)
		ps[i] = p
		sum += p
	}
	// Guard against the (measure-zero) all-zeros draw.
	if sum == 0 {
		return Point(LabelID(rng.Intn(n)))
	}
	perm := rng.Perm(n)
	entries := make([]LabelProb, 0, n)
	for i, p := range ps {
		if p == 0 {
			continue
		}
		entries = append(entries, LabelProb{Label: LabelID(perm[i]), P: p / sum})
	}
	return MustDist(entries...)
}

// ZipfProb generates a single random existence probability skewed the same
// way the paper skews edge probabilities: a uniform draw damped by a Zipf
// weight for a random rank among n. The result is clamped away from zero so
// edges never silently vanish.
func ZipfProb(rng *rand.Rand, n int) float64 {
	if n <= 1 {
		return rng.Float64()
	}
	rank := rng.Intn(n) + 1
	p := rng.Float64() / float64(rank)
	// Normalize back into a useful range: the expected maximum of the
	// weighted draw is 1 (rank 1), so rescale mildly rather than strictly.
	if p < 0.01 {
		p = 0.01
	}
	return p
}
