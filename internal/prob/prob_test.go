package prob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAlphabetBasics(t *testing.T) {
	a, err := NewAlphabet("a", "r", "i")
	if err != nil {
		t.Fatalf("NewAlphabet: %v", err)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	if id := a.ID("r"); id != 1 {
		t.Errorf("ID(r) = %d, want 1", id)
	}
	if id := a.ID("missing"); id != NoLabel {
		t.Errorf("ID(missing) = %d, want NoLabel", id)
	}
	if n := a.Name(2); n != "i" {
		t.Errorf("Name(2) = %q, want i", n)
	}
	names := a.Names()
	if len(names) != 3 || names[0] != "a" {
		t.Errorf("Names = %v", names)
	}
	// Names must be a copy.
	names[0] = "mutated"
	if a.Name(0) != "a" {
		t.Error("Names() aliases internal storage")
	}
}

func TestAlphabetErrors(t *testing.T) {
	if _, err := NewAlphabet("a", "a"); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := NewAlphabet(""); err == nil {
		t.Error("empty label accepted")
	}
}

func TestAlphabetSortedNames(t *testing.T) {
	a := MustAlphabet("z", "a", "m")
	got := a.SortedNames()
	if got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("SortedNames = %v", got)
	}
}

func TestDistBasics(t *testing.T) {
	d, err := NewDist(LabelProb{0, 0.25}, LabelProb{2, 0.75})
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	if p := d.P(0); math.Abs(p-0.25) > Eps {
		t.Errorf("P(0) = %v", p)
	}
	if p := d.P(1); p != 0 {
		t.Errorf("P(1) = %v, want 0", p)
	}
	if p := d.P(2); math.Abs(p-0.75) > Eps {
		t.Errorf("P(2) = %v", p)
	}
	sup := d.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Errorf("Support = %v", sup)
	}
	if m := d.MaxP(); math.Abs(m-0.75) > Eps {
		t.Errorf("MaxP = %v", m)
	}
}

func TestDistDropsZeroEntries(t *testing.T) {
	d := MustDist(LabelProb{0, 1}, LabelProb{1, 0})
	if len(d.Support()) != 1 {
		t.Errorf("zero entry kept: %v", d.Support())
	}
}

func TestDistErrors(t *testing.T) {
	if _, err := NewDist(LabelProb{0, 0.5}); err == nil {
		t.Error("non-normalized distribution accepted")
	}
	if _, err := NewDist(LabelProb{0, 0.5}, LabelProb{0, 0.5}); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := NewDist(LabelProb{0, -0.1}, LabelProb{1, 1.1}); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestPoint(t *testing.T) {
	d := Point(3)
	if p := d.P(3); p != 1 {
		t.Errorf("P(3) = %v, want 1", p)
	}
	if d.IsZero() {
		t.Error("Point dist reported zero")
	}
	if !(Dist{}).IsZero() {
		t.Error("zero dist not reported zero")
	}
}

func TestDistEqual(t *testing.T) {
	a := MustDist(LabelProb{0, 0.5}, LabelProb{1, 0.5})
	b := MustDist(LabelProb{1, 0.5}, LabelProb{0, 0.5})
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	c := MustDist(LabelProb{0, 0.4}, LabelProb{1, 0.6})
	if a.Equal(c) {
		t.Error("unequal dists reported equal")
	}
}

func TestDistStrings(t *testing.T) {
	a := MustAlphabet("x", "y")
	d := MustDist(LabelProb{0, 0.25}, LabelProb{1, 0.75})
	if s := d.String(); s == "" {
		t.Error("empty String()")
	}
	if s := d.Format(a); s != "{x:0.25, y:0.75}" {
		t.Errorf("Format = %q", s)
	}
}

func TestAverageLabels(t *testing.T) {
	// The motivating example: r(0.5), i(0.5) = average of r(1) and i(1).
	r, i := LabelID(0), LabelID(1)
	got := AverageLabels([]Dist{Point(r), Point(i)})
	want := MustDist(LabelProb{r, 0.5}, LabelProb{i, 0.5})
	if !got.Equal(want) {
		t.Errorf("AverageLabels = %v, want %v", got, want)
	}
}

func TestAverageLabelsSingleAndEmpty(t *testing.T) {
	d := Point(0)
	if got := AverageLabels([]Dist{d}); !got.Equal(d) {
		t.Errorf("single input changed: %v", got)
	}
	if got := AverageLabels(nil); !got.IsZero() {
		t.Errorf("empty input not zero: %v", got)
	}
}

func TestAverageEdges(t *testing.T) {
	// The motivating example: merged edge = avg(1, 0.5) = 0.75.
	if got := AverageEdges([]float64{1, 0.5}); math.Abs(got-0.75) > Eps {
		t.Errorf("AverageEdges = %v, want 0.75", got)
	}
	if got := AverageEdges(nil); got != 0 {
		t.Errorf("AverageEdges(nil) = %v", got)
	}
}

func TestDisjunctEdges(t *testing.T) {
	got := DisjunctEdges([]float64{0.5, 0.5})
	if math.Abs(got-0.75) > Eps {
		t.Errorf("DisjunctEdges = %v, want 0.75", got)
	}
	if got := DisjunctEdges(nil); got != 0 {
		t.Errorf("DisjunctEdges(nil) = %v", got)
	}
	if got := DisjunctEdges([]float64{1, 0.2}); math.Abs(got-1) > Eps {
		t.Errorf("DisjunctEdges with certain edge = %v, want 1", got)
	}
}

func TestMaxEdges(t *testing.T) {
	if got := MaxEdges([]float64{0.2, 0.9, 0.5}); got != 0.9 {
		t.Errorf("MaxEdges = %v", got)
	}
}

func TestNamedEdgeMerge(t *testing.T) {
	for _, name := range []string{"average", "avg", "", "disjunct", "noisy-or", "max"} {
		if _, err := NamedEdgeMerge(name); err != nil {
			t.Errorf("NamedEdgeMerge(%q): %v", name, err)
		}
	}
	if _, err := NamedEdgeMerge("bogus"); err == nil {
		t.Error("bogus merge name accepted")
	}
}

func TestDefaultMerge(t *testing.T) {
	m := DefaultMerge()
	if m.Labels == nil || m.Edges == nil {
		t.Fatal("DefaultMerge returned nil functions")
	}
}

// Property: AverageLabels of valid distributions is a valid distribution
// (sums to 1, entries in [0,1]).
func TestAverageLabelsNormalizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(n%5) + 1
		dists := make([]Dist, k)
		for i := range dists {
			dists[i] = ZipfDist(r, 6)
		}
		m := AverageLabels(dists)
		sum := 0.0
		for _, e := range m.Entries() {
			if e.P < 0 || e.P > 1+Eps {
				return false
			}
			sum += e.P
		}
		return math.Abs(sum-1) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: DisjunctEdges is monotone in each argument and bounded by [0,1].
func TestDisjunctEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ps := make([]float64, r.Intn(6)+1)
		for i := range ps {
			ps[i] = r.Float64()
		}
		d := DisjunctEdges(ps)
		if d < 0 || d > 1 {
			return false
		}
		// Raising any probability must not lower the disjunction.
		i := r.Intn(len(ps))
		old := ps[i]
		ps[i] = old + (1-old)*r.Float64()
		return DisjunctEdges(ps) >= d-Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ZipfDist always yields a normalized distribution over the
// requested alphabet size.
func TestZipfDistProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(n%10) + 1
		d := ZipfDist(r, k)
		sum := 0.0
		for _, e := range d.Entries() {
			if e.Label < 0 || int(e.Label) >= k {
				return false
			}
			sum += e.P
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZipfDistEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if d := ZipfDist(rng, 0); !d.IsZero() {
		t.Errorf("ZipfDist(0) = %v", d)
	}
	d := ZipfDist(rng, 1)
	if p := d.P(0); math.Abs(p-1) > Eps {
		t.Errorf("ZipfDist(1) P(0) = %v", p)
	}
}

func TestZipfProbRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		p := ZipfProb(rng, 10)
		if p <= 0 || p > 1 {
			t.Fatalf("ZipfProb out of range: %v", p)
		}
	}
}

func TestZipfDistSkew(t *testing.T) {
	// With the Zipf weighting, earlier ranks get more mass on average; after
	// random permutation the *distribution of max probabilities* should be
	// clearly skewed: the mean max probability over many draws exceeds the
	// uniform value 1/k.
	rng := rand.New(rand.NewSource(11))
	const k = 8
	sum := 0.0
	const trials = 500
	for i := 0; i < trials; i++ {
		sum += ZipfDist(rng, k).MaxP()
	}
	if mean := sum / trials; mean < 1.5/k {
		t.Errorf("mean max probability %v suggests no skew", mean)
	}
}
