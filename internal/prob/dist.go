package prob

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Eps is the tolerance used when validating that distributions sum to one
// and when comparing probabilities for equality.
const Eps = 1e-9

// LabelProb is one (label, probability) entry of a sparse distribution.
type LabelProb struct {
	Label LabelID
	P     float64
}

// Dist is a sparse discrete probability distribution over labels, stored as
// entries sorted by LabelID with strictly positive probabilities. The zero
// value is an empty (invalid) distribution.
//
// Dist corresponds to pr(r.x) in Definition 1 and to the node label factors
// Pr(s.l) of Definition 2.
type Dist struct {
	entries []LabelProb
}

// NewDist builds a distribution from the given entries. Entries with zero
// probability are dropped; duplicates are rejected; the result must sum to
// one within Eps.
func NewDist(entries ...LabelProb) (Dist, error) {
	es := make([]LabelProb, 0, len(entries))
	for _, e := range entries {
		if e.P < 0 || e.P > 1+Eps {
			return Dist{}, fmt.Errorf("prob: probability %v out of range for label %d", e.P, e.Label)
		}
		if e.P > 0 {
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Label < es[j].Label })
	sum := 0.0
	for i, e := range es {
		if i > 0 && es[i-1].Label == e.Label {
			return Dist{}, fmt.Errorf("prob: duplicate label %d in distribution", e.Label)
		}
		sum += e.P
	}
	if math.Abs(sum-1) > 1e-6 {
		return Dist{}, fmt.Errorf("prob: distribution sums to %v, want 1", sum)
	}
	return Dist{entries: es}, nil
}

// MustDist is NewDist for distributions known to be valid.
func MustDist(entries ...LabelProb) Dist {
	d, err := NewDist(entries...)
	if err != nil {
		panic(err)
	}
	return d
}

// Point returns the deterministic distribution that puts all mass on label.
func Point(label LabelID) Dist {
	return Dist{entries: []LabelProb{{Label: label, P: 1}}}
}

// IsZero reports whether d is the zero (unset) distribution.
func (d Dist) IsZero() bool { return len(d.entries) == 0 }

// P returns the probability of the given label (zero if absent).
func (d Dist) P(label LabelID) float64 {
	i := sort.Search(len(d.entries), func(i int) bool { return d.entries[i].Label >= label })
	if i < len(d.entries) && d.entries[i].Label == label {
		return d.entries[i].P
	}
	return 0
}

// Support returns the labels with non-zero probability, in LabelID order.
// This is the set L(s) used to label nodes of the certain graph GU.
func (d Dist) Support() []LabelID {
	out := make([]LabelID, len(d.entries))
	for i, e := range d.entries {
		out[i] = e.Label
	}
	return out
}

// Entries returns a copy of the (label, probability) pairs in LabelID order.
func (d Dist) Entries() []LabelProb {
	out := make([]LabelProb, len(d.entries))
	copy(out, d.entries)
	return out
}

// MaxP returns the largest probability in the distribution (0 if empty).
func (d Dist) MaxP() float64 {
	m := 0.0
	for _, e := range d.entries {
		if e.P > m {
			m = e.P
		}
	}
	return m
}

// Equal reports whether two distributions are equal within Eps.
func (d Dist) Equal(o Dist) bool {
	if len(d.entries) != len(o.entries) {
		return false
	}
	for i := range d.entries {
		if d.entries[i].Label != o.entries[i].Label {
			return false
		}
		if math.Abs(d.entries[i].P-o.entries[i].P) > Eps {
			return false
		}
	}
	return true
}

// String renders the distribution using raw label ids, for debugging.
func (d Dist) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range d.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%.4g", e.Label, e.P)
	}
	b.WriteByte('}')
	return b.String()
}

// Format renders the distribution with label names from the alphabet.
func (d Dist) Format(a *Alphabet) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range d.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%.4g", a.Name(e.Label), e.P)
	}
	b.WriteByte('}')
	return b.String()
}
