package refgraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/prob"
)

// Binary snapshot format. A PGD file is the offline phase's input artifact
// (cmd/peggen writes one, cmd/pegbuild reads it). Version 2 added the merge
// function identifiers to the header; version 1 files (which never recorded
// them) still load with the defaults.
const (
	magic   = "PGD1"
	version = 2
)

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) u8(v uint8) {
	if b.err == nil {
		b.err = b.w.WriteByte(v)
	}
}

func (b *binWriter) u32(v uint32) {
	if b.err == nil {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		_, b.err = b.w.Write(buf[:])
	}
}

func (b *binWriter) f64(v float64) {
	if b.err == nil {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, b.err = b.w.Write(buf[:])
	}
}

func (b *binWriter) str(s string) {
	b.u32(uint32(len(s)))
	if b.err == nil {
		_, b.err = b.w.WriteString(s)
	}
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) u8() uint8 {
	if b.err != nil {
		return 0
	}
	v, err := b.r.ReadByte()
	b.err = err
	return v
}

func (b *binReader) u32() uint32 {
	if b.err != nil {
		return 0
	}
	var buf [4]byte
	_, b.err = io.ReadFull(b.r, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (b *binReader) f64() float64 {
	if b.err != nil {
		return 0
	}
	var buf [8]byte
	_, b.err = io.ReadFull(b.r, buf[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

func (b *binReader) str() string {
	n := b.u32()
	if b.err != nil {
		return ""
	}
	if n > 1<<20 {
		b.err = fmt.Errorf("refgraph: string length %d too large", n)
		return ""
	}
	buf := make([]byte, n)
	_, b.err = io.ReadFull(b.r, buf)
	return string(buf)
}

// Save writes the PGD as a versioned binary snapshot. The merge functions
// are code and cannot be serialized; instead the header records their
// registry identifiers (see SetNamedMerge) so Load can re-resolve them —
// or fail loudly instead of silently restoring defaults when the PGD
// carried unregistered custom functions.
func (g *PGD) Save(w io.Writer) error {
	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.str(magic)
	bw.u8(version)
	bw.str(g.mergeLabelName)
	bw.str(g.mergeEdgeName)

	names := g.alphabet.Names()
	bw.u32(uint32(len(names)))
	for _, n := range names {
		bw.str(n)
	}

	bw.u32(uint32(len(g.labels)))
	for _, d := range g.labels {
		es := d.Entries()
		bw.u32(uint32(len(es)))
		for _, e := range es {
			bw.u32(uint32(e.Label))
			bw.f64(e.P)
		}
	}

	// Edge and prior maps are written in sorted key order so snapshots are
	// deterministic (equal PGDs produce equal bytes).
	keys := make([]EdgeKey, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	bw.u32(uint32(len(keys)))
	for _, k := range keys {
		e := g.edges[k]
		bw.u32(uint32(k.A))
		bw.u32(uint32(k.B))
		bw.f64(e.P)
		if e.CPT != nil {
			bw.u8(1)
			for _, p := range e.CPT {
				bw.f64(p)
			}
		} else {
			bw.u8(0)
		}
	}

	bw.u32(uint32(len(g.sets)))
	for _, s := range g.sets {
		bw.u32(uint32(len(s.Members)))
		for _, m := range s.Members {
			bw.u32(uint32(m))
		}
		bw.f64(s.P)
	}

	refs := make([]RefID, 0, len(g.singletonPrior))
	for r := range g.singletonPrior {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	bw.u32(uint32(len(refs)))
	for _, r := range refs {
		bw.u32(uint32(r))
		bw.f64(g.singletonPrior[r])
	}

	if bw.err != nil {
		return fmt.Errorf("refgraph: save: %w", bw.err)
	}
	return bw.w.Flush()
}

// Load reads a PGD binary snapshot written by Save. Version 2 snapshots
// record the merge-function identifiers; Load re-installs the named
// functions and fails loudly when a snapshot was saved from a PGD carrying
// unregistered custom merge functions (identifier prob.MergeCustom), since
// restoring the defaults would silently change every merged probability.
// Version 1 snapshots predate the header field and load with the defaults.
func Load(r io.Reader) (*PGD, error) {
	br := &binReader{r: bufio.NewReader(r)}
	if m := br.str(); br.err == nil && m != magic {
		return nil, fmt.Errorf("refgraph: bad magic %q", m)
	}
	v := br.u8()
	if br.err == nil && v != 1 && v != version {
		return nil, fmt.Errorf("refgraph: unsupported version %d", v)
	}
	mergeLabels, mergeEdges := "average", "average"
	if v == version {
		mergeLabels = br.str()
		mergeEdges = br.str()
	}
	if br.err != nil {
		return nil, fmt.Errorf("refgraph: load header: %w", br.err)
	}
	if mergeLabels == prob.MergeCustom || mergeEdges == prob.MergeCustom {
		return nil, fmt.Errorf("refgraph: snapshot was saved with unregistered custom merge functions; rebuild it with SetNamedMerge so the snapshot is self-describing")
	}

	nLabels := br.u32()
	if br.err != nil {
		return nil, fmt.Errorf("refgraph: load header: %w", br.err)
	}
	names := make([]string, nLabels)
	for i := range names {
		names[i] = br.str()
	}
	if br.err != nil {
		return nil, fmt.Errorf("refgraph: load alphabet: %w", br.err)
	}
	alpha, err := prob.NewAlphabet(names...)
	if err != nil {
		return nil, fmt.Errorf("refgraph: load alphabet: %w", err)
	}
	g := New(alpha)
	if err := g.SetNamedMerge(mergeLabels, mergeEdges); err != nil {
		return nil, fmt.Errorf("refgraph: load merge functions: %w", err)
	}

	nRefs := br.u32()
	for i := uint32(0); i < nRefs && br.err == nil; i++ {
		nEnt := br.u32()
		entries := make([]prob.LabelProb, nEnt)
		for j := range entries {
			entries[j].Label = prob.LabelID(br.u32())
			entries[j].P = br.f64()
		}
		if br.err != nil {
			break
		}
		d, err := prob.NewDist(entries...)
		if err != nil {
			return nil, fmt.Errorf("refgraph: load reference %d: %w", i, err)
		}
		g.AddReference(d)
	}

	nEdges := br.u32()
	cptLen := alpha.Len() * alpha.Len()
	for i := uint32(0); i < nEdges && br.err == nil; i++ {
		a := RefID(br.u32())
		b := RefID(br.u32())
		e := EdgeDist{P: br.f64()}
		if br.u8() == 1 {
			e.CPT = make([]float64, cptLen)
			for j := range e.CPT {
				e.CPT[j] = br.f64()
			}
		}
		if br.err != nil {
			break
		}
		if err := g.AddEdge(a, b, e); err != nil {
			return nil, fmt.Errorf("refgraph: load edge: %w", err)
		}
	}

	nSets := br.u32()
	for i := uint32(0); i < nSets && br.err == nil; i++ {
		nm := br.u32()
		members := make([]RefID, nm)
		for j := range members {
			members[j] = RefID(br.u32())
		}
		p := br.f64()
		if br.err != nil {
			break
		}
		if _, err := g.AddReferenceSet(members, p); err != nil {
			return nil, fmt.Errorf("refgraph: load set: %w", err)
		}
	}

	nPriors := br.u32()
	for i := uint32(0); i < nPriors && br.err == nil; i++ {
		r := RefID(br.u32())
		p := br.f64()
		if br.err != nil {
			break
		}
		if err := g.SetSingletonPrior(r, p); err != nil {
			return nil, fmt.Errorf("refgraph: load prior: %w", err)
		}
	}

	if br.err != nil {
		return nil, fmt.Errorf("refgraph: load: %w", br.err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("refgraph: load: %w", err)
	}
	return g, nil
}
