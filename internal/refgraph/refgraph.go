// Package refgraph implements the Probabilistic Graph Description (PGD) of
// Definition 1: the reference-level uncertain graph from which the
// probabilistic entity graph is constructed. A PGD holds
//
//   - a set of references R, each with a probability distribution over labels,
//   - edge existence probabilities over reference pairs (optionally
//     conditioned on the endpoint labels, Section 5.3),
//   - reference sets S — candidate entities — with merge probabilities, and
//   - the two merge functions mΣ and m{T,F}.
package refgraph

import (
	"fmt"
	"sort"

	"repro/internal/prob"
)

// RefID identifies a reference in a PGD.
type RefID int32

// SetID identifies a non-singleton reference set in a PGD. Singleton sets
// are implicit (Definition 1 requires S to contain all singletons) and are
// not enumerated.
type SetID int32

// EdgeDist is the existence distribution of a reference-pair edge:
// p((r1,r2).x) of Definition 1, or its label-conditioned form
// p((r1,r2).x | r1.x, r2.x) of Section 5.3 when CPT is non-nil.
type EdgeDist struct {
	// P is the unconditional existence probability. When CPT is non-nil it
	// is retained as the base probability for merging with unconditioned
	// edges and for reporting.
	P float64
	// CPT, when non-nil, holds the conditional existence probability for
	// every ordered label pair, row-major: CPT[l1*|Σ|+l2] = Pr(edge | l1, l2).
	// It must be symmetric for undirected graphs (CPT[i*n+j] == CPT[j*n+i]).
	CPT []float64
}

// Prob returns the existence probability given the endpoint labels.
func (e EdgeDist) Prob(l1, l2 prob.LabelID, nLabels int) float64 {
	if e.CPT == nil {
		return e.P
	}
	return e.CPT[int(l1)*nLabels+int(l2)]
}

// Max returns the largest existence probability over label assignments.
func (e EdgeDist) Max() float64 {
	if e.CPT == nil {
		return e.P
	}
	m := 0.0
	for _, p := range e.CPT {
		if p > m {
			m = p
		}
	}
	return m
}

func (e EdgeDist) validate(nLabels int) error {
	if e.P < 0 || e.P > 1 {
		return fmt.Errorf("edge probability %v out of range", e.P)
	}
	if e.CPT != nil {
		if len(e.CPT) != nLabels*nLabels {
			return fmt.Errorf("CPT has %d entries, want %d", len(e.CPT), nLabels*nLabels)
		}
		for i := 0; i < nLabels; i++ {
			for j := 0; j <= i; j++ {
				a, b := e.CPT[i*nLabels+j], e.CPT[j*nLabels+i]
				if a < 0 || a > 1 {
					return fmt.Errorf("CPT[%d,%d] = %v out of range", i, j, a)
				}
				if a != b {
					return fmt.Errorf("CPT not symmetric at (%d,%d): %v vs %v", i, j, a, b)
				}
			}
		}
	}
	return nil
}

// EdgeKey is the canonical (undirected) key of a reference edge.
type EdgeKey struct{ A, B RefID }

// MakeEdgeKey normalizes the endpoint order.
func MakeEdgeKey(a, b RefID) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey{A: a, B: b}
}

// RefSet is a non-singleton reference set with its merge probability
// p_s(s.x = T).
type RefSet struct {
	Members []RefID // sorted, len >= 2
	P       float64
}

// PGD is a probabilistic graph description. Construct with New, populate
// with AddReference / AddEdge / AddReferenceSet, then Validate (or hand it
// to entity.Build, which validates).
type PGD struct {
	alphabet *prob.Alphabet
	labels   []prob.Dist
	edges    map[EdgeKey]EdgeDist
	sets     []RefSet
	// singletonPrior holds explicit p_s priors for singleton sets, used by
	// the literal Definition 2 factor semantics; unset references default
	// to prior 1.
	singletonPrior map[RefID]float64
	// setByKey indexes sets by canonical member list for O(1) FindSet —
	// the hot lookup of every streamed set-linkage mutation.
	setByKey map[string]SetID
	merge    prob.MergeFuncs
	// mergeLabelName / mergeEdgeName identify the installed merge functions
	// for the snapshot header; prob.MergeCustom marks unserializable raw
	// function values installed via SetMerge.
	mergeLabelName string
	mergeEdgeName  string
}

// New creates an empty PGD over the given alphabet with the paper's default
// merge functions (average for labels and edges).
func New(a *prob.Alphabet) *PGD {
	return &PGD{
		alphabet:       a,
		edges:          make(map[EdgeKey]EdgeDist),
		singletonPrior: make(map[RefID]float64),
		setByKey:       make(map[string]SetID),
		merge:          prob.DefaultMerge(),
		mergeLabelName: "average",
		mergeEdgeName:  "average",
	}
}

// memberKey encodes a sorted member list as a map key.
func memberKey(ms []RefID) string {
	b := make([]byte, 4*len(ms))
	for i, r := range ms {
		b[4*i] = byte(r >> 24)
		b[4*i+1] = byte(r >> 16)
		b[4*i+2] = byte(r >> 8)
		b[4*i+3] = byte(r)
	}
	return string(b)
}

// normalizeMembers returns the sorted, deduplicated member list.
func normalizeMembers(members []RefID) []RefID {
	ms := append([]RefID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	n := 0
	for i, r := range ms {
		if i == 0 || r != ms[i-1] {
			ms[n] = r
			n++
		}
	}
	return ms[:n]
}

// Alphabet returns the label alphabet.
func (g *PGD) Alphabet() *prob.Alphabet { return g.alphabet }

// SetMerge overrides the merge functions mΣ and m{T,F} with raw function
// values. Function values cannot be serialized, so the snapshot records the
// prob.MergeCustom identifier for each overridden function and Load of such
// a snapshot fails loudly; prefer SetNamedMerge for snapshot-bound PGDs.
func (g *PGD) SetMerge(m prob.MergeFuncs) {
	if m.Labels != nil {
		g.merge.Labels = m.Labels
		g.mergeLabelName = prob.MergeCustom
	}
	if m.Edges != nil {
		g.merge.Edges = m.Edges
		g.mergeEdgeName = prob.MergeCustom
	}
}

// SetNamedMerge installs merge functions by registry name (see
// prob.NamedLabelMerge / prob.NamedEdgeMerge; "" keeps the current
// function). Named merges survive Save/Load round-trips: the names go into
// the snapshot header and Load re-resolves them.
func (g *PGD) SetNamedMerge(labels, edges string) error {
	if labels != "" {
		fn, err := prob.NamedLabelMerge(labels)
		if err != nil {
			return err
		}
		g.merge.Labels = fn
		g.mergeLabelName = labels
	}
	if edges != "" {
		fn, err := prob.NamedEdgeMerge(edges)
		if err != nil {
			return err
		}
		g.merge.Edges = fn
		g.mergeEdgeName = edges
	}
	return nil
}

// Merge returns the PGD's merge functions.
func (g *PGD) Merge() prob.MergeFuncs { return g.merge }

// MergeNames returns the identifiers of the installed label and edge merge
// functions as recorded in snapshots.
func (g *PGD) MergeNames() (labels, edges string) { return g.mergeLabelName, g.mergeEdgeName }

// AddReference adds a reference with the given label distribution and
// returns its id.
func (g *PGD) AddReference(d prob.Dist) RefID {
	g.labels = append(g.labels, d)
	return RefID(len(g.labels) - 1)
}

// NumRefs returns the number of references.
func (g *PGD) NumRefs() int { return len(g.labels) }

// RefLabel returns the label distribution of reference r.
func (g *PGD) RefLabel(r RefID) prob.Dist { return g.labels[r] }

// SetRefLabel replaces the label distribution of reference r.
func (g *PGD) SetRefLabel(r RefID, d prob.Dist) { g.labels[r] = d }

// AddEdge records an undirected reference edge with the given existence
// distribution. Re-adding an existing edge overwrites it.
func (g *PGD) AddEdge(a, b RefID, e EdgeDist) error {
	if a == b {
		return fmt.Errorf("refgraph: self edge on reference %d", a)
	}
	if err := g.checkRef(a); err != nil {
		return err
	}
	if err := g.checkRef(b); err != nil {
		return err
	}
	if err := e.validate(g.alphabet.Len()); err != nil {
		return fmt.Errorf("refgraph: edge (%d,%d): %w", a, b, err)
	}
	g.edges[MakeEdgeKey(a, b)] = e
	return nil
}

// Edge returns the existence distribution of the edge between a and b and
// whether it is present.
func (g *PGD) Edge(a, b RefID) (EdgeDist, bool) {
	e, ok := g.edges[MakeEdgeKey(a, b)]
	return e, ok
}

// NumEdges returns the number of reference edges.
func (g *PGD) NumEdges() int { return len(g.edges) }

// Edges calls fn for every reference edge in unspecified order. Iteration
// stops early when fn returns false.
func (g *PGD) Edges(fn func(k EdgeKey, e EdgeDist) bool) {
	for k, e := range g.edges {
		if !fn(k, e) {
			return
		}
	}
}

// AddReferenceSet adds a non-singleton reference set with merge probability
// p and returns its id. Members are deduplicated and sorted.
func (g *PGD) AddReferenceSet(members []RefID, p float64) (SetID, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("refgraph: set probability %v out of range", p)
	}
	for _, r := range members {
		if err := g.checkRef(r); err != nil {
			return 0, err
		}
	}
	ms := normalizeMembers(members)
	if len(ms) < 2 {
		return 0, fmt.Errorf("refgraph: reference set needs at least 2 distinct members, got %d", len(ms))
	}
	g.sets = append(g.sets, RefSet{Members: ms, P: p})
	id := SetID(len(g.sets) - 1)
	g.setByKey[memberKey(ms)] = id
	return id, nil
}

// NumSets returns the number of non-singleton reference sets.
func (g *PGD) NumSets() int { return len(g.sets) }

// Set returns the non-singleton reference set with the given id.
func (g *PGD) Set(id SetID) RefSet { return g.sets[id] }

// SetSetProb replaces the merge probability of an existing reference set —
// the SetLinkage update of the live ingest path.
func (g *PGD) SetSetProb(id SetID, p float64) error {
	if id < 0 || int(id) >= len(g.sets) {
		return fmt.Errorf("refgraph: unknown set %d", id)
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("refgraph: set probability %v out of range", p)
	}
	g.sets[id].P = p
	return nil
}

// FindSet returns the id of the reference set with exactly the given
// members (order-insensitive, duplicates ignored), if one exists. O(1) via
// the member-key index.
func (g *PGD) FindSet(members []RefID) (SetID, bool) {
	id, ok := g.setByKey[memberKey(normalizeMembers(members))]
	return id, ok
}

// TruncateRefs removes the most recently added references so that n remain.
// Rollback helper for the live ingest path: the caller must first undo any
// edges or sets referencing the dropped ids.
func (g *PGD) TruncateRefs(n int) {
	if n >= 0 && n < len(g.labels) {
		g.labels = g.labels[:n]
	}
}

// TruncateSets removes the most recently added reference sets so that n
// remain, maintaining the member index. Rollback helper for the live ingest
// path.
func (g *PGD) TruncateSets(n int) {
	for i := n; i >= 0 && i < len(g.sets); i++ {
		delete(g.setByKey, memberKey(g.sets[i].Members))
	}
	if n >= 0 && n < len(g.sets) {
		g.sets = g.sets[:n]
	}
}

// RestoreEdge reinstates (present) or deletes (!present) an edge without
// validation. Rollback helper for the live ingest path.
func (g *PGD) RestoreEdge(k EdgeKey, e EdgeDist, present bool) {
	if present {
		g.edges[k] = e
	} else {
		delete(g.edges, k)
	}
}

// Clone returns an independent copy of the PGD: subsequent mutations on
// either PGD never affect the other. Immutable-by-convention innards (label
// distributions, CPT slices, member slices) are shared.
func (g *PGD) Clone() *PGD {
	c := &PGD{
		alphabet:       g.alphabet,
		labels:         append([]prob.Dist(nil), g.labels...),
		edges:          make(map[EdgeKey]EdgeDist, len(g.edges)),
		sets:           append([]RefSet(nil), g.sets...),
		singletonPrior: make(map[RefID]float64, len(g.singletonPrior)),
		setByKey:       make(map[string]SetID, len(g.setByKey)),
		merge:          g.merge,
		mergeLabelName: g.mergeLabelName,
		mergeEdgeName:  g.mergeEdgeName,
	}
	for k, e := range g.edges {
		c.edges[k] = e
	}
	for r, p := range g.singletonPrior {
		c.singletonPrior[r] = p
	}
	for k, id := range g.setByKey {
		c.setByKey[k] = id
	}
	return c
}

// SetSingletonPrior sets the explicit existence prior p_s for the singleton
// set {r}, used only by the literal Definition 2 factor semantics
// (entity.SemanticsFactor). Unset singletons default to prior 1.
func (g *PGD) SetSingletonPrior(r RefID, p float64) error {
	if err := g.checkRef(r); err != nil {
		return err
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("refgraph: singleton prior %v out of range", p)
	}
	g.singletonPrior[r] = p
	return nil
}

// SingletonPrior returns the existence prior of the singleton set {r}.
func (g *PGD) SingletonPrior(r RefID) float64 {
	if p, ok := g.singletonPrior[r]; ok {
		return p
	}
	return 1
}

func (g *PGD) checkRef(r RefID) error {
	if r < 0 || int(r) >= len(g.labels) {
		return fmt.Errorf("refgraph: unknown reference %d", r)
	}
	return nil
}

// Validate checks the structural invariants of the PGD: every reference has
// a label distribution over the alphabet, edges and sets reference existing
// references, and probabilities are in range.
func (g *PGD) Validate() error {
	n := g.alphabet.Len()
	if n == 0 {
		return fmt.Errorf("refgraph: empty alphabet")
	}
	for i, d := range g.labels {
		if d.IsZero() {
			return fmt.Errorf("refgraph: reference %d has no label distribution", i)
		}
		for _, e := range d.Entries() {
			if e.Label < 0 || int(e.Label) >= n {
				return fmt.Errorf("refgraph: reference %d has label %d outside alphabet", i, e.Label)
			}
		}
	}
	for k, e := range g.edges {
		if err := e.validate(n); err != nil {
			return fmt.Errorf("refgraph: edge (%d,%d): %w", k.A, k.B, err)
		}
	}
	for i, s := range g.sets {
		if len(s.Members) < 2 {
			return fmt.Errorf("refgraph: set %d has %d members", i, len(s.Members))
		}
		if s.P < 0 || s.P > 1 {
			return fmt.Errorf("refgraph: set %d probability %v out of range", i, s.P)
		}
	}
	return nil
}
