package refgraph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/prob"
)

func tinyPGD(t *testing.T) *PGD {
	t.Helper()
	alpha := prob.MustAlphabet("a", "b")
	d := New(alpha)
	r0 := d.AddReference(prob.Point(0))
	r1 := d.AddReference(prob.MustDist(prob.LabelProb{Label: 0, P: 0.3}, prob.LabelProb{Label: 1, P: 0.7}))
	r2 := d.AddReference(prob.Point(1))
	if err := d.AddEdge(r0, r1, EdgeDist{P: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(r1, r2, EdgeDist{P: 0.9, CPT: []float64{0.9, 0.5, 0.5, 0.1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddReferenceSet([]RefID{r0, r2}, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := d.SetSingletonPrior(r1, 0.6); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPGDBasics(t *testing.T) {
	d := tinyPGD(t)
	if d.NumRefs() != 3 || d.NumEdges() != 2 || d.NumSets() != 1 {
		t.Fatalf("counts: %d refs, %d edges, %d sets", d.NumRefs(), d.NumEdges(), d.NumSets())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, ok := d.Edge(1, 0); !ok {
		t.Error("edge (1,0) not found via canonical key")
	}
	if _, ok := d.Edge(0, 2); ok {
		t.Error("phantom edge found")
	}
	s := d.Set(0)
	if len(s.Members) != 2 || s.P != 0.4 {
		t.Errorf("set = %+v", s)
	}
	if p := d.SingletonPrior(1); p != 0.6 {
		t.Errorf("SingletonPrior(1) = %v", p)
	}
	if p := d.SingletonPrior(0); p != 1 {
		t.Errorf("SingletonPrior(0) = %v, want default 1", p)
	}
}

func TestPGDErrors(t *testing.T) {
	alpha := prob.MustAlphabet("a")
	d := New(alpha)
	r0 := d.AddReference(prob.Point(0))
	if err := d.AddEdge(r0, r0, EdgeDist{P: 0.5}); err == nil {
		t.Error("self edge accepted")
	}
	if err := d.AddEdge(r0, 99, EdgeDist{P: 0.5}); err == nil {
		t.Error("unknown reference accepted")
	}
	if err := d.AddEdge(r0, r0+1, EdgeDist{P: 1.5}); err == nil {
		t.Error("out-of-range probability accepted")
	}
	if _, err := d.AddReferenceSet([]RefID{r0}, 0.5); err == nil {
		t.Error("singleton reference set accepted")
	}
	if _, err := d.AddReferenceSet([]RefID{r0, r0}, 0.5); err == nil {
		t.Error("duplicate-member set accepted")
	}
	if err := d.SetSingletonPrior(r0, 2); err == nil {
		t.Error("out-of-range prior accepted")
	}
	if err := d.SetSingletonPrior(42, 0.5); err == nil {
		t.Error("unknown reference prior accepted")
	}
}

func TestEdgeDistCPTValidation(t *testing.T) {
	alpha := prob.MustAlphabet("a", "b")
	d := New(alpha)
	r0 := d.AddReference(prob.Point(0))
	r1 := d.AddReference(prob.Point(1))
	// Wrong size.
	if err := d.AddEdge(r0, r1, EdgeDist{P: 0.5, CPT: []float64{0.1}}); err == nil {
		t.Error("wrong-size CPT accepted")
	}
	// Asymmetric.
	if err := d.AddEdge(r0, r1, EdgeDist{P: 0.5, CPT: []float64{0.1, 0.2, 0.3, 0.4}}); err == nil {
		t.Error("asymmetric CPT accepted")
	}
	// Out of range.
	if err := d.AddEdge(r0, r1, EdgeDist{P: 0.5, CPT: []float64{0.1, 2, 2, 0.4}}); err == nil {
		t.Error("out-of-range CPT accepted")
	}
}

func TestEdgeDistProb(t *testing.T) {
	e := EdgeDist{P: 0.5}
	if p := e.Prob(0, 1, 2); p != 0.5 {
		t.Errorf("unconditional Prob = %v", p)
	}
	if m := e.Max(); m != 0.5 {
		t.Errorf("unconditional Max = %v", m)
	}
	c := EdgeDist{P: 0.5, CPT: []float64{0.9, 0.2, 0.2, 0.7}}
	if p := c.Prob(0, 1, 2); p != 0.2 {
		t.Errorf("CPT Prob(0,1) = %v", p)
	}
	if m := c.Max(); m != 0.9 {
		t.Errorf("CPT Max = %v", m)
	}
}

func TestMakeEdgeKey(t *testing.T) {
	if k := MakeEdgeKey(5, 2); k.A != 2 || k.B != 5 {
		t.Errorf("MakeEdgeKey(5,2) = %+v", k)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := tinyPGD(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.NumRefs() != d.NumRefs() || got.NumEdges() != d.NumEdges() || got.NumSets() != d.NumSets() {
		t.Fatalf("round-trip counts differ")
	}
	if !got.RefLabel(1).Equal(d.RefLabel(1)) {
		t.Errorf("reference 1 label dist differs: %v vs %v", got.RefLabel(1), d.RefLabel(1))
	}
	e, ok := got.Edge(1, 2)
	if !ok || e.CPT == nil {
		t.Fatalf("CPT edge lost: %+v ok=%v", e, ok)
	}
	if math.Abs(e.CPT[1]-0.5) > 1e-12 {
		t.Errorf("CPT cell differs: %v", e.CPT)
	}
	if p := got.SingletonPrior(1); p != 0.6 {
		t.Errorf("singleton prior lost: %v", p)
	}
	if got.Alphabet().Name(1) != "b" {
		t.Errorf("alphabet lost: %v", got.Alphabet().Names())
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage data here"))); err == nil {
		t.Error("garbage accepted")
	}
	// Truncated valid prefix.
	d := tinyPGD(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 1, 5, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", n)
		}
	}
}

func TestSaveLoadRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := prob.MustAlphabet("a", "b", "c")
	for trial := 0; trial < 20; trial++ {
		d := New(alpha)
		n := rng.Intn(20) + 2
		for i := 0; i < n; i++ {
			d.AddReference(prob.ZipfDist(rng, 3))
		}
		for i := 0; i < n; i++ {
			a, b := RefID(rng.Intn(n)), RefID(rng.Intn(n))
			if a != b {
				if err := d.AddEdge(a, b, EdgeDist{P: rng.Float64()}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if n >= 4 {
			if _, err := d.AddReferenceSet([]RefID{0, 1}, rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if got.NumRefs() != d.NumRefs() || got.NumEdges() != d.NumEdges() {
			t.Fatalf("trial %d: counts differ", trial)
		}
		d.Edges(func(k EdgeKey, e EdgeDist) bool {
			ge, ok := got.Edge(k.A, k.B)
			if !ok || math.Abs(ge.P-e.P) > 1e-12 {
				t.Errorf("trial %d: edge %v differs", trial, k)
				return false
			}
			return true
		})
	}
}
