package refgraph

import (
	"bytes"
	"testing"

	"repro/internal/prob"
)

// seedSnapshot serializes a small but fully featured PGD (CPT edge, set,
// singleton prior, named merge) as fuzz corpus.
func seedSnapshot(t *testing.T, edges string) []byte {
	t.Helper()
	a := prob.MustAlphabet("x", "y")
	g := New(a)
	r1 := g.AddReference(prob.MustDist(prob.LabelProb{Label: 0, P: 0.5}, prob.LabelProb{Label: 1, P: 0.5}))
	r2 := g.AddReference(prob.Point(1))
	r3 := g.AddReference(prob.Point(0))
	if err := g.AddEdge(r1, r2, EdgeDist{P: 0.5, CPT: []float64{0.1, 0.2, 0.2, 0.9}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(r2, r3, EdgeDist{P: 0.75}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddReferenceSet([]RefID{r1, r3}, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := g.SetSingletonPrior(r2, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNamedMerge("average", edges); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadPGD feeds arbitrary bytes to the snapshot loader: it must never
// panic, and everything it accepts must round-trip — Save of the loaded PGD
// must load again to an equivalent snapshot (same bytes on the second
// Save, since Load canonicalizes).
func FuzzLoadPGD(f *testing.F) {
	f.Add([]byte("PGD1"))
	f.Add([]byte{})
	seedT := &testing.T{}
	f.Add(seedSnapshot(seedT, "average"))
	f.Add(seedSnapshot(seedT, "disjunct"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("Save of loaded PGD failed: %v", err)
		}
		g2, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip Load failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := g2.Save(&buf2); err != nil {
			t.Fatalf("second Save failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("snapshot not a fixed point: %d vs %d bytes", buf.Len(), buf2.Len())
		}
		if g.NumRefs() != g2.NumRefs() || g.NumEdges() != g2.NumEdges() || g.NumSets() != g2.NumSets() {
			t.Fatalf("round-trip changed shape: %d/%d/%d vs %d/%d/%d",
				g.NumRefs(), g.NumEdges(), g.NumSets(), g2.NumRefs(), g2.NumEdges(), g2.NumSets())
		}
	})
}
