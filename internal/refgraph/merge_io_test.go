package refgraph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/prob"
)

// TestSnapshotRecordsNamedMerge: a named non-default merge survives the
// Save/Load round trip — both the recorded identifier and the actual
// function behavior.
func TestSnapshotRecordsNamedMerge(t *testing.T) {
	a := prob.MustAlphabet("x", "y")
	g := New(a)
	r1 := g.AddReference(prob.Point(0))
	r2 := g.AddReference(prob.Point(1))
	if err := g.AddEdge(r1, r2, EdgeDist{P: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNamedMerge("", "disjunct"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	labels, edges := g2.MergeNames()
	if labels != "average" || edges != "disjunct" {
		t.Fatalf("merge names (%q, %q), want (average, disjunct)", labels, edges)
	}
	// Noisy-or of {0.5, 0.5} is 0.75 where the silently-restored default
	// (average) would give 0.5 — the exact bug the identifier prevents.
	if got := g2.Merge().Edges([]float64{0.5, 0.5}); got != 0.75 {
		t.Fatalf("loaded edge merge(0.5,0.5) = %v, want 0.75 (disjunct)", got)
	}
}

// TestSnapshotRejectsCustomMerge: Save records prob.MergeCustom for raw
// function values, and Load fails loudly instead of restoring defaults.
func TestSnapshotRejectsCustomMerge(t *testing.T) {
	a := prob.MustAlphabet("x")
	g := New(a)
	g.AddReference(prob.Point(0))
	g.SetMerge(prob.MergeFuncs{Edges: func(ps []float64) float64 { return 1 }})
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "custom merge") {
		t.Fatalf("Load of custom-merge snapshot: err = %v, want loud custom-merge failure", err)
	}
}
