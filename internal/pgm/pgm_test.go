package pgm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func mustModel(t *testing.T, cards []int) *Model {
	t.Helper()
	m, err := NewModel(cards)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func addFactor(t *testing.T, m *Model, vars []Var, fn func([]int) float64) {
	t.Helper()
	if err := m.AddFactor(Factor{Vars: vars, Fn: fn}); err != nil {
		t.Fatalf("AddFactor: %v", err)
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel([]int{2, 0}); err == nil {
		t.Error("zero cardinality accepted")
	}
	m := mustModel(t, []int{2, 2})
	if m.NumVars() != 2 || m.Card(0) != 2 {
		t.Errorf("NumVars/Card wrong: %d %d", m.NumVars(), m.Card(0))
	}
}

func TestAddFactorValidation(t *testing.T) {
	m := mustModel(t, []int{2, 2})
	one := func([]int) float64 { return 1 }
	if err := m.AddFactor(Factor{Vars: nil, Fn: one}); err == nil {
		t.Error("empty-scope factor accepted")
	}
	if err := m.AddFactor(Factor{Vars: []Var{0}, Fn: nil}); err == nil {
		t.Error("nil-fn factor accepted")
	}
	if err := m.AddFactor(Factor{Vars: []Var{5}, Fn: one}); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := m.AddFactor(Factor{Vars: []Var{0, 0}, Fn: one}); err == nil {
		t.Error("repeated variable accepted")
	}
}

func TestComponents(t *testing.T) {
	m := mustModel(t, []int{2, 2, 2, 2, 2})
	one := func([]int) float64 { return 1 }
	addFactor(t, m, []Var{0, 1}, one)
	addFactor(t, m, []Var{1, 2}, one)
	addFactor(t, m, []Var{3}, one)
	comps := m.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || comps[0][2] != 2 {
		t.Errorf("component 0 = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Errorf("component 1 = %v", comps[1])
	}
	if len(comps[2]) != 1 || comps[2][0] != 4 {
		t.Errorf("component 2 = %v", comps[2])
	}
}

func TestComponentDistBernoulli(t *testing.T) {
	m := mustModel(t, []int{2})
	addFactor(t, m, []Var{0}, func(v []int) float64 {
		if v[0] == 1 {
			return 0.3
		}
		return 0.7
	})
	dist, err := m.ComponentDist([]Var{0}, 0)
	if err != nil {
		t.Fatalf("ComponentDist: %v", err)
	}
	if len(dist) != 2 {
		t.Fatalf("got %d assignments", len(dist))
	}
	if p := Marginal([]Var{0}, dist, []Var{0}, []int{1}); math.Abs(p-0.3) > eps {
		t.Errorf("Pr(x=1) = %v, want 0.3", p)
	}
}

// The paper's motivating identity component: sets {r3}, {r4}, {r3,r4} with
// merge probability 0.8 must yield Pr(merged)=0.8, Pr(unmerged)=0.2 under
// the example semantics weight (non-singleton p vs 1-p on legal configs).
func TestComponentDistMergeExample(t *testing.T) {
	// Vars: 0 = {r3}.n, 1 = {r4}.n, 2 = {r3,r4}.n.
	m := mustModel(t, []int{2, 2, 2})
	// Legality for reference r3: exactly one of vars 0, 2 exists.
	exactlyOne := func(v []int) float64 {
		if (v[0] == 1) != (v[1] == 1) {
			return 1
		}
		return 0
	}
	addFactor(t, m, []Var{0, 2}, exactlyOne)
	addFactor(t, m, []Var{1, 2}, exactlyOne)
	// Merge prior on the non-singleton set.
	addFactor(t, m, []Var{2}, func(v []int) float64 {
		if v[0] == 1 {
			return 0.8
		}
		return 0.2
	})
	comp := m.Components()
	if len(comp) != 1 {
		t.Fatalf("components = %v", comp)
	}
	dist, err := m.ComponentDist(comp[0], 0)
	if err != nil {
		t.Fatalf("ComponentDist: %v", err)
	}
	if len(dist) != 2 {
		t.Fatalf("got %d legal configs, want 2", len(dist))
	}
	if p := Marginal(comp[0], dist, []Var{2}, []int{1}); math.Abs(p-0.8) > eps {
		t.Errorf("Pr(merged) = %v, want 0.8", p)
	}
	if p := Marginal(comp[0], dist, []Var{0, 1}, []int{1, 1}); math.Abs(p-0.2) > eps {
		t.Errorf("Pr(unmerged) = %v, want 0.2", p)
	}
}

func TestComponentDistZeroPartition(t *testing.T) {
	m := mustModel(t, []int{2})
	addFactor(t, m, []Var{0}, func([]int) float64 { return 0 })
	if _, err := m.ComponentDist([]Var{0}, 0); !errors.Is(err, ErrZeroPartition) {
		t.Errorf("err = %v, want ErrZeroPartition", err)
	}
}

func TestComponentDistBudget(t *testing.T) {
	cards := make([]int, 30)
	for i := range cards {
		cards[i] = 2
	}
	m := mustModel(t, cards)
	one := func([]int) float64 { return 1 }
	vars := make([]Var, 30)
	for i := range vars {
		vars[i] = Var(i)
		addFactor(t, m, []Var{Var(i), Var((i + 1) % 30)}, one)
	}
	if _, err := m.ComponentDist(vars, 1<<10); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestComponentDistInvalidWeight(t *testing.T) {
	m := mustModel(t, []int{2})
	addFactor(t, m, []Var{0}, func([]int) float64 { return math.NaN() })
	if _, err := m.ComponentDist([]Var{0}, 0); err == nil {
		t.Error("NaN weight accepted")
	}
	m2 := mustModel(t, []int{2})
	addFactor(t, m2, []Var{0}, func([]int) float64 { return -1 })
	if _, err := m2.ComponentDist([]Var{0}, 0); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestComponentDistStraddle(t *testing.T) {
	m := mustModel(t, []int{2, 2})
	addFactor(t, m, []Var{0, 1}, func([]int) float64 { return 1 })
	// Passing only half the true component must be rejected.
	if _, err := m.ComponentDist([]Var{0}, 0); err == nil {
		t.Error("straddling factor not detected")
	}
}

func TestMarginalTernary(t *testing.T) {
	m := mustModel(t, []int{3, 2})
	addFactor(t, m, []Var{0, 1}, func(v []int) float64 {
		// joint weights: var0 value i, var1 value j -> (i+1)*(j+1)
		return float64((v[0] + 1) * (v[1] + 2))
	})
	comp := m.Components()[0]
	dist, err := m.ComponentDist(comp, 0)
	if err != nil {
		t.Fatalf("ComponentDist: %v", err)
	}
	// Z = sum over i in 0..2, j in 0..1 of (i+1)(j+2) = (1+2+3)*(2+3) = 30.
	if p := Marginal(comp, dist, []Var{0}, []int{2}); math.Abs(p-15.0/30.0) > eps {
		t.Errorf("Pr(v0=2) = %v, want 0.5", p)
	}
	if p := Marginal(comp, dist, []Var{0, 1}, []int{0, 1}); math.Abs(p-3.0/30.0) > eps {
		t.Errorf("Pr(v0=0,v1=1) = %v, want 0.1", p)
	}
}

// Property: ComponentDist probabilities always sum to 1, and every marginal
// lies in [0,1].
func TestComponentDistNormalizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		cards := make([]int, n)
		for i := range cards {
			cards[i] = rng.Intn(3) + 1
		}
		m, err := NewModel(cards)
		if err != nil {
			return false
		}
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = Var(i)
		}
		// One random positive factor over all variables keeps it one
		// component.
		tbl := make(map[int]float64)
		err = m.AddFactor(Factor{Vars: vars, Fn: func(v []int) float64 {
			key := 0
			for i, x := range v {
				key = key*3 + x + i
			}
			if w, ok := tbl[key]; ok {
				return w
			}
			w := rng.Float64() + 0.01
			tbl[key] = w
			return w
		}})
		if err != nil {
			return false
		}
		dist, err := m.ComponentDist(vars, 0)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, a := range dist {
			if a.P < 0 || a.P > 1+eps {
				return false
			}
			sum += a.P
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
