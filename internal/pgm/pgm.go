// Package pgm implements a small exact inference engine for discrete
// probabilistic graphical models, as used in Section 3 of the paper: a PEG is
// a graphical model whose joint distribution is the normalized product of its
// factors, and whose independencies are read off the Markov network's
// connected components (Eq. 4–7).
//
// The engine supports arbitrary discrete variables and factors and performs
// exact inference by enumeration within each connected component. The paper
// relies on identity components being "small enough in practice for this to
// be feasible"; Model.ComponentDist enforces a configurable state-space
// budget and reports an error when a component exceeds it, mirroring the
// paper's caveat that larger components would require approximate inference.
package pgm

import (
	"errors"
	"fmt"
	"math"
)

// Var identifies a random variable in a Model by dense index.
type Var int

// Factor is a non-negative function over a subset of the model's variables.
// Fn receives the values of exactly the variables listed in Vars, in order.
type Factor struct {
	Vars []Var
	Fn   func(vals []int) float64
}

// Model is a probabilistic graphical model: discrete variables with given
// cardinalities plus a set of factors. The joint distribution is
// Pr(v) = (1/Z) ∏_f f(v_f).
type Model struct {
	card    []int
	factors []Factor
}

// NewModel creates a model with the given per-variable cardinalities.
func NewModel(cardinalities []int) (*Model, error) {
	for i, c := range cardinalities {
		if c < 1 {
			return nil, fmt.Errorf("pgm: variable %d has cardinality %d", i, c)
		}
	}
	card := make([]int, len(cardinalities))
	copy(card, cardinalities)
	return &Model{card: card}, nil
}

// NumVars returns the number of variables in the model.
func (m *Model) NumVars() int { return len(m.card) }

// Card returns the cardinality of variable v.
func (m *Model) Card(v Var) int { return m.card[v] }

// AddFactor registers a factor. Factors over no variables are rejected, as
// are references to unknown variables.
func (m *Model) AddFactor(f Factor) error {
	if len(f.Vars) == 0 {
		return errors.New("pgm: factor over no variables")
	}
	if f.Fn == nil {
		return errors.New("pgm: factor with nil function")
	}
	seen := make(map[Var]bool, len(f.Vars))
	for _, v := range f.Vars {
		if v < 0 || int(v) >= len(m.card) {
			return fmt.Errorf("pgm: factor references unknown variable %d", v)
		}
		if seen[v] {
			return fmt.Errorf("pgm: factor repeats variable %d", v)
		}
		seen[v] = true
	}
	m.factors = append(m.factors, f)
	return nil
}

// Components returns the connected components of the model's Markov network:
// two variables are connected if they co-occur in a factor. Each component
// is a sorted slice of variable indices; isolated variables form singleton
// components. Components are returned ordered by their smallest variable.
func (m *Model) Components() [][]Var {
	n := len(m.card)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, f := range m.factors {
		for i := 1; i < len(f.Vars); i++ {
			union(int(f.Vars[0]), int(f.Vars[i]))
		}
	}
	groups := make(map[int][]Var)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], Var(i))
	}
	out := make([][]Var, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	// Deterministic order by smallest member (members are already ascending
	// because we appended in index order).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Assignment is one full assignment to a component's variables together with
// its normalized probability.
type Assignment struct {
	Vals []int // parallel to the component's variable slice
	P    float64
}

// ErrTooLarge is returned when a component's state space exceeds the budget.
var ErrTooLarge = errors.New("pgm: component state space exceeds budget")

// ErrZeroPartition is returned when every assignment of a component has zero
// weight, i.e. the factors are contradictory.
var ErrZeroPartition = errors.New("pgm: component partition function is zero")

// DefaultStateBudget bounds exact enumeration per component.
const DefaultStateBudget = 1 << 22

// ComponentDist enumerates the joint distribution of one connected component
// by brute force: every assignment with non-zero weight is returned with its
// normalized probability (Eq. 7's per-component normalization). The factors
// considered are exactly those whose scope is inside the component. budget
// caps the number of states (≤ 0 means DefaultStateBudget).
func (m *Model) ComponentDist(comp []Var, budget int) ([]Assignment, error) {
	if budget <= 0 {
		budget = DefaultStateBudget
	}
	states := 1
	pos := make(map[Var]int, len(comp))
	for i, v := range comp {
		pos[v] = i
		if states > budget/m.card[v] {
			return nil, fmt.Errorf("%w: component of %d variables", ErrTooLarge, len(comp))
		}
		states *= m.card[v]
	}
	// Collect the factors scoped within the component.
	var fs []Factor
	for _, f := range m.factors {
		inside := true
		for _, v := range f.Vars {
			if _, ok := pos[v]; !ok {
				inside = false
				break
			}
		}
		if inside {
			fs = append(fs, f)
		} else {
			// A factor straddling component boundaries contradicts the
			// component structure; Components() makes this impossible, but
			// guard against misuse with a partial component slice.
			for _, v := range f.Vars {
				if _, ok := pos[v]; ok {
					return nil, fmt.Errorf("pgm: factor straddles component boundary at variable %d", v)
				}
			}
		}
	}

	vals := make([]int, len(comp))
	scratch := make([]int, 0, 8)
	var (
		out []Assignment
		z   float64
	)
	for s := 0; s < states; s++ {
		rem := s
		for i, v := range comp {
			c := m.card[v]
			vals[i] = rem % c
			rem /= c
		}
		w := 1.0
		for _, f := range fs {
			scratch = scratch[:0]
			for _, v := range f.Vars {
				scratch = append(scratch, vals[pos[v]])
			}
			w *= f.Fn(scratch)
			if w == 0 {
				break
			}
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("pgm: factor produced invalid weight %v", w)
		}
		if w > 0 {
			cp := make([]int, len(vals))
			copy(cp, vals)
			out = append(out, Assignment{Vals: cp, P: w})
			z += w
		}
	}
	if z == 0 {
		return nil, ErrZeroPartition
	}
	for i := range out {
		out[i].P /= z
	}
	return out, nil
}

// Marginal computes Pr(vars = want) for variables inside a single component,
// given that component's distribution as returned by ComponentDist.
func Marginal(comp []Var, dist []Assignment, vars []Var, want []int) float64 {
	if len(vars) != len(want) {
		panic("pgm: Marginal vars/want length mismatch")
	}
	pos := make(map[Var]int, len(comp))
	for i, v := range comp {
		pos[v] = i
	}
	p := 0.0
	for _, a := range dist {
		ok := true
		for i, v := range vars {
			j, exists := pos[v]
			if !exists {
				panic(fmt.Sprintf("pgm: Marginal variable %d not in component", v))
			}
			if a.Vals[j] != want[i] {
				ok = false
				break
			}
		}
		if ok {
			p += a.P
		}
	}
	return p
}
