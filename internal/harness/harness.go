// Package harness runs the paper's experiments (Section 6) at configurable
// scale and prints paper-style tables. Every figure of the evaluation has a
// runner; cmd/pegbench executes them all and EXPERIMENTS.md records the
// outputs next to the paper's numbers.
//
// Scale note: the paper ran on an 8-core/117 GB EC2 instance with graphs of
// 50k–1m references; the default configuration here scales the graphs down
// (hundreds to a few thousand references) so the full suite runs on a small
// container in minutes. Trends — who wins, how costs grow with L, β, size,
// density, uncertainty — are preserved; absolute numbers are not comparable.
package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
)

// Config scales the experiment suite.
type Config struct {
	// Sizes are the reference counts standing in for the paper's
	// 50k/100k/500k/1m settings.
	Sizes []int
	// OfflineSizes are the (smaller) sizes used for the offline-phase grid,
	// which builds L ∈ {1,2,3} × β ∈ Betas indexes per size.
	OfflineSizes []int
	// MainSize is the size standing in for the paper's 100k default.
	MainSize int
	// Betas is the offline threshold grid.
	Betas []float64
	// Ls is the set of maximum path lengths.
	Ls []int
	// QueryTimeout caps each online query (the paper used 15 minutes).
	QueryTimeout time.Duration
	// SQLTimeout caps the SQL-baseline evaluation.
	SQLTimeout time.Duration
	// QueriesPerPoint averages each online measurement over this many
	// random queries (the paper uses 5).
	QueriesPerPoint int
	// Seed makes the suite deterministic.
	Seed int64
	// WorkDir holds index artifacts; empty = a temp dir.
	WorkDir string
}

// DefaultConfig returns the scaled-down default suite.
func DefaultConfig() Config {
	return Config{
		Sizes:           []int{500, 1000, 2000, 4000},
		OfflineSizes:    []int{500, 1000},
		MainSize:        1000,
		Betas:           []float64{0.9, 0.7, 0.5, 0.3},
		Ls:              []int{1, 2, 3},
		QueryTimeout:    time.Minute,
		SQLTimeout:      10 * time.Second,
		QueriesPerPoint: 3,
		Seed:            42,
	}
}

// Harness caches datasets and indexes across figure runs.
type Harness struct {
	cfg     Config
	dir     string
	ownDir  bool
	graphs  map[string]*entity.Graph
	indexes map[string]*pathindex.Index
}

// New creates a harness, materializing the working directory.
func New(cfg Config) (*Harness, error) {
	dir := cfg.WorkDir
	own := false
	if dir == "" {
		d, err := os.MkdirTemp("", "pegbench-*")
		if err != nil {
			return nil, err
		}
		dir = d
		own = true
	}
	return &Harness{
		cfg:     cfg,
		dir:     dir,
		ownDir:  own,
		graphs:  make(map[string]*entity.Graph),
		indexes: make(map[string]*pathindex.Index),
	}, nil
}

// Close releases cached indexes and the working directory.
func (h *Harness) Close() error {
	var first error
	for _, ix := range h.indexes {
		if err := ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	if h.ownDir {
		if err := os.RemoveAll(h.dir); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Graph returns (building and caching) the synthetic PEG with the given
// reference count and uncertainty fraction.
func (h *Harness) Graph(refs int, uncertain float64) (*entity.Graph, error) {
	key := fmt.Sprintf("synth-%d-%.2f", refs, uncertain)
	if g, ok := h.graphs[key]; ok {
		return g, nil
	}
	// Groups scale with refs/100 (vs the paper's refs/1000) so the scaled-
	// down graphs still carry meaningful identity uncertainty.
	groups := refs / 100
	if groups < 2 {
		groups = 2
	}
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs:          refs,
		UncertainFrac: uncertain,
		Groups:        groups,
		Seed:          h.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		return nil, err
	}
	h.graphs[key] = g
	return g, nil
}

// NamedGraph caches an externally built graph (DBLP/IMDB stand-ins).
func (h *Harness) NamedGraph(key string, build func() (*entity.Graph, error)) (*entity.Graph, error) {
	if g, ok := h.graphs[key]; ok {
		return g, nil
	}
	g, err := build()
	if err != nil {
		return nil, err
	}
	h.graphs[key] = g
	return g, nil
}

// Index returns (building and caching) the path index for the keyed graph.
func (h *Harness) Index(gkey string, g *entity.Graph, L int, beta float64) (*pathindex.Index, error) {
	key := fmt.Sprintf("%s-L%d-b%.2f", gkey, L, beta)
	if ix, ok := h.indexes[key]; ok {
		return ix, nil
	}
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: L,
		Beta:   beta,
		Gamma:  0.1,
		Dir:    filepath.Join(h.dir, key),
	})
	if err != nil {
		return nil, err
	}
	h.indexes[key] = ix
	return ix, nil
}

// IndexPath returns the on-disk directory Index built (or would build) the
// keyed index into, for benchmarks that reopen the artifact cold.
func (h *Harness) IndexPath(gkey string, L int, beta float64) string {
	return filepath.Join(h.dir, fmt.Sprintf("%s-L%d-b%.2f", gkey, L, beta))
}

// BuildIndexUncached builds an index without caching (for offline-phase
// timing) and closes it before returning its stats.
func (h *Harness) BuildIndexUncached(g *entity.Graph, L int, beta float64, tag string) (pathindex.BuildStats, error) {
	dir := filepath.Join(h.dir, "uncached", tag)
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: L, Beta: beta, Gamma: 0.1, Dir: dir,
	})
	if err != nil {
		return pathindex.BuildStats{}, err
	}
	st := ix.Stats()
	ix.Close()
	os.RemoveAll(dir)
	return st, nil
}

// Config returns the harness configuration.
func (h *Harness) Config() Config { return h.cfg }

// table prints an aligned table.
type table struct {
	w      io.Writer
	header []string
	rows   [][]string
}

func newTable(w io.Writer, header ...string) *table {
	return &table{w: w, header: header}
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	widths := make([]int, len(t.header))
	for i, hdr := range t.header {
		widths[i] = len(hdr)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(t.w, "  ")
			}
			fmt.Fprintf(t.w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(t.w)
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	fmt.Fprintln(t.w)
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Microseconds()))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fmtBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	}
}
