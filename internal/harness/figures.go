package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
	"repro/internal/query"
	"repro/internal/sqlbase"
)

// querySpec is q(n,m).
type querySpec struct{ n, m int }

func (s querySpec) String() string { return fmt.Sprintf("q(%d,%d)", s.n, s.m) }

// fig6cSizes follows the paper: a query of n nodes has 4n edges capped at
// the maximum.
var fig6cSizes = []querySpec{{3, 3}, {5, 10}, {7, 21}, {9, 36}, {11, 44}, {13, 52}, {15, 60}}

var fig6dSizes = []querySpec{{15, 20}, {15, 40}, {15, 60}, {15, 80}, {15, 100}}

// timeQuery measures one Match run under the query timeout, averaging over
// the configured number of random queries. A timeout or failure yields "*"
// like the paper's figures.
func (h *Harness) timeQuery(ix *pathindex.Index, makeQuery func(r *rand.Rand) (*query.Query, error), opt core.Options) (string, time.Duration, int) {
	var total time.Duration
	matches := 0
	runs := h.cfg.QueriesPerPoint
	if runs < 1 {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(h.cfg.Seed + int64(i)*7919))
		q, err := makeQuery(rng)
		if err != nil {
			return "err", 0, 0
		}
		ctx, cancel := context.WithTimeout(context.Background(), h.cfg.QueryTimeout)
		start := time.Now()
		res, err := core.Match(ctx, ix, q, opt)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return "*", 0, 0
			}
			return "err", 0, 0
		}
		total += time.Since(start)
		matches += len(res.Matches)
	}
	avg := total / time.Duration(runs)
	return fmtDur(avg), avg, matches / runs
}

func specQuery(spec querySpec, nLabels int) func(*rand.Rand) (*query.Query, error) {
	return func(rng *rand.Rand) (*query.Query, error) {
		return gen.RandomQuery(rng, nLabels, spec.n, spec.m)
	}
}

// RunFig6ab reproduces Figures 6(a) and 6(b): offline running time and index
// size over the (β, graph size, L) grid.
func (h *Harness) RunFig6ab(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 6(a)+(b): offline phase time and index size ==")
	t := newTable(w, "beta", "refs", "L", "build-time", "index-bytes", "entries", "seqs")
	for _, size := range h.cfg.OfflineSizes {
		g, err := h.Graph(size, 0.2)
		if err != nil {
			return err
		}
		for _, beta := range h.cfg.Betas {
			for _, L := range h.cfg.Ls {
				st, err := h.BuildIndexUncached(g, L, beta, fmt.Sprintf("f6-%d-%v-%d", size, beta, L))
				if err != nil {
					return err
				}
				t.add(fmt.Sprint(beta), fmt.Sprint(size), fmt.Sprint(L),
					fmtDur(st.Duration), fmtBytes(st.Bytes),
					fmt.Sprint(st.Entries), fmt.Sprint(st.Sequences))
			}
		}
	}
	t.flush()
	return nil
}

// variant is one line series of Figures 6(c)/(d).
type variant struct {
	name     string
	L        int
	strategy core.Strategy
}

func onlineVariants(ls []int) []variant {
	var vs []variant
	for _, l := range ls {
		vs = append(vs, variant{fmt.Sprintf("Optimized L=%d", l), l, core.StrategyOptimized})
	}
	maxL := ls[len(ls)-1]
	vs = append(vs,
		variant{fmt.Sprintf("NoSSReduction L=%d", maxL), maxL, core.StrategyNoSSReduction},
		variant{fmt.Sprintf("RandomDecomp L=%d", maxL), maxL, core.StrategyRandomDecomp},
	)
	return vs
}

func (h *Harness) runOnlineGrid(w io.Writer, title string, specs []querySpec) error {
	fmt.Fprintln(w, title)
	g, err := h.Graph(h.cfg.MainSize, 0.2)
	if err != nil {
		return err
	}
	t := newTable(w, append([]string{"variant"}, specsHeader(specs)...)...)
	for _, v := range onlineVariants(h.cfg.Ls) {
		ix, err := h.Index(fmt.Sprintf("synth-%d-0.20", h.cfg.MainSize), g, v.L, 0.1)
		if err != nil {
			return err
		}
		row := []string{v.name}
		for _, spec := range specs {
			cell, _, _ := h.timeQuery(ix, specQuery(spec, g.NumLabels()), core.Options{
				Alpha: 0.7, Strategy: v.strategy, Rand: rand.New(rand.NewSource(h.cfg.Seed)),
			})
			row = append(row, cell)
		}
		t.add(row...)
	}
	t.flush()
	return nil
}

func specsHeader(specs []querySpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.String()
	}
	return out
}

// RunFig6c reproduces Figure 6(c): online time vs query size.
func (h *Harness) RunFig6c(w io.Writer) error {
	return h.runOnlineGrid(w, "== Figure 6(c): online time vs query size (α=0.7) ==", fig6cSizes)
}

// RunFig6d reproduces Figure 6(d): online time vs query density.
func (h *Harness) RunFig6d(w io.Writer) error {
	return h.runOnlineGrid(w, "== Figure 6(d): online time vs query density (α=0.7) ==", fig6dSizes)
}

// RunFig6ef reproduces Figures 6(e)/(f): online time vs degree of
// uncertainty for 5- and 10-node queries.
func (h *Harness) RunFig6ef(w io.Writer) error {
	fmt.Fprintln(w, "== Figures 6(e)/(f): online time vs degree of uncertainty (α=0.7) ==")
	specs := []querySpec{{5, 5}, {5, 9}, {10, 20}, {10, 40}}
	uncs := []float64{0.2, 0.4, 0.6, 0.8}
	t := newTable(w, append([]string{"series"}, uncHeader(uncs)...)...)
	for _, spec := range specs {
		for _, L := range h.cfg.Ls {
			row := []string{fmt.Sprintf("L=%d, %s", L, spec)}
			for _, unc := range uncs {
				g, err := h.Graph(h.cfg.MainSize, unc)
				if err != nil {
					return err
				}
				ix, err := h.Index(fmt.Sprintf("synth-%d-%.2f", h.cfg.MainSize, unc), g, L, 0.1)
				if err != nil {
					return err
				}
				cell, _, _ := h.timeQuery(ix, specQuery(spec, g.NumLabels()), core.Options{Alpha: 0.7})
				row = append(row, cell)
			}
			t.add(row...)
		}
	}
	t.flush()
	return nil
}

func uncHeader(uncs []float64) []string {
	out := make([]string, len(uncs))
	for i, u := range uncs {
		out[i] = fmt.Sprintf("%.0f%%", u*100)
	}
	return out
}

// RunFig7ab reproduces Figures 7(a)/(b): online time vs graph size.
func (h *Harness) RunFig7ab(w io.Writer) error {
	fmt.Fprintln(w, "== Figures 7(a)/(b): online time vs graph size (α=0.7) ==")
	specs := []querySpec{{5, 5}, {5, 9}, {10, 20}, {10, 40}}
	t := newTable(w, append([]string{"series"}, sizesHeader(h.cfg.Sizes)...)...)
	for _, spec := range specs {
		for _, L := range h.cfg.Ls {
			row := []string{fmt.Sprintf("L=%d, %s", L, spec)}
			for _, size := range h.cfg.Sizes {
				g, err := h.Graph(size, 0.2)
				if err != nil {
					return err
				}
				ix, err := h.Index(fmt.Sprintf("synth-%d-0.20", size), g, L, 0.1)
				if err != nil {
					return err
				}
				cell, _, _ := h.timeQuery(ix, specQuery(spec, g.NumLabels()), core.Options{Alpha: 0.7})
				row = append(row, cell)
			}
			t.add(row...)
		}
	}
	t.flush()
	return nil
}

func sizesHeader(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprint(s)
	}
	return out
}

// RunFig7cd reproduces Figures 7(c)/(d): online time vs query threshold.
func (h *Harness) RunFig7cd(w io.Writer) error {
	fmt.Fprintln(w, "== Figures 7(c)/(d): online time vs query threshold ==")
	specs := []querySpec{{5, 5}, {5, 9}, {10, 20}, {10, 40}}
	alphas := []float64{0.3, 0.5, 0.7, 0.9}
	g, err := h.Graph(h.cfg.MainSize, 0.2)
	if err != nil {
		return err
	}
	hdr := make([]string, len(alphas))
	for i, a := range alphas {
		hdr[i] = fmt.Sprintf("α=%.1f", a)
	}
	t := newTable(w, append([]string{"series"}, hdr...)...)
	for _, spec := range specs {
		for _, L := range h.cfg.Ls {
			row := []string{fmt.Sprintf("L=%d, %s", L, spec)}
			for _, a := range alphas {
				ix, err := h.Index(fmt.Sprintf("synth-%d-0.20", h.cfg.MainSize), g, L, 0.1)
				if err != nil {
					return err
				}
				cell, _, _ := h.timeQuery(ix, specQuery(spec, g.NumLabels()), core.Options{Alpha: a})
				row = append(row, cell)
			}
			t.add(row...)
		}
	}
	t.flush()
	return nil
}

// FindQuerySeed retries random-query seeds until one yields a non-empty
// initial search space at the given threshold (so progression figures show
// actual pruning work rather than an instantly-empty query), falling back
// to the base seed. Exported for reuse by the root benchmarks.
func FindQuerySeed(ix *pathindex.Index, nLabels, n, m int, alpha float64, base int64, tries int) int64 {
	for i := 0; i < tries; i++ {
		seed := base + int64(i)*104729
		rng := rand.New(rand.NewSource(seed))
		q, err := gen.RandomQuery(rng, nLabels, n, m)
		if err != nil {
			return base
		}
		res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: alpha})
		if err != nil {
			continue
		}
		if len(res.Matches) > 0 {
			return seed
		}
		if i == tries-1 && res.Stats.SSPath > 0 {
			return seed
		}
	}
	return base
}

// FindRichQuery scans tries random q(n, m) seeds (spaced like
// FindQuerySeed) and returns the query with the largest match set at the
// given threshold, together with that match count — the workload selector
// for the stream-vs-collect benchmarks, where the gap only shows on
// match-rich queries. Returns (nil, 0) when no scanned query matches at
// all. Exported for reuse by the root benchmarks and cmd/pegbench -perf.
func FindRichQuery(ix *pathindex.Index, n, m int, alpha float64, base int64, tries int) (*query.Query, int) {
	var best *query.Query
	bestN := 0
	for i := 0; i < tries; i++ {
		rng := rand.New(rand.NewSource(base + int64(i)*104729))
		q, err := gen.RandomQuery(rng, ix.Graph().NumLabels(), n, m)
		if err != nil {
			continue
		}
		res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: alpha})
		if err != nil {
			continue
		}
		if len(res.Matches) > bestN {
			bestN, best = len(res.Matches), q
		}
	}
	return best, bestN
}

// RunFig7e reproduces Figure 7(e): search-space progression through the
// pruning steps, for L ∈ Ls and 20%/80% uncertainty (log10 scale).
func (h *Harness) RunFig7e(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 7(e): search space progression, q(5,7), α=0.7 (log10) ==")
	t := newTable(w, "series", "Path", "Path+Context", "Final")
	for _, unc := range []float64{0.2, 0.8} {
		g, err := h.Graph(h.cfg.MainSize, unc)
		if err != nil {
			return err
		}
		for _, L := range h.cfg.Ls {
			ix, err := h.Index(fmt.Sprintf("synth-%d-%.2f", h.cfg.MainSize, unc), g, L, 0.1)
			if err != nil {
				return err
			}
			seed := FindQuerySeed(ix, g.NumLabels(), 5, 7, 0.7, h.cfg.Seed, 30)
			q, err := gen.RandomQuery(rand.New(rand.NewSource(seed)), g.NumLabels(), 5, 7)
			if err != nil {
				return err
			}
			res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.7})
			if err != nil {
				return err
			}
			t.add(fmt.Sprintf("L=%d,%.0f%%", L, unc*100),
				fmtLog10(res.Stats.SSPath), fmtLog10(res.Stats.SSContext), fmtLog10(res.Stats.SSFinal))
		}
	}
	t.flush()
	return nil
}

func fmtLog10(v float64) string {
	if v <= 0 {
		return "-inf"
	}
	return fmt.Sprintf("%.2f", math.Log10(v))
}

// RunFig7f reproduces Figure 7(f): search-space reduction by structure (ST)
// and by upperbounds (UP) on a 5-cycle query at α=0.1, across uncertainty
// (log10 of the reduction ratio; more negative = stronger reduction).
func (h *Harness) RunFig7f(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 7(f): reduction by structure (ST) vs upperbounds (UP), 5-cycle, α=0.1 (log10 ratio) ==")
	uncs := []float64{0.2, 0.4, 0.6, 0.8}
	t := newTable(w, append([]string{"series"}, uncHeader(uncs)...)...)
	for _, L := range h.cfg.Ls {
		rowST := []string{fmt.Sprintf("ST,L=%d", L)}
		rowUP := []string{fmt.Sprintf("UP,L=%d", L)}
		for _, unc := range uncs {
			g, err := h.Graph(h.cfg.MainSize, unc)
			if err != nil {
				return err
			}
			ix, err := h.Index(fmt.Sprintf("synth-%d-%.2f", h.cfg.MainSize, unc), g, L, 0.1)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(h.cfg.Seed))
			q, err := gen.CycleQuery(rng, g.NumLabels(), 5)
			if err != nil {
				return err
			}
			st, err := core.ProbeReduction(context.Background(), ix, q, 0.1, 0)
			if err != nil {
				return err
			}
			rowST = append(rowST, fmtRatio(st.SSAfterStructure, st.SSBefore))
			rowUP = append(rowUP, fmtRatio(st.SSAfterUpperbound, st.SSBefore))
		}
		t.add(rowST...)
		t.add(rowUP...)
	}
	t.flush()
	return nil
}

func fmtRatio(after, before float64) string {
	if before <= 0 {
		return "n/a"
	}
	if after <= 0 {
		return "-inf"
	}
	return fmt.Sprintf("%.2f", math.Log10(after/before))
}

// RunFig7g reproduces Figure 7(g): the DBLP collaboration patterns with
// correlated edge probabilities, α=0.1.
func (h *Harness) RunFig7g(w io.Writer) error {
	return h.runPatterns(w, "== Figure 7(g): DBLP patterns (correlated edges, α=0.1) ==", "dblp",
		func() (*entity.Graph, error) {
			d, err := gen.DBLP(gen.DBLPOptions{Authors: h.cfg.MainSize, Seed: h.cfg.Seed})
			if err != nil {
				return nil, err
			}
			return entity.Build(d, entity.BuildOptions{})
		}, false)
}

// RunFig7h reproduces Figure 7(h): the IMDB co-starring patterns with
// independent edge probabilities and uniform pattern labels, α=0.1.
func (h *Harness) RunFig7h(w io.Writer) error {
	return h.runPatterns(w, "== Figure 7(h): IMDB patterns (independent edges, α=0.1) ==", "imdb",
		func() (*entity.Graph, error) {
			d, err := gen.IMDB(gen.IMDBOptions{Actors: h.cfg.MainSize, Seed: h.cfg.Seed})
			if err != nil {
				return nil, err
			}
			return entity.Build(d, entity.BuildOptions{})
		}, true)
}

func (h *Harness) runPatterns(w io.Writer, title, gkey string, build func() (*entity.Graph, error), uniform bool) error {
	fmt.Fprintln(w, title)
	g, err := h.NamedGraph(gkey, build)
	if err != nil {
		return err
	}
	pats := gen.Patterns()
	hdr := make([]string, len(pats))
	for i, p := range pats {
		hdr[i] = string(p)
	}
	t := newTable(w, append([]string{"series"}, hdr...)...)
	for _, L := range h.cfg.Ls {
		ix, err := h.Index(gkey, g, L, 0.1)
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("L=%d", L)}
		for _, p := range pats {
			pat := p
			cell, _, _ := h.timeQuery(ix, func(rng *rand.Rand) (*query.Query, error) {
				return gen.PatternQueryRandomLabels(pat, rng, g.NumLabels(), uniform)
			}, core.Options{Alpha: 0.1})
			row = append(row, cell)
		}
		t.add(row...)
	}
	t.flush()
	return nil
}

// RunSQL reproduces the Section 6.2.1 SQL comparison: q(5,7) at α=0.7 on the
// main graph, our approach vs the relational baseline under a timeout.
func (h *Harness) RunSQL(w io.Writer) error {
	fmt.Fprintf(w, "== SQL baseline comparison: q(5,7), α=0.7, %d refs ==\n", h.cfg.MainSize)
	g, err := h.Graph(h.cfg.MainSize, 0.2)
	if err != nil {
		return err
	}
	maxL := h.cfg.Ls[len(h.cfg.Ls)-1]
	ix, err := h.Index(fmt.Sprintf("synth-%d-0.20", h.cfg.MainSize), g, maxL, 0.1)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(h.cfg.Seed))
	q, err := gen.RandomQuery(rng, g.NumLabels(), 5, 7)
	if err != nil {
		return err
	}

	start := time.Now()
	res, err := core.Match(context.Background(), ix, q, core.Options{Alpha: 0.7})
	if err != nil {
		return err
	}
	ours := time.Since(start)

	db := sqlbase.NewDB(g)
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.SQLTimeout)
	defer cancel()
	start = time.Now()
	sqlMatches, sqlErr := db.Query(ctx, q, 0.7)
	sqlTime := time.Since(start)

	t := newTable(w, "engine", "time", "matches")
	t.add("peg (optimized, L="+fmt.Sprint(maxL)+")", fmtDur(ours), fmt.Sprint(len(res.Matches)))
	switch {
	case errors.Is(sqlErr, context.DeadlineExceeded):
		t.add("sqlbase (relational)", fmt.Sprintf("> %s (timeout)", fmtDur(h.cfg.SQLTimeout)), "-")
	case sqlErr != nil:
		t.add("sqlbase (relational)", "err: "+sqlErr.Error(), "-")
	default:
		t.add("sqlbase (relational)", fmtDur(sqlTime), fmt.Sprint(len(sqlMatches)))
	}
	t.flush()
	return nil
}

// RunAll executes every figure in paper order.
func (h *Harness) RunAll(w io.Writer) error {
	steps := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"fig6ab", h.RunFig6ab},
		{"fig6c", h.RunFig6c},
		{"fig6d", h.RunFig6d},
		{"fig6ef", h.RunFig6ef},
		{"fig7ab", h.RunFig7ab},
		{"fig7cd", h.RunFig7cd},
		{"fig7e", h.RunFig7e},
		{"fig7f", h.RunFig7f},
		{"fig7g", h.RunFig7g},
		{"fig7h", h.RunFig7h},
		{"sql", h.RunSQL},
	}
	for _, s := range steps {
		if err := s.fn(w); err != nil {
			return fmt.Errorf("harness: %s: %w", s.name, err)
		}
	}
	return nil
}

// Figures maps figure names to runners for cmd/pegbench's -only flag.
func (h *Harness) Figures() map[string]func(io.Writer) error {
	return map[string]func(io.Writer) error{
		"fig6ab": h.RunFig6ab,
		"fig6c":  h.RunFig6c,
		"fig6d":  h.RunFig6d,
		"fig6ef": h.RunFig6ef,
		"fig7ab": h.RunFig7ab,
		"fig7cd": h.RunFig7cd,
		"fig7e":  h.RunFig7e,
		"fig7f":  h.RunFig7f,
		"fig7g":  h.RunFig7g,
		"fig7h":  h.RunFig7h,
		"sql":    h.RunSQL,
	}
}
