package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{
		Sizes:           []int{60, 120},
		OfflineSizes:    []int{60},
		MainSize:        120,
		Betas:           []float64{0.7, 0.3},
		Ls:              []int{1, 2},
		QueryTimeout:    20 * time.Second,
		SQLTimeout:      5 * time.Second,
		QueriesPerPoint: 1,
		Seed:            7,
	}
}

func newTestHarness(t *testing.T) *Harness {
	t.Helper()
	cfg := tinyConfig()
	cfg.WorkDir = t.TempDir()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

func TestGraphCaching(t *testing.T) {
	h := newTestHarness(t)
	g1, err := h.Graph(60, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := h.Graph(60, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("graph not cached")
	}
	g3, err := h.Graph(60, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g3 {
		t.Error("distinct uncertainty shares a cache slot")
	}
}

func TestIndexCaching(t *testing.T) {
	h := newTestHarness(t)
	g, err := h.Graph(60, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	i1, err := h.Index("k", g, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := h.Index("k", g, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if i1 != i2 {
		t.Error("index not cached")
	}
}

func TestRunFig6ab(t *testing.T) {
	h := newTestHarness(t)
	var buf bytes.Buffer
	if err := h.RunFig6ab(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 6(a)") || !strings.Contains(out, "build-time") {
		t.Errorf("unexpected output:\n%s", out)
	}
	// 1 size × 2 betas × 2 Ls = 4 data rows.
	if got := strings.Count(out, "\n"); got < 7 {
		t.Errorf("too few lines: %d\n%s", got, out)
	}
}

func TestRunFig7e(t *testing.T) {
	h := newTestHarness(t)
	var buf bytes.Buffer
	if err := h.RunFig7e(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Path+Context") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunFig7f(t *testing.T) {
	h := newTestHarness(t)
	var buf bytes.Buffer
	if err := h.RunFig7f(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ST,L=1") || !strings.Contains(buf.String(), "UP,L=2") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunSQL(t *testing.T) {
	h := newTestHarness(t)
	var buf bytes.Buffer
	if err := h.RunSQL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sqlbase") || !strings.Contains(out, "peg (optimized") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunPatterns(t *testing.T) {
	h := newTestHarness(t)
	var buf bytes.Buffer
	if err := h.RunFig7g(&buf); err != nil {
		t.Fatal(err)
	}
	if err := h.RunFig7h(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, pat := range []string{"BF1", "BF2", "GR", "ST", "TR"} {
		if !strings.Contains(out, pat) {
			t.Errorf("pattern %s missing from output", pat)
		}
	}
}

func TestFiguresComplete(t *testing.T) {
	h := newTestHarness(t)
	figs := h.Figures()
	for _, name := range []string{"fig6ab", "fig6c", "fig6d", "fig6ef", "fig7ab", "fig7cd", "fig7e", "fig7f", "fig7g", "fig7h", "sql"} {
		if figs[name] == nil {
			t.Errorf("figure %s missing", name)
		}
	}
}
