package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/prob"
	"repro/internal/query"
)

// RandomQuery generates a connected query q(n,m) with n nodes and m edges
// and random labels, as used throughout Section 6.2: a random spanning tree
// plus random extra edges. m is clamped to [n-1, n(n-1)/2].
func RandomQuery(rng *rand.Rand, nLabels, n, m int) (*query.Query, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: query needs at least 1 node")
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	if m < n-1 {
		m = n - 1
	}
	q := query.New()
	for i := 0; i < n; i++ {
		q.AddNode(prob.LabelID(rng.Intn(nLabels)))
	}
	// Spanning tree.
	for i := 1; i < n; i++ {
		if err := q.AddEdge(query.NodeID(rng.Intn(i)), query.NodeID(i)); err != nil {
			return nil, err
		}
	}
	// Extra edges.
	for q.NumEdges() < m {
		a := query.NodeID(rng.Intn(n))
		b := query.NodeID(rng.Intn(n))
		if a == b || q.HasEdge(a, b) {
			continue
		}
		if err := q.AddEdge(a, b); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// CycleQuery generates an n-node cycle with random labels — the query shape
// of the Figure 7(f) reduction experiment.
func CycleQuery(rng *rand.Rand, nLabels, n int) (*query.Query, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: cycle needs at least 3 nodes")
	}
	q := query.New()
	for i := 0; i < n; i++ {
		q.AddNode(prob.LabelID(rng.Intn(nLabels)))
	}
	for i := 0; i < n; i++ {
		if err := q.AddEdge(query.NodeID(i), query.NodeID((i+1)%n)); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// Pattern identifies one of the Figure 8 real-world pattern queries.
type Pattern string

// The five patterns of Figure 8.
const (
	BF1 Pattern = "BF1" // butterfly: two triangles sharing a node
	BF2 Pattern = "BF2" // double butterfly: two triangles joined by a bridge
	GR  Pattern = "GR"  // group: a 4-clique with a pendant
	ST  Pattern = "ST"  // star: a center with four leaves
	TR  Pattern = "TR"  // tree: a depth-2 binary tree
)

// Patterns lists the Figure 8 patterns in the paper's order.
func Patterns() []Pattern { return []Pattern{BF1, BF2, GR, ST, TR} }

// patternEdges reconstructs the Figure 8 shapes (the figure is schematic;
// the node and edge counts follow its drawings).
func patternEdges(p Pattern) ([][2]int, int, error) {
	switch p {
	case BF1:
		return [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}}, 5, nil
	case BF2:
		return [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}}, 6, nil
	case GR:
		return [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}}, 5, nil
	case ST:
		return [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 5, nil
	case TR:
		return [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}}, 7, nil
	}
	return nil, 0, fmt.Errorf("gen: unknown pattern %q", p)
}

// PatternQuery builds a Figure 8 pattern with the given per-node labels
// (len must equal the pattern's node count).
func PatternQuery(p Pattern, labels []prob.LabelID) (*query.Query, error) {
	edges, n, err := patternEdges(p)
	if err != nil {
		return nil, err
	}
	if len(labels) != n {
		return nil, fmt.Errorf("gen: pattern %s needs %d labels, got %d", p, n, len(labels))
	}
	q := query.New()
	for _, l := range labels {
		q.AddNode(l)
	}
	for _, e := range edges {
		if err := q.AddEdge(query.NodeID(e[0]), query.NodeID(e[1])); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// PatternQueryRandomLabels builds a Figure 8 pattern with random labels, as
// the IMDB experiment does (same label for all nodes) or mixed (DBLP-style).
func PatternQueryRandomLabels(p Pattern, rng *rand.Rand, nLabels int, uniform bool) (*query.Query, error) {
	_, n, err := patternEdges(p)
	if err != nil {
		return nil, err
	}
	labels := make([]prob.LabelID, n)
	if uniform {
		l := prob.LabelID(rng.Intn(nLabels))
		for i := range labels {
			labels[i] = l
		}
	} else {
		for i := range labels {
			labels[i] = prob.LabelID(rng.Intn(nLabels))
		}
	}
	return PatternQuery(p, labels)
}

// PatternSize returns the node and edge counts of a pattern.
func PatternSize(p Pattern) (nodes, edges int, err error) {
	es, n, err := patternEdges(p)
	if err != nil {
		return 0, 0, err
	}
	return n, len(es), nil
}
