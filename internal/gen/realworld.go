package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/prob"
	"repro/internal/refgraph"
)

// DBLPOptions scales the Section 6.3 DBLP stand-in. The paper's graph has
// 16.8k authors and 40.3k collaboration edges (≈2.4 edges/author); defaults
// reproduce the recipe at configurable size.
type DBLPOptions struct {
	Authors int
	Seed    int64
}

// DBLPAlphabet returns the three research areas of the DBLP experiment.
func DBLPAlphabet() *prob.Alphabet {
	return prob.MustAlphabet("DB", "ML", "SE")
}

// DBLP synthesizes the author-collaboration network of Section 6.3:
//
//   - every author has a probability distribution over research areas,
//     derived (here: sampled) from relative conference contributions;
//   - collaboration edges get a base probability in [0.5, 1] from the
//     collaboration count, made label-conditional: same area → p,
//     different areas → 0.8·p (the paper's CPT);
//   - reference sets model name similarity: pairs of authors with
//     similarity above 0.9 — here a sampled fraction of pairs — merged with
//     high probability.
func DBLP(opt DBLPOptions) (*refgraph.PGD, error) {
	if opt.Authors < 10 {
		return nil, fmt.Errorf("gen: DBLP needs ≥ 10 authors")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	alpha := DBLPAlphabet()
	nl := alpha.Len()
	d := refgraph.New(alpha)

	// Interest distributions: most authors concentrate on one area (their
	// home conference cluster), with smaller relative contributions
	// elsewhere — a Dirichlet-ish draw sharpened toward one area.
	for i := 0; i < opt.Authors; i++ {
		d.AddReference(interestDist(rng, nl))
	}

	// Collaboration structure by preferential attachment (~2.4 edges per
	// author like the paper's extraction) with the conditional CPT.
	m := 2
	targets := make([]refgraph.RefID, 0, opt.Authors*2*m)
	addCollab := func(a, b refgraph.RefID) {
		// Base probability between 0.5 and 1 depending on the number of
		// collaborations (sampled 1..8, saturating).
		collabs := 1 + rng.Intn(8)
		base := 0.5 + 0.5*(1-math.Exp(-float64(collabs)/3))
		if base > 1 {
			base = 1
		}
		cpt := make([]float64, nl*nl)
		for i := 0; i < nl; i++ {
			for j := 0; j < nl; j++ {
				if i == j {
					cpt[i*nl+j] = base
				} else {
					cpt[i*nl+j] = 0.8 * base
				}
			}
		}
		_ = d.AddEdge(a, b, refgraph.EdgeDist{P: base, CPT: cpt})
	}
	addCollab(0, 1)
	targets = append(targets, 0, 1)
	for i := 2; i < opt.Authors; i++ {
		v := refgraph.RefID(i)
		for e := 0; e < m; e++ {
			to := targets[rng.Intn(len(targets))]
			if to == v {
				to = refgraph.RefID(rng.Intn(i))
				if to == v {
					continue
				}
			}
			addCollab(v, to)
			targets = append(targets, v, to)
		}
	}

	// Name-similarity reference sets: ~1 per 100 authors, high merge
	// probability (similar names usually are the same person).
	nSets := opt.Authors / 100
	if nSets < 1 {
		nSets = 1
	}
	for s := 0; s < nSets; s++ {
		a := refgraph.RefID(rng.Intn(opt.Authors))
		b := refgraph.RefID(rng.Intn(opt.Authors))
		if a == b {
			continue
		}
		if _, err := d.AddReferenceSet([]refgraph.RefID{a, b}, 0.7+0.3*rng.Float64()); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// interestDist samples an author's research-area distribution: a dominant
// home area with probabilistic spillover.
func interestDist(rng *rand.Rand, nLabels int) prob.Dist {
	home := rng.Intn(nLabels)
	if rng.Float64() < 0.5 {
		return prob.Point(prob.LabelID(home))
	}
	weights := make([]float64, nLabels)
	sum := 0.0
	for i := range weights {
		w := rng.Float64() * 0.3
		if i == home {
			w = 1 + rng.Float64()
		}
		weights[i] = w
		sum += w
	}
	entries := make([]prob.LabelProb, 0, nLabels)
	for i, w := range weights {
		if w/sum > 1e-9 {
			entries = append(entries, prob.LabelProb{Label: prob.LabelID(i), P: w / sum})
		}
	}
	return prob.MustDist(entries...)
}

// IMDBOptions scales the Section 6.3 IMDB stand-in. The paper's co-starring
// graph has 90,612 actors and 936,308 edges (≈10 edges/actor).
type IMDBOptions struct {
	Actors int
	Seed   int64
}

// IMDBAlphabet returns the four movie genres of the IMDB experiment.
func IMDBAlphabet() *prob.Alphabet {
	return prob.MustAlphabet("Drama", "Comedy", "Family", "Action")
}

// IMDB synthesizes the co-starring network of Section 6.3: genre
// distributions from the movies an actor appears in, independent
// co-starring edge probabilities from co-star counts, and name-similarity
// reference sets for duplicates/misspellings.
func IMDB(opt IMDBOptions) (*refgraph.PGD, error) {
	if opt.Actors < 10 {
		return nil, fmt.Errorf("gen: IMDB needs ≥ 10 actors")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	alpha := IMDBAlphabet()
	nl := alpha.Len()
	d := refgraph.New(alpha)

	// Genre distributions are concentrated: most actors are dominated by
	// one genre (the distribution over movie genres an actor participates
	// in is highly skewed).
	for i := 0; i < opt.Actors; i++ {
		d.AddReference(interestDist(rng, nl))
	}

	// Denser co-starring structure (~5 edges per actor at our scale).
	m := 5
	targets := make([]refgraph.RefID, 0, opt.Actors*2*m)
	addCostar := func(a, b refgraph.RefID) {
		costars := 1 + rng.Intn(10)
		p := 1 - math.Exp(-float64(costars)/4)
		if p < 0.2 {
			p = 0.2
		}
		_ = d.AddEdge(a, b, refgraph.EdgeDist{P: p})
	}
	addCostar(0, 1)
	targets = append(targets, 0, 1)
	for i := 2; i < opt.Actors; i++ {
		v := refgraph.RefID(i)
		for e := 0; e < m; e++ {
			to := targets[rng.Intn(len(targets))]
			if to == v {
				to = refgraph.RefID(rng.Intn(i))
				if to == v {
					continue
				}
			}
			addCostar(v, to)
			targets = append(targets, v, to)
		}
	}

	// Duplicate/misspelled actor names.
	nSets := opt.Actors / 80
	if nSets < 1 {
		nSets = 1
	}
	for s := 0; s < nSets; s++ {
		a := refgraph.RefID(rng.Intn(opt.Actors))
		b := refgraph.RefID(rng.Intn(opt.Actors))
		if a == b {
			continue
		}
		if _, err := d.AddReferenceSet([]refgraph.RefID{a, b}, 0.6+0.4*rng.Float64()); err != nil {
			return nil, err
		}
	}
	return d, nil
}
