package gen

import (
	"math/rand"
	"testing"

	"repro/internal/entity"
	"repro/internal/query"
	"repro/internal/refgraph"
)

func TestSyntheticBasics(t *testing.T) {
	d, err := Synthetic(SynthOptions{Refs: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRefs() != 500 {
		t.Fatalf("refs = %d", d.NumRefs())
	}
	// Roughly EdgeFactor×refs edges (preferential attachment with dedup).
	if d.NumEdges() < 1500 || d.NumEdges() > 2600 {
		t.Errorf("edges = %d, want ≈ 2500", d.NumEdges())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Must be buildable into a PEG (no contradictory reference sets).
	if _, err := entity.Build(d, entity.BuildOptions{}); err != nil {
		t.Fatalf("Build: %v", err)
	}
}

func TestSyntheticUncertainFraction(t *testing.T) {
	for _, frac := range []float64{0.2, 0.8} {
		d, err := Synthetic(SynthOptions{Refs: 1000, UncertainFrac: frac, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		uncertain := 0
		for i := 0; i < d.NumRefs(); i++ {
			if len(d.RefLabel(refgraph.RefID(i)).Support()) > 1 {
				uncertain++
			}
		}
		got := float64(uncertain) / float64(d.NumRefs())
		// ZipfDist can collapse to a single label, so the observed fraction
		// sits at or slightly below the target.
		if got > frac+0.05 || got < frac-0.15 {
			t.Errorf("frac=%v: uncertain ref fraction = %v", frac, got)
		}
	}
}

func TestSyntheticErrors(t *testing.T) {
	if _, err := Synthetic(SynthOptions{Refs: 1}); err == nil {
		t.Error("1-ref graph accepted")
	}
	if _, err := Synthetic(SynthOptions{Refs: 100, UncertainFrac: 1.5}); err == nil {
		t.Error("bad uncertain fraction accepted")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(SynthOptions{Refs: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(SynthOptions{Refs: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() || a.NumSets() != b.NumSets() {
		t.Error("same seed produced different graphs")
	}
	c, err := Synthetic(SynthOptions{Refs: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() == c.NumEdges() && a.NumSets() == c.NumSets() {
		t.Log("different seeds produced identical counts (possible but unlikely)")
	}
}

func TestSyntheticDegreeSkew(t *testing.T) {
	// Preferential attachment should produce a heavy-tailed degree
	// distribution: the max degree far exceeds the average.
	d, err := Synthetic(SynthOptions{Refs: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	deg := make(map[int]int)
	d.Edges(func(k refgraph.EdgeKey, e refgraph.EdgeDist) bool {
		deg[int(k.A)]++
		deg[int(k.B)]++
		return true
	})
	maxDeg, sum := 0, 0
	for _, v := range deg {
		sum += v
		if v > maxDeg {
			maxDeg = v
		}
	}
	avg := float64(sum) / float64(len(deg))
	if float64(maxDeg) < 3*avg {
		t.Errorf("max degree %d vs avg %.1f: no preferential attachment skew", maxDeg, avg)
	}
}

func TestRandomQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, spec := range []struct{ n, m int }{{3, 3}, {5, 10}, {15, 60}, {5, 100}, {2, 0}} {
		q, err := RandomQuery(rng, 4, spec.n, spec.m)
		if err != nil {
			t.Fatalf("q(%d,%d): %v", spec.n, spec.m, err)
		}
		if q.NumNodes() != spec.n {
			t.Errorf("q(%d,%d): nodes = %d", spec.n, spec.m, q.NumNodes())
		}
		maxE := spec.n * (spec.n - 1) / 2
		wantM := spec.m
		if wantM > maxE {
			wantM = maxE
		}
		if wantM < spec.n-1 {
			wantM = spec.n - 1
		}
		if q.NumEdges() != wantM {
			t.Errorf("q(%d,%d): edges = %d, want %d", spec.n, spec.m, q.NumEdges(), wantM)
		}
		if !q.Connected() {
			t.Errorf("q(%d,%d) disconnected", spec.n, spec.m)
		}
	}
	if _, err := RandomQuery(rng, 4, 0, 0); err == nil {
		t.Error("0-node query accepted")
	}
}

func TestCycleQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q, err := CycleQuery(rng, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 5 || q.NumEdges() != 5 {
		t.Errorf("cycle = %d nodes %d edges", q.NumNodes(), q.NumEdges())
	}
	for n := query.NodeID(0); int(n) < 5; n++ {
		if q.Degree(n) != 2 {
			t.Errorf("node %d degree %d", n, q.Degree(n))
		}
	}
	if _, err := CycleQuery(rng, 3, 2); err == nil {
		t.Error("2-cycle accepted")
	}
}

func TestPatternQueries(t *testing.T) {
	wantSizes := map[Pattern][2]int{
		BF1: {5, 6}, BF2: {6, 7}, GR: {5, 7}, ST: {5, 4}, TR: {7, 6},
	}
	rng := rand.New(rand.NewSource(3))
	for _, p := range Patterns() {
		n, e, err := PatternSize(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := wantSizes[p]; n != want[0] || e != want[1] {
			t.Errorf("%s: size (%d,%d), want %v", p, n, e, want)
		}
		q, err := PatternQueryRandomLabels(p, rng, 3, true)
		if err != nil {
			t.Fatal(err)
		}
		if q.NumNodes() != n || q.NumEdges() != e {
			t.Errorf("%s: query (%d,%d)", p, q.NumNodes(), q.NumEdges())
		}
		if !q.Connected() {
			t.Errorf("%s disconnected", p)
		}
		// Uniform labels.
		l0 := q.Label(0)
		for i := 1; i < q.NumNodes(); i++ {
			if q.Label(query.NodeID(i)) != l0 {
				t.Errorf("%s: non-uniform labels with uniform=true", p)
			}
		}
	}
	if _, err := PatternQuery("NOPE", nil); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := PatternQuery(BF1, nil); err == nil {
		t.Error("wrong label count accepted")
	}
}

func TestDBLP(t *testing.T) {
	d, err := DBLP(DBLPOptions{Authors: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Alphabet().Len() != 3 {
		t.Errorf("DBLP alphabet = %v", d.Alphabet().Names())
	}
	// Edges must carry CPTs (correlated model).
	cptSeen := false
	d.Edges(func(k refgraph.EdgeKey, e refgraph.EdgeDist) bool {
		if e.CPT != nil {
			cptSeen = true
			// Same-label cell must exceed the cross-label cell (p vs 0.8p).
			if e.CPT[0] <= e.CPT[1] {
				t.Errorf("CPT not correlated: same=%v cross=%v", e.CPT[0], e.CPT[1])
			}
			return false
		}
		return true
	})
	if !cptSeen {
		t.Error("no CPT edges in DBLP graph")
	}
	if _, err := entity.Build(d, entity.BuildOptions{}); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := DBLP(DBLPOptions{Authors: 3}); err == nil {
		t.Error("tiny DBLP accepted")
	}
}

func TestIMDB(t *testing.T) {
	d, err := IMDB(IMDBOptions{Actors: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Alphabet().Len() != 4 {
		t.Errorf("IMDB alphabet = %v", d.Alphabet().Names())
	}
	// Edges are independent (no CPT).
	d.Edges(func(k refgraph.EdgeKey, e refgraph.EdgeDist) bool {
		if e.CPT != nil {
			t.Error("IMDB edge has a CPT")
			return false
		}
		return true
	})
	if _, err := entity.Build(d, entity.BuildOptions{}); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := IMDB(IMDBOptions{Actors: 3}); err == nil {
		t.Error("tiny IMDB accepted")
	}
}
