// Package gen generates the paper's workloads: synthetic preferential-
// attachment reference networks with Zipf-skewed probability annotations
// (Section 6), the query shapes of the evaluation (random q(n,m) queries,
// cycles, and the Figure 8 patterns), and the DBLP-like and IMDB-like
// real-world stand-ins of Section 6.3.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/prob"
	"repro/internal/refgraph"
)

// SynthOptions parameterizes the synthetic generator exactly as Section 6
// describes: structure from preferential attachment, relations = EdgeFactor
// × references, Zipf-skewed node label and edge probabilities, k reference
// groups of size s with r merged pairs each, and probability distributions
// on an UncertainFrac fraction of references, relations, and reference sets.
type SynthOptions struct {
	Refs          int     // number of references
	EdgeFactor    float64 // relations per reference (paper: 5)
	Labels        int     // |Σ| (0 → 6)
	UncertainFrac float64 // fraction with probability distributions (paper default: 0.2)
	Groups        int     // k (0 → Refs/1000, min 1)
	GroupSize     int     // s (0 → 4)
	PairsPerGroup int     // r (0 → 4)
	// Clusters splits the references into this many disjoint sub-networks:
	// preferential attachment, edges, and reference sets all stay within one
	// cluster, so the PGD decomposes into at least Clusters independent
	// linkage closures — the workload shape the sharded tier partitions.
	// 0 or 1 keeps the single connected network (byte-identical to the
	// generator before the option existed).
	Clusters int
	Seed     int64
}

func (o *SynthOptions) normalize() error {
	if o.Refs < 2 {
		return fmt.Errorf("gen: need at least 2 references, got %d", o.Refs)
	}
	if o.EdgeFactor <= 0 {
		o.EdgeFactor = 5
	}
	if o.Labels <= 0 {
		o.Labels = 6
	}
	if o.UncertainFrac < 0 || o.UncertainFrac > 1 {
		return fmt.Errorf("gen: UncertainFrac %v out of range", o.UncertainFrac)
	}
	if o.UncertainFrac == 0 {
		o.UncertainFrac = 0.2
	}
	if o.Groups <= 0 {
		o.Groups = o.Refs / 1000
		if o.Groups < 1 {
			o.Groups = 1
		}
	}
	if o.GroupSize <= 0 {
		o.GroupSize = 4
	}
	if o.PairsPerGroup <= 0 {
		o.PairsPerGroup = 4
	}
	if o.Clusters < 0 {
		return fmt.Errorf("gen: negative Clusters %d", o.Clusters)
	}
	if o.Clusters <= 1 {
		o.Clusters = 1
	}
	if o.Refs/o.Clusters < o.GroupSize {
		return fmt.Errorf("gen: %d clusters leave fewer than GroupSize=%d refs per cluster (%d refs total)",
			o.Clusters, o.GroupSize, o.Refs)
	}
	return nil
}

// SynthAlphabet returns the synthetic label alphabet l0…l(n-1).
func SynthAlphabet(n int) *prob.Alphabet {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("l%d", i)
	}
	return prob.MustAlphabet(names...)
}

// Synthetic builds a synthetic PGD per Section 6.
func Synthetic(opt SynthOptions) (*refgraph.PGD, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	alpha := SynthAlphabet(opt.Labels)
	d := refgraph.New(alpha)

	// Cluster ranges: contiguous reference-id blocks, remainder spread over
	// the leading clusters. With Clusters == 1 the single block covers all
	// refs and the RNG draw sequence is exactly the pre-option generator's.
	bases := make([]int, opt.Clusters+1)
	for c := 0; c < opt.Clusters; c++ {
		n := opt.Refs / opt.Clusters
		if c < opt.Refs%opt.Clusters {
			n++
		}
		bases[c+1] = bases[c] + n
	}

	for c := 0; c < opt.Clusters; c++ {
		base, n := bases[c], bases[c+1]-bases[c]

		// Node labels: uncertain references get a Zipf-weighted random
		// distribution, the rest a deterministic random label.
		for i := 0; i < n; i++ {
			if rng.Float64() < opt.UncertainFrac {
				d.AddReference(prob.ZipfDist(rng, opt.Labels))
			} else {
				d.AddReference(prob.Point(prob.LabelID(rng.Intn(opt.Labels))))
			}
		}

		// Structure: preferential attachment with m = EdgeFactor edges per
		// new node (the Barabási–Albert model cited by the paper), local
		// indices offset by the cluster base.
		m := int(opt.EdgeFactor + 0.5)
		if m < 1 {
			m = 1
		}
		addEdge := func(a, b int) {
			e := refgraph.EdgeDist{P: 1}
			if rng.Float64() < opt.UncertainFrac {
				e.P = zipfEdgeProb(rng)
			}
			// AddEdge overwrites duplicates, keeping edge counts approximate
			// like the paper's generator.
			_ = d.AddEdge(refgraph.RefID(base+a), refgraph.RefID(base+b), e)
		}
		// degreeTargets holds one entry per edge endpoint for degree-biased
		// sampling.
		targets := make([]int, 0, n*2*m)
		start := m
		if start >= n {
			start = 1
		}
		for i := 1; i <= start && i < n; i++ {
			addEdge(i-1, i)
			targets = append(targets, i-1, i)
		}
		for i := start + 1; i < n; i++ {
			v := i
			attached := make(map[int]bool, m)
			for e := 0; e < m; e++ {
				var to int
				for tries := 0; ; tries++ {
					to = targets[rng.Intn(len(targets))]
					if to != v && !attached[to] {
						break
					}
					if tries > 16 {
						to = rng.Intn(i)
						if to == v || attached[to] {
							to = (v + 1 + rng.Intn(i)) % i
						}
						break
					}
				}
				if to == v || attached[to] {
					continue
				}
				attached[to] = true
				addEdge(v, to)
				targets = append(targets, v, to)
			}
		}
	}

	// Reference sets: k groups of size s, r random pairs per group. Groups
	// are assigned to clusters round-robin and drawn within the cluster so
	// identity linkage never bridges two clusters.
	for gi := 0; gi < opt.Groups; gi++ {
		base, n := bases[gi%opt.Clusters], bases[gi%opt.Clusters+1]-bases[gi%opt.Clusters]
		group := make([]refgraph.RefID, 0, opt.GroupSize)
		seen := make(map[refgraph.RefID]bool, opt.GroupSize)
		for len(group) < opt.GroupSize {
			r := refgraph.RefID(base + rng.Intn(n))
			if !seen[r] {
				seen[r] = true
				group = append(group, r)
			}
		}
		made := make(map[[2]refgraph.RefID]bool, opt.PairsPerGroup)
		for p := 0; p < opt.PairsPerGroup; p++ {
			a := group[rng.Intn(len(group))]
			b := group[rng.Intn(len(group))]
			if a == b {
				continue
			}
			key := refgraph.MakeEdgeKey(a, b)
			pk := [2]refgraph.RefID{key.A, key.B}
			if made[pk] {
				continue
			}
			made[pk] = true
			// Only the uncertain fraction of candidate pairs become
			// reference sets ("we associate probability distributions with
			// 20% of the … reference sets"); merge probabilities are random
			// and strictly below 1 — overlapping certain (p=1) sets would
			// contradict each other (the transitive-closure constraint the
			// paper leaves to future work).
			if rng.Float64() >= opt.UncertainFrac {
				continue
			}
			pr := 0.05 + 0.9*rng.Float64()
			if _, err := d.AddReferenceSet([]refgraph.RefID{a, b}, pr); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// zipfEdgeProb draws an edge probability with the paper's Zipf skew,
// clamped into (0, 1].
func zipfEdgeProb(rng *rand.Rand) float64 {
	p := prob.ZipfProb(rng, 8)
	if p > 1 {
		p = 1
	}
	return p
}
