package join

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/kpartite"
	"repro/internal/query"
)

// Morsel sizing for FindMatchesParallel: aim for several morsels per worker
// so the atomic dispatch counter load-balances skewed subtrees, but cap the
// morsel size so cancellation latency stays bounded even on huge candidate
// lists.
const (
	morselPerWorker = 4
	maxMorsel       = 64
)

// FindMatchesParallel is the morsel-driven form of FindMatchesFunc: the
// first partition's candidates are split into morsels handed out through an
// atomic counter to `workers` goroutines, each driving its morsel's seeds
// depth-first through the whole join order with its own reusable scratch
// state — so the steady-state enumeration allocates nothing and scales with
// cores.
//
// yield may be invoked concurrently, always with the calling worker's id in
// [0, workers); calls from the same worker are sequential. Returning false
// from any yield stops every worker promptly (FindMatchesParallel then
// returns nil). Cancellation is cooperative: each worker checks ctx on every
// morsel pickup and every 1024 extension attempts, and a cancelled run
// returns ctx.Err().
//
// The produced match set — every mapping with its Prle and Prn, each
// computed by the same fixed-order finalize — is exactly the sequential
// set; only the emission order depends on scheduling.
func FindMatchesParallel(ctx context.Context, g *entity.Graph, q *query.Query, dec *decompose.Decomposition, kg *kpartite.Graph, order []int, alpha float64, workers int, yield func(worker int, m Match) bool) error {
	if len(order) == 0 {
		return nil
	}
	first := order[0]
	total := kg.NumCandidates(first)
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		return FindMatchesFunc(ctx, g, q, dec, kg, order, alpha, func(m Match) bool { return yield(0, m) })
	}
	plan := newPlan(g, q, dec, kg, order, alpha)
	morsel := total / (workers * morselPerWorker)
	if morsel < 1 {
		morsel = 1
	}
	if morsel > maxMorsel {
		morsel = maxMorsel
	}

	var (
		next atomic.Int64 // morsel dispatch counter
		stop atomic.Bool  // raised by yield-false, ctx error, or a worker error
		wg   sync.WaitGroup
	)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newScratch(plan, ctx, func(m Match) bool {
				if stop.Load() {
					return false
				}
				if !yield(w, m) {
					stop.Store(true)
					return false
				}
				return true
			})
			for {
				if stop.Load() || s.stopped {
					return
				}
				lo := int(next.Add(1)-1) * morsel
				if lo >= total {
					return
				}
				// Cancellation is also checked on every morsel pickup so the
				// latency bound does not depend on the per-extension counter.
				if err := ctx.Err(); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				hi := lo + morsel
				if hi > total {
					hi = total
				}
				for ci := lo; ci < hi; ci++ {
					if stop.Load() || s.stopped {
						return
					}
					if !kg.Alive(first, ci) {
						continue
					}
					if err := s.runSeed(ci); err != nil {
						errs[w] = err
						stop.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if stop.Load() {
		return nil // stopped by the consumer, not an error
	}
	return ctx.Err()
}
