package join

import (
	"testing"

	"repro/internal/decompose"
	"repro/internal/prob"
	"repro/internal/query"
)

// buildDec constructs a decomposition over a 4-node path query split into
// three overlapping 1-edge paths plus metadata for order testing.
func buildDec(t *testing.T, cards []float64) *decompose.Decomposition {
	t.Helper()
	q := query.New()
	var ns []query.NodeID
	for i := 0; i < 4; i++ {
		ns = append(ns, q.AddNode(prob.LabelID(i%2)))
	}
	for i := 0; i+1 < 4; i++ {
		if err := q.AddEdge(ns[i], ns[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	est := estFunc(func(x []prob.LabelID, alpha float64) float64 { return 10 })
	dec, err := decompose.Decompose(q, est, decompose.Options{MaxLen: 1, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Paths) != 3 {
		t.Fatalf("decomposition size = %d, want 3", len(dec.Paths))
	}
	for i := range cards {
		if i < len(dec.Paths) {
			dec.Paths[i].Card = cards[i]
		}
	}
	return dec
}

type estFunc func(x []prob.LabelID, alpha float64) float64

func (f estFunc) Cardinality(x []prob.LabelID, alpha float64) float64 { return f(x, alpha) }

func TestOrderHeuristicStartsAtSmallestCardinality(t *testing.T) {
	dec := buildDec(t, []float64{50, 5, 20})
	order := Order(dec, OrderHeuristic)
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// First: no overlap anywhere, so smallest cardinality (path 1).
	if order[0] != 1 {
		t.Errorf("order[0] = %d, want 1 (smallest cardinality)", order[0])
	}
	// Subsequent paths must overlap the prefix when possible: each
	// single-edge path overlaps its neighbors.
	seen := map[query.NodeID]bool{}
	for _, n := range dec.Paths[order[0]].Nodes {
		seen[n] = true
	}
	for _, p := range order[1:] {
		overlap := false
		for _, n := range dec.Paths[p].Nodes {
			if seen[n] {
				overlap = true
			}
			seen[n] = true
		}
		if !overlap {
			t.Errorf("path %d added without overlap", p)
		}
	}
}

func TestOrderByCardinality(t *testing.T) {
	dec := buildDec(t, []float64{50, 5, 20})
	order := Order(dec, OrderByCardinality)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order = %v, want [1 2 0]", order)
	}
}

func TestOrderEmpty(t *testing.T) {
	if got := Order(&decompose.Decomposition{}, OrderHeuristic); got != nil {
		t.Errorf("Order(empty) = %v", got)
	}
}

func TestIntersectInto(t *testing.T) {
	cases := []struct {
		a, b, want []int32
	}{
		{[]int32{1, 3, 5}, []int32{2, 3, 5, 9}, []int32{3, 5}},
		{[]int32{1, 2}, []int32{3, 4}, nil},
		{nil, []int32{1}, nil},
		{[]int32{7}, []int32{7}, []int32{7}},
	}
	for _, c := range cases {
		got := intersectInto(nil, c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

// TestIntersectIntoInPlace covers the scratch reuse pattern: dst shares the
// input's backing array (the write index never passes the read index).
func TestIntersectIntoInPlace(t *testing.T) {
	buf := append([]int32(nil), 1, 3, 5, 7, 9)
	got := intersectInto(buf[:0], buf, []int32{3, 7, 8, 9})
	want := []int32{3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("in-place intersect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-place intersect = %v, want %v", got, want)
		}
	}
}

func TestMatchPr(t *testing.T) {
	m := Match{Prle: 0.5, Prn: 0.4}
	if m.Pr() != 0.2 {
		t.Errorf("Pr = %v", m.Pr())
	}
}
