// Package join implements Section 5.2.5, "Finding Full Query Matches": the
// join-order heuristic and the incremental extension of partial matches
// along the reduced candidate k-partite graph, with exact final probability
// and reference-disjointness checks.
//
// The enumeration is depth-first over a precomputed per-run plan with all
// mutable state in a reusable per-worker scratch (see scratch.go), so the
// steady-state hot path allocates nothing: a match's mapping is copied out
// of the scratch only at yield time. FindMatchesFunc runs one worker;
// FindMatchesParallel (see parallel.go) splits the first partition's
// candidates into morsels consumed by a worker pool.
package join

import (
	"context"
	"sort"

	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/kpartite"
	"repro/internal/query"
)

// Match is a full query match: the mapping ψ from query nodes to entities
// and the probability components of Eq. 11.
type Match struct {
	Mapping []entity.ID // indexed by query node id
	Prle    float64
	Prn     float64
}

// Pr returns Pr(M) = Prle · Prn.
func (m Match) Pr() float64 { return m.Prle * m.Prn }

// OrderMode selects the join-order heuristic.
type OrderMode int

const (
	// OrderHeuristic is the paper's three-tier rule: most node overlap with
	// the ordered prefix, then most join predicates, then smallest
	// cardinality.
	OrderHeuristic OrderMode = iota
	// OrderByCardinality sorts by estimated cardinality only — the ordering
	// used by the Random decomposition baseline.
	OrderByCardinality
)

// Order returns a join order over the decomposition's partitions, ranked by
// the histograms' estimated cardinalities.
func Order(dec *decompose.Decomposition, mode OrderMode) []int {
	return OrderWithCards(dec, mode, nil)
}

// OrderWithCards is Order with the per-partition cardinalities overridden:
// cards[i] replaces the estimate dec.Paths[i].Card (nil falls back to the
// estimates). The executor's adaptive join reorder feeds the observed
// candidate counts through it after candidate retrieval, so the order
// reflects what the index actually returned instead of what the offline
// histograms predicted. Ties break by partition id, making the order fully
// deterministic.
func OrderWithCards(dec *decompose.Decomposition, mode OrderMode, cards []float64) []int {
	k := len(dec.Paths)
	if k == 0 {
		return nil
	}
	card := func(p int) float64 {
		if cards != nil {
			return cards[p]
		}
		return dec.Paths[p].Card
	}
	if mode == OrderByCardinality {
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ca, cb := card(order[a]), card(order[b])
			if ca != cb {
				return ca < cb
			}
			return order[a] < order[b]
		})
		return order
	}

	used := make([]bool, k)
	inOrder := make(map[query.NodeID]bool)
	var order []int
	for len(order) < k {
		best, bestOverlap, bestPreds := -1, -1, -1
		bestCard := 0.0
		for p := 0; p < k; p++ {
			if used[p] {
				continue
			}
			overlap := 0
			for _, n := range dec.Paths[p].Nodes {
				if inOrder[n] {
					overlap++
				}
			}
			preds := 0
			for _, o := range order {
				preds += len(dec.Preds(p, o))
			}
			pcard := card(p)
			better := false
			switch {
			case overlap > bestOverlap:
				better = true
			case overlap == bestOverlap && preds > bestPreds:
				better = true
			case overlap == bestOverlap && preds == bestPreds && (best < 0 || pcard < bestCard):
				better = true
			}
			if better {
				best, bestOverlap, bestPreds, bestCard = p, overlap, preds, pcard
			}
		}
		used[best] = true
		order = append(order, best)
		for _, n := range dec.Paths[best].Nodes {
			inOrder[n] = true
		}
	}
	return order
}

// joined names an earlier ordered path that shares a join predicate with the
// partition being extended, together with its position in the order.
type joined struct{ part, pos int }

// FindMatchesFunc enumerates full matches with Pr(M) ≥ alpha from the
// (possibly reduced) k-partite graph, invoking yield once per match as it is
// found. Enumeration is depth-first, so the first match is produced without
// materializing the full result set. Returning false from yield stops the
// enumeration immediately (FindMatchesFunc then returns nil); a context
// cancellation mid-enumeration returns ctx.Err(), checked once per seed
// candidate, every 1024 extension attempts, and once after the enumeration
// completes.
func FindMatchesFunc(ctx context.Context, g *entity.Graph, q *query.Query, dec *decompose.Decomposition, kg *kpartite.Graph, order []int, alpha float64, yield func(Match) bool) error {
	if len(order) == 0 {
		return nil
	}
	p := newPlan(g, q, dec, kg, order, alpha)
	s := newScratch(p, ctx, yield)
	// Seed with the first partition's alive vertices; each seed is driven
	// depth-first through the rest of the order before the next one starts.
	first := order[0]
	n := kg.NumCandidates(first)
	for ci := 0; ci < n; ci++ {
		if s.stopped {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if !kg.Alive(first, ci) {
			continue
		}
		if err := s.runSeed(ci); err != nil {
			return err
		}
	}
	if s.stopped {
		return nil
	}
	return ctx.Err()
}
