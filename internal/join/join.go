// Package join implements Section 5.2.5, "Finding Full Query Matches": the
// join-order heuristic and the incremental extension of partial matches
// along the reduced candidate k-partite graph, with exact final probability
// and reference-disjointness checks.
package join

import (
	"context"
	"sort"

	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/kpartite"
	"repro/internal/query"
	"repro/internal/refgraph"
)

// Match is a full query match: the mapping ψ from query nodes to entities
// and the probability components of Eq. 11.
type Match struct {
	Mapping []entity.ID // indexed by query node id
	Prle    float64
	Prn     float64
}

// Pr returns Pr(M) = Prle · Prn.
func (m Match) Pr() float64 { return m.Prle * m.Prn }

// OrderMode selects the join-order heuristic.
type OrderMode int

const (
	// OrderHeuristic is the paper's three-tier rule: most node overlap with
	// the ordered prefix, then most join predicates, then smallest
	// cardinality.
	OrderHeuristic OrderMode = iota
	// OrderByCardinality sorts by estimated cardinality only — the ordering
	// used by the Random decomposition baseline.
	OrderByCardinality
)

// Order returns a join order over the decomposition's partitions.
func Order(dec *decompose.Decomposition, mode OrderMode) []int {
	k := len(dec.Paths)
	if k == 0 {
		return nil
	}
	if mode == OrderByCardinality {
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return dec.Paths[order[a]].Card < dec.Paths[order[b]].Card
		})
		return order
	}

	used := make([]bool, k)
	inOrder := make(map[query.NodeID]bool)
	var order []int
	for len(order) < k {
		best, bestOverlap, bestPreds := -1, -1, -1
		bestCard := 0.0
		for p := 0; p < k; p++ {
			if used[p] {
				continue
			}
			overlap := 0
			for _, n := range dec.Paths[p].Nodes {
				if inOrder[n] {
					overlap++
				}
			}
			preds := 0
			for _, o := range order {
				preds += len(dec.Preds(p, o))
			}
			card := dec.Paths[p].Card
			better := false
			switch {
			case overlap > bestOverlap:
				better = true
			case overlap == bestOverlap && preds > bestPreds:
				better = true
			case overlap == bestOverlap && preds == bestPreds && (best < 0 || card < bestCard):
				better = true
			}
			if better {
				best, bestOverlap, bestPreds, bestCard = p, overlap, preds, card
			}
		}
		used[best] = true
		order = append(order, best)
		for _, n := range dec.Paths[best].Nodes {
			inOrder[n] = true
		}
	}
	return order
}

// partial is a match under construction.
type partial struct {
	verts []int32 // chosen vertex per ordered prefix position
	asn   map[query.NodeID]entity.ID
}

// joined names an earlier ordered path that shares a join predicate with the
// partition being extended, together with its position in the order.
type joined struct{ part, pos int }

// enumerator drives the depth-first enumeration of full matches: one partial
// match is extended through the whole join order before the next sibling
// candidate is tried, so complete matches surface as early as possible and an
// early stop (Limit, ctx cancellation, consumer break) abandons the remaining
// search tree immediately.
type enumerator struct {
	ctx   context.Context
	g     *entity.Graph
	q     *query.Query
	dec   *decompose.Decomposition
	kg    *kpartite.Graph
	order []int
	alpha float64
	yield func(Match) bool
	// joins[step] lists the earlier ordered paths with join predicates into
	// order[step]; it depends only on the step, so it is precomputed once.
	joins   [][]joined
	ops     int
	stopped bool
}

// descend extends pm with a candidate of order[step], recursing until the
// order is exhausted and the complete assignment is finalized.
func (e *enumerator) descend(pm partial, step int) error {
	e.ops++
	if e.ops&1023 == 0 {
		if err := e.ctx.Err(); err != nil {
			return err
		}
	}
	if step == len(e.order) {
		if m, ok := finalize(e.g, e.q, pm.asn, e.alpha); ok {
			if !e.yield(m) {
				e.stopped = true
			}
		}
		return nil
	}
	b := e.order[step]
	candIdxs := e.kg.AliveVertices(b)
	if js := e.joins[step]; len(js) > 0 {
		// Intersect the link lists from each joined chosen vertex.
		candIdxs = e.kg.LinkedAlive(js[0].part, int(pm.verts[js[0].pos]), b)
		for _, jd := range js[1:] {
			candIdxs = intersectLinks(candIdxs, e.kg.Links(jd.part, int(pm.verts[jd.pos]), b))
			if len(candIdxs) == 0 {
				break
			}
		}
	}
	for _, ci := range candIdxs {
		if e.stopped {
			return nil
		}
		if !e.kg.Alive(b, int(ci)) {
			continue
		}
		np, ok := extend(e.g, e.q, e.dec, e.kg, pm, b, int(ci), e.alpha, e.order[:step+1])
		if !ok {
			continue
		}
		if err := e.descend(np, step+1); err != nil {
			return err
		}
	}
	return nil
}

// FindMatchesFunc enumerates full matches with Pr(M) ≥ alpha from the
// (possibly reduced) k-partite graph, invoking yield once per match as it is
// found. Enumeration is depth-first, so the first match is produced without
// materializing the full result set. Returning false from yield stops the
// enumeration immediately (FindMatchesFunc then returns nil); a context
// cancellation mid-enumeration returns ctx.Err().
func FindMatchesFunc(ctx context.Context, g *entity.Graph, q *query.Query, dec *decompose.Decomposition, kg *kpartite.Graph, order []int, alpha float64, yield func(Match) bool) error {
	if len(order) == 0 {
		return nil
	}
	e := &enumerator{
		ctx: ctx, g: g, q: q, dec: dec, kg: kg,
		order: order, alpha: alpha, yield: yield,
		joins: make([][]joined, len(order)),
	}
	for step := 1; step < len(order); step++ {
		for pos := 0; pos < step; pos++ {
			if len(dec.Preds(order[pos], order[step])) > 0 {
				e.joins[step] = append(e.joins[step], joined{order[pos], pos})
			}
		}
	}
	// Seed with the first partition's alive vertices; each seed is driven
	// depth-first through the rest of the order before the next one starts.
	first := order[0]
	for _, fi := range kg.AliveVertices(first) {
		if e.stopped {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		i := int(fi)
		c := kg.Candidate(first, i)
		asn := make(map[query.NodeID]entity.ID, q.NumNodes())
		for pos, qn := range dec.Paths[first].Nodes {
			asn[qn] = c.Nodes[pos]
		}
		if err := e.descend(partial{verts: []int32{int32(i)}, asn: asn}, 1); err != nil {
			return err
		}
	}
	return nil
}

// extend adds partition b's candidate ci to the partial, checking assignment
// consistency, reference disjointness, and the partial probability bound.
func extend(g *entity.Graph, q *query.Query, dec *decompose.Decomposition, kg *kpartite.Graph, pm partial, b, ci int, alpha float64, prefix []int) (partial, bool) {
	c := kg.Candidate(b, ci)
	path := dec.Paths[b]
	asn := make(map[query.NodeID]entity.ID, len(pm.asn)+len(path.Nodes))
	for k, v := range pm.asn {
		asn[k] = v
	}
	for pos, qn := range path.Nodes {
		if v, ok := asn[qn]; ok {
			if v != c.Nodes[pos] {
				return partial{}, false
			}
			continue
		}
		asn[qn] = c.Nodes[pos]
	}
	if !assignmentRefsDisjoint(g, asn) {
		return partial{}, false
	}
	// Partial probability upper-bounds the final match probability: prune
	// extensions already below α (Section 5.2.5).
	if partialPr(g, q, dec, asn, prefix)+1e-12 < alpha {
		return partial{}, false
	}
	verts := make([]int32, len(pm.verts)+1)
	copy(verts, pm.verts)
	verts[len(pm.verts)] = int32(ci)
	return partial{verts: verts, asn: asn}, true
}

// partialPr computes the probability of the union subgraph covered by the
// ordered prefix of paths.
func partialPr(g *entity.Graph, q *query.Query, dec *decompose.Decomposition, asn map[query.NodeID]entity.ID, prefix []int) float64 {
	prle := 1.0
	nodes := make([]entity.ID, 0, len(asn))
	for qn, v := range asn {
		prle *= g.PrLabel(v, q.Label(qn))
		if prle == 0 {
			return 0
		}
		nodes = append(nodes, v)
	}
	seen := make(map[[2]query.NodeID]struct{}, 16)
	for _, p := range prefix {
		path := dec.Paths[p]
		for pos := 0; pos+1 < len(path.Nodes); pos++ {
			a, b := path.Nodes[pos], path.Nodes[pos+1]
			if a > b {
				a, b = b, a
			}
			key := [2]query.NodeID{a, b}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			ep, ok := g.EdgeBetween(asn[a], asn[b])
			if !ok {
				return 0
			}
			prle *= ep.Prob(q.Label(a), q.Label(b))
			if prle == 0 {
				return 0
			}
		}
	}
	return prle * g.Prn(nodes)
}

// finalize computes the exact Pr(M) over every query node and edge.
func finalize(g *entity.Graph, q *query.Query, asn map[query.NodeID]entity.ID, alpha float64) (Match, bool) {
	mapping := make([]entity.ID, q.NumNodes())
	nodes := make([]entity.ID, 0, q.NumNodes())
	prle := 1.0
	for n := 0; n < q.NumNodes(); n++ {
		v, ok := asn[query.NodeID(n)]
		if !ok {
			return Match{}, false // uncovered query node (cannot happen with a covering decomposition)
		}
		mapping[n] = v
		nodes = append(nodes, v)
		prle *= g.PrLabel(v, q.Label(query.NodeID(n)))
		if prle == 0 {
			return Match{}, false
		}
	}
	for _, e := range q.Edges() {
		ep, ok := g.EdgeBetween(mapping[e[0]], mapping[e[1]])
		if !ok {
			return Match{}, false
		}
		prle *= ep.Prob(q.Label(e[0]), q.Label(e[1]))
		if prle == 0 {
			return Match{}, false
		}
	}
	prn := g.Prn(nodes)
	if prle*prn+1e-12 < alpha {
		return Match{}, false
	}
	return Match{Mapping: mapping, Prle: prle, Prn: prn}, true
}

func assignmentRefsDisjoint(g *entity.Graph, asn map[query.NodeID]entity.ID) bool {
	seen := make(map[refgraph.RefID]struct{}, len(asn)*2)
	for _, v := range asn {
		for _, r := range g.Refs(v) {
			if _, dup := seen[r]; dup {
				return false
			}
			seen[r] = struct{}{}
		}
	}
	return true
}

func intersectLinks(a []int32, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
