package join

import (
	"context"

	"repro/internal/decompose"
	"repro/internal/entity"
	"repro/internal/kpartite"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/refgraph"
)

// The enumeration is split into an immutable per-run plan shared by every
// worker and a per-worker scratch holding all mutable state, so extending a
// partial match allocates nothing: assignments live in a flat per-query-node
// array, reference disjointness in a bitset with an undo stack, and the
// running probability prefix in a per-step array. Which query nodes a step
// newly assigns, which it merely re-checks, and which query edges it newly
// covers depend only on the join order — never on the candidates — so they
// are precomputed once into the plan.

// stepAssign is one path position whose query node is first assigned at this
// step.
type stepAssign struct {
	pos   int32
	qn    query.NodeID
	label prob.LabelID
}

// stepCheck is one path position whose query node was assigned by an earlier
// step and must only be checked for consistency.
type stepCheck struct {
	pos int32
	qn  query.NodeID
}

// stepEdge is one query edge (qa < qb) whose probability is first multiplied
// into the prefix at this step.
type stepEdge struct {
	qa, qb query.NodeID
	la, lb prob.LabelID
}

// stepPlan is the precomputed shape of one join-order step.
type stepPlan struct {
	part   int // partition order[step]
	joins  []joined
	assign []stepAssign
	check  []stepCheck
	edges  []stepEdge
}

// plan is the immutable shared state of one enumeration run.
type plan struct {
	g     *entity.Graph
	q     *query.Query
	dec   *decompose.Decomposition
	kg    *kpartite.Graph
	order []int
	alpha float64

	steps    []stepPlan
	qEdges   []stepEdge // all query edges, for the exact finalize
	numQ     int
	refWords int // words in the reference bitset
}

func newPlan(g *entity.Graph, q *query.Query, dec *decompose.Decomposition, kg *kpartite.Graph, order []int, alpha float64) *plan {
	p := &plan{g: g, q: q, dec: dec, kg: kg, order: order, alpha: alpha, numQ: q.NumNodes()}
	covered := make([]bool, p.numQ)
	coveredEdge := make(map[[2]query.NodeID]bool, q.NumEdges())
	p.steps = make([]stepPlan, len(order))
	for s, b := range order {
		sp := &p.steps[s]
		sp.part = b
		for pos := 0; pos < s; pos++ {
			if len(dec.Preds(order[pos], b)) > 0 {
				sp.joins = append(sp.joins, joined{order[pos], pos})
			}
		}
		path := &dec.Paths[b]
		for pos, qn := range path.Nodes {
			if covered[qn] {
				sp.check = append(sp.check, stepCheck{pos: int32(pos), qn: qn})
			} else {
				covered[qn] = true
				sp.assign = append(sp.assign, stepAssign{pos: int32(pos), qn: qn, label: q.Label(qn)})
			}
		}
		for pos := 0; pos+1 < len(path.Nodes); pos++ {
			a, b2 := path.Nodes[pos], path.Nodes[pos+1]
			if a > b2 {
				a, b2 = b2, a
			}
			key := [2]query.NodeID{a, b2}
			if coveredEdge[key] {
				continue
			}
			coveredEdge[key] = true
			sp.edges = append(sp.edges, stepEdge{qa: a, qb: b2, la: q.Label(a), lb: q.Label(b2)})
		}
	}
	for _, e := range q.Edges() {
		p.qEdges = append(p.qEdges, stepEdge{qa: e[0], qb: e[1], la: q.Label(e[0]), lb: q.Label(e[1])})
	}
	// Size the reference bitset by the largest reference id appearing in any
	// candidate row — the only entities an assignment can contain.
	maxRef := refgraph.RefID(-1)
	for part := 0; part < kg.NumPartitions(); part++ {
		for i := 0; i < kg.NumCandidates(part); i++ {
			for _, v := range kg.Row(part, i) {
				for _, r := range g.Refs(v) {
					if r > maxRef {
						maxRef = r
					}
				}
			}
		}
	}
	p.refWords = int(maxRef)/64 + 1
	return p
}

// scratch is the reusable per-worker state of the depth-first enumeration.
// All buffers are allocated once; the inner extend/undo loop allocates
// nothing, and a match's mapping is copied out of the scratch only at yield
// time.
type scratch struct {
	p     *plan
	ctx   context.Context
	yield func(Match) bool

	asn      []entity.ID // per query node; -1 = unassigned
	verts    []int32     // chosen vertex per ordered step
	prleAt   []float64   // prleAt[s] = label/edge prefix product before step s
	nodes    []entity.ID // assigned entities, assignment order (for Prn)
	refWords []uint64    // reference-disjointness bitset
	refUndo  []refgraph.RefID
	refMark  []int32   // refUndo length before each step
	isect    [][]int32 // per-step link-intersection buffers
	mapping  []entity.ID

	ops     int // per-worker extension counter for ctx-cancellation checks
	stopped bool
}

func newScratch(p *plan, ctx context.Context, yield func(Match) bool) *scratch {
	s := &scratch{
		p:        p,
		ctx:      ctx,
		yield:    yield,
		asn:      make([]entity.ID, p.numQ),
		verts:    make([]int32, len(p.order)),
		prleAt:   make([]float64, len(p.order)+1),
		nodes:    make([]entity.ID, 0, p.numQ),
		refWords: make([]uint64, p.refWords),
		refMark:  make([]int32, len(p.order)),
		isect:    make([][]int32, len(p.order)),
		mapping:  make([]entity.ID, p.numQ),
	}
	for i := range s.asn {
		s.asn[i] = -1
	}
	s.prleAt[0] = 1
	return s
}

// runSeed drives one first-partition candidate depth-first through the whole
// join order.
func (s *scratch) runSeed(ci int) error {
	return s.tryCandidate(0, s.p.order[0], ci)
}

// tryCandidate extends the current partial with candidate ci of partition b
// at the given step, recursing into the rest of the order on success and
// undoing the extension afterwards.
func (s *scratch) tryCandidate(step, b, ci int) error {
	s.ops++
	if s.ops&1023 == 0 {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	if !s.apply(step, b, ci) {
		return nil
	}
	err := s.descend(step + 1)
	s.undo(step)
	return err
}

// apply installs candidate ci of partition b into the scratch: consistency
// checks on already-assigned query nodes, reference-disjointness bits for
// newly assigned ones, and the incremental label/edge prefix with the
// partial-probability α prune (Section 5.2.5). On failure every partial
// effect is rolled back and false is returned.
func (s *scratch) apply(step, b, ci int) bool {
	p := s.p
	sp := &p.steps[step]
	row := p.kg.Row(b, ci)
	for _, c := range sp.check {
		if s.asn[c.qn] != row[c.pos] {
			return false
		}
	}
	nAsn := 0
	refMark := len(s.refUndo)
	pr := s.prleAt[step]
	ok := true
assign:
	for _, a := range sp.assign {
		v := row[a.pos]
		for _, r := range p.g.Refs(v) {
			w, bit := uint(r)>>6, uint64(1)<<(uint(r)&63)
			if s.refWords[w]&bit != 0 {
				ok = false
				break assign
			}
			s.refWords[w] |= bit
			s.refUndo = append(s.refUndo, r)
		}
		s.asn[a.qn] = v
		s.nodes = append(s.nodes, v)
		nAsn++
		pr *= p.g.PrLabel(v, a.label)
	}
	if ok && pr == 0 {
		ok = false
	}
	if ok {
		for _, e := range sp.edges {
			ep, found := p.g.EdgeBetween(s.asn[e.qa], s.asn[e.qb])
			if !found {
				ok = false
				break
			}
			pr *= ep.Prob(e.la, e.lb)
			if pr == 0 {
				ok = false
				break
			}
		}
	}
	// Partial probability upper-bounds the final match probability: prune
	// extensions already below α.
	if ok && pr*p.g.Prn(s.nodes)+1e-12 < p.alpha {
		ok = false
	}
	if !ok {
		s.unwind(sp, nAsn, refMark)
		return false
	}
	s.refMark[step] = int32(refMark)
	s.prleAt[step+1] = pr
	s.verts[step] = int32(ci)
	return true
}

// unwind rolls back the first nAsn assignments of a step and the reference
// bits set since refMark.
func (s *scratch) unwind(sp *stepPlan, nAsn, refMark int) {
	for _, a := range sp.assign[:nAsn] {
		s.asn[a.qn] = -1
	}
	s.nodes = s.nodes[:len(s.nodes)-nAsn]
	for _, r := range s.refUndo[refMark:] {
		s.refWords[uint(r)>>6] &^= 1 << (uint(r) & 63)
	}
	s.refUndo = s.refUndo[:refMark]
}

// undo reverses a successful apply of the given step.
func (s *scratch) undo(step int) {
	sp := &s.p.steps[step]
	s.unwind(sp, len(sp.assign), int(s.refMark[step]))
}

// descend enumerates the candidates of the given step against the current
// partial: the intersection of the link lists from every joined chosen
// vertex, or the whole partition when the step has no join predicates.
func (s *scratch) descend(step int) error {
	p := s.p
	if step == len(p.order) {
		s.emit()
		return nil
	}
	sp := &p.steps[step]
	b := sp.part
	if len(sp.joins) == 0 {
		n := p.kg.NumCandidates(b)
		for ci := 0; ci < n; ci++ {
			if s.stopped {
				return nil
			}
			if !p.kg.Alive(b, ci) {
				continue
			}
			if err := s.tryCandidate(step, b, ci); err != nil {
				return err
			}
		}
		return nil
	}
	cands := p.kg.Links(sp.joins[0].part, int(s.verts[sp.joins[0].pos]), b)
	for _, jd := range sp.joins[1:] {
		if len(cands) == 0 {
			break
		}
		// In-place ping within the step's reusable buffer: the output index
		// never passes the input index, so intersecting the buffer with a
		// fresh link list is safe.
		cands = intersectInto(s.isect[step][:0], cands, p.kg.Links(jd.part, int(s.verts[jd.pos]), b))
		s.isect[step] = cands[:0]
	}
	for _, ci := range cands {
		if s.stopped {
			return nil
		}
		if !p.kg.Alive(b, int(ci)) {
			continue
		}
		if err := s.tryCandidate(step, b, int(ci)); err != nil {
			return err
		}
	}
	return nil
}

// emit finalizes the complete assignment: the exact Pr(M) is recomputed over
// every query node and edge in fixed query-node order — identical for the
// sequential and every parallel execution — and the mapping is copied out of
// the scratch only if the match clears α and is yielded.
func (s *scratch) emit() {
	p := s.p
	for n := 0; n < p.numQ; n++ {
		v := s.asn[n]
		if v < 0 {
			return // uncovered query node (cannot happen with a covering decomposition)
		}
		s.mapping[n] = v
	}
	prle := 1.0
	for n := 0; n < p.numQ; n++ {
		prle *= p.g.PrLabel(s.mapping[n], p.q.Label(query.NodeID(n)))
		if prle == 0 {
			return
		}
	}
	for _, e := range p.qEdges {
		ep, ok := p.g.EdgeBetween(s.mapping[e.qa], s.mapping[e.qb])
		if !ok {
			return
		}
		prle *= ep.Prob(e.la, e.lb)
		if prle == 0 {
			return
		}
	}
	prn := p.g.Prn(s.mapping)
	if prle*prn+1e-12 < p.alpha {
		return
	}
	m := Match{Mapping: append([]entity.ID(nil), s.mapping...), Prle: prle, Prn: prn}
	if !s.yield(m) {
		s.stopped = true
	}
}

// intersectInto appends the sorted intersection of a and b to dst and
// returns it. dst may share a's backing array as long as it starts at or
// before a (the write index never passes the read index).
func intersectInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
