// Package pathindex implements the context-aware path index of Section 5.1:
// a two-level disk index over all paths of the probabilistic entity graph
// with length at most L and probability at least β, keyed by
// ⟨label sequence, probability bucket⟩, together with the per-node context
// information (c, ppu, fpu) and the cardinality histograms used for query
// decomposition (Section 5.2.1).
//
// The first level interns canonical label sequences in a persistent hash
// dictionary; the second level is a B+ tree whose composite keys
// (seqID ‖ bucket ‖ recno) sort entries of one sequence by probability
// bucket, enabling the α-threshold range scans of the online phase.
package pathindex

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/entity"
	"repro/internal/prob"
)

// MaxSupportedLen is the largest supported path length L (edges per path).
// The paper evaluates L ∈ {1, 2, 3}; the fixed-size record layout leaves
// headroom.
const MaxSupportedLen = 4

// maxNodes is the maximum number of nodes on an indexed path.
const maxNodes = MaxSupportedLen + 1

// PathMatch is one path retrieved from the index (or computed on demand):
// the node sequence and the two probability components stored with it.
type PathMatch struct {
	Nodes []entity.ID
	Prle  float64
	Prn   float64
}

// Pr returns the path's total probability Prle · Prn.
func (m PathMatch) Pr() float64 { return m.Prle * m.Prn }

// seqBytes encodes a label sequence as big-endian 16-bit labels, preserving
// lexicographic order.
func seqBytes(labels []prob.LabelID) []byte {
	b := make([]byte, 2*len(labels))
	for i, l := range labels {
		binary.BigEndian.PutUint16(b[2*i:], uint16(l))
	}
	return b
}

// reverseLabels returns the reversed copy of a label sequence.
func reverseLabels(labels []prob.LabelID) []prob.LabelID {
	out := make([]prob.LabelID, len(labels))
	for i, l := range labels {
		out[len(labels)-1-i] = l
	}
	return out
}

// compareLabels orders label sequences lexicographically, shorter sequences
// first on ties.
func compareLabels(a, b []prob.LabelID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// canonicalSeq returns the canonical (stored) form of a label sequence:
// min(X, reverse(X)) — the symmetry optimization of Section 5.1 — along with
// whether the input had to be reversed and whether it is palindromic.
func canonicalSeq(labels []prob.LabelID) (canon []prob.LabelID, reversed, palindrome bool) {
	rev := reverseLabels(labels)
	switch compareLabels(labels, rev) {
	case 0:
		return labels, false, true
	case -1:
		return labels, false, false
	default:
		return rev, true, false
	}
}

// Bucketing: bucket i covers probabilities [β+iγ, β+(i+1)γ); probability 1
// lands in the last bucket.
func bucketOf(p, beta, gamma float64) uint16 {
	if p <= beta {
		return 0
	}
	b := int((p - beta) / gamma * (1 + 1e-12))
	max := numBuckets(beta, gamma) - 1
	if b > max {
		b = max
	}
	return uint16(b)
}

func numBuckets(beta, gamma float64) int {
	return int(math.Floor((1-beta)/gamma+1e-9)) + 1
}

// bucketFloor returns the grid probability at the low edge of bucket b.
func bucketFloor(b uint16, beta, gamma float64) float64 {
	return beta + float64(b)*gamma
}

// Key layout: seqID (8B BE) ‖ bucket (2B BE) ‖ recno (4B BE). Big-endian
// fields make byte order equal numeric order, so one range scan covers
// "all entries of X with bucket ≥ b".
const keyLen = 8 + 2 + 4

func encodeKey(seqID uint64, bucket uint16, recno uint32) []byte {
	k := make([]byte, keyLen)
	binary.BigEndian.PutUint64(k[0:], seqID)
	binary.BigEndian.PutUint16(k[8:], bucket)
	binary.BigEndian.PutUint32(k[10:], recno)
	return k
}

// Record layout: count (1B) ‖ nodes (4B each) ‖ Prle (8B) ‖ Prn (8B).
func encodeRecord(nodes []entity.ID, prle, prn float64) []byte {
	v := make([]byte, 1+4*len(nodes)+16)
	v[0] = byte(len(nodes))
	off := 1
	for _, n := range nodes {
		binary.LittleEndian.PutUint32(v[off:], uint32(n))
		off += 4
	}
	binary.LittleEndian.PutUint64(v[off:], math.Float64bits(prle))
	binary.LittleEndian.PutUint64(v[off+8:], math.Float64bits(prn))
	return v
}

func decodeRecord(v []byte) (PathMatch, error) {
	if len(v) < 1 {
		return PathMatch{}, fmt.Errorf("pathindex: empty record")
	}
	n := int(v[0])
	if n == 0 || n > maxNodes || len(v) != 1+4*n+16 {
		return PathMatch{}, fmt.Errorf("pathindex: corrupt record (%d nodes, %d bytes)", n, len(v))
	}
	m := PathMatch{Nodes: make([]entity.ID, n)}
	off := 1
	for i := 0; i < n; i++ {
		m.Nodes[i] = entity.ID(binary.LittleEndian.Uint32(v[off:]))
		off += 4
	}
	m.Prle = math.Float64frombits(binary.LittleEndian.Uint64(v[off:]))
	m.Prn = math.Float64frombits(binary.LittleEndian.Uint64(v[off+8:]))
	return m, nil
}

// reverseNodes returns a reversed copy of a node sequence.
func reverseNodes(nodes []entity.ID) []entity.ID {
	out := make([]entity.ID, len(nodes))
	for i, n := range nodes {
		out[len(nodes)-1-i] = n
	}
	return out
}
