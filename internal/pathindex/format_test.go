package pathindex

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/prob"
)

// assertReadersBitwiseEqual drives the full read surface of two indexes —
// every stored sequence in both orientations, a grid of α values spanning
// on-demand, in-range, and above-top-bucket cases, cardinality estimates,
// and the context tables — and requires bitwise agreement: same match
// order, same node sequences, same Prle/Prn bits, same estimate bits.
func assertReadersBitwiseEqual(t *testing.T, a, b *Index, g *entity.Graph) {
	t.Helper()
	seqsA, seqsB := a.Sequences(), b.Sequences()
	if !reflect.DeepEqual(seqsA, seqsB) {
		t.Fatalf("sequence sets differ: %d vs %d", len(seqsA), len(seqsB))
	}
	if a.Stats().Entries != b.Stats().Entries {
		t.Fatalf("entry counts differ: %d vs %d", a.Stats().Entries, b.Stats().Entries)
	}
	alphas := []float64{0.01, a.Beta(), a.Beta() + 1e-9, 0.1, 0.15, 0.31, 0.5, 0.77, 0.99, 1.0}
	probe := func(X []prob.LabelID) {
		for _, alpha := range alphas {
			ma, errA := a.Lookup(X, alpha)
			mb, errB := b.Lookup(X, alpha)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("X=%v α=%v: error mismatch: %v vs %v", X, alpha, errA, errB)
			}
			if len(ma) != len(mb) {
				t.Fatalf("X=%v α=%v: %d vs %d matches", X, alpha, len(ma), len(mb))
			}
			for i := range ma {
				if !reflect.DeepEqual(ma[i].Nodes, mb[i].Nodes) ||
					math.Float64bits(ma[i].Prle) != math.Float64bits(mb[i].Prle) ||
					math.Float64bits(ma[i].Prn) != math.Float64bits(mb[i].Prn) {
					t.Fatalf("X=%v α=%v match %d: %+v vs %+v", X, alpha, i, ma[i], mb[i])
				}
			}
			ca, cb := a.Cardinality(X, alpha), b.Cardinality(X, alpha)
			if math.Float64bits(ca) != math.Float64bits(cb) {
				t.Fatalf("X=%v α=%v: cardinality %v vs %v", X, alpha, ca, cb)
			}
		}
	}
	for _, X := range seqsA {
		probe(X)
		probe(reverseLabels(X)) // the reversed orientation exercises canonicalization
	}
	probe([]prob.LabelID{0, 0}) // palindromic, possibly absent

	nl := g.NumLabels()
	for v := 0; v < g.NumNodes(); v++ {
		for s := 0; s < nl; s++ {
			id, sig := entity.ID(v), prob.LabelID(s)
			if a.Context().Card(id, sig) != b.Context().Card(id, sig) ||
				math.Float64bits(a.Context().PPU(id, sig)) != math.Float64bits(b.Context().PPU(id, sig)) ||
				math.Float64bits(a.Context().FPU(id, sig)) != math.Float64bits(b.Context().FPU(id, sig)) {
				t.Fatalf("context (%d,%d) differs", v, s)
			}
		}
	}
}

func syntheticGraph(t *testing.T, seed int64) *entity.Graph {
	t.Helper()
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs: 40, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
		Groups: 3, GroupSize: 3, PairsPerGroup: 2, Seed: seed,
	})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatalf("entity.Build: %v", err)
	}
	return g
}

// TestFormatEquivalence is the cross-format property: a packed (v2) build
// and a B+-tree (v1) build over the same graph and parameters are
// indistinguishable through the Reader interface, bit for bit.
func TestFormatEquivalence(t *testing.T) {
	t.Run("motivating", func(t *testing.T) {
		g := motivating(t)
		opt := Options{MaxLen: 2, Beta: 0.02, Gamma: 0.1}
		packed := buildIndex(t, g, opt)
		opt.Format = FormatBTree
		tree := buildIndex(t, g, opt)
		if packed.Format() != FormatPacked || tree.Format() != FormatBTree {
			t.Fatalf("formats: %v / %v", packed.Format(), tree.Format())
		}
		assertReadersBitwiseEqual(t, tree, packed, g)
	})
	for _, seed := range []int64{1, 2, 3} {
		t.Run("synthetic", func(t *testing.T) {
			g := syntheticGraph(t, seed)
			opt := Options{MaxLen: 3, Beta: 0.05, Gamma: 0.1}
			packed := buildIndex(t, g, opt)
			opt.Format = FormatBTree
			tree := buildIndex(t, g, opt)
			assertReadersBitwiseEqual(t, tree, packed, g)
		})
	}
}

// TestRepackRoundTrip migrates a v1 directory in place and asserts the
// repacked index is bitwise-equivalent to the original — Lookup, Context,
// and Cardinality all answer identically.
func TestRepackRoundTrip(t *testing.T) {
	g := syntheticGraph(t, 9)
	dir := filepath.Join(t.TempDir(), "ix")
	opt := Options{MaxLen: 2, Beta: 0.05, Gamma: 0.1, Dir: dir, Format: FormatBTree}
	v1, err := Build(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v1.Close() })

	stats, err := Repack(dir, g)
	if err != nil {
		t.Fatalf("Repack: %v", err)
	}
	if stats.Entries != v1.Stats().Entries {
		t.Fatalf("repack entries %d, v1 has %d", stats.Entries, v1.Stats().Entries)
	}
	if stats.Bytes == 0 {
		t.Fatal("repack reported 0 bytes")
	}

	// Open now prefers the packed file it finds in the directory.
	v2, err := Open(dir, g)
	if err != nil {
		t.Fatalf("Open repacked: %v", err)
	}
	t.Cleanup(func() { v2.Close() })
	if v2.Format() != FormatPacked {
		t.Fatalf("repacked dir opened as %v", v2.Format())
	}
	assertReadersBitwiseEqual(t, v1, v2, g)

	// A second repack must refuse rather than clobber.
	if _, err := Repack(dir, g); err == nil {
		t.Fatal("second Repack succeeded")
	}
	// The v1 artifacts were left for rollback: removing packed.idx falls
	// back to the B+-tree open path.
	if err := os.Remove(filepath.Join(dir, "packed.idx")); err != nil {
		t.Fatal(err)
	}
	back, err := Open(dir, g)
	if err != nil {
		t.Fatalf("rollback open: %v", err)
	}
	defer back.Close()
	if back.Format() != FormatBTree {
		t.Fatalf("rollback opened as %v", back.Format())
	}
}

// TestIndexMetrics covers the read-path counters both formats export.
func TestIndexMetrics(t *testing.T) {
	g := motivating(t)
	ix := buildIndex(t, g, Options{MaxLen: 2, Beta: 0.02, Gamma: 0.1})
	var observed int
	ix.SetPostingObserver(func(micros float64) {
		if micros < 0 {
			t.Errorf("negative decode time %v", micros)
		}
		observed++
	})
	alpha := g.Alphabet()
	if _, err := ix.Lookup([]prob.LabelID{alpha.ID("r"), alpha.ID("a")}, 0.1); err != nil {
		t.Fatal(err)
	}
	m := ix.IndexMetrics()
	if m.Format != "v2" {
		t.Fatalf("format %q", m.Format)
	}
	if m.Probes != 1 {
		t.Fatalf("probes %d", m.Probes)
	}
	if m.MappedBytes == 0 {
		t.Fatal("mapped bytes 0")
	}
	if observed != 1 {
		t.Fatalf("observer fired %d times", observed)
	}
	ix.SetPostingObserver(nil)
	if _, err := ix.Lookup([]prob.LabelID{alpha.ID("r"), alpha.ID("a")}, 0.1); err != nil {
		t.Fatal(err)
	}
	if observed != 1 {
		t.Fatal("observer fired after uninstall")
	}
}
