package pathindex

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/prob"
)

// TestConcurrentLookups hammers one shared index from many goroutines with
// mixed Lookup (indexed and on-demand α) and Cardinality calls, asserting
// every concurrent result equals the sequential baseline. Run under -race
// this proves the de-serialized read path — sharded pager pool, B+ tree
// scans, dictionary and histogram reads — is actually safe. The tiny page
// cache forces constant eviction and re-admission churn through the shards.
func TestConcurrentLookups(t *testing.T) {
	d, err := gen.Synthetic(gen.SynthOptions{Refs: 80, EdgeFactor: 2, Labels: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	built, err := Build(context.Background(), g, Options{
		MaxLen: 2, Beta: 0.05, Gamma: 0.1, Dir: dir, CachePages: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Close(); err != nil {
		t.Fatal(err)
	}

	// Serve from a freshly opened index, as pegserve does.
	ix, err := Open(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	seqs := ix.Sequences()
	if len(seqs) == 0 {
		t.Fatal("index has no sequences")
	}

	// Sequential baselines per (sequence, alpha).
	alphas := []float64{0.06, 0.2, 0.5, 0.01 /* below β: on-demand path */}
	type baseKey struct {
		seq   int
		alpha float64
	}
	want := make(map[baseKey][]PathMatch)
	wantCard := make(map[baseKey]float64)
	for si, X := range seqs {
		for _, a := range alphas {
			ms, err := ix.Lookup(X, a)
			if err != nil {
				t.Fatalf("baseline Lookup(%v, %v): %v", X, a, err)
			}
			sortMatches(ms)
			want[baseKey{si, a}] = ms
			wantCard[baseKey{si, a}] = ix.Cardinality(X, a)
		}
	}

	const goroutines = 16
	const iters = 150
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				si := rng.Intn(len(seqs))
				a := alphas[rng.Intn(len(alphas))]
				X := seqs[si]
				if i%3 == 0 {
					if got := ix.Cardinality(X, a); got != wantCard[baseKey{si, a}] {
						t.Errorf("goroutine %d: Cardinality(%v, %v) = %v, want %v",
							w, X, a, got, wantCard[baseKey{si, a}])
						return
					}
					continue
				}
				ms, err := ix.Lookup(X, a)
				if err != nil {
					errCh <- err
					return
				}
				sortMatches(ms)
				if !pathMatchesEqual(ms, want[baseKey{si, a}]) {
					t.Errorf("goroutine %d: Lookup(%v, %v) diverged from sequential baseline", w, X, a)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent Lookup: %v", err)
	}
}

func pathMatchesEqual(a, b []PathMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if pathKey(a[i].Nodes) != pathKey(b[i].Nodes) || a[i].Prle != b[i].Prle || a[i].Prn != b[i].Prn {
			return false
		}
	}
	return true
}

// TestConcurrentLookupDuringOnDemand specifically overlaps indexed scans
// with the recursive on-demand enumeration (α < β), which walks the graph
// instead of the tree — both must coexist without data races.
func TestConcurrentLookupDuringOnDemand(t *testing.T) {
	g := motivating(t)
	ix := buildIndex(t, g, Options{MaxLen: 2, Beta: 0.1, Gamma: 0.1})
	alpha := g.Alphabet()
	X := []prob.LabelID{alpha.ID("r"), alpha.ID("a"), alpha.ID("i")}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := 0.2
				if w%2 == 0 {
					a = 0.02 // below β → on-demand DFS
				}
				if _, err := ix.Lookup(X, a); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
