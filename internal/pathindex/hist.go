package pathindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Histograms hold, per canonical label sequence, the number of indexed
// entries in each probability bucket. They implement the offline histograms
// of Section 5.2.1: hist(X, αᵢ) at the bucket grid points, interpolated at
// query time with exponential curve fitting to estimate
// |PIndex(l_Q(V_P), α)| for arbitrary α.
type Histograms struct {
	beta, gamma float64
	nb          int
	counts      map[uint64][]uint32 // seqID → per-bucket entry counts
}

// NewHistograms creates empty histograms for the given index parameters.
func NewHistograms(beta, gamma float64) *Histograms {
	return &Histograms{
		beta:   beta,
		gamma:  gamma,
		nb:     numBuckets(beta, gamma),
		counts: make(map[uint64][]uint32),
	}
}

// Add records one indexed entry for seqID in the given bucket.
func (h *Histograms) Add(seqID uint64, bucket uint16) {
	c := h.counts[seqID]
	if c == nil {
		c = make([]uint32, h.nb)
		h.counts[seqID] = c
	}
	c[bucket]++
}

// AddN records n entries at once.
func (h *Histograms) AddN(seqID uint64, bucket uint16, n uint32) {
	c := h.counts[seqID]
	if c == nil {
		c = make([]uint32, h.nb)
		h.counts[seqID] = c
	}
	c[bucket] += n
}

// CumulativeAt returns hist(X, grid point i): the exact number of stored
// entries with probability ≥ β+iγ.
func (h *Histograms) CumulativeAt(seqID uint64, i int) uint32 {
	c := h.counts[seqID]
	if c == nil || i >= h.nb {
		return 0
	}
	if i < 0 {
		i = 0
	}
	var sum uint32
	for j := i; j < h.nb; j++ {
		sum += c[j]
	}
	return sum
}

// Estimate approximates the number of stored entries with probability ≥
// alpha using exponential curve fitting between the two surrounding grid
// points, as Section 5.2.1 prescribes: with N(αᵢ) and N(αᵢ₊₁) known,
// N(α) = N(αᵢ) · (N(αᵢ₊₁)/N(αᵢ))^((α−αᵢ)/γ).
func (h *Histograms) Estimate(seqID uint64, alpha float64) float64 {
	c := h.counts[seqID]
	if c == nil {
		return 0
	}
	// estimateCurve is shared with the packed backend, whose per-bucket
	// counts live in the key table — identical uint32 accumulation and
	// float operations keep the two formats' estimates bitwise equal.
	return estimateCurve(h.beta, h.gamma, h.nb, func(i int) uint32 {
		return h.CumulativeAt(seqID, i)
	}, alpha)
}

// NumSeqs returns the number of distinct label sequences recorded.
func (h *Histograms) NumSeqs() int { return len(h.counts) }

const histMagic = "PEGH"

// Save writes the histograms to a file.
func (h *Histograms) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pathindex: save hist: %w", err)
	}
	w := bufio.NewWriter(f)
	var hdr [28]byte
	copy(hdr[:4], histMagic)
	binary.LittleEndian.PutUint64(hdr[4:], math.Float64bits(h.beta))
	binary.LittleEndian.PutUint64(hdr[12:], math.Float64bits(h.gamma))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(len(h.counts)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var buf [8]byte
	for seqID, c := range h.counts {
		binary.LittleEndian.PutUint64(buf[:], seqID)
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
		for _, v := range c {
			binary.LittleEndian.PutUint32(buf[:4], v)
			if _, err := w.Write(buf[:4]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadHistograms reads histograms written by Save.
func LoadHistograms(path string) (*Histograms, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pathindex: load hist: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [28]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pathindex: load hist: %w", err)
	}
	if string(hdr[:4]) != histMagic {
		return nil, fmt.Errorf("pathindex: bad hist magic %q", hdr[:4])
	}
	beta := math.Float64frombits(binary.LittleEndian.Uint64(hdr[4:]))
	gamma := math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:]))
	n := binary.LittleEndian.Uint64(hdr[20:])
	h := NewHistograms(beta, gamma)
	var buf [8]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("pathindex: load hist seq: %w", err)
		}
		seqID := binary.LittleEndian.Uint64(buf[:])
		c := make([]uint32, h.nb)
		for j := range c {
			if _, err := io.ReadFull(r, buf[:4]); err != nil {
				return nil, fmt.Errorf("pathindex: load hist counts: %w", err)
			}
			c[j] = binary.LittleEndian.Uint32(buf[:4])
		}
		h.counts[seqID] = c
	}
	return h, nil
}
