package pathindex

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// Failure injection: every artifact of the v1 index directory must be
// validated on Open, and corruption must surface as an error rather than
// bad query results. Pinned to FormatBTree: these are the v1 artifact
// files (packed-format corruption is covered by TestOpenCorruptPacked and
// packedix's own fuzz target).
func TestOpenCorruptArtifacts(t *testing.T) {
	g := motivating(t)
	build := func(t *testing.T) string {
		dir := filepath.Join(t.TempDir(), "ix")
		ix, err := Build(context.Background(), g, Options{MaxLen: 2, Beta: 0.05, Gamma: 0.1, Dir: dir, Format: FormatBTree})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
	}{
		{"missing-meta", func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, fileMeta))
		}},
		{"garbage-meta", func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, fileMeta), []byte("{not json"), 0o644)
		}},
		{"missing-pages", func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, filePages))
		}},
		{"truncated-pages", func(t *testing.T, dir string) {
			os.Truncate(filepath.Join(dir, filePages), 10)
		}},
		{"missing-context", func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, fileContext))
		}},
		{"garbage-context", func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, fileContext), []byte("XXXXXXXXXXXX"), 0o644)
		}},
		{"missing-hist", func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, fileHist))
		}},
		{"garbage-dict", func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, fileDict), []byte("BAD!data"), 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := build(t)
			tc.corrupt(t, dir)
			if ix, err := Open(dir, g); err == nil {
				ix.Close()
				t.Error("corrupt index opened without error")
			}
		})
	}
}

// TestOpenCorruptPacked is the v2 counterpart: a damaged packed.idx must
// fail Open (or a later probe) with an error, never serve bad results.
func TestOpenCorruptPacked(t *testing.T) {
	g := motivating(t)
	build := func(t *testing.T) string {
		dir := filepath.Join(t.TempDir(), "ix")
		ix, err := Build(context.Background(), g, Options{MaxLen: 2, Beta: 0.05, Gamma: 0.1, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			os.Truncate(path, st.Size()/2)
		}},
		{"garbage", func(t *testing.T, path string) {
			os.WriteFile(path, []byte("PEGXnot really an index"), 0o644)
		}},
		{"bad-magic", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[0] = 'Z'
			os.WriteFile(path, b, 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := build(t)
			tc.corrupt(t, filepath.Join(dir, "packed.idx"))
			if ix, err := Open(dir, g); err == nil {
				ix.Close()
				t.Error("corrupt packed index opened without error")
			}
		})
	}
}

func TestOpenIntactAfterFailureTests(t *testing.T) {
	// Sanity: an untouched directory still opens.
	g := motivating(t)
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(context.Background(), g, Options{MaxLen: 1, Beta: 0.1, Gamma: 0.1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(dir, g)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ix2.Close()
}
