package pathindex

import (
	"repro/internal/entity"
	"repro/internal/prob"
)

// Reader is the query-time surface of a path index: everything the online
// phase (decomposition, candidate generation, the server) needs from the
// offline artifact. *Index implements it directly; internal/live implements
// it as an immutable base index merged with an in-memory delta overlay, so
// core.MatchStream sees one logical index either way.
type Reader interface {
	// Lookup returns PIndex(X, α): all paths whose label assignment is X
	// with probability ≥ α, oriented along X.
	Lookup(X []prob.LabelID, alpha float64) ([]PathMatch, error)
	// Cardinality estimates |PIndex(X, α)| for query decomposition.
	Cardinality(X []prob.LabelID, alpha float64) float64
	// Context returns the per-node context information tables, valid for
	// Graph().
	Context() *Context
	// Graph returns the entity graph the reader answers over.
	Graph() *entity.Graph
	// MaxLen returns the maximum indexed path length L.
	MaxLen() int
	// Beta returns the construction threshold β.
	Beta() float64
	// Stats returns build/size statistics.
	Stats() BuildStats
}

var _ Reader = (*Index)(nil)
