package pathindex

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/entity"
	"repro/internal/prob"
	"repro/internal/storage/packedix"
)

// Format selects the on-disk index layout.
type Format int

const (
	// FormatPacked is the v2 single-file packed layout (internal/storage/
	// packedix): mmap'd read-only, postings decoded zero-copy into
	// caller-owned scratch. The zero value, so new builds default to it.
	FormatPacked Format = iota
	// FormatBTree is the v1 layout: hash dictionary + pager-backed B+ tree
	// + separate context/histogram files. Still fully readable and
	// buildable for rolling upgrades.
	FormatBTree
)

func (f Format) String() string {
	switch f {
	case FormatPacked:
		return "v2"
	case FormatBTree:
		return "v1"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat accepts the CLI spellings of a format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v2", "packed":
		return FormatPacked, nil
	case "v1", "btree":
		return FormatBTree, nil
	default:
		return 0, fmt.Errorf("pathindex: unknown format %q (want v1 or v2)", s)
	}
}

// buildPacked is the v2 arm of Build: same path enumeration (buildPaths
// routes storeLevel into the packedix writer), then one file write.
func buildPacked(ctx context.Context, g *entity.Graph, opt Options, start time.Time) (*Index, error) {
	w, err := packedix.NewWriter(packedix.Meta{
		MaxLen:   opt.MaxLen,
		NLabels:  g.NumLabels(),
		NBuckets: numBuckets(opt.Beta, opt.Gamma),
		Beta:     opt.Beta,
		Gamma:    opt.Gamma,
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
	})
	if err != nil {
		return nil, err
	}
	ix := &Index{opt: opt, g: g, pw: w}

	ctxStart := time.Now()
	ix.ctx = ComputeContext(g, opt.Workers)
	ix.stats.ContextTime = time.Since(ctxStart)

	if err := ix.buildPaths(ctx); err != nil {
		return nil, err
	}
	if err := w.SetContext(ix.ctx.nLabels, ix.ctx.card, ix.ctx.ppu, ix.ctx.fpu); err != nil {
		return nil, err
	}
	path := filepath.Join(opt.Dir, packedix.FileName)
	if _, err := w.WriteFile(path); err != nil {
		return nil, err
	}
	ix.pw = nil
	f, err := packedix.Open(path)
	if err != nil {
		return nil, err
	}
	ix.packed = f
	ix.stats.Sequences = f.NumSeqs()
	ix.stats.Duration = time.Since(start)
	ix.stats.Bytes = dirBytes(opt.Dir)
	return ix, nil
}

// openPacked attaches to a packed.idx in dir. The file is mapped, not
// loaded: cold open touches the header and descriptor pages only, and the
// context tables alias the mapping.
func openPacked(dir string, g *entity.Graph) (*Index, error) {
	f, err := packedix.Open(filepath.Join(dir, packedix.FileName))
	if err != nil {
		return nil, err
	}
	m := f.Meta()
	if m.Nodes != g.NumNodes() || m.Edges != g.NumEdges() {
		f.Close()
		return nil, fmt.Errorf("pathindex: index built for %d nodes/%d edges, graph has %d/%d",
			m.Nodes, m.Edges, g.NumNodes(), g.NumEdges())
	}
	opt := Options{MaxLen: m.MaxLen, Beta: m.Beta, Gamma: m.Gamma, Dir: dir, Format: FormatPacked}
	if err := opt.normalize(); err != nil {
		f.Close()
		return nil, err
	}
	nl, card, ppu, fpu, err := f.Context()
	if err != nil {
		f.Close()
		return nil, err
	}
	ix := &Index{
		opt:    opt,
		g:      g,
		packed: f,
		ctx:    &Context{nLabels: nl, card: card, ppu: ppu, fpu: fpu},
	}
	ix.stats.Entries = m.Entries
	ix.stats.EntriesPerLen = m.EntriesPerLen
	ix.stats.Sequences = f.NumSeqs()
	ix.stats.Bytes = dirBytes(dir)
	return ix, nil
}

// storePacked is storeLevel's v2 sink: one canonical oriented path into the
// packedix writer. Arrival order here is exactly the recno order the v1
// format would assign, so decode order matches across formats.
func (ix *Index) storePacked(canon []prob.LabelID, nodes []entity.ID, prle, prn float64) error {
	var lbl [maxNodes]uint16
	var nds [maxNodes]uint32
	for i, l := range canon {
		lbl[i] = uint16(l)
	}
	for i, n := range nodes {
		nds[i] = uint32(n)
	}
	b := bucketOf(prle*prn, ix.opt.Beta, ix.opt.Gamma)
	return ix.pw.Add(lbl[:len(canon)], int(b), nds[:len(nodes)], prle, prn)
}

// lookupPacked answers PIndex(X, α) from the mapping. All result memory is
// two allocations: one entity.ID arena sized from the exact bucket counts
// and one PathMatch slice — no per-record node slices, no decoded cache.
func (ix *Index) lookupPacked(X []prob.LabelID, alpha float64) ([]PathMatch, error) {
	canon, reversed, palin := canonicalSeq(X)
	var lbl [maxNodes]uint16
	for i, l := range canon {
		lbl[i] = uint16(l)
	}
	s, ok := ix.packed.FindSeq(lbl[:len(canon)])
	if !ok {
		return nil, nil
	}
	from := int(bucketOf(alpha, ix.opt.Beta, ix.opt.Gamma))
	nb := ix.packed.Meta().NBuckets
	total := 0
	for b := from; b < nb; b++ {
		total += int(s.Count(b))
	}
	if total == 0 {
		return nil, nil
	}
	mult := 1
	if palin && len(X) > 1 {
		mult = 2
	}
	// The α filter only removes records, so these capacities are upper
	// bounds: the arena never reallocates and sub-slices stay valid.
	arena := make([]entity.ID, 0, total*len(X)*mult)
	out := make([]PathMatch, 0, total*mult)
	obs := ix.obs.Load()
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	err := s.Decode(from, func(_ int, nodes []uint32, prle, prn float64) bool {
		if prle*prn+1e-12 < alpha {
			return true // bucket floor below α: filter exactly
		}
		base := len(arena)
		for _, n := range nodes {
			arena = append(arena, entity.ID(n))
		}
		ns := arena[base:len(arena):len(arena)]
		switch {
		case palin && len(nodes) > 1:
			// Both orientations match a palindromic sequence.
			rbase := len(arena)
			for i := len(nodes) - 1; i >= 0; i-- {
				arena = append(arena, entity.ID(nodes[i]))
			}
			rev := arena[rbase:len(arena):len(arena)]
			out = append(out, PathMatch{Nodes: ns, Prle: prle, Prn: prn},
				PathMatch{Nodes: rev, Prle: prle, Prn: prn})
		case reversed:
			for i, j := 0, len(ns)-1; i < j; i, j = i+1, j-1 {
				ns[i], ns[j] = ns[j], ns[i]
			}
			out = append(out, PathMatch{Nodes: ns, Prle: prle, Prn: prn})
		default:
			out = append(out, PathMatch{Nodes: ns, Prle: prle, Prn: prn})
		}
		return true
	})
	if obs != nil {
		(*obs)(float64(time.Since(t0).Nanoseconds()) / 1e3)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// estimateCurve is the exponential curve fit of Section 5.2.1, shared by
// both backends so their estimates are bitwise identical. cum(i) must
// return the exact stored-entry count with probability ≥ β+iγ, with v1's
// uint32 accumulation semantics.
func estimateCurve(beta, gamma float64, nb int, cum func(i int) uint32, alpha float64) float64 {
	if alpha <= beta {
		return float64(cum(0))
	}
	if alpha >= 1 {
		return float64(cum(nb - 1))
	}
	i := int((alpha - beta) / gamma)
	if i >= nb-1 {
		return float64(cum(nb - 1))
	}
	ni := float64(cum(i))
	nj := float64(cum(i + 1))
	if ni == 0 {
		return 0
	}
	frac := (alpha - bucketFloor(uint16(i), beta, gamma)) / gamma
	if nj == 0 {
		// Exponential fit undefined; fall back to a linear ramp to zero,
		// which preserves monotonicity.
		return ni * (1 - frac)
	}
	return ni * math.Pow(nj/ni, frac)
}

func (ix *Index) cardinalityPacked(X []prob.LabelID, alpha float64) float64 {
	canon, _, palin := canonicalSeq(X)
	if len(canon) > maxNodes {
		return 0
	}
	var lbl [maxNodes]uint16
	for i, l := range canon {
		lbl[i] = uint16(l)
	}
	s, ok := ix.packed.FindSeq(lbl[:len(canon)])
	if !ok {
		return 0
	}
	nb := ix.packed.Meta().NBuckets
	cum := func(i int) uint32 {
		var sum uint32
		for j := i; j < nb; j++ {
			sum += s.Count(j)
		}
		return sum
	}
	est := estimateCurve(ix.opt.Beta, ix.opt.Gamma, nb, cum, alpha)
	if palin && len(X) > 1 {
		est *= 2
	}
	return est
}

func (ix *Index) sequencesPacked() [][]prob.LabelID {
	var out [][]prob.LabelID
	var buf []uint16
	for l := 0; l <= ix.opt.MaxLen; l++ {
		for i := 0; i < ix.packed.SeqsAtLen(l); i++ {
			buf = ix.packed.SeqAt(l, i).Labels(buf)
			labels := make([]prob.LabelID, len(buf))
			for j, v := range buf {
				labels[j] = prob.LabelID(v)
			}
			out = append(out, labels)
		}
	}
	return out
}

// Repack migrates a v1 (B+-tree) index directory to the packed v2 format
// in place: it writes packed.idx next to the v1 artifacts, which Open then
// prefers. The v1 files are left untouched for rollback; delete them once
// the new file has been validated. Records are re-encoded losslessly —
// same sequences, same buckets, same recno order, same probability bits —
// so the repacked index answers every probe byte-for-byte identically.
func Repack(dir string, g *entity.Graph) (BuildStats, error) {
	packedPath := filepath.Join(dir, packedix.FileName)
	if _, err := os.Stat(packedPath); err == nil {
		return BuildStats{}, fmt.Errorf("pathindex: %s already exists in %s", packedix.FileName, dir)
	}
	ix, err := openBTree(dir, g)
	if err != nil {
		return BuildStats{}, err
	}
	defer ix.Close()
	w, err := packedix.NewWriter(packedix.Meta{
		MaxLen:   ix.opt.MaxLen,
		NLabels:  ix.ctx.nLabels,
		NBuckets: numBuckets(ix.opt.Beta, ix.opt.Gamma),
		Beta:     ix.opt.Beta,
		Gamma:    ix.opt.Gamma,
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
	})
	if err != nil {
		return BuildStats{}, err
	}
	start := time.Now()
	var scanErr error
	labels := map[uint64][]uint16{}
	err = ix.tree.Scan(make([]byte, keyLen), nil, func(k, v []byte) bool {
		if len(k) != keyLen {
			scanErr = fmt.Errorf("pathindex: repack: %d-byte key", len(k))
			return false
		}
		seqID := binary.BigEndian.Uint64(k)
		bucket := binary.BigEndian.Uint16(k[8:])
		lbl, ok := labels[seqID]
		if !ok {
			key, found := ix.dict.Key(seqID)
			if !found {
				scanErr = fmt.Errorf("pathindex: repack: seqID %d not in dictionary", seqID)
				return false
			}
			lbl = make([]uint16, len(key)/2)
			for i := range lbl {
				lbl[i] = binary.BigEndian.Uint16(key[2*i:])
			}
			labels[seqID] = lbl
		}
		m, err := decodeRecord(v)
		if err != nil {
			scanErr = err
			return false
		}
		nodes := make([]uint32, len(m.Nodes))
		for i, n := range m.Nodes {
			nodes[i] = uint32(n)
		}
		if err := w.Add(lbl, int(bucket), nodes, m.Prle, m.Prn); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return BuildStats{}, err
	}
	if err := w.SetContext(ix.ctx.nLabels, ix.ctx.card, ix.ctx.ppu, ix.ctx.fpu); err != nil {
		return BuildStats{}, err
	}
	bytes, err := w.WriteFile(packedPath)
	if err != nil {
		return BuildStats{}, err
	}
	return BuildStats{
		Entries:   ix.stats.Entries,
		Sequences: w.NumSeqs(),
		Bytes:     bytes,
		Duration:  time.Since(start),
	}, nil
}
