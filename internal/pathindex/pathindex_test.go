package pathindex

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/entity"
	"repro/internal/fixtures"
	"repro/internal/prob"
	"repro/internal/refgraph"
)

func buildIndex(t *testing.T, g *entity.Graph, opt Options) *Index {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	ix, err := Build(context.Background(), g, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func motivating(t *testing.T) *entity.Graph {
	t.Helper()
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pathKey flattens a node sequence for comparisons.
func pathKey(nodes []entity.ID) string {
	b := make([]byte, 0, len(nodes)*4)
	for _, n := range nodes {
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return string(b)
}

func sortMatches(ms []PathMatch) {
	sort.Slice(ms, func(i, j int) bool { return pathKey(ms[i].Nodes) < pathKey(ms[j].Nodes) })
}

func TestMotivatingExampleLookup(t *testing.T) {
	g := motivating(t)
	ix := buildIndex(t, g, Options{MaxLen: 2, Beta: 0.02, Gamma: 0.1})
	alpha := g.Alphabet()
	r, a, i := alpha.ID("r"), alpha.ID("a"), alpha.ID("i")

	ms, err := ix.Lookup([]prob.LabelID{r, a, i}, 0.02)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	want := map[string]float64{}
	for _, m := range fixtures.MotivatingMatches() {
		want[pathKey(m.Nodes[:])] = m.Pr
	}
	if len(ms) != len(want) {
		t.Fatalf("got %d paths, want %d: %+v", len(ms), len(want), ms)
	}
	for _, m := range ms {
		wp, ok := want[pathKey(m.Nodes)]
		if !ok {
			t.Errorf("unexpected path %v", m.Nodes)
			continue
		}
		if math.Abs(m.Pr()-wp) > 1e-9 {
			t.Errorf("path %v Pr = %v, want %v", m.Nodes, m.Pr(), wp)
		}
	}

	// At the example threshold only (s34, s2, s1) survives.
	ms, err = ix.Lookup([]prob.LabelID{r, a, i}, fixtures.MotivatingAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Nodes[0] != fixtures.S34 || ms[0].Nodes[2] != fixtures.S1 {
		t.Fatalf("α=0.2 matches = %+v, want only (s34,s2,s1)", ms)
	}
}

func TestLookupReversedSequence(t *testing.T) {
	g := motivating(t)
	ix := buildIndex(t, g, Options{MaxLen: 2, Beta: 0.02, Gamma: 0.1})
	alpha := g.Alphabet()
	r, a, i := alpha.ID("r"), alpha.ID("a"), alpha.ID("i")

	fwd, err := ix.Lookup([]prob.LabelID{r, a, i}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := ix.Lookup([]prob.LabelID{i, a, r}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd) != len(rev) {
		t.Fatalf("forward %d paths, reverse %d", len(fwd), len(rev))
	}
	// Every reverse match must be the node-reverse of a forward match with
	// identical probabilities.
	fwdSet := make(map[string]float64, len(fwd))
	for _, m := range fwd {
		fwdSet[pathKey(m.Nodes)] = m.Pr()
	}
	for _, m := range rev {
		revNodes := reverseNodes(m.Nodes)
		p, ok := fwdSet[pathKey(revNodes)]
		if !ok {
			t.Errorf("reverse lookup path %v has no forward counterpart", m.Nodes)
			continue
		}
		if math.Abs(p-m.Pr()) > 1e-9 {
			t.Errorf("probability mismatch between orientations: %v vs %v", p, m.Pr())
		}
	}
}

func TestPalindromicSequenceBothOrientations(t *testing.T) {
	// Graph: x1 - y - x2 (all certain), sequence (a,b,a) must return both
	// (x1,y,x2) and (x2,y,x1).
	alpha := prob.MustAlphabet("a", "b")
	d := refgraph.New(alpha)
	x1 := d.AddReference(prob.Point(0))
	y := d.AddReference(prob.Point(1))
	x2 := d.AddReference(prob.Point(0))
	if err := d.AddEdge(x1, y, refgraph.EdgeDist{P: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(y, x2, refgraph.EdgeDist{P: 1}); err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIndex(t, g, Options{MaxLen: 2, Beta: 0.1, Gamma: 0.1})
	ms, err := ix.Lookup([]prob.LabelID{0, 1, 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("palindromic lookup returned %d paths, want 2: %+v", len(ms), ms)
	}
	sortMatches(ms)
	if ms[0].Nodes[0] != 0 || ms[1].Nodes[0] != 2 {
		t.Errorf("orientations = %v, %v", ms[0].Nodes, ms[1].Nodes)
	}
	// The index stores the palindromic path once.
	if ix.Stats().Entries != 3+1 {
		// 3 single-node entries (x1:a, y:b, x2:a) + 1 length-2 path.
		// x1-y and y-x2 length-1 paths: (a,b) canonical... plus those.
		// Recounted below instead:
		t.Logf("entries = %d", ix.Stats().Entries)
	}
}

func TestSingleNodeEntries(t *testing.T) {
	g := motivating(t)
	ix := buildIndex(t, g, Options{MaxLen: 1, Beta: 0.1, Gamma: 0.1})
	alpha := g.Alphabet()
	a := alpha.ID("a")
	ms, err := ix.Lookup([]prob.LabelID{a}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Nodes[0] != fixtures.S2 {
		t.Fatalf("Lookup(a) = %+v, want s2", ms)
	}
	// s3 exists with 0.2 only: below β=0.3.
	ix2 := buildIndex(t, g, Options{MaxLen: 1, Beta: 0.3, Gamma: 0.1})
	r := alpha.ID("r")
	ms, err = ix2.Lookup([]prob.LabelID{r}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Nodes[0] == fixtures.S3 {
			t.Errorf("s3 (Pr=0.2) indexed with β=0.3")
		}
	}
}

func TestOnDemandBelowBeta(t *testing.T) {
	g := motivating(t)
	// β=0.5: the 0.2025 and lower paths are not indexed.
	ix := buildIndex(t, g, Options{MaxLen: 2, Beta: 0.5, Gamma: 0.1})
	alpha := g.Alphabet()
	r, a, i := alpha.ID("r"), alpha.ID("a"), alpha.ID("i")
	// α=0.02 < β: served on demand; must see all 5 paths.
	ms, err := ix.Lookup([]prob.LabelID{r, a, i}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("on-demand returned %d paths, want 5", len(ms))
	}
}

func TestLookupValidation(t *testing.T) {
	g := motivating(t)
	ix := buildIndex(t, g, Options{MaxLen: 1, Beta: 0.1, Gamma: 0.1})
	if _, err := ix.Lookup(nil, 0.5); err == nil {
		t.Error("empty sequence accepted")
	}
	long := make([]prob.LabelID, 4)
	if _, err := ix.Lookup(long, 0.5); err == nil {
		t.Error("sequence beyond L accepted")
	}
}

func TestBuildOptionValidation(t *testing.T) {
	g := motivating(t)
	bad := []Options{
		{MaxLen: 0, Beta: 0.5, Gamma: 0.1, Dir: "x"},
		{MaxLen: 9, Beta: 0.5, Gamma: 0.1, Dir: "x"},
		{MaxLen: 2, Beta: 0, Gamma: 0.1, Dir: "x"},
		{MaxLen: 2, Beta: 0.5, Gamma: 0, Dir: "x"},
		{MaxLen: 2, Beta: 0.5, Gamma: 0.1, Dir: ""},
	}
	for i, opt := range bad {
		if _, err := Build(context.Background(), g, opt); err == nil {
			t.Errorf("bad option set %d accepted", i)
		}
	}
}

func TestBuildCancellation(t *testing.T) {
	g := motivating(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, g, Options{MaxLen: 2, Beta: 0.01, Gamma: 0.1, Dir: t.TempDir()}); err == nil {
		t.Error("cancelled build succeeded")
	}
}

func TestPersistenceReopen(t *testing.T) {
	g := motivating(t)
	dir := t.TempDir()
	ix := buildIndex(t, g, Options{MaxLen: 2, Beta: 0.02, Gamma: 0.1, Dir: dir})
	alpha := g.Alphabet()
	seq := []prob.LabelID{alpha.ID("r"), alpha.ID("a"), alpha.ID("i")}
	want, err := ix.Lookup(seq, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix2, err := Open(dir, g)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer ix2.Close()
	got, err := ix2.Lookup(seq, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sortMatches(want)
	sortMatches(got)
	if len(got) != len(want) {
		t.Fatalf("reopened lookup: %d vs %d paths", len(got), len(want))
	}
	for i := range got {
		if pathKey(got[i].Nodes) != pathKey(want[i].Nodes) || math.Abs(got[i].Pr()-want[i].Pr()) > 1e-12 {
			t.Errorf("entry %d differs after reopen", i)
		}
	}
	// Context survives too.
	if ix2.Context() == nil {
		t.Fatal("context lost")
	}
}

func TestOpenWrongGraph(t *testing.T) {
	g := motivating(t)
	dir := t.TempDir()
	ix := buildIndex(t, g, Options{MaxLen: 1, Beta: 0.1, Gamma: 0.1, Dir: dir})
	ix.Close()

	other := prob.MustAlphabet("z")
	d := refgraph.New(other)
	d.AddReference(prob.Point(0))
	g2, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, g2); err == nil {
		t.Error("index opened against mismatched graph")
	}
	if _, err := Open(filepath.Join(dir, "missing"), g); err == nil {
		t.Error("missing dir opened")
	}
}

func TestContextFigure3(t *testing.T) {
	// The Figure 3 example: v1 with five neighbors.
	alpha := prob.MustAlphabet("a", "b")
	d := refgraph.New(alpha)
	la, lb := alpha.ID("a"), alpha.ID("b")
	v1 := d.AddReference(prob.Point(la))
	n1 := d.AddReference(prob.MustDist(prob.LabelProb{Label: la, P: 0.9}, prob.LabelProb{Label: lb, P: 0.1}))
	n2 := d.AddReference(prob.MustDist(prob.LabelProb{Label: la, P: 0.8}, prob.LabelProb{Label: lb, P: 0.2}))
	n3 := d.AddReference(prob.Point(la))
	n4 := d.AddReference(prob.Point(la))
	n5 := d.AddReference(prob.Point(lb))
	for _, e := range []struct {
		to refgraph.RefID
		p  float64
	}{{n1, 0.2}, {n2, 0.9}, {n3, 0.2}, {n4, 0.3}, {n5, 1.0}} {
		if err := d.AddEdge(v1, e.to, refgraph.EdgeDist{P: e.p}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := ComputeContext(g, 2)
	v := entity.ID(v1)
	if got := c.Card(v, la); got != 4 {
		t.Errorf("c(v1,a) = %d, want 4", got)
	}
	if got := c.Card(v, lb); got != 3 {
		t.Errorf("c(v1,b) = %d, want 3", got)
	}
	if got := c.PPU(v, la); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("ppu(v1,a) = %v, want 0.9", got)
	}
	if got := c.PPU(v, lb); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ppu(v1,b) = %v, want 1.0", got)
	}
	if got := c.FPU(v, la); math.Abs(got-0.72) > 1e-12 {
		t.Errorf("fpu(v1,a) = %v, want 0.72", got)
	}
	if got := c.FPU(v, lb); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("fpu(v1,b) = %v, want 1.0", got)
	}
}

func TestContextSaveLoad(t *testing.T) {
	g := motivating(t)
	c := ComputeContext(g, 0)
	path := filepath.Join(t.TempDir(), "ctx.bin")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadContext(path)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for l := 0; l < g.NumLabels(); l++ {
			id, lid := entity.ID(v), prob.LabelID(l)
			if c.Card(id, lid) != c2.Card(id, lid) ||
				c.PPU(id, lid) != c2.PPU(id, lid) ||
				c.FPU(id, lid) != c2.FPU(id, lid) {
				t.Fatalf("context differs at (%d,%d)", v, l)
			}
		}
	}
}

func TestHistogramExactAtGridPoints(t *testing.T) {
	h := NewHistograms(0.1, 0.1)
	// 10 buckets: [0.1,0.2) ... [1.0, ...]
	h.AddN(7, 0, 5) // 5 entries in [0.1,0.2)
	h.AddN(7, 5, 3) // 3 entries in [0.6,0.7)
	h.AddN(7, 9, 2) // 2 entries at 1.0
	if got := h.CumulativeAt(7, 0); got != 10 {
		t.Errorf("hist(X, 0.1) = %d, want 10", got)
	}
	if got := h.CumulativeAt(7, 5); got != 5 {
		t.Errorf("hist(X, 0.6) = %d, want 5", got)
	}
	if got := h.CumulativeAt(7, 9); got != 2 {
		t.Errorf("hist(X, 1.0) = %d, want 2", got)
	}
	if got := h.Estimate(7, 0.1); got != 10 {
		t.Errorf("Estimate(0.1) = %v", got)
	}
	if got := h.Estimate(99, 0.5); got != 0 {
		t.Errorf("Estimate(unknown seq) = %v", got)
	}
}

func TestHistogramInterpolationMonotone(t *testing.T) {
	h := NewHistograms(0.1, 0.1)
	h.AddN(1, 0, 100)
	h.AddN(1, 3, 50)
	h.AddN(1, 6, 20)
	h.AddN(1, 9, 5)
	prev := math.Inf(1)
	for a := 0.1; a <= 1.0; a += 0.01 {
		got := h.Estimate(1, a)
		if got > prev+1e-9 {
			t.Fatalf("estimate not monotone at α=%v: %v > %v", a, got, prev)
		}
		prev = got
	}
}

func TestHistogramSaveLoad(t *testing.T) {
	h := NewHistograms(0.3, 0.1)
	h.AddN(0, 0, 7)
	h.AddN(3, 2, 9)
	path := filepath.Join(t.TempDir(), "hist.bin")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	h2, err := LoadHistograms(path)
	if err != nil {
		t.Fatal(err)
	}
	if h2.CumulativeAt(0, 0) != 7 || h2.CumulativeAt(3, 0) != 9 {
		t.Error("histogram counts lost")
	}
	if h2.NumSeqs() != 2 {
		t.Errorf("NumSeqs = %d", h2.NumSeqs())
	}
}

func TestCardinalityMatchesLookup(t *testing.T) {
	g := motivating(t)
	ix := buildIndex(t, g, Options{MaxLen: 2, Beta: 0.02, Gamma: 0.05})
	alpha := g.Alphabet()
	seq := []prob.LabelID{alpha.ID("r"), alpha.ID("a"), alpha.ID("i")}
	ms, err := ix.Lookup(seq, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	est := ix.Cardinality(seq, 0.02)
	if math.Abs(est-float64(len(ms))) > 1e-9 {
		t.Errorf("Cardinality at β = %v, exact = %d", est, len(ms))
	}
}

// Property: for random small graphs, Lookup(X, α) with α ≥ β equals the
// on-demand (brute force) enumeration for every sampled sequence.
func TestLookupAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	alphabet := prob.MustAlphabet("a", "b", "c")
	for trial := 0; trial < 12; trial++ {
		d := refgraph.New(alphabet)
		n := rng.Intn(12) + 6
		for i := 0; i < n; i++ {
			d.AddReference(prob.ZipfDist(rng, 3))
		}
		for e := 0; e < n*2; e++ {
			a, b := refgraph.RefID(rng.Intn(n)), refgraph.RefID(rng.Intn(n))
			if a != b {
				if err := d.AddEdge(a, b, refgraph.EdgeDist{P: 0.3 + 0.7*rng.Float64()}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// A couple of reference sets.
		for s := 0; s < 2 && n >= 4; s++ {
			a, b := refgraph.RefID(rng.Intn(n)), refgraph.RefID(rng.Intn(n))
			if a != b {
				if _, err := d.AddReferenceSet([]refgraph.RefID{a, b}, rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
		g, err := entity.Build(d, entity.BuildOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		beta := 0.05
		ix := buildIndex(t, g, Options{MaxLen: 3, Beta: beta, Gamma: 0.1})
		for q := 0; q < 10; q++ {
			ln := rng.Intn(3) + 1
			seq := make([]prob.LabelID, ln+1)
			for i := range seq {
				seq[i] = prob.LabelID(rng.Intn(3))
			}
			alpha := beta + rng.Float64()*(1-beta)
			got, err := ix.Lookup(seq, alpha)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ix.onDemand(seq, alpha)
			if err != nil {
				t.Fatal(err)
			}
			sortMatches(got)
			sortMatches(want)
			if len(got) != len(want) {
				t.Fatalf("trial %d seq %v α=%.3f: index %d paths, brute force %d",
					trial, seq, alpha, len(got), len(want))
			}
			for i := range got {
				if pathKey(got[i].Nodes) != pathKey(want[i].Nodes) {
					t.Fatalf("trial %d: path sets differ at %d: %v vs %v",
						trial, i, got[i].Nodes, want[i].Nodes)
				}
				if math.Abs(got[i].Pr()-want[i].Pr()) > 1e-9 {
					t.Fatalf("trial %d: prob differs for %v: %v vs %v",
						trial, got[i].Nodes, got[i].Pr(), want[i].Pr())
				}
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	g := motivating(t)
	ix := buildIndex(t, g, Options{MaxLen: 2, Beta: 0.02, Gamma: 0.1})
	st := ix.Stats()
	if st.Entries == 0 || st.Bytes == 0 || st.Duration == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if len(st.EntriesPerLen) != 3 {
		t.Errorf("EntriesPerLen = %v", st.EntriesPerLen)
	}
	if st.Sequences == 0 || len(ix.Sequences()) != st.Sequences {
		t.Errorf("Sequences = %d, listed %d", st.Sequences, len(ix.Sequences()))
	}
}
