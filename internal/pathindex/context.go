package pathindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"

	"repro/internal/entity"
	"repro/internal/prob"
)

// Context holds the per-node context information of Section 5.1, computed
// for every (node, label) pair over the neighbor set
// N(v,σ) = {v' ∈ Γ(v) : σ ∈ L(v')} (reference-disjointness is already
// enforced by GU edge construction):
//
//	c(v,σ)   — cardinality |N(v,σ)|
//	ppu(v,σ) — partial probability upperbound: max edge probability into N(v,σ)
//	fpu(v,σ) — full probability upperbound: max of Pr(v'.l=σ)·Pr((v,v').e)
//
// For label-conditioned edges (Section 5.3), the unknown endpoint label is
// maximized over, exactly as the paper prescribes.
type Context struct {
	nLabels int
	card    []int32   // [node*nLabels + label]
	ppu     []float64 // [node*nLabels + label]
	fpu     []float64 // [node*nLabels + label]
}

// ComputeContext builds the context tables for all nodes, in parallel.
func ComputeContext(g *entity.Graph, workers int) *Context {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes()
	nl := g.NumLabels()
	c := &Context{
		nLabels: nl,
		card:    make([]int32, n*nl),
		ppu:     make([]float64, n*nl),
		fpu:     make([]float64, n*nl),
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				c.computeNode(g, entity.ID(v))
			}
		}(lo, hi)
	}
	wg.Wait()
	return c
}

func (c *Context) computeNode(g *entity.Graph, v entity.ID) {
	base := int(v) * c.nLabels
	for _, nb := range g.Neighbors(v) {
		// Edge probability with v's own label unknown: max over v's labels.
		// For unconditional edges this is just the base probability.
		for _, sigma := range g.Labels(nb.To) {
			idx := base + int(sigma)
			c.card[idx]++
			ep := maxEdgeProbGivenNeighbor(g, v, nb, sigma)
			if ep > c.ppu[idx] {
				c.ppu[idx] = ep
			}
			f := g.PrLabel(nb.To, sigma) * ep
			if f > c.fpu[idx] {
				c.fpu[idx] = f
			}
		}
	}
}

// maxEdgeProbGivenNeighbor bounds Pr((v,v').e = T | v'.l = sigma) when v's
// label is unknown: the Section 5.3 max-over-labels modification.
func maxEdgeProbGivenNeighbor(g *entity.Graph, v entity.ID, nb entity.Neighbor, sigma prob.LabelID) float64 {
	if !nb.E.Conditional() {
		return nb.E.Base()
	}
	m := 0.0
	for _, lv := range g.Labels(v) {
		if p := nb.E.Prob(lv, sigma); p > m {
			m = p
		}
	}
	return m
}

// Patch returns a copy of c resized for g with the rows of the given nodes
// recomputed against g; all other rows are carried over unchanged. A context
// row depends only on the node's own adjacency (edge distributions and
// neighbor label distributions), so after an incremental graph update it is
// exact to patch just the nodes whose adjacency changed plus the appended
// ones. The receiver is not modified.
func (c *Context) Patch(g *entity.Graph, nodes []entity.ID) *Context {
	n := g.NumNodes()
	nc := &Context{
		nLabels: c.nLabels,
		card:    make([]int32, n*c.nLabels),
		ppu:     make([]float64, n*c.nLabels),
		fpu:     make([]float64, n*c.nLabels),
	}
	copy(nc.card, c.card)
	copy(nc.ppu, c.ppu)
	copy(nc.fpu, c.fpu)
	for _, v := range nodes {
		base := int(v) * c.nLabels
		for i := base; i < base+c.nLabels; i++ {
			nc.card[i], nc.ppu[i], nc.fpu[i] = 0, 0, 0
		}
		nc.computeNode(g, v)
	}
	return nc
}

// Card returns c(v,σ).
func (c *Context) Card(v entity.ID, sigma prob.LabelID) int {
	return int(c.card[int(v)*c.nLabels+int(sigma)])
}

// PPU returns ppu(v,σ).
func (c *Context) PPU(v entity.ID, sigma prob.LabelID) float64 {
	return c.ppu[int(v)*c.nLabels+int(sigma)]
}

// FPU returns fpu(v,σ).
func (c *Context) FPU(v entity.ID, sigma prob.LabelID) float64 {
	return c.fpu[int(v)*c.nLabels+int(sigma)]
}

const ctxMagic = "PEGC"

// Save writes the context tables to a file.
func (c *Context) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pathindex: save context: %w", err)
	}
	w := bufio.NewWriter(f)
	var hdr [12]byte
	copy(hdr[:4], ctxMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.nLabels))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(c.card)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var buf [8]byte
	for _, v := range c.card {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		if _, err := w.Write(buf[:4]); err != nil {
			f.Close()
			return err
		}
	}
	for _, v := range c.ppu {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
	}
	for _, v := range c.fpu {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadContext reads context tables written by Save.
func LoadContext(path string) (*Context, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pathindex: load context: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pathindex: load context: %w", err)
	}
	if string(hdr[:4]) != ctxMagic {
		return nil, fmt.Errorf("pathindex: bad context magic %q", hdr[:4])
	}
	nl := int(binary.LittleEndian.Uint32(hdr[4:]))
	n := int(binary.LittleEndian.Uint32(hdr[8:]))
	if nl <= 0 || n < 0 || n > 1<<30 {
		return nil, fmt.Errorf("pathindex: corrupt context header (%d labels, %d cells)", nl, n)
	}
	c := &Context{nLabels: nl, card: make([]int32, n), ppu: make([]float64, n), fpu: make([]float64, n)}
	var buf [8]byte
	for i := range c.card {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return nil, fmt.Errorf("pathindex: load context card: %w", err)
		}
		c.card[i] = int32(binary.LittleEndian.Uint32(buf[:4]))
	}
	for i := range c.ppu {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("pathindex: load context ppu: %w", err)
		}
		c.ppu[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	for i := range c.fpu {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("pathindex: load context fpu: %w", err)
		}
		c.fpu[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return c, nil
}
