package pathindex

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/entity"
	"repro/internal/prob"
	"repro/internal/storage/btree"
	"repro/internal/storage/hashdict"
	"repro/internal/storage/packedix"
	"repro/internal/storage/pager"
)

// Options configures index construction.
type Options struct {
	// MaxLen is L, the maximum path length in edges (1 ≤ L ≤ MaxSupportedLen).
	MaxLen int
	// Beta is the index construction threshold β: only paths with probability
	// ≥ β are indexed (paths below are computed on demand at query time).
	Beta float64
	// Gamma is the index resolution γ: the probability bucket width.
	Gamma float64
	// Workers bounds build parallelism (0 = GOMAXPROCS).
	Workers int
	// Dir is the artifact directory (created if missing).
	Dir string
	// CachePages sizes the pager buffer pool (0 = pager default; v1 format
	// only — the packed format has no buffer pool to size).
	CachePages int
	// Format selects the on-disk layout. The zero value is FormatPacked
	// (v2), so new builds — including compactions of v1-era databases —
	// emit the packed format unless explicitly pinned to FormatBTree.
	Format Format
}

func (o *Options) normalize() error {
	if o.MaxLen < 1 || o.MaxLen > MaxSupportedLen {
		return fmt.Errorf("pathindex: MaxLen %d out of range [1,%d]", o.MaxLen, MaxSupportedLen)
	}
	if o.Beta <= 0 || o.Beta > 1 {
		return fmt.Errorf("pathindex: Beta %v out of range (0,1]", o.Beta)
	}
	if o.Gamma <= 0 || o.Gamma > 1 {
		return fmt.Errorf("pathindex: Gamma %v out of range (0,1]", o.Gamma)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Dir == "" {
		return fmt.Errorf("pathindex: Dir required")
	}
	return nil
}

// BuildStats reports offline phase metrics (the quantities of Figures 6(a)
// and 6(b)).
type BuildStats struct {
	Entries       uint64        // stored index entries
	EntriesPerLen []uint64      // per path length 0..L
	Sequences     int           // distinct canonical label sequences
	Bytes         int64         // total artifact bytes on disk
	Duration      time.Duration // wall-clock build time
	ComponentTime time.Duration // identity component precompute share
	ContextTime   time.Duration // context information share
}

// Index is an opened path index. Once built or opened, the index is
// read-only and every read method — Lookup, Cardinality, Context, Stats —
// is safe for many concurrent callers without shared locking: B+ tree scans
// ride on the pager's sharded buffer pool, and the dictionary, histograms,
// and context tables are immutable after construction. Build itself is
// single-writer (storeLevel runs on one goroutine).
type Index struct {
	opt Options
	g   *entity.Graph

	// v1 B+-tree backend.
	dict *hashdict.Dict
	pg   *pager.Pager
	tree *btree.Tree
	hist *Histograms

	// v2 packed backend.
	packed *packedix.File
	pw     *packedix.Writer // non-nil only during a packed build

	ctx   *Context
	stats BuildStats

	recno uint32 // next record number during build

	probes atomic.Uint64                 // Lookup calls answered
	obs    atomic.Pointer[func(float64)] // posting-decode observer (µs)
}

type metaFile struct {
	MaxLen  int     `json:"max_len"`
	Beta    float64 `json:"beta"`
	Gamma   float64 `json:"gamma"`
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	Entries uint64  `json:"entries"`
}

const (
	fileMeta    = "meta.json"
	filePages   = "paths.pages"
	fileDict    = "seqs.dict"
	fileContext = "context.bin"
	fileHist    = "hist.bin"
)

// Build runs the offline phase of Section 5.1 over the entity graph:
// component probabilities are already precomputed by entity.Build; this
// computes context information and constructs the path index level by level
// (single nodes first, then extensions), in parallel with a barrier between
// lengths, buffering records in memory before writing them to the B+ tree.
func Build(ctx context.Context, g *entity.Graph, opt Options) (*Index, error) {
	start := time.Now()
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("pathindex: %w", err)
	}
	if opt.Format == FormatPacked {
		return buildPacked(ctx, g, opt, start)
	}
	dict, err := hashdict.Open(filepath.Join(opt.Dir, fileDict))
	if err != nil {
		return nil, err
	}
	pg, err := pager.Open(filepath.Join(opt.Dir, filePages), pager.Options{CachePages: opt.CachePages})
	if err != nil {
		dict.Close()
		return nil, err
	}
	tree, err := btree.Create(pg)
	if err != nil {
		pg.Close()
		dict.Close()
		return nil, err
	}
	ix := &Index{
		opt:  opt,
		g:    g,
		dict: dict,
		pg:   pg,
		tree: tree,
		hist: NewHistograms(opt.Beta, opt.Gamma),
	}

	ctxStart := time.Now()
	ix.ctx = ComputeContext(g, opt.Workers)
	ix.stats.ContextTime = time.Since(ctxStart)

	if err := ix.buildPaths(ctx); err != nil {
		ix.Close()
		return nil, err
	}

	if err := ix.ctx.Save(filepath.Join(opt.Dir, fileContext)); err != nil {
		ix.Close()
		return nil, err
	}
	if err := ix.hist.Save(filepath.Join(opt.Dir, fileHist)); err != nil {
		ix.Close()
		return nil, err
	}
	ix.stats.Sequences = dict.Len()
	meta := metaFile{
		MaxLen: opt.MaxLen, Beta: opt.Beta, Gamma: opt.Gamma,
		Nodes: g.NumNodes(), Edges: g.NumEdges(), Entries: ix.stats.Entries,
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		ix.Close()
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(opt.Dir, fileMeta), mb, 0o644); err != nil {
		ix.Close()
		return nil, err
	}
	if err := tree.Sync(); err != nil {
		ix.Close()
		return nil, err
	}
	if err := dict.Sync(); err != nil {
		ix.Close()
		return nil, err
	}
	ix.stats.Duration = time.Since(start)
	ix.stats.Bytes = dirBytes(opt.Dir)
	return ix, nil
}

// Open attaches to an index previously built in dir, validating it against
// the given graph's parameters. The format is auto-detected: a packed.idx
// file means the v2 packed layout, anything else the v1 B+-tree layout —
// so v1 generations written before the format flip keep serving.
func Open(dir string, g *entity.Graph) (*Index, error) {
	if _, err := os.Stat(filepath.Join(dir, packedix.FileName)); err == nil {
		return openPacked(dir, g)
	}
	return openBTree(dir, g)
}

func openBTree(dir string, g *entity.Graph) (*Index, error) {
	mb, err := os.ReadFile(filepath.Join(dir, fileMeta))
	if err != nil {
		return nil, fmt.Errorf("pathindex: open: %w", err)
	}
	var meta metaFile
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, fmt.Errorf("pathindex: corrupt meta: %w", err)
	}
	if meta.Nodes != g.NumNodes() || meta.Edges != g.NumEdges() {
		return nil, fmt.Errorf("pathindex: index built for %d nodes/%d edges, graph has %d/%d",
			meta.Nodes, meta.Edges, g.NumNodes(), g.NumEdges())
	}
	opt := Options{MaxLen: meta.MaxLen, Beta: meta.Beta, Gamma: meta.Gamma, Dir: dir, Format: FormatBTree}
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	dict, err := hashdict.Open(filepath.Join(dir, fileDict))
	if err != nil {
		return nil, err
	}
	pg, err := pager.Open(filepath.Join(dir, filePages), pager.Options{})
	if err != nil {
		dict.Close()
		return nil, err
	}
	tree, err := btree.Open(pg)
	if err != nil {
		pg.Close()
		dict.Close()
		return nil, err
	}
	ctxInfo, err := LoadContext(filepath.Join(dir, fileContext))
	if err != nil {
		pg.Close()
		dict.Close()
		return nil, err
	}
	hist, err := LoadHistograms(filepath.Join(dir, fileHist))
	if err != nil {
		pg.Close()
		dict.Close()
		return nil, err
	}
	ix := &Index{opt: opt, g: g, dict: dict, pg: pg, tree: tree, ctx: ctxInfo, hist: hist}
	ix.stats.Entries = meta.Entries
	ix.stats.Sequences = dict.Len()
	ix.stats.Bytes = dirBytes(dir)
	return ix, nil
}

// Close releases the on-disk resources. For a packed index this unmaps the
// file: zero-copy views handed out earlier (Context tables, Lookup results
// are NOT among them — those are copied into caller-owned memory) must not
// be dereferenced afterwards, the same drain-then-close discipline the
// serving tier already applies before retiring a generation.
func (ix *Index) Close() error {
	var first error
	if ix.packed != nil {
		if err := ix.packed.Close(); err != nil {
			first = err
		}
		ix.packed = nil
	}
	if ix.pg != nil {
		if err := ix.pg.Close(); err != nil && first == nil {
			first = err
		}
		ix.pg = nil
	}
	if ix.dict != nil {
		if err := ix.dict.Close(); err != nil && first == nil {
			first = err
		}
		ix.dict = nil
	}
	return first
}

// Stats returns build/size statistics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// Context returns the node context information tables.
func (ix *Index) Context() *Context { return ix.ctx }

// Graph returns the entity graph the index was built over.
func (ix *Index) Graph() *entity.Graph { return ix.g }

// Beta returns the construction threshold β.
func (ix *Index) Beta() float64 { return ix.opt.Beta }

// Gamma returns the probability bucket resolution γ.
func (ix *Index) Gamma() float64 { return ix.opt.Gamma }

// MaxLen returns the maximum indexed path length L.
func (ix *Index) MaxLen() int { return ix.opt.MaxLen }

// opath is an oriented in-construction path with its label assignment.
type opath struct {
	n      uint8
	nodes  [maxNodes]entity.ID
	labels [maxNodes]prob.LabelID
	prle   float64
	prn    float64
}

func (p *opath) contains(v entity.ID) bool {
	for i := uint8(0); i < p.n; i++ {
		if p.nodes[i] == v {
			return true
		}
	}
	return false
}

// buildPaths enumerates oriented paths level by level with a barrier between
// levels, storing the canonical orientation of each (Section 5.1).
func (ix *Index) buildPaths(ctx context.Context) error {
	ix.stats.EntriesPerLen = make([]uint64, ix.opt.MaxLen+1)

	// Level 0: single nodes.
	var level []opath
	n := ix.g.NumNodes()
	for v := 0; v < n; v++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		exist := ix.g.Exist(entity.ID(v))
		for _, e := range ix.g.Node(entity.ID(v)).Label.Entries() {
			if e.P*exist+1e-12 < ix.opt.Beta {
				continue
			}
			p := opath{n: 1, prle: e.P, prn: exist}
			p.nodes[0] = entity.ID(v)
			p.labels[0] = e.Label
			level = append(level, p)
		}
	}
	if err := ix.storeLevel(level, 0); err != nil {
		return err
	}

	for l := 1; l <= ix.opt.MaxLen; l++ {
		next, err := ix.extendLevel(ctx, level)
		if err != nil {
			return err
		}
		if err := ix.storeLevel(next, l); err != nil {
			return err
		}
		level = next
		if len(level) == 0 {
			break
		}
	}
	return nil
}

// extendLevel extends every oriented path by one edge at its tail, in
// parallel chunks, applying the β cutoff and the reference-disjointness
// constraint.
func (ix *Index) extendLevel(ctx context.Context, level []opath) ([]opath, error) {
	workers := ix.opt.Workers
	if workers > len(level) {
		workers = len(level)
	}
	if workers == 0 {
		return nil, nil
	}
	results := make([][]opath, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(level) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(level) {
			hi = len(level)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []opath
			for i := lo; i < hi; i++ {
				if i%1024 == 0 {
					if err := ctxErr(ctx); err != nil {
						errs[w] = err
						return
					}
				}
				out = ix.extendOne(&level[i], out)
			}
			results[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	next := make([]opath, 0, total)
	for _, r := range results {
		next = append(next, r...)
	}
	return next, nil
}

func (ix *Index) extendOne(p *opath, out []opath) []opath {
	g := ix.g
	tail := p.nodes[p.n-1]
	tailLabel := p.labels[p.n-1]
	nodesSoFar := p.nodes[:p.n]
	for _, nb := range g.Neighbors(tail) {
		if p.contains(nb.To) {
			continue
		}
		conflict := false
		for _, u := range nodesSoFar {
			if u != tail && g.RefsOverlap(u, nb.To) {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		// Prn of the extended node set.
		var scratch [maxNodes]entity.ID
		ext := append(scratch[:0], nodesSoFar...)
		ext = append(ext, nb.To)
		prn := g.Prn(ext)
		if prn == 0 {
			continue
		}
		for _, le := range g.Node(nb.To).Label.Entries() {
			edgeP := nb.E.Prob(tailLabel, le.Label)
			prle := p.prle * edgeP * le.P
			if prle*prn+1e-12 < ix.opt.Beta {
				continue
			}
			np := *p
			np.nodes[np.n] = nb.To
			np.labels[np.n] = le.Label
			np.n++
			np.prle = prle
			np.prn = prn
			out = append(out, np)
		}
	}
	return out
}

// storeLevel writes the canonical orientation of every oriented path to the
// B+ tree and the histograms.
func (ix *Index) storeLevel(level []opath, l int) error {
	for i := range level {
		p := &level[i]
		labels := p.labels[:p.n]
		nodes := p.nodes[:p.n]
		canon, reversed, palin := canonicalSeq(labels)
		if reversed {
			continue // stored by the reversed oriented path
		}
		if palin && p.n > 1 && nodes[0] > nodes[p.n-1] {
			continue // palindromic sequences store node-canonical orientation
		}
		if ix.pw != nil {
			if err := ix.storePacked(canon, nodes, p.prle, p.prn); err != nil {
				return err
			}
			ix.stats.Entries++
			ix.stats.EntriesPerLen[l]++
			continue
		}
		seqID, _, err := ix.dict.Intern(seqBytes(canon))
		if err != nil {
			return err
		}
		pr := p.prle * p.prn
		b := bucketOf(pr, ix.opt.Beta, ix.opt.Gamma)
		rec := ix.recno
		ix.recno++
		if err := ix.tree.Put(encodeKey(seqID, b, rec), encodeRecord(nodes, p.prle, p.prn)); err != nil {
			return err
		}
		ix.hist.Add(seqID, b)
		ix.stats.Entries++
		ix.stats.EntriesPerLen[l]++
	}
	return nil
}

// Lookup returns PIndex(X, α): all paths whose label assignment is X with
// probability ≥ α. When α < β the index is insufficient and the paths are
// enumerated on demand from the graph (the paper's footnote 1).
func (ix *Index) Lookup(X []prob.LabelID, alpha float64) ([]PathMatch, error) {
	if len(X) == 0 || len(X) > maxNodes {
		return nil, fmt.Errorf("pathindex: label sequence length %d out of range", len(X))
	}
	if len(X)-1 > ix.opt.MaxLen {
		return nil, fmt.Errorf("pathindex: sequence of %d labels exceeds indexed length L=%d", len(X), ix.opt.MaxLen)
	}
	ix.probes.Add(1)
	if alpha < ix.opt.Beta {
		return ix.onDemand(X, alpha)
	}
	if ix.packed != nil {
		return ix.lookupPacked(X, alpha)
	}
	canon, reversed, palin := canonicalSeq(X)
	seqID, ok := ix.dict.Lookup(seqBytes(canon))
	if !ok {
		return nil, nil
	}
	lo := encodeKey(seqID, bucketOf(alpha, ix.opt.Beta, ix.opt.Gamma), 0)
	hi := encodeKey(seqID+1, 0, 0)
	var out []PathMatch
	var scanErr error
	err := ix.tree.Scan(lo, hi, func(k, v []byte) bool {
		m, err := decodeRecord(v)
		if err != nil {
			scanErr = err
			return false
		}
		if m.Pr()+1e-12 < alpha {
			return true // bucket floor below α: filter exactly
		}
		switch {
		case palin && len(m.Nodes) > 1:
			// Both orientations match a palindromic sequence.
			rev := reverseNodes(m.Nodes)
			out = append(out, m, PathMatch{Nodes: rev, Prle: m.Prle, Prn: m.Prn})
		case reversed:
			m.Nodes = reverseNodes(m.Nodes)
			out = append(out, m)
		default:
			out = append(out, m)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// Cardinality estimates |PIndex(X, α)| via the histograms (palindromic
// sequences count both orientations). Used by query decomposition.
func (ix *Index) Cardinality(X []prob.LabelID, alpha float64) float64 {
	if ix.packed != nil {
		return ix.cardinalityPacked(X, alpha)
	}
	canon, _, palin := canonicalSeq(X)
	seqID, ok := ix.dict.Lookup(seqBytes(canon))
	if !ok {
		return 0
	}
	est := ix.hist.Estimate(seqID, alpha)
	if palin && len(X) > 1 {
		est *= 2
	}
	return est
}

func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

func dirBytes(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total
}

// Sequences returns all canonical label sequences present in the index, for
// diagnostics and tests.
func (ix *Index) Sequences() [][]prob.LabelID {
	if ix.packed != nil {
		out := ix.sequencesPacked()
		sort.Slice(out, func(i, j int) bool { return compareLabels(out[i], out[j]) < 0 })
		return out
	}
	var out [][]prob.LabelID
	for id := uint64(0); ; id++ {
		key, ok := ix.dict.Key(id)
		if !ok {
			break
		}
		labels := make([]prob.LabelID, len(key)/2)
		for i := range labels {
			labels[i] = prob.LabelID(uint16(key[2*i])<<8 | uint16(key[2*i+1]))
		}
		out = append(out, labels)
	}
	sort.Slice(out, func(i, j int) bool { return compareLabels(out[i], out[j]) < 0 })
	return out
}
