package pathindex

import (
	"repro/internal/entity"
	"repro/internal/prob"
)

// onDemand enumerates paths matching the label sequence X with probability
// ≥ alpha directly from the graph, used when alpha is below the index
// construction threshold β (footnote 1 of the paper). It performs a DFS over
// GU guided by the label sequence, pruning by partial probability.
func (ix *Index) onDemand(X []prob.LabelID, alpha float64) ([]PathMatch, error) {
	g := ix.g
	var out []PathMatch
	var cur opath
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		id := entity.ID(v)
		lp := g.PrLabel(id, X[0])
		if lp == 0 {
			continue
		}
		exist := g.Exist(id)
		if lp*exist+1e-12 < alpha {
			continue
		}
		cur.n = 1
		cur.nodes[0] = id
		cur.labels[0] = X[0]
		cur.prle = lp
		cur.prn = exist
		out = ix.onDemandExtend(&cur, X, alpha, out)
	}
	return out, nil
}

func (ix *Index) onDemandExtend(p *opath, X []prob.LabelID, alpha float64, out []PathMatch) []PathMatch {
	if int(p.n) == len(X) {
		m := PathMatch{Nodes: make([]entity.ID, p.n), Prle: p.prle, Prn: p.prn}
		copy(m.Nodes, p.nodes[:p.n])
		return append(out, m)
	}
	g := ix.g
	tail := p.nodes[p.n-1]
	next := X[p.n]
	for _, nb := range g.Neighbors(tail) {
		if p.contains(nb.To) {
			continue
		}
		lp := g.PrLabel(nb.To, next)
		if lp == 0 {
			continue
		}
		conflict := false
		for i := uint8(0); i < p.n; i++ {
			u := p.nodes[i]
			if u != tail && g.RefsOverlap(u, nb.To) {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		var scratch [maxNodes]entity.ID
		ext := append(scratch[:0], p.nodes[:p.n]...)
		ext = append(ext, nb.To)
		prn := g.Prn(ext)
		if prn == 0 {
			continue
		}
		prle := p.prle * nb.E.Prob(p.labels[p.n-1], next) * lp
		if prle*prn+1e-12 < alpha {
			continue
		}
		np := *p
		np.nodes[np.n] = nb.To
		np.labels[np.n] = next
		np.n++
		np.prle = prle
		np.prn = prn
		out = ix.onDemandExtend(&np, X, alpha, out)
	}
	return out
}
