package pathindex

// IndexMetrics is a point-in-time snapshot of the read path's counters,
// exported by the server as the peg_index_* metrics family.
type IndexMetrics struct {
	// Format is the on-disk layout serving probes ("v1" or "v2").
	Format string
	// MappedBytes is the size of the mmap'd region for a packed index, 0
	// for the v1 pager-backed layout (which owns a heap cache instead).
	MappedBytes int64
	// Probes counts Lookup calls answered since open.
	Probes uint64
}

// MetricsSource is implemented by index readers that can report read-path
// metrics: *Index and live.View (which forwards to its base).
type MetricsSource interface {
	IndexMetrics() IndexMetrics
	// SetPostingObserver installs fn to receive the wall-clock microseconds
	// of each posting-blob decode (packed format only; the v1 read path has
	// no distinct decode phase). fn must be cheap and safe for concurrent
	// calls; nil uninstalls.
	SetPostingObserver(fn func(micros float64))
}

// IndexMetrics implements MetricsSource.
func (ix *Index) IndexMetrics() IndexMetrics {
	m := IndexMetrics{Format: ix.Format().String(), Probes: ix.probes.Load()}
	if ix.packed != nil {
		m.MappedBytes = ix.packed.MappedBytes()
	}
	return m
}

// SetPostingObserver implements MetricsSource.
func (ix *Index) SetPostingObserver(fn func(micros float64)) {
	if fn == nil {
		ix.obs.Store(nil)
		return
	}
	ix.obs.Store(&fn)
}

// Format reports the on-disk layout backing this index.
func (ix *Index) Format() Format {
	if ix.packed != nil || ix.pw != nil {
		return FormatPacked
	}
	return FormatBTree
}
