package pathindex

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/prob"
)

func benchLookupIndex(b *testing.B) (*Index, [][]prob.LabelID) {
	b.Helper()
	d, err := gen.Synthetic(gen.SynthOptions{Refs: 400, EdgeFactor: 3, Labels: 5, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := Build(context.Background(), g, Options{
		MaxLen: 2, Beta: 0.05, Gamma: 0.1, Dir: b.TempDir(), CachePages: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	seqs := ix.Sequences()
	if len(seqs) == 0 {
		b.Fatal("empty index")
	}
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(seqs), func(i, j int) { seqs[i], seqs[j] = seqs[j], seqs[i] })
	if len(seqs) > 64 {
		seqs = seqs[:64]
	}
	return ix, seqs
}

// BenchmarkLookupParallel measures the raw concurrent probe throughput of
// the sharded read path: many goroutines scanning one shared index with no
// coordination. Run with -cpu=1,8.
func BenchmarkLookupParallel(b *testing.B) {
	ix, seqs := benchLookupIndex(b)
	var si atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			X := seqs[si.Add(1)%uint64(len(seqs))]
			if _, err := ix.Lookup(X, 0.1); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkLookupGlobalLock reproduces the seed's probe path exactly: the
// same scans behind one global mutex, which is what Index.mu used to do to
// every concurrent query. The BenchmarkLookupParallel / GlobalLock ratio at
// -cpu=8 is the probe-level speedup of the de-serialized read path.
func BenchmarkLookupGlobalLock(b *testing.B) {
	ix, seqs := benchLookupIndex(b)
	var mu sync.Mutex
	var si atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			X := seqs[si.Add(1)%uint64(len(seqs))]
			mu.Lock()
			_, err := ix.Lookup(X, 0.1)
			mu.Unlock()
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}
