package server

import (
	"container/list"
	"sync"
)

// resultCache is a mutex-guarded LRU cache from canonical request keys to
// finished match responses. Entries are immutable once stored: hits hand out
// the same *MatchResponse to every caller, so nothing downstream may mutate
// it (the handlers only marshal it).
type resultCache struct {
	mu       sync.Mutex
	capacity int
	items    map[cacheKey]*list.Element
	lru      *list.List // front = most recently used
	hits     uint64
	misses   uint64
}

// cacheKey identifies one cacheable match computation. IndexID ties entries
// to the identity of the served index: swapping the index changes the id,
// which orphans (and eventually evicts) all stale entries.
type cacheKey struct {
	indexID  string
	query    string // canonicalized DSL (parse → Format)
	alpha    uint64 // math.Float64bits of α, so distinct floats never collide
	strategy string
	order    string // result order ("emit" or "prob")
	limit    int    // match limit (0 = all) — a limited run is its own entry
}

type cacheEntry struct {
	key cacheKey
	res *MatchResponse
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		capacity: capacity,
		items:    make(map[cacheKey]*list.Element),
		lru:      list.New(),
	}
}

// get returns the cached response for key, if any.
func (c *resultCache) get(key cacheKey) (*MatchResponse, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a response, evicting the least recently used entry when full.
func (c *resultCache) put(key cacheKey, res *MatchResponse) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	for len(c.items) >= c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.lru.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
	c.items[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
}

// flightGroup collapses concurrent identical computations (a minimal
// singleflight): the first joiner of a key becomes the leader and computes;
// the rest wait on done. The leader fills res/err, forgets the key, then
// closes done.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *MatchResponse
	err  error
}

// join returns the in-flight call for key, creating it (leader=true) when
// none exists.
func (g *flightGroup) join(key cacheKey) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[cacheKey]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// forget removes the key so later requests start a fresh computation.
func (g *flightGroup) forget(key cacheKey) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
}

// stats returns hit/miss counters and the current size.
func (c *resultCache) stats() (hits, misses uint64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.items)
}
