package server

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU from comparable keys to immutable values,
// shared by the result cache and the plan cache. Entries are immutable once
// stored: hits hand out the same value to every caller, so nothing
// downstream may mutate it.
type lruCache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*list.Element
	lru      *list.List // front = most recently used
	hits     uint64
	misses   uint64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// newLRUCache returns a cache holding up to capacity entries; capacity <= 0
// disables caching (the returned nil cache answers every get with a miss
// and drops every put).
func newLRUCache[K comparable, V any](capacity int) *lruCache[K, V] {
	if capacity <= 0 {
		return nil
	}
	return &lruCache[K, V]{
		capacity: capacity,
		items:    make(map[K]*list.Element),
		lru:      list.New(),
	}
}

// get returns the cached value for key, if any.
func (c *lruCache[K, V]) get(key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

// put stores a value, evicting the least recently used entry when full.
func (c *lruCache[K, V]) put(key K, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		c.lru.MoveToFront(el)
		return
	}
	for len(c.items) >= c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.lru.Remove(back)
		delete(c.items, back.Value.(*lruEntry[K, V]).key)
	}
	c.items[key] = c.lru.PushFront(&lruEntry[K, V]{key: key, val: val})
}

// stats returns hit/miss counters and the current size.
func (c *lruCache[K, V]) stats() (hits, misses uint64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.items)
}

// cacheKey identifies one cacheable match computation. IndexID ties entries
// to the identity of the served index: swapping the index changes the id,
// which orphans (and eventually evicts) all stale entries.
type cacheKey struct {
	indexID  string
	query    string // canonicalized DSL (parse → Format)
	alpha    uint64 // math.Float64bits of α, so distinct floats never collide
	strategy string
	order    string // result order ("emit" or "prob")
	limit    int    // match limit (0 = all) — a limited run is its own entry
}

// flightGroup collapses concurrent identical computations (a minimal
// singleflight): the first joiner of a key becomes the leader and computes;
// the rest wait on done. The leader fills res/err, forgets the key, then
// closes done.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *MatchResponse
	err  error
}

// join returns the in-flight call for key, creating it (leader=true) when
// none exists.
func (g *flightGroup) join(key cacheKey) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[cacheKey]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// forget removes the key so later requests start a fresh computation.
func (g *flightGroup) forget(key cacheKey) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
}
