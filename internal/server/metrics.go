package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/metrics"
	"repro/internal/pathindex"
	"repro/internal/trace"
)

// Request outcome classes: the label values on peg_requests_total and the
// /stats counters. Every request counted in s.requests settles into exactly
// one, so requests == ok + failed + canceled + shed + cost_rejected holds at
// any quiescent point.
const (
	outcomeOK           = "ok"
	outcomeFailed       = "failed"
	outcomeCanceled     = "canceled"      // client disconnect / 499, not a server fault
	outcomeShed         = "shed"          // 503: worker pool and queue full
	outcomeCostRejected = "cost_rejected" // 429: predicted plan cost over budget
)

// serverMetrics holds the hot-path instruments (counters and histograms the
// request path touches directly); everything that already has an
// authoritative value elsewhere — cache tallies, pool occupancy, live-DB
// state, calibration factors — is exported through scrape-time closures so
// serving never pays for bookkeeping it does not need.
type serverMetrics struct {
	reg *metrics.Registry

	requests *metrics.CounterVec   // peg_requests_total{endpoint,outcome}
	latency  *metrics.HistogramVec // peg_request_duration_seconds{endpoint}
	stages   *metrics.HistogramVec // peg_stage_duration_seconds{stage}
	planCost *metrics.Histogram    // peg_plan_cost

	indexInfo     *metrics.InfoGauge // peg_index_info{index}
	indexFormat   *metrics.InfoGauge // peg_index_format_info{format}
	postingDecode *metrics.Histogram // peg_index_posting_decode_micros
}

func newServerMetrics(s *Server) *serverMetrics {
	m := &serverMetrics{
		reg: metrics.NewRegistry(),
		requests: metrics.NewCounterVec("peg_requests_total",
			"Requests by endpoint and terminal outcome.", "endpoint", "outcome"),
		// 100µs .. ~100s end-to-end; 10µs .. ~40s per stage.
		latency: metrics.NewHistogramVec("peg_request_duration_seconds",
			"End-to-end request latency by endpoint.", "endpoint",
			metrics.ExpBuckets(1e-4, 4, 11)),
		stages: metrics.NewHistogramVec("peg_stage_duration_seconds",
			"Executor stage latency (plan, decompose, candidates, reduce, join, total).",
			"stage", metrics.ExpBuckets(1e-5, 4, 12)),
		planCost: metrics.NewHistogram("peg_plan_cost",
			"Calibrated planner cost estimate of admitted-or-rejected executions (cost-model units).",
			metrics.ExpBuckets(1, 8, 12)),
		indexInfo: metrics.NewInfoGauge("peg_index_info",
			"Identity of the served index generation.", "index"),
		indexFormat: metrics.NewInfoGauge("peg_index_format_info",
			"On-disk layout of the served index (v1 = B+ tree, v2 = packed mmap).", "format"),
		// 1µs .. ~262ms per posting-blob decode (v2 read path only).
		postingDecode: metrics.NewHistogram("peg_index_posting_decode_micros",
			"Wall-clock microseconds decoding one posting blob on the packed read path.",
			metrics.ExpBuckets(1, 4, 10)),
	}
	// indexMetrics snapshots the served reader's read-path counters at
	// scrape time; zero-valued when the server is unready or the reader
	// predates the metrics surface.
	indexMetrics := func() pathindex.IndexMetrics {
		si, release := s.acquireIndex()
		defer release()
		if si == nil {
			return pathindex.IndexMetrics{}
		}
		src, ok := si.ix.(pathindex.MetricsSource)
		if !ok {
			return pathindex.IndexMetrics{}
		}
		return src.IndexMetrics()
	}
	m.reg.MustRegister(
		m.requests, m.latency, m.stages, m.planCost, m.indexInfo,
		m.indexFormat, m.postingDecode,

		metrics.NewGaugeFunc("peg_index_mapped_bytes",
			"Bytes of the packed index file mapped into the process (0 for the v1 layout).",
			func() float64 { return float64(indexMetrics().MappedBytes) }),
		metrics.NewCounterFunc("peg_index_probes_total",
			"Index Lookup probes answered by the served generation.",
			func() float64 { return float64(indexMetrics().Probes) }),

		metrics.NewGaugeFunc("peg_index_entries",
			"Path-index entries in the served generation.", func() float64 {
				si, release := s.acquireIndex()
				defer release()
				if si == nil { // scrape of an unready server
					return 0
				}
				return float64(si.ix.Stats().Entries)
			}),
		metrics.NewMultiGaugeFunc("peg_calibration_factor",
			"Learned cardinality correction per path length for the served generation (1 = histograms accurate).",
			"path_len", func(emit func(string, float64)) {
				si, release := s.acquireIndex()
				defer release()
				if si == nil { // scrape of an unready server
					return
				}
				snap := si.calib.Snapshot()
				lens := make([]int, 0, len(snap))
				for l := range snap {
					lens = append(lens, l)
				}
				sort.Ints(lens)
				for _, l := range lens {
					emit(fmt.Sprint(l), snap[l])
				}
			}),

		metrics.NewGaugeFunc("peg_workers",
			"Size of the match worker pool.", func() float64 { return float64(s.opt.Workers) }),
		metrics.NewGaugeFunc("peg_workers_busy",
			"Worker slots currently executing.", func() float64 { return float64(len(s.sem)) }),
		metrics.NewGaugeFunc("peg_queue_waiting",
			"Requests waiting for a worker slot.", func() float64 { return float64(s.waiters.Load()) }),
		metrics.NewGaugeFunc("peg_queue_depth_limit",
			"Waiting requests beyond this are shed with 503.", func() float64 { return float64(s.opt.QueueDepth) }),
		metrics.NewGaugeFunc("peg_admission_max_cost",
			"Plan-cost admission budget (0 = admission disabled).", func() float64 { return s.opt.MaxPlanCost }),

		metrics.NewCounterFunc("peg_result_cache_hits_total",
			"Result-cache hits.", func() float64 { h, _, _ := s.cache.stats(); return float64(h) }),
		metrics.NewCounterFunc("peg_result_cache_misses_total",
			"Result-cache misses.", func() float64 { _, mi, _ := s.cache.stats(); return float64(mi) }),
		metrics.NewGaugeFunc("peg_result_cache_entries",
			"Result-cache resident entries.", func() float64 { _, _, n := s.cache.stats(); return float64(n) }),
		metrics.NewCounterFunc("peg_plan_cache_hits_total",
			"Plan-cache hits (evaluations that skipped planning).", func() float64 { h, _, _ := s.plans.stats(); return float64(h) }),
		metrics.NewCounterFunc("peg_plan_cache_misses_total",
			"Plan-cache misses.", func() float64 { _, mi, _ := s.plans.stats(); return float64(mi) }),
		metrics.NewGaugeFunc("peg_plan_cache_entries",
			"Plan-cache resident entries.", func() float64 { _, _, n := s.plans.stats(); return float64(n) }),

		// Candidate-cache counters are monotonic across generation swaps:
		// candCacheStats folds retired generations' final counts into the
		// bases before the new generation's cache starts at zero.
		metrics.NewCounterFunc("peg_candcache_hits_total",
			"Candidate-cache hits: per-path evaluations that skipped posting decode and context pruning.",
			func() float64 { return float64(s.candCacheStats().Hits) }),
		metrics.NewCounterFunc("peg_candcache_misses_total",
			"Candidate-cache misses (pruned sets computed and stored).",
			func() float64 { return float64(s.candCacheStats().Misses) }),
		metrics.NewCounterFunc("peg_candcache_bypass_total",
			"Per-path evaluations that bypassed the candidate cache (live view with a dirty overlay).",
			func() float64 { return float64(s.candCacheStats().Bypassed) }),
		metrics.NewCounterFunc("peg_candcache_evictions_total",
			"Candidate-cache entries evicted to stay under the budget.",
			func() float64 { return float64(s.candCacheStats().Evictions) }),
		metrics.NewGaugeFunc("peg_candcache_entries",
			"Candidate-cache resident entries (current generation).",
			func() float64 { return float64(s.candCacheStats().Entries) }),
		metrics.NewGaugeFunc("peg_candcache_candidates",
			"Pruned candidates retained by the candidate cache (current generation).",
			func() float64 { return float64(s.candCacheStats().Candidates) }),

		metrics.NewCounterFunc("peg_ingested_mutations_total",
			"Mutations applied through /ingest.", func() float64 { return float64(s.ingested.Load()) }),
		metrics.NewCounterFunc("peg_ingest_failed_total",
			"Failed /ingest batches.", func() float64 { return float64(s.ingestFailed.Load()) }),

		&liveCollector{s: s},
	)
	m.reg.MustRegister(TraceCollectors(func() trace.Stats { return s.opt.Tracer.Stats() })...)
	return m
}

// TraceCollectors builds the peg_trace_* families over a tracer-stats
// snapshot function. Shared with the router so both halves of the serving
// tier export identical tracing telemetry; the families render zeros when
// tracing is disabled (Stats on a nil tracer), keeping the page shape
// stable.
func TraceCollectors(stats func() trace.Stats) []metrics.Collector {
	return []metrics.Collector{
		metrics.NewCounterFunc("peg_trace_spans_recorded_total",
			"Finished spans recorded into the trace ring buffer.",
			func() float64 { return float64(stats().Recorded) }),
		metrics.NewCounterFunc("peg_trace_spans_dropped_total",
			"Ring-buffer spans overwritten before being read.",
			func() float64 { return float64(stats().Dropped) }),
		metrics.NewCounterFunc("peg_trace_spans_exported_total",
			"Spans exported as NDJSON lines.",
			func() float64 { return float64(stats().Exported) }),
		metrics.NewCounterFunc("peg_trace_sampled_roots_total",
			"New root spans the head sampler kept.",
			func() float64 { return float64(stats().Sampled) }),
		metrics.NewCounterFunc("peg_trace_unsampled_roots_total",
			"New root spans the head sampler discarded.",
			func() float64 { return float64(stats().Unsampled) }),
		metrics.NewCounterFunc("peg_trace_inherited_contexts_total",
			"Remote trace contexts continued (sampling decision inherited).",
			func() float64 { return float64(stats().Inherited) }),
	}
}

// observeStages feeds one fresh (non-cached) execution's stage timings into
// the stage histograms. Plan and decompose are zero on a plan-cache hit —
// those stages did not run, so they are not observed.
func (m *serverMetrics) observeStages(st *MatchStats) {
	if st.PlanMicros > 0 {
		m.stages.WithLabelValue("plan").Observe(st.PlanMicros / 1e6)
	}
	if st.DecomposeMicros > 0 {
		m.stages.WithLabelValue("decompose").Observe(st.DecomposeMicros / 1e6)
	}
	m.stages.WithLabelValue("candidates").Observe(st.CandidateMicros / 1e6)
	m.stages.WithLabelValue("reduce").Observe(st.ReduceMicros / 1e6)
	m.stages.WithLabelValue("join").Observe(st.JoinMicros / 1e6)
	m.stages.WithLabelValue("total").Observe(st.TotalMicros / 1e6)
}

// liveCollector renders the live-database families from one Status() call
// per scrape (Status takes the DB mutex; eight separate gauge closures would
// take it eight times). Nothing is emitted when the server runs read-only.
type liveCollector struct{ s *Server }

func (c *liveCollector) Name() string { return "peg_live" }

func (c *liveCollector) Collect(w io.Writer) {
	db := c.s.liveDB()
	if db == nil {
		return
	}
	st := db.Status()
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	for _, g := range []struct {
		name, help, typ string
		v               float64
	}{
		{"peg_live_generation", "Current live view generation.", "gauge", float64(st.Generation)},
		{"peg_live_mutation_lag", "Mutations in the delta overlay not yet compacted into the base index.", "gauge", float64(st.Mutations)},
		{"peg_live_dirty_entities", "Entities whose index entries live in the delta overlay.", "gauge", float64(st.DirtyEntities)},
		{"peg_live_entities", "Entities in the live graph.", "gauge", float64(st.Entities)},
		{"peg_live_compacting", "1 while a background compaction is running.", "gauge", b(st.Compacting)},
		{"peg_live_compactions_total", "Completed background compactions.", "counter", float64(st.Compactions)},
		{"peg_live_last_compaction_seconds", "Wall clock of the most recent compaction.", "gauge", float64(st.LastCompactionNanos) / 1e9},
		{"peg_live_compaction_seconds_total", "Cumulative wall clock spent compacting.", "counter", float64(st.TotalCompactionNanos) / 1e9},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", g.name, g.help, g.name, g.typ, g.name, g.v)
	}
}

// handleMetrics serves GET /metrics in Prometheus text exposition format.
// The page is rendered into a buffer first so a slow scraper cannot observe
// a torn write.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "GET required"})
		return
	}
	var buf bytes.Buffer
	s.met.reg.Render(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}
