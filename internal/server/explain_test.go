package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/fixtures"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// canonicalJSON round-trips raw JSON through a normalization pass — object
// keys sorted, every float rounded to 6 significant digits — so the golden
// comparison asserts the response *shape* and stable values without being
// brittle against last-ulp float formatting.
func canonicalJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, raw)
	}
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(normalize(v)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func normalize(v any) any {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make(map[string]any, len(x))
		for _, k := range keys {
			out[k] = normalize(x[k])
		}
		return out
	case []any:
		for i := range x {
			x[i] = normalize(x[i])
		}
		return x
	case float64:
		if x == 0 {
			return x
		}
		mag := math.Pow(10, 5-math.Floor(math.Log10(math.Abs(x))))
		return math.Round(x*mag) / mag
	default:
		return v
	}
}

// TestExplainGolden pins the /explain JSON shape against a golden file:
// the full plan tree of the motivating-example query — chosen knobs, paths
// with estimated cardinalities, cost breakdown, and the rejected
// alternatives. Regenerate with `go test ./internal/server -run
// TestExplainGolden -update` after an intentional planner change.
func TestExplainGolden(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/explain", MatchRequest{
		Query: motivatingQueryDSL,
		Alpha: fixtures.MotivatingAlpha,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	got := canonicalJSON(t, body)
	golden := filepath.Join("testdata", "explain_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("/explain shape drifted from golden (-update to accept):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainMatchesExecutedPlan: the plan tree /explain returns must be
// the tree a subsequent /match reports in its stats — with the plan cache
// on, literally the same cached plan (the match run flags plan_cached).
func TestExplainMatchesExecutedPlan(t *testing.T) {
	_, ts := testServer(t, Options{})
	req := MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha}

	resp, body := postJSON(t, ts.URL+"/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d: %s", resp.StatusCode, body)
	}
	var ex struct {
		Plan   json.RawMessage `json:"plan"`
		Cached bool            `json:"cached"`
	}
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Cached {
		t.Error("first explain reported a plan-cache hit")
	}

	resp, body = postJSON(t, ts.URL+"/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d: %s", resp.StatusCode, body)
	}
	var res struct {
		PlanCached bool `json:"plan_cached"`
		Stats      struct {
			Plan json.RawMessage `json:"plan"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.PlanCached {
		t.Error("match after explain did not reuse the cached plan")
	}
	if res.Stats.Plan == nil {
		t.Fatal("match stats carry no plan tree")
	}
	var a, b any
	if err := json.Unmarshal(ex.Plan, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(res.Stats.Plan, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("explained plan != executed plan:\n%s\nvs\n%s", ex.Plan, res.Stats.Plan)
	}

	// Second explain: now a cache hit.
	resp, body = postJSON(t, ts.URL+"/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if !ex.Cached {
		t.Error("second explain missed the plan cache")
	}
}

// TestPlanCacheCounters: repeat queries hit the plan cache (visible in
// /stats), varying only run-time knobs (limit/order) shares one plan, and
// disabling the cache turns every request into a miss.
func TestPlanCacheCounters(t *testing.T) {
	_, ts := testServer(t, Options{CacheEntries: -1}) // result cache off: every /match replans or plan-cache-hits
	req := MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha}
	postJSON(t, ts.URL+"/match", req)
	limited := req
	limited.Limit = 1
	limited.Order = "prob"
	postJSON(t, ts.URL+"/match", limited) // different result-cache key, same plan
	postJSON(t, ts.URL+"/match", req)

	resp, body := postJSON(t, ts.URL+"/stats", struct{}{})
	_ = resp
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		// /stats is GET; POST body is ignored by the handler.
		t.Fatalf("stats: %v: %s", err, body)
	}
	if st.PlanCacheMisses != 1 {
		t.Errorf("plan cache misses = %d, want 1", st.PlanCacheMisses)
	}
	if st.PlanCacheHits != 2 {
		t.Errorf("plan cache hits = %d, want 2 (top-K page + repeat share one plan)", st.PlanCacheHits)
	}
	if st.PlanCacheEntries != 1 {
		t.Errorf("plan cache entries = %d, want 1", st.PlanCacheEntries)
	}

	_, ts2 := testServer(t, Options{PlanCacheEntries: -1, CacheEntries: -1})
	postJSON(t, ts2.URL+"/match", req)
	postJSON(t, ts2.URL+"/match", req)
	_, body = postJSON(t, ts2.URL+"/stats", struct{}{})
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits != 0 || st.PlanCacheEntries != 0 {
		t.Errorf("disabled plan cache reported hits=%d entries=%d", st.PlanCacheHits, st.PlanCacheEntries)
	}
}

// TestPlanCacheInvalidatedByIndexSwap: a SetIndex changes the index
// identity, so cached plans for the old generation stop matching and the
// next request replans against the new index.
func TestPlanCacheInvalidatedByIndexSwap(t *testing.T) {
	s, ts := testServer(t, Options{CacheEntries: -1})
	req := MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha}
	postJSON(t, ts.URL+"/match", req)
	postJSON(t, ts.URL+"/match", req)

	// Swap in a fresh build of the same graph: same data, new identity.
	si, release := s.acquireIndex()
	old := si.ix
	release()
	s.SetIndex(old) // re-publishing even the same reader bumps the generation id

	postJSON(t, ts.URL+"/match", req)
	_, body := postJSON(t, ts.URL+"/stats", struct{}{})
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheMisses != 2 {
		t.Errorf("plan cache misses = %d, want 2 (one per index generation)", st.PlanCacheMisses)
	}
	if st.PlanCacheHits != 1 {
		t.Errorf("plan cache hits = %d, want 1", st.PlanCacheHits)
	}
}

// TestExplainValidation: malformed requests answer 400 with a diagnostic,
// mirroring the match endpoints.
func TestExplainValidation(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []MatchRequest{
		{Query: motivatingQueryDSL, Alpha: 1.5},
		{Query: motivatingQueryDSL, Strategy: "nope"},
		{Query: "node A bogus-label"},
	}
	for i, req := range cases {
		resp, body := postJSON(t, ts.URL+"/explain", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400: %s", i, resp.StatusCode, body)
		}
	}
	if resp, _ := http.Get(ts.URL + "/explain"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /explain status %d, want 405", resp.StatusCode)
	}
}

// TestStreamUsesPlanCache: /match/stream bypasses the result cache but must
// share the plan cache with /match and /explain.
func TestStreamUsesPlanCache(t *testing.T) {
	_, ts := testServer(t, Options{})
	req := MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha}
	postJSON(t, ts.URL+"/explain", req)
	resp, body := postJSON(t, ts.URL+"/match/stream", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	_, body = postJSON(t, ts.URL+"/stats", struct{}{})
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits < 1 {
		t.Errorf("stream after explain did not hit the plan cache: %+v", st)
	}
}
