// Package server exposes the online matching phase as a concurrent HTTP/JSON
// service: the query-serving subsystem in front of one opened (read-only)
// path index. Every request parses the text query DSL, runs core.Match, and
// streams the matches back as JSON.
//
// The design leans on the read path being lock-free for concurrent callers
// (see pathindex.Index): requests never contend on the index itself, only on
// the bounded worker pool that caps how many match evaluations run at once,
// and on two LRU caches: the result cache that short-circuits repeated
// queries entirely, and the plan cache that lets every evaluation of a
// previously seen query (different limit/order, streaming, after a result
// eviction) skip decomposition and planning.
//
// Endpoints:
//
//	POST /match         one MatchRequest  → MatchResponse (optionally
//	                    limit/order fields for top-K retrieval)
//	POST /match/stream  one MatchRequest  → NDJSON stream of StreamEvent
//	                    lines: matches flushed incrementally as the join
//	                    finds them, then a terminal done/error line
//	POST /match/batch   BatchRequest      → BatchResponse (items evaluated
//	                    concurrently through the pool)
//	POST /explain       one MatchRequest  → ExplainResponse: the plan tree
//	                    the query would execute under, without executing it
//	                    (shares the plan cache with the match endpoints)
//	POST /ingest        live.Mutation (single JSON or NDJSON batch) →
//	                    live.ApplyResult; 501 unless SetLive enabled the
//	                    write path
//	GET  /healthz       readiness: 200 + generation/uptime/index identity
//	                    once an index is installed, 503 ready:false before
//	GET  /healthz/live  liveness: 200 as soon as the process serves HTTP
//	GET  /stats         serving counters (requests, cache hits, rejections,
//	                    ingest and live-database state)
//
// The served index is any pathindex.Reader. With a live database attached
// (SetLive + live.DB.SetPublisher), every ingested batch publishes a fresh
// view through Publish — an atomic swap that invalidates stale cache
// entries by index identity — and the compactor uses DrainObsolete to know
// when a retired generation's base index is safe to close.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/live"
	"repro/internal/pathindex"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/trace"
)

// Options configures a Server.
type Options struct {
	// Workers bounds how many match evaluations run concurrently
	// (0 = GOMAXPROCS). This is the admission-control knob: the index itself
	// imposes no reader limit.
	Workers int
	// QueueDepth is how many requests may wait for a worker slot before the
	// server sheds load with 503 (0 = 4×Workers).
	QueueDepth int
	// CacheEntries sizes the LRU result cache (0 = 1024, negative disables).
	CacheEntries int
	// RequestTimeout caps per-request wall clock (0 = 30s). A request may
	// lower it via its timeout_ms field but never raise it.
	RequestTimeout time.Duration
	// DefaultAlpha is used when a request omits alpha (0 = 0.25).
	DefaultAlpha float64
	// MatchWorkers is the intra-query stage parallelism handed to core.Match
	// for candidate pruning and search-space reduction (0 = 1; the pool
	// already provides inter-query parallelism, so oversubscribing cores per
	// request is opt-in).
	MatchWorkers int
	// MatchParallelism is the per-request join parallelism
	// (core.Options.Parallelism): how many morsel workers one match
	// evaluation may fan out to (0 = 1, the sequential join). It is capped
	// at Workers so a single request can never exceed the CPU budget the
	// admission-control pool was sized for; under a saturated pool, total
	// join workers are still bounded by Workers × MatchParallelism.
	MatchParallelism int
	// PlanCacheEntries sizes the LRU plan cache (0 = 256, negative
	// disables). Cached plans are keyed by canonical query + α + strategy +
	// index identity, so repeat queries — including /match/stream requests,
	// which bypass the result cache — skip decomposition and planning.
	PlanCacheEntries int
	// CandCacheSize bounds the per-generation candidate cache: the total
	// number of pruned path candidates it may retain across entries
	// (0 = candidates.DefaultCacheBudget, negative disables). Each served
	// generation owns one cache — invalidation is by identity, exactly like
	// the plan and result caches — so repeat query shapes skip posting
	// decode and context pruning; live views with a dirty overlay bypass
	// it until the next publish.
	CandCacheSize int
	// MaxPlanCost is the cost-based admission budget: a query whose
	// calibrated plan-cost estimate (plan.Tree.Cost.Total) exceeds it is
	// rejected with 429 + Retry-After before execution, counted as
	// cost_rejected — distinct from the 503 shed of a saturated pool.
	// Planning is tens of microseconds, so the server can afford to predict
	// before it admits; result-cache hits bypass admission (serving a cached
	// answer costs nothing). 0 disables admission.
	MaxPlanCost float64
	// TraceWriter receives one NDJSON traceEvent line per finished request
	// when tracing is selected (TraceAll, or the request's trace flag). Nil
	// disables tracing entirely.
	TraceWriter io.Writer
	// TraceAll traces every request instead of only those asking for it.
	TraceAll bool
	// Tracer enables span-structured distributed tracing: the server
	// continues a traceparent context from the router (or opens a new root),
	// emits child spans for admission, plan-cache lookup, planning, and
	// every executor stage, and serves the ring buffer at
	// GET /debug/trace/{id}. Nil disables span tracing; the NDJSON request
	// tracer above is independent of it.
	Tracer *trace.Tracer
	// DisableMetrics leaves GET /metrics unregistered. The instruments still
	// run (they are nanoseconds per request); only the scrape endpoint goes
	// away, for deployments that must not expose internals on the serving
	// port.
	DisableMetrics bool
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = defaultWorkers()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 1024
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DefaultAlpha <= 0 || o.DefaultAlpha > 1 {
		o.DefaultAlpha = 0.25
	}
	if o.MatchWorkers <= 0 {
		o.MatchWorkers = 1
	}
	if o.MatchParallelism <= 0 {
		o.MatchParallelism = 1
	}
	if o.MatchParallelism > o.Workers {
		o.MatchParallelism = o.Workers
	}
	if o.PlanCacheEntries == 0 {
		o.PlanCacheEntries = 256
	}
}

// servedIndex is one generation of the served index with its in-flight
// reference count, so a swap can drain readers before the old index is
// closed. Each generation carries its own planner calibration: the
// observed/estimated cardinality feedback is only valid against the data it
// was observed on, so a swap starts the correction fresh (stale plan-cache
// and result-cache entries are likewise orphaned by the new id).
type servedIndex struct {
	ix    pathindex.Reader
	id    string
	calib *plan.Calibration
	// cands is this generation's candidate cache (nil when disabled). It
	// never outlives the generation: a swap retires it wholesale, and its
	// final counters are folded into the server's monotonic bases.
	cands *candidates.Cache
	refs  atomic.Int64
}

// Server serves match queries over one opened index. Safe for concurrent
// use; the index may be hot-swapped with SetIndex. A server constructed
// with a nil index starts unready: /healthz reports ready:false (503) and
// the compute endpoints answer 503 until the first SetIndex or Publish —
// the window a process uses to accept health checks while the first index
// is still building or loading.
type Server struct {
	opt   Options
	start time.Time

	mu      sync.RWMutex
	cur     *servedIndex
	retired []*servedIndex // swapped-out generations not yet drained
	gen     atomic.Uint64
	// swapping counts in-flight index swaps; readiness is false while it is
	// non-zero so a router health-checker never routes into a publish flip.
	swapping atomic.Int64

	live *live.DB // nil unless live ingest is enabled

	sem     chan struct{}
	waiters atomic.Int64
	cache   *lruCache[cacheKey, *MatchResponse]
	plans   *lruCache[planKey, *plan.Plan]
	flight  flightGroup

	// Request accounting: every request counted in requests settles into
	// exactly one of succeeded / failed / canceled / rejected / costRejected
	// (see finishRequest), so the five always sum back to requests.
	requests     atomic.Uint64
	rejected     atomic.Uint64
	failed       atomic.Uint64
	succeeded    atomic.Uint64
	canceled     atomic.Uint64
	costRejected atomic.Uint64
	ingested     atomic.Uint64
	ingestFailed atomic.Uint64

	// candBase accumulates the final candidate-cache counters of retired
	// generations so the exported peg_candcache_* totals stay monotonic
	// across swaps (a fresh generation starts its own counters at zero).
	candBase struct {
		hits, misses, bypassed, evictions atomic.Uint64
	}

	met     *serverMetrics
	traceMu sync.Mutex // serializes NDJSON trace lines onto TraceWriter
}

// New creates a server over an opened index (or any other index reader,
// e.g. a live database view). A nil index is allowed: the server starts
// unready — liveness up, readiness and compute endpoints 503 — until the
// first SetIndex or Publish installs an index.
func New(ix pathindex.Reader, opt Options) *Server {
	opt.normalize()
	s := &Server{
		opt:   opt,
		start: time.Now(),
		sem:   make(chan struct{}, opt.Workers),
		cache: newLRUCache[cacheKey, *MatchResponse](opt.CacheEntries),
		plans: newLRUCache[planKey, *plan.Plan](opt.PlanCacheEntries),
	}
	// Metrics before the first setIndex so the swap can stamp the index
	// info gauge; the scrape-time closures only run once /metrics is hit.
	s.met = newServerMetrics(s)
	if ix != nil {
		s.setIndex(ix)
	}
	return s
}

// SetIndex atomically replaces the served index (e.g. after an offline
// rebuild), blocks until every in-flight request on the previous index has
// finished, and returns that previous index — at which point it is safe to
// Close. Cached results of the old index are keyed by its identity and
// simply stop matching, aging out of the LRU.
func (s *Server) SetIndex(ix pathindex.Reader) pathindex.Reader {
	old := s.setIndex(ix)
	if old == nil {
		return nil
	}
	s.DrainObsolete()
	return old.ix
}

// Publish atomically swaps the served index without waiting for in-flight
// requests on earlier generations — the hot half of live.Publisher, called
// on every ingested mutation batch. Retired generations accumulate until
// DrainObsolete.
func (s *Server) Publish(r pathindex.Reader) { s.setIndex(r) }

// DrainObsolete blocks until every request pinning a previously retired
// index generation has finished — the live compactor calls it before
// closing the old on-disk base. Generations published after the call
// started are not waited for.
func (s *Server) DrainObsolete() {
	s.mu.Lock()
	snapshot := append([]*servedIndex(nil), s.retired...)
	s.mu.Unlock()
	for _, si := range snapshot {
		for si.refs.Load() > 0 {
			time.Sleep(time.Millisecond)
		}
	}
	s.mu.Lock()
	kept := s.retired[:0]
	for _, si := range s.retired {
		if si.refs.Load() > 0 {
			kept = append(kept, si)
		}
	}
	s.retired = kept
	s.mu.Unlock()
}

func (s *Server) setIndex(ix pathindex.Reader) *servedIndex {
	s.swapping.Add(1)
	defer s.swapping.Add(-1)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur
	if old != nil && old.cands != nil {
		// Fold the retiring generation's cache counters into the monotonic
		// bases before the new generation starts its own at zero.
		cst := old.cands.Stats()
		s.candBase.hits.Add(cst.Hits)
		s.candBase.misses.Add(cst.Misses)
		s.candBase.bypassed.Add(cst.Bypassed)
		s.candBase.evictions.Add(cst.Evictions)
	}
	// A monotonically increasing generation makes the id collision-free
	// across swaps (a %p pointer could be reused after GC); the entry count
	// is informational.
	s.cur = &servedIndex{
		ix:    ix,
		id:    fmt.Sprintf("gen%d#%d", s.gen.Add(1), ix.Stats().Entries),
		calib: plan.NewCalibration(),
		cands: s.newCandCache(),
	}
	s.met.indexInfo.SetLabelValue(s.cur.id)
	// Stamp the storage layout and route posting-decode timings from the new
	// reader into the histogram. Live views forward both to the shared base
	// index, so reinstalling per publish is idempotent; a reader without the
	// metrics surface reads as "v1" (the layout every pre-v2 generation has).
	if src, ok := ix.(pathindex.MetricsSource); ok {
		s.met.indexFormat.SetLabelValue(src.IndexMetrics().Format)
		src.SetPostingObserver(s.met.postingDecode.Observe)
	} else {
		s.met.indexFormat.SetLabelValue("v1")
	}
	// Prune fully released generations right away: with live ingest every
	// batch publishes, and without pruning the retired list would pin one
	// whole view (context tables, overlay, graph delta) per batch until the
	// next compaction drains. Holding the write lock here excludes
	// acquireIndex, so refs.Load() == 0 is a stable "nobody can pin it
	// anymore" fact.
	kept := s.retired[:0]
	for _, si := range s.retired {
		if si.refs.Load() > 0 {
			kept = append(kept, si)
		}
	}
	s.retired = kept
	if old != nil {
		s.retired = append(s.retired, old)
	}
	return old
}

// newCandCache creates the candidate cache for a freshly installed
// generation; nil when the knob disables caching.
func (s *Server) newCandCache() *candidates.Cache {
	if s.opt.CandCacheSize < 0 {
		return nil
	}
	return candidates.NewCache(s.opt.CandCacheSize)
}

// candCacheStats reports the live totals: retired-generation bases plus the
// current generation's counters, so scrapes never observe a reset.
func (s *Server) candCacheStats() candidates.CacheStats {
	si, release := s.acquireIndex()
	var cur candidates.CacheStats
	if si != nil {
		cur = si.cands.Stats()
	}
	release()
	cur.Hits += s.candBase.hits.Load()
	cur.Misses += s.candBase.misses.Load()
	cur.Bypassed += s.candBase.bypassed.Load()
	cur.Evictions += s.candBase.evictions.Load()
	return cur
}

// acquireIndex pins the current index generation; callers must call
// release() when done with it. On an unready server (no index installed
// yet) si is nil and release is a no-op — callers must check.
func (s *Server) acquireIndex() (si *servedIndex, release func()) {
	s.mu.RLock()
	si = s.cur
	if si == nil {
		s.mu.RUnlock()
		return nil, func() {}
	}
	si.refs.Add(1)
	s.mu.RUnlock()
	return si, func() { si.refs.Add(-1) }
}

// errNotReady answers compute requests on a server whose first index is
// still building or loading.
var errNotReady = &httpError{status: http.StatusServiceUnavailable, msg: "index not ready"}

// MatchRequest is the JSON body of /match, /match/stream, and one item of
// /match/batch.
type MatchRequest struct {
	// Query is the text DSL ("node NAME LABEL" / "edge A B" lines).
	Query string `json:"query"`
	// Alpha is the probability threshold α (0 = server default).
	Alpha float64 `json:"alpha,omitempty"`
	// Strategy is "optimized" (default), "random-decomp", or
	// "no-ss-reduction".
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMillis optionally lowers the server's request timeout.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Limit caps the number of returned matches (0 = all). With order
	// "emit" the match enumeration stops as soon as Limit matches were
	// produced; with order "prob" the top-Limit matches by probability are
	// returned.
	Limit int `json:"limit,omitempty"`
	// Order is "emit" (default: enumeration order, lowest latency) or
	// "prob" (decreasing probability — top-K together with Limit).
	Order string `json:"order,omitempty"`
	// Trace asks the server to emit one NDJSON trace line for this request
	// (requires the server to be configured with a trace writer). Not part
	// of any cache key: a traced repeat of a cached query still records a
	// line, marked cached.
	Trace bool `json:"trace,omitempty"`

	// requestID is the X-Request-ID header value, captured at decode time so
	// trace lines carry it. Not part of the JSON body or any cache key.
	requestID string
	// traceID is the hex trace id of the request's span (when the server
	// has a Tracer), stamped into NDJSON trace lines so flat request events
	// and span waterfalls correlate.
	traceID string
	// deadlineMillis is the router's remaining per-shard budget from the
	// X-Peg-Deadline-Ms header. Folded into the request timeout exactly
	// like timeout_ms: it can lower the deadline, never raise it.
	deadlineMillis int64
}

// MatchEntry is one probabilistic match in a response.
type MatchEntry struct {
	// Mapping lists the entity id matched to each query node, in query-node
	// order.
	Mapping []uint32 `json:"mapping"`
	Pr      float64  `json:"pr"`
	Prle    float64  `json:"prle"`
	Prn     float64  `json:"prn"`
}

// MatchStats is the per-request statistics summary. Plan is the executed
// plan tree — the same tree POST /explain returns for the query (with the
// plan cache enabled, the very same cached value) — and Stages carries the
// executor's per-stage timings, estimated vs. observed cardinalities, and
// prune counts. PlannedOrder vs ExecOrder shows the adaptive join reorder:
// they differ exactly when the observed candidate counts contradicted the
// histogram ranking.
type MatchStats struct {
	NumPaths int     `json:"num_paths"`
	SSFinal  float64 `json:"search_space_final"`
	// Stage times are float microseconds with nanosecond precision: a stage
	// that ran for 800ns reports 0.8, not the 0 that integer-microsecond
	// truncation used to produce for every sub-µs stage.
	TotalMicros     float64 `json:"total_us"`
	PlanMicros      float64 `json:"plan_us,omitempty"`
	DecomposeMicros float64 `json:"decompose_us"`
	CandidateMicros float64 `json:"candidates_us"`
	ReduceMicros    float64 `json:"reduce_us"`
	JoinMicros      float64 `json:"join_us"`

	Plan         *plan.Tree        `json:"plan,omitempty"`
	Stages       []plan.StageStats `json:"stages,omitempty"`
	PlannedOrder []int             `json:"planned_join_order,omitempty"`
	ExecOrder    []int             `json:"exec_join_order,omitempty"`
}

// MatchResponse is the JSON body answering one match request.
type MatchResponse struct {
	NumMatches int          `json:"num_matches"`
	Matches    []MatchEntry `json:"matches"`
	Alpha      float64      `json:"alpha"`
	Strategy   string       `json:"strategy"`
	Cached     bool         `json:"cached"`
	// PlanCached reports that the evaluation reused a cached query plan,
	// skipping decomposition and planning (independent of Cached, which
	// short-circuits the whole evaluation).
	PlanCached bool `json:"plan_cached,omitempty"`
	// Truncated reports that the match set may be incomplete: the request's
	// limit stopped the enumeration (order "emit") or discarded matches
	// beyond the top-K (order "prob").
	Truncated bool        `json:"truncated,omitempty"`
	Stats     *MatchStats `json:"stats,omitempty"`
}

// StreamEvent is one NDJSON line of a /match/stream response. Exactly one
// field is set per line: a match, the final done summary, or a mid-stream
// error (errors before the first byte use a plain HTTP error status
// instead).
type StreamEvent struct {
	Match *MatchEntry `json:"match,omitempty"`
	Done  *StreamDone `json:"done,omitempty"`
	Error string      `json:"error,omitempty"`
}

// StreamDone is the terminal NDJSON line of a successful /match/stream
// response.
type StreamDone struct {
	NumMatches int     `json:"num_matches"`
	Truncated  bool    `json:"truncated,omitempty"`
	Alpha      float64 `json:"alpha"`
	Strategy   string  `json:"strategy"`
	// PlanCached reports that this stream reused a cached query plan.
	PlanCached bool        `json:"plan_cached,omitempty"`
	Stats      *MatchStats `json:"stats,omitempty"`
}

// BatchRequest is the JSON body of /match/batch.
type BatchRequest struct {
	Queries []MatchRequest `json:"queries"`
}

// BatchItem is one result of a batch: a response or an error, never both.
type BatchItem struct {
	*MatchResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse answers /match/batch, results aligned with the request.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// StatsResponse answers /stats. The outcome counters partition Requests:
// requests = succeeded + failed + canceled + rejected + cost_rejected.
type StatsResponse struct {
	Requests  uint64 `json:"requests"`
	Succeeded uint64 `json:"succeeded"`
	Failed    uint64 `json:"failed"`
	// Canceled counts requests whose client went away (disconnect, 499) —
	// not server faults, and deliberately not part of Failed.
	Canceled uint64 `json:"canceled"`
	Rejected uint64 `json:"rejected"`
	// CostRejected counts 429 cost-based admission rejections (predicted
	// plan cost over MaxPlanCost), distinct from pool-saturation Rejected.
	CostRejected uint64 `json:"cost_rejected"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	// Plan cache counters: hits are evaluations (or /explain calls) that
	// skipped decomposition and planning entirely.
	PlanCacheHits    uint64 `json:"plan_cache_hits"`
	PlanCacheMisses  uint64 `json:"plan_cache_misses"`
	PlanCacheEntries int    `json:"plan_cache_entries"`
	// Candidate-cache counters: hits are per-path evaluations served from
	// the per-generation pruned-candidate cache (posting decode and context
	// pruning skipped). Monotonic across generation swaps.
	CandCacheHits     uint64 `json:"cand_cache_hits"`
	CandCacheMisses   uint64 `json:"cand_cache_misses"`
	CandCacheBypassed uint64 `json:"cand_cache_bypassed"`
	CandCacheEntries  int    `json:"cand_cache_entries"`
	Workers           int    `json:"workers"`
	IndexEntries      uint64 `json:"index_entries"`
	// Live ingest counters (zero when the write path is disabled).
	Ingested     uint64       `json:"ingested,omitempty"`
	IngestFailed uint64       `json:"ingest_failed,omitempty"`
	Live         *live.Status `json:"live,omitempty"`
}

// httpError is an error with an HTTP status. retryAfter, when positive, is
// surfaced as a Retry-After header — set on cost-based admission rejections
// so clients can tell "back off and retry" from a hard failure.
type httpError struct {
	status     int
	msg        string
	retryAfter int // seconds; 0 = no header
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// decodeError maps a request-body decode failure: size-limit violations get
// 413 so clients can tell "split the batch" from "fix the JSON".
func decodeError(err error) *httpError {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &httpError{status: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
	}
	return badRequest("malformed request: %v", err)
}

var errSaturated = &httpError{
	status: http.StatusServiceUnavailable,
	msg:    "server saturated: worker pool and queue full",
}

// maxBodyBytes caps request bodies; a batch of maximal queries stays well
// under it.
const maxBodyBytes = 8 << 20

// maxBatchQueries caps one /match/batch request; larger workloads must
// paginate so a single request cannot monopolize the pool.
const maxBatchQueries = 256

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/match", s.handleMatch)
	mux.HandleFunc("/match/stream", s.handleMatchStream)
	mux.HandleFunc("/match/batch", s.handleBatch)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/healthz/live", s.handleHealthLive)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/debug/trace/", s.handleDebugTrace)
	if !s.opt.DisableMetrics {
		mux.HandleFunc("/metrics", s.handleMetrics)
	}
	// Echo the caller's X-Request-ID onto every response — success, error,
	// or stream — before any handler writes a status, so a request can be
	// correlated across router, shard, and trace log by one id.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get(RequestIDHeader); id != "" {
			w.Header().Set(RequestIDHeader, id)
		}
		mux.ServeHTTP(w, r)
	})
}

// RequestIDHeader carries the end-to-end request correlation id. The router
// generates one per client request (unless the client sent its own) and fans
// it out to every shard; shards accept it, echo it on the response, and
// stamp it into their NDJSON trace lines.
const RequestIDHeader = "X-Request-ID"

// DeadlineHeader carries the router's remaining per-shard deadline budget
// in whole milliseconds. A shard folds it into its request timeout, so
// work for an attempt the router has already given up on (timeout,
// hedged-and-lost) is cancelled shard-side instead of running to
// completion and polluting calibration and latency histograms.
const DeadlineHeader = "X-Peg-Deadline-Ms"

// captureHTTP records the propagation headers of one decoded request:
// the correlation id and the router's remaining deadline budget. (The
// traceparent context is read by startRequestSpan, which needs the
// header map anyway.)
func (s *Server) captureHTTP(r *http.Request, req *MatchRequest) {
	req.requestID = r.Header.Get(RequestIDHeader)
	if v := r.Header.Get(DeadlineHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			req.deadlineMillis = ms
		}
	}
}

// startRequestSpan opens the server-side root span for one request,
// continuing the remote traceparent context when one was propagated
// (inheriting its sampling decision), and stamps the trace id into the
// request for the NDJSON tracer.
func (s *Server) startRequestSpan(r *http.Request, req *MatchRequest, name string) (context.Context, *trace.Span) {
	ctx := r.Context()
	if s.opt.Tracer == nil {
		return ctx, nil
	}
	if sc, ok := trace.Extract(r.Header); ok {
		ctx = trace.ContextWithRemote(ctx, sc)
	}
	ctx, sp := s.opt.Tracer.StartSpan(ctx, name)
	if req != nil {
		req.traceID = sp.TraceID()
		if req.requestID != "" {
			sp.SetAttr("request_id", req.requestID)
		}
	}
	return ctx, sp
}

// endRequestSpan settles a root span with the request's terminal state.
func endRequestSpan(sp *trace.Span, err error, res *MatchResponse) {
	if sp == nil {
		return
	}
	sp.SetAttr("outcome", outcomeOf(err))
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	if res != nil {
		sp.SetAttr("matches", strconv.Itoa(res.NumMatches))
		if res.Cached {
			sp.SetAttr("cached", "true")
		}
	}
	sp.End()
}

// TraceResponse answers GET /debug/trace/{id}: the spans the in-process
// ring recorder still holds for one trace, oldest first. The router
// serves the same shape for its half of the waterfall.
type TraceResponse struct {
	TraceID string           `json:"trace_id"`
	Spans   []trace.SpanData `json:"spans"`
}

func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "GET required"})
		return
	}
	if s.opt.Tracer == nil {
		writeError(w, &httpError{status: http.StatusNotFound, msg: "span tracing disabled (start with -trace-sample > 0)"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, badRequest("want /debug/trace/{trace-id}"))
		return
	}
	spans := s.opt.Tracer.Collect(id)
	if len(spans) == 0 {
		writeError(w, &httpError{status: http.StatusNotFound, msg: "no spans recorded for trace " + id})
		return
	}
	writeJSON(w, http.StatusOK, &TraceResponse{TraceID: id, Spans: spans})
}

// SetLive enables the write path: /ingest mutations are applied to db, and
// the database publishes every fresh view back through the server's
// Publisher implementation (pair this with db.SetPublisher(s)).
func (s *Server) SetLive(db *live.DB) {
	s.mu.Lock()
	s.live = db
	s.mu.Unlock()
}

func (s *Server) liveDB() *live.DB {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// maxIngestBatch caps mutations per /ingest request.
const maxIngestBatch = 4096

// handleIngest applies a batch of mutations. The body is one JSON mutation
// object, a JSON stream of them, or NDJSON — one mutation per line — all
// decoded the same way; the whole batch is applied atomically and the
// response reports the assigned ids and overlay state. The 501 answer
// distinguishes "server runs read-only" from transient failures.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	db := s.liveDB()
	if db == nil {
		writeError(w, &httpError{status: http.StatusNotImplemented, msg: "live ingest disabled (start the server with -live)"})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	var batch []live.Mutation
	for {
		var m live.Mutation
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			writeError(w, decodeError(err))
			return
		}
		if len(batch) == maxIngestBatch {
			writeError(w, badRequest("ingest batch exceeds the %d-mutation limit", maxIngestBatch))
			return
		}
		batch = append(batch, m)
	}
	if len(batch) == 0 {
		writeError(w, badRequest("empty ingest batch"))
		return
	}
	res, err := db.Apply(batch)
	if err != nil {
		s.ingestFailed.Add(1)
		// Only the client's own mutations warrant a 400; server-side
		// failures (WAL I/O, shutdown race) must read as retryable.
		switch {
		case errors.Is(err, live.ErrClosed):
			writeError(w, &httpError{status: http.StatusServiceUnavailable, msg: err.Error()})
		case errors.Is(err, live.ErrInvalidMutation):
			writeError(w, badRequest("%v", err))
		default:
			writeError(w, &httpError{status: http.StatusInternalServerError, msg: err.Error()})
		}
		return
	}
	s.ingested.Add(uint64(res.Applied))
	writeJSON(w, http.StatusOK, &res)
}

// handleMatchStream answers one match request as NDJSON: one StreamEvent
// line per match, flushed as the join enumeration finds it, then a terminal
// done (or error) line. Streaming responses bypass the result cache — the
// point is first-match latency, which a buffered cache entry cannot
// improve — but share the worker pool and admission control with /match.
func (s *Server) handleMatchStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	var req MatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, decodeError(err))
		return
	}
	s.captureHTTP(r, &req)
	sctx, sp := s.startRequestSpan(r, &req, "serve.stream")
	s.requests.Add(1)
	start := time.Now()
	fail := func(err error) {
		s.finishRequest("stream", start, &req, nil, err)
		endRequestSpan(sp, err, nil)
		writeError(w, err)
	}
	si, release := s.acquireIndex()
	defer release()
	if si == nil {
		fail(errNotReady)
		return
	}
	p, err := s.parseParams(si.ix, &req)
	if err != nil {
		fail(err)
		return
	}

	ctx, cancel := context.WithTimeout(sctx, s.requestTimeout(&req))
	defer cancel()
	if err := s.acquireTraced(ctx); err != nil {
		fail(err)
		return
	}
	defer func() { <-s.sem }()

	// Plan under the worker slot (a cache hit skips planning entirely);
	// /match/stream bypasses the result cache, so the plan cache is what a
	// repeat streaming query saves on.
	pl, planCached, perr := s.plannedFor(ctx, si, p)
	if perr != nil {
		fail(perr)
		return
	}
	// Streams never hit the result cache, so every stream is a fresh
	// execution and goes through cost-based admission.
	if aerr := s.admit(pl); aerr != nil {
		fail(aerr)
		return
	}

	// Bound every event write by the request deadline: a client that stops
	// reading mid-stream blocks the handler inside a write, where the ctx
	// timeout alone cannot interrupt it — the write deadline makes the
	// blocked write fail instead, releasing this worker slot on schedule.
	if dl, ok := ctx.Deadline(); ok {
		_ = http.NewResponseController(w).SetWriteDeadline(dl)
	}

	// The Content-Type is set up front but the 200 status only goes on the
	// wire with the first event line, so a run that fails before producing
	// any output can still answer with a real HTTP error status; after the
	// first byte, failures become NDJSON error lines.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	clientGone := false
	n := 0
	execStart := time.Now()
	st, matchErr := core.MatchStreamPlan(ctx, si.ix, pl, p.options(&s.opt, si), func(m join.Match) bool {
		e := matchEntry(m)
		if err := enc.Encode(&StreamEvent{Match: &e}); err != nil {
			clientGone = true
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		n++
		return true
	})
	s.stageSpans(ctx, execStart, st.Stages)
	if clientGone {
		// The event write failed because the client stopped reading or went
		// away mid-stream. That is the client's choice, not a server fault:
		// bill it as canceled, never failed.
		gone := &httpError{status: 499, msg: "client closed connection mid-stream"}
		s.finishRequest("stream", start, &req, nil, gone)
		endRequestSpan(sp, gone, nil)
		return
	}
	if matchErr != nil {
		herr := matchError(matchErr)
		s.finishRequest("stream", start, &req, nil, herr)
		endRequestSpan(sp, herr, nil)
		if n == 0 {
			// Nothing on the wire yet: answer with a real HTTP status
			// (writeError resets the Content-Type).
			writeError(w, herr)
			return
		}
		_ = enc.Encode(&StreamEvent{Error: herr.msg})
		return
	}
	if !planCached {
		// Planning ran in this request; bill it in the terminal stats like
		// /match does, Total included, so stream and buffered latencies —
		// and plan-cache effectiveness — stay comparable.
		st.PlanTime = pl.PlanTime
		st.DecomposeTime = pl.DecomposeTime
		st.Total += pl.PlanTime
	}
	stj := statsJSON(st)
	s.finishRequest("stream", start, &req,
		&MatchResponse{NumMatches: n, PlanCached: planCached, Truncated: st.Truncated, Stats: stj}, nil)
	endRequestSpan(sp, nil, &MatchResponse{NumMatches: n})
	_ = enc.Encode(&StreamEvent{Done: &StreamDone{
		NumMatches: n,
		Truncated:  st.Truncated,
		Alpha:      p.alpha,
		Strategy:   p.stratName,
		PlanCached: planCached,
		Stats:      stj,
	}})
}

// ExplainResponse answers POST /explain: the plan tree the query would
// execute under right now, without executing it. Because /explain and the
// match endpoints share the plan cache, a subsequent identical match request
// executes — and reports in its stats — this very tree.
type ExplainResponse struct {
	Plan *plan.Tree `json:"plan"`
	// Cached reports a plan-cache hit (the tree was compiled by an earlier
	// request against the same index generation).
	Cached bool `json:"cached"`
}

// handleExplain plans a match request without executing it. The request
// body is a MatchRequest; limit/order/timeout fields are accepted and
// ignored — they are run-time knobs that do not change the plan.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	var req MatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, decodeError(err))
		return
	}
	s.captureHTTP(r, &req)
	sctx, sp := s.startRequestSpan(r, &req, "serve.explain")
	s.requests.Add(1)
	start := time.Now()
	fail := func(err error) {
		s.finishRequest("explain", start, &req, nil, err)
		endRequestSpan(sp, err, nil)
		writeError(w, err)
	}
	si, release := s.acquireIndex()
	defer release()
	if si == nil {
		fail(errNotReady)
		return
	}
	p, err := s.parseParams(si.ix, &req)
	if err != nil {
		fail(err)
		return
	}
	// Planning enumerates every simple path of the query (exponential in
	// query size), so /explain runs under the same admission control and
	// request deadline as the compute endpoints — a burst of explains must
	// not starve the match traffic the pool was sized for. It is NOT subject
	// to cost-based admission: asking what a query would cost must stay
	// answerable precisely when the answer is "too much".
	ctx, cancel := context.WithTimeout(sctx, s.requestTimeout(&req))
	defer cancel()
	if err := s.acquireTraced(ctx); err != nil {
		fail(err)
		return
	}
	defer func() { <-s.sem }()
	pl, cached, perr := s.plannedFor(ctx, si, p)
	if perr != nil {
		fail(perr)
		return
	}
	s.finishRequest("explain", start, &req, nil, nil)
	endRequestSpan(sp, nil, nil)
	writeJSON(w, http.StatusOK, &ExplainResponse{Plan: pl.Tree, Cached: cached})
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	var req MatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, decodeError(err))
		return
	}
	s.captureHTTP(r, &req)
	ctx, sp := s.startRequestSpan(r, &req, "serve.match")
	s.requests.Add(1)
	start := time.Now()
	res, err := s.evaluate(ctx, &req)
	s.finishRequest("match", start, &req, res, err)
	endRequestSpan(sp, err, res)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, decodeError(err))
		return
	}
	ctx, bsp := s.startRequestSpan(r, nil, "serve.batch")
	for i := range req.Queries {
		s.captureHTTP(r, &req.Queries[i])
		req.Queries[i].traceID = bsp.TraceID()
	}
	if len(req.Queries) == 0 {
		err := badRequest("empty batch")
		endRequestSpan(bsp, err, nil)
		writeError(w, err)
		return
	}
	if len(req.Queries) > maxBatchQueries {
		err := badRequest("batch of %d exceeds the %d-query limit", len(req.Queries), maxBatchQueries)
		endRequestSpan(bsp, err, nil)
		writeError(w, err)
		return
	}
	// Fan out through at most Workers goroutines: evaluate() also acquires
	// the pool per item, so a batch respects the same admission control as
	// loose requests and one batch cannot spawn unbounded work.
	out := BatchResponse{Results: make([]BatchItem, len(req.Queries))}
	next := make(chan int)
	var wg sync.WaitGroup
	conc := s.opt.Workers
	if conc > len(req.Queries) {
		conc = len(req.Queries)
	}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.requests.Add(1)
				start := time.Now()
				res, err := s.evaluate(ctx, &req.Queries[i])
				s.finishRequest("batch", start, &req.Queries[i], res, err)
				if err != nil {
					out.Results[i] = BatchItem{Error: err.Error()}
					continue
				}
				out.Results[i] = BatchItem{MatchResponse: res}
			}
		}()
	}
	for i := range req.Queries {
		next <- i
	}
	close(next)
	wg.Wait()
	bsp.SetAttr("items", strconv.Itoa(len(req.Queries)))
	endRequestSpan(bsp, nil, nil)
	writeJSON(w, http.StatusOK, &out)
}

// HealthResponse is the body of GET /healthz (readiness) and
// GET /healthz/live (liveness). Liveness reports only ok + uptime; the
// readiness form adds the serving generation and index identity, and
// answers 503 with ready:false while the first index build/load or a
// publish swap is in flight — the signal a router health-checker keys on.
type HealthResponse struct {
	OK            bool    `json:"ok"`
	Ready         bool    `json:"ready"`
	Generation    uint64  `json:"generation"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Index         string  `json:"index,omitempty"`
	IndexEntries  uint64  `json:"index_entries,omitempty"`
	Nodes         int     `json:"nodes,omitempty"`
	Edges         int     `json:"edges,omitempty"`
	MaxLen        int     `json:"max_len,omitempty"`
	Beta          float64 `json:"beta,omitempty"`
}

// handleHealth is the readiness probe: 200 only when an index is installed
// and no swap is mid-flip, so a shard answering 200 here can serve a match
// immediately.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := &HealthResponse{
		Generation:    s.gen.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	si, release := s.acquireIndex()
	defer release()
	if si == nil || s.swapping.Load() > 0 {
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	ix := si.ix
	st := ix.Stats()
	resp.OK = true
	resp.Ready = true
	resp.Index = si.id
	resp.IndexEntries = st.Entries
	resp.Nodes = ix.Graph().NumNodes()
	resp.Edges = ix.Graph().NumEdges()
	resp.MaxLen = ix.MaxLen()
	resp.Beta = ix.Beta()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthLive is the liveness probe: 200 as soon as the process
// serves HTTP, index or not — restarting on its failure is correct,
// restarting on readiness failure is not.
func (s *Server) handleHealthLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &HealthResponse{
		OK:            true,
		Ready:         s.Ready(),
		Generation:    s.gen.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// Ready reports whether the server has an installed index and no swap in
// flight.
func (s *Server) Ready() bool {
	s.mu.RLock()
	ready := s.cur != nil
	s.mu.RUnlock()
	return ready && s.swapping.Load() == 0
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.stats()
	phits, pmisses, psize := s.plans.stats()
	cst := s.candCacheStats()
	si, release := s.acquireIndex()
	defer release()
	var indexEntries uint64
	if si != nil {
		indexEntries = si.ix.Stats().Entries
	}
	resp := &StatsResponse{
		Requests:          s.requests.Load(),
		Succeeded:         s.succeeded.Load(),
		Failed:            s.failed.Load(),
		Canceled:          s.canceled.Load(),
		Rejected:          s.rejected.Load(),
		CostRejected:      s.costRejected.Load(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheEntries:      size,
		PlanCacheHits:     phits,
		PlanCacheMisses:   pmisses,
		PlanCacheEntries:  psize,
		CandCacheHits:     cst.Hits,
		CandCacheMisses:   cst.Misses,
		CandCacheBypassed: cst.Bypassed,
		CandCacheEntries:  cst.Entries,
		Workers:           s.opt.Workers,
		IndexEntries:      indexEntries,
		Ingested:          s.ingested.Load(),
		IngestFailed:      s.ingestFailed.Load(),
	}
	if db := s.liveDB(); db != nil {
		st := db.Status()
		resp.Live = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// matchParams is one parsed and validated match request, shared by the
// buffered and streaming paths.
type matchParams struct {
	q         *query.Query
	canonical string // canonicalized query text (parse → Format), cache key material
	alpha     float64
	strat     core.Strategy
	stratName string
	order     core.ResultOrder
	orderName string
	limit     int
}

// options maps the parsed request onto the core options for one evaluation
// against one served generation (whose calibration receives the feedback
// and whose candidate cache serves repeated query shapes).
func (p *matchParams) options(opt *Options, si *servedIndex) core.Options {
	return core.Options{
		Alpha:       p.alpha,
		Strategy:    p.strat,
		Workers:     opt.MatchWorkers,
		Limit:       p.limit,
		Order:       p.order,
		Parallelism: opt.MatchParallelism,
		Calibration: si.calib,
		CandCache:   si.cands,
	}
}

// requestTimeout derives one request's deadline: the server cap, lowerable
// (never raisable) by the request's timeout_ms and by the router's
// propagated X-Peg-Deadline-Ms budget.
func (s *Server) requestTimeout(req *MatchRequest) time.Duration {
	timeout := s.opt.RequestTimeout
	lower := func(ms int64) {
		if ms <= 0 {
			return
		}
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	lower(req.TimeoutMillis)
	lower(req.deadlineMillis)
	return timeout
}

// plannedFor returns the compiled plan for the request against one served
// generation, consulting the plan cache first: a hit skips decomposition,
// cover selection, and cost-model evaluation entirely. The boolean reports
// whether the plan came from the cache. Concurrent identical cold requests
// may each plan (no single-flight here, deliberately): planning is tens of
// microseconds, idempotent, and already bounded by the worker pool, so
// collapsing it would buy little at the cost of another synchronization
// point — unlike match evaluation, which the flightGroup does collapse.
func (s *Server) plannedFor(ctx context.Context, si *servedIndex, p *matchParams) (*plan.Plan, bool, error) {
	key := planKey{
		indexID:  si.id,
		query:    p.canonical,
		alpha:    math.Float64bits(p.alpha),
		strategy: p.stratName,
	}
	traced := s.opt.Tracer != nil && trace.SpanFromContext(ctx).Sampled()
	t0 := time.Now()
	if pl, ok := s.plans.get(key); ok {
		if traced {
			s.opt.Tracer.RecordSpan(ctx, "plan-cache", t0, time.Since(t0), map[string]string{"result": "hit"})
		}
		return pl, true, nil
	}
	if traced {
		s.opt.Tracer.RecordSpan(ctx, "plan-cache", t0, time.Since(t0), map[string]string{"result": "miss"})
	}
	t0 = time.Now()
	pl, err := core.Prepare(ctx, si.ix, p.q, p.options(&s.opt, si))
	if traced {
		s.opt.Tracer.RecordSpan(ctx, "plan", t0, time.Since(t0), nil)
	}
	if err != nil {
		return nil, false, matchError(err)
	}
	s.plans.put(key, pl)
	return pl, false, nil
}

// acquireTraced takes a worker slot like acquire, recording the wait as an
// "admission" child span of the request (queue time is exactly what a
// saturated-pool investigation needs to see per trace).
func (s *Server) acquireTraced(ctx context.Context) error {
	t0 := time.Now()
	err := s.acquire(ctx)
	if s.opt.Tracer != nil && trace.SpanFromContext(ctx).Sampled() {
		s.opt.Tracer.RecordSpan(ctx, "admission", t0, time.Since(t0),
			map[string]string{"outcome": outcomeOf(err)})
	}
	return err
}

// stageSpans converts the executor's already-timed stage rows into child
// spans: each row carries its start offset from the run's beginning, so
// the spans reproduce the exact execution timeline without the executor
// knowing tracing exists.
func (s *Server) stageSpans(ctx context.Context, execStart time.Time, stages []plan.StageStats) {
	if s.opt.Tracer == nil || !trace.SpanFromContext(ctx).Sampled() {
		return
	}
	for i := range stages {
		sg := &stages[i]
		attrs := map[string]string{
			"obs_rows": strconv.FormatFloat(sg.ObsRows, 'g', -1, 64),
		}
		if sg.Pruned != 0 {
			attrs["pruned"] = strconv.FormatInt(sg.Pruned, 10)
		}
		s.opt.Tracer.RecordSpan(ctx, "stage."+sg.Name,
			execStart.Add(time.Duration(sg.StartMicros*1e3)),
			time.Duration(sg.Micros*1e3), attrs)
	}
}

// parseParams validates one request against the served index's alphabet.
func (s *Server) parseParams(ix pathindex.Reader, req *MatchRequest) (*matchParams, error) {
	p := &matchParams{alpha: req.Alpha, limit: req.Limit}
	if p.alpha == 0 {
		p.alpha = s.opt.DefaultAlpha
	}
	if p.alpha < 0 || p.alpha > 1 {
		return nil, badRequest("alpha %v out of range (0,1]", p.alpha)
	}
	if p.limit < 0 {
		return nil, badRequest("negative limit %d", p.limit)
	}
	var err error
	if p.strat, p.stratName, err = ParseStrategy(req.Strategy); err != nil {
		return nil, badRequest("%v", err)
	}
	if p.order, p.orderName, err = ParseOrder(req.Order); err != nil {
		return nil, badRequest("%v", err)
	}
	if p.q, err = query.ParseString(req.Query, ix.Graph().Alphabet()); err != nil {
		return nil, badRequest("%v", err)
	}
	if err := p.q.Validate(ix.Graph().Alphabet()); err != nil {
		return nil, badRequest("%v", err)
	}
	p.canonical = p.q.Format(ix.Graph().Alphabet())
	return p, nil
}

// evaluate runs one match request end to end: canonicalize, consult the
// cache, acquire a worker slot, run core.Match under the request deadline.
func (s *Server) evaluate(ctx context.Context, req *MatchRequest) (*MatchResponse, error) {
	si, release := s.acquireIndex()
	defer release()
	if si == nil {
		return nil, errNotReady
	}
	ix, indexID := si.ix, si.id
	p, err := s.parseParams(ix, req)
	if err != nil {
		return nil, err
	}

	key := cacheKey{
		indexID:  indexID,
		query:    p.canonical,
		alpha:    math.Float64bits(p.alpha),
		strategy: p.stratName,
		order:    p.orderName,
		limit:    p.limit,
	}
	if res, ok := s.cache.get(key); ok {
		hit := *res
		hit.Cached = true
		return &hit, nil
	}

	// The deadline starts before the queue so RequestTimeout caps the whole
	// wall clock — a request stuck behind a saturated pool times out rather
	// than hanging for queue wait plus a full match budget.
	ctx, cancel := context.WithTimeout(ctx, s.requestTimeout(req))
	defer cancel()

	// Collapse concurrent identical cold requests: one leader computes
	// under a worker slot, followers wait on its result without consuming
	// slots. A follower whose leader fails (that leader's timeout or
	// disconnect must not speak for anyone else) retries and may become
	// the next leader.
	for {
		call, leader := s.flight.join(key)
		if leader {
			// Recheck the cache: a previous leader may have finished (and
			// cached) between our miss above and this join, and a second
			// cold evaluation of the same key must not happen.
			res, cached := s.cache.get(key)
			var err error
			if cached {
				hit := *res
				hit.Cached = true
				res = &hit
			} else {
				res, err = s.compute(ctx, si, p, key)
			}
			call.res, call.err = res, err
			s.flight.forget(key)
			close(call.done)
			return res, err
		}
		select {
		case <-call.done:
			if call.err == nil {
				hit := *call.res
				hit.Cached = true
				return &hit, nil
			}
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, &httpError{status: http.StatusGatewayTimeout, msg: "timed out waiting for an identical in-flight query"}
			}
			return nil, &httpError{status: 499, msg: "client closed request"}
		}
	}
}

// compute runs one match evaluation under a worker-pool slot and caches the
// response: plan (or reuse the cached plan), execute, convert.
func (s *Server) compute(ctx context.Context, si *servedIndex, p *matchParams, key cacheKey) (*MatchResponse, error) {
	if err := s.acquireTraced(ctx); err != nil {
		return nil, err
	}
	defer func() { <-s.sem }()

	pl, planCached, err := s.plannedFor(ctx, si, p)
	if err != nil {
		return nil, err
	}
	// Cost-based admission sits between planning and execution: the request
	// already got here past the result cache, so admitting it means paying
	// the predicted cost for real.
	if err := s.admit(pl); err != nil {
		return nil, err
	}
	execStart := time.Now()
	result, err := core.MatchPlan(ctx, si.ix, pl, p.options(&s.opt, si))
	if err != nil {
		return nil, matchError(err)
	}
	s.stageSpans(ctx, execStart, result.Stats.Stages)
	if !planCached {
		// Planning ran in this request; bill it in the stats — Total
		// included, so the stage times keep summing within it (a plan-cache
		// hit reports zero plan/decompose time, which is the point).
		result.Stats.PlanTime = pl.PlanTime
		result.Stats.DecomposeTime = pl.DecomposeTime
		result.Stats.Total += pl.PlanTime
	}

	res := &MatchResponse{
		NumMatches: len(result.Matches),
		Matches:    make([]MatchEntry, len(result.Matches)),
		Alpha:      p.alpha,
		Strategy:   p.stratName,
		PlanCached: planCached,
		Truncated:  result.Stats.Truncated,
		Stats:      statsJSON(result.Stats),
	}
	for i, m := range result.Matches {
		res.Matches[i] = matchEntry(m)
	}
	s.cache.put(key, res)
	return res, nil
}

// matchError maps an error out of the match pipeline to an HTTP status. An
// options-validation failure is the request's own fault and maps to 400;
// after that, anything that is not the request's deadline or disconnect is
// a server fault (e.g. index I/O).
func matchError(err error) *httpError {
	var he *httpError
	if errors.As(err, &he) {
		return he
	}
	if oe, ok := core.IsOptionsError(err); ok {
		return badRequest("%v", oe)
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &httpError{status: http.StatusGatewayTimeout, msg: "match timed out"}
	case errors.Is(err, context.Canceled):
		return &httpError{status: 499, msg: "client closed request"}
	default:
		return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}

// matchEntry converts one core match into its JSON form.
func matchEntry(m join.Match) MatchEntry {
	e := MatchEntry{Mapping: make([]uint32, len(m.Mapping)), Pr: m.Pr(), Prle: m.Prle, Prn: m.Prn}
	for j, v := range m.Mapping {
		e.Mapping[j] = uint32(v)
	}
	return e
}

// statsJSON converts per-run statistics into their JSON form.
func statsJSON(st core.Stats) *MatchStats {
	return &MatchStats{
		NumPaths:        st.NumPaths,
		SSFinal:         st.SSFinal,
		TotalMicros:     plan.Micros(st.Total),
		PlanMicros:      plan.Micros(st.PlanTime),
		DecomposeMicros: plan.Micros(st.DecomposeTime),
		CandidateMicros: plan.Micros(st.CandidateTime),
		ReduceMicros:    plan.Micros(st.ReduceTime),
		JoinMicros:      plan.Micros(st.JoinTime),
		Plan:            st.Plan,
		Stages:          st.Stages,
		PlannedOrder:    st.PlannedOrder,
		ExecOrder:       st.ExecOrder,
	}
}

// acquire takes a worker slot, waiting while the queue has room and the
// request is still live; it sheds load once QueueDepth requests are already
// waiting. The shed is counted by finishRequest (via outcomeOf), not here,
// so every terminal state settles through exactly one code path.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.waiters.Add(1) > int64(s.opt.QueueDepth) {
		s.waiters.Add(-1)
		return errSaturated
	}
	defer s.waiters.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return &httpError{status: http.StatusGatewayTimeout, msg: "timed out waiting for a worker"}
		}
		return &httpError{status: 499, msg: "client closed request"}
	}
}

// admit is the cost-based admission check, run after planning and before
// execution: the plan's calibrated total cost estimate is compared against
// the configured budget, and a predicted-expensive query is turned away with
// 429 + Retry-After without consuming executor time. Every planned execution
// feeds the cost histogram, so the exported distribution shows where the
// budget sits relative to real traffic.
func (s *Server) admit(pl *plan.Plan) error {
	if pl.Tree == nil {
		return nil
	}
	cost := pl.Tree.Cost.Total
	s.met.planCost.Observe(cost)
	if s.opt.MaxPlanCost > 0 && cost > s.opt.MaxPlanCost {
		return &httpError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("admission: predicted plan cost %.0f exceeds the server budget %.0f", cost, s.opt.MaxPlanCost),
			retryAfter: 1,
		}
	}
	return nil
}

// outcomeOf classifies a request's terminal error into its accounting class.
// A client that went away (499 anywhere in the pipeline, or a bare context
// cancellation) is canceled, not failed: the server did nothing wrong, and
// billing disconnects as failures poisons both alerting and the
// succeeded/failed ratio.
func outcomeOf(err error) string {
	if err == nil {
		return outcomeOK
	}
	var he *httpError
	if errors.As(err, &he) {
		switch {
		case he == errSaturated:
			return outcomeShed
		case he.status == http.StatusTooManyRequests:
			return outcomeCostRejected
		case he.status == 499:
			return outcomeCanceled
		}
		return outcomeFailed
	}
	if errors.Is(err, context.Canceled) {
		return outcomeCanceled
	}
	return outcomeFailed
}

// finishRequest settles the accounting for one request previously counted in
// s.requests: exactly one outcome counter, the endpoint latency histogram,
// the per-stage histograms for fresh (non-cached) executions, and — when
// tracing selects this request — one NDJSON trace line. Handlers call it on
// every terminal path, so the requests = Σ outcomes invariant cannot drift.
func (s *Server) finishRequest(endpoint string, start time.Time, req *MatchRequest, res *MatchResponse, err error) {
	outcome := outcomeOf(err)
	switch outcome {
	case outcomeOK:
		s.succeeded.Add(1)
	case outcomeCanceled:
		s.canceled.Add(1)
	case outcomeShed:
		s.rejected.Add(1)
	case outcomeCostRejected:
		s.costRejected.Add(1)
	default:
		s.failed.Add(1)
	}
	elapsed := time.Since(start)
	s.met.requests.WithLabelValues(endpoint, outcome).Inc()
	s.met.latency.WithLabelValue(endpoint).Observe(elapsed.Seconds())
	if res != nil && !res.Cached && res.Stats != nil {
		s.met.observeStages(res.Stats)
	}
	if s.opt.TraceWriter != nil && (s.opt.TraceAll || (req != nil && req.Trace)) {
		s.traceRequest(endpoint, elapsed, req, res, err, outcome)
	}
}

// traceEvent is one NDJSON line of the structured per-query trace: the
// request's shape, its terminal outcome, and (for executed matches) the full
// stage breakdown — enough to replay or explain any individual slow query
// after the fact.
type traceEvent struct {
	Time           string      `json:"ts"`
	TraceID        string      `json:"trace_id,omitempty"`
	RequestID      string      `json:"request_id,omitempty"`
	Endpoint       string      `json:"endpoint"`
	Outcome        string      `json:"outcome"`
	DurationMicros float64     `json:"duration_us"`
	Query          string      `json:"query,omitempty"`
	Alpha          float64     `json:"alpha,omitempty"`
	Strategy       string      `json:"strategy,omitempty"`
	Order          string      `json:"order,omitempty"`
	Limit          int         `json:"limit,omitempty"`
	Error          string      `json:"error,omitempty"`
	Matches        int         `json:"matches,omitempty"`
	Cached         bool        `json:"cached,omitempty"`
	PlanCached     bool        `json:"plan_cached,omitempty"`
	Truncated      bool        `json:"truncated,omitempty"`
	Stats          *MatchStats `json:"stats,omitempty"`
}

func (s *Server) traceRequest(endpoint string, elapsed time.Duration, req *MatchRequest, res *MatchResponse, err error, outcome string) {
	ev := traceEvent{
		Time:           time.Now().UTC().Format(time.RFC3339Nano),
		Endpoint:       endpoint,
		Outcome:        outcome,
		DurationMicros: plan.Micros(elapsed),
	}
	if req != nil {
		ev.TraceID = req.traceID
		ev.RequestID = req.requestID
		ev.Query, ev.Alpha, ev.Strategy, ev.Order, ev.Limit =
			req.Query, req.Alpha, req.Strategy, req.Order, req.Limit
	}
	if err != nil {
		ev.Error = err.Error()
	}
	if res != nil {
		ev.Matches, ev.Cached, ev.PlanCached, ev.Truncated, ev.Stats =
			res.NumMatches, res.Cached, res.PlanCached, res.Truncated, res.Stats
	}
	line, merr := json.Marshal(&ev)
	if merr != nil {
		return
	}
	line = append(line, '\n')
	s.traceMu.Lock()
	_, _ = s.opt.TraceWriter.Write(line)
	s.traceMu.Unlock()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	if !errors.As(err, &he) {
		he = &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	if he.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
	}
	writeJSON(w, he.status, map[string]string{"error": he.msg})
}

// ParseStrategy maps a request strategy name to the core constant, returning
// the normalized name. An empty name selects the optimized strategy.
func ParseStrategy(name string) (core.Strategy, string, error) {
	switch name {
	case "", "optimized":
		return core.StrategyOptimized, "optimized", nil
	case "random-decomp":
		return core.StrategyRandomDecomp, "random-decomp", nil
	case "no-ss-reduction":
		return core.StrategyNoSSReduction, "no-ss-reduction", nil
	}
	return 0, "", fmt.Errorf("unknown strategy %q", name)
}

// ParseOrder maps a request order name to the core constant, returning the
// normalized name. An empty name selects emission order.
func ParseOrder(name string) (core.ResultOrder, string, error) {
	switch name {
	case "", "emit":
		return core.OrderEmit, "emit", nil
	case "prob":
		return core.OrderByProb, "prob", nil
	}
	return 0, "", fmt.Errorf("unknown order %q (want \"emit\" or \"prob\")", name)
}
