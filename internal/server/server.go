// Package server exposes the online matching phase as a concurrent HTTP/JSON
// service: the query-serving subsystem in front of one opened (read-only)
// path index. Every request parses the text query DSL, runs core.Match, and
// streams the matches back as JSON.
//
// The design leans on the read path being lock-free for concurrent callers
// (see pathindex.Index): requests never contend on the index itself, only on
// the bounded worker pool that caps how many match evaluations run at once,
// and on the LRU result cache that short-circuits repeated queries entirely.
//
// Endpoints:
//
//	POST /match        one MatchRequest  → MatchResponse
//	POST /match/batch  BatchRequest      → BatchResponse (items evaluated
//	                                       concurrently through the pool)
//	GET  /healthz      liveness + index identity
//	GET  /stats        serving counters (requests, cache hits, rejections)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pathindex"
	"repro/internal/query"
)

// Options configures a Server.
type Options struct {
	// Workers bounds how many match evaluations run concurrently
	// (0 = GOMAXPROCS). This is the admission-control knob: the index itself
	// imposes no reader limit.
	Workers int
	// QueueDepth is how many requests may wait for a worker slot before the
	// server sheds load with 503 (0 = 4×Workers).
	QueueDepth int
	// CacheEntries sizes the LRU result cache (0 = 1024, negative disables).
	CacheEntries int
	// RequestTimeout caps per-request wall clock (0 = 30s). A request may
	// lower it via its timeout_ms field but never raise it.
	RequestTimeout time.Duration
	// DefaultAlpha is used when a request omits alpha (0 = 0.25).
	DefaultAlpha float64
	// MatchWorkers is the intra-query parallelism handed to core.Match
	// (0 = 1; the pool already provides inter-query parallelism, so
	// oversubscribing cores per request is opt-in).
	MatchWorkers int
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = defaultWorkers()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 1024
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DefaultAlpha <= 0 || o.DefaultAlpha > 1 {
		o.DefaultAlpha = 0.25
	}
	if o.MatchWorkers <= 0 {
		o.MatchWorkers = 1
	}
}

// servedIndex is one generation of the served index with its in-flight
// reference count, so a swap can drain readers before the old index is
// closed.
type servedIndex struct {
	ix   *pathindex.Index
	id   string
	refs atomic.Int64
}

// Server serves match queries over one opened index. Safe for concurrent
// use; the index may be hot-swapped with SetIndex.
type Server struct {
	opt Options

	mu  sync.RWMutex
	cur *servedIndex
	gen atomic.Uint64

	sem     chan struct{}
	waiters atomic.Int64
	cache   *resultCache
	flight  flightGroup

	requests  atomic.Uint64
	rejected  atomic.Uint64
	failed    atomic.Uint64
	succeeded atomic.Uint64
}

// New creates a server over an opened index.
func New(ix *pathindex.Index, opt Options) *Server {
	opt.normalize()
	s := &Server{
		opt:   opt,
		sem:   make(chan struct{}, opt.Workers),
		cache: newResultCache(opt.CacheEntries),
	}
	s.setIndex(ix)
	return s
}

// SetIndex atomically replaces the served index (e.g. after an offline
// rebuild), blocks until every in-flight request on the previous index has
// finished, and returns that previous index — at which point it is safe to
// Close. Cached results of the old index are keyed by its identity and
// simply stop matching, aging out of the LRU.
func (s *Server) SetIndex(ix *pathindex.Index) *pathindex.Index {
	old := s.setIndex(ix)
	if old == nil {
		return nil
	}
	// New requests can no longer reference old (acquireIndex reads s.cur
	// under the lock), so the count only drains.
	for old.refs.Load() > 0 {
		time.Sleep(time.Millisecond)
	}
	return old.ix
}

func (s *Server) setIndex(ix *pathindex.Index) *servedIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur
	// A monotonically increasing generation makes the id collision-free
	// across swaps (a %p pointer could be reused after GC); the entry count
	// is informational.
	s.cur = &servedIndex{
		ix: ix,
		id: fmt.Sprintf("gen%d#%d", s.gen.Add(1), ix.Stats().Entries),
	}
	return old
}

// acquireIndex pins the current index generation; callers must call
// release() when done with it.
func (s *Server) acquireIndex() (si *servedIndex, release func()) {
	s.mu.RLock()
	si = s.cur
	si.refs.Add(1)
	s.mu.RUnlock()
	return si, func() { si.refs.Add(-1) }
}

// MatchRequest is the JSON body of /match and one item of /match/batch.
type MatchRequest struct {
	// Query is the text DSL ("node NAME LABEL" / "edge A B" lines).
	Query string `json:"query"`
	// Alpha is the probability threshold α (0 = server default).
	Alpha float64 `json:"alpha,omitempty"`
	// Strategy is "optimized" (default), "random-decomp", or
	// "no-ss-reduction".
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMillis optionally lowers the server's request timeout.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// MatchEntry is one probabilistic match in a response.
type MatchEntry struct {
	// Mapping lists the entity id matched to each query node, in query-node
	// order.
	Mapping []uint32 `json:"mapping"`
	Pr      float64  `json:"pr"`
	Prle    float64  `json:"prle"`
	Prn     float64  `json:"prn"`
}

// MatchStats is the per-request statistics summary.
type MatchStats struct {
	NumPaths        int     `json:"num_paths"`
	SSFinal         float64 `json:"search_space_final"`
	TotalMicros     int64   `json:"total_us"`
	DecomposeMicros int64   `json:"decompose_us"`
	CandidateMicros int64   `json:"candidates_us"`
	ReduceMicros    int64   `json:"reduce_us"`
	JoinMicros      int64   `json:"join_us"`
}

// MatchResponse is the JSON body answering one match request.
type MatchResponse struct {
	NumMatches int          `json:"num_matches"`
	Matches    []MatchEntry `json:"matches"`
	Alpha      float64      `json:"alpha"`
	Strategy   string       `json:"strategy"`
	Cached     bool         `json:"cached"`
	Stats      *MatchStats  `json:"stats,omitempty"`
}

// BatchRequest is the JSON body of /match/batch.
type BatchRequest struct {
	Queries []MatchRequest `json:"queries"`
}

// BatchItem is one result of a batch: a response or an error, never both.
type BatchItem struct {
	*MatchResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse answers /match/batch, results aligned with the request.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// StatsResponse answers /stats.
type StatsResponse struct {
	Requests     uint64 `json:"requests"`
	Succeeded    uint64 `json:"succeeded"`
	Failed       uint64 `json:"failed"`
	Rejected     uint64 `json:"rejected"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	Workers      int    `json:"workers"`
	IndexEntries uint64 `json:"index_entries"`
}

// httpError is an error with an HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// decodeError maps a request-body decode failure: size-limit violations get
// 413 so clients can tell "split the batch" from "fix the JSON".
func decodeError(err error) *httpError {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &httpError{http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
	}
	return badRequest("malformed request: %v", err)
}

var errSaturated = &httpError{
	status: http.StatusServiceUnavailable,
	msg:    "server saturated: worker pool and queue full",
}

// maxBodyBytes caps request bodies; a batch of maximal queries stays well
// under it.
const maxBodyBytes = 8 << 20

// maxBatchQueries caps one /match/batch request; larger workloads must
// paginate so a single request cannot monopolize the pool.
const maxBatchQueries = 256

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/match", s.handleMatch)
	mux.HandleFunc("/match/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	var req MatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, decodeError(err))
		return
	}
	s.requests.Add(1)
	res, err := s.evaluate(r.Context(), &req)
	if err != nil {
		s.countFailure(err)
		writeError(w, err)
		return
	}
	s.succeeded.Add(1)
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, decodeError(err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, badRequest("empty batch"))
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, badRequest("batch of %d exceeds the %d-query limit", len(req.Queries), maxBatchQueries))
		return
	}
	// Fan out through at most Workers goroutines: evaluate() also acquires
	// the pool per item, so a batch respects the same admission control as
	// loose requests and one batch cannot spawn unbounded work.
	out := BatchResponse{Results: make([]BatchItem, len(req.Queries))}
	next := make(chan int)
	var wg sync.WaitGroup
	conc := s.opt.Workers
	if conc > len(req.Queries) {
		conc = len(req.Queries)
	}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.requests.Add(1)
				res, err := s.evaluate(r.Context(), &req.Queries[i])
				if err != nil {
					s.countFailure(err)
					out.Results[i] = BatchItem{Error: err.Error()}
					continue
				}
				s.succeeded.Add(1)
				out.Results[i] = BatchItem{MatchResponse: res}
			}
		}()
	}
	for i := range req.Queries {
		next <- i
	}
	close(next)
	wg.Wait()
	writeJSON(w, http.StatusOK, &out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	si, release := s.acquireIndex()
	defer release()
	ix, id := si.ix, si.id
	st := ix.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            true,
		"index":         id,
		"index_entries": st.Entries,
		"nodes":         ix.Graph().NumNodes(),
		"edges":         ix.Graph().NumEdges(),
		"max_len":       ix.MaxLen(),
		"beta":          ix.Beta(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.stats()
	si, release := s.acquireIndex()
	defer release()
	ix := si.ix
	writeJSON(w, http.StatusOK, &StatsResponse{
		Requests:     s.requests.Load(),
		Succeeded:    s.succeeded.Load(),
		Failed:       s.failed.Load(),
		Rejected:     s.rejected.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: size,
		Workers:      s.opt.Workers,
		IndexEntries: ix.Stats().Entries,
	})
}

// evaluate runs one match request end to end: canonicalize, consult the
// cache, acquire a worker slot, run core.Match under the request deadline.
func (s *Server) evaluate(ctx context.Context, req *MatchRequest) (*MatchResponse, error) {
	si, release := s.acquireIndex()
	defer release()
	ix, indexID := si.ix, si.id
	alpha := req.Alpha
	if alpha == 0 {
		alpha = s.opt.DefaultAlpha
	}
	if alpha < 0 || alpha > 1 {
		return nil, badRequest("alpha %v out of range (0,1]", alpha)
	}
	strat, stratName, err := ParseStrategy(req.Strategy)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	q, err := query.ParseString(req.Query, ix.Graph().Alphabet())
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if err := q.Validate(ix.Graph().Alphabet()); err != nil {
		return nil, badRequest("%v", err)
	}

	key := cacheKey{
		indexID:  indexID,
		query:    q.Format(ix.Graph().Alphabet()),
		alpha:    math.Float64bits(alpha),
		strategy: stratName,
	}
	if res, ok := s.cache.get(key); ok {
		hit := *res
		hit.Cached = true
		return &hit, nil
	}

	// The deadline starts before the queue so RequestTimeout caps the whole
	// wall clock — a request stuck behind a saturated pool times out rather
	// than hanging for queue wait plus a full match budget.
	timeout := s.opt.RequestTimeout
	if req.TimeoutMillis > 0 {
		if d := time.Duration(req.TimeoutMillis) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Collapse concurrent identical cold requests: one leader computes
	// under a worker slot, followers wait on its result without consuming
	// slots. A follower whose leader fails (that leader's timeout or
	// disconnect must not speak for anyone else) retries and may become
	// the next leader.
	for {
		call, leader := s.flight.join(key)
		if leader {
			// Recheck the cache: a previous leader may have finished (and
			// cached) between our miss above and this join, and a second
			// cold evaluation of the same key must not happen.
			res, cached := s.cache.get(key)
			var err error
			if cached {
				hit := *res
				hit.Cached = true
				res = &hit
			} else {
				res, err = s.compute(ctx, ix, q, key, alpha, strat, stratName)
			}
			call.res, call.err = res, err
			s.flight.forget(key)
			close(call.done)
			return res, err
		}
		select {
		case <-call.done:
			if call.err == nil {
				hit := *call.res
				hit.Cached = true
				return &hit, nil
			}
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, &httpError{http.StatusGatewayTimeout, "timed out waiting for an identical in-flight query"}
			}
			return nil, &httpError{499, "client closed request"}
		}
	}
}

// compute runs one match evaluation under a worker-pool slot and caches the
// response.
func (s *Server) compute(ctx context.Context, ix *pathindex.Index, q *query.Query, key cacheKey, alpha float64, strat core.Strategy, stratName string) (*MatchResponse, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer func() { <-s.sem }()

	result, err := core.Match(ctx, ix, q, core.Options{
		Alpha:    alpha,
		Strategy: strat,
		Workers:  s.opt.MatchWorkers,
	})
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return nil, &httpError{http.StatusGatewayTimeout, "match timed out"}
		case errors.Is(err, context.Canceled):
			return nil, &httpError{499, "client closed request"}
		default:
			// The request was already parsed and validated above, so an
			// error out of the match pipeline is a server fault (e.g. index
			// I/O), not a client one.
			return nil, &httpError{http.StatusInternalServerError, err.Error()}
		}
	}

	res := &MatchResponse{
		NumMatches: len(result.Matches),
		Matches:    make([]MatchEntry, len(result.Matches)),
		Alpha:      alpha,
		Strategy:   stratName,
		Stats: &MatchStats{
			NumPaths:        result.Stats.NumPaths,
			SSFinal:         result.Stats.SSFinal,
			TotalMicros:     result.Stats.Total.Microseconds(),
			DecomposeMicros: result.Stats.DecomposeTime.Microseconds(),
			CandidateMicros: result.Stats.CandidateTime.Microseconds(),
			ReduceMicros:    result.Stats.ReduceTime.Microseconds(),
			JoinMicros:      result.Stats.JoinTime.Microseconds(),
		},
	}
	for i, m := range result.Matches {
		e := MatchEntry{Mapping: make([]uint32, len(m.Mapping)), Pr: m.Pr(), Prle: m.Prle, Prn: m.Prn}
		for j, v := range m.Mapping {
			e.Mapping[j] = uint32(v)
		}
		res.Matches[i] = e
	}
	s.cache.put(key, res)
	return res, nil
}

// acquire takes a worker slot, waiting while the queue has room and the
// request is still live; it sheds load once QueueDepth requests are already
// waiting.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.waiters.Add(1) > int64(s.opt.QueueDepth) {
		s.waiters.Add(-1)
		s.rejected.Add(1)
		return errSaturated
	}
	defer s.waiters.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return &httpError{http.StatusGatewayTimeout, "timed out waiting for a worker"}
		}
		return &httpError{499, "client closed request"}
	}
}

func (s *Server) countFailure(err error) {
	var he *httpError
	if errors.As(err, &he) && he == errSaturated {
		return // already counted in acquire
	}
	s.failed.Add(1)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	if !errors.As(err, &he) {
		he = &httpError{http.StatusInternalServerError, err.Error()}
	}
	writeJSON(w, he.status, map[string]string{"error": he.msg})
}

// ParseStrategy maps a request strategy name to the core constant, returning
// the normalized name. An empty name selects the optimized strategy.
func ParseStrategy(name string) (core.Strategy, string, error) {
	switch name {
	case "", "optimized":
		return core.StrategyOptimized, "optimized", nil
	case "random-decomp":
		return core.StrategyRandomDecomp, "random-decomp", nil
	case "no-ss-reduction":
		return core.StrategyNoSSReduction, "no-ss-reduction", nil
	}
	return 0, "", fmt.Errorf("unknown strategy %q", name)
}
