package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/fixtures"
)

func streamOnce(t *testing.T, url string) string {
	t.Helper()
	body, _ := json.Marshal(MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha})
	resp, err := http.Post(url+"/match/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match/stream status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	// Keep only the match lines: the done summary carries wall-clock
	// timings, which legitimately differ between runs (the CI smoke
	// applies the same jq filter before diffing).
	var matches []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, `{"match"`) {
			matches = append(matches, line)
		}
	}
	return strings.Join(matches, "\n")
}

// TestCandCacheServesRepeatShapes: the same query twice over the streaming
// endpoint (which bypasses the result cache) answers byte-identically, with
// the second evaluation served from the candidate cache — the serving-tier
// contract the CI smoke asserts through the real binary.
func TestCandCacheServesRepeatShapes(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 2, MatchWorkers: 2})

	first := streamOnce(t, ts.URL)
	second := streamOnce(t, ts.URL)
	if first != second {
		t.Fatalf("cache-served stream differs:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(first, `"match"`) {
		t.Fatalf("stream matched nothing: %s", first)
	}
	cst := s.candCacheStats()
	if cst.Hits == 0 {
		t.Fatalf("no candidate-cache hits after a repeat shape: %+v", cst)
	}
	if cst.Misses == 0 || cst.Entries == 0 {
		t.Fatalf("cold run did not populate the cache: %+v", cst)
	}

	// The counters surface on /stats.
	resp, body := postJSON(t, ts.URL+"/stats", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.CandCacheHits != cst.Hits || st.CandCacheEntries == 0 {
		t.Fatalf("/stats cand-cache counters: %+v", st)
	}
}

// TestCandCacheDisabled: a negative CandCacheSize turns the cache off
// without touching the match path.
func TestCandCacheDisabled(t *testing.T) {
	s, ts := testServer(t, Options{CandCacheSize: -1})
	if streamOnce(t, ts.URL) != streamOnce(t, ts.URL) {
		t.Fatal("repeat stream differs with cache disabled")
	}
	if cst := s.candCacheStats(); cst.Hits != 0 || cst.Misses != 0 || cst.Entries != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", cst)
	}
}

// TestCandCacheStressLiveSwap is the -race stress of the satellite: parallel
// pre-join evaluations (MatchWorkers > 1) race live ingest batches, each of
// which publishes a new generation — retiring the old candidate cache and
// folding its counters into the monotonic bases — while dirty views bypass
// caching entirely. The assertions are (1) no request ever fails, (2) the
// final post-publish answer reflects the last write, and (3) the folded
// cache counters never go backwards.
func TestCandCacheStressLiveSwap(t *testing.T) {
	s, _, ts := liveServer(t)

	const (
		queryWorkers = 4
		queriesEach  = 25
		ingests      = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, queryWorkers*queriesEach+ingests)
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				body, _ := json.Marshal(MatchRequest{Query: motivatingQuerySrc, Alpha: fixtures.MotivatingAlpha})
				resp, err := http.Post(ts.URL+"/match", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("match status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ingests; i++ {
			// Alternate the {r3,r4} linkage probability; every accepted batch
			// publishes a fresh generation (new candidate cache).
			p := 0.8
			if i%2 == 0 {
				p = 0.5
			}
			resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson",
				strings.NewReader(fmt.Sprintf(`{"op":"set-linkage","members":[2,3],"p":%v}`, p)))
			if err != nil {
				errs <- err
				continue
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("ingest status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cst := s.candCacheStats()
	// Re-reading after the storm must never observe a counter reset.
	if again := s.candCacheStats(); again.Hits < cst.Hits || again.Misses < cst.Misses {
		t.Fatalf("cache counters went backwards: %+v then %+v", cst, again)
	}
	// The final ingest set p=0.8 (i=19 odd): the original match probability
	// holds, and a fresh query must succeed against the last generation.
	r := matchOnce(t, ts.URL, fixtures.MotivatingAlpha)
	if r.NumMatches != 1 || abs(r.Matches[0].Pr-0.2025) > 1e-9 {
		t.Fatalf("post-stress match: %+v", r)
	}
}
