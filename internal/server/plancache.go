package server

// planKey identifies one cacheable query plan. Unlike the result cache the
// key carries no limit/order: those are run-time knobs that do not change
// which plan is chosen, so a top-K page request and a full collect share one
// cached plan. indexID ties entries to the served index generation —
// swapping the index changes the id, which orphans (and eventually evicts)
// all stale plans, exactly like the result cache.
//
// The cache itself is the shared lruCache (see cache.go) instantiated at
// [planKey, *plan.Plan]: plans are immutable after planning, so hits hand
// the same *plan.Plan to any number of concurrent executions, and a repeat
// query skips candidate path enumeration, cover selection, and cost-model
// evaluation entirely.
type planKey struct {
	indexID  string
	query    string // canonicalized DSL (parse → Format)
	alpha    uint64 // math.Float64bits of α
	strategy string
}
