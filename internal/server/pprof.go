package server

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns a mux exposing the net/http/pprof endpoints under
// /debug/pprof/. Profiling is opt-in and runs on its own listener (the
// -pprof-addr flag on pegserve and pegrouter) so the profile surface is
// never reachable through the serving port and can be firewalled
// separately; registration is explicit instead of the package's
// DefaultServeMux side effect, which would leak the endpoints onto any
// handler built from the default mux.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
