package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

// streamEvents posts one request to /match/stream and decodes every NDJSON
// line.
func streamEvents(t *testing.T, url string, req MatchRequest) (*http.Response, []StreamEvent) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/match/stream", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, events
}

// TestMatchStreamEndpoint: the NDJSON framing round-trips — N match lines,
// then one done line whose count and payload agree with the buffered /match
// answer for the same request.
func TestMatchStreamEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{})
	req := MatchRequest{Query: motivatingQueryDSL, Alpha: 0.01}

	resp, events := streamEvents(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.Done == nil {
		t.Fatalf("last event is not done: %+v", last)
	}
	matches := events[:len(events)-1]
	if last.Done.NumMatches != len(matches) {
		t.Errorf("done.num_matches = %d, %d match lines", last.Done.NumMatches, len(matches))
	}
	if last.Done.Truncated {
		t.Error("unlimited stream reported truncated")
	}
	if last.Done.Stats == nil {
		t.Error("done line missing stats")
	}

	// The buffered endpoint must agree on the match set.
	_, body := postJSON(t, ts.URL+"/match", req)
	var buffered MatchResponse
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}
	if buffered.NumMatches != len(matches) {
		t.Fatalf("stream %d matches, /match %d", len(matches), buffered.NumMatches)
	}
	streamed := map[string]float64{}
	for _, ev := range matches {
		if ev.Match == nil || ev.Error != "" {
			t.Fatalf("non-match line before done: %+v", ev)
		}
		key, _ := json.Marshal(ev.Match.Mapping)
		streamed[string(key)] = ev.Match.Pr
	}
	for _, m := range buffered.Matches {
		key, _ := json.Marshal(m.Mapping)
		pr, ok := streamed[string(key)]
		if !ok {
			t.Errorf("buffered match %v missing from stream", m.Mapping)
			continue
		}
		if math.Abs(pr-m.Pr) > 1e-9 {
			t.Errorf("match %v: stream Pr %v, buffered %v", m.Mapping, pr, m.Pr)
		}
	}
}

// TestMatchStreamTopK: limit+order=prob streams the most probable match
// first and flags truncation.
func TestMatchStreamTopK(t *testing.T) {
	_, ts := testServer(t, Options{})
	// The full fixture answer at α=0.01 has 5 matches; ask for the top 2.
	resp, events := streamEvents(t, ts.URL, MatchRequest{
		Query: motivatingQueryDSL, Alpha: 0.01, Limit: 2, Order: "prob",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 2 matches + done", len(events))
	}
	done := events[2].Done
	if done == nil || !done.Truncated || done.NumMatches != 2 {
		t.Fatalf("done = %+v, want truncated top-2", events[2])
	}
	if events[0].Match.Pr < events[1].Match.Pr {
		t.Errorf("top-K stream not probability-sorted: %v then %v", events[0].Match.Pr, events[1].Match.Pr)
	}
	// The strongest fixture match is the merged-entity path at 0.2025.
	if math.Abs(events[0].Match.Pr-0.2025) > 1e-9 {
		t.Errorf("top match Pr = %v, want 0.2025", events[0].Match.Pr)
	}
}

// TestMatchStreamBadRequest: parse failures arrive as plain HTTP errors,
// never as a 200 NDJSON stream.
func TestMatchStreamBadRequest(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []MatchRequest{
		{Query: motivatingQueryDSL, Alpha: 0.2, Order: "bogus"},
		{Query: motivatingQueryDSL, Alpha: 0.2, Limit: -3},
		{Query: "frobnicate\n", Alpha: 0.2},
	}
	for _, req := range cases {
		resp, _ := streamEvents(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, resp.StatusCode)
		}
	}
}

// TestMatchLimitOrderCacheKey: /match responses are cached per limit/order
// so a truncated answer can never be served to an unlimited request (or
// vice versa).
func TestMatchLimitOrderCacheKey(t *testing.T) {
	_, ts := testServer(t, Options{})
	ask := func(limit int, order string) MatchResponse {
		t.Helper()
		_, body := postJSON(t, ts.URL+"/match", MatchRequest{
			Query: motivatingQueryDSL, Alpha: 0.01, Limit: limit, Order: order,
		})
		var res MatchResponse
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("%s", body)
		}
		return res
	}
	full := ask(0, "")
	if full.Cached || full.NumMatches != 5 {
		t.Fatalf("cold full run: %+v", full)
	}
	top1 := ask(1, "prob")
	if top1.Cached {
		t.Error("limit=1 hit the unlimited cache entry")
	}
	if top1.NumMatches != 1 || !top1.Truncated {
		t.Fatalf("top-1 response: %+v", top1)
	}
	if math.Abs(top1.Matches[0].Pr-0.2025) > 1e-9 {
		t.Errorf("top-1 Pr = %v, want 0.2025", top1.Matches[0].Pr)
	}
	again := ask(1, "prob")
	if !again.Cached {
		t.Error("identical limited request missed the cache")
	}
	if ask(2, "prob").Cached {
		t.Error("different limit hit the cache")
	}
	if ask(0, "").NumMatches != 5 {
		t.Error("unlimited entry corrupted by limited runs")
	}
}
