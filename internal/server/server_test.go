package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/fixtures"
	"repro/internal/pathindex"
)

// motivatingQueryDSL is the Figure 1(d) (r, a, i) path query in the DSL.
const motivatingQueryDSL = "node A r\nnode B a\nnode C i\nedge A B\nedge B C\n"

func testServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: 2, Beta: 0.02, Gamma: 0.1, Dir: filepath.Join(t.TempDir(), "ix"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	s := New(ix, opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestMatchEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/match", MatchRequest{
		Query: motivatingQueryDSL,
		Alpha: fixtures.MotivatingAlpha,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res MatchResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if res.NumMatches != 1 {
		t.Fatalf("got %d matches, want 1: %s", res.NumMatches, body)
	}
	m := res.Matches[0]
	want := []uint32{uint32(fixtures.S34), uint32(fixtures.S2), uint32(fixtures.S1)}
	for i, v := range want {
		if m.Mapping[i] != v {
			t.Errorf("mapping[%d] = %d, want %d", i, m.Mapping[i], v)
		}
	}
	if diff := m.Pr - 0.2025; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Pr = %v, want 0.2025", m.Pr)
	}
	if res.Cached {
		t.Error("first request reported cached")
	}
	if res.Stats == nil {
		t.Error("missing stats")
	}
}

func TestResultCacheHit(t *testing.T) {
	s, ts := testServer(t, Options{})
	req := MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha}
	_, body1 := postJSON(t, ts.URL+"/match", req)
	// Same canonical query written differently: extra whitespace, comments,
	// other node names.
	req2 := MatchRequest{
		Query: "# same query\nnode X r\n\nnode Y a\nnode Z i\nedge X Y\nedge Y Z\n",
		Alpha: fixtures.MotivatingAlpha,
	}
	_, body2 := postJSON(t, ts.URL+"/match", req2)
	var r1, r2 MatchResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first request cached")
	}
	if !r2.Cached {
		t.Error("canonically-equal request missed the cache")
	}
	if r1.NumMatches != r2.NumMatches {
		t.Errorf("cached result differs: %d vs %d matches", r1.NumMatches, r2.NumMatches)
	}
	hits, _, _ := s.cache.stats()
	if hits == 0 {
		t.Error("cache recorded no hits")
	}
	// A different alpha must not hit.
	_, body3 := postJSON(t, ts.URL+"/match", MatchRequest{Query: motivatingQueryDSL, Alpha: 0.05})
	var r3 MatchResponse
	if err := json.Unmarshal(body3, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Error("different alpha hit the cache")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []struct {
		name string
		req  MatchRequest
	}{
		{"empty query", MatchRequest{Query: "", Alpha: 0.2}},
		{"parse error", MatchRequest{Query: "frobnicate A r\n", Alpha: 0.2}},
		{"unknown label", MatchRequest{Query: "node A zzz\n", Alpha: 0.2}},
		{"bad alpha", MatchRequest{Query: motivatingQueryDSL, Alpha: 1.5}},
		{"bad strategy", MatchRequest{Query: motivatingQueryDSL, Alpha: 0.2, Strategy: "yolo"}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/match", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/match", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// GET on a POST endpoint.
	resp, err = http.Get(ts.URL + "/match")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /match: status %d, want 405", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{})
	batch := BatchRequest{Queries: []MatchRequest{
		{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha},
		{Query: "node A a\n", Alpha: 0.5},
		{Query: "bogus\n", Alpha: 0.2}, // per-item error, not a batch failure
	}}
	resp, body := postJSON(t, ts.URL+"/match/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res BatchResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(res.Results))
	}
	if res.Results[0].Error != "" || res.Results[0].NumMatches != 1 {
		t.Errorf("item 0: %+v", res.Results[0])
	}
	if res.Results[1].Error != "" {
		t.Errorf("item 1 errored: %s", res.Results[1].Error)
	}
	if res.Results[2].Error == "" {
		t.Error("item 2 (bogus query) did not error")
	}

	// Oversized batches are rejected up front, not fanned out.
	huge := BatchRequest{Queries: make([]MatchRequest, maxBatchQueries+1)}
	for i := range huge.Queries {
		huge.Queries[i] = MatchRequest{Query: motivatingQueryDSL, Alpha: 0.2}
	}
	resp, body = postJSON(t, ts.URL+"/match/batch", huge)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400 (%s)", resp.StatusCode, body)
	}
}

// TestBatchConcurrentClients is the server-level concurrency stress: many
// clients fire /match/batch at once (each batch fans out through the worker
// pool), all against the same shared index. Under -race this exercises the
// full stack — HTTP handlers, cache, pool, and the lock-free index reads.
func TestBatchConcurrentClients(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 4, QueueDepth: 1024})
	queries := []MatchRequest{
		{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha},
		{Query: motivatingQueryDSL, Alpha: 0.05},
		{Query: "node A r\nnode B a\nedge A B\n", Alpha: 0.2},
		{Query: "node A i\nnode B a\nedge A B\n", Alpha: 0.1},
	}
	const clients = 10
	const rounds = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b, _ := json.Marshal(BatchRequest{Queries: queries})
				resp, err := http.Post(ts.URL+"/match/batch", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var res BatchResponse
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil {
					t.Errorf("client %d: decode: %v", c, err)
					return
				}
				if len(res.Results) != len(queries) {
					t.Errorf("client %d: %d results", c, len(res.Results))
					return
				}
				for i, item := range res.Results {
					if item.Error != "" {
						t.Errorf("client %d item %d: %s", c, i, item.Error)
						return
					}
				}
				if res.Results[0].NumMatches != 1 {
					t.Errorf("client %d: item 0 gave %d matches, want 1", c, res.Results[0].NumMatches)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestInflightDedup fires identical cold requests concurrently at a
// single-worker server: the flight group must collapse them to one real
// evaluation (exactly one response with cached=false), with followers and
// stragglers served from the in-flight call or the LRU.
func TestInflightDedup(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1, QueueDepth: 64})
	const clients = 12
	results := make([]MatchResponse, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, body := postJSON(t, ts.URL+"/match", MatchRequest{
				Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha,
			})
			if err := json.Unmarshal(body, &results[c]); err != nil {
				t.Errorf("client %d: %v (%s)", c, err, body)
			}
		}(c)
	}
	wg.Wait()
	cold := 0
	for c := range results {
		if results[c].NumMatches != 1 {
			t.Errorf("client %d: %d matches, want 1", c, results[c].NumMatches)
		}
		if !results[c].Cached {
			cold++
		}
	}
	if cold != 1 {
		t.Errorf("%d cold evaluations, want exactly 1 (dedup failed)", cold)
	}
}

func TestSaturationSheds(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 1, QueueDepth: 1})
	// Occupy the lone worker slot...
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	// ...and the single queue slot with a waiter we control.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiting := make(chan error, 1)
	go func() { waiting <- s.acquire(ctx) }()
	// Wait until the waiter is registered.
	for i := 0; s.waiters.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	// The next request must be shed immediately with 503.
	if err := s.acquire(context.Background()); err != errSaturated {
		t.Fatalf("acquire = %v, want errSaturated", err)
	}
	// Shedding is counted where the request settles (finishRequest), so a
	// real request through the handler must land in rejected — and only
	// there.
	resp, _ := postJSON(t, ts.URL+"/match", &MatchRequest{Query: motivatingQueryDSL})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated /match status = %d, want 503", resp.StatusCode)
	}
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	if got := s.failed.Load(); got != 0 {
		t.Errorf("failed = %d, want 0 (shed must not count as failure)", got)
	}
	cancel()
	if err := <-waiting; err == nil {
		t.Error("cancelled waiter acquired a slot")
	}
}

func TestHealthAndStats(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health["ok"] != true {
		t.Errorf("healthz: %v", health)
	}

	postJSON(t, ts.URL+"/match", MatchRequest{Query: motivatingQueryDSL, Alpha: 0.2})
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 || st.Succeeded == 0 {
		t.Errorf("stats did not count the request: %+v", st)
	}
}

func TestSetIndexInvalidatesCache(t *testing.T) {
	s, ts := testServer(t, Options{})
	req := MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha}
	postJSON(t, ts.URL+"/match", req)
	_, body := postJSON(t, ts.URL+"/match", req)
	var r MatchResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if !r.Cached {
		t.Fatal("warm-up did not cache")
	}

	// Rebuild an identical index at a new location and swap it in: the new
	// identity must miss the cache.
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: 2, Beta: 0.02, Gamma: 0.1, Dir: filepath.Join(t.TempDir(), "ix2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	old := s.SetIndex(ix2)
	if old == nil {
		t.Fatal("SetIndex returned no drained index")
	}
	// The swap drains in-flight requests, so the old index is safe to
	// close immediately.
	if err := old.(*pathindex.Index).Close(); err != nil {
		t.Fatalf("closing drained index: %v", err)
	}

	_, body = postJSON(t, ts.URL+"/match", req)
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Error("request after index swap hit the stale cache")
	}
	if r.NumMatches != 1 {
		t.Errorf("after swap: %d matches, want 1", r.NumMatches)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newLRUCache[cacheKey, *MatchResponse](2)
	k := func(i int) cacheKey { return cacheKey{query: fmt.Sprintf("q%d", i)} }
	c.put(k(1), &MatchResponse{NumMatches: 1})
	c.put(k(2), &MatchResponse{NumMatches: 2})
	c.get(k(1)) // touch 1 so 2 is the LRU victim
	c.put(k(3), &MatchResponse{NumMatches: 3})
	if _, ok := c.get(k(2)); ok {
		t.Error("LRU victim survived")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.get(k(3)); !ok {
		t.Error("new entry missing")
	}
}
