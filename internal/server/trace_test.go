package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fixtures"
	"repro/internal/trace"
)

// TestDeadlineHeaderFolds covers the router→shard deadline propagation: the
// X-Peg-Deadline-Ms header lowers the request deadline exactly like the
// body's timeout_ms, whichever is tighter, and malformed or non-positive
// values are ignored.
func TestDeadlineHeaderFolds(t *testing.T) {
	s, _ := testServer(t, Options{Workers: 2, RequestTimeout: 30 * time.Second})

	for _, tc := range []struct {
		header  string
		bodyMS  int64
		want    time.Duration
	}{
		{"", 0, 30 * time.Second},          // neither: the server cap
		{"50", 0, 50 * time.Millisecond},   // header lowers
		{"50", 20, 20 * time.Millisecond},  // tighter body wins
		{"20", 50, 20 * time.Millisecond},  // tighter header wins
		{"60000000", 0, 30 * time.Second},  // header cannot raise past the cap
		{"0", 0, 30 * time.Second},         // non-positive ignored
		{"-5", 0, 30 * time.Second},
		{"junk", 0, 30 * time.Second},
	} {
		hr := httptest.NewRequest(http.MethodPost, "/match", nil)
		if tc.header != "" {
			hr.Header.Set(DeadlineHeader, tc.header)
		}
		req := &MatchRequest{TimeoutMillis: tc.bodyMS}
		s.captureHTTP(hr, req)
		if got := s.requestTimeout(req); got != tc.want {
			t.Errorf("header=%q timeout_ms=%d: requestTimeout = %v, want %v",
				tc.header, tc.bodyMS, got, tc.want)
		}
	}
}

// TestDeadlineHeaderTimesOutWaiting drives the header end-to-end: with the
// worker pool wedged, a request carrying a short propagated deadline gives
// up in the admission queue with 504 instead of waiting out the server cap.
func TestDeadlineHeaderTimesOutWaiting(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 1})
	s.sem <- struct{}{} // wedge the only worker slot
	defer func() { <-s.sem }()

	body, _ := json.Marshal(&MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/match", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "50")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("took %v; the propagated 50ms deadline did not fold in", waited)
	}
	checkAccounting(t, s)
}

// TestDebugTraceEndpoint covers the shard half of the waterfall: a sampled
// request leaves serve.match, admission, planner, and executor stage spans
// in the ring, retrievable by trace id over GET /debug/trace/{id}, parented
// under the remote context the client sent.
func TestDebugTraceEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{
		Workers: 2,
		Tracer:  trace.New(trace.Config{Service: "pegserve-test", Sample: 1}),
	})
	const tid = "00112233445566778899aabbccddeeff"
	const clientSpan = "0011223344556677"
	body, _ := json.Marshal(&MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/match", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "00-"+tid+"-"+clientSpan+"-01")
	req.Header.Set(RequestIDHeader, "req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: HTTP %d", resp.StatusCode)
	}

	dresp, raw := getRaw(t, ts.URL+"/debug/trace/"+tid)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("debug/trace: HTTP %d: %s", dresp.StatusCode, raw)
	}
	var tr TraceResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != tid {
		t.Fatalf("trace id %q, want %q", tr.TraceID, tid)
	}
	names := map[string]int{}
	var root trace.SpanData
	for _, sp := range tr.Spans {
		if sp.TraceID != tid {
			t.Fatalf("span %s carries trace %s", sp.Name, sp.TraceID)
		}
		names[sp.Name]++
		if sp.Name == "serve.match" {
			root = sp
		}
	}
	if names["serve.match"] != 1 || names["admission"] != 1 || names["plan-cache"] != 1 ||
		names["plan"] != 1 || names["stage.candidates"] == 0 || names["stage.join"] == 0 {
		t.Fatalf("span census %v missing expected request/planner/stage spans", names)
	}
	if root.ParentID != clientSpan {
		t.Fatalf("serve.match parented to %q, want the client span %q", root.ParentID, clientSpan)
	}
	if root.Attrs["outcome"] != "ok" || root.Attrs["request_id"] != "req-42" {
		t.Fatalf("serve.match attrs %v", root.Attrs)
	}
	for _, sp := range tr.Spans {
		if sp.SpanID != root.SpanID && sp.ParentID != root.SpanID {
			t.Fatalf("span %s parented to %q, want the request span", sp.Name, sp.ParentID)
		}
	}

	// An unsampled client context (flags 00) is continued for propagation but
	// records nothing — the trace id stays unknown here.
	const coldTid = "ffeeddccbbaa99887766554433221100"
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/match", bytes.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(trace.Header, "00-"+coldTid+"-0011223344556677-00")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if dresp, _ := getRaw(t, ts.URL+"/debug/trace/"+coldTid); dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unsampled trace retrievable: HTTP %d", dresp.StatusCode)
	}

	if dresp, _ := getRaw(t, ts.URL+"/debug/trace/"+strings.Repeat("0", 32)); dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: HTTP %d, want 404", dresp.StatusCode)
	}
}

// TestDebugTraceDisabled: without a tracer the endpoint answers 404, not a
// panic or an empty page.
func TestDebugTraceDisabled(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2})
	if resp, _ := getRaw(t, ts.URL+"/debug/trace/00112233445566778899aabbccddeeff"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404 with tracing disabled", resp.StatusCode)
	}
}

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
