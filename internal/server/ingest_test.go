package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/live"
	"repro/internal/pathindex"
)

// liveServer builds a live database over the motivating example and a
// server wired to it both ways (ingest → Apply, publish → swap).
func liveServer(t *testing.T) (*Server, *live.DB, *httptest.Server) {
	t.Helper()
	db, err := live.Create(context.Background(), t.TempDir(), fixtures.MotivatingPGD(), live.Options{
		Index:        pathindex.Options{MaxLen: 2, Beta: 0.02, Gamma: 0.1},
		CompactEvery: -1, CompactDirtyFrac: -1,
	})
	if err != nil {
		t.Fatalf("live.Create: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	s := New(db.View(), Options{Workers: 2})
	s.SetLive(db)
	db.SetPublisher(s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, db, ts
}

const motivatingQuerySrc = "node X r\nnode Y a\nnode Z i\nedge X Y\nedge Y Z"

func matchOnce(t *testing.T, url string, alpha float64) MatchResponse {
	t.Helper()
	body, _ := json.Marshal(MatchRequest{Query: motivatingQuerySrc, Alpha: alpha})
	resp, err := http.Post(url+"/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /match: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match status %d", resp.StatusCode)
	}
	var r MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return r
}

func ingest(t *testing.T, url, body string) (*http.Response, live.ApplyResult) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	var r live.ApplyResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatalf("decode ingest response: %v", err)
		}
	}
	return resp, r
}

// TestIngestShiftsMatchProbability drives the paper's Section 2 example
// through the write path: updating the {r3,r4} merge probability from 0.8
// to 0.5 must change the (r,a,i) match set exactly as Eq. 11 predicts, with
// the stale cached answer invalidated by the published generation.
func TestIngestShiftsMatchProbability(t *testing.T) {
	_, _, ts := liveServer(t)

	r := matchOnce(t, ts.URL, fixtures.MotivatingAlpha)
	if r.NumMatches != 1 || abs(r.Matches[0].Pr-0.2025) > 1e-9 {
		t.Fatalf("before ingest: %+v", r)
	}
	if r = matchOnce(t, ts.URL, fixtures.MotivatingAlpha); !r.Cached {
		t.Fatal("second identical query was not served from cache")
	}

	resp, ar := ingest(t, ts.URL, `{"op":"set-linkage","members":[2,3],"p":0.5}`)
	if resp.StatusCode != http.StatusOK || ar.Applied != 1 {
		t.Fatalf("ingest: status %d result %+v", resp.StatusCode, ar)
	}
	if len(ar.Sets) != 1 {
		t.Fatalf("ingest did not report the updated set: %+v", ar)
	}

	// Weakening the linkage evidence re-ranks the answers: the merged-world
	// match (s34,s2,s1) drops to 0.2025/0.8·0.5 ≈ 0.127 while the unmerged
	// worlds rise on the 0.5 non-merge factor.
	r = matchOnce(t, ts.URL, fixtures.MotivatingAlpha)
	if r.Cached {
		t.Fatal("query after ingest hit the stale cache")
	}
	if r.NumMatches != 2 {
		t.Fatalf("after ingest: %d matches, want 2 (%+v)", r.NumMatches, r.Matches)
	}
	want := map[float64]bool{0.25: false, 0.3375: false}
	for _, m := range r.Matches {
		for p := range want {
			if abs(m.Pr-p) < 1e-9 {
				want[p] = true
			}
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("after ingest: match with Pr=%v missing (%+v)", p, r.Matches)
		}
	}
}

// TestIngestBatchNDJSON streams several mutations in one request and checks
// they land atomically: new references, a connecting edge, and linkage
// evidence, visible to /healthz immediately.
func TestIngestBatchNDJSON(t *testing.T) {
	_, db, ts := liveServer(t)
	before := db.Graph().NumNodes()

	batch := `{"op":"add-ref","labels":[{"label":"r","p":1}]}
{"op":"add-ref","labels":[{"label":"a","p":0.5},{"label":"i","p":0.5}]}
{"op":"add-edge","a":4,"b":5,"p":0.7}
{"op":"set-linkage","members":[0,4],"p":0.6}`
	resp, ar := ingest(t, ts.URL, batch)
	if resp.StatusCode != http.StatusOK || ar.Applied != 4 {
		t.Fatalf("batch ingest: status %d result %+v", resp.StatusCode, ar)
	}
	if len(ar.Refs) != 2 || ar.Refs[0] != 4 || ar.Refs[1] != 5 {
		t.Fatalf("assigned refs %v, want [4 5]", ar.Refs)
	}
	// 2 singleton entities + 1 set entity appended.
	if got := db.Graph().NumNodes(); got != before+3 {
		t.Fatalf("graph has %d nodes, want %d", got, before+3)
	}

	// A malformed batch must change nothing.
	resp, _ = ingest(t, ts.URL, `{"op":"add-edge","a":0,"b":99,"p":0.5}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid ingest: status %d, want 400", resp.StatusCode)
	}
	if got := db.Graph().NumNodes(); got != before+3 {
		t.Fatalf("rejected batch mutated the graph (%d nodes)", got)
	}
}

// TestIngestDisabled: a read-only server answers 501 so clients can tell
// configuration from transient failure.
func TestIngestDisabled(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1})
	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(`{"op":"add-edge","a":0,"b":1,"p":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
