package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixtures"
)

// checkAccounting asserts the request-accounting invariant: every request
// settled into exactly one outcome counter.
func checkAccounting(t *testing.T, s *Server) {
	t.Helper()
	sum := s.succeeded.Load() + s.failed.Load() + s.canceled.Load() +
		s.rejected.Load() + s.costRejected.Load()
	if got := s.requests.Load(); got != sum {
		t.Errorf("requests = %d but outcomes sum to %d (ok=%d failed=%d canceled=%d shed=%d cost=%d)",
			got, sum, s.succeeded.Load(), s.failed.Load(), s.canceled.Load(),
			s.rejected.Load(), s.costRejected.Load())
	}
}

// failWriter is a ResponseWriter whose body writes always fail — the
// server-side view of a client that disconnected mid-stream.
type failWriter struct{ h http.Header }

func (f *failWriter) Header() http.Header         { return f.h }
func (f *failWriter) Write([]byte) (int, error)   { return 0, errors.New("broken pipe") }
func (f *failWriter) WriteHeader(statusCode int)  {}

// TestStreamDisconnectCountsCanceled is the regression test for the billing
// bug: a client that vanishes mid-stream used to be counted as a server
// failure.
func TestStreamDisconnectCountsCanceled(t *testing.T) {
	s, _ := testServer(t, Options{Workers: 2})
	body, _ := json.Marshal(&MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha})
	req := httptest.NewRequest(http.MethodPost, "/match/stream", bytes.NewReader(body))
	s.Handler().ServeHTTP(&failWriter{h: make(http.Header)}, req)

	if got := s.canceled.Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
	if got := s.failed.Load(); got != 0 {
		t.Errorf("failed = %d, want 0 (disconnect must not bill as server failure)", got)
	}
	checkAccounting(t, s)

	// The outcome must also be visible on /metrics as its own label.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	want := `peg_requests_total{endpoint="stream",outcome="canceled"} 1`
	if !strings.Contains(rec.Body.String(), want) {
		t.Errorf("/metrics missing %q", want)
	}
}

// TestCanceledContextCountsCanceled covers the buffered path: a request
// whose context is already gone is canceled, not failed.
func TestCanceledContextCountsCanceled(t *testing.T) {
	s, _ := testServer(t, Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, _ := json.Marshal(&MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha})
	req := httptest.NewRequest(http.MethodPost, "/match", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Errorf("status = %d, want 499", rec.Code)
	}
	if got := s.canceled.Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
	if got := s.failed.Load(); got != 0 {
		t.Errorf("failed = %d, want 0", got)
	}
	checkAccounting(t, s)
}

// TestBatchAccountingInvariant mixes malformed and valid queries in one
// batch and checks every item settles into exactly one outcome.
func TestBatchAccountingInvariant(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/match/batch", &BatchRequest{Queries: []MatchRequest{
		{Query: "node A nosuchlabel"},
		{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha},
		{Query: "syntactically broken"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (%s)", resp.StatusCode, body)
	}
	if got := s.requests.Load(); got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
	if got := s.succeeded.Load(); got != 1 {
		t.Errorf("succeeded = %d, want 1", got)
	}
	if got := s.failed.Load(); got != 2 {
		t.Errorf("failed = %d, want 2", got)
	}
	checkAccounting(t, s)
}

// TestCostAdmission verifies the cost-based admission tier end to end: with
// the budget placed between the plan costs of a cheap and an expensive
// query, the cheap one is served and the expensive one gets 429 +
// Retry-After, counted as cost_rejected (not shed, not failed).
func TestCostAdmission(t *testing.T) {
	// A longer path over the same alphabet: strictly more stages to plan
	// and join, hence a strictly larger cost estimate.
	const expensiveDSL = "node A r\nnode B a\nnode C i\nnode D a\nnode E r\n" +
		"edge A B\nedge B C\nedge C D\nedge D E\n"

	_, ts := testServer(t, Options{Workers: 2})
	costOf := func(dsl string) float64 {
		resp, body := postJSON(t, ts.URL+"/explain", &MatchRequest{Query: dsl, Alpha: fixtures.MotivatingAlpha})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explain status = %d (%s)", resp.StatusCode, body)
		}
		var ex ExplainResponse
		if err := json.Unmarshal(body, &ex); err != nil {
			t.Fatal(err)
		}
		return ex.Plan.Cost.Total
	}
	cheap, pricey := costOf(motivatingQueryDSL), costOf(expensiveDSL)
	if pricey <= cheap {
		t.Fatalf("expensive query cost %v not above cheap query cost %v", pricey, cheap)
	}

	s2, ts2 := testServer(t, Options{Workers: 2, MaxPlanCost: (cheap + pricey) / 2})
	resp, body := postJSON(t, ts2.URL+"/match", &MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cheap query status = %d, want 200 (%s)", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts2.URL+"/match", &MatchRequest{Query: expensiveDSL, Alpha: fixtures.MotivatingAlpha})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expensive query status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	} else if _, err := strconv.Atoi(ra); err != nil {
		t.Errorf("Retry-After %q is not an integer", ra)
	}
	// Streams go through the same admission.
	resp, _ = postJSON(t, ts2.URL+"/match/stream", &MatchRequest{Query: expensiveDSL, Alpha: fixtures.MotivatingAlpha})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("expensive stream status = %d, want 429", resp.StatusCode)
	}
	if got := s2.costRejected.Load(); got != 2 {
		t.Errorf("costRejected = %d, want 2", got)
	}
	if got := s2.rejected.Load(); got != 0 {
		t.Errorf("rejected = %d, want 0 (cost rejection is not pool shedding)", got)
	}
	if got := s2.failed.Load(); got != 0 {
		t.Errorf("failed = %d, want 0", got)
	}
	checkAccounting(t, s2)

	// /stats reports the new counters.
	r, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	err = json.NewDecoder(r.Body).Decode(&st)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.CostRejected != 2 {
		t.Errorf("/stats cost_rejected = %d, want 2", st.CostRejected)
	}
}

// TestStatsJSONSubMicrosecond is the regression test for the truncation
// bug: integer-microsecond conversion reported 0 for every stage under 1µs.
func TestStatsJSONSubMicrosecond(t *testing.T) {
	st := statsJSON(core.Stats{
		CandidateTime: 800 * time.Nanosecond,
		JoinTime:      250 * time.Nanosecond,
		Total:         1050 * time.Nanosecond,
	})
	if st.CandidateMicros != 0.8 {
		t.Errorf("CandidateMicros = %v, want 0.8", st.CandidateMicros)
	}
	if st.JoinMicros != 0.25 {
		t.Errorf("JoinMicros = %v, want 0.25", st.JoinMicros)
	}
	if st.TotalMicros != 1.05 {
		t.Errorf("TotalMicros = %v, want 1.05", st.TotalMicros)
	}
}

// TestTraceLines checks the NDJSON trace: a request with trace:true emits
// exactly one well-formed line, a request without it emits none.
func TestTraceLines(t *testing.T) {
	var buf bytes.Buffer
	s, ts := testServerWithTrace(t, &buf)
	_, _ = postJSON(t, ts.URL+"/match", &MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha})
	if got := strings.Count(buf.String(), "\n"); got != 0 {
		t.Fatalf("untraced request produced %d trace lines", got)
	}
	_, _ = postJSON(t, ts.URL+"/match", &MatchRequest{Query: motivatingQueryDSL, Alpha: fixtures.MotivatingAlpha, Trace: true})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || lines[0] == "" {
		t.Fatalf("traced request produced %d trace lines, want 1", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("trace line is not JSON: %v (%s)", err, lines[0])
	}
	if ev["endpoint"] != "match" || ev["outcome"] != "ok" {
		t.Errorf("trace line endpoint/outcome = %v/%v, want match/ok", ev["endpoint"], ev["outcome"])
	}
	if d, _ := ev["duration_us"].(float64); d <= 0 {
		t.Errorf("trace duration_us = %v, want > 0", ev["duration_us"])
	}
	if q, _ := ev["query"].(string); q == "" {
		t.Error("trace line missing query text")
	}
	checkAccounting(t, s)
}

func testServerWithTrace(t *testing.T, w *bytes.Buffer) (*Server, *httptest.Server) {
	t.Helper()
	s, _ := testServer(t, Options{Workers: 2})
	// Re-create with the writer: testServer owns index lifecycle, so just
	// flip the options on a dedicated instance sharing the same index.
	s2 := New(s.cur.ix, Options{Workers: 2, TraceWriter: w})
	ts := httptest.NewServer(s2.Handler())
	t.Cleanup(ts.Close)
	return s2, ts
}

// TestMetricsScrapeUnderLoad scrapes /metrics while matches and live ingest
// run concurrently (meaningful under -race), then parses the final page:
// every sample line must be "name{labels} value" with a float value and a
// preceding # TYPE declaration, and the core families must be present.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	_, _, ts := liveServer(t)
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				mut := fmt.Sprintf(`{"op":"add-edge","a":%d,"b":%d,"p":0.7}`, j%4, 4+(i+j)%4)
				resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(mut))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				body, _ := json.Marshal(&MatchRequest{Query: motivatingQuerySrc, Alpha: 0.05})
				if resp, err = http.Post(ts.URL+"/match", "application/json", bytes.NewReader(body)); err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp, err = http.Get(ts.URL + "/metrics"); err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition format", ct)
	}
	declared := map[string]bool{}
	values := map[string]float64{}
	samples := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			declared[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: value does not parse: %v", line, err)
		}
		values[line[:sp]] = v
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !declared[base] && !declared[name] {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("empty /metrics page")
	}
	for _, fam := range []string{
		"peg_requests_total", "peg_request_duration_seconds", "peg_stage_duration_seconds",
		"peg_plan_cost", "peg_admission_max_cost", "peg_result_cache_hits_total",
		"peg_plan_cache_hits_total", "peg_workers", "peg_index_info", "peg_calibration_factor",
		"peg_live_mutation_lag", "peg_live_compactions_total", "peg_ingested_mutations_total",
		"peg_index_format_info", "peg_index_mapped_bytes", "peg_index_probes_total",
		"peg_index_posting_decode_micros",
	} {
		if !declared[fam] {
			t.Errorf("/metrics missing family %s", fam)
		}
	}

	// The live server builds its base index with default options, i.e. the
	// packed v2 layout, and the matches above probed it.
	if values[`peg_index_format_info{format="v2"}`] != 1 {
		t.Error("peg_index_format_info does not report format v2")
	}
	if values["peg_index_mapped_bytes"] <= 0 {
		t.Errorf("peg_index_mapped_bytes = %v, want > 0 for a packed index", values["peg_index_mapped_bytes"])
	}
	if values["peg_index_probes_total"] <= 0 {
		t.Errorf("peg_index_probes_total = %v, want > 0 after serving matches", values["peg_index_probes_total"])
	}
	if values["peg_index_posting_decode_micros_count"] <= 0 {
		t.Errorf("peg_index_posting_decode_micros_count = %v, want > 0 after serving matches", values["peg_index_posting_decode_micros_count"])
	}
}
