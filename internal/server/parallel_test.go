package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestMatchParallelismServesIdenticalResults: a server configured with
// per-request join parallelism answers /match byte-identically to the
// sequential configuration — the parallel join changes wall clock, never
// results.
func TestMatchParallelismServesIdenticalResults(t *testing.T) {
	req := MatchRequest{Query: motivatingQueryDSL, Alpha: 0.01}

	_, seqTS := testServer(t, Options{Workers: 4, MatchParallelism: 1, CacheEntries: -1})
	_, parTS := testServer(t, Options{Workers: 4, MatchParallelism: 4, CacheEntries: -1})

	respSeq, bodySeq := postJSON(t, seqTS.URL+"/match", req)
	respPar, bodyPar := postJSON(t, parTS.URL+"/match", req)
	if respSeq.StatusCode != http.StatusOK || respPar.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d", respSeq.StatusCode, respPar.StatusCode)
	}
	var seq, par MatchResponse
	if err := json.Unmarshal(bodySeq, &seq); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyPar, &par); err != nil {
		t.Fatal(err)
	}
	if seq.NumMatches == 0 {
		t.Fatal("workload produced no matches")
	}
	if len(seq.Matches) != len(par.Matches) {
		t.Fatalf("parallel served %d matches, sequential %d", len(par.Matches), len(seq.Matches))
	}
	for i := range seq.Matches {
		a, b := seq.Matches[i], par.Matches[i]
		if a.Pr != b.Pr || a.Prle != b.Prle || a.Prn != b.Prn {
			t.Fatalf("match %d probabilities differ: %+v vs %+v", i, a, b)
		}
		for k := range a.Mapping {
			if a.Mapping[k] != b.Mapping[k] {
				t.Fatalf("match %d mapping differs: %v vs %v", i, a.Mapping, b.Mapping)
			}
		}
	}
}

// TestMatchParallelismCappedByWorkers: the per-request knob cannot exceed
// the admission-control pool size.
func TestMatchParallelismCappedByWorkers(t *testing.T) {
	s, _ := testServer(t, Options{Workers: 2, MatchParallelism: 16})
	if s.opt.MatchParallelism != 2 {
		t.Fatalf("MatchParallelism = %d, want clamped to Workers = 2", s.opt.MatchParallelism)
	}
	s2, _ := testServer(t, Options{Workers: 2})
	if s2.opt.MatchParallelism != 1 {
		t.Fatalf("default MatchParallelism = %d, want 1", s2.opt.MatchParallelism)
	}
}
