package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/pathindex"
)

// TestReadinessLifecycle walks the unready → ready transition: a server
// constructed with a nil index serves liveness and 503s readiness and
// compute, and the first SetIndex flips readiness with a generation and
// uptime in the body.
func TestReadinessLifecycle(t *testing.T) {
	s := New(nil, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	get := func(path string) (*http.Response, HealthResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var h HealthResponse
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, h
	}

	resp, h := get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || h.Ready {
		t.Fatalf("unready readiness: HTTP %d ready=%v (want 503 false)", resp.StatusCode, h.Ready)
	}
	resp, h = get("/healthz/live")
	if resp.StatusCode != http.StatusOK || !h.OK || h.Ready {
		t.Fatalf("unready liveness: HTTP %d %+v (want 200 ok, not ready)", resp.StatusCode, h)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %v", h.UptimeSeconds)
	}

	// Compute and stats answer rather than panic while unready.
	mresp, body := postJSON(t, ts.URL+"/match", MatchRequest{Query: motivatingQueryDSL, Alpha: 0.2})
	if mresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unready /match: HTTP %d (want 503): %s", mresp.StatusCode, body)
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("unready /stats: HTTP %d", sresp.StatusCode)
	}
	metResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metResp.Body.Close()
	if metResp.StatusCode != http.StatusOK {
		t.Fatalf("unready /metrics scrape: HTTP %d", metResp.StatusCode)
	}

	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: 2, Beta: 0.02, Gamma: 0.1, Dir: filepath.Join(t.TempDir(), "ix"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	s.SetIndex(ix)

	resp, h = get("/healthz")
	if resp.StatusCode != http.StatusOK || !h.Ready || h.Generation != 1 {
		t.Fatalf("ready readiness: HTTP %d %+v (want 200, ready, generation 1)", resp.StatusCode, h)
	}
	if h.Index == "" || h.Nodes == 0 {
		t.Fatalf("ready body missing index identity: %+v", h)
	}
	mresp, body = postJSON(t, ts.URL+"/match", MatchRequest{Query: motivatingQueryDSL, Alpha: 0.2})
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("ready /match: HTTP %d: %s", mresp.StatusCode, body)
	}
}

// TestRequestIDPropagation checks the shard half of the correlation-id
// contract: the header is echoed on success and error responses alike, and
// lands in the NDJSON trace line.
func TestRequestIDPropagation(t *testing.T) {
	var trace bytes.Buffer
	s, _ := testServer(t, Options{TraceWriter: &trace, TraceAll: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	send := func(body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/match", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(RequestIDHeader, "rid-123")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	b, _ := json.Marshal(MatchRequest{Query: motivatingQueryDSL, Alpha: 0.2})
	if resp := send(string(b)); resp.Header.Get(RequestIDHeader) != "rid-123" {
		t.Fatal("request id not echoed on success")
	}
	if resp := send(`{"query":"not a query"}`); resp.Header.Get(RequestIDHeader) != "rid-123" {
		t.Fatalf("request id not echoed on error")
	}

	var ev traceEvent
	line, _, _ := bytes.Cut(trace.Bytes(), []byte("\n"))
	if err := json.Unmarshal(line, &ev); err != nil {
		t.Fatalf("trace line: %v", err)
	}
	if ev.RequestID != "rid-123" {
		t.Fatalf("trace line request_id %q (want rid-123)", ev.RequestID)
	}
}
