package query

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/prob"
)

// Parse reads the simple text query DSL used by the CLIs:
//
//	# comment
//	node A r
//	node B a
//	node C i
//	edge A B
//	edge B C
//
// Node names are arbitrary identifiers; labels must be in the alphabet.
func Parse(r io.Reader, a *prob.Alphabet) (*Query, error) {
	q := New()
	names := make(map[string]NodeID)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("query: line %d: want 'node NAME LABEL'", lineNo)
			}
			name, label := fields[1], fields[2]
			if _, dup := names[name]; dup {
				return nil, fmt.Errorf("query: line %d: duplicate node %q", lineNo, name)
			}
			l := a.ID(label)
			if l == prob.NoLabel {
				return nil, fmt.Errorf("query: line %d: unknown label %q", lineNo, label)
			}
			names[name] = q.AddNode(l)
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("query: line %d: want 'edge NAME NAME'", lineNo)
			}
			na, ok := names[fields[1]]
			if !ok {
				return nil, fmt.Errorf("query: line %d: unknown node %q", lineNo, fields[1])
			}
			nb, ok := names[fields[2]]
			if !ok {
				return nil, fmt.Errorf("query: line %d: unknown node %q", lineNo, fields[2])
			}
			if err := q.AddEdge(na, nb); err != nil {
				return nil, fmt.Errorf("query: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("query: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	if q.NumNodes() == 0 {
		return nil, fmt.Errorf("query: empty query")
	}
	return q, nil
}

// ParseString is Parse over a string.
func ParseString(s string, a *prob.Alphabet) (*Query, error) {
	return Parse(strings.NewReader(s), a)
}

// Format renders the query in the DSL, with nodes named n0, n1, ….
func (q *Query) Format(a *prob.Alphabet) string {
	var b strings.Builder
	for i := 0; i < q.NumNodes(); i++ {
		fmt.Fprintf(&b, "node n%d %s\n", i, a.Name(q.labels[i]))
	}
	edges := q.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "edge n%d n%d\n", e[0], e[1])
	}
	return b.String()
}
