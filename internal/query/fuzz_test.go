package query

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/prob"
)

// FuzzParseString feeds arbitrary byte strings through the query DSL parser
// with go's native fuzzer. The parser fronts the HTTP /match surface, so it
// must never panic and never hand back a query that violates its own
// invariants — malformed input returns an error, nothing else. The seed
// corpus covers the DSL forms used by examples/ plus known edge shapes.
func FuzzParseString(f *testing.F) {
	seeds := []string{
		// examples/quickstart
		"node q1 r\nnode q2 a\nnode q3 i\nedge q1 q2\nedge q2 q3\n",
		// examples/expertfinder (triangle)
		"node prof academia\nnode researcher lab\nnode engineer industry\n" +
			"edge prof researcher\nedge researcher engineer\nedge engineer prof\n",
		// comments, blank lines, weird spacing
		"# comment\n\nnode A r\n\tnode B a\nedge A B\n",
		// error shapes
		"",
		"node A\n",
		"node A r extra\n",
		"node A zzz\n",
		"node A r\nnode A r\n",
		"edge A B\n",
		"node A r\nedge A A\n",
		"node A r\nnode B a\nedge A B\nedge A B\n",
		"bogus directive\n",
		"node \x00 r\n",
		strings.Repeat("node A r\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	alpha := prob.MustAlphabet("r", "a", "i")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseString(src, alpha)
		if err != nil {
			if q != nil {
				t.Fatalf("error %v returned with non-nil query", err)
			}
			return
		}
		// A successful parse must uphold the Query invariants the matcher
		// relies on.
		if q.NumNodes() == 0 {
			t.Fatal("parsed query with zero nodes")
		}
		for n := 0; n < q.NumNodes(); n++ {
			if l := q.Label(NodeID(n)); alpha.Name(l) == "" {
				t.Fatalf("node %d has label %d outside the alphabet", n, l)
			}
		}
		for _, e := range q.Edges() {
			if e[0] == e[1] {
				t.Fatalf("self loop %v survived parsing", e)
			}
			if int(e[0]) >= q.NumNodes() || int(e[1]) >= q.NumNodes() {
				t.Fatalf("edge %v references missing node", e)
			}
		}
		if err := q.Validate(alpha); err != nil {
			t.Fatalf("parsed query fails Validate: %v", err)
		}
		// Round trip: formatting a parsed query must reparse to the same
		// shape (only for valid UTF-8 input; Format always emits clean DSL).
		if utf8.ValidString(src) {
			q2, err := ParseString(q.Format(alpha), alpha)
			if err != nil {
				t.Fatalf("Format output does not reparse: %v", err)
			}
			if q2.NumNodes() != q.NumNodes() || q2.NumEdges() != q.NumEdges() {
				t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges",
					q.NumNodes(), q2.NumNodes(), q.NumEdges(), q2.NumEdges())
			}
		}
	})
}
