package query

import (
	"strings"
	"testing"

	"repro/internal/prob"
)

func alpha3() *prob.Alphabet { return prob.MustAlphabet("a", "b", "c") }

func TestBuildAndAccessors(t *testing.T) {
	q := New()
	a := q.AddNode(0)
	b := q.AddNode(1)
	c := q.AddNode(0)
	if err := q.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 3 || q.NumEdges() != 2 {
		t.Fatalf("counts %d/%d", q.NumNodes(), q.NumEdges())
	}
	if !q.HasEdge(b, a) || q.HasEdge(a, c) {
		t.Error("HasEdge wrong")
	}
	if q.Degree(b) != 2 || q.Degree(a) != 1 {
		t.Error("Degree wrong")
	}
	if q.Label(c) != 0 {
		t.Error("Label wrong")
	}
	edges := q.Edges()
	if len(edges) != 2 || edges[0] != [2]NodeID{a, b} {
		t.Errorf("Edges = %v", edges)
	}
	if !q.Connected() {
		t.Error("connected path reported disconnected")
	}
	labels := q.Labels([]NodeID{a, b, c})
	if len(labels) != 3 || labels[1] != 1 {
		t.Errorf("Labels = %v", labels)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	q := New()
	a := q.AddNode(0)
	b := q.AddNode(1)
	if err := q.AddEdge(a, a); err == nil {
		t.Error("self loop accepted")
	}
	if err := q.AddEdge(a, 9); err == nil {
		t.Error("unknown node accepted")
	}
	if err := q.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(b, a); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestConnected(t *testing.T) {
	q := New()
	if q.Connected() {
		t.Error("empty query connected")
	}
	q.AddNode(0)
	if !q.Connected() {
		t.Error("single node not connected")
	}
	q.AddNode(1)
	if q.Connected() {
		t.Error("two isolated nodes connected")
	}
}

func TestValidate(t *testing.T) {
	a := alpha3()
	q := New()
	if err := q.Validate(a); err == nil {
		t.Error("empty query validated")
	}
	q.AddNode(7)
	if err := q.Validate(a); err == nil {
		t.Error("out-of-alphabet label validated")
	}
}

func TestNeighborLabelCounts(t *testing.T) {
	q := New()
	ctr := q.AddNode(0)
	n1 := q.AddNode(1)
	n2 := q.AddNode(1)
	n3 := q.AddNode(2)
	for _, m := range []NodeID{n1, n2, n3} {
		if err := q.AddEdge(ctr, m); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.NeighborLabelCount(ctr, 1); got != 2 {
		t.Errorf("c(ctr,1) = %d", got)
	}
	if got := q.NeighborLabelCount(ctr, 0); got != 0 {
		t.Errorf("c(ctr,0) = %d", got)
	}
	counts := q.NeighborLabelCounts(ctr, 3)
	if counts[1] != 2 || counts[2] != 1 || counts[0] != 0 {
		t.Errorf("counts = %v", counts)
	}
}

// The Figure 4 example: path (1,2,3,4) with chord 1-3, node 5 adjacent to
// nodes 3 and 4, node 6 adjacent to node 4. The paper states: path degree 5,
// density 4/6, Γ(P) = {5,6}, rv(P,5) = {3,4}, and one path cycle via the
// edge between nodes 1 and 3.
func TestPathStatsFigure4(t *testing.T) {
	q := New()
	var n [7]NodeID
	for i := 1; i <= 6; i++ {
		n[i] = q.AddNode(0)
	}
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {1, 3}, {3, 5}, {4, 5}, {4, 6}} {
		if err := q.AddEdge(n[e[0]], n[e[1]]); err != nil {
			t.Fatal(err)
		}
	}
	info, err := q.PathStats([]NodeID{n[1], n[2], n[3], n[4]})
	if err != nil {
		t.Fatal(err)
	}
	if info.Degree != 5 {
		t.Errorf("path degree = %d, want 5", info.Degree)
	}
	if want := 4.0 / 6.0; info.Density != want {
		t.Errorf("density = %v, want %v", info.Density, want)
	}
	// Γ(P) = {5, 6}; rv(P,5) = positions of nodes 3 and 4; rv(P,6) = node 4.
	if len(info.Neighbors) != 2 || info.Neighbors[0] != n[5] || info.Neighbors[1] != n[6] {
		t.Errorf("Γ(P) = %v", info.Neighbors)
	}
	if rv := info.Reverse[n[5]]; len(rv) != 2 || rv[0] != 2 || rv[1] != 3 {
		t.Errorf("rv(P,5) = %v, want [2 3]", rv)
	}
	if rv := info.Reverse[n[6]]; len(rv) != 1 || rv[0] != 3 {
		t.Errorf("rv(P,6) = %v, want [3]", rv)
	}
	// One chord: 1-3 → positions (0,2).
	if len(info.Cycles) != 1 || info.Cycles[0] != [2]int{0, 2} {
		t.Errorf("cycles = %v", info.Cycles)
	}
}

func TestPathStatsErrors(t *testing.T) {
	q := New()
	a := q.AddNode(0)
	b := q.AddNode(1)
	c := q.AddNode(2)
	if err := q.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := q.PathStats([]NodeID{a, c}); err == nil {
		t.Error("non-adjacent path accepted")
	}
	if err := q.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(a, c); err != nil {
		t.Fatal(err)
	}
	if _, err := q.PathStats([]NodeID{a, b, a}); err == nil {
		t.Error("repeating path accepted")
	}
}

func TestReverseNeighborsMultiplePositions(t *testing.T) {
	// m adjacent to both endpoints of a 2-edge path.
	q := New()
	a := q.AddNode(0)
	b := q.AddNode(1)
	c := q.AddNode(2)
	m := q.AddNode(1)
	for _, e := range [][2]NodeID{{a, b}, {b, c}, {m, a}, {m, c}} {
		if err := q.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	info, err := q.PathStats([]NodeID{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if rv := info.Reverse[m]; len(rv) != 2 || rv[0] != 0 || rv[1] != 2 {
		t.Errorf("rv(P,m) = %v, want [0 2]", rv)
	}
}

func TestParse(t *testing.T) {
	a := alpha3()
	src := `
# a triangle
node X a
node Y b
node Z c
edge X Y
edge Y Z
edge Z X
`
	q, err := ParseString(src, a)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.NumNodes() != 3 || q.NumEdges() != 3 {
		t.Fatalf("parsed %d nodes %d edges", q.NumNodes(), q.NumEdges())
	}
	// Round trip through Format.
	q2, err := ParseString(q.Format(a), a)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if q2.NumNodes() != 3 || q2.NumEdges() != 3 {
		t.Error("format/parse round trip lost structure")
	}
}

func TestParseErrors(t *testing.T) {
	a := alpha3()
	cases := []string{
		"node X nope",
		"node X a\nnode X b",
		"edge X Y",
		"node X a\nedge X Y",
		"frobnicate",
		"node X",
		"edge X",
		"",
		"node X a\nnode Y b\nedge X Y\nedge X Y",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), a); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
