// Package query implements labeled query graphs (Section 4) and the query
// statistics of Section 5.2 used for pruning: per-node neighborhood label
// counts, and per-path neighbors, reverse neighbors, cycles, degree, and
// density.
package query

import (
	"fmt"
	"sort"

	"repro/internal/prob"
)

// NodeID identifies a query node.
type NodeID int32

// Query is an undirected, labeled query graph Q = (VQ, EQ, lQ).
type Query struct {
	labels []prob.LabelID
	adj    [][]NodeID
	nEdges int
}

// New creates an empty query.
func New() *Query { return &Query{} }

// AddNode adds a node with the given label and returns its id.
func (q *Query) AddNode(l prob.LabelID) NodeID {
	q.labels = append(q.labels, l)
	q.adj = append(q.adj, nil)
	return NodeID(len(q.labels) - 1)
}

// AddEdge adds an undirected edge. Duplicate edges and self loops are
// rejected.
func (q *Query) AddEdge(a, b NodeID) error {
	if a == b {
		return fmt.Errorf("query: self loop on node %d", a)
	}
	if err := q.check(a); err != nil {
		return err
	}
	if err := q.check(b); err != nil {
		return err
	}
	if q.HasEdge(a, b) {
		return fmt.Errorf("query: duplicate edge (%d,%d)", a, b)
	}
	q.adj[a] = insertSorted(q.adj[a], b)
	q.adj[b] = insertSorted(q.adj[b], a)
	q.nEdges++
	return nil
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func (q *Query) check(n NodeID) error {
	if n < 0 || int(n) >= len(q.labels) {
		return fmt.Errorf("query: unknown node %d", n)
	}
	return nil
}

// NumNodes returns |VQ|.
func (q *Query) NumNodes() int { return len(q.labels) }

// NumEdges returns |EQ|.
func (q *Query) NumEdges() int { return q.nEdges }

// Label returns lQ(n).
func (q *Query) Label(n NodeID) prob.LabelID { return q.labels[n] }

// Neighbors returns the sorted neighbor list of n (not to be modified).
func (q *Query) Neighbors(n NodeID) []NodeID { return q.adj[n] }

// Degree returns the degree of n.
func (q *Query) Degree(n NodeID) int { return len(q.adj[n]) }

// HasEdge reports whether (a,b) ∈ EQ.
func (q *Query) HasEdge(a, b NodeID) bool {
	nbs := q.adj[a]
	i := sort.Search(len(nbs), func(i int) bool { return nbs[i] >= b })
	return i < len(nbs) && nbs[i] == b
}

// Edges returns all edges with a < b, sorted.
func (q *Query) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, q.nEdges)
	for a := NodeID(0); int(a) < len(q.adj); a++ {
		for _, b := range q.adj[a] {
			if a < b {
				out = append(out, [2]NodeID{a, b})
			}
		}
	}
	return out
}

// Connected reports whether the query graph is connected (single-node
// queries are connected; the empty query is not).
func (q *Query) Connected() bool {
	n := len(q.labels)
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range q.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == n
}

// Validate checks structural sanity against an alphabet.
func (q *Query) Validate(a *prob.Alphabet) error {
	if len(q.labels) == 0 {
		return fmt.Errorf("query: empty query")
	}
	for i, l := range q.labels {
		if l < 0 || int(l) >= a.Len() {
			return fmt.Errorf("query: node %d has label %d outside alphabet", i, l)
		}
	}
	return nil
}

// NeighborLabelCount returns c(n,σ): the number of neighbors of n labeled σ
// (the node-level query statistic of Section 5.2.2).
func (q *Query) NeighborLabelCount(n NodeID, sigma prob.LabelID) int {
	c := 0
	for _, m := range q.adj[n] {
		if q.labels[m] == sigma {
			c++
		}
	}
	return c
}

// NeighborLabelCounts returns c(n,·) as a dense slice indexed by label.
func (q *Query) NeighborLabelCounts(n NodeID, nLabels int) []int {
	out := make([]int, nLabels)
	for _, m := range q.adj[n] {
		out[q.labels[m]]++
	}
	return out
}

// PathInfo bundles the path-level statistics of Sections 5.2.1 and 5.2.2 for
// one query path.
type PathInfo struct {
	// Degree is the path degree: Σ degree(n) − 2·length(P).
	Degree int
	// Density is 2K / (M(M−1)) where K counts query edges among path nodes.
	Density float64
	// Neighbors is Γ(P): query nodes off the path adjacent to it, sorted.
	Neighbors []NodeID
	// Reverse maps each m ∈ Γ(P) to rv(P,m): the positions on the path
	// adjacent to m, ascending.
	Reverse map[NodeID][]int
	// Cycles lists the path cycle chords as position pairs (i,j), i+2 ≤ j,
	// where (P[i], P[j]) ∈ EQ. Each chord appears exactly once.
	Cycles [][2]int
}

// PathStats computes PathInfo for the query path with the given node
// positions. The nodes must form a path in Q (consecutive nodes adjacent).
func (q *Query) PathStats(path []NodeID) (PathInfo, error) {
	for i := 0; i+1 < len(path); i++ {
		if !q.HasEdge(path[i], path[i+1]) {
			return PathInfo{}, fmt.Errorf("query: nodes %d,%d not adjacent", path[i], path[i+1])
		}
	}
	on := make(map[NodeID]int, len(path))
	for i, n := range path {
		on[n] = i
	}
	if len(on) != len(path) {
		return PathInfo{}, fmt.Errorf("query: path repeats a node")
	}
	info := PathInfo{Reverse: make(map[NodeID][]int)}

	deg := 0
	for _, n := range path {
		deg += len(q.adj[n])
	}
	info.Degree = deg - 2*(len(path)-1)

	// K: query edges among path nodes (path edges + chords).
	k := 0
	for i, n := range path {
		for _, m := range q.adj[n] {
			if j, ok := on[m]; ok {
				if j > i {
					k++
					if j > i+1 {
						info.Cycles = append(info.Cycles, [2]int{i, j})
					}
				}
			} else {
				info.Reverse[m] = append(info.Reverse[m], i)
			}
		}
	}
	mNodes := len(path)
	if mNodes > 1 {
		info.Density = 2 * float64(k) / float64(mNodes*(mNodes-1))
	} else {
		info.Density = 1
	}
	for m := range info.Reverse {
		info.Neighbors = append(info.Neighbors, m)
	}
	sort.Slice(info.Neighbors, func(i, j int) bool { return info.Neighbors[i] < info.Neighbors[j] })
	sort.Slice(info.Cycles, func(i, j int) bool {
		if info.Cycles[i][0] != info.Cycles[j][0] {
			return info.Cycles[i][0] < info.Cycles[j][0]
		}
		return info.Cycles[i][1] < info.Cycles[j][1]
	})
	return info, nil
}

// Labels returns the label sequence of a node sequence.
func (q *Query) Labels(path []NodeID) []prob.LabelID {
	out := make([]prob.LabelID, len(path))
	for i, n := range path {
		out[i] = q.labels[n]
	}
	return out
}
