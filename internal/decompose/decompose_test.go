package decompose

import (
	"math/rand"
	"testing"

	"repro/internal/prob"
	"repro/internal/query"
)

// fixedEst returns a constant cardinality for every sequence.
type fixedEst float64

func (f fixedEst) Cardinality(X []prob.LabelID, alpha float64) float64 { return float64(f) }

// mapEst returns per-length cardinalities.
type mapEst map[int]float64

func (m mapEst) Cardinality(X []prob.LabelID, alpha float64) float64 { return m[len(X)] }

func triangle(t *testing.T) *query.Query {
	t.Helper()
	q := query.New()
	a := q.AddNode(0)
	b := q.AddNode(1)
	c := q.AddNode(2)
	for _, e := range [][2]query.NodeID{{a, b}, {b, c}, {a, c}} {
		if err := q.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return q
}

func coversAllEdges(t *testing.T, q *query.Query, d *Decomposition) {
	t.Helper()
	covered := make(map[[2]query.NodeID]bool)
	for i := range d.Paths {
		p := &d.Paths[i]
		for j := 0; j+1 < len(p.Nodes); j++ {
			a, b := p.Nodes[j], p.Nodes[j+1]
			if a > b {
				a, b = b, a
			}
			covered[[2]query.NodeID{a, b}] = true
		}
	}
	for _, e := range q.Edges() {
		if !covered[e] {
			t.Errorf("edge %v not covered", e)
		}
	}
}

func TestDecomposeTriangle(t *testing.T) {
	q := triangle(t)
	for _, L := range []int{1, 2, 3} {
		d, err := Decompose(q, fixedEst(10), Options{MaxLen: L, Alpha: 0.5})
		if err != nil {
			t.Fatalf("L=%d: %v", L, err)
		}
		coversAllEdges(t, q, d)
		for i := range d.Paths {
			if got := len(d.Paths[i].Nodes) - 1; got > L {
				t.Errorf("L=%d: path of length %d", L, got)
			}
			if d.Paths[i].ID != i {
				t.Errorf("path ID %d at position %d", d.Paths[i].ID, i)
			}
		}
	}
}

func TestDecomposePrefersLongPathsWhenCheap(t *testing.T) {
	// 5-node path query; length-3 paths much cheaper per edge than single
	// edges → the cover should use fewer, longer paths.
	q := query.New()
	var ns []query.NodeID
	for i := 0; i < 5; i++ {
		ns = append(ns, q.AddNode(prob.LabelID(i%2)))
	}
	for i := 0; i+1 < 5; i++ {
		if err := q.AddEdge(ns[i], ns[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	est := mapEst{2: 1000, 3: 100, 4: 10}
	d, err := Decompose(q, est, Options{MaxLen: 3, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	coversAllEdges(t, q, d)
	if len(d.Paths) > 2 {
		t.Errorf("expected ≤2 covering paths, got %d", len(d.Paths))
	}
}

func TestDecomposeSingleNode(t *testing.T) {
	q := query.New()
	q.AddNode(1)
	d, err := Decompose(q, fixedEst(5), Options{MaxLen: 2, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Paths) != 1 || len(d.Paths[0].Nodes) != 1 {
		t.Fatalf("single-node decomposition = %+v", d.Paths)
	}
}

func TestDecomposeErrors(t *testing.T) {
	q := triangle(t)
	if _, err := Decompose(q, fixedEst(1), Options{MaxLen: 0, Alpha: 0.5}); err == nil {
		t.Error("MaxLen 0 accepted")
	}
	if _, err := Decompose(query.New(), fixedEst(1), Options{MaxLen: 2, Alpha: 0.5}); err == nil {
		t.Error("empty query accepted")
	}
	multi := query.New()
	multi.AddNode(0)
	multi.AddNode(1)
	if _, err := Decompose(multi, fixedEst(1), Options{MaxLen: 2, Alpha: 0.5}); err == nil {
		t.Error("edgeless multi-node query accepted")
	}
}

func TestJoinPredicates(t *testing.T) {
	q := triangle(t)
	d, err := Decompose(q, fixedEst(10), Options{MaxLen: 1, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Paths) != 3 {
		t.Fatalf("L=1 triangle should give 3 single-edge paths, got %d", len(d.Paths))
	}
	// Every pair of edges in a triangle shares a node → 3 join pairs.
	if len(d.Joins) != 3 {
		t.Fatalf("joins = %d, want 3", len(d.Joins))
	}
	for pair, preds := range d.Joins {
		if len(preds) != 1 {
			t.Errorf("pair %v has %d preds, want 1", pair, len(preds))
		}
		// Predicates must reference matching query nodes.
		a, b := pair[0], pair[1]
		for _, pr := range preds {
			if d.Paths[a].Nodes[pr.PosA] != d.Paths[b].Nodes[pr.PosB] {
				t.Errorf("pred mismatch for pair %v", pair)
			}
		}
	}
	// Joined and Preds orientation.
	j0 := d.Joined(0)
	if len(j0) != 2 {
		t.Errorf("Joined(0) = %v", j0)
	}
	p01 := d.Preds(0, 1)
	p10 := d.Preds(1, 0)
	if len(p01) != len(p10) {
		t.Fatal("asymmetric preds")
	}
	for i := range p01 {
		if p01[i].PosA != p10[i].PosB || p01[i].PosB != p10[i].PosA {
			t.Error("Preds orientation broken")
		}
	}
}

func TestCoverAssignments(t *testing.T) {
	q := triangle(t)
	d, err := Decompose(q, fixedEst(10), Options{MaxLen: 2, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Every query node and edge must be covered by exactly one partition.
	for n := query.NodeID(0); int(n) < q.NumNodes(); n++ {
		p, ok := d.CoverNode[n]
		if !ok || p < 0 || p >= len(d.Paths) {
			t.Errorf("node %d cover = %d (%v)", n, p, ok)
		}
	}
	for _, e := range q.Edges() {
		p, ok := d.CoverEdge[e]
		if !ok || p < 0 || p >= len(d.Paths) {
			t.Errorf("edge %v cover = %d (%v)", e, p, ok)
		}
	}
}

func TestRandomModeCovers(t *testing.T) {
	q := triangle(t)
	for seed := int64(0); seed < 10; seed++ {
		d, err := Decompose(q, fixedEst(10), Options{
			MaxLen: 2, Alpha: 0.5, Mode: ModeRandom,
			Rand: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		coversAllEdges(t, q, d)
	}
}

func TestSearchSpaceSize(t *testing.T) {
	q := triangle(t)
	d, err := Decompose(q, fixedEst(7), Options{MaxLen: 1, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.SearchSpaceSize(); got != 7*7*7 {
		t.Errorf("SearchSpaceSize = %v", got)
	}
}

func TestCostUsesDegreeAndDensity(t *testing.T) {
	// Star query: center with 3 leaves. The 2-edge paths through the center
	// have higher degree than single edges, lowering their cost.
	q := query.New()
	c := q.AddNode(0)
	for i := 0; i < 3; i++ {
		leaf := q.AddNode(1)
		if err := q.AddEdge(c, leaf); err != nil {
			t.Fatal(err)
		}
	}
	est := mapEst{2: 100, 3: 10}
	d, err := Decompose(q, est, Options{MaxLen: 2, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	coversAllEdges(t, q, d)
	// 2-edge paths are 10× more selective here, so the greedy cover should
	// use 2 of them rather than 3 single edges.
	if len(d.Paths) != 2 {
		t.Errorf("star decomposition uses %d paths, want 2", len(d.Paths))
	}
	for i := range d.Paths {
		if len(d.Paths[i].Nodes) != 3 {
			t.Errorf("path %d has %d nodes, want 3", i, len(d.Paths[i].Nodes))
		}
	}
}
