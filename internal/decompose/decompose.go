// Package decompose implements the query path decomposition of Section
// 5.2.1: the query is split into a set of (possibly overlapping) paths of
// length at most L that cover every query edge, chosen by a greedy SET COVER
// over a cardinality-based cost model, with join predicates recorded between
// overlapping paths.
package decompose

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/prob"
	"repro/internal/query"
)

// CardEstimator estimates |PIndex(X, α)|; implemented by pathindex.Index via
// the offline histograms and exponential curve fitting.
type CardEstimator interface {
	Cardinality(X []prob.LabelID, alpha float64) float64
}

// Path is one element of a decomposition.
type Path struct {
	// ID is the partition index of the path in the decomposition.
	ID int
	// Nodes are the query node positions along the path.
	Nodes []query.NodeID
	// Labels is the label sequence lQ(V_P).
	Labels []prob.LabelID
	// Info caches the path-level statistics.
	Info query.PathInfo
	// Card is the estimated candidate cardinality |PIndex(lQ(V_P), α)|.
	Card float64
	// Cost is C(P, α) = Card / (degree · density).
	Cost float64
}

// JoinPred equates position PosA on one path with position PosB on another:
// both map to the same query node.
type JoinPred struct {
	PosA, PosB int
}

// Decomposition is a set of covering paths plus the join predicates between
// every overlapping pair.
type Decomposition struct {
	// Mode records which strategy produced the decomposition.
	Mode Mode
	// Seed is the seed the random cover actually drew from (ModeRandom
	// only; 0 for ModeOptimized). Re-running Decompose with Options.Seed
	// set to this value reproduces the decomposition exactly, which is what
	// makes EXPLAIN output and ablation runs replayable.
	Seed  int64
	Paths []Path
	// Joins maps (i,j) with i < j to the join predicates between Paths[i]
	// and Paths[j]. Pairs without shared nodes are absent.
	Joins map[[2]int][]JoinPred
	// CoverNode assigns every query node to the one partition that covers
	// its probability in w1 (Section 5.2.4); CoverEdge does the same for
	// query edges (indexed as in query.Edges order via edge key).
	CoverNode map[query.NodeID]int
	CoverEdge map[[2]query.NodeID]int
}

// Mode selects the decomposition strategy.
type Mode int

const (
	// ModeOptimized uses the greedy SET COVER over the cost model.
	ModeOptimized Mode = iota
	// ModeRandom is the paper's "Random decomposition" baseline: paths are
	// chosen at random until the query is covered.
	ModeRandom
)

// Options configures Decompose.
type Options struct {
	MaxLen int     // L
	Alpha  float64 // query threshold (for cardinality estimation)
	Mode   Mode
	// Seed seeds ModeRandom when Rand is nil (0 = the deterministic
	// default). The seed actually used is recorded in Decomposition.Seed.
	Seed int64
	// Rand, when set, is drawn from to derive the ModeRandom seed, so a
	// caller-supplied stream stays reproducible and the derived seed is
	// still recorded.
	Rand *rand.Rand
}

// String names the mode for plan trees and logs.
func (m Mode) String() string {
	switch m {
	case ModeOptimized:
		return "optimized"
	case ModeRandom:
		return "random"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Decompose splits the query into covering paths. Single-node queries yield
// one single-node "path". It is Enumerate followed by Cover.
func Decompose(q *query.Query, est CardEstimator, opt Options) (*Decomposition, error) {
	cands, err := Enumerate(context.Background(), q, est, opt.MaxLen, opt.Alpha)
	if err != nil {
		return nil, err
	}
	return Cover(q, cands, opt)
}

// Enumerate lists the candidate paths a decomposition may choose from: every
// simple path in Q with 1..MaxLen edges (one orientation each) with its
// estimated cardinality and cost. A query with no edges yields the
// single-node "path". The planner enumerates once and runs Cover per mode.
// The walk grows polynomially in query size but with a high exponent on
// dense queries, so ctx is checked periodically — a request deadline really
// does bound planning.
func Enumerate(ctx context.Context, q *query.Query, est CardEstimator, maxLen int, alpha float64) ([]Path, error) {
	if maxLen < 1 {
		return nil, fmt.Errorf("decompose: MaxLen %d < 1", maxLen)
	}
	if q.NumNodes() == 0 {
		return nil, fmt.Errorf("decompose: empty query")
	}
	if q.NumEdges() == 0 {
		if q.NumNodes() > 1 {
			return nil, fmt.Errorf("decompose: query has %d nodes but no edges", q.NumNodes())
		}
		p, err := makePath(q, est, []query.NodeID{0}, alpha)
		if err != nil {
			return nil, err
		}
		return []Path{p}, nil
	}
	return enumeratePaths(ctx, q, est, maxLen, alpha)
}

// Cover selects a covering subset of pre-enumerated candidate paths
// according to opt.Mode, recording the mode (and, for ModeRandom, the seed
// actually used) in the decomposition.
func Cover(q *query.Query, cands []Path, opt Options) (*Decomposition, error) {
	if q.NumEdges() == 0 {
		if len(cands) != 1 {
			return nil, fmt.Errorf("decompose: edgeless query wants exactly one candidate path, have %d", len(cands))
		}
		d := &Decomposition{Mode: opt.Mode, Paths: []Path{cands[0]}}
		d.Paths[0].ID = 0
		finish(q, d)
		return d, nil
	}

	var chosen []Path
	var seed int64
	switch opt.Mode {
	case ModeOptimized:
		chosen = greedyCover(q, cands)
	case ModeRandom:
		// Derive one concrete seed — from the caller's stream, the explicit
		// option, or the deterministic default — and cover from a generator
		// built on exactly that seed, so the recorded value reproduces the
		// decomposition no matter how it was originally seeded.
		seed = opt.Seed
		if opt.Rand != nil {
			seed = opt.Rand.Int63()
		}
		if seed == 0 {
			seed = 1
		}
		chosen = randomCover(q, cands, rand.New(rand.NewSource(seed)))
	default:
		return nil, fmt.Errorf("decompose: unknown mode %d", opt.Mode)
	}
	if chosen == nil {
		return nil, fmt.Errorf("decompose: query not coverable with the enumerated paths (MaxLen %d)", opt.MaxLen)
	}
	d := &Decomposition{Mode: opt.Mode, Seed: seed, Paths: chosen}
	finish(q, d)
	return d, nil
}

// enumeratePaths lists every simple path in Q with 1..maxLen edges, one
// orientation per path, with its cost.
func enumeratePaths(ctx context.Context, q *query.Query, est CardEstimator, maxLen int, alpha float64) ([]Path, error) {
	var out []Path
	n := q.NumNodes()
	steps := 0
	var dfs func(path []query.NodeID) error
	dfs = func(path []query.NodeID) error {
		steps++
		if steps&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if len(path) >= 2 {
			// Canonical orientation: first node < last node. (Equality is
			// impossible on a simple path.)
			if path[0] < path[len(path)-1] {
				p, err := makePath(q, est, path, alpha)
				if err != nil {
					return err
				}
				out = append(out, p)
			}
		}
		if len(path) == maxLen+1 {
			return nil
		}
		tail := path[len(path)-1]
		for _, nb := range q.Neighbors(tail) {
			skip := false
			for _, v := range path {
				if v == nb {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			if err := dfs(append(path, nb)); err != nil {
				return err
			}
		}
		return nil
	}
	for v := 0; v < n; v++ {
		if err := dfs([]query.NodeID{query.NodeID(v)}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func makePath(q *query.Query, est CardEstimator, nodes []query.NodeID, alpha float64) (Path, error) {
	cp := make([]query.NodeID, len(nodes))
	copy(cp, nodes)
	info, err := q.PathStats(cp)
	if err != nil {
		return Path{}, err
	}
	p := Path{Nodes: cp, Labels: q.Labels(cp), Info: info}
	if est != nil {
		p.Card = est.Cardinality(p.Labels, alpha)
	}
	deg := float64(info.Degree)
	if deg < 1 {
		deg = 1
	}
	den := info.Density
	if den <= 0 {
		den = 1
	}
	p.Cost = p.Card / (deg * den)
	if p.Cost <= 0 {
		// Zero estimated candidates: essentially free, but keep a tiny
		// positive cost so efficiency stays finite and comparable.
		p.Cost = 1e-9
	}
	return p, nil
}

// pathEdges returns the edge keys (a<b) traversed by the path.
func pathEdges(p *Path) [][2]query.NodeID {
	out := make([][2]query.NodeID, 0, len(p.Nodes)-1)
	for i := 0; i+1 < len(p.Nodes); i++ {
		a, b := p.Nodes[i], p.Nodes[i+1]
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]query.NodeID{a, b})
	}
	return out
}

// greedyCover runs the standard greedy SET COVER approximation: repeatedly
// add the path with the highest efficiency (newly covered edges per cost)
// until all query edges are covered.
func greedyCover(q *query.Query, cands []Path) []Path {
	uncovered := make(map[[2]query.NodeID]bool, q.NumEdges())
	for _, e := range q.Edges() {
		uncovered[e] = true
	}
	var chosen []Path
	for len(uncovered) > 0 {
		bestIdx := -1
		bestEff := -1.0
		for i := range cands {
			newCover := 0
			for _, e := range pathEdges(&cands[i]) {
				if uncovered[e] {
					newCover++
				}
			}
			if newCover == 0 {
				continue
			}
			eff := float64(newCover) / cands[i].Cost
			if eff > bestEff {
				bestEff = eff
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			return nil // uncoverable (disconnected edge from all candidates)
		}
		p := cands[bestIdx]
		p.ID = len(chosen)
		chosen = append(chosen, p)
		for _, e := range pathEdges(&p) {
			delete(uncovered, e)
		}
	}
	return chosen
}

// randomCover picks random candidate paths until the query is covered — the
// "Random decomposition" baseline of Section 6.2.1.
func randomCover(q *query.Query, cands []Path, rng *rand.Rand) []Path {
	uncovered := make(map[[2]query.NodeID]bool, q.NumEdges())
	for _, e := range q.Edges() {
		uncovered[e] = true
	}
	perm := rng.Perm(len(cands))
	var chosen []Path
	for _, i := range perm {
		if len(uncovered) == 0 {
			break
		}
		helps := false
		for _, e := range pathEdges(&cands[i]) {
			if uncovered[e] {
				helps = true
				break
			}
		}
		if !helps {
			continue
		}
		p := cands[i]
		p.ID = len(chosen)
		chosen = append(chosen, p)
		for _, e := range pathEdges(&p) {
			delete(uncovered, e)
		}
	}
	if len(uncovered) > 0 {
		return nil
	}
	return chosen
}

// finish computes join predicates and the w1 cover assignment.
func finish(q *query.Query, d *Decomposition) {
	d.Joins = make(map[[2]int][]JoinPred)
	for i := 0; i < len(d.Paths); i++ {
		posI := positions(&d.Paths[i])
		for j := i + 1; j < len(d.Paths); j++ {
			var preds []JoinPred
			for pj, n := range d.Paths[j].Nodes {
				if pi, ok := posI[n]; ok {
					preds = append(preds, JoinPred{PosA: pi, PosB: pj})
				}
			}
			if preds != nil {
				sort.Slice(preds, func(a, b int) bool { return preds[a].PosA < preds[b].PosA })
				d.Joins[[2]int{i, j}] = preds
			}
		}
	}
	// w1 cover: first (lowest-ID) path containing the node / edge wins.
	d.CoverNode = make(map[query.NodeID]int)
	d.CoverEdge = make(map[[2]query.NodeID]int)
	for i := range d.Paths {
		for _, n := range d.Paths[i].Nodes {
			if _, ok := d.CoverNode[n]; !ok {
				d.CoverNode[n] = i
			}
		}
		for _, e := range pathEdges(&d.Paths[i]) {
			if _, ok := d.CoverEdge[e]; !ok {
				d.CoverEdge[e] = i
			}
		}
	}
}

func positions(p *Path) map[query.NodeID]int {
	m := make(map[query.NodeID]int, len(p.Nodes))
	for i, n := range p.Nodes {
		m[n] = i
	}
	return m
}

// Joined returns J(i): the partition ids sharing at least one node with
// partition i, ascending.
func (d *Decomposition) Joined(i int) []int {
	var out []int
	for k := range d.Joins {
		if k[0] == i {
			out = append(out, k[1])
		} else if k[1] == i {
			out = append(out, k[0])
		}
	}
	sort.Ints(out)
	return out
}

// Preds returns the join predicates between partitions i and j oriented so
// PosA indexes partition i's path and PosB partition j's.
func (d *Decomposition) Preds(i, j int) []JoinPred {
	if i < j {
		return d.Joins[[2]int{i, j}]
	}
	raw := d.Joins[[2]int{j, i}]
	out := make([]JoinPred, len(raw))
	for k, p := range raw {
		out[k] = JoinPred{PosA: p.PosB, PosB: p.PosA}
	}
	return out
}

// SearchSpaceSize returns the product of estimated path cardinalities — the
// SS0 objective the SET COVER minimizes.
func (d *Decomposition) SearchSpaceSize() float64 {
	ss := 1.0
	for i := range d.Paths {
		ss *= d.Paths[i].Card
	}
	return ss
}
