package naive

import (
	"context"
	"math"
	"testing"

	"repro/internal/entity"
	"repro/internal/fixtures"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/refgraph"
)

func motivatingQuery(t *testing.T, g *entity.Graph) *query.Query {
	t.Helper()
	alpha := g.Alphabet()
	q := query.New()
	q1 := q.AddNode(alpha.ID("r"))
	q2 := q.AddNode(alpha.ID("a"))
	q3 := q.AddNode(alpha.ID("i"))
	if err := q.AddEdge(q1, q2); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(q2, q3); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestMatchesMotivatingExample(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	q := motivatingQuery(t, g)
	ms, err := Matches(context.Background(), g, q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("got %d matches, want 5", len(ms))
	}
	want := map[[3]entity.ID]float64{}
	for _, em := range fixtures.MotivatingMatches() {
		want[em.Nodes] = em.Pr
	}
	for _, m := range ms {
		key := [3]entity.ID{m.Mapping[0], m.Mapping[1], m.Mapping[2]}
		if p, ok := want[key]; !ok || math.Abs(p-m.Pr()) > 1e-9 {
			t.Errorf("match %v Pr=%v want %v (ok=%v)", key, m.Pr(), p, ok)
		}
	}

	// Threshold filter.
	ms, err = Matches(context.Background(), g, q, fixtures.MotivatingAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Mapping[0] != fixtures.S34 {
		t.Fatalf("α=0.2: %+v", ms)
	}
}

func TestMatchesRejectsSharedReferences(t *testing.T) {
	// Query (r, a, r) would need s3 and s34 simultaneously — illegal.
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	alpha := g.Alphabet()
	q := query.New()
	q1 := q.AddNode(alpha.ID("r"))
	q2 := q.AddNode(alpha.ID("a"))
	q3 := q.AddNode(alpha.ID("r"))
	if err := q.AddEdge(q1, q2); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(q2, q3); err != nil {
		t.Fatal(err)
	}
	ms, err := Matches(context.Background(), g, q, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if !RefsLegal(g, m.Mapping) {
			t.Errorf("illegal match emitted: %v", m.Mapping)
		}
		if m.Mapping[0] == m.Mapping[2] {
			t.Errorf("non-injective match emitted: %v", m.Mapping)
		}
	}
}

func TestEnumerateWorldsSumsToOne(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	worlds := 0
	err = EnumerateWorlds(g, func(w World) bool {
		total += w.P
		worlds++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("world probabilities sum to %v over %d worlds", total, worlds)
	}
}

func TestEnumerateWorldsEarlyStop(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := EnumerateWorlds(g, func(World) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("early stop at %d", n)
	}
}

func TestEnumerateWorldsTooLarge(t *testing.T) {
	alpha := prob.MustAlphabet("x")
	d := refgraph.New(alpha)
	n := 60
	for i := 0; i < n; i++ {
		d.AddReference(prob.Point(0))
	}
	for i := 1; i < n; i++ {
		if err := d.AddEdge(refgraph.RefID(0), refgraph.RefID(i), refgraph.EdgeDist{P: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := EnumerateWorlds(g, func(World) bool { return true }); err == nil {
		t.Error("oversized world space accepted")
	}
}

func TestWorldMatchProbAgainstEq11(t *testing.T) {
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatal(err)
	}
	q := motivatingQuery(t, g)
	for _, em := range fixtures.MotivatingMatches() {
		got, err := WorldMatchProb(g, q, em.Nodes[:], 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-em.Pr) > 1e-9 {
			t.Errorf("worlds Pr(%v) = %v, want %v", em.Nodes, got, em.Pr)
		}
	}
}

func TestMatchesDisconnectedQuery(t *testing.T) {
	// Two isolated labeled nodes: matches are all injective legal pairs.
	alpha := prob.MustAlphabet("x", "y")
	d := refgraph.New(alpha)
	d.AddReference(prob.Point(0))
	d.AddReference(prob.Point(0))
	d.AddReference(prob.Point(1))
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := query.New()
	q.AddNode(prob.LabelID(0))
	q.AddNode(prob.LabelID(0))
	ms, err := Matches(context.Background(), g, q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// (e0,e1) and (e1,e0).
	if len(ms) != 2 {
		t.Fatalf("disconnected query matches = %+v", ms)
	}
}
