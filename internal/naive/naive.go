// Package naive provides ground-truth baselines for testing and evaluation:
//
//   - Matches: a brute-force backtracking matcher over GU that evaluates
//     Definition 5 directly from Eq. 11, with no indexing or pruning beyond
//     labels/edges/reference legality. It is the correctness oracle for the
//     optimized pipeline.
//   - EnumerateWorlds: a full possible-worlds enumerator for tiny graphs,
//     used to validate that Pr(M) = Prn(M)·Prle(M) (Eq. 11) agrees with the
//     sum over possible world graphs (Definition 4 / Eq. 8).
package naive

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/entity"
	"repro/internal/join"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/refgraph"
)

// Matches enumerates every probabilistic match of q in g with Pr(M) ≥ alpha
// by backtracking over GU.
func Matches(ctx context.Context, g *entity.Graph, q *query.Query, alpha float64) ([]join.Match, error) {
	n := q.NumNodes()
	if n == 0 {
		return nil, nil
	}
	order := connectedOrder(q)
	mapping := make([]entity.ID, n)
	used := make(map[entity.ID]bool, n)
	var out []join.Match

	var rec func(step int) error
	rec = func(step int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if step == n {
			asn := entityAssignment(g, q, mapping)
			prle := g.Prle(asn)
			if prle == 0 {
				return nil
			}
			prn := g.Prn(asn.Nodes)
			if prle*prn+1e-12 < alpha {
				return nil
			}
			m := join.Match{Mapping: append([]entity.ID(nil), mapping...), Prle: prle, Prn: prn}
			out = append(out, m)
			return nil
		}
		qn := order[step]
		for _, v := range candidateEntities(g, q, mapping, used, order, step) {
			if used[v] {
				continue
			}
			if !refsOK(g, mapping, order[:step], v) {
				continue
			}
			mapping[qn] = v
			used[v] = true
			if err := rec(step + 1); err != nil {
				return err
			}
			delete(used, v)
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Mapping, out[j].Mapping
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out, nil
}

// connectedOrder orders query nodes so each node (after the first of each
// component) is adjacent to an earlier one, enabling adjacency-guided
// candidate generation.
func connectedOrder(q *query.Query) []query.NodeID {
	n := q.NumNodes()
	placed := make([]bool, n)
	var order []query.NodeID
	for len(order) < n {
		seed := query.NodeID(-1)
		for v := 0; v < n; v++ {
			if !placed[v] {
				seed = query.NodeID(v)
				break
			}
		}
		placed[seed] = true
		queue := []query.NodeID{seed}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range q.Neighbors(v) {
				if !placed[u] {
					placed[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return order
}

// candidateEntities lists candidates for the query node at order[step]: the
// GU neighbors of an already-mapped adjacent query node when one exists
// (pruning the search), else all nodes with a compatible label.
func candidateEntities(g *entity.Graph, q *query.Query, mapping []entity.ID, used map[entity.ID]bool, order []query.NodeID, step int) []entity.ID {
	qn := order[step]
	label := q.Label(qn)
	mappedPos := make(map[query.NodeID]bool, step)
	for _, o := range order[:step] {
		mappedPos[o] = true
	}
	var anchor query.NodeID = -1
	for _, nb := range q.Neighbors(qn) {
		if mappedPos[nb] {
			anchor = nb
			break
		}
	}
	var cands []entity.ID
	if anchor >= 0 {
		for _, nb := range g.Neighbors(mapping[anchor]) {
			if g.HasLabel(nb.To, label) && edgesSatisfied(g, q, mapping, mappedPos, qn, nb.To) {
				cands = append(cands, nb.To)
			}
		}
	} else {
		for v := 0; v < g.NumNodes(); v++ {
			id := entity.ID(v)
			if g.HasLabel(id, label) {
				cands = append(cands, id)
			}
		}
	}
	return cands
}

// edgesSatisfied checks GU edges towards every already-mapped query
// neighbor of qn.
func edgesSatisfied(g *entity.Graph, q *query.Query, mapping []entity.ID, mappedPos map[query.NodeID]bool, qn query.NodeID, v entity.ID) bool {
	for _, nb := range q.Neighbors(qn) {
		if !mappedPos[nb] {
			continue
		}
		if _, ok := g.EdgeBetween(v, mapping[nb]); !ok {
			return false
		}
	}
	return true
}

func refsOK(g *entity.Graph, mapping []entity.ID, placed []query.NodeID, v entity.ID) bool {
	for _, p := range placed {
		if g.RefsOverlap(mapping[p], v) {
			return false
		}
	}
	return true
}

func entityAssignment(g *entity.Graph, q *query.Query, mapping []entity.ID) entity.Assignment {
	n := q.NumNodes()
	asn := entity.Assignment{
		Nodes:  make([]entity.ID, n),
		Labels: make([]prob.LabelID, n),
	}
	for i := 0; i < n; i++ {
		asn.Nodes[i] = mapping[i]
		asn.Labels[i] = q.Label(query.NodeID(i))
	}
	for _, e := range q.Edges() {
		asn.Edges = append(asn.Edges, [2]int{int(e[0]), int(e[1])})
	}
	return asn
}

// World is one fully-instantiated possible world graph of a PEG.
type World struct {
	// Exists[v] reports node existence; Labels[v] is meaningful only when
	// Exists[v].
	Exists []bool
	Labels []prob.LabelID
	// Edges holds the existing edges, canonical (a<b) keys.
	Edges map[[2]entity.ID]bool
	// P is the world probability.
	P float64
}

// MaxWorldStates bounds the possible-worlds enumeration.
const MaxWorldStates = 1 << 22

// EnumerateWorlds calls fn for every possible world of the PEG with its
// probability (Eq. 8). It errors out when the state space exceeds
// MaxWorldStates. Worlds with zero probability are skipped. Enumeration
// stops early when fn returns false.
func EnumerateWorlds(g *entity.Graph, fn func(w World) bool) error {
	n := g.NumNodes()
	// Bound the state space: configs × labels × edges.
	states := 1.0
	for i := 0; i < g.NumComponents(); i++ {
		states *= float64(len(g.Component(i).Configs))
	}
	for v := 0; v < n; v++ {
		states *= float64(len(g.Labels(entity.ID(v))))
	}
	states *= float64(uint64(1) << uint(min(g.NumEdges(), 40)))
	if states > MaxWorldStates {
		return fmt.Errorf("naive: possible world space too large (~%.3g states)", states)
	}

	w := World{
		Exists: make([]bool, n),
		Labels: make([]prob.LabelID, n),
		Edges:  make(map[[2]entity.ID]bool),
	}
	stop := false
	enumConfigs(g, 0, 1, &w, &stop, fn)
	return nil
}

func enumConfigs(g *entity.Graph, ci int, p float64, w *World, stop *bool, fn func(World) bool) {
	if *stop {
		return
	}
	if ci == g.NumComponents() {
		enumLabels(g, 0, p, w, stop, fn)
		return
	}
	comp := g.Component(ci)
	for _, cfg := range comp.Configs {
		if cfg.P == 0 {
			continue
		}
		for pos, m := range comp.Members {
			w.Exists[m] = cfg.Mask&(uint64(1)<<uint(pos)) != 0
		}
		enumConfigs(g, ci+1, p*cfg.P, w, stop, fn)
	}
}

func enumLabels(g *entity.Graph, v int, p float64, w *World, stop *bool, fn func(World) bool) {
	if *stop {
		return
	}
	if v == g.NumNodes() {
		edges := collectEdges(g, w)
		enumEdges(g, edges, 0, p, w, stop, fn)
		return
	}
	if !w.Exists[v] {
		enumLabels(g, v+1, p, w, stop, fn)
		return
	}
	for _, e := range g.Node(entity.ID(v)).Label.Entries() {
		w.Labels[v] = e.Label
		enumLabels(g, v+1, p*e.P, w, stop, fn)
	}
}

func collectEdges(g *entity.Graph, w *World) [][2]entity.ID {
	var out [][2]entity.ID
	for v := 0; v < g.NumNodes(); v++ {
		if !w.Exists[v] {
			continue
		}
		for _, nb := range g.Neighbors(entity.ID(v)) {
			if nb.To > entity.ID(v) && w.Exists[nb.To] {
				out = append(out, [2]entity.ID{entity.ID(v), nb.To})
			}
		}
	}
	return out
}

func enumEdges(g *entity.Graph, edges [][2]entity.ID, i int, p float64, w *World, stop *bool, fn func(World) bool) {
	if *stop {
		return
	}
	if i == len(edges) {
		w.P = p
		if !fn(*w) {
			*stop = true
		}
		return
	}
	e := edges[i]
	ep, _ := g.EdgeBetween(e[0], e[1])
	pe := ep.Prob(w.Labels[e[0]], w.Labels[e[1]])
	if pe > 0 {
		w.Edges[e] = true
		enumEdges(g, edges, i+1, p*pe, w, stop, fn)
		delete(w.Edges, e)
	}
	if pe < 1 {
		enumEdges(g, edges, i+1, p*(1-pe), w, stop, fn)
	}
}

// WorldMatchProb sums, over all possible worlds, the probability of worlds
// in which the given mapping is a match of q (Definition 4). Intended for
// tiny graphs in tests.
func WorldMatchProb(g *entity.Graph, q *query.Query, mapping []entity.ID, alphaUnused float64) (float64, error) {
	total := 0.0
	err := EnumerateWorlds(g, func(w World) bool {
		if mappingMatches(q, mapping, &w) {
			total += w.P
		}
		return true
	})
	return total, err
}

func mappingMatches(q *query.Query, mapping []entity.ID, w *World) bool {
	seen := make(map[entity.ID]bool, len(mapping))
	for n := 0; n < q.NumNodes(); n++ {
		v := mapping[n]
		if !w.Exists[v] || w.Labels[v] != q.Label(query.NodeID(n)) || seen[v] {
			return false
		}
		seen[v] = true
	}
	for _, e := range q.Edges() {
		a, b := mapping[e[0]], mapping[e[1]]
		if a > b {
			a, b = b, a
		}
		if !w.Edges[[2]entity.ID{a, b}] {
			return false
		}
	}
	return true
}

// RefsLegal reports whether a mapping uses pairwise reference-disjoint
// entities (legality in Definition 4).
func RefsLegal(g *entity.Graph, mapping []entity.ID) bool {
	seen := make(map[refgraph.RefID]struct{})
	for _, v := range mapping {
		for _, r := range g.Refs(v) {
			if _, dup := seen[r]; dup {
				return false
			}
			seen[r] = struct{}{}
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
