// Package fixtures provides shared test fixtures, most importantly the
// paper's Section 2 motivating example (Figure 1), which is asserted at
// every layer of the system: entity model, naive matcher, and the full
// indexed pipeline.
package fixtures

import (
	"repro/internal/entity"
	"repro/internal/prob"
	"repro/internal/refgraph"
)

// Motivating example entity ids (singletons are created in reference order,
// the merged set after them).
const (
	S1  = entity.ID(0) // entity of r1 ("Gerald Maya")
	S2  = entity.ID(1) // entity of r2 ("Becky Castor")
	S3  = entity.ID(2) // entity of r3 ("Christopher Tucker")
	S4  = entity.ID(3) // entity of r4 ("Chris Tucker")
	S34 = entity.ID(4) // merged entity {r3, r4}
)

// MotivatingAlphabet returns the example's label alphabet:
// a = Academia, r = Research Lab, i = Industry.
func MotivatingAlphabet() *prob.Alphabet {
	return prob.MustAlphabet("a", "r", "i")
}

// MotivatingPGD builds the Figure 1(a) reference network:
//
//	r1: r(0.25), i(0.75)   edges: r1–r2 (0.9)
//	r2: a(1)                      r2–r3 (1.0)
//	r3: r(1)                      r2–r4 (0.5)
//	r4: i(1)               set:   {r3,r4} with merge probability 0.8
func MotivatingPGD() *refgraph.PGD {
	alpha := MotivatingAlphabet()
	a, r, i := alpha.ID("a"), alpha.ID("r"), alpha.ID("i")
	d := refgraph.New(alpha)
	r1 := d.AddReference(prob.MustDist(prob.LabelProb{Label: r, P: 0.25}, prob.LabelProb{Label: i, P: 0.75}))
	r2 := d.AddReference(prob.Point(a))
	r3 := d.AddReference(prob.Point(r))
	r4 := d.AddReference(prob.Point(i))
	must(d.AddEdge(r1, r2, refgraph.EdgeDist{P: 0.9}))
	must(d.AddEdge(r2, r3, refgraph.EdgeDist{P: 1.0}))
	must(d.AddEdge(r2, r4, refgraph.EdgeDist{P: 0.5}))
	if _, err := d.AddReferenceSet([]refgraph.RefID{r3, r4}, 0.8); err != nil {
		panic(err)
	}
	return d
}

// MotivatingGraph builds the PEG for the motivating example under the
// default (example) semantics.
func MotivatingGraph() (*entity.Graph, error) {
	return entity.Build(MotivatingPGD(), entity.BuildOptions{})
}

// MotivatingMatches lists the five potential matches of the (r,a,i) path
// query of Figure 1(d) with their exact probabilities under Eq. 11.
//
// Note: the paper's prose quotes 0.084 and 0.253 for the two merged-world
// matches, omitting the Prn(s34) = 0.8 factor its own Definition 4 requires
// (and does include for the unmerged 0.1 case). The exact values below
// include it; see DESIGN.md.
type ExampleMatch struct {
	Nodes [3]entity.ID
	Pr    float64
}

// MotivatingMatches returns all probabilistic matches of the (r,a,i) query.
func MotivatingMatches() []ExampleMatch {
	return []ExampleMatch{
		{Nodes: [3]entity.ID{S3, S2, S4}, Pr: 0.1},     // paper: 0.1 (includes the 0.2 unmerged factor)
		{Nodes: [3]entity.ID{S3, S2, S1}, Pr: 0.135},   // paper implies < 0.25
		{Nodes: [3]entity.ID{S1, S2, S4}, Pr: 0.0225},  // paper implies < 0.25
		{Nodes: [3]entity.ID{S1, S2, S34}, Pr: 0.0675}, // paper prose: 0.084 (omits 0.8)
		{Nodes: [3]entity.ID{S34, S2, S1}, Pr: 0.2025}, // paper prose: 0.253 (omits 0.8)
	}
}

// MotivatingAlpha is the query threshold used in our end-to-end assertions.
// The paper uses 0.25 with its (inconsistent) prose numbers; under the exact
// Eq. 11 probabilities the unique answer (s34,s2,s1) has probability 0.2025,
// so tests use 0.2 to preserve the paper's conclusion that the merged path
// is the only answer.
const MotivatingAlpha = 0.2

func must(err error) {
	if err != nil {
		panic(err)
	}
}
