// Package trace is a dependency-free distributed-tracing kernel for the
// serving tier: 128-bit trace ids, 64-bit span ids, W3C trace-context
// (traceparent) propagation, head-based sampling, a bounded in-process
// ring recorder backing GET /debug/trace/{id}, and NDJSON span export
// that shares the TraceWriter plumbing the request tracer already uses.
//
// The design optimises for the disabled path: a nil *Tracer is a valid
// tracer, every method on a nil *Span is a no-op, and the sampling
// decision is made once at the root (then inherited across processes via
// the traceparent sampled flag), so an unsampled request allocates a few
// small Span structs and nothing else.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"math/bits"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the W3C trace-context propagation header.
const Header = "traceparent"

// TraceID is a 128-bit trace identifier (zero = invalid).
type TraceID [16]byte

// SpanID is a 64-bit span identifier (zero = invalid).
type SpanID [8]byte

func (t TraceID) IsZero() bool   { return t == TraceID{} }
func (s SpanID) IsZero() bool    { return s == SpanID{} }
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: enough to continue the
// trace in another process and to inherit its sampling decision.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context identifies a span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Inject writes sc as a traceparent header (version 00). A zero context
// writes nothing.
func Inject(sc SpanContext, h http.Header) {
	if !sc.Valid() {
		return
	}
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	h.Set(Header, "00-"+sc.TraceID.String()+"-"+sc.SpanID.String()+"-"+flags)
}

// Extract parses a traceparent header. It accepts any non-ff version with
// the version-00 field layout and rejects malformed or all-zero ids.
func Extract(h http.Header) (SpanContext, bool) {
	return ParseTraceparent(h.Get(Header))
}

// ParseTraceparent parses a single traceparent value.
func ParseTraceparent(v string) (SpanContext, bool) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	if v[0:2] == "ff" {
		return SpanContext{}, false
	}
	if len(v) > 55 && v[55] != '-' { // future versions may append fields
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(v[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(v[36:52])); err != nil {
		return SpanContext{}, false
	}
	flags, err := hex.DecodeString(v[53:55])
	if err != nil || !sc.Valid() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&1 == 1
	return sc, true
}

// SpanData is one finished span, as recorded in the ring and exported as
// an NDJSON line ({"span": {...}}, so it can share a file with the
// request tracer's flat event lines and still be filtered apart).
type SpanData struct {
	TraceID   string            `json:"trace_id"`
	SpanID    string            `json:"span_id"`
	ParentID  string            `json:"parent_id,omitempty"`
	Name      string            `json:"name"`
	Service   string            `json:"service,omitempty"`
	StartNano int64             `json:"start_unix_nano"`
	Micros    float64           `json:"duration_us"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// Stats is a snapshot of the tracer's monotonic counters, exported as
// peg_trace_* metric families.
type Stats struct {
	Recorded  uint64 // spans stored in the ring
	Dropped   uint64 // ring entries overwritten before being read
	Exported  uint64 // spans written as NDJSON lines
	Sampled   uint64 // new roots the head sampler kept
	Unsampled uint64 // new roots the head sampler discarded
	Inherited uint64 // remote contexts continued (sampling decision reused)
}

// Config configures a Tracer.
type Config struct {
	Service  string    // attached to every span (e.g. "pegserve", "pegrouter")
	Sample   float64   // head-sampling probability for new roots, clamped to [0,1]
	Export   io.Writer // optional NDJSON sink for finished spans
	RingSize int       // finished spans retained for /debug/trace (0 = 4096)
}

// Tracer records spans. The zero case — a nil *Tracer — is valid and
// makes every operation a no-op.
type Tracer struct {
	service string
	sample  float64
	export  io.Writer
	exMu    sync.Mutex
	ring    ring

	rngMu sync.Mutex
	rng   pcgPair

	recorded, dropped, exported   atomic.Uint64
	sampled, unsampled, inherited atomic.Uint64
}

// New builds a Tracer. Sample is clamped to [0,1].
func New(cfg Config) *Tracer {
	if cfg.Sample < 0 {
		cfg.Sample = 0
	}
	if cfg.Sample > 1 {
		cfg.Sample = 1
	}
	n := cfg.RingSize
	if n <= 0 {
		n = 4096
	}
	t := &Tracer{service: cfg.Service, sample: cfg.Sample, export: cfg.Export}
	t.ring.buf = make([]SpanData, n)
	var seed [16]byte
	if _, err := rand.Read(seed[:]); err != nil {
		binary.LittleEndian.PutUint64(seed[:8], uint64(time.Now().UnixNano()))
		binary.LittleEndian.PutUint64(seed[8:], uint64(time.Now().UnixNano())^0x9e3779b97f4a7c15)
	}
	t.rng.a = binary.LittleEndian.Uint64(seed[:8]) | 1
	t.rng.b = binary.LittleEndian.Uint64(seed[8:]) | 1
	return t
}

// pcgPair is a tiny splitmix-style generator: crypto-seeded once, then
// cheap per-id. Trace ids need uniqueness, not unpredictability.
type pcgPair struct{ a, b uint64 }

func (p *pcgPair) next() uint64 {
	p.a += 0x9e3779b97f4a7c15
	z := p.a
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= p.b
	p.b = bits.RotateLeft64(p.b, 13) ^ z
	return z ^ (z >> 31)
}

func (t *Tracer) newIDs() (TraceID, SpanID) {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	var tid TraceID
	var sid SpanID
	for tid.IsZero() {
		binary.BigEndian.PutUint64(tid[:8], t.rng.next())
		binary.BigEndian.PutUint64(tid[8:], t.rng.next())
	}
	for sid.IsZero() {
		binary.BigEndian.PutUint64(sid[:], t.rng.next())
	}
	return tid, sid
}

func (t *Tracer) newSpanID() SpanID {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	var sid SpanID
	for sid.IsZero() {
		binary.BigEndian.PutUint64(sid[:], t.rng.next())
	}
	return sid
}

// Span is one in-flight operation. All methods are nil-safe; a Span must
// be mutated by one goroutine at a time (the usual handler-owns-it
// discipline).
type Span struct {
	tr     *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	attrs  map[string]string
}

type ctxKey struct{}
type remoteKey struct{}

// ContextWithRemote stashes an extracted SpanContext so the next
// StartSpan continues the remote trace instead of opening a new root.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// RemoteFromContext returns the remote context stored by
// ContextWithRemote, if any.
func RemoteFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteKey{}).(SpanContext)
	return sc, ok
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartSpan opens a span. Parentage, in priority order: the span already
// in ctx (local child), a SpanContext stored by ContextWithRemote
// (cross-process continuation, sampling inherited), else a new root
// (head sampling applies). Returns ctx unchanged when t is nil.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{tr: t, name: name, start: time.Now()}
	if parent := SpanFromContext(ctx); parent != nil {
		sp.sc = SpanContext{TraceID: parent.sc.TraceID, SpanID: t.newSpanID(), Sampled: parent.sc.Sampled}
		sp.parent = parent.sc.SpanID
	} else if rsc, ok := RemoteFromContext(ctx); ok {
		sp.sc = SpanContext{TraceID: rsc.TraceID, SpanID: t.newSpanID(), Sampled: rsc.Sampled}
		sp.parent = rsc.SpanID
		t.inherited.Add(1)
	} else {
		tid, sid := t.newIDs()
		sp.sc = SpanContext{TraceID: tid, SpanID: sid, Sampled: t.decide()}
		if sp.sc.Sampled {
			t.sampled.Add(1)
		} else {
			t.unsampled.Add(1)
		}
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

func (t *Tracer) decide() bool {
	if t.sample >= 1 {
		return true
	}
	if t.sample <= 0 {
		return false
	}
	t.rngMu.Lock()
	v := t.rng.next()
	t.rngMu.Unlock()
	return float64(v>>11)/(1<<53) < t.sample
}

// Context returns the span's propagation context (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the hex trace id, or "" for a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// Sampled reports whether the span will be recorded on End.
func (s *Span) Sampled() bool { return s != nil && s.sc.Sampled }

// SetAttr attaches a string attribute. No-op on nil or unsampled spans.
func (s *Span) SetAttr(k, v string) {
	if s == nil || !s.sc.Sampled {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// End finishes the span: records it into the ring and exports it as an
// NDJSON line, if sampled.
func (s *Span) End() {
	if s == nil || !s.sc.Sampled {
		return
	}
	s.tr.record(SpanData{
		TraceID:   s.sc.TraceID.String(),
		SpanID:    s.sc.SpanID.String(),
		ParentID:  parentHex(s.parent),
		Name:      s.name,
		Service:   s.tr.service,
		StartNano: s.start.UnixNano(),
		Micros:    float64(time.Since(s.start).Nanoseconds()) / 1e3,
		Attrs:     s.attrs,
	})
}

func parentHex(p SpanID) string {
	if p.IsZero() {
		return ""
	}
	return p.String()
}

// RecordSpan emits a retroactive child span of the span in ctx with an
// explicit start and duration — how already-timed executor stage rows
// become spans without re-instrumenting the executor.
func (t *Tracer) RecordSpan(ctx context.Context, name string, start time.Time, d time.Duration, attrs map[string]string) {
	if t == nil {
		return
	}
	parent := SpanFromContext(ctx)
	if parent == nil || !parent.sc.Sampled {
		return
	}
	t.record(SpanData{
		TraceID:   parent.sc.TraceID.String(),
		SpanID:    t.newSpanID().String(),
		ParentID:  parent.sc.SpanID.String(),
		Name:      name,
		Service:   t.service,
		StartNano: start.UnixNano(),
		Micros:    float64(d.Nanoseconds()) / 1e3,
		Attrs:     attrs,
	})
}

func (t *Tracer) record(sd SpanData) {
	if t.ring.add(sd) {
		t.dropped.Add(1)
	}
	t.recorded.Add(1)
	if t.export != nil {
		line, err := json.Marshal(struct {
			Span SpanData `json:"span"`
		}{sd})
		if err == nil {
			t.exMu.Lock()
			_, werr := t.export.Write(append(line, '\n'))
			t.exMu.Unlock()
			if werr == nil {
				t.exported.Add(1)
			}
		}
	}
}

// Collect returns the ring's spans for a trace id, oldest first.
func (t *Tracer) Collect(traceID string) []SpanData {
	if t == nil {
		return nil
	}
	return t.ring.collect(traceID)
}

// Dump returns up to max of the most recent finished spans.
func (t *Tracer) Dump(max int) []SpanData {
	if t == nil {
		return nil
	}
	return t.ring.dump(max)
}

// Stats snapshots the tracer's counters (zero for a nil tracer).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Recorded:  t.recorded.Load(),
		Dropped:   t.dropped.Load(),
		Exported:  t.exported.Load(),
		Sampled:   t.sampled.Load(),
		Unsampled: t.unsampled.Load(),
		Inherited: t.inherited.Load(),
	}
}

// ring is a fixed-size overwrite-oldest buffer of finished spans.
type ring struct {
	mu   sync.Mutex
	buf  []SpanData
	next int
	full bool
}

func (r *ring) add(sd SpanData) (overwrote bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	overwrote = r.full
	r.buf[r.next] = sd
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	return overwrote
}

// collect returns spans matching traceID in insertion order.
func (r *ring) collect(traceID string) []SpanData {
	var out []SpanData
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scan(func(sd SpanData) {
		if sd.TraceID == traceID {
			out = append(out, sd)
		}
	})
	return out
}

func (r *ring) dump(max int) []SpanData {
	var out []SpanData
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scan(func(sd SpanData) { out = append(out, sd) })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// scan visits live entries oldest-first. Caller holds r.mu.
func (r *ring) scan(f func(SpanData)) {
	if r.full {
		for i := r.next; i < len(r.buf); i++ {
			f(r.buf[i])
		}
	}
	for i := 0; i < r.next; i++ {
		f(r.buf[i])
	}
}
