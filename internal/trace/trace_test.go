package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{Service: "test", Sample: 1})
	_, sp := tr.StartSpan(context.Background(), "root")
	h := make(http.Header)
	Inject(sp.Context(), h)
	v := h.Get(Header)
	if len(v) != 55 || !strings.HasPrefix(v, "00-") || !strings.HasSuffix(v, "-01") {
		t.Fatalf("bad traceparent %q", v)
	}
	sc, ok := Extract(h)
	if !ok {
		t.Fatalf("Extract failed for %q", v)
	}
	if sc != sp.Context() {
		t.Errorf("round trip: got %+v want %+v", sc, sp.Context())
	}
}

func TestTraceparentMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-abc-def-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff reserved
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // bad flags
		"00-4bf92f3577b34da6a3ce929d0e0e47XX-00f067aa0ba902b7-01", // bad hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01", // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01extra",
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", v)
		}
	}
	// A longer version-00-compatible value with a dash-separated extra
	// field is accepted per the spec's forward-compatibility rule.
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future version with extra dash-separated field rejected")
	}
}

func TestSamplerExtremes(t *testing.T) {
	always := New(Config{Sample: 1})
	never := New(Config{Sample: 0})
	for i := 0; i < 50; i++ {
		if _, sp := always.StartSpan(context.Background(), "r"); !sp.Sampled() {
			t.Fatal("sample=1 produced unsampled root")
		}
		if _, sp := never.StartSpan(context.Background(), "r"); sp.Sampled() {
			t.Fatal("sample=0 produced sampled root")
		}
	}
	st := always.Stats()
	if st.Sampled != 50 || st.Unsampled != 0 {
		t.Errorf("always stats = %+v", st)
	}
	if st := never.Stats(); st.Unsampled != 50 {
		t.Errorf("never stats = %+v", st)
	}
}

func TestSamplingInheritedFromRemote(t *testing.T) {
	// A tracer that would locally sample nothing still records spans for
	// a remote context whose sampled flag is set — the head decision is
	// made once, at the origin.
	tr := New(Config{Sample: 0})
	remote := SpanContext{}
	copy(remote.TraceID[:], bytes.Repeat([]byte{0xab}, 16))
	copy(remote.SpanID[:], bytes.Repeat([]byte{0xcd}, 8))
	remote.Sampled = true
	ctx := ContextWithRemote(context.Background(), remote)
	ctx, sp := tr.StartSpan(ctx, "continued")
	if !sp.Sampled() {
		t.Fatal("sampled remote context not inherited")
	}
	if got := sp.Context().TraceID; got != remote.TraceID {
		t.Errorf("trace id not continued: %v", got)
	}
	_, child := tr.StartSpan(ctx, "child")
	if child.Context().TraceID != remote.TraceID || child.parent != sp.sc.SpanID {
		t.Error("child does not chain to local parent")
	}
	child.End()
	sp.End()
	spans := tr.Collect(remote.TraceID.String())
	if len(spans) != 2 {
		t.Fatalf("collected %d spans, want 2", len(spans))
	}
	if spans[0].ParentID != sp.sc.SpanID.String() {
		t.Errorf("child parent = %q, want %q", spans[0].ParentID, sp.sc.SpanID)
	}
	if spans[1].ParentID != remote.SpanID.String() {
		t.Errorf("root parent = %q, want remote %q", spans[1].ParentID, remote.SpanID)
	}
	if st := tr.Stats(); st.Inherited != 1 || st.Recorded != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if sp.TraceID() != "" || sp.Sampled() {
		t.Error("nil span leaked state")
	}
	tr.RecordSpan(ctx, "stage", time.Now(), time.Millisecond, nil)
	if got := tr.Collect("deadbeef"); got != nil {
		t.Errorf("nil Collect = %v", got)
	}
	if got := tr.Stats(); got != (Stats{}) {
		t.Errorf("nil Stats = %+v", got)
	}
}

func TestUnsampledSpanPropagatesButRecordsNothing(t *testing.T) {
	tr := New(Config{Sample: 0})
	ctx, sp := tr.StartSpan(context.Background(), "root")
	if sp.Context().Valid() == false {
		t.Fatal("unsampled span must still carry a valid context for propagation")
	}
	h := make(http.Header)
	Inject(sp.Context(), h)
	if !strings.HasSuffix(h.Get(Header), "-00") {
		t.Errorf("unsampled flag not propagated: %q", h.Get(Header))
	}
	sp.SetAttr("k", "v")
	tr.RecordSpan(ctx, "stage", time.Now(), time.Millisecond, nil)
	sp.End()
	if st := tr.Stats(); st.Recorded != 0 {
		t.Errorf("unsampled request recorded %d spans", st.Recorded)
	}
}

func TestExportNDJSONShape(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{Service: "svc", Sample: 1, Export: &buf})
	_, sp := tr.StartSpan(context.Background(), "op")
	sp.SetAttr("shard", "3")
	sp.End()
	var line struct {
		Span SpanData `json:"span"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("export line not JSON: %v (%q)", err, buf.String())
	}
	if line.Span.Name != "op" || line.Span.Service != "svc" || line.Span.Attrs["shard"] != "3" {
		t.Errorf("bad span line: %+v", line.Span)
	}
	if len(line.Span.TraceID) != 32 || len(line.Span.SpanID) != 16 {
		t.Errorf("id widths: trace %d span %d", len(line.Span.TraceID), len(line.Span.SpanID))
	}
	if st := tr.Stats(); st.Exported != 1 {
		t.Errorf("exported = %d", st.Exported)
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	tr := New(Config{Sample: 1, RingSize: 8})
	ctx, root := tr.StartSpan(context.Background(), "root")
	for i := 0; i < 20; i++ {
		_, sp := tr.StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	spans := tr.Collect(root.TraceID())
	if len(spans) != 8 {
		t.Fatalf("ring kept %d spans, want 8", len(spans))
	}
	if spans[len(spans)-1].Name != "root" {
		t.Error("newest span missing from ring")
	}
	st := tr.Stats()
	if st.Recorded != 21 || st.Dropped != 13 {
		t.Errorf("stats = %+v, want 21 recorded / 13 dropped", st)
	}
	if got := tr.Dump(4); len(got) != 4 {
		t.Errorf("Dump(4) = %d spans", len(got))
	}
}

// TestRingConcurrentStress is the -race stress from the issue: hammer the
// recorder with concurrent record / export / collect / dump traffic.
func TestRingConcurrentStress(t *testing.T) {
	var buf bytes.Buffer // written under the tracer's export mutex
	tr := New(Config{Service: "stress", Sample: 1, RingSize: 64, Export: &buf})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				ctx, sp := tr.StartSpan(context.Background(), "root")
				_, c := tr.StartSpan(ctx, "child")
				c.SetAttr("i", "x")
				c.End()
				tr.RecordSpan(ctx, "stage", time.Now(), time.Microsecond, map[string]string{"s": "1"})
				sp.End()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr.Dump(32)
					tr.Collect("0123456789abcdef0123456789abcdef")
					tr.Stats()
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	st := tr.Stats()
	if want := uint64(8 * 500 * 3); st.Recorded != want {
		t.Errorf("recorded = %d, want %d", st.Recorded, want)
	}
	if st.Exported != st.Recorded {
		t.Errorf("exported = %d, recorded = %d", st.Exported, st.Recorded)
	}
}
