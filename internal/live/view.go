package live

import (
	"repro/internal/entity"
	"repro/internal/pathindex"
	"repro/internal/prob"
)

// View is one immutable snapshot of the live database: the on-disk base
// index of the current generation merged with the in-memory delta overlay
// that carries everything mutated since that generation was built. It
// implements pathindex.Reader, so the whole online phase (core.MatchStream,
// candidate pruning, the server) runs against it unchanged. A query holds
// one View for its whole run and is never affected by concurrent mutations;
// each mutation batch publishes a fresh View.
type View struct {
	base  *pathindex.Index
	g     *entity.Graph      // current entity graph (base graph + delta)
	ctx   *pathindex.Context // context tables valid for g
	ov    *overlay           // nil when no mutations since the base build
	dirty []bool             // by entity id; nil when clean
	gen   uint64             // base generation number
	muts  uint64             // mutations folded in since the base build
}

var _ pathindex.Reader = (*View)(nil)

// Lookup merges PIndex(X, α) from both layers: base entries that avoid
// every dirty entity are still exact, and the overlay contributes exactly
// the dirty-touching paths of the current graph — together they equal a
// from-scratch index over the mutated graph.
func (v *View) Lookup(X []prob.LabelID, alpha float64) ([]pathindex.PathMatch, error) {
	bm, err := v.base.Lookup(X, alpha)
	if err != nil || v.ov == nil {
		return bm, err
	}
	out := bm[:0]
	for _, m := range bm {
		clean := true
		for _, n := range m.Nodes {
			if v.dirty[n] {
				clean = false
				break
			}
		}
		if clean {
			out = append(out, m)
		}
	}
	return append(out, v.ov.lookup(X, alpha)...), nil
}

// Cardinality estimates |PIndex(X, α)| as the base histogram estimate plus
// the overlay's exact count. Base entries invalidated by mutations are still
// counted — cardinalities only steer decomposition cost, never correctness.
func (v *View) Cardinality(X []prob.LabelID, alpha float64) float64 {
	c := v.base.Cardinality(X, alpha)
	if v.ov != nil {
		c += v.ov.cardinality(X, alpha)
	}
	return c
}

// Context returns context tables valid for Graph(): the base tables patched
// for every entity whose adjacency changed.
func (v *View) Context() *pathindex.Context { return v.ctx }

// Graph returns the current entity graph.
func (v *View) Graph() *entity.Graph { return v.g }

// MaxLen returns the base index's maximum path length L.
func (v *View) MaxLen() int { return v.base.MaxLen() }

// Beta returns the base index's construction threshold β.
func (v *View) Beta() float64 { return v.base.Beta() }

// Stats returns the base build statistics with the overlay's entry count
// folded into Entries.
func (v *View) Stats() pathindex.BuildStats {
	st := v.base.Stats()
	if v.ov != nil {
		st.Entries += v.ov.count
	}
	return st
}

// IndexMetrics forwards the base index's read-path counters, so the
// server's peg_index_* families work identically for live and static
// serving (pathindex.MetricsSource).
func (v *View) IndexMetrics() pathindex.IndexMetrics { return v.base.IndexMetrics() }

// SetPostingObserver forwards to the base index (pathindex.MetricsSource).
func (v *View) SetPostingObserver(fn func(micros float64)) { v.base.SetPostingObserver(fn) }

// Generation returns the base generation number of this view.
func (v *View) Generation() uint64 { return v.gen }

// Mutations returns how many mutations the overlay carries on top of the
// base generation.
func (v *View) Mutations() uint64 { return v.muts }

// DirtyEntities returns how many entities the overlay tracks as dirty.
func (v *View) DirtyEntities() int {
	n := 0
	for _, d := range v.dirty {
		if d {
			n++
		}
	}
	return n
}
