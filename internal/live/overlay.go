package live

import (
	"encoding/binary"

	"repro/internal/entity"
	"repro/internal/pathindex"
	"repro/internal/prob"
)

// maxNodes mirrors pathindex: the maximum number of nodes on an indexed
// path.
const maxNodes = pathindex.MaxSupportedLen + 1

// eps mirrors the float tolerance used by pathindex build and lookup
// threshold comparisons, so overlay decisions agree bit-for-bit with what a
// from-scratch rebuild would store and return.
const eps = 1e-12

// overlay is the in-memory delta path index over the current entity graph:
// exactly the paths (length ≤ maxLen edges, probability ≥ β) that touch at
// least one dirty entity — the entities whose probability-relevant
// surroundings changed since the immutable base index was built. The merged
// view answers Lookup as base-minus-dirty plus overlay, so together they are
// equivalent to an index rebuilt from scratch on the mutated graph.
//
// Unlike the base index, which stores one canonical orientation per path and
// reconstructs the other at lookup, the overlay stores both orientations
// under their own label sequences: each oriented path is enumerated exactly
// once, anchored at its first dirty node (everything left of the anchor is
// clean, the right side is unconstrained), which also makes the palindrome
// and reversal cases of Lookup fall out naturally.
//
// An overlay is immutable after build and safe for concurrent readers.
type overlay struct {
	g      *entity.Graph
	dirty  []bool // by entity id, len == g.NumNodes()
	beta   float64
	maxLen int

	entries map[string][]pathindex.PathMatch // oriented label seq → paths
	count   uint64
}

// seqKey encodes a label sequence as a map key (big-endian 16-bit labels,
// the same byte form the base dictionary interns).
func seqKey(labels []prob.LabelID) string {
	b := make([]byte, 2*len(labels))
	for i, l := range labels {
		binary.BigEndian.PutUint16(b[2*i:], uint16(l))
	}
	return string(b)
}

// buildOverlay enumerates every dirty-touching path with probability ≥ beta.
func buildOverlay(g *entity.Graph, dirty []bool, beta float64, maxLen int) *overlay {
	ov := &overlay{
		g:       g,
		dirty:   dirty,
		beta:    beta,
		maxLen:  maxLen,
		entries: make(map[string][]pathindex.PathMatch),
	}
	w := &walk{
		g:      g,
		dirty:  dirty,
		thresh: beta,
		max:    maxLen + 1,
		emit:   ov.store,
	}
	for v, d := range dirty {
		if d {
			w.anchor(entity.ID(v))
		}
	}
	return ov
}

func (ov *overlay) store(nodes []entity.ID, labels []prob.LabelID, prle, prn float64) {
	m := pathindex.PathMatch{Nodes: append([]entity.ID(nil), nodes...), Prle: prle, Prn: prn}
	k := seqKey(labels)
	ov.entries[k] = append(ov.entries[k], m)
	ov.count++
}

// lookup returns the overlay's share of PIndex(X, α): dirty-touching paths
// labeled X with probability ≥ α, oriented along X. Below β the stored set
// is insufficient and the paths are enumerated on demand (mirroring the base
// index's footnote-1 fallback), still anchored at dirty nodes.
func (ov *overlay) lookup(X []prob.LabelID, alpha float64) []pathindex.PathMatch {
	if len(X) == 0 || len(X) > ov.maxLen+1 {
		return nil
	}
	if alpha < ov.beta {
		return ov.onDemand(X, alpha)
	}
	var out []pathindex.PathMatch
	for _, m := range ov.entries[seqKey(X)] {
		if m.Pr()+eps >= alpha {
			out = append(out, m)
		}
	}
	return out
}

// onDemand enumerates dirty-touching paths labeled X with probability ≥
// alpha directly from the graph.
func (ov *overlay) onDemand(X []prob.LabelID, alpha float64) []pathindex.PathMatch {
	var out []pathindex.PathMatch
	w := &walk{
		g:      ov.g,
		dirty:  ov.dirty,
		thresh: alpha,
		max:    len(X),
		guide:  X,
		emit: func(nodes []entity.ID, labels []prob.LabelID, prle, prn float64) {
			out = append(out, pathindex.PathMatch{
				Nodes: append([]entity.ID(nil), nodes...), Prle: prle, Prn: prn,
			})
		},
	}
	for v, d := range ov.dirty {
		if d {
			w.anchor(entity.ID(v))
		}
	}
	return out
}

// cardinality counts stored entries for X with probability ≥ alpha (exact,
// the overlay is in memory). Below β it reports all stored entries, the same
// floor the base histograms use.
func (ov *overlay) cardinality(X []prob.LabelID, alpha float64) float64 {
	es := ov.entries[seqKey(X)]
	if alpha <= ov.beta {
		return float64(len(es))
	}
	n := 0
	for _, m := range es {
		if m.Pr()+eps >= alpha {
			n++
		}
	}
	return float64(n)
}

// walk enumerates oriented paths through one dirty anchor node, each exactly
// once: the anchor is the path's first (leftmost) dirty node, so the left
// extension admits only clean nodes while the right extension is free. With
// a guide the labels and length are fixed (lookup); without, every label
// assignment above the threshold is enumerated (overlay build). Partial
// paths are pruned by probability — contiguous subpaths always bound the
// full path's probability from above, exactly as in the base index build.
type walk struct {
	g      *entity.Graph
	dirty  []bool
	thresh float64
	max    int            // maximum (guide: exact) number of nodes
	guide  []prob.LabelID // nil = free enumeration
	emit   func(nodes []entity.ID, labels []prob.LabelID, prle, prn float64)

	nodes  [maxNodes]entity.ID
	labels [maxNodes]prob.LabelID
	n      int
}

// anchor starts paths at dirty node u. In guided mode u is tried at every
// position of the guide; the position index equals the number of left
// (clean) nodes still to be added.
func (w *walk) anchor(u entity.ID) {
	exist := w.g.Exist(u)
	if w.guide != nil {
		for i := range w.guide {
			lp := w.g.PrLabel(u, w.guide[i])
			if lp == 0 || lp*exist+eps < w.thresh {
				continue
			}
			w.nodes[0], w.labels[0], w.n = u, w.guide[i], 1
			w.left(lp, exist, i)
		}
		return
	}
	for _, e := range w.g.Node(u).Label.Entries() {
		if e.P*exist+eps < w.thresh {
			continue
		}
		w.nodes[0], w.labels[0], w.n = u, e.Label, 1
		w.left(e.P, exist, w.max-1)
	}
}

// left grows the path at its head with clean nodes; leftBudget is how many
// head extensions may still happen (guided: how many must). Every left state
// hands over to the right phase.
func (w *walk) left(prle, prn float64, leftBudget int) {
	if w.guide == nil || leftBudget == 0 {
		w.right(prle, prn)
	}
	if leftBudget == 0 || w.n == w.max {
		return
	}
	head := w.nodes[0]
	headLabel := w.labels[0]
	for _, nb := range w.g.Neighbors(head) {
		if w.dirty[nb.To] || w.contains(nb.To) || w.conflicts(nb.To, head) {
			continue
		}
		prn2, ok := w.extendPrn(nb.To)
		if !ok {
			continue
		}
		var labels []prob.LabelID
		if w.guide != nil {
			labels = w.guide[leftBudget-1 : leftBudget]
		}
		for _, le := range w.labelChoices(nb.To, labels) {
			lp := w.g.PrLabel(nb.To, le)
			if lp == 0 {
				continue
			}
			prle2 := prle * nb.E.Prob(le, headLabel) * lp
			if prle2*prn2+eps < w.thresh {
				continue
			}
			// Prepend nb.To.
			copy(w.nodes[1:w.n+1], w.nodes[:w.n])
			copy(w.labels[1:w.n+1], w.labels[:w.n])
			w.nodes[0], w.labels[0] = nb.To, le
			w.n++
			w.left(prle2, prn2, leftBudget-1)
			w.n--
			copy(w.nodes[:w.n], w.nodes[1:w.n+1])
			copy(w.labels[:w.n], w.labels[1:w.n+1])
		}
	}
}

// right grows the path at its tail without a cleanliness constraint and
// emits every state (guided: only the full-length state).
func (w *walk) right(prle, prn float64) {
	if w.guide == nil || w.n == w.max {
		w.emit(w.nodes[:w.n], w.labels[:w.n], prle, prn)
	}
	if w.n == w.max {
		return
	}
	tail := w.nodes[w.n-1]
	tailLabel := w.labels[w.n-1]
	for _, nb := range w.g.Neighbors(tail) {
		if w.contains(nb.To) || w.conflicts(nb.To, tail) {
			continue
		}
		prn2, ok := w.extendPrn(nb.To)
		if !ok {
			continue
		}
		var labels []prob.LabelID
		if w.guide != nil {
			labels = w.guide[w.n : w.n+1]
		}
		for _, le := range w.labelChoices(nb.To, labels) {
			lp := w.g.PrLabel(nb.To, le)
			if lp == 0 {
				continue
			}
			prle2 := prle * nb.E.Prob(tailLabel, le) * lp
			if prle2*prn2+eps < w.thresh {
				continue
			}
			w.nodes[w.n], w.labels[w.n] = nb.To, le
			w.n++
			w.right(prle2, prn2)
			w.n--
		}
	}
}

func (w *walk) contains(v entity.ID) bool {
	for i := 0; i < w.n; i++ {
		if w.nodes[i] == v {
			return true
		}
	}
	return false
}

// conflicts reports a reference overlap between v and any path node other
// than the attachment point (whose disjointness the GU edge already
// guarantees).
func (w *walk) conflicts(v, attach entity.ID) bool {
	for i := 0; i < w.n; i++ {
		if u := w.nodes[i]; u != attach && w.g.RefsOverlap(u, v) {
			return true
		}
	}
	return false
}

// extendPrn computes Prn of the path's node set plus v.
func (w *walk) extendPrn(v entity.ID) (float64, bool) {
	var scratch [maxNodes]entity.ID
	ext := append(scratch[:0], w.nodes[:w.n]...)
	ext = append(ext, v)
	prn := w.g.Prn(ext)
	return prn, prn != 0
}

// labelChoices returns the candidate labels for a node: the guide slice when
// guided, otherwise the node's full label support.
func (w *walk) labelChoices(v entity.ID, guided []prob.LabelID) []prob.LabelID {
	if guided != nil {
		return guided
	}
	return w.g.Labels(v)
}
